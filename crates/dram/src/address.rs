//! Physical address decomposition for the PIM-dedicated module.
//!
//! §III notes that PIM data layouts "may necessitate a different layout
//! than the typical address interleaving", and that a separate module
//! "provides a location to place the data in the desired layout and to
//! work around the memory system's address interleaving". This module
//! provides the straightforward rank→bank→subarray→row→column
//! decomposition the PIM resource manager assumes (no interleaving),
//! with bidirectional conversion.

use crate::error::DramError;
use crate::geometry::DramGeometry;

/// A fully decomposed DRAM location (bit granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Address {
    /// Rank index.
    pub rank: usize,
    /// Bank within the rank.
    pub bank: usize,
    /// Subarray within the bank.
    pub subarray: usize,
    /// Row within the subarray.
    pub row: usize,
    /// Column (bitline) within the row.
    pub col: usize,
}

/// Maps between flat bit addresses and [`Address`] components using the
/// PIM module's linear (non-interleaved) layout:
/// `rank ≫ bank ≫ subarray ≫ row ≫ col`.
///
/// # Example
///
/// ```
/// use pim_dram::{AddressMapper, DramGeometry};
///
/// let mapper = AddressMapper::new(DramGeometry::paper_default(2));
/// let addr = mapper.decode(123_456_789).unwrap();
/// assert_eq!(mapper.encode(&addr).unwrap(), 123_456_789);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AddressMapper {
    geometry: DramGeometry,
}

impl AddressMapper {
    /// Creates a mapper over `geometry`.
    pub fn new(geometry: DramGeometry) -> Self {
        AddressMapper { geometry }
    }

    /// Total addressable bits.
    pub fn capacity_bits(&self) -> u64 {
        self.geometry.capacity_bytes() * 8
    }

    /// Decodes a flat bit address.
    ///
    /// # Errors
    ///
    /// [`DramError::RowOutOfRange`] if the address exceeds capacity
    /// (reported against the total row count).
    pub fn decode(&self, bit_addr: u64) -> Result<Address, DramError> {
        if bit_addr >= self.capacity_bits() {
            return Err(DramError::RowOutOfRange {
                row: (bit_addr / self.geometry.cols_per_row as u64) as usize,
                rows: (self.capacity_bits() / self.geometry.cols_per_row as u64) as usize,
            });
        }
        let g = &self.geometry;
        let col = (bit_addr % g.cols_per_row as u64) as usize;
        let rest = bit_addr / g.cols_per_row as u64;
        let row = (rest % g.rows_per_subarray as u64) as usize;
        let rest = rest / g.rows_per_subarray as u64;
        let subarray = (rest % g.subarrays_per_bank as u64) as usize;
        let rest = rest / g.subarrays_per_bank as u64;
        let bank = (rest % g.banks_per_rank as u64) as usize;
        let rank = (rest / g.banks_per_rank as u64) as usize;
        Ok(Address {
            rank,
            bank,
            subarray,
            row,
            col,
        })
    }

    /// Encodes components back into a flat bit address.
    ///
    /// # Errors
    ///
    /// [`DramError::InvalidGeometry`] if any component is out of range.
    pub fn encode(&self, addr: &Address) -> Result<u64, DramError> {
        let g = &self.geometry;
        if addr.rank >= g.ranks
            || addr.bank >= g.banks_per_rank
            || addr.subarray >= g.subarrays_per_bank
            || addr.row >= g.rows_per_subarray
            || addr.col >= g.cols_per_row
        {
            return Err(DramError::InvalidGeometry(format!(
                "address component out of range: {addr:?}"
            )));
        }
        let mut flat = addr.rank as u64;
        flat = flat * g.banks_per_rank as u64 + addr.bank as u64;
        flat = flat * g.subarrays_per_bank as u64 + addr.subarray as u64;
        flat = flat * g.rows_per_subarray as u64 + addr.row as u64;
        flat = flat * g.cols_per_row as u64 + addr.col as u64;
        Ok(flat)
    }

    /// The global subarray index (`0 .. total_subarrays`) of an address —
    /// the PIM core the bit belongs to on subarray-level targets.
    pub fn subarray_index(&self, addr: &Address) -> usize {
        let g = &self.geometry;
        (addr.rank * g.banks_per_rank + addr.bank) * g.subarrays_per_bank + addr.subarray
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic SplitMix64 stream for randomized coverage without a
    /// registry dependency.
    struct Rng(u64);

    impl Rng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    fn mapper() -> AddressMapper {
        AddressMapper::new(DramGeometry::paper_default(2))
    }

    #[test]
    fn decode_zero_and_last() {
        let m = mapper();
        let zero = m.decode(0).unwrap();
        assert_eq!(
            zero,
            Address {
                rank: 0,
                bank: 0,
                subarray: 0,
                row: 0,
                col: 0
            }
        );
        let last = m.decode(m.capacity_bits() - 1).unwrap();
        assert_eq!(last.rank, 1);
        assert_eq!(last.col, 8191);
        assert!(m.decode(m.capacity_bits()).is_err());
    }

    #[test]
    fn encode_rejects_out_of_range_components() {
        let m = mapper();
        let bad = Address {
            rank: 0,
            bank: 200,
            subarray: 0,
            row: 0,
            col: 0,
        };
        assert!(m.encode(&bad).is_err());
    }

    #[test]
    fn subarray_index_is_dense() {
        let m = mapper();
        let g = DramGeometry::paper_default(2);
        let a = Address {
            rank: 1,
            bank: 2,
            subarray: 3,
            row: 0,
            col: 0,
        };
        assert_eq!(
            m.subarray_index(&a),
            (g.banks_per_rank + 2) * g.subarrays_per_bank + 3
        );
    }

    #[test]
    fn roundtrip() {
        let m = mapper();
        let cap = DramGeometry::paper_default(2).capacity_bytes() * 8;
        let mut rng = Rng(0xD3A0);
        for bit_addr in (0..256).map(|_| rng.below(cap)).chain([0, 1, cap - 1]) {
            let addr = m.decode(bit_addr).unwrap();
            assert_eq!(m.encode(&addr).unwrap(), bit_addr, "{addr:?}");
        }
    }

    #[test]
    fn consecutive_bits_share_a_row_within_a_row() {
        let m = mapper();
        let mut rng = Rng(0xD3A1);
        for base in (0..256).map(|_| rng.below(1_000_000)) {
            let a = m.decode(base * 8192).unwrap();
            let b = m.decode(base * 8192 + 8191).unwrap();
            assert_eq!(a.row, b.row);
            assert_eq!(a.subarray, b.subarray);
            assert_eq!(a.col, 0);
            assert_eq!(b.col, 8191);
        }
    }
}
