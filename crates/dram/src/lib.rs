//! DRAM organization, DDR timing, and power modeling substrate for PIMeval-rs.
//!
//! This crate implements the pieces of the DRAM hierarchy that the PIM
//! simulator (`pimeval`) builds on, following §III of the IISWC 2024
//! PIMeval/PIMbench paper:
//!
//! * [`DramGeometry`] — the rank/bank/subarray/row/column organization,
//!   capacity math, and per-level parallelism counts.
//! * [`DramTiming`] — DDR timing parameters (row read/write latencies, tCCD,
//!   tRAS/tRP, rank bandwidth) used by the performance models.
//! * [`power::DramPower`] — the Micron power model (TN-40-07 style) used to
//!   derive per-operation energies (Eq. 1 and Eq. 2 of the paper), plus
//!   background power for many-subarray activation.
//! * [`exec`] — the std-only chunked fan-out engine (`PIM_THREADS`) the
//!   functional simulator and the bit-serial VM run their element/word
//!   loops on; deterministic for every thread count.
//! * [`subarray::Subarray`] and [`subarray::BitMatrix`] — a functional model
//!   of a DRAM subarray as a 2-D bit array with destructive row activation
//!   semantics and access statistics. The bit-serial micro-op VM in
//!   `pim-microcode` executes on top of these.
//!
//! The default values mirror the configuration used throughout the paper's
//! evaluation (Table II and the artifact's example output): per rank,
//! 128 banks × 32 subarrays × 1024 rows × 8192 columns, 25.6 GB/s rank
//! bandwidth, 28.5 ns row reads, 43.5 ns row writes and 3 ns tCCD.
//!
//! # Example
//!
//! ```
//! use pim_dram::{DramGeometry, DramTiming};
//!
//! let geom = DramGeometry::paper_default(32); // 32 ranks
//! assert_eq!(geom.total_subarrays(), 32 * 128 * 32);
//! let timing = DramTiming::ddr4_default();
//! assert!(timing.row_write_ns > timing.row_read_ns);
//! ```

#![warn(missing_docs)]

pub mod address;
pub mod error;
pub mod exec;
pub mod geometry;
pub mod power;
pub mod protocol;
pub mod subarray;
pub mod timing;
pub mod timing_model;

pub use address::{Address, AddressMapper};
pub use error::DramError;
pub use geometry::DramGeometry;
pub use power::DramPower;
pub use protocol::BankSnapshot;
pub use subarray::{BitMatrix, RowStats, Subarray};
pub use timing::DramTiming;
pub use timing_model::{
    make_timing_model, Analytical, BankFsm, CopyReplay, RowPattern, TimingBackend, TimingCounters,
    TimingModel, PIM_TIMING_ENV,
};
