//! Functional model of a DRAM subarray as a 2-D bit array.
//!
//! Bit-serial PIM (§IV of the paper) operates on whole rows at once: every
//! sense amplifier latches one bit of the open row, and a small logic block
//! per bitline combines it with per-bitline registers. [`BitMatrix`] stores
//! the cell array (row-major, one `u64` word per 64 bitlines) and
//! [`Subarray`] adds open-row semantics plus access statistics
//! ([`RowStats`]) so the microcode VM can be checked against the closed-form
//! cost model.

use crate::error::DramError;

/// A dense 2-D bit array, row-major, 64 bitlines per word.
///
/// Rows are DRAM wordlines; columns are bitlines. Used both as the cell
/// array of a [`Subarray`] and as the vertical-layout staging buffer of the
/// bit-serial VM.
///
/// # Example
///
/// ```
/// use pim_dram::BitMatrix;
///
/// let mut m = BitMatrix::new(4, 128);
/// m.set(2, 70, true);
/// assert!(m.get(2, 70));
/// assert_eq!(m.row(2).iter().map(|w| w.count_ones()).sum::<u32>(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// Creates an all-zero matrix of `rows` × `cols` bits.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(
            rows > 0 && cols > 0,
            "BitMatrix dimensions must be non-zero"
        );
        let words_per_row = cols.div_ceil(64);
        BitMatrix {
            rows,
            cols,
            words_per_row,
            bits: vec![0; rows * words_per_row],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (bitlines).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of 64-bit words backing one row.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Reads one bit.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(row < self.rows && col < self.cols, "bit index out of range");
        let w = self.bits[row * self.words_per_row + col / 64];
        (w >> (col % 64)) & 1 == 1
    }

    /// Writes one bit.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        assert!(row < self.rows && col < self.cols, "bit index out of range");
        let w = &mut self.bits[row * self.words_per_row + col / 64];
        if value {
            *w |= 1 << (col % 64);
        } else {
            *w &= !(1 << (col % 64));
        }
    }

    /// Borrows one row as words. Bits past `cols` in the last word are zero.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row(&self, row: usize) -> &[u64] {
        assert!(row < self.rows, "row index out of range");
        &self.bits[row * self.words_per_row..(row + 1) * self.words_per_row]
    }

    /// Mutably borrows one row as words.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_mut(&mut self, row: usize) -> &mut [u64] {
        assert!(row < self.rows, "row index out of range");
        &mut self.bits[row * self.words_per_row..(row + 1) * self.words_per_row]
    }

    /// The whole backing store as one flat word slice, row-major
    /// (`rows × words_per_row`); row `r` starts at `r * words_per_row`.
    /// Lets compiled kernels sweep many rows in a single pass.
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Mutable access to the flat backing store (see [`BitMatrix::words`]).
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.bits
    }

    /// Copies `src` row into `dst` row.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn copy_row(&mut self, src: usize, dst: usize) {
        assert!(src < self.rows && dst < self.rows, "row index out of range");
        if src == dst {
            return;
        }
        let (a, b) = (src.min(dst), src.max(dst));
        let (lo, hi) = self.bits.split_at_mut(b * self.words_per_row);
        let lo_row = &lo[a * self.words_per_row..(a + 1) * self.words_per_row];
        let hi_row = &mut hi[..self.words_per_row];
        if src < dst {
            hi_row.copy_from_slice(lo_row);
        } else {
            // dst < src: copy from hi into lo — need the reverse split.
            let tmp: Vec<u64> = hi_row.to_vec();
            lo[a * self.words_per_row..(a + 1) * self.words_per_row].copy_from_slice(&tmp);
        }
    }

    /// Clears trailing padding bits beyond `cols` in every row. Internal
    /// helpers may write whole words; this restores the invariant.
    pub fn mask_padding(&mut self) {
        let extra = self.cols % 64;
        if extra == 0 {
            return;
        }
        let mask = (1u64 << extra) - 1;
        for r in 0..self.rows {
            let idx = r * self.words_per_row + self.words_per_row - 1;
            self.bits[idx] &= mask;
        }
    }

    /// Population count of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_popcount(&self, row: usize) -> u64 {
        self.row(row).iter().map(|w| w.count_ones() as u64).sum()
    }
}

/// Row-level access statistics for a [`Subarray`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RowStats {
    /// Number of row activations (destructive reads into the row buffer).
    pub activations: u64,
    /// Number of row write-backs.
    pub write_backs: u64,
    /// Number of precharges.
    pub precharges: u64,
}

/// A functional DRAM subarray: cell array + open-row buffer + statistics.
///
/// Activation is destructive (the row's cells are cleared until the buffer is
/// written back or the row is precharged, which restores it), matching real
/// DRAM semantics described in §III.
///
/// # Example
///
/// ```
/// use pim_dram::Subarray;
///
/// let mut sa = Subarray::new(8, 64);
/// sa.activate(3).unwrap();
/// sa.row_buffer_mut().unwrap()[0] = 0xFF;
/// sa.precharge().unwrap(); // restores (writes back) the buffer
/// assert_eq!(sa.cells().row(3)[0], 0xFF);
/// assert_eq!(sa.stats().activations, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Subarray {
    cells: BitMatrix,
    row_buffer: Vec<u64>,
    open_row: Option<usize>,
    stats: RowStats,
}

impl Subarray {
    /// Creates a zeroed subarray of `rows` × `cols`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        let cells = BitMatrix::new(rows, cols);
        let words = cells.words_per_row();
        Subarray {
            cells,
            row_buffer: vec![0; words],
            open_row: None,
            stats: RowStats::default(),
        }
    }

    /// The backing cell array.
    pub fn cells(&self) -> &BitMatrix {
        &self.cells
    }

    /// Mutable access to the backing cell array (for loading test vectors).
    pub fn cells_mut(&mut self) -> &mut BitMatrix {
        &mut self.cells
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<usize> {
        self.open_row
    }

    /// Accumulated access statistics.
    pub fn stats(&self) -> &RowStats {
        &self.stats
    }

    /// Activates `row`: latches it into the row buffer (destructive read).
    ///
    /// # Errors
    ///
    /// [`DramError::RowAlreadyActive`] if another row is open;
    /// [`DramError::RowOutOfRange`] if `row` is invalid.
    pub fn activate(&mut self, row: usize) -> Result<(), DramError> {
        if let Some(open) = self.open_row {
            return Err(DramError::RowAlreadyActive { open_row: open });
        }
        if row >= self.cells.rows() {
            return Err(DramError::RowOutOfRange {
                row,
                rows: self.cells.rows(),
            });
        }
        self.row_buffer.copy_from_slice(self.cells.row(row));
        // Destructive read: cells lose their charge until restore.
        self.cells.row_mut(row).fill(0);
        self.open_row = Some(row);
        self.stats.activations += 1;
        Ok(())
    }

    /// Precharges: restores the row buffer into the open row and closes it.
    ///
    /// # Errors
    ///
    /// [`DramError::RowNotActive`] if no row is open.
    pub fn precharge(&mut self) -> Result<(), DramError> {
        let row = self.open_row.ok_or(DramError::RowNotActive)?;
        self.cells.row_mut(row).copy_from_slice(&self.row_buffer);
        self.open_row = None;
        self.stats.precharges += 1;
        Ok(())
    }

    /// Borrows the open row buffer.
    ///
    /// # Errors
    ///
    /// [`DramError::RowNotActive`] if no row is open.
    pub fn row_buffer(&self) -> Result<&[u64], DramError> {
        if self.open_row.is_none() {
            return Err(DramError::RowNotActive);
        }
        Ok(&self.row_buffer)
    }

    /// Mutably borrows the open row buffer (sense-amp level logic writes).
    ///
    /// # Errors
    ///
    /// [`DramError::RowNotActive`] if no row is open.
    pub fn row_buffer_mut(&mut self) -> Result<&mut [u64], DramError> {
        if self.open_row.is_none() {
            return Err(DramError::RowNotActive);
        }
        self.stats.write_backs += 1;
        Ok(&mut self.row_buffer)
    }

    /// Convenience: activate `row`, apply `f` to the row buffer, precharge.
    ///
    /// # Errors
    ///
    /// Propagates activation errors.
    pub fn with_row<R>(
        &mut self,
        row: usize,
        f: impl FnOnce(&mut [u64]) -> R,
    ) -> Result<R, DramError> {
        self.activate(row)?;
        let out = f(&mut self.row_buffer);
        self.stats.write_backs += 1;
        self.precharge()?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmatrix_set_get_roundtrip() {
        let mut m = BitMatrix::new(3, 100);
        for (r, c) in [(0, 0), (1, 63), (1, 64), (2, 99)] {
            m.set(r, c, true);
            assert!(m.get(r, c), "({r},{c})");
        }
        m.set(1, 64, false);
        assert!(!m.get(1, 64));
    }

    #[test]
    fn bitmatrix_copy_row_both_directions() {
        let mut m = BitMatrix::new(4, 65);
        m.set(0, 64, true);
        m.copy_row(0, 3);
        assert!(m.get(3, 64));
        m.set(3, 1, true);
        m.copy_row(3, 0);
        assert!(m.get(0, 1) && m.get(0, 64));
    }

    #[test]
    fn bitmatrix_mask_padding_clears_extra_bits() {
        let mut m = BitMatrix::new(1, 10);
        m.row_mut(0)[0] = u64::MAX;
        m.mask_padding();
        assert_eq!(m.row_popcount(0), 10);
    }

    #[test]
    fn activation_is_destructive_until_precharge() {
        let mut sa = Subarray::new(4, 64);
        sa.cells_mut().set(1, 5, true);
        sa.activate(1).unwrap();
        assert!(!sa.cells().get(1, 5), "cells drained by activation");
        sa.precharge().unwrap();
        assert!(sa.cells().get(1, 5), "precharge restores");
    }

    #[test]
    fn double_activate_rejected() {
        let mut sa = Subarray::new(4, 64);
        sa.activate(0).unwrap();
        assert_eq!(
            sa.activate(1),
            Err(DramError::RowAlreadyActive { open_row: 0 })
        );
    }

    #[test]
    fn activate_out_of_range_rejected() {
        let mut sa = Subarray::new(4, 64);
        assert_eq!(
            sa.activate(4),
            Err(DramError::RowOutOfRange { row: 4, rows: 4 })
        );
    }

    #[test]
    fn row_buffer_requires_open_row() {
        let sa = Subarray::new(2, 64);
        assert_eq!(sa.row_buffer().unwrap_err(), DramError::RowNotActive);
    }

    #[test]
    fn with_row_modifies_and_counts() {
        let mut sa = Subarray::new(2, 64);
        sa.with_row(0, |buf| buf[0] = 0b1010).unwrap();
        assert_eq!(sa.cells().row(0)[0], 0b1010);
        assert_eq!(sa.stats().activations, 1);
        assert_eq!(sa.stats().precharges, 1);
        assert!(sa.stats().write_backs >= 1);
    }
}
