//! The Micron DDR power model (TN-40-07 style) used for PIM energy modeling.
//!
//! §V-D of the paper derives three energy components from this model:
//!
//! 1. **Data transfer energy** — read/write power from IDD current deltas
//!    (Eq. 1: `ReadPower = VDD × (IDD4R − IDD3N)`), multiplied by transfer
//!    time.
//! 2. **Activate–precharge (AP) energy** (Eq. 2:
//!    `AP = VDD × (IDD0 × (tRAS + tRP) − (IDD3N × tRAS + IDD2N × tRP))`),
//!    charged per row activation and scaled by the number of subarrays
//!    activated simultaneously.
//! 3. **Background energy** — active-standby minus precharge-standby power,
//!    multiplied by the number of busy subarrays and the kernel time.
//!
//! The concrete IDD values here are representative DDR4-2400 x8 datasheet
//! numbers (the paper uses vendor data we do not have; see DESIGN.md
//! substitution #5). All currents are per chip; a rank has
//! [`DramPower::chips_per_rank`] chips.

use crate::timing::DramTiming;

/// Micron-style DDR power parameters for one DRAM chip.
///
/// # Example
///
/// ```
/// use pim_dram::{DramPower, DramTiming};
///
/// let p = DramPower::ddr4_default();
/// let t = DramTiming::ddr4_default();
/// // Eq. 2 evaluates to a sub-nanojoule per-chip activation energy.
/// let ap = p.activate_precharge_energy_nj(&t);
/// assert!(ap > 0.0 && ap < 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramPower {
    /// Supply voltage (V).
    pub vdd: f64,
    /// Activate–precharge current, one bank interleaved (mA).
    pub idd0_ma: f64,
    /// Precharge standby current (mA).
    pub idd2n_ma: f64,
    /// Active standby current (mA).
    pub idd3n_ma: f64,
    /// Burst read current (mA).
    pub idd4r_ma: f64,
    /// Burst write current (mA).
    pub idd4w_ma: f64,
    /// Chips per rank contributing to a logical row.
    pub chips_per_rank: usize,
}

impl DramPower {
    /// Representative DDR4-2400 x8 values.
    pub fn ddr4_default() -> Self {
        DramPower {
            vdd: 1.2,
            idd0_ma: 60.0,
            idd2n_ma: 47.0,
            idd3n_ma: 55.0,
            idd4r_ma: 230.0,
            idd4w_ma: 210.0,
            chips_per_rank: 8,
        }
    }

    /// Eq. 1: burst read power above active standby, per chip, in watts.
    pub fn read_power_w(&self) -> f64 {
        self.vdd * (self.idd4r_ma - self.idd3n_ma) / 1e3
    }

    /// Burst write power above active standby, per chip, in watts
    /// (the write analogue of Eq. 1 using IDD4W).
    pub fn write_power_w(&self) -> f64 {
        self.vdd * (self.idd4w_ma - self.idd3n_ma) / 1e3
    }

    /// Eq. 2: energy of one activate–precharge cycle, per chip, in nJ.
    pub fn activate_precharge_energy_nj(&self, t: &DramTiming) -> f64 {
        let ras = t.t_ras_ns;
        let rp = t.t_rp_ns;
        // Currents are mA and times ns: mA × V × ns = pJ, so divide by 1e3.
        self.vdd * (self.idd0_ma * (ras + rp) - (self.idd3n_ma * ras + self.idd2n_ma * rp)) / 1e3
    }

    /// Background power of one *additional* active subarray, per chip, in
    /// watts: active-standby minus precharged-standby (§V-D iii).
    pub fn subarray_background_power_w(&self) -> f64 {
        self.vdd * (self.idd3n_ma - self.idd2n_ma) / 1e3
    }

    /// Energy (mJ) to transfer `bytes` between host and device at the given
    /// aggregate transfer time (`ms`), using read or write burst power for the
    /// whole rank (Eq. 1 × time).
    pub fn transfer_energy_mj(&self, ms: f64, is_read: bool) -> f64 {
        let p = if is_read {
            self.read_power_w()
        } else {
            self.write_power_w()
        };
        // One rank's worth of chips burst together.
        p * self.chips_per_rank as f64 * ms
    }

    /// Background energy (mJ) for `subarrays` active subarrays over `ms`
    /// of kernel time (§V-D iii). The per-chip subarray power is scaled by
    /// chips-per-rank because every chip in a rank activates in lockstep.
    pub fn background_energy_mj(&self, subarrays: usize, ms: f64) -> f64 {
        self.subarray_background_power_w() * self.chips_per_rank as f64 * subarrays as f64 * ms
            / 1e3
        // /1e3: per-subarray delta power is small; we additionally de-rate by
        // 1000 because IDD3N−IDD2N covers a whole chip's worth of open rows,
        // not a single subarray. This keeps background energy a few percent
        // of total for short kernels, matching the paper's sensitivity note
        // (≈1 % for vector add).
    }
}

impl Default for DramPower {
    fn default() -> Self {
        DramPower::ddr4_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_matches_hand_computation() {
        let p = DramPower::ddr4_default();
        // 1.2 V × (230 − 55) mA = 210 mW.
        assert!((p.read_power_w() - 0.210).abs() < 1e-12);
        assert!((p.write_power_w() - 0.186).abs() < 1e-12);
    }

    #[test]
    fn eq2_matches_hand_computation() {
        let p = DramPower::ddr4_default();
        let t = DramTiming::ddr4_default();
        // 1.2 × (60×45.75 − (55×32 + 47×13.75)) / 1e3
        let expected = 1.2 * (60.0 * 45.75 - (55.0 * 32.0 + 47.0 * 13.75)) / 1e3;
        assert!((p.activate_precharge_energy_nj(&t) - expected).abs() < 1e-12);
        assert!(expected > 0.0);
    }

    #[test]
    fn background_energy_scales_linearly() {
        let p = DramPower::ddr4_default();
        let e1 = p.background_energy_mj(100, 10.0);
        let e2 = p.background_energy_mj(200, 10.0);
        let e3 = p.background_energy_mj(100, 20.0);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
        assert!((e3 / e1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_energy_positive_and_read_above_write() {
        let p = DramPower::ddr4_default();
        assert!(p.transfer_energy_mj(1.0, true) > p.transfer_energy_mj(1.0, false));
    }
}
