//! DRAM organization: ranks, banks, subarrays, rows, and columns.
//!
//! Mirrors the hierarchy described in §III of the paper. PIMeval treats each
//! rank as an independent channel (a documented limitation carried over from
//! the original simulator), so bandwidth scales linearly in the rank count.

use crate::error::DramError;

/// The physical organization of the PIM-dedicated DRAM module(s).
///
/// The paper's evaluated configuration (Table II, and the artifact output in
/// its Listing 3) is, per rank: 128 banks (16 banks × 8 x8 chips, counted
/// per-chip as in the artifact), 32 subarrays per bank, 1024 rows and 8192
/// columns per subarray. [`DramGeometry::paper_default`] builds exactly that.
///
/// # Example
///
/// ```
/// use pim_dram::DramGeometry;
///
/// let g = DramGeometry::paper_default(4);
/// assert_eq!(g.total_banks(), 512);
/// assert_eq!(g.subarray_bits(), 1024 * 8192);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramGeometry {
    /// Number of ranks. PIMeval models each rank as an independent channel.
    pub ranks: usize,
    /// Banks per rank (per-chip bank count × chips, as in the artifact).
    pub banks_per_rank: usize,
    /// Subarrays per bank.
    pub subarrays_per_bank: usize,
    /// Rows per subarray.
    pub rows_per_subarray: usize,
    /// Columns (bitlines / sense amplifiers) per subarray row.
    pub cols_per_row: usize,
}

impl DramGeometry {
    /// The configuration used throughout the paper's evaluation, with a
    /// caller-selected rank count (the paper sweeps 1–64 ranks).
    pub fn paper_default(ranks: usize) -> Self {
        DramGeometry {
            ranks,
            banks_per_rank: 128,
            subarrays_per_bank: 32,
            rows_per_subarray: 1024,
            cols_per_row: 8192,
        }
    }

    /// Validates that every dimension is non-zero.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidGeometry`] naming the zero field.
    pub fn validate(&self) -> Result<(), DramError> {
        let fields = [
            (self.ranks, "ranks"),
            (self.banks_per_rank, "banks_per_rank"),
            (self.subarrays_per_bank, "subarrays_per_bank"),
            (self.rows_per_subarray, "rows_per_subarray"),
            (self.cols_per_row, "cols_per_row"),
        ];
        for (value, name) in fields {
            if value == 0 {
                return Err(DramError::InvalidGeometry(format!(
                    "{name} must be non-zero"
                )));
            }
        }
        Ok(())
    }

    /// Total number of banks across all ranks.
    pub fn total_banks(&self) -> usize {
        self.ranks * self.banks_per_rank
    }

    /// Total number of subarrays across all ranks.
    pub fn total_subarrays(&self) -> usize {
        self.total_banks() * self.subarrays_per_bank
    }

    /// Bits stored in one subarray.
    pub fn subarray_bits(&self) -> u64 {
        self.rows_per_subarray as u64 * self.cols_per_row as u64
    }

    /// Total capacity in bytes across all ranks.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_subarrays() as u64 * self.subarray_bits() / 8
    }

    /// Returns a copy with a different rank count (used by the rank-scaling
    /// experiments of Figs. 12–13).
    #[must_use]
    pub fn with_ranks(mut self, ranks: usize) -> Self {
        self.ranks = ranks;
        self
    }

    /// Returns a copy with a different column width (Fig. 6a sweep).
    #[must_use]
    pub fn with_cols(mut self, cols: usize) -> Self {
        self.cols_per_row = cols;
        self
    }

    /// Returns a copy with a different per-rank bank count (Fig. 6b sweep).
    #[must_use]
    pub fn with_banks_per_rank(mut self, banks: usize) -> Self {
        self.banks_per_rank = banks;
        self
    }

    /// Returns a copy scaled so that total capacity stays constant while the
    /// rank count changes: subarrays-per-bank is scaled inversely with rank
    /// count. Used for Fig. 13's "same capacity" comparison.
    ///
    /// # Panics
    ///
    /// Panics if the scaling does not divide evenly (the paper only uses
    /// power-of-two rank counts, which always divide).
    #[must_use]
    pub fn with_ranks_same_capacity(&self, ranks: usize) -> Self {
        let total_sa = self.total_subarrays();
        let sa_per_bank = total_sa / (ranks * self.banks_per_rank);
        assert!(
            sa_per_bank * ranks * self.banks_per_rank == total_sa && sa_per_bank > 0,
            "capacity-preserving rescale must divide evenly"
        );
        DramGeometry {
            ranks,
            subarrays_per_bank: sa_per_bank,
            ..*self
        }
    }
}

impl Default for DramGeometry {
    /// Four ranks — the artifact's default device.
    fn default() -> Self {
        DramGeometry::paper_default(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_counts() {
        let g = DramGeometry::paper_default(32);
        assert_eq!(g.total_banks(), 4096);
        assert_eq!(g.total_subarrays(), 131_072);
        assert_eq!(g.subarray_bits(), 8_388_608);
    }

    #[test]
    fn capacity_scales_with_ranks() {
        let g1 = DramGeometry::paper_default(1);
        let g2 = DramGeometry::paper_default(2);
        assert_eq!(g2.capacity_bytes(), 2 * g1.capacity_bytes());
    }

    #[test]
    fn same_capacity_rescale_preserves_bytes() {
        let g = DramGeometry::paper_default(32);
        for ranks in [1, 2, 4, 8, 16, 32] {
            let scaled = g.with_ranks_same_capacity(ranks);
            assert_eq!(scaled.capacity_bytes(), g.capacity_bytes(), "ranks={ranks}");
            assert_eq!(scaled.ranks, ranks);
        }
    }

    #[test]
    fn validate_rejects_zero_dimension() {
        let g = DramGeometry {
            rows_per_subarray: 0,
            ..DramGeometry::default()
        };
        assert!(matches!(g.validate(), Err(DramError::InvalidGeometry(_))));
        assert!(DramGeometry::default().validate().is_ok());
    }

    #[test]
    fn builder_style_overrides() {
        let g = DramGeometry::default()
            .with_ranks(8)
            .with_cols(2048)
            .with_banks_per_rank(64);
        assert_eq!(g.ranks, 8);
        assert_eq!(g.cols_per_row, 2048);
        assert_eq!(g.banks_per_rank, 64);
    }
}
