//! Pluggable timing backends behind every cost path (§V-C).
//!
//! The paper's simulator charges closed-form latencies per row access;
//! its §V-C limitation ("integration with DRAMsim3 has been left as
//! future work") is exactly the gap between that closed form and a
//! stateful bank FSM. This module makes the choice explicit: a
//! [`TimingModel`] trait with two implementations selected per device —
//!
//! * [`Analytical`] — the original closed-form math, bit-identical to
//!   the pre-trait simulator and still the default;
//! * [`BankFsm`] — a stateful backend built on the promoted
//!   [`RankSim`]: per-bank open-row tracking, ACT/PRE/RD/WR with
//!   tRCD/tRP/tRAS/tCCD interlocks, and row-buffer hit/miss accounting.
//!
//! The FSM follows the execute-once-and-stall rule: every charge issues
//! its commands against the live bank state exactly once, and the time
//! it returns *includes* any interlock stalls — there is no
//! side-effect-free latency query that could disagree with the state it
//! mutated. Long charges replay a bounded command prefix and
//! extrapolate the steady-state tail deterministically, advancing the
//! FSM clock past the tail so later charges observe it.
//!
//! With at least two banks and the default DDR4 parameters, a
//! [`RowPattern::Streaming`] access pattern (fresh rows round-robin
//! across banks) never stalls: each closed-page read costs exactly
//! tRCD + CL = `row_read_ns` and each write tRCD + tWR = `row_write_ns`,
//! so `BankFsm` agrees with `Analytical` to the last bit at zero
//! contention. Under [`RowPattern::Thrashing`] (every access re-opens a
//! row in one bank) the tRAS + tRP recovery lands on the critical path
//! and the FSM is strictly slower — the fidelity gap the backend exists
//! to expose.

use crate::protocol::{BankSnapshot, ProtocolStats, ProtocolTiming, RankSim};
use crate::timing::DramTiming;

/// Environment variable overriding the configured timing backend
/// (`analytical` or `fsm`).
pub const PIM_TIMING_ENV: &str = "PIM_TIMING";

/// Row cap for one bounded burst replay (copies, DMA streams), matching
/// the historical per-copy protocol replay bound.
pub const COPY_REPLAY_MAX_ROWS: usize = 32;

/// Row-access cap for one bounded FSM charge; the tail beyond it is
/// extrapolated at the steady-state per-access time.
const ROW_REPLAY_CAP: u64 = 4096;

/// Which timing backend a device charges through.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TimingBackend {
    /// Closed-form latencies (the paper's model); the default.
    #[default]
    Analytical,
    /// Stateful bank-FSM replay on [`RankSim`].
    BankFsm,
}

impl TimingBackend {
    /// Parses a backend name as accepted by `PIM_TIMING` and the
    /// `--timing` CLI flag. Case-insensitive; returns `None` for an
    /// unknown name.
    pub fn parse(s: &str) -> Option<TimingBackend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "analytical" | "closed" | "closed-form" => Some(TimingBackend::Analytical),
            "fsm" | "bankfsm" | "bank-fsm" => Some(TimingBackend::BankFsm),
            _ => None,
        }
    }

    /// Applies the `PIM_TIMING` environment override, if set to a valid
    /// backend name; otherwise returns `self` unchanged.
    pub fn env_override(self) -> TimingBackend {
        match std::env::var(PIM_TIMING_ENV) {
            Ok(v) if !v.is_empty() => TimingBackend::parse(&v).unwrap_or(self),
            _ => self,
        }
    }
}

impl std::fmt::Display for TimingBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimingBackend::Analytical => write!(f, "analytical"),
            TimingBackend::BankFsm => write!(f, "fsm"),
        }
    }
}

/// The bank-access pattern a charge models.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RowPattern {
    /// Fresh rows round-robin across banks — bank recovery hides under
    /// the other banks' accesses (zero contention with ≥ 2 banks).
    #[default]
    Streaming,
    /// Every access re-opens a row in one bank — the tRAS + tRP
    /// recovery is on the critical path of every access.
    Thrashing,
}

/// Cumulative protocol counters a timing backend has issued.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimingCounters {
    /// ACT commands issued.
    pub activations: u64,
    /// PRE commands issued.
    pub precharges: u64,
    /// Column reads issued.
    pub reads: u64,
    /// Column writes issued.
    pub writes: u64,
    /// Column commands that hit an already-open row.
    pub row_hits: u64,
    /// Column commands that paid a fresh activation.
    pub row_misses: u64,
}

impl TimingCounters {
    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &TimingCounters) {
        self.activations += other.activations;
        self.precharges += other.precharges;
        self.reads += other.reads;
        self.writes += other.writes;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
    }

    /// Counters accumulated since `earlier` (a previous snapshot of the
    /// same backend).
    #[must_use]
    pub fn delta_since(&self, earlier: &TimingCounters) -> TimingCounters {
        TimingCounters {
            activations: self.activations.saturating_sub(earlier.activations),
            precharges: self.precharges.saturating_sub(earlier.precharges),
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            row_hits: self.row_hits.saturating_sub(earlier.row_hits),
            row_misses: self.row_misses.saturating_sub(earlier.row_misses),
        }
    }

    /// True when no commands have been counted.
    pub fn is_empty(&self) -> bool {
        *self == TimingCounters::default()
    }
}

impl From<ProtocolStats> for TimingCounters {
    fn from(s: ProtocolStats) -> Self {
        TimingCounters {
            activations: s.activations,
            precharges: s.precharges,
            reads: s.reads,
            writes: s.writes,
            row_hits: s.row_hits,
            row_misses: s.row_misses,
        }
    }
}

/// Counters and achieved bandwidth from one bounded replay of a
/// host↔device copy.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CopyReplay {
    /// Protocol commands the copy issued (extrapolated past the replay
    /// bound).
    pub counters: TimingCounters,
    /// Achieved streaming bandwidth over the replayed window (GB/s).
    pub achieved_gbs: f64,
}

/// One pluggable timing backend: every model-layer time charge flows
/// through exactly one of these per device shard.
///
/// All `charge_*` methods return nanoseconds (except
/// [`TimingModel::charge_host_copy`], which returns milliseconds to
/// match [`DramTiming::host_copy_ms`]) and follow execute-once-and-stall
/// semantics: calling them mutates backend state, and the returned time
/// includes any stalls that state implies. The [`Analytical`] backend is
/// stateless, so for it the returned times are the paper's closed forms.
pub trait TimingModel: std::fmt::Debug + Send {
    /// Which backend this is (used for conditional accounting).
    fn backend(&self) -> TimingBackend;

    /// Charges one lockstep sweep of `reads` full-row reads and
    /// `writes` full-row write-backs.
    fn charge_rows(&mut self, reads: u64, writes: u64, pattern: RowPattern) -> f64;

    /// Charges `reads` full-row reads, each extended by `extra_ns` of
    /// periphery work that overlaps the row cycle (row-wide popcount).
    fn charge_rows_extra(&mut self, reads: u64, extra_ns: f64, pattern: RowPattern) -> f64;

    /// Charges `pairs` activate–precharge pairs with no column access
    /// (the analog AAP/TRA primitive).
    fn charge_activate_precharge(&mut self, pairs: u64) -> f64;

    /// Charges walker row traffic for the bit-parallel targets:
    /// `rows_in` row reads and `rows_out` row write-backs, each paying a
    /// `gdl_ns` global-data-line crossing on top of the row cycle. The
    /// row counts are integral (they arrive as `f64` from the traffic
    /// model).
    fn charge_walker_rows(
        &mut self,
        rows_in: f64,
        rows_out: f64,
        gdl_ns: f64,
        pattern: RowPattern,
    ) -> f64;

    /// Charges a bandwidth-bound burst stream of `bytes` at `gbs` GB/s
    /// (the UPMEM MRAM DMA path). Burst streams are bandwidth-limited in
    /// both backends; the FSM additionally replays a bounded window for
    /// its row-buffer counters.
    fn charge_burst(&mut self, bytes: f64, gbs: f64) -> f64;

    /// Charges one host↔device copy of `bytes` over `ranks` rank
    /// channels, in milliseconds (matches [`DramTiming::host_copy_ms`]).
    fn charge_host_copy(&mut self, bytes: u64, ranks: usize) -> f64;

    /// Replays one host↔device copy of `bytes` through the bank state
    /// machines (bounded to [`COPY_REPLAY_MAX_ROWS`] rows) and returns
    /// its protocol counters. Stateless for [`Analytical`] (a fresh
    /// rank per call, preserving the historical per-copy trace
    /// counters); executed against the live state for [`BankFsm`].
    fn copy_replay(&mut self, bytes: u64) -> CopyReplay;

    /// Epoch boundary: closes every open row and returns the drain time
    /// in nanoseconds (0 for the stateless backend).
    fn drain(&mut self) -> f64;

    /// Cumulative protocol counters this backend has issued (all-zero
    /// for [`Analytical`], whose per-copy replays are advisory and
    /// transient).
    fn counters(&self) -> TimingCounters;

    /// Point-in-time per-bank state (empty for the stateless backend).
    fn snapshot(&self) -> Vec<BankSnapshot>;

    /// Resets all backend state and counters (epoch/statistics reset).
    fn reset(&mut self);
}

/// Constructs the backend selected by `backend` for a rank with `banks`
/// banks and `row_bytes`-byte rows.
pub fn make_timing_model(
    backend: TimingBackend,
    timing: &DramTiming,
    banks: usize,
    row_bytes: u64,
) -> Box<dyn TimingModel> {
    match backend {
        TimingBackend::Analytical => Box::new(Analytical::new(timing, banks, row_bytes)),
        TimingBackend::BankFsm => Box::new(BankFsm::new(timing, banks, row_bytes)),
    }
}

/// Replays one streaming copy of `bytes` on `sim` (bounded) and returns
/// the issued-window stats delta, the achieved bandwidth over the
/// window, and the number of unreplayed tail rows.
fn replay_copy_window(sim: &mut RankSim, bytes: u64, row_bytes: u64) -> (ProtocolStats, f64, u64) {
    let bursts = (row_bytes / 64).max(1) as usize;
    let full_rows = bytes.div_ceil(row_bytes).max(1);
    let rows = full_rows.min(COPY_REPLAY_MAX_ROWS as u64) as usize;
    let before = sim.stats();
    let t0 = sim.now_ns();
    let _ = sim.stream_read_bandwidth(rows, bursts, 64);
    let after = sim.stats();
    let window_ns = sim.now_ns() - t0;
    let window_bytes = (rows * bursts * 64) as f64;
    let gbs = if window_ns > 0.0 {
        window_bytes / window_ns
    } else {
        0.0
    };
    let delta = ProtocolStats {
        activations: after.activations - before.activations,
        reads: after.reads - before.reads,
        writes: after.writes - before.writes,
        precharges: after.precharges - before.precharges,
        row_hits: after.row_hits - before.row_hits,
        row_misses: after.row_misses - before.row_misses,
        elapsed_ns: window_ns,
    };
    (delta, gbs, full_rows - rows as u64)
}

/// Extends a replayed copy window's counters by `tail_rows` unreplayed
/// steady-state rows (1 ACT + 1 PRE + `bursts` reads per row, first
/// read a miss).
fn extrapolate_copy_counters(c: &mut TimingCounters, tail_rows: u64, row_bytes: u64) {
    if tail_rows == 0 {
        return;
    }
    let bursts = (row_bytes / 64).max(1);
    c.activations += tail_rows;
    c.precharges += tail_rows;
    c.reads += tail_rows * bursts;
    c.row_misses += tail_rows;
    c.row_hits += tail_rows * (bursts - 1);
}

/// The paper's closed-form timing math, bit-identical to the
/// pre-[`TimingModel`] simulator. Stateless: charges never interact, so
/// streaming and thrashing patterns price the same and
/// [`TimingModel::counters`] stays zero.
#[derive(Debug, Clone)]
pub struct Analytical {
    timing: DramTiming,
    banks: usize,
    row_bytes: u64,
}

impl Analytical {
    /// Closed-form backend over `timing` for a rank with `banks` banks
    /// and `row_bytes`-byte rows (the latter two only feed the advisory
    /// per-copy replay).
    pub fn new(timing: &DramTiming, banks: usize, row_bytes: u64) -> Self {
        Analytical {
            timing: *timing,
            banks,
            row_bytes,
        }
    }
}

impl TimingModel for Analytical {
    fn backend(&self) -> TimingBackend {
        TimingBackend::Analytical
    }

    fn charge_rows(&mut self, reads: u64, writes: u64, _pattern: RowPattern) -> f64 {
        reads as f64 * self.timing.row_read_ns + writes as f64 * self.timing.row_write_ns
    }

    fn charge_rows_extra(&mut self, reads: u64, extra_ns: f64, _pattern: RowPattern) -> f64 {
        reads as f64 * (self.timing.row_read_ns + extra_ns)
    }

    fn charge_activate_precharge(&mut self, pairs: u64) -> f64 {
        pairs as f64 * (self.timing.t_ras_ns + self.timing.t_rp_ns)
    }

    fn charge_walker_rows(
        &mut self,
        rows_in: f64,
        rows_out: f64,
        gdl_ns: f64,
        _pattern: RowPattern,
    ) -> f64 {
        rows_in * (self.timing.row_read_ns + gdl_ns)
            + rows_out * (gdl_ns + self.timing.row_write_ns)
    }

    fn charge_burst(&mut self, bytes: f64, gbs: f64) -> f64 {
        bytes / gbs
    }

    fn charge_host_copy(&mut self, bytes: u64, ranks: usize) -> f64 {
        self.timing.host_copy_ms(bytes, ranks)
    }

    fn copy_replay(&mut self, bytes: u64) -> CopyReplay {
        // Advisory and transient: a fresh rank per copy, exactly the
        // historical bounded replay, leaving no state behind.
        let mut sim = RankSim::new(ProtocolTiming::from_coarse(&self.timing), self.banks);
        let (delta, gbs, _tail) = replay_copy_window(&mut sim, bytes, self.row_bytes);
        CopyReplay {
            counters: delta.into(),
            achieved_gbs: gbs,
        }
    }

    fn drain(&mut self) -> f64 {
        0.0
    }

    fn counters(&self) -> TimingCounters {
        TimingCounters::default()
    }

    fn snapshot(&self) -> Vec<BankSnapshot> {
        Vec::new()
    }

    fn reset(&mut self) {}
}

/// The stateful bank-FSM backend: every charge issues closed-page row
/// cycles (or bounded burst replays) against one [`RankSim`] and prices
/// the stalls its interlocks impose.
#[derive(Debug)]
pub struct BankFsm {
    sim: RankSim,
    timing: DramTiming,
    banks: usize,
    row_bytes: u64,
    cursor: usize,
    counters: TimingCounters,
}

impl BankFsm {
    /// Stateful backend over `timing` for a rank with `banks` banks and
    /// `row_bytes`-byte rows.
    pub fn new(timing: &DramTiming, banks: usize, row_bytes: u64) -> Self {
        BankFsm {
            sim: RankSim::new(ProtocolTiming::from_coarse(timing), banks.max(1)),
            timing: *timing,
            banks: banks.max(1),
            row_bytes,
            cursor: 0,
            counters: TimingCounters::default(),
        }
    }

    fn pick_bank(&mut self, pattern: RowPattern) -> usize {
        match pattern {
            RowPattern::Streaming => {
                let b = self.cursor;
                self.cursor = (self.cursor + 1) % self.banks;
                b
            }
            RowPattern::Thrashing => 0,
        }
    }

    /// Issues `n` closed-page row accesses (bounded replay +
    /// extrapolated steady-state tail) and returns the elapsed time.
    fn run_accesses(&mut self, n: u64, write: bool, extra_ns: f64, pattern: RowPattern) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let replay = n.min(ROW_REPLAY_CAP);
        let before = self.sim.stats();
        let mut elapsed = 0.0;
        let mut last = 0.0;
        for _ in 0..replay {
            let bank = self.pick_bank(pattern);
            last = self
                .sim
                .row_cycle(bank, write, extra_ns)
                .expect("bank cursor stays in range");
            elapsed += last;
        }
        let mut delta: TimingCounters =
            TimingCounters::from(self.sim.stats()).delta_since(&TimingCounters::from(before));
        let tail = n - replay;
        if tail > 0 {
            // Steady state: every further access repeats the last delta.
            let tail_ns = tail as f64 * last;
            self.sim.advance(tail_ns);
            elapsed += tail_ns;
            delta.activations += tail;
            delta.precharges += tail;
            delta.row_misses += tail;
            if write {
                delta.writes += tail;
            } else {
                delta.reads += tail;
            }
        }
        self.counters.merge(&delta);
        elapsed
    }

    /// Runs one bounded burst replay against the live state and
    /// accounts its (extrapolated) counters. Returns the achieved
    /// bandwidth over the replayed window.
    fn account_burst(&mut self, bytes: u64) -> CopyReplay {
        let (delta, gbs, tail_rows) = replay_copy_window(&mut self.sim, bytes, self.row_bytes);
        let mut counters = TimingCounters::from(delta);
        extrapolate_copy_counters(&mut counters, tail_rows, self.row_bytes);
        self.counters.merge(&counters);
        // The real transfer lasts far longer than the replayed window;
        // by the time it completes every bank has recovered. Close the
        // replay's open rows and settle past all recoveries so the next
        // row charge starts from a quiescent rank.
        self.sim.drain_open_rows();
        let settle = self
            .sim
            .bank_snapshots()
            .iter()
            .map(|b| b.ready_at_ns)
            .fold(0.0f64, f64::max)
            - self.sim.now_ns();
        self.sim.advance(settle);
        CopyReplay {
            counters,
            achieved_gbs: gbs,
        }
    }
}

impl TimingModel for BankFsm {
    fn backend(&self) -> TimingBackend {
        TimingBackend::BankFsm
    }

    fn charge_rows(&mut self, reads: u64, writes: u64, pattern: RowPattern) -> f64 {
        self.run_accesses(reads, false, 0.0, pattern)
            + self.run_accesses(writes, true, 0.0, pattern)
    }

    fn charge_rows_extra(&mut self, reads: u64, extra_ns: f64, pattern: RowPattern) -> f64 {
        self.run_accesses(reads, false, extra_ns, pattern)
    }

    fn charge_activate_precharge(&mut self, pairs: u64) -> f64 {
        if pairs == 0 {
            return 0.0;
        }
        let replay = pairs.min(ROW_REPLAY_CAP);
        let mut elapsed = 0.0;
        let mut last = 0.0;
        for _ in 0..replay {
            let bank = self.pick_bank(RowPattern::Streaming);
            last = self
                .sim
                .activate_precharge_cycle(bank)
                .expect("bank cursor stays in range");
            elapsed += last;
        }
        let tail = pairs - replay;
        if tail > 0 {
            let tail_ns = tail as f64 * last;
            self.sim.advance(tail_ns);
            elapsed += tail_ns;
        }
        self.counters.activations += pairs;
        self.counters.precharges += pairs;
        elapsed
    }

    fn charge_walker_rows(
        &mut self,
        rows_in: f64,
        rows_out: f64,
        gdl_ns: f64,
        pattern: RowPattern,
    ) -> f64 {
        self.run_accesses(rows_in as u64, false, gdl_ns, pattern)
            + self.run_accesses(rows_out as u64, true, gdl_ns, pattern)
    }

    fn charge_burst(&mut self, bytes: f64, gbs: f64) -> f64 {
        if bytes > 0.0 {
            self.account_burst(bytes.max(1.0) as u64);
        }
        // Burst DMA is bandwidth-bound in both backends; the replay
        // above only feeds the row-buffer counters.
        bytes / gbs
    }

    fn charge_host_copy(&mut self, bytes: u64, ranks: usize) -> f64 {
        self.timing.host_copy_ms(bytes, ranks)
    }

    fn copy_replay(&mut self, bytes: u64) -> CopyReplay {
        self.account_burst(bytes)
    }

    fn drain(&mut self) -> f64 {
        self.sim.drain_open_rows()
    }

    fn counters(&self) -> TimingCounters {
        self.counters
    }

    fn snapshot(&self) -> Vec<BankSnapshot> {
        self.sim.bank_snapshots()
    }

    fn reset(&mut self) {
        self.sim = RankSim::new(ProtocolTiming::from_coarse(&self.timing), self.banks);
        self.cursor = 0;
        self.counters = TimingCounters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Analytical, BankFsm) {
        let t = DramTiming::ddr4_default();
        (Analytical::new(&t, 16, 1024), BankFsm::new(&t, 16, 1024))
    }

    #[test]
    fn streaming_rows_agree_bit_for_bit() {
        let (mut a, mut f) = pair();
        for (r, w) in [(1u64, 0u64), (7, 3), (64, 64), (501, 13)] {
            let ta = a.charge_rows(r, w, RowPattern::Streaming);
            let tf = f.charge_rows(r, w, RowPattern::Streaming);
            assert_eq!(ta, tf, "reads={r} writes={w}");
        }
    }

    #[test]
    fn streaming_extra_and_walker_and_ap_agree() {
        let (mut a, mut f) = pair();
        let gdl = 192.0;
        assert_eq!(
            a.charge_rows_extra(33, 2.0, RowPattern::Streaming),
            f.charge_rows_extra(33, 2.0, RowPattern::Streaming)
        );
        assert_eq!(
            a.charge_walker_rows(128.0, 64.0, gdl, RowPattern::Streaming),
            f.charge_walker_rows(128.0, 64.0, gdl, RowPattern::Streaming)
        );
        assert_eq!(
            a.charge_activate_precharge(97),
            f.charge_activate_precharge(97)
        );
        assert_eq!(a.charge_burst(4096.0, 25.6), f.charge_burst(4096.0, 25.6));
        assert_eq!(
            a.charge_host_copy(1 << 20, 4),
            f.charge_host_copy(1 << 20, 4)
        );
    }

    #[test]
    fn extrapolated_tail_matches_the_closed_form() {
        // Far past the replay cap: the steady-state extrapolation must
        // still land exactly on n × row_read_ns.
        let (mut a, mut f) = pair();
        let n = 10 * ROW_REPLAY_CAP + 17;
        assert_eq!(
            a.charge_rows(n, 0, RowPattern::Streaming),
            f.charge_rows(n, 0, RowPattern::Streaming)
        );
    }

    #[test]
    fn thrashing_is_strictly_slower() {
        let (mut a, mut f) = pair();
        let analytical = a.charge_rows(64, 64, RowPattern::Thrashing);
        let fsm = f.charge_rows(64, 64, RowPattern::Thrashing);
        assert!(
            fsm > analytical,
            "row thrashing must stall the FSM: {fsm} vs {analytical}"
        );
    }

    #[test]
    fn fsm_counts_rows_and_copies() {
        let (_, mut f) = pair();
        f.charge_rows(10, 5, RowPattern::Streaming);
        let replay = f.copy_replay(64 * 1024);
        assert!(replay.counters.row_hits > 0, "burst reads hit open rows");
        assert!(replay.achieved_gbs > 0.0);
        let c = f.counters();
        assert_eq!(c.reads, 10 + replay.counters.reads);
        assert_eq!(c.writes, 5);
        assert_eq!(c.row_misses, 15 + replay.counters.row_misses);
        // 64 KiB in 1 KiB rows = 64 rows, extrapolated past the 32-row
        // replay window.
        assert_eq!(replay.counters.activations, 64);
    }

    #[test]
    fn copies_leave_the_rank_quiescent_for_row_charges() {
        // A row charge right after a copy must not inherit stalls from
        // the replay window (the real transfer outlasts every recovery).
        let (mut a, mut f) = pair();
        f.copy_replay(1 << 20);
        assert_eq!(
            a.charge_rows(4, 0, RowPattern::Streaming),
            f.charge_rows(4, 0, RowPattern::Streaming)
        );
    }

    #[test]
    fn analytical_keeps_no_state() {
        let (mut a, _) = pair();
        let replay = a.copy_replay(1 << 20);
        assert!(replay.counters.activations > 0);
        assert!(a.counters().is_empty());
        assert!(a.snapshot().is_empty());
        assert_eq!(a.drain(), 0.0);
    }

    #[test]
    fn reset_restores_a_fresh_fsm() {
        let (_, mut f) = pair();
        f.charge_rows(100, 100, RowPattern::Thrashing);
        assert!(!f.counters().is_empty());
        f.reset();
        assert!(f.counters().is_empty());
        let t = DramTiming::ddr4_default();
        assert_eq!(
            f.charge_rows(8, 8, RowPattern::Streaming),
            8.0 * t.row_read_ns + 8.0 * t.row_write_ns
        );
    }

    #[test]
    fn backend_parsing_and_env_names() {
        assert_eq!(TimingBackend::parse("fsm"), Some(TimingBackend::BankFsm));
        assert_eq!(
            TimingBackend::parse("Analytical"),
            Some(TimingBackend::Analytical)
        );
        assert_eq!(TimingBackend::parse("nope"), None);
        assert_eq!(TimingBackend::BankFsm.to_string(), "fsm");
    }
}
