//! Command-level DRAM protocol timing (a DRAMsim3-lite).
//!
//! §V-C: "For more precise modeling, integration with DRAMsim3 has been
//! left as future work. PIMeval currently does not differentiate between
//! channels and ranks". This module is a self-contained step in that
//! direction: a bank-state machine that times an ACT/RD/WR/PRE command
//! stream with row-buffer hit/miss accounting, usable to sanity-check
//! the closed-form copy model against a protocol-level replay.
//!
//! Modeled constraints (per bank): tRCD between ACT and column command,
//! tRAS minimum row-open time, tRP after PRE, CL read latency, and tCCD
//! between column commands on the same rank. Banks interleave freely, as
//! §III describes ("one bank can be precharging while another is
//! providing data").

use crate::error::DramError;
use crate::timing::DramTiming;

/// Protocol-level timing parameters derived from [`DramTiming`] plus the
/// column-access latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolTiming {
    /// ACT → column command (ns).
    pub t_rcd_ns: f64,
    /// Minimum ACT → PRE (ns).
    pub t_ras_ns: f64,
    /// PRE → next ACT (ns).
    pub t_rp_ns: f64,
    /// Column command → data (CAS latency, ns).
    pub cl_ns: f64,
    /// Column write → write-back complete (ns); derived so a full
    /// closed-bank row write costs exactly the coarse `row_write_ns`.
    pub t_wr_ns: f64,
    /// Column command → column command, same rank (ns).
    pub t_ccd_ns: f64,
}

impl ProtocolTiming {
    /// Derives protocol parameters from the coarse [`DramTiming`]: the
    /// coarse `row_read_ns` is interpreted as tRCD + CL (split evenly),
    /// and `row_write_ns` as tRCD + tWR. No consistency checks are
    /// performed — use [`ProtocolTiming::from_coarse_checked`] to reject
    /// parameter sets where the interlocks are unsatisfiable (e.g.
    /// tRAS < tRCD).
    pub fn from_coarse(t: &DramTiming) -> Self {
        let t_rcd = t.row_read_ns / 2.0;
        ProtocolTiming {
            t_rcd_ns: t_rcd,
            t_ras_ns: t.t_ras_ns,
            t_rp_ns: t.t_rp_ns,
            cl_ns: t.row_read_ns - t_rcd,
            t_wr_ns: t.row_write_ns - t_rcd,
            t_ccd_ns: t.t_ccd_ns,
        }
    }

    /// Checked variant of [`ProtocolTiming::from_coarse`].
    ///
    /// # Errors
    ///
    /// [`DramError::InvalidTiming`] when the derived parameter set is
    /// inconsistent; see [`ProtocolTiming::validate`].
    pub fn from_coarse_checked(t: &DramTiming) -> Result<Self, DramError> {
        let p = ProtocolTiming::from_coarse(t);
        p.validate()?;
        Ok(p)
    }

    /// Validates the parameter set against the interlocks the bank FSM
    /// enforces: every parameter must be finite and positive, a row must
    /// stay open at least until its column command can issue
    /// (tRAS ≥ tRCD), and the coarse write latency must exceed tRCD so
    /// the derived tWR is positive.
    ///
    /// # Errors
    ///
    /// [`DramError::InvalidTiming`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), DramError> {
        let fields = [
            ("t_rcd_ns", self.t_rcd_ns),
            ("t_ras_ns", self.t_ras_ns),
            ("t_rp_ns", self.t_rp_ns),
            ("cl_ns", self.cl_ns),
            ("t_wr_ns", self.t_wr_ns),
            ("t_ccd_ns", self.t_ccd_ns),
        ];
        for (name, v) in fields {
            if !v.is_finite() || v <= 0.0 {
                return Err(DramError::InvalidTiming(format!(
                    "{name} must be finite and positive, got {v}"
                )));
            }
        }
        if self.t_ras_ns < self.t_rcd_ns {
            return Err(DramError::InvalidTiming(format!(
                "tRAS ({}) must be at least tRCD ({}): a row cannot close \
                 before its column command can issue",
                self.t_ras_ns, self.t_rcd_ns
            )));
        }
        Ok(())
    }
}

/// One DRAM command addressed to a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Activate `row` in `bank`.
    Activate {
        /// Target bank.
        bank: usize,
        /// Row to open.
        row: usize,
    },
    /// Column read from `bank` (open row required).
    Read {
        /// Target bank.
        bank: usize,
    },
    /// Column write to `bank` (open row required).
    Write {
        /// Target bank.
        bank: usize,
    },
    /// Precharge `bank`.
    Precharge {
        /// Target bank.
        bank: usize,
    },
}

#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open_row: Option<usize>,
    ready_at: f64,  // earliest time the bank accepts its next command
    opened_at: f64, // ACT issue time (for tRAS)
    fresh: bool,    // no column command since the last ACT
}

/// Accounting from a replayed command stream.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProtocolStats {
    /// Row activations issued.
    pub activations: u64,
    /// Column reads issued.
    pub reads: u64,
    /// Column writes issued.
    pub writes: u64,
    /// Precharges issued.
    pub precharges: u64,
    /// Column commands that hit an already-open row (a prior column
    /// command already touched the open row).
    pub row_hits: u64,
    /// Column commands that paid a fresh activation (the first column
    /// command after each ACT).
    pub row_misses: u64,
    /// Total elapsed time (ns).
    pub elapsed_ns: f64,
}

/// Point-in-time state of one bank, exposed for timing-model snapshots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BankSnapshot {
    /// The open row, if the bank is activated.
    pub open_row: Option<usize>,
    /// Earliest time (ns) the bank accepts its next command.
    pub ready_at_ns: f64,
}

/// An in-order, per-rank command scheduler over `banks` bank state
/// machines.
///
/// # Example
///
/// ```
/// use pim_dram::protocol::{Command, ProtocolTiming, RankSim};
/// use pim_dram::DramTiming;
///
/// let mut sim = RankSim::new(ProtocolTiming::from_coarse(&DramTiming::ddr4_default()), 4);
/// sim.issue(Command::Activate { bank: 0, row: 7 }).unwrap();
/// sim.issue(Command::Read { bank: 0 }).unwrap(); // row-buffer miss (fresh ACT)
/// sim.issue(Command::Read { bank: 0 }).unwrap(); // row-buffer hit
/// assert_eq!(sim.stats().row_misses, 1);
/// assert_eq!(sim.stats().row_hits, 1);
/// ```
#[derive(Debug)]
pub struct RankSim {
    timing: ProtocolTiming,
    banks: Vec<BankState>,
    /// Earliest time the shared command/data bus accepts a column command.
    bus_free_at: f64,
    now: f64,
    stats: ProtocolStats,
}

/// Protocol violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Command addressed a bank the rank does not have.
    NoSuchBank(usize),
    /// Column command to a bank with no open row.
    RowNotOpen(usize),
    /// ACT to a bank that already has an open row.
    RowAlreadyOpen(usize),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::NoSuchBank(b) => write!(f, "no such bank {b}"),
            ProtocolError::RowNotOpen(b) => write!(f, "bank {b} has no open row"),
            ProtocolError::RowAlreadyOpen(b) => write!(f, "bank {b} already has an open row"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl RankSim {
    /// Creates a rank with `banks` banks at time 0.
    pub fn new(timing: ProtocolTiming, banks: usize) -> Self {
        RankSim {
            timing,
            banks: vec![BankState::default(); banks],
            bus_free_at: 0.0,
            now: 0.0,
            stats: ProtocolStats::default(),
        }
    }

    /// The accumulated statistics (elapsed time includes the CAS latency
    /// of the last column command).
    pub fn stats(&self) -> ProtocolStats {
        let mut s = self.stats;
        s.elapsed_ns = self.now.max(self.bus_free_at);
        s
    }

    /// Issues one command at the earliest legal time.
    ///
    /// # Errors
    ///
    /// A [`ProtocolError`] if the command is illegal in the current bank
    /// state; timing constraints never error — they stall.
    pub fn issue(&mut self, cmd: Command) -> Result<(), ProtocolError> {
        let t = self.timing;
        let bank_idx = match cmd {
            Command::Activate { bank, .. }
            | Command::Read { bank }
            | Command::Write { bank }
            | Command::Precharge { bank } => bank,
        };
        let nbanks = self.banks.len();
        let bank = self
            .banks
            .get_mut(bank_idx)
            .ok_or(ProtocolError::NoSuchBank(bank_idx))?;
        let _ = nbanks;
        match cmd {
            Command::Activate { row, .. } => {
                if bank.open_row.is_some() {
                    return Err(ProtocolError::RowAlreadyOpen(bank_idx));
                }
                let start = self.now.max(bank.ready_at);
                bank.open_row = Some(row);
                bank.opened_at = start;
                bank.ready_at = start + t.t_rcd_ns;
                bank.fresh = true;
                self.now = start; // command bus occupancy is negligible here
                self.stats.activations += 1;
            }
            Command::Read { .. } | Command::Write { .. } => {
                if bank.open_row.is_none() {
                    return Err(ProtocolError::RowNotOpen(bank_idx));
                }
                let start = self.now.max(bank.ready_at).max(self.bus_free_at);
                self.bus_free_at = start + t.t_ccd_ns;
                bank.ready_at = start + t.t_ccd_ns;
                self.now = start;
                if matches!(cmd, Command::Read { .. }) {
                    self.stats.reads += 1;
                } else {
                    self.stats.writes += 1;
                }
                if bank.fresh {
                    bank.fresh = false;
                    self.stats.row_misses += 1;
                } else {
                    self.stats.row_hits += 1;
                }
            }
            Command::Precharge { .. } => {
                if bank.open_row.is_none() {
                    return Err(ProtocolError::RowNotOpen(bank_idx));
                }
                let start = self.now.max(bank.ready_at).max(bank.opened_at + t.t_ras_ns);
                bank.open_row = None;
                bank.ready_at = start + t.t_rp_ns;
                self.now = start;
                self.stats.precharges += 1;
            }
        }
        Ok(())
    }

    /// The simulated clock: completion time of the last access-level
    /// operation, or issue time of the last raw command (ns).
    pub fn now_ns(&self) -> f64 {
        self.now.max(self.bus_free_at)
    }

    /// Advances the clock by `ns` without issuing commands — used by
    /// timing backends to account an extrapolated steady-state tail
    /// after a bounded replay (execute-once-and-stall: later charges
    /// observe the advanced clock).
    pub fn advance(&mut self, ns: f64) {
        if ns > 0.0 {
            self.now += ns;
        }
    }

    /// One closed-page full-row access: precharge any stale open row,
    /// activate, issue the column command, and schedule the bank's
    /// auto-precharge (earliest tRAS + tRP after the ACT). Returns the
    /// clock advance (completion − previous completion), which exceeds
    /// the raw access latency exactly when bank interlocks stall the
    /// access.
    ///
    /// A fresh-bank read completes in tRCD + CL (= the coarse
    /// `row_read_ns`) and a fresh-bank write in tRCD + tWR (= the coarse
    /// `row_write_ns`); `extra_ns` extends the access for periphery work
    /// that overlaps the row cycle (row-wide popcount, GDL crossings).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::NoSuchBank`] for an out-of-range bank.
    pub fn row_cycle(
        &mut self,
        bank_idx: usize,
        write: bool,
        extra_ns: f64,
    ) -> Result<f64, ProtocolError> {
        let t = self.timing;
        let bank = self
            .banks
            .get_mut(bank_idx)
            .ok_or(ProtocolError::NoSuchBank(bank_idx))?;
        if bank.open_row.is_some() {
            // Close a row left open by a burst replay before re-activating.
            let pre = self.now.max(bank.ready_at).max(bank.opened_at + t.t_ras_ns);
            bank.open_row = None;
            bank.fresh = false;
            bank.ready_at = pre + t.t_rp_ns;
            self.stats.precharges += 1;
        }
        let start = self.now.max(bank.ready_at);
        let column_ns = if write { t.t_wr_ns } else { t.cl_ns };
        let access_ns = t.t_rcd_ns + column_ns + extra_ns;
        let done = start + access_ns;
        // Auto-precharge as soon as tRAS allows; the bank re-opens tRP later.
        bank.opened_at = start;
        bank.open_row = None;
        bank.fresh = false;
        bank.ready_at = start + access_ns.max(t.t_ras_ns) + t.t_rp_ns;
        self.stats.activations += 1;
        self.stats.precharges += 1;
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        self.stats.row_misses += 1;
        let delta = done - self.now;
        self.now = done;
        Ok(delta)
    }

    /// One activate–precharge pair with no column access (the analog
    /// AAP/TRA primitive): completes tRAS + tRP after it starts, which
    /// is also when the bank accepts its next command. Returns the clock
    /// advance.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::NoSuchBank`] for an out-of-range bank.
    pub fn activate_precharge_cycle(&mut self, bank_idx: usize) -> Result<f64, ProtocolError> {
        let t = self.timing;
        let bank = self
            .banks
            .get_mut(bank_idx)
            .ok_or(ProtocolError::NoSuchBank(bank_idx))?;
        let start = self.now.max(bank.ready_at);
        let done = start + (t.t_ras_ns + t.t_rp_ns);
        bank.opened_at = start;
        bank.open_row = None;
        bank.fresh = false;
        bank.ready_at = done;
        self.stats.activations += 1;
        self.stats.precharges += 1;
        let delta = done - self.now;
        self.now = done;
        Ok(delta)
    }

    /// Epoch boundary: precharges every open row and advances the clock
    /// past all precharge completions. Returns the elapsed drain time
    /// (ns), zero when no rows were open.
    pub fn drain_open_rows(&mut self) -> f64 {
        let t = self.timing;
        let before = self.now_ns();
        let mut latest = self.now;
        for bank in &mut self.banks {
            if bank.open_row.is_some() {
                let pre = self.now.max(bank.ready_at).max(bank.opened_at + t.t_ras_ns);
                bank.open_row = None;
                bank.fresh = false;
                bank.ready_at = pre + t.t_rp_ns;
                self.stats.precharges += 1;
                latest = latest.max(bank.ready_at);
            }
        }
        self.now = self.now.max(latest);
        self.now_ns() - before
    }

    /// Point-in-time state of every bank (open row + next-ready time).
    pub fn bank_snapshots(&self) -> Vec<BankSnapshot> {
        self.banks
            .iter()
            .map(|b| BankSnapshot {
                open_row: b.open_row,
                ready_at_ns: b.ready_at,
            })
            .collect()
    }

    /// Replays a streaming read of `bursts` column reads per row across
    /// `rows` rows, round-robin over all banks with the next row's
    /// activation issued ahead of time (the §III interleaving that lets
    /// "one bank ... be precharging while another is providing data").
    /// Returns achieved bandwidth in GB/s for `bytes_per_burst` bytes per
    /// column command.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors (none occur for valid parameters).
    pub fn stream_read_bandwidth(
        &mut self,
        rows: usize,
        bursts: usize,
        bytes_per_burst: usize,
    ) -> Result<f64, ProtocolError> {
        let nbanks = self.banks.len();
        if rows > 0 {
            self.issue(Command::Activate { bank: 0, row: 0 })?;
        }
        for r in 0..rows {
            let bank = r % nbanks;
            // Pre-activate the next row's bank so its tRCD (and the
            // previous cycle's tRP on that bank) hide under this row's
            // column reads.
            if r + 1 < rows && nbanks > 1 {
                self.issue(Command::Activate {
                    bank: (r + 1) % nbanks,
                    row: r + 1,
                })?;
            }
            for _ in 0..bursts {
                self.issue(Command::Read { bank })?;
            }
            self.issue(Command::Precharge { bank })?;
            if r + 1 < rows && nbanks == 1 {
                self.issue(Command::Activate {
                    bank: 0,
                    row: r + 1,
                })?;
            }
        }
        let total_bytes = (rows * bursts * bytes_per_burst) as f64;
        Ok(total_bytes / self.stats().elapsed_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> ProtocolTiming {
        ProtocolTiming::from_coarse(&DramTiming::ddr4_default())
    }

    #[test]
    fn column_before_activate_is_rejected() {
        let mut sim = RankSim::new(timing(), 2);
        assert_eq!(
            sim.issue(Command::Read { bank: 0 }),
            Err(ProtocolError::RowNotOpen(0))
        );
        assert_eq!(
            sim.issue(Command::Precharge { bank: 1 }),
            Err(ProtocolError::RowNotOpen(1))
        );
        assert_eq!(
            sim.issue(Command::Read { bank: 9 }),
            Err(ProtocolError::NoSuchBank(9))
        );
    }

    #[test]
    fn double_activate_is_rejected() {
        let mut sim = RankSim::new(timing(), 1);
        sim.issue(Command::Activate { bank: 0, row: 0 }).unwrap();
        assert_eq!(
            sim.issue(Command::Activate { bank: 0, row: 1 }),
            Err(ProtocolError::RowAlreadyOpen(0))
        );
    }

    #[test]
    fn row_hits_avoid_activation_latency() {
        // 64 reads from one open row must take ~64×tCCD, far below
        // 64×(tRCD + tRP + ...) with a miss per access.
        let t = timing();
        let mut sim = RankSim::new(t, 1);
        sim.issue(Command::Activate { bank: 0, row: 0 }).unwrap();
        for _ in 0..64 {
            sim.issue(Command::Read { bank: 0 }).unwrap();
        }
        let hit_time = sim.stats().elapsed_ns;
        assert!(
            hit_time <= t.t_rcd_ns + 64.0 * t.t_ccd_ns + 1e-9,
            "{hit_time}"
        );

        // The same 64 reads with an ACT/PRE per access are much slower.
        let mut churn = RankSim::new(t, 1);
        for r in 0..64 {
            churn.issue(Command::Activate { bank: 0, row: r }).unwrap();
            churn.issue(Command::Read { bank: 0 }).unwrap();
            churn.issue(Command::Precharge { bank: 0 }).unwrap();
        }
        assert!(churn.stats().elapsed_ns > 5.0 * hit_time);
    }

    #[test]
    fn bank_interleaving_hides_precharge() {
        // Alternate reads across two banks while each precharges —
        // elapsed time stays near the tCCD-limited floor.
        let t = timing();
        let mut sim = RankSim::new(t, 2);
        sim.issue(Command::Activate { bank: 0, row: 0 }).unwrap();
        sim.issue(Command::Activate { bank: 1, row: 0 }).unwrap();
        for _ in 0..32 {
            sim.issue(Command::Read { bank: 0 }).unwrap();
            sim.issue(Command::Read { bank: 1 }).unwrap();
        }
        let elapsed = sim.stats().elapsed_ns;
        let floor = 64.0 * t.t_ccd_ns;
        assert!(
            elapsed <= floor + t.t_rcd_ns + 1e-9,
            "{elapsed} vs floor {floor}"
        );
    }

    #[test]
    fn streaming_bandwidth_approaches_the_coarse_model() {
        // A long streaming read should land within ~25 % of the coarse
        // model's rank bandwidth — the cross-check the paper defers to
        // DRAMsim3.
        let coarse = DramTiming::ddr4_default();
        let mut sim = RankSim::new(ProtocolTiming::from_coarse(&coarse), 16);
        // DDR4 BL8 on a 64-bit bus: 64 bytes per column command; a
        // 1024-byte row page is 16 bursts.
        let gbs = sim.stream_read_bandwidth(512, 16, 64).unwrap();
        let ratio = gbs / coarse.rank_bandwidth_gbs;
        assert!(
            (0.75..=1.35).contains(&ratio),
            "protocol replay {gbs:.1} GB/s vs coarse {} GB/s",
            coarse.rank_bandwidth_gbs
        );
    }

    #[test]
    fn checked_construction_accepts_the_defaults() {
        assert!(ProtocolTiming::from_coarse_checked(&DramTiming::ddr4_default()).is_ok());
        assert!(ProtocolTiming::from_coarse_checked(&DramTiming::hbm2_default()).is_ok());
    }

    #[test]
    fn checked_construction_rejects_tras_below_trcd() {
        // row_read_ns = 80 → tRCD = 40 > tRAS = 32.
        let bad = DramTiming {
            row_read_ns: 80.0,
            row_write_ns: 95.0,
            ..DramTiming::ddr4_default()
        };
        let err = ProtocolTiming::from_coarse_checked(&bad).unwrap_err();
        assert!(matches!(err, crate::DramError::InvalidTiming(_)), "{err}");
    }

    #[test]
    fn checked_construction_rejects_nonpositive_parameters() {
        for mutate in [
            |t: &mut DramTiming| t.row_read_ns = 0.0,
            |t: &mut DramTiming| t.t_rp_ns = -1.0,
            |t: &mut DramTiming| t.t_ccd_ns = f64::NAN,
            // row_write_ns ≤ tRCD makes the derived tWR non-positive.
            |t: &mut DramTiming| t.row_write_ns = 10.0,
        ] {
            let mut t = DramTiming::ddr4_default();
            mutate(&mut t);
            assert!(ProtocolTiming::from_coarse_checked(&t).is_err(), "{t:?}");
        }
    }

    #[test]
    fn first_column_after_act_is_a_miss_then_hits() {
        let mut sim = RankSim::new(timing(), 1);
        sim.issue(Command::Activate { bank: 0, row: 3 }).unwrap();
        for _ in 0..4 {
            sim.issue(Command::Read { bank: 0 }).unwrap();
        }
        let s = sim.stats();
        assert_eq!(s.row_misses, 1);
        assert_eq!(s.row_hits, 3);
    }

    #[test]
    fn fresh_row_cycle_costs_exactly_the_coarse_latencies() {
        let coarse = DramTiming::ddr4_default();
        let mut sim = RankSim::new(ProtocolTiming::from_coarse(&coarse), 2);
        let rd = sim.row_cycle(0, false, 0.0).unwrap();
        assert_eq!(rd, coarse.row_read_ns);
        let wr = sim.row_cycle(1, true, 0.0).unwrap();
        assert_eq!(wr, coarse.row_write_ns);
        let s = sim.stats();
        assert_eq!((s.activations, s.precharges), (2, 2));
        assert_eq!((s.reads, s.writes, s.row_misses), (1, 1, 2));
    }

    #[test]
    fn same_bank_row_cycles_stall_on_the_recovery_interlock() {
        let t = timing();
        let coarse = DramTiming::ddr4_default();
        let mut sim = RankSim::new(t, 2);
        sim.row_cycle(0, false, 0.0).unwrap();
        // Re-activating the same bank waits for its tRAS + tRP recovery.
        let second = sim.row_cycle(0, false, 0.0).unwrap();
        assert!(
            second >= t.t_ras_ns + t.t_rp_ns - 1e-9,
            "stalled access took {second}"
        );
        assert!(second > coarse.row_read_ns);
        // A different bank is fully recovered and pays no stall.
        let other = sim.row_cycle(1, false, 0.0).unwrap();
        assert_eq!(other, coarse.row_read_ns);
    }

    #[test]
    fn activate_precharge_cycle_costs_tras_plus_trp() {
        let t = timing();
        let mut sim = RankSim::new(t, 1);
        let d = sim.activate_precharge_cycle(0).unwrap();
        assert_eq!(d, t.t_ras_ns + t.t_rp_ns);
        // Back-to-back AP cycles on one bank chain without extra stall:
        // the bank is ready exactly when the previous cycle completes.
        let d2 = sim.activate_precharge_cycle(0).unwrap();
        assert_eq!(d2, t.t_ras_ns + t.t_rp_ns);
    }

    #[test]
    fn drain_closes_open_rows_and_is_idempotent() {
        let mut sim = RankSim::new(timing(), 2);
        sim.issue(Command::Activate { bank: 0, row: 0 }).unwrap();
        sim.issue(Command::Read { bank: 0 }).unwrap();
        assert!(sim.bank_snapshots()[0].open_row.is_some());
        let drained = sim.drain_open_rows();
        assert!(drained > 0.0);
        assert!(sim.bank_snapshots().iter().all(|b| b.open_row.is_none()));
        assert_eq!(sim.drain_open_rows(), 0.0);
    }

    #[test]
    fn tras_delays_early_precharge() {
        let t = timing();
        let mut sim = RankSim::new(t, 1);
        sim.issue(Command::Activate { bank: 0, row: 0 }).unwrap();
        sim.issue(Command::Precharge { bank: 0 }).unwrap();
        // PRE cannot complete before tRAS + tRP after the ACT.
        assert!(sim.stats().precharges == 1);
        sim.issue(Command::Activate { bank: 0, row: 1 }).unwrap();
        let s = sim.stats();
        assert!(s.elapsed_ns >= t.t_ras_ns + t.t_rp_ns - 1e-9, "{s:?}");
    }
}
