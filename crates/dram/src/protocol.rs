//! Command-level DRAM protocol timing (a DRAMsim3-lite).
//!
//! §V-C: "For more precise modeling, integration with DRAMsim3 has been
//! left as future work. PIMeval currently does not differentiate between
//! channels and ranks". This module is a self-contained step in that
//! direction: a bank-state machine that times an ACT/RD/WR/PRE command
//! stream with row-buffer hit/miss accounting, usable to sanity-check
//! the closed-form copy model against a protocol-level replay.
//!
//! Modeled constraints (per bank): tRCD between ACT and column command,
//! tRAS minimum row-open time, tRP after PRE, CL read latency, and tCCD
//! between column commands on the same rank. Banks interleave freely, as
//! §III describes ("one bank can be precharging while another is
//! providing data").

use crate::timing::DramTiming;

/// Protocol-level timing parameters derived from [`DramTiming`] plus the
/// column-access latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolTiming {
    /// ACT → column command (ns).
    pub t_rcd_ns: f64,
    /// Minimum ACT → PRE (ns).
    pub t_ras_ns: f64,
    /// PRE → next ACT (ns).
    pub t_rp_ns: f64,
    /// Column command → data (CAS latency, ns).
    pub cl_ns: f64,
    /// Column command → column command, same rank (ns).
    pub t_ccd_ns: f64,
}

impl ProtocolTiming {
    /// Derives protocol parameters from the coarse [`DramTiming`]:
    /// the coarse `row_read_ns` is interpreted as tRCD + CL.
    pub fn from_coarse(t: &DramTiming) -> Self {
        let t_rcd = t.row_read_ns / 2.0;
        ProtocolTiming {
            t_rcd_ns: t_rcd,
            t_ras_ns: t.t_ras_ns,
            t_rp_ns: t.t_rp_ns,
            cl_ns: t.row_read_ns - t_rcd,
            t_ccd_ns: t.t_ccd_ns,
        }
    }
}

/// One DRAM command addressed to a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Activate `row` in `bank`.
    Activate {
        /// Target bank.
        bank: usize,
        /// Row to open.
        row: usize,
    },
    /// Column read from `bank` (open row required).
    Read {
        /// Target bank.
        bank: usize,
    },
    /// Column write to `bank` (open row required).
    Write {
        /// Target bank.
        bank: usize,
    },
    /// Precharge `bank`.
    Precharge {
        /// Target bank.
        bank: usize,
    },
}

#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open_row: Option<usize>,
    ready_at: f64,  // earliest time the bank accepts its next command
    opened_at: f64, // ACT issue time (for tRAS)
}

/// Accounting from a replayed command stream.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProtocolStats {
    /// Row activations issued.
    pub activations: u64,
    /// Column reads issued.
    pub reads: u64,
    /// Column writes issued.
    pub writes: u64,
    /// Precharges issued.
    pub precharges: u64,
    /// Column commands that hit an already-open row.
    pub row_hits: u64,
    /// Total elapsed time (ns).
    pub elapsed_ns: f64,
}

/// An in-order, per-rank command scheduler over `banks` bank state
/// machines.
///
/// # Example
///
/// ```
/// use pim_dram::protocol::{Command, ProtocolTiming, RankSim};
/// use pim_dram::DramTiming;
///
/// let mut sim = RankSim::new(ProtocolTiming::from_coarse(&DramTiming::ddr4_default()), 4);
/// sim.issue(Command::Activate { bank: 0, row: 7 }).unwrap();
/// sim.issue(Command::Read { bank: 0 }).unwrap();
/// sim.issue(Command::Read { bank: 0 }).unwrap(); // row-buffer hit
/// assert_eq!(sim.stats().row_hits, 2);
/// ```
#[derive(Debug)]
pub struct RankSim {
    timing: ProtocolTiming,
    banks: Vec<BankState>,
    /// Earliest time the shared command/data bus accepts a column command.
    bus_free_at: f64,
    now: f64,
    stats: ProtocolStats,
}

/// Protocol violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Command addressed a bank the rank does not have.
    NoSuchBank(usize),
    /// Column command to a bank with no open row.
    RowNotOpen(usize),
    /// ACT to a bank that already has an open row.
    RowAlreadyOpen(usize),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::NoSuchBank(b) => write!(f, "no such bank {b}"),
            ProtocolError::RowNotOpen(b) => write!(f, "bank {b} has no open row"),
            ProtocolError::RowAlreadyOpen(b) => write!(f, "bank {b} already has an open row"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl RankSim {
    /// Creates a rank with `banks` banks at time 0.
    pub fn new(timing: ProtocolTiming, banks: usize) -> Self {
        RankSim {
            timing,
            banks: vec![BankState::default(); banks],
            bus_free_at: 0.0,
            now: 0.0,
            stats: ProtocolStats::default(),
        }
    }

    /// The accumulated statistics (elapsed time includes the CAS latency
    /// of the last column command).
    pub fn stats(&self) -> ProtocolStats {
        let mut s = self.stats;
        s.elapsed_ns = self.now.max(self.bus_free_at);
        s
    }

    /// Issues one command at the earliest legal time.
    ///
    /// # Errors
    ///
    /// A [`ProtocolError`] if the command is illegal in the current bank
    /// state; timing constraints never error — they stall.
    pub fn issue(&mut self, cmd: Command) -> Result<(), ProtocolError> {
        let t = self.timing;
        let bank_idx = match cmd {
            Command::Activate { bank, .. }
            | Command::Read { bank }
            | Command::Write { bank }
            | Command::Precharge { bank } => bank,
        };
        let nbanks = self.banks.len();
        let bank = self
            .banks
            .get_mut(bank_idx)
            .ok_or(ProtocolError::NoSuchBank(bank_idx))?;
        let _ = nbanks;
        match cmd {
            Command::Activate { row, .. } => {
                if bank.open_row.is_some() {
                    return Err(ProtocolError::RowAlreadyOpen(bank_idx));
                }
                let start = self.now.max(bank.ready_at);
                bank.open_row = Some(row);
                bank.opened_at = start;
                bank.ready_at = start + t.t_rcd_ns;
                self.now = start; // command bus occupancy is negligible here
                self.stats.activations += 1;
            }
            Command::Read { .. } | Command::Write { .. } => {
                if bank.open_row.is_none() {
                    return Err(ProtocolError::RowNotOpen(bank_idx));
                }
                let start = self.now.max(bank.ready_at).max(self.bus_free_at);
                self.bus_free_at = start + t.t_ccd_ns;
                bank.ready_at = start + t.t_ccd_ns;
                self.now = start;
                if matches!(cmd, Command::Read { .. }) {
                    self.stats.reads += 1;
                } else {
                    self.stats.writes += 1;
                }
                self.stats.row_hits += 1;
            }
            Command::Precharge { .. } => {
                if bank.open_row.is_none() {
                    return Err(ProtocolError::RowNotOpen(bank_idx));
                }
                let start = self.now.max(bank.ready_at).max(bank.opened_at + t.t_ras_ns);
                bank.open_row = None;
                bank.ready_at = start + t.t_rp_ns;
                self.now = start;
                self.stats.precharges += 1;
            }
        }
        Ok(())
    }

    /// Replays a streaming read of `bursts` column reads per row across
    /// `rows` rows, round-robin over all banks with the next row's
    /// activation issued ahead of time (the §III interleaving that lets
    /// "one bank ... be precharging while another is providing data").
    /// Returns achieved bandwidth in GB/s for `bytes_per_burst` bytes per
    /// column command.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors (none occur for valid parameters).
    pub fn stream_read_bandwidth(
        &mut self,
        rows: usize,
        bursts: usize,
        bytes_per_burst: usize,
    ) -> Result<f64, ProtocolError> {
        let nbanks = self.banks.len();
        if rows > 0 {
            self.issue(Command::Activate { bank: 0, row: 0 })?;
        }
        for r in 0..rows {
            let bank = r % nbanks;
            // Pre-activate the next row's bank so its tRCD (and the
            // previous cycle's tRP on that bank) hide under this row's
            // column reads.
            if r + 1 < rows && nbanks > 1 {
                self.issue(Command::Activate {
                    bank: (r + 1) % nbanks,
                    row: r + 1,
                })?;
            }
            for _ in 0..bursts {
                self.issue(Command::Read { bank })?;
            }
            self.issue(Command::Precharge { bank })?;
            if r + 1 < rows && nbanks == 1 {
                self.issue(Command::Activate {
                    bank: 0,
                    row: r + 1,
                })?;
            }
        }
        let total_bytes = (rows * bursts * bytes_per_burst) as f64;
        Ok(total_bytes / self.stats().elapsed_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> ProtocolTiming {
        ProtocolTiming::from_coarse(&DramTiming::ddr4_default())
    }

    #[test]
    fn column_before_activate_is_rejected() {
        let mut sim = RankSim::new(timing(), 2);
        assert_eq!(
            sim.issue(Command::Read { bank: 0 }),
            Err(ProtocolError::RowNotOpen(0))
        );
        assert_eq!(
            sim.issue(Command::Precharge { bank: 1 }),
            Err(ProtocolError::RowNotOpen(1))
        );
        assert_eq!(
            sim.issue(Command::Read { bank: 9 }),
            Err(ProtocolError::NoSuchBank(9))
        );
    }

    #[test]
    fn double_activate_is_rejected() {
        let mut sim = RankSim::new(timing(), 1);
        sim.issue(Command::Activate { bank: 0, row: 0 }).unwrap();
        assert_eq!(
            sim.issue(Command::Activate { bank: 0, row: 1 }),
            Err(ProtocolError::RowAlreadyOpen(0))
        );
    }

    #[test]
    fn row_hits_avoid_activation_latency() {
        // 64 reads from one open row must take ~64×tCCD, far below
        // 64×(tRCD + tRP + ...) with a miss per access.
        let t = timing();
        let mut sim = RankSim::new(t, 1);
        sim.issue(Command::Activate { bank: 0, row: 0 }).unwrap();
        for _ in 0..64 {
            sim.issue(Command::Read { bank: 0 }).unwrap();
        }
        let hit_time = sim.stats().elapsed_ns;
        assert!(
            hit_time <= t.t_rcd_ns + 64.0 * t.t_ccd_ns + 1e-9,
            "{hit_time}"
        );

        // The same 64 reads with an ACT/PRE per access are much slower.
        let mut churn = RankSim::new(t, 1);
        for r in 0..64 {
            churn.issue(Command::Activate { bank: 0, row: r }).unwrap();
            churn.issue(Command::Read { bank: 0 }).unwrap();
            churn.issue(Command::Precharge { bank: 0 }).unwrap();
        }
        assert!(churn.stats().elapsed_ns > 5.0 * hit_time);
    }

    #[test]
    fn bank_interleaving_hides_precharge() {
        // Alternate reads across two banks while each precharges —
        // elapsed time stays near the tCCD-limited floor.
        let t = timing();
        let mut sim = RankSim::new(t, 2);
        sim.issue(Command::Activate { bank: 0, row: 0 }).unwrap();
        sim.issue(Command::Activate { bank: 1, row: 0 }).unwrap();
        for _ in 0..32 {
            sim.issue(Command::Read { bank: 0 }).unwrap();
            sim.issue(Command::Read { bank: 1 }).unwrap();
        }
        let elapsed = sim.stats().elapsed_ns;
        let floor = 64.0 * t.t_ccd_ns;
        assert!(
            elapsed <= floor + t.t_rcd_ns + 1e-9,
            "{elapsed} vs floor {floor}"
        );
    }

    #[test]
    fn streaming_bandwidth_approaches_the_coarse_model() {
        // A long streaming read should land within ~25 % of the coarse
        // model's rank bandwidth — the cross-check the paper defers to
        // DRAMsim3.
        let coarse = DramTiming::ddr4_default();
        let mut sim = RankSim::new(ProtocolTiming::from_coarse(&coarse), 16);
        // DDR4 BL8 on a 64-bit bus: 64 bytes per column command; a
        // 1024-byte row page is 16 bursts.
        let gbs = sim.stream_read_bandwidth(512, 16, 64).unwrap();
        let ratio = gbs / coarse.rank_bandwidth_gbs;
        assert!(
            (0.75..=1.35).contains(&ratio),
            "protocol replay {gbs:.1} GB/s vs coarse {} GB/s",
            coarse.rank_bandwidth_gbs
        );
    }

    #[test]
    fn tras_delays_early_precharge() {
        let t = timing();
        let mut sim = RankSim::new(t, 1);
        sim.issue(Command::Activate { bank: 0, row: 0 }).unwrap();
        sim.issue(Command::Precharge { bank: 0 }).unwrap();
        // PRE cannot complete before tRAS + tRP after the ACT.
        assert!(sim.stats().precharges == 1);
        sim.issue(Command::Activate { bank: 0, row: 1 }).unwrap();
        let s = sim.stats();
        assert!(s.elapsed_ns >= t.t_ras_ns + t.t_rp_ns - 1e-9, "{s:?}");
    }
}
