//! DDR timing parameters used by the PIM performance models.
//!
//! The simulator is not cycle-accurate at the DRAM-protocol level (the paper
//! leaves DRAMsim3 integration as future work); instead each PIM operation is
//! charged closed-form latencies derived from these parameters.

/// DDR timing and bandwidth parameters.
///
/// Defaults follow the values the artifact prints for its DDR4 device:
/// 28.5 ns row read, 43.5 ns row write, 3 ns tCCD, and 25.6 GB/s of
/// per-rank bandwidth. `t_ras`/`t_rp` feed the Micron activate–precharge
/// energy equation (Eq. 2 of the paper).
///
/// # Example
///
/// ```
/// use pim_dram::DramTiming;
///
/// let t = DramTiming::ddr4_default();
/// // Transferring one 8192-bit row over a 128-bit GDL takes 64 beats.
/// let beats = 8192 / t.gdl_width_bits;
/// assert_eq!(beats, 64);
/// assert!((t.gdl_row_transfer_ns(8192) - 64.0 * t.t_ccd_ns).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramTiming {
    /// Latency to activate + read a full row into the local row buffer (ns).
    pub row_read_ns: f64,
    /// Latency to write a full row back from the local row buffer (ns).
    pub row_write_ns: f64,
    /// Column-to-column command delay, one GDL beat (ns).
    pub t_ccd_ns: f64,
    /// Row-active time, used by the Micron AP energy equation (ns).
    pub t_ras_ns: f64,
    /// Row-precharge time, used by the Micron AP energy equation (ns).
    pub t_rp_ns: f64,
    /// Global data line width at the bank interface (bits).
    pub gdl_width_bits: usize,
    /// Sustained bandwidth of one rank for host<->PIM copies (GB/s).
    pub rank_bandwidth_gbs: f64,
}

impl DramTiming {
    /// The DDR4 parameters used in the paper's evaluation.
    pub fn ddr4_default() -> Self {
        DramTiming {
            row_read_ns: 28.5,
            row_write_ns: 43.5,
            t_ccd_ns: 3.0,
            t_ras_ns: 32.0,
            t_rp_ns: 13.75,
            gdl_width_bits: 128,
            rank_bandwidth_gbs: 25.6,
        }
    }

    /// HBM2-style parameters for the paper's §IX "modeling 3D memories
    /// such as HBM" future-work direction: a much wider GDL at the bank
    /// interface and higher per-channel bandwidth, with row timings close
    /// to DDR4 (the DRAM core is similar; the interface is what changes).
    pub fn hbm2_default() -> Self {
        DramTiming {
            row_read_ns: 28.5,
            row_write_ns: 43.5,
            t_ccd_ns: 2.0,
            t_ras_ns: 32.0,
            t_rp_ns: 13.75,
            gdl_width_bits: 512,
            rank_bandwidth_gbs: 64.0, // one pseudo-channel pair
        }
    }

    /// Time to move `row_bits` across the global data lines, in ns.
    ///
    /// The GDL is the bottleneck for bank-level PIM: a full 8192-bit row
    /// needs `row_bits / gdl_width_bits` beats of `t_ccd_ns` each.
    pub fn gdl_row_transfer_ns(&self, row_bits: usize) -> f64 {
        let beats = row_bits.div_ceil(self.gdl_width_bits);
        beats as f64 * self.t_ccd_ns
    }

    /// Sustained bandwidth of the DDR channel serving one rank (GB/s).
    ///
    /// PIMeval treats every rank as an independent channel (documented
    /// limitation in §V-C of the paper), so per-rank and per-channel
    /// bandwidth coincide. The interconnect model charges per-shard
    /// scatter/gather traffic at this rate.
    pub fn channel_bandwidth_gbs(&self) -> f64 {
        self.rank_bandwidth_gbs
    }

    /// Time to move `bytes` over one rank's DDR channel, in ms.
    pub fn channel_transfer_ms(&self, bytes: u64) -> f64 {
        // bytes / (GB/s) = ns when GB is 1e9 bytes; convert to ms.
        bytes as f64 / self.channel_bandwidth_gbs() / 1e6
    }

    /// Time to copy `bytes` between host and the PIM module using
    /// `ranks` independently-operating ranks, in ms.
    ///
    /// Aggregate bandwidth is `ranks × rank_bandwidth_gbs` (each rank
    /// rides its own channel; see [`DramTiming::channel_bandwidth_gbs`]).
    pub fn host_copy_ms(&self, bytes: u64, ranks: usize) -> f64 {
        debug_assert!(ranks > 0, "copy requires at least one rank");
        self.channel_transfer_ms(bytes) / ranks.max(1) as f64
    }
}

impl Default for DramTiming {
    fn default() -> Self {
        DramTiming::ddr4_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gdl_transfer_rounds_up_partial_beats() {
        let t = DramTiming::ddr4_default();
        assert_eq!(t.gdl_row_transfer_ns(1), t.t_ccd_ns);
        assert_eq!(t.gdl_row_transfer_ns(129), 2.0 * t.t_ccd_ns);
    }

    #[test]
    fn host_copy_scales_inversely_with_ranks() {
        let t = DramTiming::ddr4_default();
        let one = t.host_copy_ms(1 << 30, 1);
        let four = t.host_copy_ms(1 << 30, 4);
        assert!((one / four - 4.0).abs() < 1e-9);
    }

    #[test]
    fn hbm_has_wider_gdl_and_more_bandwidth() {
        let ddr = DramTiming::ddr4_default();
        let hbm = DramTiming::hbm2_default();
        assert!(hbm.gdl_width_bits >= 4 * ddr.gdl_width_bits);
        assert!(hbm.rank_bandwidth_gbs > 2.0 * ddr.rank_bandwidth_gbs);
        assert!(hbm.gdl_row_transfer_ns(8192) < ddr.gdl_row_transfer_ns(8192) / 3.0);
    }

    #[test]
    fn host_copy_matches_hand_computation() {
        let t = DramTiming::ddr4_default();
        // 25.6 GB/s, 25.6e9 bytes should take exactly 1000 ms on one rank.
        let ms = t.host_copy_ms(25_600_000_000, 1);
        assert!((ms - 1000.0).abs() < 1e-6);
    }
}
