//! Std-only parallel execution engine for the simulator's hot paths.
//!
//! The functional simulator spends nearly all of its time in three loop
//! shapes: element-wise maps over `i64` buffers (`Device::apply1/2`),
//! host↔device conversion packing, and word-wide column sweeps in the
//! bit-serial VM. This module gives all of them one chunked fan-out
//! primitive running on a lazily-initialized **persistent work-stealing
//! pool** ([`pool`]) — no third-party crates — sized by the
//! `PIM_THREADS` environment variable (default:
//! [`std::thread::available_parallelism`]).
//!
//! # Scheduling
//!
//! Workers are spawned once (on the first fan-out that needs them) and
//! then parked on a condvar between jobs; steady-state fan-outs spawn
//! zero OS threads and allocate nothing on the task path. Each fan-out
//! splits its index space into more chunks than workers
//! ([`chunks_per_worker`]×, the oversubscription factor) and deals the
//! chunk ids into per-lane deques: a lane's owner pops from the front,
//! idle participants steal from the back, so heterogeneous chunk costs
//! and skewed shard maps are absorbed by stealing instead of an even
//! split praying for uniform cost. The caller always participates in
//! its own job (and can drain it entirely by itself), which is what
//! makes nested fan-outs from inside a chunk body deadlock-free.
//!
//! # Determinism
//!
//! Results are bit-identical to sequential execution for every thread
//! count: stealing moves a chunk to a different *worker*, never to a
//! different place in the output. Chunk `i` of a fan-out always covers
//! the same index range, writes the same disjoint output sub-slice, and
//! reductions fold per-chunk partials in ascending chunk order on the
//! calling thread. The determinism suite in
//! `crates/core/tests/determinism.rs` asserts this across every target
//! and op class.
//!
//! # Unsafe boundaries
//!
//! Two narrow `unsafe` regions, both contained here: the pool erases
//! the borrow lifetime of a fan-out's closure (sound because the
//! caller's stack frame outlives every participant, enforced by the
//! participant-count protocol in [`pool`]), and [`SharedSlice`] hands
//! disjoint output indices to concurrent chunks (sound because chunk
//! ranges partition `0..len`). Everything above those two primitives is
//! safe code.
//!
//! # Sizing
//!
//! Fan-out only happens when every worker gets at least [`MIN_CHUNK`]
//! elements, so small operations (including almost all bit-slice VM row
//! sweeps at paper-default subarray widths) stay on the calling thread
//! and pay zero overhead. The thread count is resolved lazily, in
//! priority order:
//!
//! 1. a thread-local override installed by [`with_thread_count`]
//!    (used by the determinism tests and the `bench_parallel` harness),
//! 2. a process-wide override from [`set_thread_count`]
//!    (used by `pimbench --threads N`),
//! 3. the `PIM_THREADS` environment variable,
//! 4. [`std::thread::available_parallelism`].

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

pub mod pool {
    //! The persistent work-stealing executor plus its wall-clock
    //! occupancy hooks.
    //!
    //! # Lifecycle
    //!
    //! The executor is a process global, created on first use. Workers
    //! (`pim-pool-N` threads) spawn lazily the first time a fan-out
    //! wants them and then live forever, parked on a condvar; the spawn
    //! counter ([`spawned_workers_total`]) lets tests assert that
    //! steady-state fan-outs spawn nothing. [`shutdown`] drains and
    //! joins every worker (the pool restarts lazily afterwards), for
    //! leak-checking and clean process exit.
    //!
    //! # A fan-out (one `Job`)
    //!
    //! The caller splits `0..len` into `chunks` contiguous ranges and
    //! deals the chunk ids into `lanes` deques, packed as
    //! `head << 32 | tail` in one `AtomicU64` per lane so owner pops
    //! (front) and steals (back) race through plain CAS. The job —
    //! including the borrowed, lifetime-erased task closure — lives on
    //! the caller's stack; a participant count pins it: workers join a
    //! job only under the registry lock (where the caller also
    //! deregisters), and the caller returns only once every participant
    //! has left and every chunk has completed, so no reference can
    //! dangle. Panics in chunk bodies are caught per chunk, the first
    //! one is rethrown on the caller after the job drains.
    //!
    //! # Profiling
    //!
    //! With profiling disabled (the default) every fan-out pays exactly
    //! one relaxed atomic load; no clocks are read and no locks taken.
    //! With [`enable`]d profiling, each worker slot accumulates the
    //! wall time it spent in chunk bodies, and the caller accumulates
    //! the time it waited joining workers after finishing its own share
    //! (idle/imbalance time). Worker slots are stable across jobs: slot
    //! 0 is whichever thread called the fan-out, slot `n ≥ 1` is the
    //! persistent worker `pim-pool-n`. Two attribution caveats follow
    //! from that mapping: every non-pool caller thread shares slot 0,
    //! and a chunk run from inside another timed chunk body (a nested
    //! fan-out) is *not* recorded separately — the outer chunk's wall
    //! time already covers it, so `busy_ns`/`chunks` count only
    //! outermost chunk executions per thread.
    //!
    //! These are **wall-clock** quantities: unlike everything in
    //! `pimeval::metrics` they vary run to run and across machines, so
    //! exporters keep them in a separate, explicitly non-deterministic
    //! section (`pimbench --profile` writes them under `"pool"`),
    //! excluded from bit-identical snapshot comparisons.

    use std::cell::Cell;
    use std::ops::Range;
    use std::panic::{self, AssertUnwindSafe};
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};
    use std::time::Instant;

    /// Hard cap on lanes (and therefore workers) per job; deque storage
    /// is a fixed stack array of this size.
    pub const MAX_LANES: usize = 64;

    /// One worker slot's accumulated activity (slot 0 is the calling
    /// thread; slots 1+ are persistent pool workers).
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct WorkerSample {
        /// Wall time spent executing chunk bodies (ns).
        pub busy_ns: u128,
        /// Chunks executed.
        pub chunks: u64,
    }

    /// A copy of the pool's accumulated occupancy counters.
    #[derive(Debug, Clone, Default, PartialEq, Eq)]
    pub struct PoolSnapshot {
        /// Fan-outs that went through the worker pool.
        pub fanouts: u64,
        /// Loops that stayed on the calling thread (short input or one
        /// worker configured).
        pub sequential_runs: u64,
        /// Wall time the caller spent waiting on stolen chunks after
        /// draining its own share (ns) — the pool's imbalance signal.
        pub caller_wait_ns: u128,
        /// Per-slot activity, indexed by worker slot.
        pub workers: Vec<WorkerSample>,
    }

    impl PoolSnapshot {
        /// Renders the snapshot as a JSON object (std-only writer).
        pub fn to_json(&self) -> String {
            let workers: Vec<String> = self
                .workers
                .iter()
                .map(|w| format!("{{\"busy_ns\":{},\"chunks\":{}}}", w.busy_ns, w.chunks))
                .collect();
            format!(
                "{{\"fanouts\":{},\"sequential_runs\":{},\"caller_wait_ns\":{},\
                 \"workers\":[{}]}}",
                self.fanouts,
                self.sequential_runs,
                self.caller_wait_ns,
                workers.join(",")
            )
        }
    }

    static ENABLED: AtomicBool = AtomicBool::new(false);

    fn state() -> MutexGuard<'static, PoolSnapshot> {
        static STATE: OnceLock<Mutex<PoolSnapshot>> = OnceLock::new();
        STATE
            .get_or_init(|| Mutex::new(PoolSnapshot::default()))
            .lock()
            .expect("pool profiling state poisoned")
    }

    /// Starts accumulating occupancy (process-wide).
    pub fn enable() {
        ENABLED.store(true, Ordering::Relaxed);
    }

    /// Stops accumulating; counters keep their values until [`reset`].
    pub fn disable() {
        ENABLED.store(false, Ordering::Relaxed);
    }

    /// True while profiling is accumulating.
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Clears every counter.
    pub fn reset() {
        *state() = PoolSnapshot::default();
    }

    /// A copy of the current counters.
    pub fn snapshot() -> PoolSnapshot {
        state().clone()
    }

    pub(super) fn note_sequential() {
        if enabled() {
            state().sequential_runs += 1;
        }
    }

    fn note_fanout(workers: usize) {
        let mut s = state();
        s.fanouts += 1;
        if s.workers.len() < workers {
            s.workers.resize(workers, WorkerSample::default());
        }
    }

    fn record_worker(slot: usize, busy_ns: u128) {
        // A fan-out can still be in flight when profiling is turned off
        // and the counters reset; its chunks captured `profiling` at
        // dispatch time, so without this gate their late records would
        // resurrect stale samples into the freshly reset snapshot.
        if !enabled() {
            return;
        }
        let mut s = state();
        if s.workers.len() <= slot {
            s.workers.resize(slot + 1, WorkerSample::default());
        }
        s.workers[slot].busy_ns += busy_ns;
        s.workers[slot].chunks += 1;
    }

    pub(super) fn record_caller_wait(ns: u128) {
        // Same disable()+reset() race as record_worker.
        if !enabled() {
            return;
        }
        state().caller_wait_ns += ns;
    }

    thread_local! {
        /// True while this thread is inside a timed chunk body; nested
        /// fan-outs from within it skip recording (see [`timed`]).
        static IN_TIMED: Cell<bool> = const { Cell::new(false) };
    }

    /// Runs `f`, charging its wall time to worker `slot` when
    /// `profiling` — callers hoist the enabled check out of the loop so
    /// disabled runs never read a clock.
    ///
    /// A chunk executed from inside another timed chunk body (a nested
    /// fan-out the current thread participates in) records nothing: the
    /// outer chunk's wall time already covers it, so recording both
    /// would double-count `busy_ns` for the slot.
    pub(super) fn timed<R>(profiling: bool, slot: usize, f: impl FnOnce() -> R) -> R {
        if !profiling || IN_TIMED.with(Cell::get) {
            return f();
        }
        struct Reset;
        impl Drop for Reset {
            fn drop(&mut self) {
                IN_TIMED.with(|c| c.set(false));
            }
        }
        IN_TIMED.with(|c| c.set(true));
        let _reset = Reset;
        let t0 = Instant::now();
        let out = f();
        record_worker(slot, t0.elapsed().as_nanos());
        out
    }

    // ------------------------------------------------------------------
    // The executor
    // ------------------------------------------------------------------

    type Task<'a> = &'a (dyn Fn(u32, Range<usize>) + Sync);

    /// One fan-out, allocated on the caller's stack. See the module
    /// docs for the ownership protocol that keeps the erased `task`
    /// reference alive for every participant.
    struct Job {
        /// The chunk body, lifetime-erased (see [`run`]).
        task: Task<'static>,
        len: usize,
        chunks: u32,
        lanes: u32,
        /// The caller's effective thread count, re-installed on every
        /// participating worker so nested fan-outs see the caller's
        /// budget, not the worker's default.
        tc: usize,
        /// The caller's oversubscription factor, propagated likewise.
        oversub: usize,
        profiling: bool,
        /// Per-lane chunk-id deques, packed `head << 32 | tail`. The
        /// lane owner pops the front, thieves pop the back; both via
        /// CAS on the same word.
        deques: [AtomicU64; MAX_LANES],
        /// Lane-claim ticket counter for participants.
        next_lane: AtomicUsize,
        /// Chunks fully executed.
        completed: AtomicUsize,
        /// Threads currently holding a reference to this job (the
        /// caller counts from construction to final wait).
        participants: AtomicUsize,
        /// First panic payload from any chunk body.
        panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
        /// Caller parks here until `completed == chunks` and
        /// `participants == 0`.
        gate: Mutex<()>,
        cv: Condvar,
    }

    impl Job {
        fn chunk_range(&self, i: u32) -> Range<usize> {
            super::chunk_bounds(self.len, self.chunks as usize, i as usize)
        }

        /// Owner pop: front of `lane`'s deque.
        fn pop_front(&self, lane: usize) -> Option<u32> {
            let d = &self.deques[lane];
            let mut v = d.load(Ordering::Acquire);
            loop {
                let (head, tail) = ((v >> 32) as u32, v as u32);
                if head >= tail {
                    return None;
                }
                let next = (u64::from(head + 1) << 32) | u64::from(tail);
                match d.compare_exchange_weak(v, next, Ordering::AcqRel, Ordering::Acquire) {
                    Ok(_) => return Some(head),
                    Err(cur) => v = cur,
                }
            }
        }

        /// Thief pop: back of `lane`'s deque.
        fn pop_back(&self, lane: usize) -> Option<u32> {
            let d = &self.deques[lane];
            let mut v = d.load(Ordering::Acquire);
            loop {
                let (head, tail) = ((v >> 32) as u32, v as u32);
                if head >= tail {
                    return None;
                }
                let next = (u64::from(head) << 32) | u64::from(tail - 1);
                match d.compare_exchange_weak(v, next, Ordering::AcqRel, Ordering::Acquire) {
                    Ok(_) => return Some(tail - 1),
                    Err(cur) => v = cur,
                }
            }
        }

        /// True while any deque still holds an unclaimed chunk.
        fn has_work(&self) -> bool {
            self.deques[..self.lanes as usize].iter().any(|d| {
                let v = d.load(Ordering::Acquire);
                ((v >> 32) as u32) < (v as u32)
            })
        }

        /// Executes chunk `i`, capturing a panic instead of unwinding
        /// through the pool.
        fn run_chunk(&self, i: u32, slot: usize) {
            let range = self.chunk_range(i);
            let task = self.task;
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                timed(self.profiling, slot, || task(i, range))
            }));
            if let Err(payload) = result {
                let mut first = self.panic.lock().expect("pool job panic slot poisoned");
                first.get_or_insert(payload);
            }
            if self.completed.fetch_add(1, Ordering::AcqRel) + 1 == self.chunks as usize {
                // Notify while holding the gate so the wakeup cannot
                // fall between the caller's predicate check and wait.
                let _gate = self.gate.lock().expect("pool job gate poisoned");
                self.cv.notify_all();
            }
        }

        /// Drains the job from one participant: claim a lane, pop its
        /// front until empty, then steal from every other lane's back.
        fn work_on(&self, slot: usize) {
            let lanes = self.lanes as usize;
            let lane = self.next_lane.fetch_add(1, Ordering::AcqRel);
            if lane < lanes {
                while let Some(i) = self.pop_front(lane) {
                    self.run_chunk(i, slot);
                }
            }
            let start = lane % lanes.max(1);
            for off in 0..lanes {
                let l = (start + off) % lanes;
                while let Some(i) = self.pop_back(l) {
                    self.run_chunk(i, slot);
                }
            }
        }

        /// Drops one participant reference, waking the caller if it was
        /// the last.
        fn leave(&self) {
            // The decrement must happen under the gate: the caller only
            // re-reads the exit predicate while holding it, so taking
            // the lock first makes this thread's final touches of the
            // job atomic with respect to the caller's exit. Decrementing
            // first would let the caller observe `participants == 0`,
            // return from `run`, and pop the stack-allocated job while
            // this thread still needs its mutex and condvar.
            let _gate = self.gate.lock().expect("pool job gate poisoned");
            self.participants.fetch_sub(1, Ordering::AcqRel);
            self.cv.notify_all();
        }
    }

    /// Registered jobs are addressed by raw pointer; the registry lock
    /// plus the participant protocol guarantee the pointee is alive for
    /// as long as the pointer is reachable.
    #[derive(Clone, Copy)]
    struct JobPtr(*const Job);
    // SAFETY: a `Job` is only ever accessed by shared reference, every
    // field is Sync, and the registry/participant protocol (see module
    // docs) keeps the pointee alive while the pointer is reachable.
    unsafe impl Send for JobPtr {}
    unsafe impl Sync for JobPtr {}

    struct PoolState {
        jobs: Vec<JobPtr>,
        live_workers: usize,
        draining: bool,
        handles: Vec<std::thread::JoinHandle<()>>,
    }

    struct Executor {
        state: Mutex<PoolState>,
        work_cv: Condvar,
    }

    fn executor() -> &'static Executor {
        static EXEC: OnceLock<Executor> = OnceLock::new();
        EXEC.get_or_init(|| Executor {
            state: Mutex::new(PoolState {
                jobs: Vec::new(),
                live_workers: 0,
                draining: false,
                handles: Vec::new(),
            }),
            work_cv: Condvar::new(),
        })
    }

    /// Total OS threads this pool has ever spawned (monotonic). The
    /// steady-state test asserts this stays flat across fan-outs once
    /// the pool is warm.
    static SPAWNED: AtomicU64 = AtomicU64::new(0);

    /// OS threads the pool has spawned over the process lifetime.
    pub fn spawned_workers_total() -> u64 {
        SPAWNED.load(Ordering::Relaxed)
    }

    /// Workers currently alive (parked or busy).
    pub fn live_workers() -> usize {
        executor()
            .state
            .lock()
            .expect("pool state poisoned")
            .live_workers
    }

    thread_local! {
        /// This thread's stable profiling slot: 0 for non-pool threads
        /// (fan-out callers), `n` for worker `pim-pool-n`.
        static WORKER_SLOT: Cell<usize> = const { Cell::new(0) };
    }

    fn ensure_workers(ex: &'static Executor, st: &mut PoolState, wanted: usize) {
        while st.live_workers < wanted.min(MAX_LANES) {
            st.live_workers += 1;
            let slot = st.live_workers;
            SPAWNED.fetch_add(1, Ordering::Relaxed);
            let handle = std::thread::Builder::new()
                .name(format!("pim-pool-{slot}"))
                .spawn(move || worker_loop(ex, slot))
                .expect("failed to spawn PIM pool worker");
            st.handles.push(handle);
        }
    }

    fn worker_loop(ex: &'static Executor, slot: usize) {
        WORKER_SLOT.with(|c| c.set(slot));
        let mut st = ex.state.lock().expect("pool state poisoned");
        loop {
            if st.draining {
                st.live_workers -= 1;
                return;
            }
            let found = st.jobs.iter().copied().find(|p| {
                // SAFETY: pointers in the registry are valid (see JobPtr).
                unsafe { (*p.0).has_work() }
            });
            match found {
                Some(ptr) => {
                    // SAFETY: as above; the participant increment below
                    // happens under the registry lock, before the caller
                    // can deregister and observe participants == 0.
                    let job = unsafe { &*ptr.0 };
                    job.participants.fetch_add(1, Ordering::AcqRel);
                    drop(st);
                    super::with_thread_count(job.tc, || {
                        super::with_chunks_per_worker(job.oversub, || job.work_on(slot));
                    });
                    job.leave();
                    st = ex.state.lock().expect("pool state poisoned");
                }
                None => {
                    st = ex.work_cv.wait(st).expect("pool state poisoned");
                }
            }
        }
    }

    /// Drains and joins every pool worker, then lets the pool restart
    /// lazily on the next fan-out. Fan-outs racing a shutdown run their
    /// chunks inline on the caller. Intended for leak checks and
    /// orderly process teardown; never required for correctness.
    pub fn shutdown() {
        static SHUTDOWN: Mutex<()> = Mutex::new(());
        let _one_at_a_time = SHUTDOWN.lock().expect("pool shutdown lock poisoned");
        let ex = executor();
        let handles = {
            let mut st = ex.state.lock().expect("pool state poisoned");
            st.draining = true;
            ex.work_cv.notify_all();
            std::mem::take(&mut st.handles)
        };
        for h in handles {
            let _ = h.join();
        }
        let mut st = ex.state.lock().expect("pool state poisoned");
        debug_assert_eq!(st.live_workers, 0, "worker exited without deregistering");
        st.live_workers = 0;
        st.draining = false;
    }

    /// Runs one fan-out through the pool: `body(i, range)` once per
    /// chunk, `lanes ≥ 2` of them eligible to run concurrently. Blocks
    /// until every chunk has completed; rethrows the first chunk panic.
    pub(super) fn run(len: usize, lanes: usize, chunks: usize, body: Task<'_>) {
        debug_assert!((2..=MAX_LANES).contains(&lanes));
        debug_assert!(chunks >= lanes && chunks <= u32::MAX as usize);
        let profiling = enabled();
        if profiling {
            note_fanout(lanes);
        }
        // SAFETY: this erases the borrow lifetime of `body`. The job
        // below never escapes this stack frame: it is deregistered
        // before the final wait, and the wait only returns once every
        // chunk has completed and every participant has left, so no
        // dereference of `task` can outlive `body`.
        let task: Task<'static> = unsafe { std::mem::transmute(body) };
        let job = Job {
            task,
            len,
            chunks: chunks as u32,
            lanes: lanes as u32,
            tc: super::thread_count(),
            oversub: super::chunks_per_worker(),
            profiling,
            deques: std::array::from_fn(|_| AtomicU64::new(0)),
            next_lane: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            participants: AtomicUsize::new(1),
            panic: Mutex::new(None),
            gate: Mutex::new(()),
            cv: Condvar::new(),
        };
        // Deal contiguous runs of chunk ids into the lane deques.
        for lane in 0..lanes {
            let r = super::chunk_bounds(chunks, lanes, lane);
            job.deques[lane].store(
                (u64::from(r.start as u32) << 32) | u64::from(r.end as u32),
                Ordering::Release,
            );
        }
        let ex = executor();
        let registered = {
            let mut st = ex.state.lock().expect("pool state poisoned");
            if st.draining {
                false
            } else {
                ensure_workers(ex, &mut st, lanes - 1);
                st.jobs.push(JobPtr(&job));
                ex.work_cv.notify_all();
                true
            }
        };
        let slot = WORKER_SLOT.with(Cell::get);
        if registered {
            job.work_on(slot);
            {
                let mut st = ex.state.lock().expect("pool state poisoned");
                if let Some(pos) = st.jobs.iter().position(|p| std::ptr::eq(p.0, &job)) {
                    st.jobs.swap_remove(pos);
                }
            }
            let wait0 = profiling.then(Instant::now);
            job.participants.fetch_sub(1, Ordering::AcqRel);
            {
                let mut gate = job.gate.lock().expect("pool job gate poisoned");
                while job.completed.load(Ordering::Acquire) < chunks
                    || job.participants.load(Ordering::Acquire) > 0
                {
                    gate = job.cv.wait(gate).expect("pool job gate poisoned");
                }
            }
            if let Some(t0) = wait0 {
                record_caller_wait(t0.elapsed().as_nanos());
            }
        } else {
            // Shutdown in progress: run every chunk inline.
            for i in 0..chunks as u32 {
                job.run_chunk(i, slot);
            }
        }
        let payload = job
            .panic
            .lock()
            .expect("pool job panic slot poisoned")
            .take();
        if let Some(p) = payload {
            panic::resume_unwind(p);
        }
    }
}

/// Minimum elements per worker before a loop fans out. Below
/// `2 × MIN_CHUNK` total elements everything runs on the calling thread.
pub const MIN_CHUNK: usize = 8 * 1024;

/// Default chunks dealt per lane (oversubscription factor): more chunks
/// than workers is what gives the thieves something to steal when chunk
/// costs are skewed. Override per scope with [`with_chunks_per_worker`].
pub const CHUNKS_PER_WORKER: usize = 4;

fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("PIM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// Process-wide override; 0 means "not set".
static GLOBAL_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override; 0 means "not set".
    static LOCAL_OVERRIDE: Cell<usize> = const { Cell::new(0) };
    /// Per-thread oversubscription override; 0 means "not set".
    static OVERSUB_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Overrides the worker count for the whole process (`None` restores the
/// `PIM_THREADS`/auto default). Exposed to CLIs as `--threads N`.
pub fn set_thread_count(n: Option<usize>) {
    GLOBAL_OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// The worker count the next fan-out on this thread will use.
pub fn thread_count() -> usize {
    let local = LOCAL_OVERRIDE.with(Cell::get);
    if local > 0 {
        return local;
    }
    let global = GLOBAL_OVERRIDE.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    env_threads()
}

/// Runs `f` with the worker count pinned to `n` on the current thread
/// (restored on exit, including on panic). This is the race-free way for
/// tests and benchmarks to compare thread counts inside one process.
pub fn with_thread_count<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Reset(usize);
    impl Drop for Reset {
        fn drop(&mut self) {
            LOCAL_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = LOCAL_OVERRIDE.with(|c| {
        let p = c.get();
        c.set(n.max(1));
        p
    });
    let _reset = Reset(prev);
    f()
}

/// The oversubscription factor the next fan-out on this thread will
/// use ([`CHUNKS_PER_WORKER`] unless overridden).
pub fn chunks_per_worker() -> usize {
    let local = OVERSUB_OVERRIDE.with(Cell::get);
    if local > 0 {
        local
    } else {
        CHUNKS_PER_WORKER
    }
}

/// Runs `f` with the oversubscription factor pinned to `n` on the
/// current thread (restored on exit, including on panic). `1` disables
/// stealing in practice — each lane gets exactly one chunk — which is
/// the even-split baseline the imbalance benchmark compares against.
pub fn with_chunks_per_worker<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Reset(usize);
    impl Drop for Reset {
        fn drop(&mut self) {
            OVERSUB_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = OVERSUB_OVERRIDE.with(|c| {
        let p = c.get();
        c.set(n.max(1));
        p
    });
    let _reset = Reset(prev);
    f()
}

/// Start of chunk `i` of `len` split `parts` ways: the first
/// `len % parts` chunks are one element longer.
fn chunk_start(len: usize, parts: usize, i: usize) -> usize {
    let base = len / parts;
    let extra = len % parts;
    i * base + i.min(extra)
}

/// Chunk `i` of `0..len` split into `parts` contiguous ranges covering
/// every index exactly once.
fn chunk_bounds(len: usize, parts: usize, i: usize) -> Range<usize> {
    chunk_start(len, parts, i)..chunk_start(len, parts, i + 1)
}

/// Lanes (`workers`) and chunk count for a fan-out over `len` items
/// whose per-item cost is `weight`× the baseline element. Returns
/// `(1, 1)` when the loop should stay on the calling thread.
fn plan_weighted(len: usize, weight: usize) -> (usize, usize) {
    let floor = (MIN_CHUNK / weight.max(1)).max(64);
    if len < 2 * floor {
        return (1, 1);
    }
    let lanes = thread_count().min(len / floor).clamp(1, pool::MAX_LANES);
    if lanes <= 1 {
        return (1, 1);
    }
    let chunks = (lanes * chunks_per_worker()).min(len / floor).max(lanes);
    (lanes, chunks)
}

/// A raw view of a mutable slice that concurrent chunks index
/// disjointly. This is the pool's only aliasing primitive: the fan-out
/// planner partitions `0..len`, each chunk touches only its own
/// indices, and the borrow the view was created from outlives the
/// fan-out (the caller blocks until every chunk completes).
pub struct SharedSlice<T> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: SharedSlice hands out access to `T`s across threads; that is
// exactly as safe as sending `&mut T` to those threads, hence `T: Send`.
unsafe impl<T: Send> Send for SharedSlice<T> {}
unsafe impl<T: Send> Sync for SharedSlice<T> {}

impl<T> SharedSlice<T> {
    /// Captures `slice` for disjoint concurrent access.
    pub fn new(slice: &mut [T]) -> Self {
        SharedSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// Number of elements in the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads element `i`. Bounds-checked.
    ///
    /// # Safety
    ///
    /// No other thread may be writing element `i` concurrently, and the
    /// slice this view was created from must still be borrowed.
    pub unsafe fn get(&self, i: usize) -> T
    where
        T: Copy,
    {
        assert!(i < self.len, "SharedSlice::get out of bounds");
        unsafe { *self.ptr.add(i) }
    }

    /// Writes element `i`. Bounds-checked.
    ///
    /// # Safety
    ///
    /// No other thread may be accessing element `i` concurrently, and
    /// the slice this view was created from must still be borrowed.
    pub unsafe fn set(&self, i: usize, value: T) {
        assert!(i < self.len, "SharedSlice::set out of bounds");
        unsafe { *self.ptr.add(i) = value }
    }

    /// A mutable reference to element `i`. Bounds-checked.
    ///
    /// # Safety
    ///
    /// No other thread may hold a reference to element `i` while the
    /// returned borrow is live.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn index_mut(&self, i: usize) -> &mut T {
        assert!(i < self.len, "SharedSlice::index_mut out of bounds");
        unsafe { &mut *self.ptr.add(i) }
    }

    /// The sub-slice `r`. Bounds-checked.
    ///
    /// # Safety
    ///
    /// No other thread may access any element of `r` while the returned
    /// borrow is live — chunks must use disjoint ranges.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, r: Range<usize>) -> &mut [T] {
        assert!(
            r.start <= r.end && r.end <= self.len,
            "SharedSlice::slice_mut out of bounds"
        );
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(r.start), r.len()) }
    }
}

/// The fan-out primitive: applies `work` to contiguous chunks of
/// `0..len` and returns the per-chunk results **in ascending chunk
/// order** regardless of which worker ran each chunk. With one worker
/// (or a short input) this is exactly `vec![work(0..len)]`.
pub fn par_chunks<R: Send>(len: usize, work: impl Fn(Range<usize>) -> R + Sync) -> Vec<R> {
    par_chunks_weighted(len, 1, work)
}

/// [`par_chunks`] with a per-element cost hint: the fan-out floor
/// shrinks by `weight` so loops whose elements each do `weight`× the
/// work of a plain element-wise op (e.g. a compiled VM kernel running
/// `weight` steps per word column) still parallelize at realistic
/// lengths.
pub fn par_chunks_weighted<R: Send>(
    len: usize,
    weight: usize,
    work: impl Fn(Range<usize>) -> R + Sync,
) -> Vec<R> {
    if len == 0 {
        return Vec::new();
    }
    let (lanes, chunks) = plan_weighted(len, weight);
    if lanes <= 1 {
        pool::note_sequential();
        return vec![work(0..len)];
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(chunks);
    slots.resize_with(chunks, || None);
    let out = SharedSlice::new(&mut slots);
    pool::run(len, lanes, chunks, &|i, r| {
        let v = work(r);
        // SAFETY: each chunk id is claimed by exactly one participant,
        // so slot `i` is written once, with no concurrent access.
        unsafe { *out.index_mut(i as usize) = Some(v) };
    });
    slots
        .into_iter()
        .map(|s| s.expect("every chunk ran"))
        .collect()
}

/// Chunk-ordered parallel reduction: maps each chunk of `0..len` with
/// `map`, then folds the partials left-to-right in chunk order on the
/// calling thread, so the result is bit-identical to a sequential fold.
pub fn par_fold<R: Send>(
    len: usize,
    map: impl Fn(Range<usize>) -> R + Sync,
    fold: impl FnMut(R, R) -> R,
) -> Option<R> {
    par_chunks(len, map).into_iter().reduce(fold)
}

/// Runs `f(i, &mut items[i])` for every item, in parallel at item
/// granularity (no [`MIN_CHUNK`] floor — items are assumed coarse, e.g.
/// execution shards), returning the results in item order. The stealing
/// deques absorb skewed per-item costs, which is the whole point of
/// using this for uneven `ShardMap`s.
pub fn par_each_mut<T: Send, R: Send>(
    items: &mut [T],
    f: impl Fn(usize, &mut T) -> R + Sync,
) -> Vec<R> {
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    let lanes = thread_count().min(len).min(pool::MAX_LANES);
    if lanes <= 1 {
        pool::note_sequential();
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunks = (lanes * chunks_per_worker()).min(len).max(lanes);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(len);
    slots.resize_with(len, || None);
    let out = SharedSlice::new(&mut slots);
    let data = SharedSlice::new(items);
    pool::run(len, lanes, chunks, &|_, r| {
        for i in r {
            // SAFETY: chunk ranges partition 0..len, so item `i` and
            // slot `i` are each touched by exactly one participant.
            let item = unsafe { data.index_mut(i) };
            let v = f(i, item);
            unsafe { *out.index_mut(i) = Some(v) };
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every item visited"))
        .collect()
}

/// `out[i] = f(&src[i])` in parallel over disjoint chunks.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn par_map_into<S: Sync, T: Send>(src: &[S], out: &mut [T], f: impl Fn(&S) -> T + Sync) {
    assert_eq!(src.len(), out.len(), "par_map_into length mismatch");
    let (lanes, chunks) = plan_weighted(out.len(), 1);
    if lanes <= 1 {
        pool::note_sequential();
        for (o, s) in out.iter_mut().zip(src) {
            *o = f(s);
        }
        return;
    }
    let dst = SharedSlice::new(out);
    pool::run(dst.len(), lanes, chunks, &|_, r| {
        // SAFETY: chunk ranges partition 0..len; each output index is
        // written by exactly one participant.
        let oc = unsafe { dst.slice_mut(r.clone()) };
        for (o, s) in oc.iter_mut().zip(&src[r]) {
            *o = f(s);
        }
    });
}

/// `out[i] = f(&a[i], &b[i])` in parallel over disjoint chunks.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn par_zip_map_into<A: Sync, B: Sync, T: Send>(
    a: &[A],
    b: &[B],
    out: &mut [T],
    f: impl Fn(&A, &B) -> T + Sync,
) {
    assert_eq!(a.len(), b.len(), "par_zip_map_into length mismatch");
    assert_eq!(a.len(), out.len(), "par_zip_map_into length mismatch");
    let (lanes, chunks) = plan_weighted(out.len(), 1);
    if lanes <= 1 {
        pool::note_sequential();
        for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
            *o = f(x, y);
        }
        return;
    }
    let dst = SharedSlice::new(out);
    pool::run(dst.len(), lanes, chunks, &|_, r| {
        // SAFETY: chunk ranges partition 0..len (see par_map_into).
        let oc = unsafe { dst.slice_mut(r.clone()) };
        for ((o, x), y) in oc.iter_mut().zip(&a[r.clone()]).zip(&b[r]) {
            *o = f(x, y);
        }
    });
}

/// `out[i] = f(&a[i], &b[i], &c[i])` in parallel over disjoint chunks
/// (the three-operand `select` shape).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn par_zip3_map_into<A: Sync, B: Sync, C: Sync, T: Send>(
    a: &[A],
    b: &[B],
    c: &[C],
    out: &mut [T],
    f: impl Fn(&A, &B, &C) -> T + Sync,
) {
    assert_eq!(a.len(), b.len(), "par_zip3_map_into length mismatch");
    assert_eq!(a.len(), c.len(), "par_zip3_map_into length mismatch");
    assert_eq!(a.len(), out.len(), "par_zip3_map_into length mismatch");
    let (lanes, chunks) = plan_weighted(out.len(), 1);
    if lanes <= 1 {
        pool::note_sequential();
        for (((o, x), y), z) in out.iter_mut().zip(a).zip(b).zip(c) {
            *o = f(x, y, z);
        }
        return;
    }
    let dst = SharedSlice::new(out);
    pool::run(dst.len(), lanes, chunks, &|_, r| {
        // SAFETY: chunk ranges partition 0..len (see par_map_into).
        let oc = unsafe { dst.slice_mut(r.clone()) };
        for (((o, x), y), z) in oc
            .iter_mut()
            .zip(&a[r.clone()])
            .zip(&b[r.clone()])
            .zip(&c[r])
        {
            *o = f(x, y, z);
        }
    });
}

/// `out[i] = f(&a[i], &b[i], &c[i], &d[i])` in parallel over disjoint
/// chunks (the four-operand fused `cmp_select` shape).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn par_zip4_map_into<A: Sync, B: Sync, C: Sync, D: Sync, T: Send>(
    a: &[A],
    b: &[B],
    c: &[C],
    d: &[D],
    out: &mut [T],
    f: impl Fn(&A, &B, &C, &D) -> T + Sync,
) {
    assert_eq!(a.len(), b.len(), "par_zip4_map_into length mismatch");
    assert_eq!(a.len(), c.len(), "par_zip4_map_into length mismatch");
    assert_eq!(a.len(), d.len(), "par_zip4_map_into length mismatch");
    assert_eq!(a.len(), out.len(), "par_zip4_map_into length mismatch");
    let (lanes, chunks) = plan_weighted(out.len(), 1);
    if lanes <= 1 {
        pool::note_sequential();
        for ((((o, x), y), z), u) in out.iter_mut().zip(a).zip(b).zip(c).zip(d) {
            *o = f(x, y, z, u);
        }
        return;
    }
    let dst = SharedSlice::new(out);
    pool::run(dst.len(), lanes, chunks, &|_, r| {
        // SAFETY: chunk ranges partition 0..len (see par_map_into).
        let oc = unsafe { dst.slice_mut(r.clone()) };
        for ((((o, x), y), z), u) in oc
            .iter_mut()
            .zip(&a[r.clone()])
            .zip(&b[r.clone()])
            .zip(&c[r.clone()])
            .zip(&d[r])
        {
            *o = f(x, y, z, u);
        }
    });
}

/// Parallel map into a fresh buffer.
pub fn par_map<S: Sync, T: Send + Default + Clone>(
    src: &[S],
    f: impl Fn(&S) -> T + Sync,
) -> Vec<T> {
    let mut out = vec![T::default(); src.len()];
    par_map_into(src, &mut out, f);
    out
}

/// Parallel zip-map into a fresh buffer.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn par_zip_map<A: Sync, B: Sync, T: Send + Default + Clone>(
    a: &[A],
    b: &[B],
    f: impl Fn(&A, &B) -> T + Sync,
) -> Vec<T> {
    let mut out = vec![T::default(); a.len()];
    par_zip_map_into(a, b, &mut out, f);
    out
}

/// Parallel three-way zip-map into a fresh buffer.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn par_zip3_map<A: Sync, B: Sync, C: Sync, T: Send + Default + Clone>(
    a: &[A],
    b: &[B],
    c: &[C],
    f: impl Fn(&A, &B, &C) -> T + Sync,
) -> Vec<T> {
    let mut out = vec![T::default(); a.len()];
    par_zip3_map_into(a, b, c, &mut out, f);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bounds_cover_every_index_once() {
        for len in [0usize, 1, 7, 100, 8191, 8192, 100_001] {
            for parts in 1..=9 {
                let mut next = 0;
                for i in 0..parts {
                    let r = chunk_bounds(len, parts, i);
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, len);
            }
        }
    }

    #[test]
    fn plan_oversubscribes_long_inputs() {
        with_thread_count(4, || {
            // Long input: 4 lanes, 4x chunks for the thieves.
            let (lanes, chunks) = plan_weighted(64 * MIN_CHUNK, 1);
            assert_eq!(lanes, 4);
            assert_eq!(chunks, 16);
            // Short input: stays sequential.
            assert_eq!(plan_weighted(MIN_CHUNK, 1), (1, 1));
            // Medium input: chunk count capped by the per-chunk floor.
            let (lanes, chunks) = plan_weighted(4 * MIN_CHUNK, 1);
            assert_eq!(lanes, 4);
            assert_eq!(chunks, 4);
            // Weight shrinks the floor: the same element count yields
            // more (finer) chunks when each element is 64x the work.
            let (_, weighted) = plan_weighted(4 * MIN_CHUNK, 64);
            assert!(weighted > chunks);
            // The oversubscription override is scoped and restored.
            with_chunks_per_worker(1, || {
                assert_eq!(plan_weighted(64 * MIN_CHUNK, 1), (4, 4));
            });
            assert_eq!(chunks_per_worker(), CHUNKS_PER_WORKER);
        });
    }

    #[test]
    fn thread_count_overrides_nest_and_restore() {
        let outer = thread_count();
        let inner = with_thread_count(3, || {
            assert_eq!(thread_count(), 3);
            with_thread_count(5, thread_count)
        });
        assert_eq!(inner, 5);
        assert_eq!(thread_count(), outer);
    }

    #[test]
    fn par_map_matches_sequential_at_any_thread_count() {
        let src: Vec<i64> = (0..100_000).map(|i| i * 7 - 50_000).collect();
        let seq: Vec<i64> = src.iter().map(|&x| x.wrapping_mul(3) ^ 1).collect();
        for threads in [1, 2, 8] {
            let par = with_thread_count(threads, || par_map(&src, |&x| x.wrapping_mul(3) ^ 1));
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn par_zip_maps_match_sequential() {
        let a: Vec<i64> = (0..70_000).collect();
        let b: Vec<i64> = (0..70_000).map(|i| i * 3).collect();
        let c: Vec<i64> = (0..70_000).map(|i| i % 2).collect();
        let seq2: Vec<i64> = a.iter().zip(&b).map(|(x, y)| x - y).collect();
        let seq3: Vec<i64> = a
            .iter()
            .zip(b.iter().zip(&c))
            .map(|(x, (y, z))| if *z != 0 { *x } else { *y })
            .collect();
        let par2 = with_thread_count(4, || par_zip_map(&a, &b, |x, y| x - y));
        let par3 = with_thread_count(4, || {
            par_zip3_map(&c, &a, &b, |z, x, y| if *z != 0 { *x } else { *y })
        });
        assert_eq!(par2, seq2);
        assert_eq!(par3, seq3);
    }

    #[test]
    fn par_fold_is_chunk_ordered() {
        let len = 60_000;
        let seq: usize = (0..len).sum();
        let folded = with_thread_count(7, || {
            par_fold(len, |r| r.sum::<usize>(), |a, b| a + b).unwrap()
        });
        assert_eq!(folded, seq);
        let order = with_thread_count(7, || par_chunks(len, |r| r.start));
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted, "chunks returned in ascending order");
    }

    #[test]
    fn par_each_mut_visits_every_item_in_order() {
        for threads in [1, 3, 8] {
            let mut items: Vec<i64> = (0..23).collect();
            let out = with_thread_count(threads, || {
                par_each_mut(&mut items, |i, v| {
                    *v += 100;
                    (i, *v)
                })
            });
            let expect: Vec<(usize, i64)> = (0..23).map(|i| (i, i as i64 + 100)).collect();
            assert_eq!(out, expect, "threads={threads}");
            assert_eq!(items, (100..123).collect::<Vec<i64>>());
        }
    }

    #[test]
    fn short_inputs_stay_on_the_calling_thread() {
        let caller = std::thread::current().id();
        let ids = with_thread_count(8, || par_chunks(100, |_| std::thread::current().id()));
        assert_eq!(ids, vec![caller]);
    }

    #[test]
    fn pool_profiling_records_fanouts_and_workers() {
        // Single test for all pool assertions: the enabled flag is
        // process-global, so splitting these across tests would race
        // under the parallel test harness. Other exec tests may run
        // concurrently while profiling is on, so counts are asserted
        // as lower bounds.
        pool::reset();
        pool::enable();
        let len = 4 * MIN_CHUNK;
        let parts = with_thread_count(4, || par_chunks(len, |r| r.len()));
        assert_eq!(parts.iter().sum::<usize>(), len);
        with_thread_count(1, || par_chunks(len, |r| r.len()));
        let snap = pool::snapshot();
        pool::disable();
        assert!(snap.fanouts >= 1);
        assert!(snap.sequential_runs >= 1);
        assert!(snap.workers.len() >= 4);
        // With stealing, any one participant (often the caller alone on
        // a single-core host) may run every chunk — assert the total,
        // not per-slot distribution.
        assert!(snap.workers.iter().map(|w| w.chunks).sum::<u64>() >= 4);
        let json = snap.to_json();
        assert!(json.starts_with("{\"fanouts\":"));
        assert!(json.contains("\"sequential_runs\":"));
        assert!(json.contains("\"workers\":[{\"busy_ns\":"));

        // Disabled runs record nothing, including the sequential path.
        pool::reset();
        with_thread_count(4, || par_chunks(len, |r| r.len()));
        with_thread_count(1, || par_chunks(len, |r| r.len()));
        assert_eq!(pool::snapshot(), pool::PoolSnapshot::default());

        // Reset race: a fan-out captures `profiling` when it starts, so
        // its workers and the caller-wait record can land *after* a
        // disable()+reset(). Simulate such straggler records and assert
        // they cannot resurrect counters into the fresh snapshot.
        pool::reset();
        pool::timed(true, 2, || std::hint::black_box(1 + 1));
        pool::record_caller_wait(1_000_000);
        assert_eq!(
            pool::snapshot(),
            pool::PoolSnapshot::default(),
            "records from a pre-disable fan-out must be dropped once profiling is off"
        );
    }
}
