//! Std-only parallel execution engine for the simulator's hot paths.
//!
//! The functional simulator spends nearly all of its time in three loop
//! shapes: element-wise maps over `i64` buffers (`Device::apply1/2`),
//! host↔device conversion packing, and word-wide row sweeps in the
//! bit-serial VM. This module gives all of them one chunked fan-out
//! primitive built on [`std::thread::scope`] — no third-party crates, no
//! `unsafe` — sized by the `PIM_THREADS` environment variable (default:
//! [`std::thread::available_parallelism`]).
//!
//! # Determinism
//!
//! Results are bit-identical to sequential execution for every thread
//! count: inputs are split into contiguous chunks, each worker writes a
//! disjoint output sub-slice, and reductions fold per-chunk partials in
//! ascending chunk order on the calling thread. The determinism suite in
//! `crates/core/tests/determinism.rs` asserts this across every target
//! and op class.
//!
//! # Sizing
//!
//! Fan-out only happens when every worker gets at least [`MIN_CHUNK`]
//! elements, so small operations (including almost all bit-slice VM row
//! sweeps at paper-default subarray widths) stay on the calling thread
//! and pay zero overhead. The thread count is resolved lazily, in
//! priority order:
//!
//! 1. a thread-local override installed by [`with_thread_count`]
//!    (used by the determinism tests and the `bench_parallel` harness),
//! 2. a process-wide override from [`set_thread_count`]
//!    (used by `pimbench --threads N`),
//! 3. the `PIM_THREADS` environment variable,
//! 4. [`std::thread::available_parallelism`].

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

pub mod pool {
    //! Wall-clock occupancy hooks for the execution pool, behind a
    //! zero-cost-when-disabled handle.
    //!
    //! With profiling disabled (the default) every fan-out pays exactly
    //! one relaxed atomic load; no clocks are read and no locks taken.
    //! With [`enable`]d profiling, each worker slot accumulates the
    //! wall time it spent in chunk bodies, and the caller accumulates
    //! the time it waited joining workers after finishing its own chunk
    //! (idle/imbalance time).
    //!
    //! These are **wall-clock** quantities: unlike everything in
    //! `pimeval::metrics` they vary run to run and across machines, so
    //! exporters keep them in a separate, explicitly non-deterministic
    //! section (`pimbench --profile` writes them under `"pool"`),
    //! excluded from bit-identical snapshot comparisons.

    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock};
    use std::time::Instant;

    /// One worker slot's accumulated activity (slot 0 is the calling
    /// thread; slots 1+ are spawned workers).
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct WorkerSample {
        /// Wall time spent executing chunk bodies (ns).
        pub busy_ns: u128,
        /// Chunks executed.
        pub chunks: u64,
    }

    /// A copy of the pool's accumulated occupancy counters.
    #[derive(Debug, Clone, Default, PartialEq, Eq)]
    pub struct PoolSnapshot {
        /// Fan-outs that actually spawned workers.
        pub fanouts: u64,
        /// Loops that stayed on the calling thread (short input or one
        /// worker configured).
        pub sequential_runs: u64,
        /// Wall time the caller spent joining workers after its own
        /// chunk finished (ns) — the pool's imbalance/idle signal.
        pub caller_wait_ns: u128,
        /// Per-slot activity, indexed by worker slot.
        pub workers: Vec<WorkerSample>,
    }

    impl PoolSnapshot {
        /// Renders the snapshot as a JSON object (std-only writer).
        pub fn to_json(&self) -> String {
            let workers: Vec<String> = self
                .workers
                .iter()
                .map(|w| format!("{{\"busy_ns\":{},\"chunks\":{}}}", w.busy_ns, w.chunks))
                .collect();
            format!(
                "{{\"fanouts\":{},\"sequential_runs\":{},\"caller_wait_ns\":{},\
                 \"workers\":[{}]}}",
                self.fanouts,
                self.sequential_runs,
                self.caller_wait_ns,
                workers.join(",")
            )
        }
    }

    static ENABLED: AtomicBool = AtomicBool::new(false);

    fn state() -> MutexGuard<'static, PoolSnapshot> {
        static STATE: OnceLock<Mutex<PoolSnapshot>> = OnceLock::new();
        STATE
            .get_or_init(|| Mutex::new(PoolSnapshot::default()))
            .lock()
            .expect("pool profiling state poisoned")
    }

    /// Starts accumulating occupancy (process-wide).
    pub fn enable() {
        ENABLED.store(true, Ordering::Relaxed);
    }

    /// Stops accumulating; counters keep their values until [`reset`].
    pub fn disable() {
        ENABLED.store(false, Ordering::Relaxed);
    }

    /// True while profiling is accumulating.
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Clears every counter.
    pub fn reset() {
        *state() = PoolSnapshot::default();
    }

    /// A copy of the current counters.
    pub fn snapshot() -> PoolSnapshot {
        state().clone()
    }

    pub(super) fn note_sequential() {
        if enabled() {
            state().sequential_runs += 1;
        }
    }

    pub(super) fn note_fanout(workers: usize) {
        let mut s = state();
        s.fanouts += 1;
        if s.workers.len() < workers {
            s.workers.resize(workers, WorkerSample::default());
        }
    }

    fn record_worker(slot: usize, busy_ns: u128) {
        // A fan-out can still be in flight when profiling is turned off
        // and the counters reset; its workers captured `profiling` at
        // spawn time, so without this gate their late records would
        // resurrect stale samples into the freshly reset snapshot.
        if !enabled() {
            return;
        }
        let mut s = state();
        if s.workers.len() <= slot {
            s.workers.resize(slot + 1, WorkerSample::default());
        }
        s.workers[slot].busy_ns += busy_ns;
        s.workers[slot].chunks += 1;
    }

    pub(super) fn record_caller_wait(ns: u128) {
        // Same disable()+reset() race as record_worker.
        if !enabled() {
            return;
        }
        state().caller_wait_ns += ns;
    }

    /// Runs `f`, charging its wall time to worker `slot` when
    /// `profiling` — callers hoist the enabled check out of the loop so
    /// disabled runs never read a clock.
    pub(super) fn timed<R>(profiling: bool, slot: usize, f: impl FnOnce() -> R) -> R {
        if !profiling {
            return f();
        }
        let t0 = Instant::now();
        let out = f();
        record_worker(slot, t0.elapsed().as_nanos());
        out
    }
}

/// Minimum elements per worker before a loop fans out. Below
/// `2 × MIN_CHUNK` total elements everything runs on the calling thread.
pub const MIN_CHUNK: usize = 8 * 1024;

fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("PIM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// Process-wide override; 0 means "not set".
static GLOBAL_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override; 0 means "not set".
    static LOCAL_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Overrides the worker count for the whole process (`None` restores the
/// `PIM_THREADS`/auto default). Exposed to CLIs as `--threads N`.
pub fn set_thread_count(n: Option<usize>) {
    GLOBAL_OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// The worker count the next fan-out on this thread will use.
pub fn thread_count() -> usize {
    let local = LOCAL_OVERRIDE.with(Cell::get);
    if local > 0 {
        return local;
    }
    let global = GLOBAL_OVERRIDE.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    env_threads()
}

/// Runs `f` with the worker count pinned to `n` on the current thread
/// (restored on exit, including on panic). This is the race-free way for
/// tests and benchmarks to compare thread counts inside one process.
pub fn with_thread_count<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Reset(usize);
    impl Drop for Reset {
        fn drop(&mut self) {
            LOCAL_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = LOCAL_OVERRIDE.with(|c| {
        let p = c.get();
        c.set(n.max(1));
        p
    });
    let _reset = Reset(prev);
    f()
}

/// Workers a loop over `len` elements should fan out to.
fn workers_for(len: usize) -> usize {
    if len < 2 * MIN_CHUNK {
        return 1;
    }
    thread_count().min(len / MIN_CHUNK).max(1)
}

/// Splits `0..len` into `parts` contiguous ranges covering every index
/// exactly once, the first ranges one element longer when `len` does not
/// divide evenly.
fn split(len: usize, parts: usize) -> Vec<Range<usize>> {
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let end = start + base + usize::from(i < extra);
        out.push(start..end);
        start = end;
    }
    out
}

/// The fan-out primitive: applies `work` to contiguous chunks of
/// `0..len` and returns the per-chunk results **in ascending chunk
/// order**. Chunk 0 runs on the calling thread; the rest on scoped
/// workers. With one worker (or a short input) this is exactly
/// `vec![work(0..len)]`.
pub fn par_chunks<R: Send>(len: usize, work: impl Fn(Range<usize>) -> R + Sync) -> Vec<R> {
    if len == 0 {
        return Vec::new();
    }
    let workers = workers_for(len);
    if workers <= 1 {
        pool::note_sequential();
        return vec![work(0..len)];
    }
    let profiling = pool::enabled();
    if profiling {
        pool::note_fanout(workers);
    }
    let ranges = split(len, workers);
    let work = &work;
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges[1..]
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let r = r.clone();
                scope.spawn(move || pool::timed(profiling, i + 1, || work(r)))
            })
            .collect();
        let mut out = Vec::with_capacity(workers);
        out.push(pool::timed(profiling, 0, || work(ranges[0].clone())));
        let wait0 = profiling.then(std::time::Instant::now);
        for h in handles {
            out.push(h.join().expect("PIM worker thread panicked"));
        }
        if let Some(t0) = wait0 {
            pool::record_caller_wait(t0.elapsed().as_nanos());
        }
        out
    })
}

/// Chunk-ordered parallel reduction: maps each chunk of `0..len` with
/// `map`, then folds the partials left-to-right in chunk order on the
/// calling thread, so the result is bit-identical to a sequential fold.
pub fn par_fold<R: Send>(
    len: usize,
    map: impl Fn(Range<usize>) -> R + Sync,
    fold: impl FnMut(R, R) -> R,
) -> Option<R> {
    par_chunks(len, map).into_iter().reduce(fold)
}

/// `out[i] = f(&src[i])` in parallel over disjoint chunks.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn par_map_into<S: Sync, T: Send>(src: &[S], out: &mut [T], f: impl Fn(&S) -> T + Sync) {
    assert_eq!(src.len(), out.len(), "par_map_into length mismatch");
    let workers = workers_for(out.len());
    if workers <= 1 {
        pool::note_sequential();
        for (o, s) in out.iter_mut().zip(src) {
            *o = f(s);
        }
        return;
    }
    let profiling = pool::enabled();
    if profiling {
        pool::note_fanout(workers);
    }
    let chunk = out.len().div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        let mut pairs = out.chunks_mut(chunk).zip(src.chunks(chunk));
        let first = pairs.next();
        for (slot, (oc, sc)) in pairs.enumerate() {
            scope.spawn(move || {
                pool::timed(profiling, slot + 1, || {
                    for (o, s) in oc.iter_mut().zip(sc) {
                        *o = f(s);
                    }
                });
            });
        }
        if let Some((oc, sc)) = first {
            pool::timed(profiling, 0, || {
                for (o, s) in oc.iter_mut().zip(sc) {
                    *o = f(s);
                }
            });
        }
    });
}

/// `out[i] = f(&a[i], &b[i])` in parallel over disjoint chunks.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn par_zip_map_into<A: Sync, B: Sync, T: Send>(
    a: &[A],
    b: &[B],
    out: &mut [T],
    f: impl Fn(&A, &B) -> T + Sync,
) {
    assert_eq!(a.len(), b.len(), "par_zip_map_into length mismatch");
    assert_eq!(a.len(), out.len(), "par_zip_map_into length mismatch");
    let workers = workers_for(out.len());
    if workers <= 1 {
        pool::note_sequential();
        for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
            *o = f(x, y);
        }
        return;
    }
    let profiling = pool::enabled();
    if profiling {
        pool::note_fanout(workers);
    }
    let chunk = out.len().div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        let mut triples = out
            .chunks_mut(chunk)
            .zip(a.chunks(chunk))
            .zip(b.chunks(chunk));
        let first = triples.next();
        for (slot, ((oc, ac), bc)) in triples.enumerate() {
            scope.spawn(move || {
                pool::timed(profiling, slot + 1, || {
                    for ((o, x), y) in oc.iter_mut().zip(ac).zip(bc) {
                        *o = f(x, y);
                    }
                });
            });
        }
        if let Some(((oc, ac), bc)) = first {
            pool::timed(profiling, 0, || {
                for ((o, x), y) in oc.iter_mut().zip(ac).zip(bc) {
                    *o = f(x, y);
                }
            });
        }
    });
}

/// `out[i] = f(&a[i], &b[i], &c[i])` in parallel over disjoint chunks
/// (the three-operand `select` shape).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn par_zip3_map_into<A: Sync, B: Sync, C: Sync, T: Send>(
    a: &[A],
    b: &[B],
    c: &[C],
    out: &mut [T],
    f: impl Fn(&A, &B, &C) -> T + Sync,
) {
    assert_eq!(a.len(), b.len(), "par_zip3_map_into length mismatch");
    assert_eq!(a.len(), c.len(), "par_zip3_map_into length mismatch");
    assert_eq!(a.len(), out.len(), "par_zip3_map_into length mismatch");
    let workers = workers_for(out.len());
    if workers <= 1 {
        pool::note_sequential();
        for (((o, x), y), z) in out.iter_mut().zip(a).zip(b).zip(c) {
            *o = f(x, y, z);
        }
        return;
    }
    let profiling = pool::enabled();
    if profiling {
        pool::note_fanout(workers);
    }
    let chunk = out.len().div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        let mut quads = out
            .chunks_mut(chunk)
            .zip(a.chunks(chunk))
            .zip(b.chunks(chunk))
            .zip(c.chunks(chunk));
        let first = quads.next();
        for (slot, (((oc, ac), bc), cc)) in quads.enumerate() {
            scope.spawn(move || {
                pool::timed(profiling, slot + 1, || {
                    for (((o, x), y), z) in oc.iter_mut().zip(ac).zip(bc).zip(cc) {
                        *o = f(x, y, z);
                    }
                });
            });
        }
        if let Some((((oc, ac), bc), cc)) = first {
            pool::timed(profiling, 0, || {
                for (((o, x), y), z) in oc.iter_mut().zip(ac).zip(bc).zip(cc) {
                    *o = f(x, y, z);
                }
            });
        }
    });
}

/// `out[i] = f(&a[i], &b[i], &c[i], &d[i])` in parallel over disjoint
/// chunks (the four-operand fused `cmp_select` shape).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn par_zip4_map_into<A: Sync, B: Sync, C: Sync, D: Sync, T: Send>(
    a: &[A],
    b: &[B],
    c: &[C],
    d: &[D],
    out: &mut [T],
    f: impl Fn(&A, &B, &C, &D) -> T + Sync,
) {
    assert_eq!(a.len(), b.len(), "par_zip4_map_into length mismatch");
    assert_eq!(a.len(), c.len(), "par_zip4_map_into length mismatch");
    assert_eq!(a.len(), d.len(), "par_zip4_map_into length mismatch");
    assert_eq!(a.len(), out.len(), "par_zip4_map_into length mismatch");
    let workers = workers_for(out.len());
    if workers <= 1 {
        pool::note_sequential();
        for ((((o, x), y), z), u) in out.iter_mut().zip(a).zip(b).zip(c).zip(d) {
            *o = f(x, y, z, u);
        }
        return;
    }
    let profiling = pool::enabled();
    if profiling {
        pool::note_fanout(workers);
    }
    let chunk = out.len().div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        let mut quints = out
            .chunks_mut(chunk)
            .zip(a.chunks(chunk))
            .zip(b.chunks(chunk))
            .zip(c.chunks(chunk))
            .zip(d.chunks(chunk));
        let first = quints.next();
        for (slot, ((((oc, ac), bc), cc), dc)) in quints.enumerate() {
            scope.spawn(move || {
                pool::timed(profiling, slot + 1, || {
                    for ((((o, x), y), z), u) in oc.iter_mut().zip(ac).zip(bc).zip(cc).zip(dc) {
                        *o = f(x, y, z, u);
                    }
                });
            });
        }
        if let Some(((((oc, ac), bc), cc), dc)) = first {
            pool::timed(profiling, 0, || {
                for ((((o, x), y), z), u) in oc.iter_mut().zip(ac).zip(bc).zip(cc).zip(dc) {
                    *o = f(x, y, z, u);
                }
            });
        }
    });
}

/// Parallel map into a fresh buffer.
pub fn par_map<S: Sync, T: Send + Default + Clone>(
    src: &[S],
    f: impl Fn(&S) -> T + Sync,
) -> Vec<T> {
    let mut out = vec![T::default(); src.len()];
    par_map_into(src, &mut out, f);
    out
}

/// Parallel zip-map into a fresh buffer.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn par_zip_map<A: Sync, B: Sync, T: Send + Default + Clone>(
    a: &[A],
    b: &[B],
    f: impl Fn(&A, &B) -> T + Sync,
) -> Vec<T> {
    let mut out = vec![T::default(); a.len()];
    par_zip_map_into(a, b, &mut out, f);
    out
}

/// Parallel three-way zip-map into a fresh buffer.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn par_zip3_map<A: Sync, B: Sync, C: Sync, T: Send + Default + Clone>(
    a: &[A],
    b: &[B],
    c: &[C],
    f: impl Fn(&A, &B, &C) -> T + Sync,
) -> Vec<T> {
    let mut out = vec![T::default(); a.len()];
    par_zip3_map_into(a, b, c, &mut out, f);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_every_index_once() {
        for len in [0usize, 1, 7, 100, 8191, 8192, 100_001] {
            for parts in 1..=9 {
                let ranges = split(len, parts);
                assert_eq!(ranges.len(), parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, len);
            }
        }
    }

    #[test]
    fn thread_count_overrides_nest_and_restore() {
        let outer = thread_count();
        let inner = with_thread_count(3, || {
            assert_eq!(thread_count(), 3);
            with_thread_count(5, thread_count)
        });
        assert_eq!(inner, 5);
        assert_eq!(thread_count(), outer);
    }

    #[test]
    fn par_map_matches_sequential_at_any_thread_count() {
        let src: Vec<i64> = (0..100_000).map(|i| i * 7 - 50_000).collect();
        let seq: Vec<i64> = src.iter().map(|&x| x.wrapping_mul(3) ^ 1).collect();
        for threads in [1, 2, 8] {
            let par = with_thread_count(threads, || par_map(&src, |&x| x.wrapping_mul(3) ^ 1));
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn par_zip_maps_match_sequential() {
        let a: Vec<i64> = (0..70_000).collect();
        let b: Vec<i64> = (0..70_000).map(|i| i * 3).collect();
        let c: Vec<i64> = (0..70_000).map(|i| i % 2).collect();
        let seq2: Vec<i64> = a.iter().zip(&b).map(|(x, y)| x - y).collect();
        let seq3: Vec<i64> = a
            .iter()
            .zip(b.iter().zip(&c))
            .map(|(x, (y, z))| if *z != 0 { *x } else { *y })
            .collect();
        let par2 = with_thread_count(4, || par_zip_map(&a, &b, |x, y| x - y));
        let par3 = with_thread_count(4, || {
            par_zip3_map(&c, &a, &b, |z, x, y| if *z != 0 { *x } else { *y })
        });
        assert_eq!(par2, seq2);
        assert_eq!(par3, seq3);
    }

    #[test]
    fn par_fold_is_chunk_ordered() {
        let len = 60_000;
        let seq: usize = (0..len).sum();
        let folded = with_thread_count(7, || {
            par_fold(len, |r| r.sum::<usize>(), |a, b| a + b).unwrap()
        });
        assert_eq!(folded, seq);
        let order = with_thread_count(7, || par_chunks(len, |r| r.start));
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted, "chunks returned in ascending order");
    }

    #[test]
    fn short_inputs_stay_on_the_calling_thread() {
        let caller = std::thread::current().id();
        let ids = with_thread_count(8, || par_chunks(100, |_| std::thread::current().id()));
        assert_eq!(ids, vec![caller]);
    }

    #[test]
    fn pool_profiling_records_fanouts_and_workers() {
        // Single test for all pool assertions: the enabled flag is
        // process-global, so splitting these across tests would race
        // under the parallel test harness. Other exec tests may run
        // concurrently while profiling is on, so counts are asserted
        // as lower bounds.
        pool::reset();
        pool::enable();
        let len = 4 * MIN_CHUNK;
        let parts = with_thread_count(4, || par_chunks(len, |r| r.len()));
        assert_eq!(parts.iter().sum::<usize>(), len);
        with_thread_count(1, || par_chunks(len, |r| r.len()));
        let snap = pool::snapshot();
        pool::disable();
        assert!(snap.fanouts >= 1);
        assert!(snap.sequential_runs >= 1);
        assert!(snap.workers.len() >= 4);
        assert!(snap.workers.iter().take(4).all(|w| w.chunks >= 1));
        let json = snap.to_json();
        assert!(json.starts_with("{\"fanouts\":"));
        assert!(json.contains("\"sequential_runs\":"));
        assert!(json.contains("\"workers\":[{\"busy_ns\":"));

        // Disabled runs record nothing, including the sequential path.
        pool::reset();
        with_thread_count(4, || par_chunks(len, |r| r.len()));
        with_thread_count(1, || par_chunks(len, |r| r.len()));
        assert_eq!(pool::snapshot(), pool::PoolSnapshot::default());

        // Reset race: a fan-out captures `profiling` when it starts, so
        // its workers and the caller-wait record can land *after* a
        // disable()+reset(). Simulate such straggler records and assert
        // they cannot resurrect counters into the fresh snapshot.
        pool::reset();
        pool::timed(true, 2, || std::hint::black_box(1 + 1));
        pool::record_caller_wait(1_000_000);
        assert_eq!(
            pool::snapshot(),
            pool::PoolSnapshot::default(),
            "records from a pre-disable fan-out must be dropped once profiling is off"
        );
    }
}
