//! Error type for DRAM substrate operations.

use std::error::Error;
use std::fmt;

/// Errors returned by functional DRAM array operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DramError {
    /// A row index was outside the subarray.
    RowOutOfRange {
        /// The offending row index.
        row: usize,
        /// Number of rows in the subarray.
        rows: usize,
    },
    /// A column index was outside the subarray.
    ColOutOfRange {
        /// The offending column index.
        col: usize,
        /// Number of columns in the subarray.
        cols: usize,
    },
    /// A read or logic operation targeted a closed row buffer.
    RowNotActive,
    /// An activation was issued while another row was already open.
    RowAlreadyActive {
        /// The row currently held in the row buffer.
        open_row: usize,
    },
    /// A geometry parameter was zero or otherwise invalid.
    InvalidGeometry(String),
    /// A protocol timing parameter set was inconsistent (e.g. tRAS <
    /// tRCD), reported by checked [`crate::protocol::ProtocolTiming`]
    /// construction.
    InvalidTiming(String),
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::RowOutOfRange { row, rows } => {
                write!(f, "row index {row} out of range (subarray has {rows} rows)")
            }
            DramError::ColOutOfRange { col, cols } => {
                write!(
                    f,
                    "column index {col} out of range (subarray has {cols} columns)"
                )
            }
            DramError::RowNotActive => write!(f, "operation requires an activated row"),
            DramError::RowAlreadyActive { open_row } => {
                write!(f, "row {open_row} is already active; precharge first")
            }
            DramError::InvalidGeometry(msg) => write!(f, "invalid DRAM geometry: {msg}"),
            DramError::InvalidTiming(msg) => write!(f, "invalid DRAM timing: {msg}"),
        }
    }
}

impl Error for DramError {}
