//! Lifecycle and safety tests for the persistent work-stealing
//! executor behind `pim_dram::exec`.
//!
//! The spawn-counter, live-worker, and shutdown assertions read
//! process-global pool state, and the libtest harness runs `#[test]`s
//! concurrently — a second test fanning out mid-shutdown would make
//! the counters racy. Every test in this binary therefore takes
//! [`pool_lock`] first.

use std::sync::{Mutex, MutexGuard};

use pim_dram::exec::{self, pool, MIN_CHUNK};

/// Serializes the tests in this binary (they share the process-global
/// pool). `into_inner` on poison: a failed test must not cascade.
fn pool_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn map_once(threads: usize, len: usize) -> Vec<i64> {
    let src: Vec<i64> = (0..len as i64).collect();
    exec::with_thread_count(threads, || par_sq(&src))
}

fn par_sq(src: &[i64]) -> Vec<i64> {
    exec::par_map(src, |&x| x.wrapping_mul(x) ^ 0x5a)
}

/// Steady state spawns nothing; shutdown joins every worker and the
/// pool restarts lazily afterwards.
#[test]
fn pool_lifecycle_spawns_once_then_reuses_workers() {
    let _serial = pool_lock();
    let len = 8 * MIN_CHUNK;
    let seq = exec::with_thread_count(1, || par_sq(&(0..len as i64).collect::<Vec<_>>()));

    // Warm the pool at the highest thread count this test uses.
    assert_eq!(map_once(4, len), seq);
    let spawned_warm = pool::spawned_workers_total();
    assert!(
        spawned_warm >= 1,
        "a 4-lane fan-out must have spawned workers"
    );

    // Steady state: many more fan-outs, zero new OS threads.
    for _ in 0..32 {
        assert_eq!(map_once(4, len), seq);
    }
    assert_eq!(
        pool::spawned_workers_total(),
        spawned_warm,
        "steady-state fan-outs must not spawn OS threads"
    );

    // Shutdown drains and joins every worker (no leak at process exit).
    pool::shutdown();
    assert_eq!(pool::live_workers(), 0, "shutdown must join all workers");

    // Repeated shutdown is a no-op, not a hang.
    pool::shutdown();
    assert_eq!(pool::live_workers(), 0);

    // The pool restarts lazily: fan-outs after shutdown still work and
    // spawn fresh workers exactly once.
    assert_eq!(map_once(4, len), seq);
    let spawned_restart = pool::spawned_workers_total();
    assert!(spawned_restart > spawned_warm, "restart spawns new workers");
    for _ in 0..8 {
        assert_eq!(map_once(4, len), seq);
    }
    assert_eq!(pool::spawned_workers_total(), spawned_restart);
}

/// Nested fan-outs (a chunk body that itself fans out) complete and
/// stay bit-identical to sequential — the caller of the inner job can
/// always drain it itself, so reentrancy cannot deadlock.
#[test]
fn nested_fanouts_are_reentrant_and_deterministic() {
    let _serial = pool_lock();
    let rows = 6usize;
    let cols = 4 * MIN_CHUNK;
    let expect: Vec<i64> = (0..rows as i64)
        .map(|r| (0..cols as i64).map(|c| (r * 31) ^ c).sum::<i64>())
        .collect();
    for threads in [1, 2, 4] {
        let got = exec::with_thread_count(threads, || {
            exec::par_chunks(rows, |rr| {
                rr.map(|r| {
                    // Inner fan-out from inside an outer chunk body.
                    exec::par_fold(
                        cols,
                        |cc| cc.map(|c| ((r as i64) * 31) ^ (c as i64)).sum::<i64>(),
                        |a, b| a + b,
                    )
                    .unwrap_or(0)
                })
                .collect::<Vec<i64>>()
            })
            .into_iter()
            .flatten()
            .collect::<Vec<i64>>()
        });
        assert_eq!(got, expect, "threads={threads}");
    }
}

/// The effective thread count can change between fan-outs (the serving
/// layer will do exactly this): the pool grows on demand and results
/// never change.
#[test]
fn thread_count_changes_between_calls_keep_results_identical() {
    let _serial = pool_lock();
    let len = 6 * MIN_CHUNK;
    let seq = map_once(1, len);
    for threads in [2, 7, 1, 4, 2, 7] {
        assert_eq!(map_once(threads, len), seq, "threads={threads}");
    }
    // Same through the process-wide override (pimbench --threads N).
    exec::set_thread_count(Some(3));
    let got = par_sq(&(0..len as i64).collect::<Vec<_>>());
    exec::set_thread_count(None);
    assert_eq!(got, seq);
}

/// A panic in a chunk body propagates to the caller and leaves the pool
/// usable for later fan-outs.
#[test]
fn chunk_panics_propagate_and_pool_survives() {
    let _serial = pool_lock();
    let len = 4 * MIN_CHUNK;
    let caught = std::panic::catch_unwind(|| {
        exec::with_thread_count(4, || {
            exec::par_chunks(len, |r| {
                assert!(r.start < len, "worker chunk misplanned");
                if r.start == 0 {
                    panic!("chunk zero exploded");
                }
                r.len()
            })
        })
    });
    let payload = caught.expect_err("chunk panic must reach the caller");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .map(String::from)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("chunk zero exploded"), "payload: {msg}");
    // The pool still works after a panicked job.
    let seq = map_once(1, len);
    assert_eq!(map_once(4, len), seq);
}
