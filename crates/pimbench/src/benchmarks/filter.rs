//! Filter-By-Key (Table I, Database): scan a column for records matching
//! a predicate. The PIM side produces a match bitmap at high speed; the
//! host must then fetch the bitmap and gather the selected records —
//! the gather dominates (99 % of PIM-side runtime in the paper, Fig. 7).

use pim_baseline::WorkloadProfile;
use pimeval::{DataType, Device};

use crate::common::{
    charge_host, finish, BenchError, BenchSpec, Benchmark, Domain, ExecType, Params, RunOutcome,
    SplitMix64,
};

/// Filter-by-key with ~1 % selectivity, as in the paper.
#[derive(Debug, Default, Clone, Copy)]
pub struct FilterByKey;

impl FilterByKey {
    const BASE_N: u64 = 1 << 20;
    /// Keys are uniform in [0, 10_000); threshold 100 gives ~1 %.
    const KEY_SPACE: i32 = 10_000;
    const THRESHOLD: i64 = 100;
}

impl Benchmark for FilterByKey {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            name: "Filter-By-Key",
            domain: Domain::Database,
            sequential: true,
            random: false,
            exec: ExecType::PimHost,
            paper_input: "1,073,741,824 key-value pairs",
        }
    }

    fn run(&self, dev: &mut Device, params: &Params) -> Result<RunOutcome, BenchError> {
        dev.reset_stats();
        let n = params.scaled(Self::BASE_N) as usize;
        let mut rng = SplitMix64::new(params.seed);
        let keys = rng.i32_vec(n, 0, Self::KEY_SPACE);

        // PIM phase: predicate scan producing the match bitmap.
        let ok_keys = dev.alloc_vec(&keys)?;
        let bitmap = dev.alloc_associated(ok_keys, DataType::Int32)?;
        dev.lt_scalar(ok_keys, Self::THRESHOLD, bitmap)?;
        let bits = dev.to_vec::<i32>(bitmap)?;
        dev.free(bitmap)?;
        dev.free(ok_keys)?;

        // Host phase: iterate the bitmap and gather matching records.
        // Random gathers achieve a small fraction of streaming bandwidth.
        let matches: Vec<usize> = bits
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| (b == 1).then_some(i))
            .collect();
        let gather_bytes = (n + matches.len() * 8) as f64 * 4.0;
        // The gather is the same random-access loop the CPU baseline
        // runs for its own gather portion (31 % of its runtime, SVIII).
        charge_host(
            dev,
            &WorkloadProfile::new(n as f64, gather_bytes).with_efficiency(0.5),
        );

        let expected = keys
            .iter()
            .filter(|&&k| (k as i64) < Self::THRESHOLD)
            .count();
        let ok = matches.len() == expected
            && matches.iter().all(|&i| (keys[i] as i64) < Self::THRESHOLD);
        finish(dev, ok, "filter match set")
    }

    fn cpu_profile(&self, params: &Params) -> WorkloadProfile {
        let n = params.scaled(Self::BASE_N) as f64;
        // Scan + branchy gather: the paper reports the gather is 31 % of
        // the CPU runtime.
        WorkloadProfile::new(2.0 * n, 8.0 * n).with_efficiency(0.55)
    }

    fn gpu_profile(&self, params: &Params) -> WorkloadProfile {
        let n = params.scaled(Self::BASE_N) as f64;
        // Stream-compaction (CUB select) is bandwidth-efficient.
        WorkloadProfile::new(3.0 * n, 8.0 * n).with_efficiency(0.85)
    }

    fn paper_factor(&self, params: &Params) -> f64 {
        1_073_741_824.0 / params.scaled(Self::BASE_N) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimeval::PimTarget;

    #[test]
    fn filter_verifies_and_is_host_bound() {
        for t in PimTarget::ALL {
            let mut dev = Device::new(pimeval::DeviceConfig::new(t, 4)).unwrap();
            let out = FilterByKey
                .run(
                    &mut dev,
                    &Params {
                        scale: 0.05,
                        seed: 9,
                        ..Params::default()
                    },
                )
                .unwrap();
            assert!(out.verified, "{t}");
            let (_dm, host, _kernel) = out.stats.breakdown();
            assert!(host > 0.0, "{t}: gather phase must be charged to the host");
        }
    }

    #[test]
    fn selectivity_is_about_one_percent() {
        let mut rng = SplitMix64::new(1);
        let keys = rng.i32_vec(100_000, 0, FilterByKey::KEY_SPACE);
        let hits = keys
            .iter()
            .filter(|&&k| (k as i64) < FilterByKey::THRESHOLD)
            .count();
        let frac = hits as f64 / keys.len() as f64;
        assert!(frac > 0.005 && frac < 0.02, "selectivity {frac}");
    }
}
