//! Reference AES-256 (ECB) implementation used to verify the PIM
//! bitsliced version. Tables are derived algebraically (GF(2⁸) inverse +
//! affine transform) rather than hardcoded, and checked against FIPS-197
//! known values in the tests.

// Round-indexed loops mirror FIPS-197 pseudocode.
#![allow(clippy::needless_range_loop)]

/// GF(2⁸) multiplication modulo x⁸+x⁴+x³+x+1 (0x11B).
pub fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut r = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            r ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1B;
        }
        b >>= 1;
    }
    r
}

/// Multiplicative inverse in GF(2⁸) (0 maps to 0), via a^254.
pub fn gf_inv(a: u8) -> u8 {
    let mut result = 1u8;
    let mut base = a;
    let mut e = 254u32;
    while e > 0 {
        if e & 1 == 1 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        e >>= 1;
    }
    result
}

/// The AES S-box, computed as affine(inverse(a)).
pub fn sbox(a: u8) -> u8 {
    let b = gf_inv(a);
    b ^ b.rotate_left(1) ^ b.rotate_left(2) ^ b.rotate_left(3) ^ b.rotate_left(4) ^ 0x63
}

/// The inverse AES S-box.
pub fn inv_sbox(a: u8) -> u8 {
    // Invert the affine transform, then the field inverse.
    let b = a.rotate_left(1) ^ a.rotate_left(3) ^ a.rotate_left(6) ^ 0x05;
    gf_inv(b)
}

/// AES-256 expanded key: 15 round keys of 16 bytes.
pub fn expand_key(key: &[u8; 32]) -> [[u8; 16]; 15] {
    let mut w = [[0u8; 4]; 60];
    for (i, chunk) in key.chunks(4).enumerate() {
        w[i].copy_from_slice(chunk);
    }
    let mut rcon = 1u8;
    for i in 8..60 {
        let mut t = w[i - 1];
        if i % 8 == 0 {
            t.rotate_left(1);
            for b in &mut t {
                *b = sbox(*b);
            }
            t[0] ^= rcon;
            rcon = gf_mul(rcon, 2);
        } else if i % 8 == 4 {
            for b in &mut t {
                *b = sbox(*b);
            }
        }
        for j in 0..4 {
            w[i][j] = w[i - 8][j] ^ t[j];
        }
    }
    let mut rk = [[0u8; 16]; 15];
    for r in 0..15 {
        for c in 0..4 {
            rk[r][4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
        }
    }
    rk
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

fn shift_rows(state: &mut [u8; 16]) {
    let old = *state;
    for r in 0..4 {
        for c in 0..4 {
            state[4 * c + r] = old[4 * ((c + r) % 4) + r];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    let old = *state;
    for r in 0..4 {
        for c in 0..4 {
            state[4 * ((c + r) % 4) + r] = old[4 * c + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col: [u8; 4] = state[4 * c..4 * c + 4].try_into().unwrap();
        for r in 0..4 {
            state[4 * c + r] = gf_mul(col[r], 2)
                ^ gf_mul(col[(r + 1) % 4], 3)
                ^ col[(r + 2) % 4]
                ^ col[(r + 3) % 4];
        }
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col: [u8; 4] = state[4 * c..4 * c + 4].try_into().unwrap();
        for r in 0..4 {
            state[4 * c + r] = gf_mul(col[r], 14)
                ^ gf_mul(col[(r + 1) % 4], 11)
                ^ gf_mul(col[(r + 2) % 4], 13)
                ^ gf_mul(col[(r + 3) % 4], 9);
        }
    }
}

/// Encrypts one 16-byte block with an expanded AES-256 key.
pub fn encrypt_block(block: &[u8; 16], rk: &[[u8; 16]; 15]) -> [u8; 16] {
    let mut s = *block;
    add_round_key(&mut s, &rk[0]);
    for round in 1..14 {
        for b in &mut s {
            *b = sbox(*b);
        }
        shift_rows(&mut s);
        mix_columns(&mut s);
        add_round_key(&mut s, &rk[round]);
    }
    for b in &mut s {
        *b = sbox(*b);
    }
    shift_rows(&mut s);
    add_round_key(&mut s, &rk[14]);
    s
}

/// Decrypts one 16-byte block with an expanded AES-256 key.
pub fn decrypt_block(block: &[u8; 16], rk: &[[u8; 16]; 15]) -> [u8; 16] {
    let mut s = *block;
    add_round_key(&mut s, &rk[14]);
    inv_shift_rows(&mut s);
    for b in &mut s {
        *b = inv_sbox(*b);
    }
    for round in (1..14).rev() {
        add_round_key(&mut s, &rk[round]);
        inv_mix_columns(&mut s);
        inv_shift_rows(&mut s);
        for b in &mut s {
            *b = inv_sbox(*b);
        }
    }
    add_round_key(&mut s, &rk[0]);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_known_values() {
        // FIPS-197 table entries.
        assert_eq!(sbox(0x00), 0x63);
        assert_eq!(sbox(0x01), 0x7C);
        assert_eq!(sbox(0x53), 0xED);
        assert_eq!(sbox(0xFF), 0x16);
    }

    #[test]
    fn inv_sbox_inverts_sbox() {
        for a in 0..=255u8 {
            assert_eq!(inv_sbox(sbox(a)), a, "a={a:#04x}");
        }
    }

    #[test]
    fn gf_mul_known_values() {
        assert_eq!(gf_mul(0x57, 0x83), 0xC1); // FIPS-197 example
        assert_eq!(gf_mul(0x57, 0x13), 0xFE);
        assert_eq!(gf_mul(1, 0xAB), 0xAB);
        assert_eq!(gf_mul(0, 0xAB), 0);
    }

    #[test]
    fn gf_inv_is_an_inverse() {
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "a={a:#04x}");
        }
        assert_eq!(gf_inv(0), 0);
    }

    #[test]
    fn aes256_fips197_vector() {
        // FIPS-197 Appendix C.3.
        let key: [u8; 32] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f, 0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17, 0x18, 0x19, 0x1a, 0x1b,
            0x1c, 0x1d, 0x1e, 0x1f,
        ];
        let pt: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expected: [u8; 16] = [
            0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49,
            0x60, 0x89,
        ];
        let rk = expand_key(&key);
        assert_eq!(encrypt_block(&pt, &rk), expected);
        assert_eq!(decrypt_block(&expected, &rk), pt);
    }

    #[test]
    fn encrypt_decrypt_roundtrip_random() {
        let key = [0xA7u8; 32];
        let rk = expand_key(&key);
        for i in 0..32u8 {
            let mut block = [0u8; 16];
            for (j, b) in block.iter_mut().enumerate() {
                *b = i.wrapping_mul(31).wrapping_add(j as u8 * 7);
            }
            assert_eq!(decrypt_block(&encrypt_block(&block, &rk), &rk), block);
        }
    }
}
