//! Triangle counting (Table I, Graph).
//!
//! Bitmap adjacency rows live on PIM; for each edge `(u, v)` the kernel
//! ANDs the two neighbor bitmaps, popcounts the words, and reduces — the
//! AND/popcount/reduction-sum pipeline the paper describes (§VIII).
//! Every triangle is counted once per participating edge, so the total
//! is divided by 3.

use pim_baseline::WorkloadProfile;
use pimeval::{DataType, Device};

use crate::common::{
    finish, BenchError, BenchSpec, Benchmark, Domain, ExecType, Params, RunOutcome, SplitMix64,
};

/// Triangle counting over a synthetic Erdős–Rényi-style graph.
#[derive(Debug, Default, Clone, Copy)]
pub struct TriangleCount;

impl TriangleCount {
    const BASE_NODES: u64 = 96;
    /// Edge probability ~10 %.
    const EDGE_DENOM: u64 = 10;
}

/// Builds a random undirected graph: adjacency bitmaps (one `u32` word
/// row per node) and the edge list (u < v).
fn synth_graph(nodes: usize, seed: u64) -> (Vec<Vec<u32>>, Vec<(usize, usize)>) {
    let words = nodes.div_ceil(32);
    let mut adj = vec![vec![0u32; words]; nodes];
    let mut edges = Vec::new();
    let mut rng = SplitMix64::new(seed);
    for u in 0..nodes {
        for v in (u + 1)..nodes {
            if rng.below(TriangleCount::EDGE_DENOM) == 0 {
                adj[u][v / 32] |= 1 << (v % 32);
                adj[v][u / 32] |= 1 << (u % 32);
                edges.push((u, v));
            }
        }
    }
    (adj, edges)
}

fn reference_triangles(adj: &[Vec<u32>], edges: &[(usize, usize)]) -> u64 {
    let common: u64 = edges
        .iter()
        .map(|&(u, v)| {
            adj[u]
                .iter()
                .zip(&adj[v])
                .map(|(a, b)| (a & b).count_ones() as u64)
                .sum::<u64>()
        })
        .sum();
    common / 3
}

impl Benchmark for TriangleCount {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            name: "Triangle Count",
            domain: Domain::Graph,
            sequential: true,
            random: true,
            exec: ExecType::Pim,
            paper_input: "227,320 nodes and 1,628,268 edges",
        }
    }

    fn run(&self, dev: &mut Device, params: &Params) -> Result<RunOutcome, BenchError> {
        dev.reset_stats();
        let nodes = params.scaled(Self::BASE_NODES) as usize;
        let (adj, edges) = synth_graph(nodes, params.seed);

        // Load adjacency rows as PIM objects.
        let rows: Vec<_> = adj
            .iter()
            .map(|r| dev.alloc_vec(r))
            .collect::<Result<Vec<_>, _>>()?;
        let tmp = dev.alloc_associated(rows[0], DataType::UInt32)?;
        let cnt = dev.alloc_associated(rows[0], DataType::UInt32)?;

        let mut common: u64 = 0;
        for &(u, v) in &edges {
            dev.and(rows[u], rows[v], tmp)?;
            dev.popcount(tmp, cnt)?;
            common += dev.red_sum(cnt)? as u64;
        }
        dev.free(tmp)?;
        dev.free(cnt)?;
        for r in rows {
            dev.free(r)?;
        }

        let got = common / 3;
        finish(
            dev,
            got == reference_triangles(&adj, &edges),
            "triangle count",
        )
    }

    fn cpu_profile(&self, params: &Params) -> WorkloadProfile {
        let nodes = params.scaled(Self::BASE_NODES) as f64;
        let edges = nodes * nodes / (2.0 * Self::EDGE_DENOM as f64);
        let words = (nodes / 32.0).ceil();
        // GAPBS-style intersection with irregular access.
        WorkloadProfile::new(3.0 * edges * words, 8.0 * edges * words).with_efficiency(0.4)
    }

    fn gpu_profile(&self, params: &Params) -> WorkloadProfile {
        let nodes = params.scaled(Self::BASE_NODES) as f64;
        let edges = nodes * nodes / (2.0 * Self::EDGE_DENOM as f64);
        let words = (nodes / 32.0).ceil();
        // Gunrock achieves good but not perfect utilization.
        WorkloadProfile::new(3.0 * edges * words, 8.0 * edges * words).with_efficiency(0.55)
    }

    fn paper_factor(&self, params: &Params) -> f64 {
        let nodes = params.scaled(Self::BASE_NODES) as f64;
        let edges = nodes * nodes / (2.0 * Self::EDGE_DENOM as f64);
        let words = (nodes / 32.0).ceil();
        let paper = 1_628_268.0 * (227_320.0f64 / 32.0).ceil();
        paper / (edges * words)
    }

    // Edges batch across disjoint core sets (each intersection is an
    // independent AND/popcount/reduce), so the whole paper factor is
    // data-parallel and the default serial_factor of 1 applies.
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimeval::PimTarget;

    #[test]
    fn triangle_count_matches_reference_on_all_targets() {
        for t in PimTarget::ALL {
            let mut dev = Device::new(pimeval::DeviceConfig::new(t, 1)).unwrap();
            let out = TriangleCount
                .run(
                    &mut dev,
                    &Params {
                        scale: 0.5,
                        seed: 10,
                        ..Params::default()
                    },
                )
                .unwrap();
            assert!(out.verified, "{t}");
            assert!(out.stats.categories[&pimeval::OpCategory::And] > 0);
            assert!(out.stats.categories[&pimeval::OpCategory::Popcount] > 0);
        }
    }

    #[test]
    fn reference_counts_a_known_triangle() {
        // Triangle 0-1-2 plus a pendant edge 2-3.
        let nodes = 4;
        let mut adj = vec![vec![0u32]; nodes];
        let mut edges = vec![];
        for &(u, v) in &[(0usize, 1usize), (0, 2), (1, 2), (2, 3)] {
            adj[u][0] |= 1 << v;
            adj[v][0] |= 1 << u;
            edges.push((u, v));
        }
        assert_eq!(reference_triangles(&adj, &edges), 1);
    }
}
