//! Image-processing benchmarks: histogram, brightness, image
//! downsampling. All operate on synthetic 24-bit RGB bitmaps whose three
//! channels are extracted into separate PIM objects (the paper extracts
//! "the pixels for each color channel" to keep access sequential).

use pim_baseline::WorkloadProfile;
use pimeval::{DataType, Device};

use crate::common::{
    finish, BenchError, BenchSpec, Benchmark, Domain, ExecType, Params, RunOutcome, SplitMix64,
};

/// Generates a synthetic image: three channel vectors of 0..=255 values.
fn synth_image(pixels: usize, seed: u64) -> [Vec<i32>; 3] {
    let mut rng = SplitMix64::new(seed);
    // Skew the distribution a little so histograms are not flat.
    let gen = |rng: &mut SplitMix64| {
        (0..pixels)
            .map(|_| {
                let v = rng.below(256) as i32;
                let w = rng.below(256) as i32;
                v.min(w) // triangular-ish
            })
            .collect()
    };
    [gen(&mut rng), gen(&mut rng), gen(&mut rng)]
}

/// RGB histogram (Table I; modeled after Phoenix).
///
/// PIM mapping (§VIII): for each channel and each key 0–255, an equality
/// sweep produces a bitmap whose reduction sum is the bin count —
/// reduction is the limiting factor, especially for bit-serial.
#[derive(Debug, Default, Clone, Copy)]
pub struct Histogram;

impl Histogram {
    const BASE_PIXELS: u64 = 1 << 14;
    /// Bins swept per channel. 256 in the paper; reduced by `scale` only
    /// below 1.0 to keep tiny test runs fast.
    fn bins(params: &Params) -> usize {
        if params.scale >= 1.0 {
            256
        } else {
            ((256.0 * params.scale) as usize).clamp(8, 256)
        }
    }
}

impl Benchmark for Histogram {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            name: "Histogram",
            domain: Domain::ImageProcessing,
            sequential: true,
            random: false,
            exec: ExecType::Pim,
            paper_input: "1.4 x 10^9 24-bit .bmp",
        }
    }

    fn run(&self, dev: &mut Device, params: &Params) -> Result<RunOutcome, BenchError> {
        dev.reset_stats();
        let pixels = params.scaled(Self::BASE_PIXELS) as usize;
        let bins = Self::bins(params);
        let channels = synth_image(pixels, params.seed);

        let mut ok = true;
        for ch in &channels {
            let o = dev.alloc_vec(ch)?;
            let mask = dev.alloc_associated(o, DataType::Int32)?;
            for key in 0..bins {
                dev.eq_scalar(o, key as i64, mask)?;
                let count = dev.red_sum(mask)? as usize;
                let expected = ch.iter().filter(|&&v| v == key as i32).count();
                if count != expected {
                    ok = false;
                }
            }
            dev.free(mask)?;
            dev.free(o)?;
        }
        finish(dev, ok, "histogram bin count")
    }

    fn cpu_profile(&self, params: &Params) -> WorkloadProfile {
        let n = 3.0 * params.scaled(Self::BASE_PIXELS) as f64;
        // One pass, random bin increments defeat some locality.
        WorkloadProfile::new(2.0 * n, 4.0 * n).with_efficiency(0.6)
    }

    fn gpu_profile(&self, params: &Params) -> WorkloadProfile {
        let n = 3.0 * params.scaled(Self::BASE_PIXELS) as f64;
        // Atomics-based GPU histogram streams the image once.
        WorkloadProfile::new(2.0 * n, 4.0 * n).with_efficiency(0.8)
    }

    fn paper_factor(&self, params: &Params) -> f64 {
        // ~1.4 GB of 24-bit pixels in the paper; PIM work scales with
        // pixels x bins.
        let pixels = params.scaled(Self::BASE_PIXELS) as f64;
        let bins = Self::bins(params) as f64;
        (1.4e9 / 3.0) * 256.0 / (pixels * bins)
    }

    fn serial_factor(&self, params: &Params) -> f64 {
        // Each bin is one serial eq + reduction sweep.
        256.0 / Self::bins(params) as f64
    }
}

/// Brightness adjustment with saturating addition (Table I; modeled
/// after the SIMDRAM benchmark): add a coefficient, clamp to [0, 255]
/// with min/max.
#[derive(Debug, Default, Clone, Copy)]
pub struct Brightness;

impl Brightness {
    const BASE_PIXELS: u64 = 1 << 18;
    const DELTA: i64 = 40;
}

impl Benchmark for Brightness {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            name: "Brightness",
            domain: Domain::ImageProcessing,
            sequential: true,
            random: false,
            exec: ExecType::Pim,
            paper_input: "1.4 x 10^9 24-bit .bmp",
        }
    }

    fn run(&self, dev: &mut Device, params: &Params) -> Result<RunOutcome, BenchError> {
        dev.reset_stats();
        let pixels = params.scaled(Self::BASE_PIXELS) as usize;
        let channels = synth_image(pixels, params.seed);

        let mut ok = true;
        for ch in &channels {
            let o = dev.alloc_vec(ch)?;
            dev.add_scalar(o, Self::DELTA, o)?;
            dev.min_scalar(o, 255, o)?;
            dev.max_scalar(o, 0, o)?;
            let got = dev.to_vec::<i32>(o)?;
            dev.free(o)?;
            ok &= got
                .iter()
                .zip(ch)
                .all(|(g, v)| *g == (v + Self::DELTA as i32).clamp(0, 255));
        }
        finish(dev, ok, "brightness pixel")
    }

    fn cpu_profile(&self, params: &Params) -> WorkloadProfile {
        let n = 3.0 * params.scaled(Self::BASE_PIXELS) as f64;
        WorkloadProfile::new(3.0 * n, 8.0 * n)
    }

    fn gpu_profile(&self, params: &Params) -> WorkloadProfile {
        let n = 3.0 * params.scaled(Self::BASE_PIXELS) as f64;
        WorkloadProfile::new(3.0 * n, 8.0 * n)
    }

    fn paper_factor(&self, params: &Params) -> f64 {
        (1.4e9 / 3.0) / params.scaled(Self::BASE_PIXELS) as f64
    }
}

/// 2× image downsampling by box filtering (Table I): each output pixel
/// averages a 2×2 input box via additions and a shift — both PIM-friendly.
/// The phase split (even/odd rows/columns) is prepared host-side and
/// charged as data movement, matching the paper's re-layout cost account.
#[derive(Debug, Default, Clone, Copy)]
pub struct ImageDownsample;

impl ImageDownsample {
    const BASE_SIDE: u64 = 512;

    fn side(params: &Params) -> usize {
        let s = params.scaled(Self::BASE_SIDE) as usize;
        s.max(2) & !1 // even
    }
}

impl Benchmark for ImageDownsample {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            name: "Image Downsampling",
            domain: Domain::ImageProcessing,
            sequential: true,
            random: false,
            exec: ExecType::Pim,
            paper_input: "1.4 x 10^9 24-bit .bmp",
        }
    }

    fn run(&self, dev: &mut Device, params: &Params) -> Result<RunOutcome, BenchError> {
        dev.reset_stats();
        let side = Self::side(params);
        let out_n = (side / 2) * (side / 2);
        let channels = synth_image(side * side, params.seed);

        let mut ok = true;
        for ch in &channels {
            // Host-side phase split into the four 2x2-box corners.
            let mut phases = [vec![], vec![], vec![], vec![]];
            for oy in 0..side / 2 {
                for ox in 0..side / 2 {
                    phases[0].push(ch[(2 * oy) * side + 2 * ox]);
                    phases[1].push(ch[(2 * oy) * side + 2 * ox + 1]);
                    phases[2].push(ch[(2 * oy + 1) * side + 2 * ox]);
                    phases[3].push(ch[(2 * oy + 1) * side + 2 * ox + 1]);
                }
            }
            let objs: Vec<_> = phases
                .iter()
                .map(|p| dev.alloc_vec(p))
                .collect::<Result<Vec<_>, _>>()?;
            let acc = objs[0];
            dev.add(acc, objs[1], acc)?;
            dev.add(acc, objs[2], acc)?;
            dev.add(acc, objs[3], acc)?;
            dev.shift_right(acc, 2, acc)?;
            let got = dev.to_vec::<i32>(acc)?;
            for o in objs {
                dev.free(o)?;
            }
            debug_assert_eq!(got.len(), out_n);
            for oy in 0..side / 2 {
                for ox in 0..side / 2 {
                    let s = ch[(2 * oy) * side + 2 * ox]
                        + ch[(2 * oy) * side + 2 * ox + 1]
                        + ch[(2 * oy + 1) * side + 2 * ox]
                        + ch[(2 * oy + 1) * side + 2 * ox + 1];
                    if got[oy * (side / 2) + ox] != s >> 2 {
                        ok = false;
                    }
                }
            }
        }
        finish(dev, ok, "downsampled pixel")
    }

    fn cpu_profile(&self, params: &Params) -> WorkloadProfile {
        let side = Self::side(params) as f64;
        let n = 3.0 * side * side;
        WorkloadProfile::new(n, 5.0 * n)
    }

    fn gpu_profile(&self, params: &Params) -> WorkloadProfile {
        let side = Self::side(params) as f64;
        let n = 3.0 * side * side;
        WorkloadProfile::new(n, 5.0 * n)
    }

    fn paper_factor(&self, params: &Params) -> f64 {
        let side = Self::side(params) as f64;
        (1.4e9 / 3.0) / (side * side)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimeval::PimTarget;

    fn small() -> Params {
        Params {
            scale: 1.0 / 32.0,
            seed: 11,
            ..Params::default()
        }
    }

    #[test]
    fn histogram_verifies_on_all_targets() {
        for t in PimTarget::ALL {
            let mut dev = Device::new(pimeval::DeviceConfig::new(t, 1)).unwrap();
            let out = Histogram.run(&mut dev, &small()).unwrap();
            assert!(out.verified, "{t}");
            assert!(out.stats.cmds.contains_key("redsum.int32"));
        }
    }

    #[test]
    fn brightness_saturates() {
        let mut dev = Device::bit_serial(1).unwrap();
        let out = Brightness.run(&mut dev, &small()).unwrap();
        assert!(out.verified);
        assert!(out.stats.cmds.contains_key("min_scalar.int32"));
        assert!(out.stats.cmds.contains_key("max_scalar.int32"));
    }

    #[test]
    fn downsample_verifies_on_all_targets() {
        for t in PimTarget::ALL {
            let mut dev = Device::new(pimeval::DeviceConfig::new(t, 1)).unwrap();
            let out = ImageDownsample.run(&mut dev, &small()).unwrap();
            assert!(out.verified, "{t}");
            // add + shift, the Fig. 8 signature of this benchmark.
            assert!(out.stats.categories[&pimeval::OpCategory::Add] >= 9);
            assert!(out.stats.categories[&pimeval::OpCategory::Shift] >= 3);
        }
    }
}
