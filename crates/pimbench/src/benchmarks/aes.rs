//! AES-256 ECB encryption/decryption on PIM (Table I, Cryptography).
//!
//! The PIM implementation is *bitsliced*: each of the 128 state bit
//! positions becomes one PIM object holding that bit for every block, so
//! all blocks encrypt in parallel and every AES step becomes element-wise
//! logic — exactly the "look-up table realized using logic gates" the
//! paper describes (§VIII):
//!
//! * **S-box**: a reduced ordered BDD is built from the S-box truth table
//!   (hash-consed Shannon expansion) and evaluated with one PIM `select`
//!   (2:1 mux) per node — the LUT-as-logic-gates realization.
//! * **MixColumns / InvMixColumns**: every GF(2⁸) constant multiply is a
//!   linear map over bits, so output planes are XOR chains of input
//!   planes (the matrix is derived from `gf_mul`, not hardcoded).
//! * **ShiftRows**: pure wiring (object relabeling, zero cost).
//! * **AddRoundKey**: the key is a controller constant, so key-bit XORs
//!   lower to conditional NOTs (`xor_scalar`).

// Index loops over the fixed 8-bit/16-byte AES state mirror FIPS-197
// notation; iterator rewrites obscure the bit/byte positions.
#![allow(clippy::needless_range_loop)]

use std::collections::HashMap;

use pim_baseline::WorkloadProfile;
use pimeval::{DataType, Device, ObjId};

use super::aes_ref;
use crate::common::{
    finish, BenchError, BenchSpec, Benchmark, Domain, ExecType, Params, RunOutcome, SplitMix64,
};

// ----------------------------------------------------------------------
// Reduced ordered BDD over 8 variables, built from a 256-entry table.
// ----------------------------------------------------------------------

const BDD_ZERO: u32 = 0;
const BDD_ONE: u32 = 1;

#[derive(Debug)]
struct Bdd {
    /// nodes[i] = (var, lo, hi); indices 0/1 are the terminals.
    nodes: Vec<(u8, u32, u32)>,
    unique: HashMap<(u8, u32, u32), u32>,
}

impl Bdd {
    fn new() -> Self {
        // Two placeholder terminal slots.
        Bdd {
            nodes: vec![(u8::MAX, 0, 0), (u8::MAX, 1, 1)],
            unique: HashMap::new(),
        }
    }

    fn mk(&mut self, var: u8, lo: u32, hi: u32) -> u32 {
        if lo == hi {
            return lo;
        }
        *self.unique.entry((var, lo, hi)).or_insert_with(|| {
            self.nodes.push((var, lo, hi));
            (self.nodes.len() - 1) as u32
        })
    }

    /// Builds the BDD of a boolean function given as a truth table of
    /// length 2^k over variables `k-1 .. 0` (variable = bit of the
    /// index).
    #[allow(clippy::wrong_self_convention)] // builder method, not a conversion
    fn from_table(&mut self, table: &[bool]) -> u32 {
        let k = table.len().trailing_zeros();
        debug_assert_eq!(table.len(), 1 << k);
        if k == 0 {
            return if table[0] { BDD_ONE } else { BDD_ZERO };
        }
        let half = table.len() / 2;
        let lo = self.from_table(&table[..half]); // top bit = 0
        let hi = self.from_table(&table[half..]); // top bit = 1
        self.mk((k - 1) as u8, lo, hi)
    }
}

/// The S-box (or inverse S-box) as shared BDD roots for its 8 output
/// bits.
struct SboxCircuit {
    bdd: Bdd,
    roots: [u32; 8],
}

impl SboxCircuit {
    fn build(f: impl Fn(u8) -> u8) -> Self {
        let mut bdd = Bdd::new();
        let mut roots = [BDD_ZERO; 8];
        for (bit, root) in roots.iter_mut().enumerate() {
            let table: Vec<bool> = (0..256).map(|x| (f(x as u8) >> bit) & 1 == 1).collect();
            *root = bdd.from_table(&table);
        }
        SboxCircuit { bdd, roots }
    }

    /// Internal (non-terminal) node count — the number of PIM `select`
    /// ops one byte substitution costs.
    #[cfg_attr(not(test), allow(dead_code))]
    fn gate_count(&self) -> usize {
        self.bdd.nodes.len() - 2
    }

    /// Evaluates the circuit on 8 input bit planes, returning 8 fresh
    /// output planes. `c0`/`c1` are shared constant-0/1 planes.
    fn eval(
        &self,
        dev: &mut Device,
        input: &[ObjId; 8],
        c0: ObjId,
        c1: ObjId,
    ) -> Result<[ObjId; 8], BenchError> {
        let mut memo: HashMap<u32, ObjId> = HashMap::new();
        // Iterative post-order evaluation (node indices are created
        // bottom-up, so ascending index order is a valid topological
        // order over the reachable set).
        let mut reachable: Vec<u32> = Vec::new();
        let mut stack: Vec<u32> = self.roots.iter().copied().filter(|&r| r > 1).collect();
        let mut seen: HashMap<u32, ()> = HashMap::new();
        while let Some(n) = stack.pop() {
            if n <= 1 || seen.contains_key(&n) {
                continue;
            }
            seen.insert(n, ());
            reachable.push(n);
            let (_, lo, hi) = self.bdd.nodes[n as usize];
            stack.push(lo);
            stack.push(hi);
        }
        reachable.sort_unstable();
        let resolve = |memo: &HashMap<u32, ObjId>, id: u32| -> ObjId {
            match id {
                BDD_ZERO => c0,
                BDD_ONE => c1,
                _ => memo[&id],
            }
        };
        for n in &reachable {
            let (var, lo, hi) = self.bdd.nodes[*n as usize];
            let (lo_obj, hi_obj) = (resolve(&memo, lo), resolve(&memo, hi));
            let out = dev.alloc_associated(input[0], DataType::Bool)?;
            dev.select(input[var as usize], hi_obj, lo_obj, out)?;
            memo.insert(*n, out);
        }
        // Copy roots out (a root may be shared, a terminal, or an input).
        let mut outputs = [input[0]; 8];
        for (bit, out) in outputs.iter_mut().enumerate() {
            let src = resolve(&memo, self.roots[bit]);
            let fresh = dev.alloc_associated(input[0], DataType::Bool)?;
            dev.copy_object(src, fresh)?;
            *out = fresh;
        }
        for (_, obj) in memo {
            dev.free(obj)?;
        }
        Ok(outputs)
    }
}

// ----------------------------------------------------------------------
// Plane-level AES steps
// ----------------------------------------------------------------------

type State = [[ObjId; 8]; 16];

/// Bit `i` of `m · x` as a function of the bits of `x` (GF(2⁸) constant
/// multiplication is linear over GF(2)).
fn mul_matrix(m: u8) -> [[bool; 8]; 8] {
    let mut mat = [[false; 8]; 8];
    for j in 0..8 {
        let col = aes_ref::gf_mul(m, 1 << j);
        for (i, row) in mat.iter_mut().enumerate() {
            row[j] = (col >> i) & 1 == 1;
        }
    }
    mat
}

fn add_round_key(dev: &mut Device, state: &mut State, rk: &[u8; 16]) -> Result<(), BenchError> {
    for byte in 0..16 {
        for bit in 0..8 {
            if (rk[byte] >> bit) & 1 == 1 {
                dev.xor_scalar(state[byte][bit], 1, state[byte][bit])?;
            }
        }
    }
    Ok(())
}

fn shift_rows(state: &mut State, inverse: bool) {
    let old = *state;
    for r in 0..4 {
        for c in 0..4 {
            if inverse {
                state[4 * ((c + r) % 4) + r] = old[4 * c + r];
            } else {
                state[4 * c + r] = old[4 * ((c + r) % 4) + r];
            }
        }
    }
}

/// Generic MixColumns with row coefficients `coeffs` (forward:
/// `[2, 3, 1, 1]`; inverse: `[14, 11, 13, 9]`).
fn mix_columns(
    dev: &mut Device,
    state: &mut State,
    coeffs: [u8; 4],
    c0: ObjId,
) -> Result<(), BenchError> {
    let mats: Vec<[[bool; 8]; 8]> = coeffs.iter().map(|&m| mul_matrix(m)).collect();
    for c in 0..4 {
        let col: Vec<[ObjId; 8]> = (0..4).map(|r| state[4 * c + r]).collect();
        for r in 0..4 {
            let mut new_planes = [c0; 8];
            for (i, plane) in new_planes.iter_mut().enumerate() {
                // Sources: bit j of byte (r+q)%4 when mats[q][i][j].
                let mut sources = Vec::new();
                for q in 0..4 {
                    for j in 0..8 {
                        if mats[q][i][j] {
                            sources.push(col[(r + q) % 4][j]);
                        }
                    }
                }
                let out = dev.alloc_associated(col[0][0], DataType::Bool)?;
                match sources.split_first() {
                    None => dev.broadcast(out, 0)?,
                    Some((&first, rest)) => {
                        dev.copy_object(first, out)?;
                        for &s in rest {
                            dev.xor(out, s, out)?;
                        }
                    }
                }
                *plane = out;
            }
            state[4 * c + r] = new_planes;
        }
        // Free the consumed column planes.
        for planes in col {
            for p in planes {
                dev.free(p)?;
            }
        }
    }
    Ok(())
}

fn sub_bytes(
    dev: &mut Device,
    state: &mut State,
    circuit: &SboxCircuit,
    c0: ObjId,
    c1: ObjId,
) -> Result<(), BenchError> {
    for byte in 0..16 {
        let outputs = circuit.eval(dev, &state[byte], c0, c1)?;
        for p in state[byte] {
            dev.free(p)?;
        }
        state[byte] = outputs;
    }
    Ok(())
}

// ----------------------------------------------------------------------
// The benchmark
// ----------------------------------------------------------------------

/// AES-256 ECB on PIM. `decrypt = false` is the "AES-Encryption" row of
/// Table I; `decrypt = true` the "AES-Decryption" row.
#[derive(Debug, Clone, Copy)]
pub struct Aes {
    /// Run the inverse cipher.
    pub decrypt: bool,
}

impl Aes {
    const BASE_BLOCKS: u64 = 192;

    fn blocks(params: &Params) -> usize {
        params.scaled(Self::BASE_BLOCKS) as usize
    }
}

impl Benchmark for Aes {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            name: if self.decrypt {
                "AES-Decryption"
            } else {
                "AES-Encryption"
            },
            domain: Domain::Cryptography,
            sequential: true,
            random: true,
            exec: ExecType::Pim,
            paper_input: "1,035,544,320 Bytes",
        }
    }

    fn run(&self, dev: &mut Device, params: &Params) -> Result<RunOutcome, BenchError> {
        dev.reset_stats();
        let n = Self::blocks(params);
        let mut rng = SplitMix64::new(params.seed);
        let key: [u8; 32] = std::array::from_fn(|_| rng.below(256) as u8);
        let rk = aes_ref::expand_key(&key);
        let plaintext: Vec<[u8; 16]> = (0..n)
            .map(|_| std::array::from_fn(|_| rng.below(256) as u8))
            .collect();
        let ciphertext: Vec<[u8; 16]> = plaintext
            .iter()
            .map(|b| aes_ref::encrypt_block(b, &rk))
            .collect();
        let (input, expected) = if self.decrypt {
            (&ciphertext, &plaintext)
        } else {
            (&plaintext, &ciphertext)
        };

        // Bitslice the input: plane[byte][bit][block].
        let proto = dev.alloc(n as u64, DataType::Bool)?;
        let c0 = dev.alloc_associated(proto, DataType::Bool)?;
        let c1 = dev.alloc_associated(proto, DataType::Bool)?;
        dev.broadcast(c0, 0)?;
        dev.broadcast(c1, 1)?;
        let mut state: State = [[proto; 8]; 16];
        for byte in 0..16 {
            for bit in 0..8 {
                let plane: Vec<bool> = input
                    .iter()
                    .map(|blk| (blk[byte] >> bit) & 1 == 1)
                    .collect();
                state[byte][bit] = dev.alloc_vec(&plane)?;
            }
        }
        dev.free(proto)?;

        let circuit = SboxCircuit::build(if self.decrypt {
            aes_ref::inv_sbox
        } else {
            aes_ref::sbox
        });

        if self.decrypt {
            add_round_key(dev, &mut state, &rk[14])?;
            shift_rows(&mut state, true);
            sub_bytes(dev, &mut state, &circuit, c0, c1)?;
            for round in (1..14).rev() {
                add_round_key(dev, &mut state, &rk[round])?;
                mix_columns(dev, &mut state, [14, 11, 13, 9], c0)?;
                shift_rows(&mut state, true);
                sub_bytes(dev, &mut state, &circuit, c0, c1)?;
            }
            add_round_key(dev, &mut state, &rk[0])?;
        } else {
            add_round_key(dev, &mut state, &rk[0])?;
            for round in 1..14 {
                sub_bytes(dev, &mut state, &circuit, c0, c1)?;
                shift_rows(&mut state, false);
                mix_columns(dev, &mut state, [2, 3, 1, 1], c0)?;
                add_round_key(dev, &mut state, &rk[round])?;
            }
            sub_bytes(dev, &mut state, &circuit, c0, c1)?;
            shift_rows(&mut state, false);
            add_round_key(dev, &mut state, &rk[14])?;
        }

        // Un-bitslice and verify.
        let mut ok = true;
        let mut out_blocks = vec![[0u8; 16]; n];
        for byte in 0..16 {
            for bit in 0..8 {
                let plane = dev.to_vec::<bool>(state[byte][bit])?;
                for (blk, &v) in out_blocks.iter_mut().zip(&plane) {
                    blk[byte] |= u8::from(v) << bit;
                }
                dev.free(state[byte][bit])?;
            }
        }
        dev.free(c0)?;
        dev.free(c1)?;
        for (got, exp) in out_blocks.iter().zip(expected) {
            ok &= got == exp;
        }
        finish(dev, ok, "AES block output")
    }

    fn cpu_profile(&self, params: &Params) -> WorkloadProfile {
        let bytes = Self::blocks(params) as f64 * 16.0;
        // OpenSSL with AES-NI: ~1.3 cycles/byte on one core; scale to
        // equivalent scalar ops so the roofline lands near measured
        // AES-NI throughput rather than at a naive software-AES cost.
        WorkloadProfile::new(40.0 * bytes, 2.0 * bytes).with_efficiency(0.5)
    }

    fn gpu_profile(&self, params: &Params) -> WorkloadProfile {
        let bytes = Self::blocks(params) as f64 * 16.0;
        // GPU table-based AES sustains hundreds of GB/s.
        WorkloadProfile::new(60.0 * bytes, 2.0 * bytes).with_efficiency(0.7)
    }

    fn paper_factor(&self, params: &Params) -> f64 {
        (1_035_544_320.0 / 16.0) / Self::blocks(params) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_circuit_is_compact() {
        let c = SboxCircuit::build(aes_ref::sbox);
        // The AES S-box ROBDD is a few hundred shared nodes.
        assert!(
            c.gate_count() > 50 && c.gate_count() < 1200,
            "{}",
            c.gate_count()
        );
    }

    #[test]
    fn bdd_from_table_reduces_constants() {
        let mut bdd = Bdd::new();
        let always = vec![true; 256];
        assert_eq!(bdd.from_table(&always), BDD_ONE);
        let never = vec![false; 256];
        assert_eq!(bdd.from_table(&never), BDD_ZERO);
        // x0: table[i] = bit 0 of i.
        let x0: Vec<bool> = (0..256).map(|i| i & 1 == 1).collect();
        let root = bdd.from_table(&x0);
        let (var, lo, hi) = bdd.nodes[root as usize];
        assert_eq!((var, lo, hi), (0, BDD_ZERO, BDD_ONE));
    }

    #[test]
    fn mul_matrix_matches_gf_mul() {
        for m in [2u8, 3, 9, 11, 13, 14] {
            let mat = mul_matrix(m);
            for x in 0..=255u8 {
                let mut y = 0u8;
                for i in 0..8 {
                    let mut bit = false;
                    for j in 0..8 {
                        bit ^= mat[i][j] && (x >> j) & 1 == 1;
                    }
                    y |= (bit as u8) << i;
                }
                assert_eq!(y, aes_ref::gf_mul(m, x), "m={m} x={x}");
            }
        }
    }

    #[test]
    fn aes_encrypt_verifies_on_fulcrum() {
        let mut dev = Device::fulcrum(1).unwrap();
        let out = Aes { decrypt: false }
            .run(
                &mut dev,
                &Params {
                    scale: 1.0 / 16.0,
                    seed: 12,
                    ..Params::default()
                },
            )
            .unwrap();
        assert!(out.verified);
        // Logic-gate heavy mix: xor + bit (select) dominate.
        assert!(out.stats.categories[&pimeval::OpCategory::Xor] > 0);
        assert!(out.stats.categories[&pimeval::OpCategory::Bit] > 0);
    }

    #[test]
    fn aes_decrypt_verifies_on_bitserial() {
        let mut dev = Device::bit_serial(1).unwrap();
        let out = Aes { decrypt: true }
            .run(
                &mut dev,
                &Params {
                    scale: 1.0 / 16.0,
                    seed: 13,
                    ..Params::default()
                },
            )
            .unwrap();
        assert!(out.verified);
    }
}
