//! The PIMbench benchmark implementations, one module per Table I group.

mod aes;
pub mod aes_ref;
mod extensions;
mod filter;
mod image;
mod kmeans;
mod learn;
mod linalg;
mod radix;
mod triangle;
mod vgg;

pub use aes::Aes;
pub use extensions::{PrefixSum, StringMatch, TransitiveClosure};
pub use filter::FilterByKey;
pub use image::{Brightness, Histogram, ImageDownsample};
pub use kmeans::KMeans;
pub use learn::{Knn, LinearRegression};
pub use linalg::{Axpy, Gemm, Gemv, VectorAdd};
pub use radix::RadixSort;
pub use triangle::TriangleCount;
pub use vgg::{Vgg, VggVariant};
