//! Supervised-learning benchmarks: K-nearest neighbors and 2-D linear
//! regression.

use pim_baseline::WorkloadProfile;
use pimeval::{DataType, Device};

use crate::common::{
    charge_host, finish, BenchError, BenchSpec, Benchmark, Domain, ExecType, Params, RunOutcome,
    SplitMix64,
};

/// KNN batched inference (Table I): Manhattan distances on PIM, sort +
/// classify on the host (PIM lacks shuffle support, §VIII).
#[derive(Debug, Default, Clone, Copy)]
pub struct Knn;

impl Knn {
    const BASE_REF: u64 = 1 << 14;
    const QUERIES: usize = 16;
    const K: usize = 5;
    const CLASSES: i64 = 4;
}

impl Benchmark for Knn {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            name: "KNN",
            domain: Domain::SupervisedLearning,
            sequential: true,
            random: true,
            exec: ExecType::PimHost,
            paper_input: "6,710,886 2D data points",
        }
    }

    fn run(&self, dev: &mut Device, params: &Params) -> Result<RunOutcome, BenchError> {
        dev.reset_stats();
        let n = params.scaled(Self::BASE_REF) as usize;
        let mut rng = SplitMix64::new(params.seed);
        let xs = rng.i32_vec(n, -10_000, 10_000);
        let ys = rng.i32_vec(n, -10_000, 10_000);
        let labels: Vec<i64> = (0..n)
            .map(|_| rng.below(Self::CLASSES as u64) as i64)
            .collect();
        let queries: Vec<(i32, i32)> = (0..Self::QUERIES)
            .map(|_| {
                let mut r = || (rng.below(20_000) as i64 - 10_000) as i32;
                (r(), r())
            })
            .collect();

        let ox = dev.alloc_vec(&xs)?;
        let oy = dev.alloc_vec(&ys)?;
        let dx = dev.alloc_associated(ox, DataType::Int32)?;
        let dy = dev.alloc_associated(ox, DataType::Int32)?;

        let mut ok = true;
        for &(qx, qy) in &queries {
            // PIM: Manhattan distance |x-qx| + |y-qy|.
            dev.sub_scalar(ox, qx as i64, dx)?;
            dev.abs(dx, dx)?;
            dev.sub_scalar(oy, qy as i64, dy)?;
            dev.abs(dy, dy)?;
            dev.add(dx, dy, dx)?;
            let dist = dev.to_vec::<i32>(dx)?;

            // Host: partial sort for the top-k and majority vote.
            let mut idx: Vec<usize> = (0..n).collect();
            idx.sort_by_key(|&i| (dist[i], i));
            let vote = |ids: &[usize]| -> i64 {
                let mut counts = [0usize; 8];
                for &i in ids {
                    counts[labels[i] as usize] += 1;
                }
                counts
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, c)| **c)
                    .unwrap()
                    .0 as i64
            };
            let got = vote(&idx[..Self::K]);

            // Reference: full recomputation on the host.
            let mut ridx: Vec<usize> = (0..n).collect();
            ridx.sort_by_key(|&i| ((xs[i] - qx).abs() + (ys[i] - qy).abs(), i));
            ok &= got == vote(&ridx[..Self::K]);
        }
        // Host sorting/classification phase (dominates, Fig. 7).
        let total = (Self::QUERIES * n) as f64;
        charge_host(
            dev,
            &WorkloadProfile::new(total * 8.0, total * 8.0).with_efficiency(0.4),
        );

        dev.free(dx)?;
        dev.free(dy)?;
        dev.free(ox)?;
        dev.free(oy)?;
        finish(dev, ok, "knn classification")
    }

    fn cpu_profile(&self, params: &Params) -> WorkloadProfile {
        let n = params.scaled(Self::BASE_REF) as f64 * Self::QUERIES as f64;
        WorkloadProfile::new(15.0 * n, 12.0 * n).with_efficiency(0.5)
    }

    fn gpu_profile(&self, params: &Params) -> WorkloadProfile {
        let n = params.scaled(Self::BASE_REF) as f64 * Self::QUERIES as f64;
        WorkloadProfile::new(15.0 * n, 12.0 * n).with_efficiency(0.6)
    }

    fn paper_factor(&self, params: &Params) -> f64 {
        6_710_886.0 / params.scaled(Self::BASE_REF) as f64
    }
}

/// 2-D linear regression by least squares (Table I; modeled after
/// Phoenix): PIM computes Σx, Σy, Σxy, Σx²; the host solves the 2×2
/// system.
#[derive(Debug, Default, Clone, Copy)]
pub struct LinearRegression;

impl LinearRegression {
    const BASE_N: u64 = 1 << 20;
}

impl Benchmark for LinearRegression {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            name: "Linear Regression",
            domain: Domain::SupervisedLearning,
            sequential: true,
            random: false,
            exec: ExecType::Pim,
            paper_input: "1,500,000,000 2D points",
        }
    }

    fn run(&self, dev: &mut Device, params: &Params) -> Result<RunOutcome, BenchError> {
        dev.reset_stats();
        let n = params.scaled(Self::BASE_N) as usize;
        let mut rng = SplitMix64::new(params.seed);
        // y ≈ 3x + 17 with noise; keep magnitudes small so x·y and x²
        // stay within i32.
        let xs = rng.i32_vec(n, -1000, 1000);
        let ys: Vec<i32> = xs
            .iter()
            .map(|&x| 3 * x + 17 + rng.i32_vec(1, -50, 50)[0])
            .collect();

        let ox = dev.alloc_vec(&xs)?;
        let oy = dev.alloc_vec(&ys)?;
        let tmp = dev.alloc_associated(ox, DataType::Int32)?;

        let sum_x = dev.red_sum(ox)?;
        let sum_y = dev.red_sum(oy)?;
        dev.mul(ox, oy, tmp)?;
        let sum_xy = dev.red_sum(tmp)?;
        dev.mul(ox, ox, tmp)?;
        let sum_xx = dev.red_sum(tmp)?;

        dev.free(tmp)?;
        dev.free(ox)?;
        dev.free(oy)?;

        // Host: closed-form slope/intercept (negligible, but charged).
        charge_host(dev, &WorkloadProfile::new(10.0, 64.0));
        let nn = n as i128;
        let denom = nn * sum_xx - sum_x * sum_x;
        let slope_num = nn * sum_xy - sum_x * sum_y;
        let slope = slope_num as f64 / denom as f64;

        // Reference sums.
        let r_sx: i128 = xs.iter().map(|&v| v as i128).sum();
        let r_sy: i128 = ys.iter().map(|&v| v as i128).sum();
        let r_sxy: i128 = xs
            .iter()
            .zip(&ys)
            .map(|(&x, &y)| (x as i128) * (y as i128))
            .sum();
        let r_sxx: i128 = xs.iter().map(|&x| (x as i128) * (x as i128)).sum();
        let sums_ok = sum_x == r_sx && sum_y == r_sy && sum_xy == r_sxy && sum_xx == r_sxx;
        let slope_ok = (slope - 3.0).abs() < 0.1;
        finish(dev, sums_ok && slope_ok, "regression sums / slope")
    }

    fn cpu_profile(&self, params: &Params) -> WorkloadProfile {
        let n = params.scaled(Self::BASE_N) as f64;
        WorkloadProfile::new(6.0 * n, 8.0 * n)
    }

    fn gpu_profile(&self, params: &Params) -> WorkloadProfile {
        let n = params.scaled(Self::BASE_N) as f64;
        WorkloadProfile::new(6.0 * n, 8.0 * n)
    }

    fn paper_factor(&self, params: &Params) -> f64 {
        1_500_000_000.0 / params.scaled(Self::BASE_N) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimeval::PimTarget;

    #[test]
    fn knn_verifies_on_all_targets() {
        for t in PimTarget::ALL {
            let mut dev = Device::new(pimeval::DeviceConfig::new(t, 1)).unwrap();
            let out = Knn
                .run(
                    &mut dev,
                    &Params {
                        scale: 1.0 / 16.0,
                        seed: 2,
                        ..Params::default()
                    },
                )
                .unwrap();
            assert!(out.verified, "{t}");
            assert!(out.stats.cmds.contains_key("abs.int32"));
            assert!(out.stats.host_time_ms > 0.0);
        }
    }

    #[test]
    fn linreg_recovers_slope() {
        for t in PimTarget::ALL {
            let mut dev = Device::new(pimeval::DeviceConfig::new(t, 1)).unwrap();
            let out = LinearRegression
                .run(
                    &mut dev,
                    &Params {
                        scale: 1.0 / 32.0,
                        seed: 4,
                        ..Params::default()
                    },
                )
                .unwrap();
            assert!(out.verified, "{t}");
            // Reduction-heavy mix (Fig. 8).
            assert_eq!(out.stats.categories[&pimeval::OpCategory::Reduction], 4);
            assert_eq!(out.stats.categories[&pimeval::OpCategory::Mul], 2);
        }
    }
}
