//! VGG-13/16/19 inference on PIM (Table I, Neural Network).
//!
//! The network is decomposed into per-layer kernels exactly as the paper
//! describes (§VIII): convolutions run on PIM as weight-stationary
//! scalar-multiply/accumulate sweeps over whole feature maps (the
//! strided shifted-map preparation is host work charged as data
//! movement), ReLU is `max_scalar`, max-pooling is an element-wise `max`
//! tree over phase-split maps, dense layers are mul + reduction GEMVs,
//! and softmax plus final aggregation run on the host.
//!
//! Scaling substitutions (DESIGN.md #6): 32×32 inputs, channel counts
//! divided by 16, and quantized integer arithmetic (weights in [-2, 2],
//! activations right-shifted 4 bits after each conv) — the layer
//! *structure* (2-2-2-2-2 / 2-2-3-3-3 / 2-2-4-4-4 conv blocks + 3 dense
//! layers) is exactly VGG-13/16/19.

use pim_baseline::WorkloadProfile;
use pimeval::{DataType, Device, ObjId};

use crate::common::{
    charge_host, finish, BenchError, BenchSpec, Benchmark, Domain, ExecType, Params, RunOutcome,
    SplitMix64,
};

/// Which VGG variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VggVariant {
    /// VGG-13: conv blocks of 2-2-2-2-2.
    Vgg13,
    /// VGG-16: conv blocks of 2-2-3-3-3.
    Vgg16,
    /// VGG-19: conv blocks of 2-2-4-4-4.
    Vgg19,
}

impl VggVariant {
    fn name(&self) -> &'static str {
        match self {
            VggVariant::Vgg13 => "VGG-13",
            VggVariant::Vgg16 => "VGG-16",
            VggVariant::Vgg19 => "VGG-19",
        }
    }

    /// (output channels, conv layers) per block, channel counts /16.
    fn blocks(&self) -> [(usize, usize); 5] {
        let convs = match self {
            VggVariant::Vgg13 => [2, 2, 2, 2, 2],
            VggVariant::Vgg16 => [2, 2, 3, 3, 3],
            VggVariant::Vgg19 => [2, 2, 4, 4, 4],
        };
        [
            (4, convs[0]),
            (8, convs[1]),
            (16, convs[2]),
            (32, convs[3]),
            (32, convs[4]),
        ]
    }
}

const SIDE: usize = 32;
const BATCH: usize = 2;
const FC_HIDDEN: usize = 64;
const CLASSES: usize = 10;
const SHIFT: u32 = 4;
/// Saturation bound after each conv layer — keeps every downstream
/// product inside `i32` so host and device arithmetic agree exactly.
const CLAMP: i32 = 65_535;

/// Feature maps: one object per channel, `BATCH × side × side` elements.
struct Maps {
    channels: Vec<ObjId>,
    side: usize,
}

/// Host-side mirror used for verification.
type HostMaps = Vec<Vec<i32>>;

/// Weights for one network instantiation.
struct Weights {
    /// conv[layer][cout][cin][ky*3+kx]
    conv: Vec<Vec<Vec<[i32; 9]>>>,
    /// fc[layer][out][in]
    fc: Vec<Vec<Vec<i32>>>,
}

fn gen_weights(variant: VggVariant, rng: &mut SplitMix64) -> Weights {
    let mut conv = Vec::new();
    let mut cin = 3;
    for (cout, n_convs) in variant.blocks() {
        for _ in 0..n_convs {
            let layer: Vec<Vec<[i32; 9]>> = (0..cout)
                .map(|_| {
                    (0..cin)
                        .map(|_| std::array::from_fn(|_| rng.below(5) as i32 - 2))
                        .collect()
                })
                .collect();
            conv.push(layer);
            cin = cout;
        }
    }
    let dims = [
        (cin, FC_HIDDEN),
        (FC_HIDDEN, FC_HIDDEN),
        (FC_HIDDEN, CLASSES),
    ];
    let fc = dims
        .iter()
        .map(|&(i, o)| (0..o).map(|_| rng.i32_vec(i, -2, 3)).collect())
        .collect();
    Weights { conv, fc }
}

/// Host reference: shifted zero-padded map (per batch image).
fn host_shift(map: &[i32], side: usize, dy: i32, dx: i32) -> Vec<i32> {
    let mut out = vec![0i32; map.len()];
    let per = side * side;
    for (b, img) in map.chunks(per).enumerate() {
        for y in 0..side as i32 {
            for x in 0..side as i32 {
                let (sy, sx) = (y + dy, x + dx);
                if (0..side as i32).contains(&sy) && (0..side as i32).contains(&sx) {
                    out[b * per + (y as usize) * side + x as usize] =
                        img[(sy as usize) * side + sx as usize];
                }
            }
        }
    }
    out
}

fn host_conv_layer(input: &HostMaps, side: usize, weights: &[Vec<[i32; 9]>]) -> HostMaps {
    weights
        .iter()
        .map(|per_cin| {
            let mut acc = vec![0i32; input[0].len()];
            for (cin, k) in per_cin.iter().enumerate() {
                for (ki, &w) in k.iter().enumerate() {
                    if w == 0 {
                        continue;
                    }
                    let (dy, dx) = ((ki / 3) as i32 - 1, (ki % 3) as i32 - 1);
                    let shifted = host_shift(&input[cin], side, dy, dx);
                    for (a, s) in acc.iter_mut().zip(&shifted) {
                        *a = a.wrapping_add(s.wrapping_mul(w));
                    }
                }
            }
            acc.iter()
                .map(|&v| ((v.max(0)) >> SHIFT).min(CLAMP))
                .collect()
        })
        .collect()
}

fn host_pool(input: &HostMaps, side: usize) -> HostMaps {
    let half = side / 2;
    let per = side * side;
    input
        .iter()
        .map(|map| {
            let mut out = Vec::with_capacity(map.len() / 4);
            for b in 0..BATCH {
                for y in 0..half {
                    for x in 0..half {
                        let i = b * per + 2 * y * side + 2 * x;
                        out.push(
                            map[i]
                                .max(map[i + 1])
                                .max(map[i + side])
                                .max(map[i + side + 1]),
                        );
                    }
                }
            }
            out
        })
        .collect()
}

/// PIM conv layer: host prepares shifted maps (data movement), PIM does
/// all multiply-accumulates, ReLU and rescale.
fn pim_conv_layer(
    dev: &mut Device,
    input: &Maps,
    host_input: &HostMaps,
    weights: &[Vec<[i32; 9]>],
) -> Result<Maps, BenchError> {
    let side = input.side;
    // Shifted input maps, uploaded once per (cin, ky, kx).
    let mut shifted: Vec<Vec<ObjId>> = Vec::with_capacity(host_input.len());
    for map in host_input {
        let mut per_k = Vec::with_capacity(9);
        for ki in 0..9 {
            let (dy, dx) = ((ki / 3) - 1, (ki % 3) - 1);
            per_k.push(dev.alloc_vec(&host_shift(map, side, dy, dx))?);
        }
        shifted.push(per_k);
    }
    let mut out_channels = Vec::with_capacity(weights.len());
    let tmp = dev.alloc_associated(input.channels[0], DataType::Int32)?;
    for per_cin in weights {
        let acc = dev.alloc_associated(input.channels[0], DataType::Int32)?;
        dev.broadcast(acc, 0)?;
        for (cin, k) in per_cin.iter().enumerate() {
            for (ki, &w) in k.iter().enumerate() {
                if w == 0 {
                    continue;
                }
                dev.mul_scalar(shifted[cin][ki], w as i64, tmp)?;
                dev.add(tmp, acc, acc)?;
            }
        }
        dev.max_scalar(acc, 0, acc)?; // ReLU
        dev.shift_right(acc, SHIFT, acc)?; // quantized rescale
        dev.min_scalar(acc, CLAMP as i64, acc)?; // saturation
        out_channels.push(acc);
    }
    dev.free(tmp)?;
    for per_k in shifted {
        for o in per_k {
            dev.free(o)?;
        }
    }
    for &c in &input.channels {
        dev.free(c)?;
    }
    Ok(Maps {
        channels: out_channels,
        side,
    })
}

/// PIM max-pool: four phase maps prepared host-side, max tree on PIM.
fn pim_pool(dev: &mut Device, input: &Maps, host_input: &HostMaps) -> Result<Maps, BenchError> {
    let side = input.side;
    let half = side / 2;
    let per = side * side;
    let mut out_channels = Vec::with_capacity(input.channels.len());
    for (ch, map) in input.channels.iter().zip(host_input) {
        let mut phases: [Vec<i32>; 4] = Default::default();
        for b in 0..BATCH {
            for y in 0..half {
                for x in 0..half {
                    let i = b * per + 2 * y * side + 2 * x;
                    phases[0].push(map[i]);
                    phases[1].push(map[i + 1]);
                    phases[2].push(map[i + side]);
                    phases[3].push(map[i + side + 1]);
                }
            }
        }
        let objs: Vec<ObjId> = phases
            .iter()
            .map(|p| dev.alloc_vec(p))
            .collect::<Result<Vec<_>, _>>()?;
        dev.max(objs[0], objs[1], objs[0])?;
        dev.max(objs[0], objs[2], objs[0])?;
        dev.max(objs[0], objs[3], objs[0])?;
        for &o in &objs[1..] {
            dev.free(o)?;
        }
        out_channels.push(objs[0]);
        dev.free(*ch)?;
    }
    Ok(Maps {
        channels: out_channels,
        side: half,
    })
}

/// A VGG variant benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Vgg {
    /// Which depth to run.
    pub variant: VggVariant,
}

impl Benchmark for Vgg {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            name: self.variant.name(),
            domain: Domain::NeuralNetwork,
            sequential: true,
            random: false,
            exec: ExecType::PimHost,
            paper_input: "64, 224x224x3 image matrix and 3x3x64 weight matrix",
        }
    }

    fn run(&self, dev: &mut Device, params: &Params) -> Result<RunOutcome, BenchError> {
        dev.reset_stats();
        let mut rng = SplitMix64::new(params.seed);
        let weights = gen_weights(self.variant, &mut rng);
        let n0 = BATCH * SIDE * SIDE;
        let mut host_maps: HostMaps = (0..3).map(|_| rng.i32_vec(n0, 0, 16)).collect();
        let mut maps = Maps {
            channels: host_maps
                .iter()
                .map(|m| dev.alloc_vec(m))
                .collect::<Result<Vec<_>, _>>()?,
            side: SIDE,
        };

        // Conv blocks with verification of every layer output.
        let mut layer_idx = 0;
        let mut ok = true;
        let mut side = SIDE;
        for (_cout, n_convs) in self.variant.blocks() {
            for _ in 0..n_convs {
                maps = pim_conv_layer(dev, &maps, &host_maps, &weights.conv[layer_idx])?;
                host_maps = host_conv_layer(&host_maps, side, &weights.conv[layer_idx]);
                layer_idx += 1;
            }
            let pooled = pim_pool(dev, &maps, &host_maps)?;
            host_maps = host_pool(&host_maps, side);
            maps = pooled;
            side /= 2;
        }
        // Flattened features: side is now 1, one value per channel/image.
        let feat_per_img: Vec<Vec<i32>> = (0..BATCH)
            .map(|b| host_maps.iter().map(|m| m[b]).collect())
            .collect();
        // Spot-check the device against the host mirror.
        for (c, &obj) in maps.channels.iter().enumerate() {
            let v = dev.to_vec::<i32>(obj)?;
            ok &= v == host_maps[c];
        }
        for &c in &maps.channels {
            dev.free(c)?;
        }

        // Dense layers: mul + reduction GEMV per output neuron, batched
        // per image.
        let mut logits = Vec::with_capacity(BATCH);
        for feat in &feat_per_img {
            let mut x = feat.clone();
            for (li, layer) in weights.fc.iter().enumerate() {
                let ox = dev.alloc_vec(&x)?;
                let tmp = dev.alloc_associated(ox, DataType::Int32)?;
                let mut next = Vec::with_capacity(layer.len());
                for w_row in layer {
                    let ow = dev.alloc_vec(w_row)?;
                    dev.mul(ow, ox, tmp)?;
                    let dot = dev.red_sum(tmp)? as i32;
                    dev.free(ow)?;
                    next.push(if li + 1 < weights.fc.len() {
                        dot.max(0) >> SHIFT
                    } else {
                        dot
                    });
                }
                dev.free(tmp)?;
                dev.free(ox)?;
                x = next;
            }
            logits.push(x);
        }
        // Host: softmax + argmax (floating point, PIM-unsupported).
        charge_host(
            dev,
            &WorkloadProfile::new((BATCH * CLASSES * 8) as f64, 4096.0),
        );
        for (b, l) in logits.iter().enumerate() {
            // Reference dense path.
            let mut x = feat_per_img[b].clone();
            for (li, layer) in weights.fc.iter().enumerate() {
                x = layer
                    .iter()
                    .map(|row| {
                        let dot: i64 = row.iter().zip(&x).map(|(&w, &v)| w as i64 * v as i64).sum();
                        if li + 1 < weights.fc.len() {
                            ((dot.max(0)) >> SHIFT) as i32
                        } else {
                            dot as i32
                        }
                    })
                    .collect();
            }
            ok &= *l == x;
        }
        finish(dev, ok, "VGG feature maps / logits")
    }

    fn cpu_profile(&self, params: &Params) -> WorkloadProfile {
        let _ = params;
        let macs = self.total_macs();
        // PyTorch CPU inference.
        WorkloadProfile::new(2.0 * macs, 0.5 * macs).with_efficiency(0.6)
    }

    fn gpu_profile(&self, params: &Params) -> WorkloadProfile {
        let _ = params;
        let macs = self.total_macs();
        WorkloadProfile::new(2.0 * macs, 0.1 * macs).with_efficiency(0.7)
    }

    fn paper_factor(&self, params: &Params) -> f64 {
        let _ = params;
        self.paper_macs() / self.total_macs()
    }

    fn serial_factor(&self, params: &Params) -> f64 {
        // The input-channel x kernel-position sweep of each conv is the
        // serial dimension; spatial extent, batch, and output channels
        // (independent accumulator maps) are all data-parallel. Channel
        // counts are scaled by 16 (DESIGN.md #6).
        let _ = params;
        16.0
    }
}

impl Vgg {
    /// MACs of the paper's configuration: 64 images of 224x224x3 with
    /// the full VGG channel widths (64-128-256-512-512) and 4096-wide
    /// dense layers.
    fn paper_macs(&self) -> f64 {
        let convs: [usize; 5] = match self.variant {
            VggVariant::Vgg13 => [2, 2, 2, 2, 2],
            VggVariant::Vgg16 => [2, 2, 3, 3, 3],
            VggVariant::Vgg19 => [2, 2, 4, 4, 4],
        };
        let channels = [64usize, 128, 256, 512, 512];
        let (batch, mut side, mut cin) = (64usize, 224usize, 3usize);
        let mut macs = 0f64;
        for (b, &cout) in channels.iter().enumerate() {
            for _ in 0..convs[b] {
                macs += (batch * side * side * 9 * cin * cout) as f64;
                cin = cout;
            }
            side /= 2;
        }
        let feat = cin * side * side; // 512 * 7 * 7
        macs + (batch * (feat * 4096 + 4096 * 4096 + 4096 * 1000)) as f64
    }

    fn total_macs(&self) -> f64 {
        let mut macs = 0f64;
        let mut cin = 3usize;
        let mut side = SIDE;
        for (cout, n_convs) in self.variant.blocks() {
            for _ in 0..n_convs {
                macs += (BATCH * side * side * 9 * cin * cout) as f64;
                cin = cout;
            }
            side /= 2;
        }
        macs + (BATCH * (cin * FC_HIDDEN + FC_HIDDEN * FC_HIDDEN + FC_HIDDEN * CLASSES)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_depths() {
        assert_eq!(
            VggVariant::Vgg13
                .blocks()
                .iter()
                .map(|b| b.1)
                .sum::<usize>(),
            10
        );
        assert_eq!(
            VggVariant::Vgg16
                .blocks()
                .iter()
                .map(|b| b.1)
                .sum::<usize>(),
            13
        );
        assert_eq!(
            VggVariant::Vgg19
                .blocks()
                .iter()
                .map(|b| b.1)
                .sum::<usize>(),
            16
        );
    }

    #[test]
    fn deeper_variants_cost_more_macs() {
        let m13 = Vgg {
            variant: VggVariant::Vgg13,
        }
        .total_macs();
        let m16 = Vgg {
            variant: VggVariant::Vgg16,
        }
        .total_macs();
        let m19 = Vgg {
            variant: VggVariant::Vgg19,
        }
        .total_macs();
        assert!(m13 < m16 && m16 < m19);
    }

    #[test]
    fn host_shift_zero_pads() {
        // 2x2 single image, BATCH copies stacked.
        let side = 2;
        let map: Vec<i32> = (0..(BATCH * 4) as i32).collect();
        let s = host_shift(&map, side, 1, 0); // pull from y+1
        assert_eq!(s[0], map[2]);
        assert_eq!(s[2], 0, "bottom row becomes zero");
    }

    #[test]
    fn vgg13_verifies_on_fulcrum() {
        let mut dev = Device::fulcrum(1).unwrap();
        let out = Vgg {
            variant: VggVariant::Vgg13,
        }
        .run(&mut dev, &Params::default())
        .unwrap();
        assert!(out.verified);
        assert!(out.stats.host_time_ms > 0.0);
        assert!(
            out.stats.categories[&pimeval::OpCategory::Max] > 0,
            "ReLU/pool maxes"
        );
    }
}
