//! K-means clustering (Table I; modeled after Phoenix).
//!
//! The assignment phase's random access pattern is avoided with the
//! paper's bitmask trick (§VIII): per-centroid Manhattan distances are
//! computed on PIM, a running minimum + select keeps the best centroid
//! index, and per-centroid bitmasks (equality on the index vector) gate
//! masked reductions that produce the new centroid sums.

use pim_baseline::WorkloadProfile;
use pimeval::{DataType, Device};

use crate::common::{
    charge_host, finish, BenchError, BenchSpec, Benchmark, Domain, ExecType, Params, RunOutcome,
    SplitMix64,
};

/// K-means with k = 20 (paper's k) and a fixed iteration count.
#[derive(Debug, Default, Clone, Copy)]
pub struct KMeans;

impl KMeans {
    const BASE_N: u64 = 1 << 14;
    const K: usize = 20;
    const ITERS: usize = 4;
}

/// One host-side reference iteration with the same integer semantics as
/// the PIM mapping (strict-< keeps the lower centroid index on ties).
fn reference_assign(xs: &[i32], ys: &[i32], cx: &[i32], cy: &[i32]) -> Vec<usize> {
    xs.iter()
        .zip(ys)
        .map(|(&x, &y)| {
            let mut best = 0usize;
            let mut best_d = i32::MAX;
            for j in 0..cx.len() {
                let d = (x - cx[j]).abs() + (y - cy[j]).abs();
                if d < best_d {
                    best_d = d;
                    best = j;
                }
            }
            best
        })
        .collect()
}

impl Benchmark for KMeans {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            name: "K-means",
            domain: Domain::UnsupervisedLearning,
            sequential: true,
            random: true,
            exec: ExecType::Pim,
            paper_input: "67,108,864 2D data, k = 20",
        }
    }

    fn run(&self, dev: &mut Device, params: &Params) -> Result<RunOutcome, BenchError> {
        dev.reset_stats();
        let n = params.scaled(Self::BASE_N) as usize;
        let mut rng = SplitMix64::new(params.seed);
        let xs = rng.i32_vec(n, -10_000, 10_000);
        let ys = rng.i32_vec(n, -10_000, 10_000);
        let mut cx: Vec<i32> = (0..Self::K).map(|j| xs[j * n / Self::K]).collect();
        let mut cy: Vec<i32> = (0..Self::K).map(|j| ys[j * n / Self::K]).collect();
        let mut rcx = cx.clone();
        let mut rcy = cy.clone();

        let ox = dev.alloc_vec(&xs)?;
        let oy = dev.alloc_vec(&ys)?;
        let dist = dev.alloc_associated(ox, DataType::Int32)?;
        let tmp = dev.alloc_associated(ox, DataType::Int32)?;
        let best_d = dev.alloc_associated(ox, DataType::Int32)?;
        let best_i = dev.alloc_associated(ox, DataType::Int32)?;
        let mask = dev.alloc_associated(ox, DataType::Int32)?;
        let jvec = dev.alloc_associated(ox, DataType::Int32)?;
        let zero = dev.alloc_associated(ox, DataType::Int32)?;
        dev.broadcast(zero, 0)?;

        let mut ok = true;
        for _iter in 0..Self::ITERS {
            // Assignment phase.
            dev.broadcast(best_d, i32::MAX as i64)?;
            dev.broadcast(best_i, 0)?;
            for j in 0..Self::K {
                if params.stream {
                    // Same command sequence, recorded and flushed as one
                    // batch. `mask` is read by both selects, so the
                    // lt+select pair must NOT fuse — the stream's
                    // lifetime analysis keeps the mask materialized.
                    let mut stream = dev.stream();
                    stream.sub_scalar(ox, cx[j] as i64, dist).abs(dist, dist);
                    stream.sub_scalar(oy, cy[j] as i64, tmp).abs(tmp, tmp);
                    stream.add(dist, tmp, dist).lt(dist, best_d, mask);
                    stream.select(mask, dist, best_d, best_d);
                    stream.broadcast(jvec, j as i64);
                    stream.select(mask, jvec, best_i, best_i);
                    stream.flush()?;
                } else {
                    dev.sub_scalar(ox, cx[j] as i64, dist)?;
                    dev.abs(dist, dist)?;
                    dev.sub_scalar(oy, cy[j] as i64, tmp)?;
                    dev.abs(tmp, tmp)?;
                    dev.add(dist, tmp, dist)?;
                    dev.lt(dist, best_d, mask)?;
                    dev.select(mask, dist, best_d, best_d)?;
                    dev.broadcast(jvec, j as i64)?;
                    dev.select(mask, jvec, best_i, best_i)?;
                }
            }
            // Update phase: masked sums per centroid.
            let mut new_cx = vec![0i32; Self::K];
            let mut new_cy = vec![0i32; Self::K];
            for j in 0..Self::K {
                dev.eq_scalar(best_i, j as i64, mask)?;
                let count = dev.red_sum(mask)?;
                dev.select(mask, ox, zero, tmp)?;
                let sx = dev.red_sum(tmp)?;
                dev.select(mask, oy, zero, tmp)?;
                let sy = dev.red_sum(tmp)?;
                if count > 0 {
                    new_cx[j] = (sx / count) as i32;
                    new_cy[j] = (sy / count) as i32;
                } else {
                    new_cx[j] = cx[j];
                    new_cy[j] = cy[j];
                }
            }
            cx = new_cx;
            cy = new_cy;
            // Host: centroid division (tiny, still charged).
            charge_host(dev, &WorkloadProfile::new(Self::K as f64 * 4.0, 256.0));

            // Reference iteration.
            let assign = reference_assign(&xs, &ys, &rcx, &rcy);
            let mut sums = vec![(0i64, 0i64, 0i64); Self::K];
            for (i, &a) in assign.iter().enumerate() {
                sums[a].0 += xs[i] as i64;
                sums[a].1 += ys[i] as i64;
                sums[a].2 += 1;
            }
            for j in 0..Self::K {
                if sums[j].2 > 0 {
                    rcx[j] = (sums[j].0 / sums[j].2) as i32;
                    rcy[j] = (sums[j].1 / sums[j].2) as i32;
                }
            }
            ok &= cx == rcx && cy == rcy;
        }

        for o in [ox, oy, dist, tmp, best_d, best_i, mask, jvec, zero] {
            dev.free(o)?;
        }
        finish(dev, ok, "k-means centroids")
    }

    fn cpu_profile(&self, params: &Params) -> WorkloadProfile {
        let work = params.scaled(Self::BASE_N) as f64 * (Self::K * Self::ITERS) as f64;
        WorkloadProfile::new(6.0 * work, 8.0 * work / Self::K as f64).with_efficiency(0.7)
    }

    fn gpu_profile(&self, params: &Params) -> WorkloadProfile {
        let work = params.scaled(Self::BASE_N) as f64 * (Self::K * Self::ITERS) as f64;
        WorkloadProfile::new(6.0 * work, 8.0 * work / Self::K as f64).with_efficiency(0.8)
    }

    fn paper_factor(&self, params: &Params) -> f64 {
        67_108_864.0 / params.scaled(Self::BASE_N) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimeval::PimTarget;

    #[test]
    fn kmeans_matches_reference_on_all_targets() {
        for t in PimTarget::ALL {
            let mut dev = Device::new(pimeval::DeviceConfig::new(t, 1)).unwrap();
            let out = KMeans
                .run(
                    &mut dev,
                    &Params {
                        scale: 1.0 / 64.0,
                        seed: 6,
                        ..Params::default()
                    },
                )
                .unwrap();
            assert!(out.verified, "{t}");
            // Simple-op mix: sub/add/eq/min-like ops, no multiplies.
            assert!(!out.stats.categories.contains_key(&pimeval::OpCategory::Mul));
            assert!(out.stats.categories[&pimeval::OpCategory::Reduction] > 0);
        }
    }

    #[test]
    fn kmeans_stream_mode_batches_without_bad_fusion() {
        let mut dev = Device::bit_serial(1).unwrap();
        let out = KMeans
            .run(
                &mut dev,
                &Params {
                    scale: 1.0 / 64.0,
                    seed: 6,
                    stream: true,
                },
            )
            .unwrap();
        assert!(out.verified);
        let f = &out.stats.fusion;
        assert_eq!(f.flushes, (KMeans::ITERS * KMeans::K) as u64);
        // The mask feeds two selects, so lt+select must never fuse.
        assert_eq!(f.fused_cmp_select, 0);
        assert_eq!(f.fused_scaled_add, 0);
        // All nine same-shape commands per flush batch into one sweep.
        assert_eq!(f.batched_sweeps, f.flushes);
        assert_eq!(f.batched_commands, 9 * f.flushes);
    }

    #[test]
    fn reference_assign_breaks_ties_low_index() {
        let assign = reference_assign(&[0], &[0], &[1, -1], &[0, 0]);
        assert_eq!(assign, vec![0], "equal distances pick the lower index");
    }
}
