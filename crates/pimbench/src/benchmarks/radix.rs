//! Radix sort (Table I; from follow-on work to InSituBench).
//!
//! Digit-by-digit counting sort: the counting phase (digit extraction +
//! per-bucket equality and reduction) runs on PIM; the data-reshuffling
//! scatter phase is not supported by these PIM architectures and runs on
//! the host (§VIII), making the benchmark host-latency bound.

use pim_baseline::WorkloadProfile;
use pimeval::{DataType, Device};

use crate::common::{
    charge_host, finish, BenchError, BenchSpec, Benchmark, Domain, ExecType, Params, RunOutcome,
    SplitMix64,
};

/// LSD radix sort of non-negative 32-bit integers, 8-bit digits.
#[derive(Debug, Default, Clone, Copy)]
pub struct RadixSort;

impl RadixSort {
    const BASE_N: u64 = 1 << 15;
    const DIGIT_BITS: u32 = 8;
    const BUCKETS: usize = 1 << Self::DIGIT_BITS as usize;
    const PASSES: u32 = 32 / Self::DIGIT_BITS;
}

impl Benchmark for RadixSort {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            name: "Radix Sort",
            domain: Domain::Sort,
            sequential: true,
            random: true,
            exec: ExecType::PimHost,
            paper_input: "67,108,864 32-bit INT",
        }
    }

    fn run(&self, dev: &mut Device, params: &Params) -> Result<RunOutcome, BenchError> {
        dev.reset_stats();
        let n = params.scaled(Self::BASE_N) as usize;
        let mut rng = SplitMix64::new(params.seed);
        let input = rng.i32_vec(n, 0, i32::MAX);
        let mut data = input.clone();

        for pass in 0..Self::PASSES {
            // PIM counting phase: extract the digit, then count each
            // bucket with an equality sweep + reduction.
            let o = dev.alloc_vec(&data)?;
            let digit = dev.alloc_associated(o, DataType::Int32)?;
            let mask = dev.alloc_associated(o, DataType::Int32)?;
            dev.shift_right(o, pass * Self::DIGIT_BITS, digit)?;
            dev.and_scalar(digit, (Self::BUCKETS - 1) as i64, digit)?;
            let mut counts = vec![0usize; Self::BUCKETS];
            for (b, count) in counts.iter_mut().enumerate() {
                dev.eq_scalar(digit, b as i64, mask)?;
                *count = dev.red_sum(mask)? as usize;
            }
            dev.free(mask)?;
            dev.free(digit)?;
            dev.free(o)?;

            // Host scatter phase (stable), charged at random-access
            // efficiency.
            let mut offsets = vec![0usize; Self::BUCKETS];
            let mut acc = 0;
            for (b, offset) in offsets.iter_mut().enumerate() {
                *offset = acc;
                acc += counts[b];
            }
            if acc != n {
                return finish(dev, false, "radix counting phase");
            }
            let mut next = vec![0i32; n];
            for &v in &data {
                let b = ((v >> (pass * Self::DIGIT_BITS)) as usize) & (Self::BUCKETS - 1);
                next[offsets[b]] = v;
                offsets[b] += 1;
            }
            data = next;
            charge_host(
                dev,
                &WorkloadProfile::new(2.0 * n as f64, 12.0 * n as f64).with_efficiency(0.3),
            );
        }

        let mut expected = input;
        expected.sort_unstable();
        finish(dev, data == expected, "sorted output")
    }

    fn cpu_profile(&self, params: &Params) -> WorkloadProfile {
        let n = params.scaled(Self::BASE_N) as f64 * Self::PASSES as f64;
        WorkloadProfile::new(4.0 * n, 16.0 * n).with_efficiency(0.35)
    }

    fn gpu_profile(&self, params: &Params) -> WorkloadProfile {
        let n = params.scaled(Self::BASE_N) as f64 * Self::PASSES as f64;
        // CUB radix sort is close to bandwidth-bound.
        WorkloadProfile::new(4.0 * n, 16.0 * n).with_efficiency(0.85)
    }

    fn paper_factor(&self, params: &Params) -> f64 {
        67_108_864.0 / params.scaled(Self::BASE_N) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimeval::PimTarget;

    #[test]
    fn radix_sorts_on_all_targets() {
        for t in PimTarget::ALL {
            let mut dev = Device::new(pimeval::DeviceConfig::new(t, 1)).unwrap();
            let out = RadixSort
                .run(
                    &mut dev,
                    &Params {
                        scale: 1.0 / 64.0,
                        seed: 8,
                        ..Params::default()
                    },
                )
                .unwrap();
            assert!(out.verified, "{t}");
            // Counting phase signature: eq + reduction dominate (Fig. 8).
            assert!(out.stats.categories[&pimeval::OpCategory::Eq] > 0);
            assert!(out.stats.categories[&pimeval::OpCategory::Reduction] > 0);
            assert!(out.stats.host_time_ms > 0.0, "host scatter must be charged");
        }
    }
}
