//! Extension kernels beyond Table I.
//!
//! §II and §IX of the paper list the kernels PIMbench "is continuing to
//! extend" toward: prefix sum (scan, from PrIM/InSituBench), transitive
//! closure (from the IRAM suite), and string match (from Phoenix).
//! These three are implemented here against the same portable PIM API
//! and verified like the core suite; they are registered separately via
//! [`crate::extension_benchmarks`] so the Table I figures keep the
//! paper's 18 applications.

use pim_baseline::WorkloadProfile;
use pimeval::{DataType, Device};

use crate::common::{
    charge_host, finish, BenchError, BenchSpec, Benchmark, Domain, ExecType, Params, RunOutcome,
    SplitMix64,
};

/// Inclusive prefix sum (scan) via Hillis–Steele: log₂(n) PIM addition
/// passes over host-rotated copies, a masked select keeping the prefix
/// intact — the "data re-layout between each kernel execution" pattern
/// the paper's intro calls out.
#[derive(Debug, Default, Clone, Copy)]
pub struct PrefixSum;

impl PrefixSum {
    const BASE_N: u64 = 1 << 16;
}

impl Benchmark for PrefixSum {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            name: "Prefix Sum",
            domain: Domain::LinearAlgebra,
            sequential: true,
            random: false,
            exec: ExecType::PimHost,
            paper_input: "extension kernel (PrIM/InSituBench scan)",
        }
    }

    fn run(&self, dev: &mut Device, params: &Params) -> Result<RunOutcome, BenchError> {
        dev.reset_stats();
        let n = params.scaled(Self::BASE_N) as usize;
        let mut rng = SplitMix64::new(params.seed);
        let input = rng.i32_vec(n, -1000, 1000);

        let acc = dev.alloc_vec(&input)?;
        let shifted = dev.alloc_associated(acc, DataType::Int32)?;
        let mask = dev.alloc_associated(acc, DataType::Int32)?;
        let summed = dev.alloc_associated(acc, DataType::Int32)?;

        let mut host_view = input.clone();
        let mut d = 1usize;
        while d < n {
            // Host re-layout: rotate the running prefix by d (charged as
            // data movement via the upload) and build the keep-mask.
            let mut rot = vec![0i32; n];
            rot[d..].copy_from_slice(&host_view[..n - d]);
            dev.copy_to_device(&rot, shifted)?;
            let m: Vec<i32> = (0..n).map(|i| i32::from(i >= d)).collect();
            dev.copy_to_device(&m, mask)?;
            charge_host(dev, &WorkloadProfile::new(n as f64, 8.0 * n as f64));

            // PIM: acc = (i >= d) ? acc + shifted : acc.
            dev.add(acc, shifted, summed)?;
            dev.select(mask, summed, acc, acc)?;
            host_view = dev.to_vec::<i32>(acc)?;
            d *= 2;
        }
        let got = host_view;
        dev.free(summed)?;
        dev.free(mask)?;
        dev.free(shifted)?;
        dev.free(acc)?;

        let mut expected = input;
        for i in 1..n {
            expected[i] = expected[i].wrapping_add(expected[i - 1]);
        }
        finish(dev, got == expected, "prefix sums")
    }

    fn cpu_profile(&self, params: &Params) -> WorkloadProfile {
        let n = params.scaled(Self::BASE_N) as f64;
        WorkloadProfile::new(n, 8.0 * n)
    }

    fn gpu_profile(&self, params: &Params) -> WorkloadProfile {
        let n = params.scaled(Self::BASE_N) as f64;
        // Decoupled-lookback scan is near bandwidth-bound.
        WorkloadProfile::new(2.0 * n, 8.0 * n).with_efficiency(0.9)
    }

    fn paper_factor(&self, params: &Params) -> f64 {
        // No Table I size; use the PrIM-style 2^27-element scan.
        (1u64 << 27) as f64 / params.scaled(Self::BASE_N) as f64
    }

    fn serial_factor(&self, params: &Params) -> f64 {
        // log2(n) serial passes.
        let n = params.scaled(Self::BASE_N) as f64;
        (27.0 / n.log2()).max(1.0)
    }
}

/// Exact string match (Phoenix): counts occurrences of an `M`-byte
/// pattern by ANDing `M` per-offset equality bitmaps — the associative
/// (conditional match) pattern DRAM-CAM accelerates.
#[derive(Debug, Default, Clone, Copy)]
pub struct StringMatch;

impl StringMatch {
    const BASE_N: u64 = 1 << 16;
    const M: usize = 8;
}

impl Benchmark for StringMatch {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            name: "String Match",
            domain: Domain::Database,
            sequential: true,
            random: false,
            exec: ExecType::Pim,
            paper_input: "extension kernel (Phoenix string match)",
        }
    }

    fn run(&self, dev: &mut Device, params: &Params) -> Result<RunOutcome, BenchError> {
        dev.reset_stats();
        let n = params.scaled(Self::BASE_N) as usize;
        let mut rng = SplitMix64::new(params.seed);
        // Small alphabet so matches actually occur.
        let text: Vec<i32> = (0..n).map(|_| rng.below(4) as i32).collect();
        let pattern: Vec<i32> = (0..Self::M).map(|_| rng.below(4) as i32).collect();

        // One shifted copy of the text per pattern offset (vertical
        // layouts cannot shift elements across bitlines; the host
        // prepares the alignment, as with the paper's re-layouts).
        let positions = n - Self::M + 1;
        let matches_obj = dev.alloc(positions as u64, DataType::Int32)?;
        dev.broadcast(matches_obj, 1)?;
        let window = dev.alloc_associated(matches_obj, DataType::Int32)?;
        let hit = dev.alloc_associated(matches_obj, DataType::Int32)?;
        for (j, &pj) in pattern.iter().enumerate() {
            let slice: Vec<i32> = text[j..j + positions].to_vec();
            dev.copy_to_device(&slice, window)?;
            dev.eq_scalar(window, pj as i64, hit)?;
            dev.and(matches_obj, hit, matches_obj)?;
        }
        let count = dev.red_sum(matches_obj)?;
        dev.free(hit)?;
        dev.free(window)?;
        dev.free(matches_obj)?;

        let expected = text
            .windows(Self::M)
            .filter(|w| w.iter().zip(&pattern).all(|(a, b)| a == b))
            .count();
        finish(dev, count == expected as i128, "match count")
    }

    fn cpu_profile(&self, params: &Params) -> WorkloadProfile {
        let n = params.scaled(Self::BASE_N) as f64;
        // memmem-style scanning is bandwidth-bound with a small constant.
        WorkloadProfile::new(2.0 * n, 2.0 * n).with_efficiency(0.8)
    }

    fn gpu_profile(&self, params: &Params) -> WorkloadProfile {
        let n = params.scaled(Self::BASE_N) as f64;
        WorkloadProfile::new(2.0 * n, 2.0 * n).with_efficiency(0.9)
    }

    fn paper_factor(&self, params: &Params) -> f64 {
        // Phoenix's large keyword-search corpus: ~500 MB of text.
        5e8 / params.scaled(Self::BASE_N) as f64
    }
}

/// Transitive closure of a directed graph (IRAM suite): Floyd–Warshall
/// over adjacency bitmap rows, with the pivot test on the host and the
/// row-wide OR on PIM.
#[derive(Debug, Default, Clone, Copy)]
pub struct TransitiveClosure;

impl TransitiveClosure {
    const BASE_NODES: u64 = 48;
}

impl Benchmark for TransitiveClosure {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            name: "Transitive Closure",
            domain: Domain::Graph,
            sequential: true,
            random: true,
            exec: ExecType::PimHost,
            paper_input: "extension kernel (IRAM transitive closure)",
        }
    }

    fn run(&self, dev: &mut Device, params: &Params) -> Result<RunOutcome, BenchError> {
        dev.reset_stats();
        let nodes = params.scaled(Self::BASE_NODES) as usize;
        let words = nodes.div_ceil(32);
        let mut rng = SplitMix64::new(params.seed);
        let mut adj = vec![vec![0u32; words]; nodes];
        for (i, row) in adj.iter_mut().enumerate() {
            row[i / 32] |= 1 << (i % 32); // reflexive
            for j in 0..nodes {
                if rng.below(12) == 0 {
                    row[j / 32] |= 1 << (j % 32);
                }
            }
        }

        // Reference closure.
        let mut expected = adj.clone();
        for k in 0..nodes {
            for i in 0..nodes {
                if (expected[i][k / 32] >> (k % 32)) & 1 == 1 {
                    let rk = expected[k].clone();
                    for (w, r) in expected[i].iter_mut().zip(&rk) {
                        *w |= r;
                    }
                }
            }
        }

        // PIM: rows live on device; the host inspects the pivot column
        // (kept as a mirror) and issues row-wide ORs.
        let rows: Vec<_> = adj
            .iter()
            .map(|r| dev.alloc_vec(r))
            .collect::<Result<Vec<_>, _>>()?;
        let mut mirror = adj;
        for k in 0..nodes {
            for i in 0..nodes {
                if i != k && (mirror[i][k / 32] >> (k % 32)) & 1 == 1 {
                    dev.or(rows[i], rows[k], rows[i])?;
                    let rk = mirror[k].clone();
                    for (w, r) in mirror[i].iter_mut().zip(&rk) {
                        *w |= r;
                    }
                }
            }
            // Host pivot-column scan for this k.
            charge_host(dev, &WorkloadProfile::new(nodes as f64, 8.0 * nodes as f64));
        }
        let mut ok = true;
        for (i, row) in rows.iter().enumerate() {
            ok &= dev.to_vec::<u32>(*row)? == expected[i];
        }
        for r in rows {
            dev.free(r)?;
        }
        finish(dev, ok, "closure rows")
    }

    fn cpu_profile(&self, params: &Params) -> WorkloadProfile {
        let n = params.scaled(Self::BASE_NODES) as f64;
        let words = (n / 32.0).ceil();
        WorkloadProfile::new(n * n * words, 8.0 * n * n * words).with_efficiency(0.6)
    }

    fn gpu_profile(&self, params: &Params) -> WorkloadProfile {
        let n = params.scaled(Self::BASE_NODES) as f64;
        let words = (n / 32.0).ceil();
        WorkloadProfile::new(n * n * words, 8.0 * n * n * words).with_efficiency(0.7)
    }

    fn paper_factor(&self, params: &Params) -> f64 {
        // IRAM-era graph sizes: ~4096 nodes.
        let n = params.scaled(Self::BASE_NODES) as f64;
        let paper_n = 4096.0f64;
        (paper_n * paper_n * (paper_n / 32.0)) / (n * n * (n / 32.0).ceil())
    }

    fn serial_factor(&self, params: &Params) -> f64 {
        // The k (pivot) × i loops are serial OR issues; the bitmap
        // width is data-parallel.
        let n = params.scaled(Self::BASE_NODES) as f64;
        (4096.0 * 4096.0) / (n * n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimeval::PimTarget;

    #[test]
    fn prefix_sum_verifies_on_all_targets() {
        for t in PimTarget::EXTENDED {
            let mut dev = Device::new(pimeval::DeviceConfig::new(t, 1)).unwrap();
            let out = PrefixSum
                .run(
                    &mut dev,
                    &Params {
                        scale: 1.0 / 64.0,
                        seed: 3,
                        ..Params::default()
                    },
                )
                .unwrap();
            assert!(out.verified, "{t}");
            assert!(out.stats.host_time_ms > 0.0);
        }
    }

    #[test]
    fn string_match_verifies_on_all_targets() {
        for t in PimTarget::EXTENDED {
            let mut dev = Device::new(pimeval::DeviceConfig::new(t, 1)).unwrap();
            let out = StringMatch
                .run(
                    &mut dev,
                    &Params {
                        scale: 1.0 / 8.0,
                        seed: 5,
                        ..Params::default()
                    },
                )
                .unwrap();
            assert!(out.verified, "{t}");
            assert!(out.stats.categories[&pimeval::OpCategory::Eq] > 0);
            assert!(out.stats.categories[&pimeval::OpCategory::And] > 0);
        }
    }

    #[test]
    fn transitive_closure_verifies_on_all_targets() {
        for t in PimTarget::EXTENDED {
            let mut dev = Device::new(pimeval::DeviceConfig::new(t, 1)).unwrap();
            let out = TransitiveClosure
                .run(
                    &mut dev,
                    &Params {
                        scale: 0.5,
                        seed: 7,
                        ..Params::default()
                    },
                )
                .unwrap();
            assert!(out.verified, "{t}");
            assert!(out.stats.categories[&pimeval::OpCategory::Or] > 0);
        }
    }
}
