//! Linear-algebra benchmarks: vector addition, AXPY, GEMV, GEMM.
//!
//! GEMV follows the paper's column-broadcast mapping: for each column
//! `j`, the PIM multiplies column `A[:,j]` by the scalar `x[j]` and
//! accumulates into `y`. GEMM is "implemented using batched GEMV"
//! (§VIII), one GEMV per column of the right-hand matrix.

use pim_baseline::WorkloadProfile;
use pimeval::{DataType, Device};

use crate::common::{
    finish, BenchError, BenchSpec, Benchmark, Domain, ExecType, Params, RunOutcome, SplitMix64,
};

/// Element-wise vector addition (Table I row 1).
#[derive(Debug, Default, Clone, Copy)]
pub struct VectorAdd;

impl VectorAdd {
    const BASE_N: u64 = 1 << 20;
}

impl Benchmark for VectorAdd {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            name: "Vector Addition",
            domain: Domain::LinearAlgebra,
            sequential: true,
            random: false,
            exec: ExecType::Pim,
            paper_input: "2,035,544,320 32-bit INT",
        }
    }

    fn run(&self, dev: &mut Device, params: &Params) -> Result<RunOutcome, BenchError> {
        dev.reset_stats();
        let n = params.scaled(Self::BASE_N) as usize;
        let mut rng = SplitMix64::new(params.seed);
        let a = rng.i32_vec(n, -1_000_000, 1_000_000);
        let b = rng.i32_vec(n, -1_000_000, 1_000_000);

        let oa = dev.alloc_vec(&a)?;
        let ob = dev.alloc_vec(&b)?;
        let oc = dev.alloc_associated(oa, DataType::Int32)?;
        dev.add(oa, ob, oc)?;
        let got = dev.to_vec::<i32>(oc)?;
        dev.free(oa)?;
        dev.free(ob)?;
        dev.free(oc)?;

        let ok = got
            .iter()
            .zip(a.iter().zip(&b))
            .all(|(g, (x, y))| *g == x.wrapping_add(*y));
        finish(dev, ok, "vector add output")
    }

    fn cpu_profile(&self, params: &Params) -> WorkloadProfile {
        let n = params.scaled(Self::BASE_N) as f64;
        WorkloadProfile::new(n, 12.0 * n)
    }

    fn gpu_profile(&self, params: &Params) -> WorkloadProfile {
        let n = params.scaled(Self::BASE_N) as f64;
        WorkloadProfile::new(n, 12.0 * n)
    }

    fn paper_factor(&self, params: &Params) -> f64 {
        2_035_544_320.0 / params.scaled(Self::BASE_N) as f64
    }
}

/// AXPY: `y = a·x + y` (Table I row 2; the paper's Listing 1).
#[derive(Debug, Default, Clone, Copy)]
pub struct Axpy;

impl Axpy {
    const BASE_N: u64 = 1 << 20;
    const A: i64 = 7;
}

impl Benchmark for Axpy {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            name: "AXPY",
            domain: Domain::LinearAlgebra,
            sequential: true,
            random: false,
            exec: ExecType::Pim,
            paper_input: "16,777,216 32-bit INT",
        }
    }

    fn run(&self, dev: &mut Device, params: &Params) -> Result<RunOutcome, BenchError> {
        dev.reset_stats();
        let n = params.scaled(Self::BASE_N) as usize;
        let mut rng = SplitMix64::new(params.seed);
        let x = rng.i32_vec(n, -100_000, 100_000);
        let y = rng.i32_vec(n, -100_000, 100_000);

        let ox = dev.alloc_vec(&x)?;
        let oy = dev.alloc_vec(&y)?;
        if params.stream {
            // Record the eager pair; the flush's peephole pass fuses it
            // into one `scaled_add` command (the temporary dies unread).
            let t = dev.alloc_associated(ox, DataType::Int32)?;
            let mut stream = dev.stream();
            stream.mul_scalar(ox, Self::A, t).add(t, oy, oy);
            stream.flush()?;
            drop(stream);
            dev.free(t)?;
        } else {
            dev.scaled_add(ox, oy, oy, Self::A)?;
        }
        let got = dev.to_vec::<i32>(oy)?;
        dev.free(ox)?;
        dev.free(oy)?;

        let ok = got
            .iter()
            .zip(x.iter().zip(&y))
            .all(|(g, (xv, yv))| *g == xv.wrapping_mul(Self::A as i32).wrapping_add(*yv));
        finish(dev, ok, "axpy output")
    }

    fn cpu_profile(&self, params: &Params) -> WorkloadProfile {
        let n = params.scaled(Self::BASE_N) as f64;
        WorkloadProfile::new(2.0 * n, 12.0 * n)
    }

    fn gpu_profile(&self, params: &Params) -> WorkloadProfile {
        let n = params.scaled(Self::BASE_N) as f64;
        WorkloadProfile::new(2.0 * n, 12.0 * n)
    }

    fn paper_factor(&self, params: &Params) -> f64 {
        16_777_216.0 / params.scaled(Self::BASE_N) as f64
    }
}

/// Shared GEMV kernel: `y += A · x` with `A` stored as per-column PIM
/// objects and `x[j]` broadcast as scalars. Returns the PIM result.
fn pim_gemv(
    dev: &mut Device,
    a_cols: &[pimeval::ObjId],
    x: &[i32],
    m: usize,
) -> Result<Vec<i32>, BenchError> {
    let y = dev.alloc(m as u64, DataType::Int32)?;
    dev.broadcast(y, 0)?;
    let tmp = dev.alloc_associated(y, DataType::Int32)?;
    for (j, &col) in a_cols.iter().enumerate() {
        dev.mul_scalar(col, x[j] as i64, tmp)?;
        dev.add(tmp, y, y)?;
    }
    let out = dev.to_vec::<i32>(y)?;
    dev.free(tmp)?;
    dev.free(y)?;
    Ok(out)
}

fn host_gemv(a: &[Vec<i32>], x: &[i32]) -> Vec<i32> {
    let m = a[0].len();
    let mut y = vec![0i32; m];
    for (j, col) in a.iter().enumerate() {
        for i in 0..m {
            y[i] = y[i].wrapping_add(col[i].wrapping_mul(x[j]));
        }
    }
    y
}

/// Matrix–vector multiplication (Table I row 3).
#[derive(Debug, Default, Clone, Copy)]
pub struct Gemv;

impl Gemv {
    const BASE_M: u64 = 2048;
    const BASE_K: u64 = 256;

    fn dims(params: &Params) -> (usize, usize) {
        (
            params.scaled(Self::BASE_M) as usize,
            params.scaled(Self::BASE_K) as usize,
        )
    }
}

impl Benchmark for Gemv {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            name: "GEMV",
            domain: Domain::LinearAlgebra,
            sequential: true,
            random: false,
            exec: ExecType::Pim,
            paper_input: "2,352,160 x 8,192 32-bit INT",
        }
    }

    fn run(&self, dev: &mut Device, params: &Params) -> Result<RunOutcome, BenchError> {
        dev.reset_stats();
        let (m, k) = Self::dims(params);
        let mut rng = SplitMix64::new(params.seed);
        let a: Vec<Vec<i32>> = (0..k).map(|_| rng.i32_vec(m, -100, 100)).collect();
        let x = rng.i32_vec(k, -10, 10);

        let cols: Vec<_> = a
            .iter()
            .map(|col| dev.alloc_vec(col))
            .collect::<Result<Vec<_>, _>>()?;
        let got = pim_gemv(dev, &cols, &x, m)?;
        for c in cols {
            dev.free(c)?;
        }
        let ok = got == host_gemv(&a, &x);
        finish(dev, ok, "gemv output")
    }

    fn cpu_profile(&self, params: &Params) -> WorkloadProfile {
        let (m, k) = Self::dims(params);
        let (m, k) = (m as f64, k as f64);
        WorkloadProfile::new(2.0 * m * k, 4.0 * (m * k + m + k))
    }

    fn gpu_profile(&self, params: &Params) -> WorkloadProfile {
        let (m, k) = Self::dims(params);
        let (m, k) = (m as f64, k as f64);
        WorkloadProfile::new(2.0 * m * k, 4.0 * (m * k + m + k))
    }

    fn paper_factor(&self, params: &Params) -> f64 {
        let (m, k) = Self::dims(params);
        2_352_160.0 * 8_192.0 / (m as f64 * k as f64)
    }

    fn serial_factor(&self, params: &Params) -> f64 {
        // The K column sweeps are serial PIM ops; M is data-parallel.
        let (_, k) = Self::dims(params);
        8_192.0 / k as f64
    }
}

/// Matrix–matrix multiplication via batched GEMV (Table I row 4).
#[derive(Debug, Default, Clone, Copy)]
pub struct Gemm;

impl Gemm {
    const BASE_M: u64 = 256;
    const BASE_K: u64 = 128;
    const BASE_N: u64 = 32;

    fn dims(params: &Params) -> (usize, usize, usize) {
        (
            params.scaled(Self::BASE_M) as usize,
            params.scaled(Self::BASE_K) as usize,
            params.scaled(Self::BASE_N) as usize,
        )
    }
}

impl Benchmark for Gemm {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            name: "GEMM",
            domain: Domain::LinearAlgebra,
            sequential: true,
            random: false,
            exec: ExecType::Pim,
            paper_input: "23,521 x 4,096 and 4,096 x 512 32-bit INT",
        }
    }

    fn run(&self, dev: &mut Device, params: &Params) -> Result<RunOutcome, BenchError> {
        dev.reset_stats();
        let (m, k, n) = Self::dims(params);
        let mut rng = SplitMix64::new(params.seed);
        let a: Vec<Vec<i32>> = (0..k).map(|_| rng.i32_vec(m, -50, 50)).collect();
        let b: Vec<Vec<i32>> = (0..n).map(|_| rng.i32_vec(k, -10, 10)).collect();

        let cols: Vec<_> = a
            .iter()
            .map(|col| dev.alloc_vec(col))
            .collect::<Result<Vec<_>, _>>()?;
        let mut ok = true;
        for bn in &b {
            let got = pim_gemv(dev, &cols, bn, m)?;
            if got != host_gemv(&a, bn) {
                ok = false;
                break;
            }
        }
        for c in cols {
            dev.free(c)?;
        }
        finish(dev, ok, "gemm output column")
    }

    fn cpu_profile(&self, params: &Params) -> WorkloadProfile {
        let (m, k, n) = Self::dims(params);
        let (m, k, n) = (m as f64, k as f64, n as f64);
        // Cache-blocked GEMM is compute-bound; OpenBLAS reaches a large
        // fraction of peak.
        WorkloadProfile::new(2.0 * m * k * n, 4.0 * (m * k + k * n + m * n)).with_efficiency(0.8)
    }

    fn gpu_profile(&self, params: &Params) -> WorkloadProfile {
        let (m, k, n) = Self::dims(params);
        let (m, k, n) = (m as f64, k as f64, n as f64);
        WorkloadProfile::new(2.0 * m * k * n, 4.0 * (m * k + k * n + m * n)).with_efficiency(0.9)
    }

    fn paper_factor(&self, params: &Params) -> f64 {
        let (m, k, n) = Self::dims(params);
        23_521.0 * 4_096.0 * 512.0 / (m as f64 * k as f64 * n as f64)
    }

    fn serial_factor(&self, params: &Params) -> f64 {
        // The K inner sweeps of each GEMV are serial; the N batched
        // GEMVs run on disjoint core sets (batched GEMV, SVIII) and M is
        // data-parallel, so both scale with the device.
        let (_, k, _) = Self::dims(params);
        4_096.0 / k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimeval::PimTarget;

    fn small() -> Params {
        Params {
            scale: 1.0 / 64.0,
            seed: 3,
            ..Params::default()
        }
    }

    #[test]
    fn vecadd_verifies_on_all_targets() {
        for t in PimTarget::ALL {
            let mut dev = Device::new(pimeval::DeviceConfig::new(t, 1)).unwrap();
            let out = VectorAdd.run(&mut dev, &small()).unwrap();
            assert!(out.verified);
            assert!(out.stats.cmds.contains_key("add.int32"));
            assert!(out.stats.copy.host_to_device_bytes > 0);
        }
    }

    #[test]
    fn axpy_records_mul_and_add() {
        let mut dev = Device::fulcrum(1).unwrap();
        let out = Axpy.run(&mut dev, &small()).unwrap();
        assert!(out.verified);
        assert!(out.stats.cmds.contains_key("mul_scalar.int32"));
        assert!(out.stats.cmds.contains_key("add.int32"));
    }

    #[test]
    fn axpy_stream_mode_fuses_and_verifies() {
        for t in PimTarget::ALL {
            let mut dev = Device::new(pimeval::DeviceConfig::new(t, 1)).unwrap();
            let out = Axpy
                .run(
                    &mut dev,
                    &Params {
                        stream: true,
                        ..small()
                    },
                )
                .unwrap();
            assert!(out.verified, "{t}");
            // The recorded mul_scalar + add pair fused into one command.
            assert_eq!(out.stats.fusion.fused_scaled_add, 1, "{t}");
            assert!(out.stats.cmds.contains_key("scaled_add.int32"), "{t}");
            assert!(!out.stats.cmds.contains_key("add.int32"), "{t}");
        }
    }

    #[test]
    fn axpy_stream_cost_does_not_exceed_eager() {
        let mut eager_dev = Device::fulcrum(1).unwrap();
        let eager = Axpy.run(&mut eager_dev, &small()).unwrap();
        let mut stream_dev = Device::fulcrum(1).unwrap();
        let streamed = Axpy
            .run(
                &mut stream_dev,
                &Params {
                    stream: true,
                    ..small()
                },
            )
            .unwrap();
        assert!(streamed.stats.kernel_time_ms() <= eager.stats.kernel_time_ms() * (1.0 + 1e-12));
    }

    #[test]
    fn gemv_verifies_on_all_targets() {
        for t in PimTarget::ALL {
            let mut dev = Device::new(pimeval::DeviceConfig::new(t, 1)).unwrap();
            let out = Gemv.run(&mut dev, &small()).unwrap();
            assert!(out.verified, "{t}");
        }
    }

    #[test]
    fn gemm_verifies_on_fulcrum() {
        let mut dev = Device::fulcrum(1).unwrap();
        let out = Gemm
            .run(
                &mut dev,
                &Params {
                    scale: 1.0 / 16.0,
                    seed: 5,
                    ..Params::default()
                },
            )
            .unwrap();
        assert!(out.verified);
        // GEMM is mul-heavy (Fig. 8).
        let muls = out.stats.categories[&pimeval::OpCategory::Mul];
        assert!(muls > 0);
    }

    #[test]
    fn host_gemv_reference_sanity() {
        // [1 2; 3 4] · [5, 6]^T = [17, 39] with column-major storage.
        let a = vec![vec![1, 3], vec![2, 4]];
        assert_eq!(host_gemv(&a, &[5, 6]), vec![17, 39]);
    }
}
