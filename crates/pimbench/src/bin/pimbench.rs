//! PIMbench command-line runner — the Rust equivalent of the artifact's
//! per-benchmark executables and `build_run.sh`.
//!
//! ```text
//! pimbench [--bench <name>|all|extensions] [--target <t>|all]
//!          [--ranks N] [--shards N] [--timing analytical|fsm]
//!          [--opt 0|1|2] [--scale F] [--seed S] [--threads N]
//!          [--stream] [--report] [--trace <file>] [--stats-json <file>]
//!          [--metrics-json <file>] [--profile]
//! ```
//!
//! Targets: `bitserial`, `fulcrum`, `bank`, `analog`, `upmem`, `all`
//! (the paper's three). Prints one verification/timing line per run and,
//! with `--report`, the full Listing-3 statistics block.
//!
//! `--trace <file>` writes a Chrome-trace-event JSON timeline (load it
//! at <https://ui.perfetto.dev>) with one process per (target,
//! benchmark) run; `--stats-json <file>` writes the machine-readable
//! statistics of every run. Set `PIM_LOG=info|debug|trace` for leveled
//! diagnostics on stderr.
//!
//! `--metrics-json <file>` turns on the metrics registry and writes
//! one deterministic snapshot per run (counters, gauges, latency
//! histograms with p50/p90/p99, per-shard breakdowns). `--profile`
//! additionally records the time-binned utilization profile — emitted
//! as Perfetto counter tracks when combined with `--trace`, and as a
//! `"profile"` section in the metrics JSON — plus a wall-clock
//! execution-pool `"pool"` section (the one part of the output that is
//! *not* run-to-run deterministic).
//!
//! `--threads N` pins the functional execution engine to N worker
//! threads (results are bit-identical at any count); it overrides the
//! `PIM_THREADS` environment variable, which in turn overrides the
//! host's available parallelism.
//!
//! `--timing <backend>` selects the DRAM timing model: `analytical`
//! (closed-form, the default) or `fsm` (stateful per-bank protocol
//! replay that also populates the `dram_protocol` statistics section).
//! The `PIM_TIMING` environment variable, when set, wins over the flag.
//!
//! `--opt <level>` selects the command-stream optimization level for
//! `--stream` runs: `0` (legacy adjacent-pair peephole), `1` (dataflow
//! graph fusion + CSE, the default), or `2` (level 1 plus cost-driven
//! placement planning). Results are bit-identical at every level. The
//! `PIM_OPT` environment variable, when set, wins over the flag.

use pimbench::{all_benchmarks, extension_benchmarks, Benchmark, Params};
use pimeval::metrics::METRICS_SCHEMA_VERSION;
use pimeval::trace::chrome::ChromeTraceBuilder;
use pimeval::trace::json::stats_to_json_full;
use pimeval::{pim_info, Device, DeviceConfig, OptLevel, PimTarget, TimingBackend};
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    bench: String,
    targets: Vec<PimTarget>,
    ranks: usize,
    shards: Option<usize>,
    timing: TimingBackend,
    opt: OptLevel,
    params: Params,
    report: bool,
    trace: Option<PathBuf>,
    stats_json: Option<PathBuf>,
    metrics_json: Option<PathBuf>,
    profile: bool,
}

fn parse_target(s: &str) -> Option<Vec<PimTarget>> {
    match s.to_ascii_lowercase().as_str() {
        "bitserial" | "bit-serial" => Some(vec![PimTarget::BitSerial]),
        "fulcrum" => Some(vec![PimTarget::Fulcrum]),
        "bank" | "bank-level" => Some(vec![PimTarget::BankLevel]),
        "analog" => Some(vec![PimTarget::AnalogBitSerial]),
        "upmem" => Some(vec![PimTarget::UpmemLike]),
        "all" => Some(PimTarget::ALL.to_vec()),
        "extended" => Some(PimTarget::EXTENDED.to_vec()),
        _ => None,
    }
}

fn parse() -> Result<Cli, String> {
    let mut cli = Cli {
        bench: "all".into(),
        targets: PimTarget::ALL.to_vec(),
        ranks: 4,
        shards: None,
        timing: TimingBackend::default(),
        opt: OptLevel::default(),
        params: Params::default(),
        report: false,
        trace: None,
        stats_json: None,
        metrics_json: None,
        profile: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--bench" => {
                cli.bench = need(i)?.clone();
                i += 1;
            }
            "--target" => {
                cli.targets = parse_target(need(i)?)
                    .ok_or_else(|| format!("unknown target {}", args[i + 1]))?;
                i += 1;
            }
            "--ranks" => {
                cli.ranks = need(i)?.parse().map_err(|e| format!("--ranks: {e}"))?;
                i += 1;
            }
            "--shards" => {
                let n: usize = need(i)?.parse().map_err(|e| format!("--shards: {e}"))?;
                if n == 0 {
                    return Err("--shards must be at least 1".into());
                }
                cli.shards = Some(n);
                i += 1;
            }
            "--timing" => {
                cli.timing = TimingBackend::parse(need(i)?)
                    .ok_or_else(|| format!("unknown timing backend {}", args[i + 1]))?;
                i += 1;
            }
            "--opt" => {
                cli.opt = OptLevel::parse(need(i)?)
                    .ok_or_else(|| format!("unknown optimization level {}", args[i + 1]))?;
                i += 1;
            }
            "--scale" => {
                cli.params.scale = need(i)?.parse().map_err(|e| format!("--scale: {e}"))?;
                i += 1;
            }
            "--seed" => {
                cli.params.seed = need(i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                i += 1;
            }
            "--threads" => {
                let n: usize = need(i)?.parse().map_err(|e| format!("--threads: {e}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                pimeval::exec::set_thread_count(Some(n));
                i += 1;
            }
            "--stream" => cli.params.stream = true,
            "--report" => cli.report = true,
            "--trace" => {
                cli.trace = Some(PathBuf::from(need(i)?));
                i += 1;
            }
            "--stats-json" => {
                cli.stats_json = Some(PathBuf::from(need(i)?));
                i += 1;
            }
            "--metrics-json" => {
                cli.metrics_json = Some(PathBuf::from(need(i)?));
                i += 1;
            }
            "--profile" => cli.profile = true,
            "--help" | "-h" => {
                println!(
                    "pimbench --bench <name>|all|extensions --target \
                     bitserial|fulcrum|bank|analog|upmem|all|extended \
                     [--ranks N] [--shards N] [--timing analytical|fsm] \
                     [--opt 0|1|2] [--scale F] [--seed S] [--threads N] \
                     [--stream] [--report] [--trace <file>] \
                     [--stats-json <file>] [--metrics-json <file>] \
                     [--profile]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
        i += 1;
    }
    Ok(cli)
}

fn selected(bench: &str) -> Result<Vec<Box<dyn Benchmark>>, String> {
    match bench.to_ascii_lowercase().as_str() {
        "all" => Ok(all_benchmarks()),
        "extensions" => Ok(extension_benchmarks()),
        name => pimbench::benchmark_by_name(name)
            .map(|b| vec![b])
            .ok_or_else(|| format!("unknown benchmark '{name}' (try --bench all)")),
    }
}

fn main() -> ExitCode {
    let cli = match parse() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let benches = match selected(&cli.bench) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let want_metrics = cli.metrics_json.is_some() || cli.profile;
    if cli.profile {
        pimeval::exec::pool::enable();
    }
    let mut failures = 0usize;
    let mut chrome = ChromeTraceBuilder::new();
    let mut stats_runs: Vec<String> = Vec::new();
    let mut metrics_runs: Vec<String> = Vec::new();
    for target in &cli.targets {
        for bench in &benches {
            let mut config = DeviceConfig::new(*target, cli.ranks)
                .with_timing_backend(cli.timing)
                .with_opt_level(cli.opt);
            if let Some(shards) = cli.shards {
                config = config.with_shards(shards);
            }
            let mut dev = match Device::new(config) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("error: cannot create device: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if cli.trace.is_some() {
                dev.enable_tracing();
            }
            if want_metrics {
                dev.enable_metrics(cli.profile);
            }
            match bench.run(&mut dev, &cli.params) {
                Ok(out) => {
                    let s = &out.stats;
                    println!(
                        "[{}] {:<22} VERIFIED  kernel {:>12.6} ms  copy {:>12.6} ms  host {:>12.6} ms  energy {:>12.6} mJ",
                        target,
                        bench.spec().name,
                        s.kernel_time_ms(),
                        s.copy.time_ms,
                        s.host_time_ms,
                        s.kernel_energy_mj(),
                    );
                    if cli.report {
                        println!("{}", dev.report());
                    }
                    let label = format!("{} / {}", target, bench.spec().name);
                    let snap = dev.metrics_snapshot();
                    if cli.trace.is_some() {
                        chrome.add_run(&label, &dev.take_trace());
                        if let Some(snap) = &snap {
                            chrome.add_counter_tracks(&label, snap);
                        }
                    }
                    if cli.stats_json.is_some() {
                        stats_runs.push(format!(
                            "{{\"benchmark\":{},\"stats\":{}}}",
                            pimeval::trace::json::string(bench.spec().name),
                            stats_to_json_full(s, dev.config(), snap.as_ref(), dev.trace_dropped())
                        ));
                    }
                    if cli.metrics_json.is_some() {
                        if let Some(snap) = &snap {
                            metrics_runs.push(format!(
                                "{{\"benchmark\":{},\"target\":{},\"metrics\":{}}}",
                                pimeval::trace::json::string(bench.spec().name),
                                pimeval::trace::json::string(&target.to_string()),
                                snap.to_json()
                            ));
                        }
                    }
                }
                Err(e) => {
                    failures += 1;
                    eprintln!("[{}] {:<22} FAILED: {e}", target, bench.spec().name);
                }
            }
        }
    }
    if let Some(path) = &cli.trace {
        if let Err(e) = chrome.write_to(path) {
            eprintln!("error: cannot write trace {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        pim_info!("wrote Chrome trace to {}", path.display());
    }
    if let Some(path) = &cli.stats_json {
        let doc = format!("{{\"runs\":[\n{}\n]}}\n", stats_runs.join(",\n"));
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("error: cannot write stats {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        pim_info!("wrote stats JSON to {}", path.display());
    }
    if let Some(path) = &cli.metrics_json {
        // The wall-clock pool section is appended only under --profile
        // and is the single non-deterministic part of the document.
        let pool = if cli.profile {
            format!(",\"pool\":{}", pimeval::exec::pool::snapshot().to_json())
        } else {
            String::new()
        };
        let doc = format!(
            "{{\"schema_version\":{},\"runs\":[\n{}\n]{}}}\n",
            METRICS_SCHEMA_VERSION,
            metrics_runs.join(",\n"),
            pool
        );
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("error: cannot write metrics {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        pim_info!("wrote metrics JSON to {}", path.display());
    }
    if failures > 0 {
        eprintln!("{failures} run(s) failed");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
