//! PIMbench: the 18-application PIM benchmark suite of the IISWC 2024
//! PIMeval/PIMbench paper, written against the portable PIM API of
//! [`pimeval`] — every benchmark runs unmodified on all three modeled
//! PIM architectures.
//!
//! The suite (Table I): vector addition, AXPY, GEMV, GEMM, radix sort,
//! AES-256 encryption/decryption, triangle counting, filter-by-key,
//! histogram, brightness, image downsampling, KNN, linear regression,
//! K-means, and VGG-13/16/19.
//!
//! Every benchmark:
//!
//! * generates a deterministic synthetic workload (scaled-down defaults;
//!   see DESIGN.md substitution #3),
//! * runs its PIM kernels through the simulator, charging host-side
//!   phases (sorts, scatters, softmax, ...) to the deterministic CPU
//!   model of [`pim_baseline`],
//! * verifies every output against a host reference implementation, and
//! * exposes roofline [`pim_baseline::WorkloadProfile`]s for the CPU/GPU
//!   baseline comparisons of Figs. 9–11.
//!
//! # Example
//!
//! ```
//! use pimbench::{all_benchmarks, Params};
//! use pimeval::Device;
//!
//! let mut dev = Device::fulcrum(2).unwrap();
//! let suite = all_benchmarks();
//! assert_eq!(suite.len(), 18);
//! let axpy = &suite[1];
//! let out = axpy.run(&mut dev, &Params { scale: 0.01, seed: 1, ..Params::default() }).unwrap();
//! assert!(out.verified);
//! ```

#![warn(missing_docs)]

pub mod benchmarks;
pub mod common;

pub use common::{
    charge_host, finish, BenchError, BenchSpec, Benchmark, Domain, ExecType, Params, RunOutcome,
    SplitMix64,
};

use benchmarks::*;

/// The full PIMbench suite in Table I order.
pub fn all_benchmarks() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(VectorAdd),
        Box::new(Axpy),
        Box::new(Gemv),
        Box::new(Gemm),
        Box::new(RadixSort),
        Box::new(Aes { decrypt: false }),
        Box::new(Aes { decrypt: true }),
        Box::new(TriangleCount),
        Box::new(FilterByKey),
        Box::new(Histogram),
        Box::new(Brightness),
        Box::new(ImageDownsample),
        Box::new(Knn),
        Box::new(LinearRegression),
        Box::new(KMeans),
        Box::new(Vgg {
            variant: VggVariant::Vgg13,
        }),
        Box::new(Vgg {
            variant: VggVariant::Vgg16,
        }),
        Box::new(Vgg {
            variant: VggVariant::Vgg19,
        }),
    ]
}

/// The extension kernels the paper lists as in-progress additions
/// (§II/§IX): prefix sum, string match, and transitive closure. Kept
/// out of [`all_benchmarks`] so Table I figures retain the paper's 18
/// applications.
pub fn extension_benchmarks() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(PrefixSum),
        Box::new(StringMatch),
        Box::new(TransitiveClosure),
    ]
}

/// Short command-line aliases for benchmarks whose figure labels contain
/// spaces or punctuation (`vecadd` for "Vector Addition", ...).
pub const BENCH_ALIASES: &[(&str, &str)] = &[
    ("vecadd", "Vector Addition"),
    ("va", "Vector Addition"),
    ("sort", "Radix Sort"),
    ("radixsort", "Radix Sort"),
    ("triangle", "Triangle Count"),
    ("tc", "Triangle Count"),
    ("filter", "Filter-By-Key"),
    ("hist", "Histogram"),
    ("downsample", "Image Downsampling"),
    ("linreg", "Linear Regression"),
    ("lr", "Linear Regression"),
    ("kmeans", "K-means"),
    ("prefixsum", "Prefix Sum"),
    ("stringmatch", "String Match"),
];

/// Looks a benchmark up by its figure label or a [`BENCH_ALIASES`] short
/// name (both case-insensitive).
pub fn benchmark_by_name(name: &str) -> Option<Box<dyn Benchmark>> {
    let resolved = BENCH_ALIASES
        .iter()
        .find(|(alias, _)| alias.eq_ignore_ascii_case(name))
        .map_or(name, |(_, full)| full);
    all_benchmarks()
        .into_iter()
        .chain(extension_benchmarks())
        .find(|b| b.spec().name.eq_ignore_ascii_case(resolved))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eighteen_unique_benchmarks() {
        let suite = all_benchmarks();
        assert_eq!(suite.len(), 18);
        let names: std::collections::BTreeSet<_> = suite.iter().map(|b| b.spec().name).collect();
        assert_eq!(names.len(), 18);
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark_by_name("GEMV").is_some());
        assert!(benchmark_by_name("gemv").is_some());
        assert!(benchmark_by_name("VGG-19").is_some());
        assert!(benchmark_by_name("nope").is_none());
    }

    #[test]
    fn table1_domains_match_paper() {
        let suite = all_benchmarks();
        assert_eq!(suite[0].spec().domain.label(), "Linear Algebra");
        assert_eq!(suite[4].spec().domain.label(), "Sort");
        assert_eq!(suite[8].spec().domain.label(), "Database");
        assert_eq!(suite[17].spec().domain.label(), "Neural Network");
    }

    #[test]
    fn exec_types_match_table1() {
        use crate::common::ExecType;
        let suite = all_benchmarks();
        let pim_host: Vec<&str> = suite
            .iter()
            .filter(|b| b.spec().exec == ExecType::PimHost)
            .map(|b| b.spec().name)
            .collect();
        assert!(pim_host.contains(&"Radix Sort"));
        assert!(pim_host.contains(&"Filter-By-Key"));
        assert!(pim_host.contains(&"KNN"));
        assert!(pim_host.contains(&"VGG-16"));
    }
}
