//! Shared benchmark infrastructure: the [`Benchmark`] trait, run
//! parameters, outcomes, and host-phase charging.

use pim_baseline::{ComputeModel, WorkloadProfile};
use pimeval::{Device, PimError, SimStats};
use std::fmt;

/// Application domain, as in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Vector/matrix kernels.
    LinearAlgebra,
    /// Sorting.
    Sort,
    /// Cryptography.
    Cryptography,
    /// Graph analytics.
    Graph,
    /// Database analytics.
    Database,
    /// Image processing.
    ImageProcessing,
    /// Supervised learning.
    SupervisedLearning,
    /// Unsupervised learning.
    UnsupervisedLearning,
    /// Neural networks.
    NeuralNetwork,
}

impl Domain {
    /// Table I column text.
    pub fn label(&self) -> &'static str {
        match self {
            Domain::LinearAlgebra => "Linear Algebra",
            Domain::Sort => "Sort",
            Domain::Cryptography => "Cryptography",
            Domain::Graph => "Graph",
            Domain::Database => "Database",
            Domain::ImageProcessing => "Image Processing",
            Domain::SupervisedLearning => "Supervised Learning",
            Domain::UnsupervisedLearning => "Unsupervised Learning",
            Domain::NeuralNetwork => "Neural Network",
        }
    }
}

/// Where the benchmark executes, as in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecType {
    /// Entirely on PIM.
    Pim,
    /// PIM kernels plus host phases (random access or inter-bank work).
    PimHost,
}

impl fmt::Display for ExecType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecType::Pim => write!(f, "PIM"),
            ExecType::PimHost => write!(f, "PIM + Host"),
        }
    }
}

/// Static description of one benchmark (one Table I row).
#[derive(Debug, Clone, Copy)]
pub struct BenchSpec {
    /// Benchmark name as it appears in the paper's figures.
    pub name: &'static str,
    /// Application domain.
    pub domain: Domain,
    /// Sequential memory access pattern present.
    pub sequential: bool,
    /// Random memory access pattern present.
    pub random: bool,
    /// Execution type.
    pub exec: ExecType,
    /// The paper's input description (Table I "Input" column).
    pub paper_input: &'static str,
}

/// Run parameters. `scale` multiplies the scaled-down default problem
/// size (1.0 ≈ completes in well under a second per target); `seed`
/// drives all synthetic data generation; `stream` routes
/// stream-capable kernels through the deferred
/// [`pimeval::CommandStream`] (peephole fusion + batching) instead of
/// eager per-op issue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Problem size multiplier.
    pub scale: f64,
    /// RNG seed for workload generation.
    pub seed: u64,
    /// Record kernels through a command stream where supported.
    pub stream: bool,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            scale: 1.0,
            seed: 42,
            stream: false,
        }
    }
}

impl Params {
    /// Scales a base element count, with a floor to keep kernels
    /// non-degenerate.
    pub fn scaled(&self, base: u64) -> u64 {
        ((base as f64 * self.scale) as u64).max(16)
    }
}

/// Errors produced by a benchmark run.
#[derive(Debug)]
pub enum BenchError {
    /// A PIM API call failed.
    Pim(PimError),
    /// The PIM result diverged from the host reference.
    VerificationFailed {
        /// Which check diverged.
        what: String,
    },
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Pim(e) => write!(f, "PIM error: {e}"),
            BenchError::VerificationFailed { what } => write!(f, "verification failed: {what}"),
        }
    }
}

impl std::error::Error for BenchError {}

impl From<PimError> for BenchError {
    fn from(e: PimError) -> Self {
        BenchError::Pim(e)
    }
}

/// The result of one verified benchmark run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// True when every output matched the host reference.
    pub verified: bool,
    /// Statistics snapshot (the device's stats are reset before the run).
    pub stats: SimStats,
}

/// A PIMbench benchmark: portable across all three PIM targets via the
/// device-independent PIM API.
pub trait Benchmark {
    /// Static metadata (Table I row).
    fn spec(&self) -> BenchSpec;

    /// Runs the benchmark on `dev`, verifying against a host reference.
    ///
    /// The device's statistics are reset at entry so the outcome's
    /// snapshot covers exactly one run.
    ///
    /// # Errors
    ///
    /// [`BenchError::Pim`] on API failures,
    /// [`BenchError::VerificationFailed`] when outputs diverge.
    fn run(&self, dev: &mut Device, params: &Params) -> Result<RunOutcome, BenchError>;

    /// Roofline profile of the whole application on the CPU baseline
    /// **at the scaled (functional) problem size** — the harness
    /// multiplies by [`Benchmark::paper_factor`] for paper-scale figures.
    fn cpu_profile(&self, params: &Params) -> WorkloadProfile;

    /// Roofline profile of the whole application on the GPU baseline at
    /// the scaled problem size.
    fn gpu_profile(&self, params: &Params) -> WorkloadProfile;

    /// Ratio of the paper's Table I problem size (total element-work) to
    /// the scaled functional size this run uses. The figure harness
    /// decimates the device's core count by this factor — conserving
    /// per-core work, so measured kernel latency equals the paper-scale
    /// estimate — and scales host/baseline times back up by it.
    fn paper_factor(&self, params: &Params) -> f64 {
        let _ = params;
        1.0
    }

    /// The part of [`Benchmark::paper_factor`] that scales the *serial*
    /// PIM operation count rather than data-parallel width (e.g. GEMV
    /// column sweeps, histogram bins, triangle-count edges). The harness
    /// decimates the device only by `paper_factor / serial_factor` and
    /// multiplies the measured kernel time by `serial_factor` instead —
    /// each op's latency is width-faithful, and the op count is restored
    /// multiplicatively.
    fn serial_factor(&self, params: &Params) -> f64 {
        let _ = params;
        1.0
    }
}

/// Charges a host-side phase to the CPU model and records it on the
/// device (PIM + Host benchmarks), returning the charged milliseconds.
pub fn charge_host(dev: &mut Device, profile: &WorkloadProfile) -> f64 {
    let ms = ComputeModel::epyc_9124().runtime_ms(profile);
    dev.record_host_ms(ms);
    ms
}

/// Finishes a run: snapshots stats and packages the verification flag.
pub fn finish(dev: &Device, verified: bool, what: &str) -> Result<RunOutcome, BenchError> {
    if !verified {
        return Err(BenchError::VerificationFailed {
            what: what.to_string(),
        });
    }
    Ok(RunOutcome {
        verified,
        stats: dev.stats().clone(),
    })
}

/// A tiny deterministic PRNG (SplitMix64) so benchmark inputs do not
/// depend on `rand`'s version-to-version stream stability.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }

    /// Uniform `i32`.
    pub fn next_i32(&mut self) -> i32 {
        self.next_u64() as i32
    }

    /// A vector of uniform `i32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn i32_vec(&mut self, n: usize, lo: i32, hi: i32) -> Vec<i32> {
        assert!(lo < hi, "empty range");
        let span = (hi as i64 - lo as i64) as u64;
        (0..n)
            .map(|_| (lo as i64 + self.below(span) as i64) as i32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_ranged() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        assert_eq!(a.next_u64(), b.next_u64());
        let v = a.i32_vec(1000, -5, 5);
        assert!(v.iter().all(|x| (-5..5).contains(x)));
        assert!(v.iter().any(|x| *x < 0) && v.iter().any(|x| *x >= 0));
    }

    #[test]
    fn params_scaling_has_floor() {
        let p = Params {
            scale: 1e-9,
            seed: 0,
            ..Params::default()
        };
        assert_eq!(p.scaled(1_000_000), 16);
        let d = Params::default();
        assert_eq!(d.scaled(1024), 1024);
    }

    #[test]
    fn exec_type_display() {
        assert_eq!(ExecType::Pim.to_string(), "PIM");
        assert_eq!(ExecType::PimHost.to_string(), "PIM + Host");
    }
}
