//! Performance regression gate over two `BENCH_parallel.json` snapshots.
//!
//! ```text
//! bench_regress --baseline <file> --current <file>
//!               [--max-slowdown PCT] [--max-cost-increase PCT]
//!               [--wall-advisory]
//! ```
//!
//! Compares a current `bench_parallel` export against a committed
//! baseline and exits non-zero when a configured threshold is crossed:
//!
//! * **Wall-clock** (`runs`, matched by `(name, threads)`): best
//!   iteration time (`min_ns`) may grow by at most `--max-slowdown`
//!   percent (default 25 — host timing is noisy, especially in CI).
//!   With `--wall-advisory`, wall-clock regressions are still printed
//!   (as `ADVISE`) but never fail the gate — the mode CI uses, where
//!   shared runners make wall time untrustworthy while the modeled-cost
//!   columns below stay deterministic and hard-fail.
//! * **Modeled cost** (`rank_scaling`, matched by `(name, ranks)`;
//!   `stream_vs_eager` and `optimizer`, matched by `(name, threads)`):
//!   simulated `kernel_ms` / `stream_modeled_ms` /
//!   `dataflow_modeled_ms` may grow by at most `--max-cost-increase`
//!   percent (default 1 — the cost model is deterministic, so any
//!   growth is a real model change).
//!
//! The diff is additive-tolerant by design: unknown fields are ignored,
//! runs present on only one side are reported but never fail the gate,
//! and a missing `schema_version` (pre-versioning baselines) is treated
//! as compatible. Exit codes: 0 no regression, 1 regression, 2 usage or
//! I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use pimeval::trace::json::Json;

struct Cli {
    baseline: PathBuf,
    current: PathBuf,
    /// Allowed wall-clock growth, fraction (0.25 = +25%).
    max_slowdown: f64,
    /// Allowed modeled-cost growth, fraction.
    max_cost_increase: f64,
    /// Report wall-clock regressions without failing the gate.
    wall_advisory: bool,
}

fn parse_args() -> Result<Cli, String> {
    let mut baseline = None;
    let mut current = None;
    let mut max_slowdown = 0.25;
    let mut max_cost_increase = 0.01;
    let mut wall_advisory = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--baseline" => {
                baseline = Some(PathBuf::from(need(i)?));
                i += 1;
            }
            "--current" => {
                current = Some(PathBuf::from(need(i)?));
                i += 1;
            }
            "--max-slowdown" => {
                let pct: f64 = need(i)?
                    .parse()
                    .map_err(|e| format!("--max-slowdown: {e}"))?;
                max_slowdown = pct / 100.0;
                i += 1;
            }
            "--max-cost-increase" => {
                let pct: f64 = need(i)?
                    .parse()
                    .map_err(|e| format!("--max-cost-increase: {e}"))?;
                max_cost_increase = pct / 100.0;
                i += 1;
            }
            "--wall-advisory" => wall_advisory = true,
            "--help" | "-h" => {
                println!(
                    "bench_regress --baseline <file> --current <file> \
                     [--max-slowdown PCT] [--max-cost-increase PCT] \
                     [--wall-advisory]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
        i += 1;
    }
    Ok(Cli {
        baseline: baseline.ok_or("--baseline is required")?,
        current: current.ok_or("--current is required")?,
        max_slowdown,
        max_cost_increase,
        wall_advisory,
    })
}

fn load(path: &PathBuf) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

/// A `(section, key fields, metric)` extraction: pulls every entry of
/// `section` as `(identity, value)` where identity is the joined key
/// fields and value the metric field. Entries missing any field are
/// skipped (additive tolerance works both ways).
fn extract(doc: &Json, section: &str, keys: &[&str], metric: &str) -> Vec<(String, f64)> {
    let Some(entries) = doc.get(section).and_then(Json::as_array) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for e in entries {
        let mut id = Vec::new();
        for k in keys {
            match e.get(k) {
                Some(v) => id.push(match v.as_str() {
                    Some(s) => s.to_string(),
                    None => match v.as_f64() {
                        Some(n) => format!("{n}"),
                        None => return Vec::new(),
                    },
                }),
                None => continue,
            }
        }
        if id.len() != keys.len() {
            continue;
        }
        if let Some(v) = e.get(metric).and_then(Json::as_f64) {
            out.push((id.join("/"), v));
        }
    }
    out
}

/// Compares one metric between the two documents; returns the number of
/// regressions (relative growth beyond `threshold`) after printing one
/// line per matched pair. With `advisory`, exceedances are printed as
/// `ADVISE` but never counted.
fn compare(
    label: &str,
    baseline: &[(String, f64)],
    current: &[(String, f64)],
    threshold: f64,
    advisory: bool,
) -> usize {
    let mut regressions = 0;
    for (id, base) in baseline {
        let Some((_, cur)) = current.iter().find(|(cid, _)| cid == id) else {
            println!("  [gone]  {label} {id} (baseline only — ignored)");
            continue;
        };
        if *base <= 0.0 {
            continue;
        }
        let growth = cur / base - 1.0;
        let status = if growth > threshold {
            if advisory {
                "ADVISE"
            } else {
                regressions += 1;
                "REGRESS"
            }
        } else {
            "ok"
        };
        println!(
            "  [{status:>7}] {label} {id}: {base:.6} -> {cur:.6} ({:+.2}%, limit +{:.2}%)",
            growth * 100.0,
            threshold * 100.0
        );
    }
    for (id, _) in current {
        if !baseline.iter().any(|(bid, _)| bid == id) {
            println!("  [new]   {label} {id} (current only — ignored)");
        }
    }
    regressions
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let (base, cur) = match (load(&cli.baseline), load(&cli.current)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    // Pre-versioning baselines carry no schema_version; only a declared
    // *newer* major version than ours is rejected.
    for (doc, which) in [(&base, "baseline"), (&cur, "current")] {
        if let Some(v) = doc.get("schema_version").and_then(Json::as_f64) {
            if v as u32 > pim_bench_harness::export::BENCH_SCHEMA_VERSION {
                eprintln!(
                    "error: {which} declares schema_version {} but this tool knows {}",
                    v as u32,
                    pim_bench_harness::export::BENCH_SCHEMA_VERSION
                );
                return ExitCode::from(2);
            }
        }
    }
    println!(
        "bench_regress: {} vs {}",
        cli.baseline.display(),
        cli.current.display()
    );
    let mut regressions = 0;
    println!(
        "wall-clock (min_ns, limit +{:.0}%{}):",
        cli.max_slowdown * 100.0,
        if cli.wall_advisory { ", advisory" } else { "" }
    );
    regressions += compare(
        "run",
        &extract(&base, "runs", &["name", "threads"], "min_ns"),
        &extract(&cur, "runs", &["name", "threads"], "min_ns"),
        cli.max_slowdown,
        cli.wall_advisory,
    );
    println!(
        "modeled cost (limit +{:.2}%):",
        cli.max_cost_increase * 100.0
    );
    regressions += compare(
        "rank_scaling",
        &extract(&base, "rank_scaling", &["name", "ranks"], "kernel_ms"),
        &extract(&cur, "rank_scaling", &["name", "ranks"], "kernel_ms"),
        cli.max_cost_increase,
        false,
    );
    regressions += compare(
        "stream_vs_eager",
        &extract(
            &base,
            "stream_vs_eager",
            &["name", "threads"],
            "stream_modeled_ms",
        ),
        &extract(
            &cur,
            "stream_vs_eager",
            &["name", "threads"],
            "stream_modeled_ms",
        ),
        cli.max_cost_increase,
        false,
    );
    regressions += compare(
        "optimizer",
        &extract(
            &base,
            "optimizer",
            &["name", "threads"],
            "dataflow_modeled_ms",
        ),
        &extract(
            &cur,
            "optimizer",
            &["name", "threads"],
            "dataflow_modeled_ms",
        ),
        cli.max_cost_increase,
        false,
    );
    if regressions > 0 {
        eprintln!("{regressions} regression(s) beyond threshold");
        ExitCode::FAILURE
    } else {
        println!("no regressions");
        ExitCode::SUCCESS
    }
}
