//! Ablation studies for the design choices DESIGN.md calls out, all at
//! the paper's 256M-int32 Fig. 6 operating point (model-only):
//!
//! 1. **Digital vs. analog bit-serial** — quantifies §IV's argument for
//!    digital PIM (the paper's §IX analog extension).
//! 2. **Walker pipelining** — the fetch/compute overlap of §V-C.
//! 3. **Row-popcount hardware** — §V-C's reduction-sum assumption.
//! 4. **GDL width** — why the narrow bank interface throttles
//!    bank-level PIM (§III), swept 64→1024 bits.
//! 5. **DDR4 vs. HBM2 interface** — the §IX HBM future-work direction.

use pim_dram::DramTiming;
use pimeval::pim_microcode::gen::BinaryOp;
use pimeval::{model, DataType, DeviceConfig, ObjectLayout, OpKind, PimTarget};

const N: u64 = 1 << 28;

fn latency(cfg: &DeviceConfig, kind: OpKind) -> f64 {
    let layout = ObjectLayout::compute(cfg, N, DataType::Int32, None).expect("fits");
    model::op_cost(cfg, kind, DataType::Int32, &layout).time_ms
}

fn energy(cfg: &DeviceConfig, kind: OpKind) -> f64 {
    let layout = ObjectLayout::compute(cfg, N, DataType::Int32, None).expect("fits");
    model::op_cost(cfg, kind, DataType::Int32, &layout).energy_mj
}

fn main() {
    let ops: [(&str, OpKind); 5] = [
        ("add", OpKind::Binary(BinaryOp::Add)),
        ("mul", OpKind::Binary(BinaryOp::Mul)),
        ("xor", OpKind::Binary(BinaryOp::Xor)),
        ("select", OpKind::Select),
        ("popcount", OpKind::Popcount),
    ];

    println!("Ablation 1: digital (DRAM-AP) vs analog (TRA/MAJ) bit-serial, 256M int32");
    println!(
        "{:<10} {:>14} {:>14} {:>8} {:>16} {:>16}",
        "Op", "digital (ms)", "analog (ms)", "ratio", "digital (mJ)", "analog (mJ)"
    );
    let digital = DeviceConfig::new(PimTarget::BitSerial, 32).model_only();
    let analog = DeviceConfig::new(PimTarget::AnalogBitSerial, 32).model_only();
    for (name, kind) in ops {
        let (td, ta) = (latency(&digital, kind), latency(&analog, kind));
        println!(
            "{:<10} {:>14.4} {:>14.4} {:>8.2} {:>16.3} {:>16.3}",
            name,
            td,
            ta,
            ta / td,
            energy(&digital, kind),
            energy(&analog, kind)
        );
    }

    println!("\nAblation 2: walker pipelining (Fulcrum, add on 256M int32)");
    let mut on = DeviceConfig::new(PimTarget::Fulcrum, 32).model_only();
    let mut off = on.clone();
    off.pe.walker_pipelining = false;
    let (t_on, t_off) = (
        latency(&on, OpKind::Binary(BinaryOp::Add)),
        latency(&off, OpKind::Binary(BinaryOp::Add)),
    );
    println!(
        "  pipelined {:>10.4} ms   serialized {:>10.4} ms   overlap saves {:.1}%",
        t_on,
        t_off,
        100.0 * (1.0 - t_on / t_off)
    );

    println!("\nAblation 3: bit-serial row-popcount hardware (reduction of 256M int32)");
    on = DeviceConfig::new(PimTarget::BitSerial, 32).model_only();
    let mut no_hw = on.clone();
    no_hw.pe.bitserial_row_popcount = false;
    let (t_hw, t_no) = (
        latency(&on, OpKind::RedSum),
        latency(&no_hw, OpKind::RedSum),
    );
    println!(
        "  with popcount HW {:>10.4} ms   host fallback {:>10.4} ms   HW wins {:.0}x",
        t_hw,
        t_no,
        t_no / t_hw
    );

    println!("\nAblation 4: GDL width (bank-level on 256M int32)");
    for (name, kind) in [
        ("copy (traffic-bound)", OpKind::Copy),
        ("add (compute-bound)", OpKind::Binary(BinaryOp::Add)),
    ] {
        print!("  {name:<22}");
        for width in [64usize, 128, 256, 512, 1024] {
            let mut cfg = DeviceConfig::new(PimTarget::BankLevel, 32).model_only();
            cfg.timing.gdl_width_bits = width;
            print!("  {width}b: {:.4} ms", latency(&cfg, kind));
        }
        println!();
    }

    println!("\nAblation 5: DDR4 vs HBM2 interface (bank-level, 256M int32)");
    println!(
        "{:<10} {:>12} {:>12} {:>8}",
        "Op", "DDR4 (ms)", "HBM2 (ms)", "ratio"
    );
    let ops_with_copy: Vec<(&str, OpKind)> = ops
        .iter()
        .copied()
        .chain([("copy", OpKind::Copy)])
        .collect();
    for (name, kind) in ops_with_copy {
        let ddr = DeviceConfig::new(PimTarget::BankLevel, 32).model_only();
        let mut hbm = ddr.clone();
        hbm.timing = DramTiming::hbm2_default();
        let (td, th) = (latency(&ddr, kind), latency(&hbm, kind));
        println!("{:<10} {:>12.4} {:>12.4} {:>8.2}", name, td, th, td / th);
    }
}
