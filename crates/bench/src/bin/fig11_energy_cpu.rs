//! Regenerates Fig. 11: energy efficiency of the three PIM variants
//! versus the baseline CPU, 32 ranks (kernel + copies + background +
//! host execution + CPU idle energy on the PIM side; TDP × runtime on
//! the CPU side).

use pim_bench_harness::{
    cli_params, export, fmt_ratio, gmean_or_nan, positives, run_all_targets, suite_names,
};
use pimeval::PimTarget;
use std::collections::BTreeMap;

fn main() {
    let params = cli_params(0.25);
    let records = run_all_targets(32, &params);
    let mut by: BTreeMap<(String, String), f64> = BTreeMap::new();
    for r in &records {
        by.insert(
            (r.name.clone(), r.target.to_string()),
            r.energy_reduction_cpu(),
        );
    }
    println!(
        "Fig. 11: energy reduction vs baseline CPU — 32 ranks, scale {}",
        params.scale
    );
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "Benchmark", "Bit-serial", "Fulcrum", "Bank-level"
    );
    let mut per_target: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for name in suite_names() {
        print!("{name:<22}");
        for t in PimTarget::ALL {
            let v = by[&(name.to_string(), t.to_string())];
            per_target.entry(t.to_string()).or_default().push(v);
            print!(" {:>12}", fmt_ratio(v));
        }
        println!();
    }
    print!("{:<22}", "Gmean");
    for t in PimTarget::ALL {
        print!(
            " {:>12}",
            fmt_ratio(gmean_or_nan(&positives(&per_target[&t.to_string()])))
        );
    }
    println!();
    export::maybe_export(&records);
}
