//! Regenerates Fig. 1: the PIMbench diversity dendrogram.
//!
//! Per-benchmark features follow the paper: instruction mix (the 16
//! Fig. 8 op-category fractions), memory access pattern
//! (sequential/random flags), execution type (PIM vs PIM + Host, taken
//! as the host time fraction), and arithmetic intensity. Features are
//! standardized, projected with PCA, and clustered with average-linkage
//! agglomerative clustering.

use pim_analysis::{cluster, pca::Pca, standardize};
use pim_bench_harness::{cli_params, run_suite};
use pimbench::all_benchmarks;
use pimeval::{DeviceConfig, OpCategory, PimTarget};

fn main() {
    let params = cli_params(0.25);
    let records = run_suite(&DeviceConfig::new(PimTarget::Fulcrum, 32), &params);
    let suite = all_benchmarks();

    let mut features: Vec<Vec<f64>> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    for (bench, record) in suite.iter().zip(&records) {
        let spec = bench.spec();
        let total: u64 = record.stats.categories.values().sum();
        let mut row: Vec<f64> = OpCategory::ALL
            .iter()
            .map(|c| *record.stats.categories.get(c).unwrap_or(&0) as f64 / total.max(1) as f64)
            .collect();
        row.push(f64::from(spec.sequential));
        row.push(f64::from(spec.random));
        let (_, host_frac, _) = record.stats.breakdown();
        row.push(host_frac);
        let ai = bench.cpu_profile(&params).arithmetic_intensity();
        row.push(ai.min(100.0).ln_1p());
        features.push(row);
        labels.push(spec.name.to_string());
    }

    let z = standardize(&features);
    let pca = Pca::fit(&z, 6);
    let projected = pca.transform(&z);
    let dendro = cluster::linkage(&projected);

    println!(
        "Fig. 1: PIMbench similarity dendrogram (scale {})\n",
        params.scale
    );
    let label_refs: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
    print!("{}", dendro.render(&label_refs));
    println!(
        "\nMerge table (cluster ids; leaves 0..{}):",
        labels.len() - 1
    );
    for (i, m) in dendro.merges().iter().enumerate() {
        println!(
            "  step {:>2}: {:>2} + {:>2} at distance {:.4} (size {})",
            i, m.a, m.b, m.distance, m.size
        );
    }
    println!(
        "\nExplained variance (top components): {:?}",
        pca.eigenvalues()
    );
}
