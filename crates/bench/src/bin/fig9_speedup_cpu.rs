//! Regenerates Fig. 9: speedup of the three PIM variants (32 ranks)
//! over the baseline CPU, both with data movement ("Kernel + Data
//! Movement") and without ("Kernel"), plus the geometric mean.

use pim_bench_harness::{cli_params, export, fmt_ratio, gmean_or_nan, positives, run_suite};
use pimeval::{DeviceConfig, PimTarget};

fn main() {
    let params = cli_params(0.25);
    println!(
        "Fig. 9: speedup over baseline CPU — 32 ranks, scale {}",
        params.scale
    );
    let mut all_records = Vec::new();
    for target in PimTarget::ALL {
        println!("\n[{target}]");
        println!(
            "{:<22} {:>18} {:>12}",
            "Benchmark", "Kernel+DataMove", "Kernel"
        );
        let records = run_suite(&DeviceConfig::new(target, 32), &params);
        let (mut totals, mut kernels) = (Vec::new(), Vec::new());
        for r in &records {
            let (st, sk) = (r.speedup_cpu_total(), r.speedup_cpu_kernel());
            totals.push(st);
            kernels.push(sk);
            println!("{:<22} {:>18} {:>12}", r.name, fmt_ratio(st), fmt_ratio(sk));
        }
        println!(
            "{:<22} {:>18} {:>12}",
            "Gmean",
            fmt_ratio(gmean_or_nan(&positives(&totals))),
            fmt_ratio(gmean_or_nan(&positives(&kernels)))
        );
        all_records.extend(records);
    }
    export::maybe_export(&all_records);
}
