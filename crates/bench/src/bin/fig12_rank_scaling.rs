//! Regenerates Fig. 12: rank-scaling sensitivity — kernel-only speedup
//! of 8/16/32 ranks over 4 ranks, with capacity scaling alongside ranks.
//! Data movement latency is excluded, as in the paper.

use pim_bench_harness::{cli_params, run_suite};
use pimeval::{DeviceConfig, PimTarget};
use std::collections::BTreeMap;

fn main() {
    let params = cli_params(0.1);
    const RANKS: [usize; 4] = [4, 8, 16, 32];
    println!(
        "Fig. 12: kernel-only speedup over #Rank=4 (capacity scales with ranks), scale {}",
        params.scale
    );
    for target in PimTarget::ALL {
        // kernel time (PIM kernels + host phases, no copies) per rank count.
        let mut times: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for ranks in RANKS {
            for r in run_suite(&DeviceConfig::new(target, ranks), &params) {
                times
                    .entry(r.name.clone())
                    .or_default()
                    .push(r.pim_kernel_ms());
            }
        }
        println!("\n[{target}]");
        println!(
            "{:<22} {:>10} {:>10} {:>10}",
            "Benchmark", "#Rank=8", "#Rank=16", "#Rank=32"
        );
        for r in run_suite(&DeviceConfig::new(target, 4), &params) {
            let t = &times[&r.name];
            println!(
                "{:<22} {:>10.2} {:>10.2} {:>10.2}",
                r.name,
                t[0] / t[1],
                t[0] / t[2],
                t[0] / t[3]
            );
        }
    }
}
