//! Regenerates Fig. 8: PIM operation frequency distribution per
//! benchmark (percent of total operations in each Fig. 8 category).
//!
//! Op mixes are architecture-independent (the same API stream runs on
//! every target), so one Fulcrum pass suffices.

use pim_bench_harness::{cli_params, export, run_suite};
use pimeval::{DeviceConfig, OpCategory, PimTarget};

fn main() {
    let params = cli_params(0.25);
    println!(
        "Fig. 8: PIM operation frequency distribution (% of ops), scale {}",
        params.scale
    );
    print!("{:<22}", "Benchmark");
    for c in OpCategory::ALL {
        print!(" {:>9}", c.label());
    }
    println!();
    let records = run_suite(&DeviceConfig::new(PimTarget::Fulcrum, 32), &params);
    for r in &records {
        let total: u64 = r.stats.categories.values().sum();
        print!("{:<22}", r.name);
        for c in OpCategory::ALL {
            let n = *r.stats.categories.get(&c).unwrap_or(&0);
            print!(" {:>9.2}", 100.0 * n as f64 / total.max(1) as f64);
        }
        println!();
    }
    export::maybe_export(&records);
}
