//! Std-only structural validator for the JSON documents this workspace
//! exports, used by CI before artifacts are uploaded.
//!
//! ```text
//! schema_check [--stats <file>] [--metrics <file>]
//!              [--bench <file>] [--trace <file>]
//! ```
//!
//! Each flag names a document kind and checks the keys and types that
//! downstream consumers (plot scripts, `bench_regress`, Perfetto) rely
//! on. Unknown fields are always permitted — schemas grow additively —
//! but a missing required key, a wrong type, or an undeclared-newer
//! `schema_version` fails the check. Exit codes: 0 all valid, 1 at
//! least one violation, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use pimeval::trace::json::Json;

/// Accumulates violations with a document-relative path for each.
struct Checker {
    doc: String,
    errors: Vec<String>,
}

impl Checker {
    fn new(doc: &str) -> Self {
        Checker {
            doc: doc.to_string(),
            errors: Vec::new(),
        }
    }

    fn fail(&mut self, path: &str, what: &str) {
        self.errors.push(format!("{}: {path}: {what}", self.doc));
    }

    fn require_num(&mut self, v: &Json, path: &str, key: &str) -> Option<f64> {
        match v.get(key).and_then(Json::as_f64) {
            Some(n) => Some(n),
            None => {
                self.fail(path, &format!("missing or non-numeric \"{key}\""));
                None
            }
        }
    }

    fn require_str(&mut self, v: &Json, path: &str, key: &str) {
        if v.get(key).and_then(Json::as_str).is_none() {
            self.fail(path, &format!("missing or non-string \"{key}\""));
        }
    }

    fn require_array<'a>(&mut self, v: &'a Json, path: &str, key: &str) -> Option<&'a [Json]> {
        match v.get(key).and_then(Json::as_array) {
            Some(a) => Some(a),
            None => {
                self.fail(path, &format!("missing or non-array \"{key}\""));
                None
            }
        }
    }

    fn require_object<'a>(&mut self, v: &'a Json, path: &str, key: &str) -> Option<&'a Json> {
        match v.get(key) {
            Some(o) if o.as_object().is_some() => Some(o),
            _ => {
                self.fail(path, &format!("missing or non-object \"{key}\""));
                None
            }
        }
    }
}

/// One histogram snapshot: count plus the quantile summary.
fn check_histogram(c: &mut Checker, h: &Json, path: &str) {
    for key in ["count", "sum", "min", "max", "p50", "p90", "p99"] {
        c.require_num(h, path, key);
    }
}

/// One `InstrumentsSnapshot`: counters/gauges numeric maps, histogram
/// map of quantile summaries.
fn check_instruments(c: &mut Checker, v: &Json, path: &str) {
    for section in ["counters", "gauges"] {
        if let Some(obj) = c.require_object(v, path, section) {
            for (k, val) in obj.as_object().expect("checked above") {
                if val.as_f64().is_none() {
                    c.fail(&format!("{path}.{section}.{k}"), "non-numeric value");
                }
            }
        }
    }
    if let Some(hists) = c.require_object(v, path, "histograms") {
        for (k, h) in hists.as_object().expect("checked above") {
            check_histogram(c, h, &format!("{path}.histograms.{k}"));
        }
    }
}

/// One `MetricsSnapshot` object as produced by `MetricsSnapshot::to_json`.
fn check_metrics_snapshot(c: &mut Checker, m: &Json, path: &str) {
    c.require_num(m, path, "schema_version");
    c.require_num(m, path, "clock_ms");
    if let Some(agg) = c.require_object(m, path, "aggregate") {
        check_instruments(c, agg, &format!("{path}.aggregate"));
    }
    if let Some(shards) = c.require_array(m, path, "per_shard") {
        for (i, s) in shards.iter().enumerate() {
            check_instruments(c, s, &format!("{path}.per_shard[{i}]"));
        }
    }
    // profile is optional (present only under --profile).
    if let Some(p) = m.get("profile") {
        let ppath = format!("{path}.profile");
        c.require_num(p, &ppath, "bin_ms");
        let bins = c.require_num(p, &ppath, "bins").map(|b| b as usize);
        if let Some(rows) = c.require_array(p, &ppath, "shard_busy") {
            for (i, row) in rows.iter().enumerate() {
                match row.as_array() {
                    Some(r) if Some(r.len()) == bins || bins.is_none() => {}
                    Some(r) => c.fail(
                        &format!("{ppath}.shard_busy[{i}]"),
                        &format!("{} bins, expected {}", r.len(), bins.unwrap_or(0)),
                    ),
                    None => c.fail(&format!("{ppath}.shard_busy[{i}]"), "not an array"),
                }
            }
        }
        c.require_array(p, &ppath, "interconnect_bytes");
    }
}

/// `pimbench --stats-json` document: per-run Listing-3 statistics.
fn check_stats(c: &mut Checker, doc: &Json) {
    let Some(runs) = c.require_array(doc, "$", "runs") else {
        return;
    };
    for (i, run) in runs.iter().enumerate() {
        let path = format!("runs[{i}]");
        c.require_str(run, &path, "benchmark");
        let Some(stats) = c.require_object(run, &path, "stats") else {
            continue;
        };
        let spath = format!("{path}.stats");
        c.require_num(stats, &spath, "schema_version");
        c.require_str(stats, &spath, "target");
        if let Some(totals) = c.require_object(stats, &spath, "totals") {
            c.require_num(totals, &format!("{spath}.totals"), "kernel_time_ms");
        }
        if let Some(m) = stats.get("metrics") {
            check_metrics_snapshot(c, m, &format!("{spath}.metrics"));
        }
        // dram_protocol is optional (present only under the bank-FSM
        // timing backend), but when present it must carry the counters.
        if let Some(dp) = stats.get("dram_protocol") {
            let dpath = format!("{spath}.dram_protocol");
            for key in [
                "activations",
                "precharges",
                "reads",
                "writes",
                "row_hits",
                "row_misses",
                "row_hit_rate",
            ] {
                c.require_num(dp, &dpath, key);
            }
        }
        // optimizer is optional (present only when the dataflow
        // optimizer fired), but when present it must carry every counter.
        if let Some(opt) = stats.get("optimizer") {
            let opath = format!("{spath}.optimizer");
            for key in [
                "cse_hits",
                "dead_objects_removed",
                "subgraphs",
                "target_switches",
                "inferred_layouts",
            ] {
                c.require_num(opt, &opath, key);
            }
        }
    }
}

/// `pimbench --metrics-json` document: one snapshot per run plus the
/// optional wall-clock pool section.
fn check_metrics(c: &mut Checker, doc: &Json) {
    c.require_num(doc, "$", "schema_version");
    let Some(runs) = c.require_array(doc, "$", "runs") else {
        return;
    };
    for (i, run) in runs.iter().enumerate() {
        let path = format!("runs[{i}]");
        c.require_str(run, &path, "benchmark");
        c.require_str(run, &path, "target");
        if let Some(m) = c.require_object(run, &path, "metrics") {
            check_metrics_snapshot(c, m, &format!("{path}.metrics"));
        }
    }
    if let Some(pool) = doc.get("pool") {
        for key in ["fanouts", "sequential_runs", "caller_wait_ns"] {
            c.require_num(pool, "pool", key);
        }
        c.require_array(pool, "pool", "workers");
    }
}

/// `bench_parallel` export (`BENCH_parallel.json`).
fn check_bench(c: &mut Checker, doc: &Json) {
    c.require_num(doc, "$", "threads_default");
    if let Some(runs) = c.require_array(doc, "$", "runs") {
        for (i, run) in runs.iter().enumerate() {
            let path = format!("runs[{i}]");
            c.require_str(run, &path, "name");
            for key in ["threads", "mean_ns", "min_ns"] {
                c.require_num(run, &path, key);
            }
        }
    }
    if let Some(entries) = c.require_array(doc, "$", "rank_scaling") {
        for (i, e) in entries.iter().enumerate() {
            let path = format!("rank_scaling[{i}]");
            c.require_str(e, &path, "name");
            for key in [
                "ranks",
                "kernel_ms",
                "interconnect_ms",
                "interconnect_bytes",
            ] {
                c.require_num(e, &path, key);
            }
        }
    }
    if let Some(entries) = c.require_array(doc, "$", "fidelity") {
        for (i, e) in entries.iter().enumerate() {
            let path = format!("fidelity[{i}]");
            c.require_str(e, &path, "name");
            c.require_str(e, &path, "target");
            for key in [
                "analytical_ms",
                "fsm_ms",
                "fsm_thrash_ms",
                "delta_pct",
                "thrash_slowdown",
                "row_hits",
                "row_misses",
                "row_hit_rate",
            ] {
                c.require_num(e, &path, key);
            }
        }
    }
    // optimizer is optional (older exports predate the dataflow
    // optimizer), but when present each entry must carry both cost axes
    // and the rewrite counters.
    if let Some(entries) = doc.get("optimizer").and_then(Json::as_array) {
        for (i, e) in entries.iter().enumerate() {
            let path = format!("optimizer[{i}]");
            c.require_str(e, &path, "name");
            for key in [
                "threads",
                "peephole_modeled_ms",
                "dataflow_modeled_ms",
                "modeled_cost_ratio",
                "cse_hits",
                "graph_fusions",
            ] {
                c.require_num(e, &path, key);
            }
        }
    }
}

/// Chrome-trace-event JSON: every entry needs a phase, and only the
/// phases the exporter emits are accepted.
fn check_trace(c: &mut Checker, doc: &Json) {
    let Some(events) = c.require_array(doc, "$", "traceEvents") else {
        return;
    };
    for (i, e) in events.iter().enumerate() {
        match e.get("ph").and_then(Json::as_str) {
            Some("X") | Some("i") | Some("M") | Some("C") => {}
            Some(other) => c.fail(
                &format!("traceEvents[{i}]"),
                &format!("unexpected phase {other:?}"),
            ),
            None => c.fail(&format!("traceEvents[{i}]"), "missing \"ph\""),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        println!(
            "schema_check [--stats <file>] [--metrics <file>] \
             [--bench <file>] [--trace <file>]"
        );
        return if args.is_empty() {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        };
    }
    let mut checks: Vec<(String, PathBuf)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            kind @ ("--stats" | "--metrics" | "--bench" | "--trace") => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("error: {kind} needs a file");
                    return ExitCode::from(2);
                };
                checks.push((
                    kind.trim_start_matches('-').to_string(),
                    PathBuf::from(path),
                ));
                i += 2;
            }
            other => {
                eprintln!("error: unknown argument {other}");
                return ExitCode::from(2);
            }
        }
    }
    let mut errors = Vec::new();
    for (kind, path) in &checks {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                errors.push(format!("{}: not valid JSON: {e}", path.display()));
                continue;
            }
        };
        let mut c = Checker::new(&path.display().to_string());
        match kind.as_str() {
            "stats" => check_stats(&mut c, &doc),
            "metrics" => check_metrics(&mut c, &doc),
            "bench" => check_bench(&mut c, &doc),
            "trace" => check_trace(&mut c, &doc),
            _ => unreachable!("kinds are filtered during parsing"),
        }
        if c.errors.is_empty() {
            println!("{} ({kind}): ok", path.display());
        }
        errors.extend(c.errors);
    }
    if errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("schema violation: {e}");
        }
        eprintln!("{} violation(s)", errors.len());
        ExitCode::FAILURE
    }
}
