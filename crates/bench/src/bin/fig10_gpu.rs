//! Regenerates Fig. 10: (a) speedup and (b) energy reduction of the
//! three PIM variants over the A100 GPU baseline, 32 ranks. Data
//! movement and CPU idle energy are factored out on both sides (§VI).

use pim_bench_harness::{
    cli_params, export, fmt_ratio, gmean_or_nan, positives, run_all_targets, suite_names,
};
use pimeval::PimTarget;
use std::collections::BTreeMap;

fn main() {
    let which = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "both".into());
    let params = cli_params(0.25);
    let records = run_all_targets(32, &params);
    let mut by: BTreeMap<(String, String), (f64, f64)> = BTreeMap::new();
    for r in &records {
        by.insert(
            (r.name.clone(), r.target.to_string()),
            (r.speedup_gpu(), r.energy_reduction_gpu()),
        );
    }
    let emit = |title: &str, pick: fn(&(f64, f64)) -> f64| {
        println!("\nFig. 10{title} — 32 ranks, scale {}", params.scale);
        println!(
            "{:<22} {:>12} {:>12} {:>12}",
            "Benchmark", "Bit-serial", "Fulcrum", "Bank-level"
        );
        let mut per_target: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for name in suite_names() {
            print!("{name:<22}");
            for t in PimTarget::ALL {
                let v = pick(&by[&(name.to_string(), t.to_string())]);
                per_target.entry(t.to_string()).or_default().push(v);
                print!(" {:>12}", fmt_ratio(v));
            }
            println!();
        }
        print!("{:<22}", "Gmean");
        for t in PimTarget::ALL {
            print!(
                " {:>12}",
                fmt_ratio(gmean_or_nan(&positives(&per_target[&t.to_string()])))
            );
        }
        println!();
    };
    if which == "perf" || which == "both" {
        emit("a: speedup over baseline GPU", |v| v.0);
    }
    if which == "energy" || which == "both" {
        emit("b: energy reduction vs GPU", |v| v.1);
    }
    export::maybe_export(&records);
}
