//! Regenerates Fig. 13: kernel-only speedup of 32 ranks over 1 rank at
//! the *same total capacity* (subarrays-per-bank rescaled inversely), as
//! in the paper's "Rank (1 vs. 32) sensitivity analysis".

use pim_bench_harness::{cli_params, run_suite};
use pim_dram::DramGeometry;
use pimeval::{DeviceConfig, PimTarget};

fn main() {
    let params = cli_params(0.1);
    let base = DramGeometry::paper_default(32);
    println!(
        "Fig. 13: kernel-only speedup of #Rank=32 over #Rank=1 at equal capacity, scale {}",
        params.scale
    );
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "Benchmark", "Bit-serial", "Fulcrum", "Bank-level"
    );
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for (ti, target) in PimTarget::ALL.iter().enumerate() {
        let one_rank =
            DeviceConfig::new(*target, 1).with_geometry(base.with_ranks_same_capacity(1));
        let full = DeviceConfig::new(*target, 32).with_geometry(base);
        let slow = run_suite(&one_rank, &params);
        let fast = run_suite(&full, &params);
        for (i, (s, f)) in slow.iter().zip(&fast).enumerate() {
            if ti == 0 {
                names.push(s.name.clone());
                rows.push(Vec::new());
            }
            rows[i].push(s.pim_kernel_ms() / f.pim_kernel_ms());
        }
    }
    for (name, row) in names.iter().zip(&rows) {
        println!(
            "{:<22} {:>12.2} {:>12.2} {:>12.2}",
            name, row[0], row[1], row[2]
        );
    }
}
