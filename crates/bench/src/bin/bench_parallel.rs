//! Functional-mode throughput of the parallel execution engine:
//! element-wise ops and reductions on a multi-million-element device,
//! plus one end-to-end VGG-13 inference, each measured across a
//! `--threads` sweep (default `1,2,4`) so the export's `speedups`
//! section is populated even on hosts whose default worker count is 1.
//! A stream section times fusible command pipelines both eagerly and
//! through a [`pimeval::CommandStream`], reporting host wall-clock and
//! modeled device cost side by side.
//!
//! Two pool-specific sections exercise the persistent work-stealing
//! executor directly: a dispatch-latency microbenchmark (a tiny
//! `par_map_into` through the pool vs. an inline replica of the old
//! scoped-spawn engine) and a deliberately skewed RoundRobin shard map
//! with mixed bit-widths, timed with stealing on (oversubscribed
//! chunks) and off (one chunk per lane — the even split).
//!
//! Writes the measurements, per-op speedups, stream-vs-eager
//! comparisons, a `--ranks` sharding sweep (default `1,2,4`; each
//! point runs the op mix on a device sharded per DRAM rank), the
//! imbalance section, and the fan-out overhead section to
//! `BENCH_parallel.json` (override with `--out <path>`).
//! On a single-core host the speedup columns honestly report ~1×; the
//! engine headroom shows on multi-core runners (see the CI bench job).

use pim_bench_harness::export::{
    parallel_runs_to_json, FanoutOverhead, FidelityRun, ImbalanceRun, OptimizerRun, ParallelRun,
    RankScalingRun, StreamVsEager,
};
use pim_bench_harness::microbench::{bench, bench_throughput, group};
use pim_bench_harness::run_one;
use pimbench::Params;
use pimeval::pim_dram::DramGeometry;
use pimeval::{
    exec, DataType, Device, DeviceConfig, OptLevel, PimTarget, RowPattern, ShardPolicy,
    TimingBackend,
};

/// Elements per device object: large enough that every op fans out
/// across many `exec::MIN_CHUNK` chunks.
const N: u64 = 4 * 1024 * 1024;

fn engine_runs(threads: usize, out: &mut Vec<ParallelRun>) {
    exec::with_thread_count(threads, || {
        let mut dev = Device::new(DeviceConfig::new(PimTarget::Fulcrum, 2)).unwrap();
        let host: Vec<i32> = (0..N as i32)
            .map(|i| i.wrapping_mul(2654435761u32 as i32))
            .collect();
        let a = dev.alloc(N, DataType::Int32).unwrap();
        let b = dev.alloc_associated(a, DataType::Int32).unwrap();
        let dst = dev.alloc_associated(a, DataType::Int32).unwrap();
        dev.copy_to_device(&host, a).unwrap();
        dev.copy_to_device(&host, b).unwrap();

        group(&format!("functional ops, {N} × int32, {threads} thread(s)"));
        let mut record = |name: &str, m: pim_bench_harness::microbench::Measurement| {
            out.push(ParallelRun {
                name: name.into(),
                threads,
                elems: N,
                mean_ns: m.mean.as_nanos(),
                min_ns: m.min.as_nanos(),
            });
        };
        record(
            "add",
            bench_throughput("add", N, || dev.add(a, b, dst).unwrap()),
        );
        record(
            "mul",
            bench_throughput("mul", N, || dev.mul(a, b, dst).unwrap()),
        );
        record(
            "lt",
            bench_throughput("lt", N, || dev.lt(a, b, dst).unwrap()),
        );
        record(
            "red_sum",
            bench_throughput("red_sum", N, || dev.red_sum(a).unwrap()),
        );
        record(
            "copy_to_device",
            bench_throughput("copy_to_device", N, || {
                dev.copy_to_device(&host, dst).unwrap()
            }),
        );

        // End-to-end: a full (scaled-down) VGG-13 inference through the
        // benchmark harness — dominated by functional GEMM/conv work.
        let cfg = DeviceConfig::new(PimTarget::Fulcrum, 2);
        let params = Params {
            scale: 0.01,
            seed: 42,
            ..Params::default()
        };
        let m = bench("vgg13-e2e", || run_one("VGG-13", &cfg, &params));
        out.push(ParallelRun {
            name: "vgg13-e2e".into(),
            threads,
            elems: 0,
            mean_ns: m.mean.as_nanos(),
            min_ns: m.min.as_nanos(),
        });
    });
}

/// Raw bit-serial VM throughput on compiled kernels: binds one matrix
/// per program (regions sized from the kernel signature) and times
/// `Vm::run`, which dispatches to the word-packed compiled path. One
/// element per column, so throughput is columns per run.
fn vm_kernel_runs(threads: usize, out: &mut Vec<ParallelRun>) {
    use pim_dram::BitMatrix;
    use pim_microcode::cache::{self, ProgKey};
    use pim_microcode::gen::BinaryOp;
    use pim_microcode::vm::{Region, Vm};

    const COLS: usize = 1 << 20;
    exec::with_thread_count(threads, || {
        group(&format!(
            "compiled VM kernels, {COLS} × int32 columns, {threads} thread(s)"
        ));
        for (name, key) in [
            ("vm_add32", ProgKey::Binary(BinaryOp::Add, 32)),
            ("vm_mul32", ProgKey::Binary(BinaryOp::Mul, 32)),
            ("vm_red_sum32", ProgKey::RedSum(32, true)),
        ] {
            let prog = cache::program(key);
            let sig = prog.kernel().signature().clone();
            let slots = prog.operand_slots() as usize;
            let slot_rows = |s: usize| -> u32 { sig.slot_rows.get(s).copied().unwrap_or(0).max(1) };
            let temp_rows = prog.temp_rows().max(sig.temp_rows).max(1);
            let total: u32 = (0..slots).map(slot_rows).sum::<u32>() + temp_rows;
            let mut mat = BitMatrix::new(total as usize, COLS);
            for (i, w) in mat.words_mut().iter_mut().enumerate() {
                *w = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
            let mut vm = Vm::new(&mut mat, slots);
            let mut base = 0usize;
            for s in 0..slots {
                vm.bind(s, Region::new(base, slot_rows(s)));
                base += slot_rows(s) as usize;
            }
            vm.bind_temp(Region::new(base, temp_rows));
            let m = bench_throughput(name, COLS as u64, || vm.run(&prog).unwrap());
            assert!(
                vm.last_run_compiled(),
                "{name} fell back to the interpreter"
            );
            out.push(ParallelRun {
                name: name.into(),
                threads,
                elems: COLS as u64,
                mean_ns: m.mean.as_nanos(),
                min_ns: m.min.as_nanos(),
            });
        }
    });
}

/// Times the fusible pipelines eagerly and streamed. Wall-clock comes
/// from the microbench loop; modeled cost from one instrumented pass of
/// each variant (`reset_stats` between them so the kernel-time delta is
/// exactly the pipeline's).
fn stream_vs_eager_runs(threads: usize, out: &mut Vec<StreamVsEager>) {
    exec::with_thread_count(threads, || {
        let mut dev = Device::new(DeviceConfig::new(PimTarget::Fulcrum, 2)).unwrap();
        let host: Vec<i32> = (0..N as i32)
            .map(|i| i.wrapping_mul(2654435761u32 as i32))
            .collect();
        let a = dev.alloc(N, DataType::Int32).unwrap();
        let b = dev.alloc_associated(a, DataType::Int32).unwrap();
        let t = dev.alloc_associated(a, DataType::Int32).unwrap();
        let dst = dev.alloc_associated(a, DataType::Int32).unwrap();
        dev.copy_to_device(&host, a).unwrap();
        dev.copy_to_device(&host, b).unwrap();

        group(&format!(
            "stream vs eager, {N} × int32, {threads} thread(s)"
        ));
        let mut record = |name: &str,
                          dev: &mut Device,
                          eager: &mut dyn FnMut(&mut Device),
                          stream: &mut dyn FnMut(&mut Device)| {
            let me = bench_throughput(&format!("{name} (eager)"), N, || eager(&mut *dev));
            let ms = bench_throughput(&format!("{name} (stream)"), N, || stream(&mut *dev));
            dev.reset_stats();
            eager(dev);
            let eager_modeled_ms = dev.stats().kernel_time_ms();
            dev.reset_stats();
            stream(dev);
            let stream_modeled_ms = dev.stats().kernel_time_ms();
            out.push(StreamVsEager {
                name: name.into(),
                threads,
                elems: N,
                eager_mean_ns: me.mean.as_nanos(),
                eager_min_ns: me.min.as_nanos(),
                stream_mean_ns: ms.mean.as_nanos(),
                stream_min_ns: ms.min.as_nanos(),
                eager_modeled_ms,
                stream_modeled_ms,
            });
        };

        // mul_scalar + add → one scaled_add command after the flush.
        record(
            "axpy-pair",
            &mut dev,
            &mut |d| {
                d.mul_scalar(a, 7, t).unwrap();
                d.add(t, b, dst).unwrap();
            },
            &mut |d| {
                let mut s = d.stream();
                s.mul_scalar(a, 7, t).add(t, b, dst);
                s.flush().unwrap();
            },
        );
        // lt + select → one fused compare-select (the mask dies unread).
        record(
            "lt-select",
            &mut dev,
            &mut |d| {
                d.lt(a, b, t).unwrap();
                d.select(t, a, b, dst).unwrap();
            },
            &mut |d| {
                let mut s = d.stream();
                s.lt(a, b, t).select(t, a, b, dst);
                s.flush().unwrap();
            },
        );
    });
}

/// Peephole vs. dataflow optimizer on a pipeline the adjacent-pair
/// peephole structurally cannot improve: a K-means-style distance
/// chain whose weighted sum is consumed *non-adjacently* (an unrelated
/// mask sits between the scalar multiply and the add) and whose
/// distance is recomputed verbatim later in the stream. The graph
/// passes fuse across the gap and rewrite the recompute into copies;
/// level 0 executes all seven commands as recorded.
fn optimizer_runs(threads: usize, out: &mut Vec<OptimizerRun>) {
    exec::with_thread_count(threads, || {
        let mut dev = Device::new(DeviceConfig::new(PimTarget::Fulcrum, 2)).unwrap();
        let host: Vec<i32> = (0..N as i32)
            .map(|i| i.wrapping_mul(2654435761u32 as i32))
            .collect();
        let x = dev.alloc(N, DataType::Int32).unwrap();
        let c = dev.alloc_associated(x, DataType::Int32).unwrap();
        let b = dev.alloc_associated(x, DataType::Int32).unwrap();
        let d1 = dev.alloc_associated(x, DataType::Int32).unwrap();
        let a1 = dev.alloc_associated(x, DataType::Int32).unwrap();
        let s = dev.alloc_associated(x, DataType::Int32).unwrap();
        let msk = dev.alloc_associated(x, DataType::Int32).unwrap();
        let o = dev.alloc_associated(x, DataType::Int32).unwrap();
        let d2 = dev.alloc_associated(x, DataType::Int32).unwrap();
        let a2 = dev.alloc_associated(x, DataType::Int32).unwrap();
        dev.copy_to_device(&host, x).unwrap();
        dev.copy_to_device(&host, c).unwrap();
        dev.copy_to_device(&host, b).unwrap();

        let pipeline = |d: &mut Device, level: OptLevel| {
            let mut st = d.stream();
            st.set_opt(level);
            st.sub(x, c, d1).abs(d1, a1);
            st.mul_scalar(a1, 3, s); // producer …
            st.lt(x, c, msk); // … separated from its consumer
            st.add(s, b, o); // → graph-only scaled-add fusion
            st.sub(x, c, d2).abs(d2, a2); // verbatim recompute → CSE
            st.flush().unwrap()
        };

        group(&format!(
            "optimizer: peephole vs dataflow, {N} × int32, {threads} thread(s)"
        ));
        let mp = bench_throughput("kmeans-dist-reuse (opt 0)", N, || {
            pipeline(&mut dev, OptLevel::O0);
        });
        let md = bench_throughput("kmeans-dist-reuse (opt 2)", N, || {
            pipeline(&mut dev, OptLevel::O2);
        });

        dev.reset_stats();
        let sp = pipeline(&mut dev, OptLevel::O0);
        let peephole_modeled_ms = dev.stats().kernel_time_ms();
        let peep: Vec<Vec<i32>> = [o, d2, a2]
            .iter()
            .map(|&id| dev.to_vec(id).unwrap())
            .collect();
        dev.reset_stats();
        let sd = pipeline(&mut dev, OptLevel::O2);
        let dataflow_modeled_ms = dev.stats().kernel_time_ms();
        let flow: Vec<Vec<i32>> = [o, d2, a2]
            .iter()
            .map(|&id| dev.to_vec(id).unwrap())
            .collect();
        assert_eq!(peep, flow, "optimizer levels must be bit-identical");
        assert_eq!(sp.fused_scaled_add + sp.fused_cmp_select, 0);
        assert!(sd.cse_hits >= 2, "recompute must CSE into copies");
        assert!(
            dataflow_modeled_ms < peephole_modeled_ms,
            "dataflow must strictly beat the peephole: {dataflow_modeled_ms} ms \
             vs {peephole_modeled_ms} ms"
        );
        out.push(OptimizerRun {
            name: "kmeans-dist-reuse".into(),
            threads,
            elems: N,
            peephole_mean_ns: mp.mean.as_nanos(),
            peephole_min_ns: mp.min.as_nanos(),
            dataflow_mean_ns: md.mean.as_nanos(),
            dataflow_min_ns: md.min.as_nanos(),
            peephole_modeled_ms,
            dataflow_modeled_ms,
            cse_hits: sd.cse_hits,
            graph_fusions: sd.fused_scaled_add + sd.fused_cmp_select,
        });
    });
}

/// Sweeps the same op mix over rank-sharded devices: `ranks` DRAM
/// ranks, one execution shard per rank. Each op is timed on the host
/// and then run once instrumented so the export records the modeled
/// kernel time alongside the (separately ledgered) cross-rank
/// interconnect traffic.
fn rank_scaling_runs(ranks_list: &[usize], out: &mut Vec<RankScalingRun>) {
    let host: Vec<i32> = (0..N as i32)
        .map(|i| i.wrapping_mul(2654435761u32 as i32))
        .collect();
    for &ranks in ranks_list {
        let cfg = DeviceConfig::new(PimTarget::Fulcrum, ranks.max(1)).sharded_per_rank();
        let mut dev = Device::new(cfg).unwrap();
        let a = dev.alloc(N, DataType::Int32).unwrap();
        let b = dev.alloc_associated(a, DataType::Int32).unwrap();
        let dst = dev.alloc_associated(a, DataType::Int32).unwrap();
        dev.copy_to_device(&host, a).unwrap();
        dev.copy_to_device(&host, b).unwrap();

        group(&format!("rank scaling, {N} × int32, {ranks} rank-shard(s)"));
        let mut record = |name: &str, dev: &mut Device, op: &mut dyn FnMut(&mut Device)| {
            let m = bench_throughput(name, N, || op(&mut *dev));
            dev.reset_stats();
            op(dev);
            out.push(RankScalingRun {
                name: name.into(),
                ranks,
                elems: N,
                mean_ns: m.mean.as_nanos(),
                min_ns: m.min.as_nanos(),
                kernel_ms: dev.stats().kernel_time_ms(),
                interconnect_ms: dev.stats().interconnect.time_ms,
                interconnect_bytes: dev.stats().interconnect.total_bytes(),
            });
        };
        record("add", &mut dev, &mut |d| d.add(a, b, dst).unwrap());
        record("red_sum", &mut dev, &mut |d| {
            d.red_sum(a).unwrap();
        });
        record("copy_to_device", &mut dev, &mut |d| {
            d.copy_to_device(&host, dst).unwrap()
        });
    }
}

/// Dispatch-latency microbenchmark: one tiny `par_map_into` fan-out —
/// work small enough that scheduling overhead dominates — through the
/// persistent pool, and through an inline replica of the engine this PR
/// replaced (fresh scoped OS threads on every call).
fn fanout_overhead_run(threads: usize) -> FanoutOverhead {
    // Four MIN_CHUNK-sized lanes: the smallest input that still fans
    // out across `threads = 4` workers.
    let len = threads * exec::MIN_CHUNK;
    let src: Vec<i64> = (0..len as i64).collect();
    let mut out = vec![0i64; len];
    let step = |x: &i64| x.wrapping_mul(31) ^ 0x5a;

    group(&format!(
        "fan-out dispatch overhead, {len} × int64, {threads} thread(s)"
    ));
    let pool = exec::with_thread_count(threads, || {
        bench("pool par_map_into", || {
            exec::par_map_into(&src, &mut out, step)
        })
    });
    let expect = out.clone();

    // The pre-pool engine, verbatim in miniature: split evenly, spawn a
    // scoped OS thread per non-caller lane, join at scope exit.
    let spawn = bench("scoped-spawn baseline", || {
        let chunk = len.div_ceil(threads);
        std::thread::scope(|scope| {
            let mut rest = out.as_mut_slice();
            let mut start = 0usize;
            let mut lanes = Vec::new();
            while !rest.is_empty() {
                let take = chunk.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                let src = &src[start..start + take];
                lanes.push(scope.spawn(move || {
                    for (o, s) in head.iter_mut().zip(src) {
                        *o = step(s);
                    }
                }));
                rest = tail;
                start += take;
            }
            for lane in lanes {
                lane.join().unwrap();
            }
        });
    });
    assert_eq!(out, expect, "both dispatch paths must agree");

    FanoutOverhead {
        threads,
        elems: len as u64,
        pool_mean_ns: pool.mean.as_nanos(),
        pool_min_ns: pool.min.as_nanos(),
        spawn_mean_ns: spawn.mean.as_nanos(),
        spawn_min_ns: spawn.min.as_nanos(),
    }
}

/// Skewed-shard workload: a RoundRobin map over 7 shards dealing a
/// handful of huge allocation units (wide-column geometry makes each
/// unit hundreds of thousands of elements), so some shards own up to
/// 2× the elements of others — exactly the imbalance the paper's
/// heterogeneous-bit-width batches produce. Timed once with stealing
/// disabled (one chunk per lane: the old even split) and once with the
/// pool's oversubscribed default.
fn imbalance_run(threads: usize) -> ImbalanceRun {
    // 8 Fulcrum cores (16 subarrays / 2) with 2^21-column rows: unit
    // sizes are cols/bits elements, so object sizes a few units long
    // leave the RoundRobin deal visibly lopsided across 7 shards.
    let geometry = DramGeometry {
        ranks: 1,
        banks_per_rank: 2,
        subarrays_per_bank: 8,
        rows_per_subarray: 4096,
        cols_per_row: 1 << 21,
    };
    let shards = 7usize;
    let cfg = DeviceConfig::new(PimTarget::Fulcrum, 1)
        .with_geometry(geometry)
        .with_shards(shards)
        .with_shard_policy(ShardPolicy::RoundRobin);
    let mut dev = Device::new(cfg).unwrap();

    // Mixed bit-widths: unit sizes differ 8× between Int8 and Int64, so
    // per-shard element counts differ even further (3-vs-2 units of
    // Int32, 2-vs-1 of Int8, 4-vs-3 of Int64).
    let n32 = 15 * ((1u64 << 21) / 32); // 983_040
    let n8 = 8 * ((1u64 << 21) / 8); // 2_097_152
    let n64 = 22 * ((1u64 << 21) / 64); // 720_896
    let mut ids = Vec::new();
    let mut alloc3 = |dev: &mut Device, n: u64, dt: DataType| {
        let a = dev.alloc(n, dt).unwrap();
        let b = dev.alloc_associated(a, dt).unwrap();
        let dst = dev.alloc_associated(a, dt).unwrap();
        ids.push((a, b, dst));
    };
    alloc3(&mut dev, n32, DataType::Int32);
    alloc3(&mut dev, n8, DataType::Int8);
    alloc3(&mut dev, n64, DataType::Int64);
    let h32: Vec<i32> = (0..n32 as i32)
        .map(|i| i.wrapping_mul(0x9E3779B1u32 as i32))
        .collect();
    let h8: Vec<i8> = (0..n8).map(|i| (i as i8).wrapping_mul(37)).collect();
    let h64: Vec<i64> = (0..n64 as i64)
        .map(|i| i.wrapping_mul(0x9E37_79B9))
        .collect();
    dev.copy_to_device(&h32, ids[0].0).unwrap();
    dev.copy_to_device(&h32, ids[0].1).unwrap();
    dev.copy_to_device(&h8, ids[1].0).unwrap();
    dev.copy_to_device(&h8, ids[1].1).unwrap();
    dev.copy_to_device(&h64, ids[2].0).unwrap();
    dev.copy_to_device(&h64, ids[2].1).unwrap();

    let batch = |dev: &mut Device| {
        for &(a, b, dst) in &ids {
            dev.add(a, b, dst).unwrap();
            dev.mul(a, b, dst).unwrap();
        }
    };

    group(&format!(
        "shard imbalance, RoundRobin over {shards} skewed shards, {threads} thread(s)"
    ));
    let (even, steal) = exec::with_thread_count(threads, || {
        // One chunk per lane: shards are pre-assigned to workers up
        // front and a finished worker has nothing to take over.
        let even = exec::with_chunks_per_worker(1, || {
            bench("even split (no stealing)", || batch(&mut dev))
        });
        let steal = bench("oversubscribed (stealing)", || batch(&mut dev));
        (even, steal)
    });

    ImbalanceRun {
        name: "rr-skew-mixed-width".into(),
        threads,
        shards,
        elems: n32 + n8 + n64,
        even_mean_ns: even.mean.as_nanos(),
        even_min_ns: even.min.as_nanos(),
        steal_mean_ns: steal.mean.as_nanos(),
        steal_min_ns: steal.min.as_nanos(),
    }
}

/// Timing-model fidelity sweep: each modeled op priced three ways —
/// analytical, bank-FSM streaming (must agree bit-for-bit at zero
/// contention), and bank-FSM thrashing (the protocol-serialization
/// upper bound the closed form cannot see) — on model-only devices so
/// the numbers are pure cost-model output. Row-buffer hit/miss counts
/// come from the streaming FSM pass.
fn fidelity_runs(out: &mut Vec<FidelityRun>) {
    const FN: u64 = 1 << 20;
    let host: Vec<i32> = vec![0; FN as usize];
    for target in [PimTarget::Fulcrum, PimTarget::BitSerial] {
        group(&format!("timing fidelity, {FN} × int32, {target:?}"));
        let mk = |backend, pattern| {
            let cfg = DeviceConfig::new(target, 2)
                .model_only()
                .with_timing_backend(backend)
                .with_row_pattern(pattern);
            let mut dev = Device::new(cfg).unwrap();
            let a = dev.alloc(FN, DataType::Int32).unwrap();
            let b = dev.alloc_associated(a, DataType::Int32).unwrap();
            let dst = dev.alloc_associated(a, DataType::Int32).unwrap();
            (dev, a, b, dst)
        };
        let mut analytical = mk(TimingBackend::Analytical, RowPattern::Streaming);
        let mut fsm = mk(TimingBackend::BankFsm, RowPattern::Streaming);
        let mut thrash = mk(TimingBackend::BankFsm, RowPattern::Thrashing);

        let mut record = |name: &str,
                          op: &mut dyn FnMut(
            &mut Device,
            pimeval::ObjId,
            pimeval::ObjId,
            pimeval::ObjId,
        )| {
            // Each variant measures one pass from a quiescent rank
            // (reset_stats also resets the FSM bank state).
            let mut pass = |v: &mut (Device, pimeval::ObjId, pimeval::ObjId, pimeval::ObjId)| {
                v.0.reset_stats();
                op(&mut v.0, v.1, v.2, v.3);
                v.0.stats().total_time_ms()
            };
            let analytical_ms = pass(&mut analytical);
            let fsm_ms = pass(&mut fsm);
            let fsm_thrash_ms = pass(&mut thrash);
            let dp = &fsm.0.stats().dram_protocol;
            let run = FidelityRun {
                name: name.into(),
                target: format!("{target:?}"),
                elems: FN,
                analytical_ms,
                fsm_ms,
                fsm_thrash_ms,
                row_hits: dp.row_hits,
                row_misses: dp.row_misses,
            };
            println!(
                "{name:<16} analytical {analytical_ms:>12.6} ms  fsm {fsm_ms:>12.6} ms \
                 (Δ {:+.4}%)  thrash {fsm_thrash_ms:>12.6} ms ({:.2}x)  hit rate {:.2}%",
                run.delta_pct(),
                run.thrash_slowdown(),
                run.hit_rate() * 100.0
            );
            out.push(run);
        };
        record("add", &mut |d, a, b, dst| d.add(a, b, dst).unwrap());
        record("mul", &mut |d, a, b, dst| d.mul(a, b, dst).unwrap());
        record("red_sum", &mut |d, a, _, _| {
            d.red_sum(a).unwrap();
        });
        record("copy_to_device", &mut |d, _, _, dst| {
            d.copy_to_device(&host, dst).unwrap()
        });
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_parallel.json".into());
    let list_arg = |flag: &str, default: &[usize]| -> Vec<usize> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(|s| {
                s.split(',')
                    .filter_map(|t| t.trim().parse().ok())
                    .filter(|&r| r >= 1)
                    .collect()
            })
            .unwrap_or_else(|| default.to_vec())
    };
    let ranks_list = list_arg("--ranks", &[1, 2, 4]);
    let mut threads_list = list_arg("--threads", &[1, 2, 4]);
    threads_list.sort_unstable();
    threads_list.dedup();
    if !threads_list.contains(&1) {
        threads_list.insert(0, 1);
    }

    let default_threads = exec::thread_count();
    println!(
        "parallel execution engine benchmark — default {default_threads} worker(s) on this host, sweeping {threads_list:?}"
    );

    let mut runs = Vec::new();
    for &threads in &threads_list {
        engine_runs(threads, &mut runs);
        vm_kernel_runs(threads, &mut runs);
    }

    let mut stream_runs = Vec::new();
    stream_vs_eager_runs(default_threads, &mut stream_runs);

    let mut optimizer = Vec::new();
    optimizer_runs(default_threads, &mut optimizer);

    let mut rank_runs = Vec::new();
    rank_scaling_runs(&ranks_list, &mut rank_runs);

    let pool_threads = threads_list.iter().copied().max().unwrap_or(1).max(4);
    let overhead = fanout_overhead_run(pool_threads);
    let imbalance = imbalance_run(pool_threads);

    let mut fidelity = Vec::new();
    fidelity_runs(&mut fidelity);

    let json = parallel_runs_to_json(
        default_threads,
        &runs,
        &stream_runs,
        &rank_runs,
        std::slice::from_ref(&imbalance),
        Some(&overhead),
        &fidelity,
        &optimizer,
    );
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\nwrote {} measurement(s) to {out_path}", runs.len()),
        Err(e) => {
            eprintln!("error: cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }

    let top = threads_list.iter().copied().filter(|&t| t > 1).max();
    if let Some(top) = top {
        group(&format!("speedup (min-time ratio, 1 thread / {top})"));
        for base in runs.iter().filter(|r| r.threads == 1) {
            if let Some(par) = runs
                .iter()
                .find(|r| r.threads == top && r.name == base.name)
            {
                println!(
                    "{:<44} {:>8.2}x",
                    base.name,
                    base.min_ns as f64 / par.min_ns as f64
                );
            }
        }
    }

    group("pool sections (dispatch overhead, shard imbalance)");
    println!(
        "fan-out dispatch: pool {:>10} ns vs spawn {:>10} ns  →  {:>6.1}x cheaper",
        overhead.pool_min_ns,
        overhead.spawn_min_ns,
        overhead.dispatch_speedup()
    );
    println!(
        "skewed shards:    steal {:>9} ns vs even  {:>9} ns  →  {:>6.2}x win",
        imbalance.steal_min_ns,
        imbalance.even_min_ns,
        imbalance.steal_speedup()
    );

    group("stream vs eager (fused pipelines)");
    println!(
        "{:<20} {:>14} {:>16} {:>18} {:>12}",
        "pipeline", "wall speedup", "modeled eager ms", "modeled stream ms", "cost ratio"
    );
    for s in &stream_runs {
        println!(
            "{:<20} {:>13.2}x {:>16.6} {:>18.6} {:>12.4}",
            s.name,
            s.wall_speedup(),
            s.eager_modeled_ms,
            s.stream_modeled_ms,
            s.modeled_cost_ratio()
        );
    }

    group("optimizer (peephole vs dataflow)");
    println!(
        "{:<20} {:>18} {:>19} {:>12} {:>9} {:>8}",
        "pipeline", "peephole ms", "dataflow ms", "cost ratio", "cse", "fusions"
    );
    for r in &optimizer {
        println!(
            "{:<20} {:>18.6} {:>19.6} {:>12.4} {:>9} {:>8}",
            r.name,
            r.peephole_modeled_ms,
            r.dataflow_modeled_ms,
            r.modeled_cost_ratio(),
            r.cse_hits,
            r.graph_fusions
        );
    }

    group("rank scaling (sharded per rank)");
    println!(
        "{:<18} {:>6} {:>12} {:>14} {:>18} {:>18}",
        "op", "ranks", "Melem/s", "kernel ms", "interconnect ms", "interconnect B"
    );
    for r in &rank_runs {
        println!(
            "{:<18} {:>6} {:>12.1} {:>14.6} {:>18.6} {:>18}",
            r.name,
            r.ranks,
            r.melem_per_s(),
            r.kernel_ms,
            r.interconnect_ms,
            r.interconnect_bytes
        );
    }
}
