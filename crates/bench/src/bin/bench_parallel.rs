//! Functional-mode throughput of the parallel execution engine:
//! element-wise ops and reductions on a multi-million-element device,
//! plus one end-to-end VGG-13 inference, each measured with the engine
//! pinned to one worker and again at the host's default worker count.
//! A final section times fusible command pipelines both eagerly and
//! through a [`pimeval::CommandStream`], reporting host wall-clock and
//! modeled device cost side by side.
//!
//! Writes the measurements, per-op speedups, stream-vs-eager
//! comparisons, and a `--ranks` sharding sweep (default `1,2,4`; each
//! point runs the op mix on a device sharded per DRAM rank) to
//! `BENCH_parallel.json` (override with `--out <path>`).
//! On a single-core host the speedup column honestly reports ~1×; the
//! ≥3× engine headroom shows on multi-core runners (see the CI bench
//! job).

use pim_bench_harness::export::{
    parallel_runs_to_json, ParallelRun, RankScalingRun, StreamVsEager,
};
use pim_bench_harness::microbench::{bench, bench_throughput, group};
use pim_bench_harness::run_one;
use pimbench::Params;
use pimeval::{exec, DataType, Device, DeviceConfig, PimTarget};

/// Elements per device object: large enough that every op fans out
/// across many `exec::MIN_CHUNK` chunks.
const N: u64 = 4 * 1024 * 1024;

fn engine_runs(threads: usize, out: &mut Vec<ParallelRun>) {
    exec::with_thread_count(threads, || {
        let mut dev = Device::new(DeviceConfig::new(PimTarget::Fulcrum, 2)).unwrap();
        let host: Vec<i32> = (0..N as i32)
            .map(|i| i.wrapping_mul(2654435761u32 as i32))
            .collect();
        let a = dev.alloc(N, DataType::Int32).unwrap();
        let b = dev.alloc_associated(a, DataType::Int32).unwrap();
        let dst = dev.alloc_associated(a, DataType::Int32).unwrap();
        dev.copy_to_device(&host, a).unwrap();
        dev.copy_to_device(&host, b).unwrap();

        group(&format!("functional ops, {N} × int32, {threads} thread(s)"));
        let mut record = |name: &str, m: pim_bench_harness::microbench::Measurement| {
            out.push(ParallelRun {
                name: name.into(),
                threads,
                elems: N,
                mean_ns: m.mean.as_nanos(),
                min_ns: m.min.as_nanos(),
            });
        };
        record(
            "add",
            bench_throughput("add", N, || dev.add(a, b, dst).unwrap()),
        );
        record(
            "mul",
            bench_throughput("mul", N, || dev.mul(a, b, dst).unwrap()),
        );
        record(
            "lt",
            bench_throughput("lt", N, || dev.lt(a, b, dst).unwrap()),
        );
        record(
            "red_sum",
            bench_throughput("red_sum", N, || dev.red_sum(a).unwrap()),
        );
        record(
            "copy_to_device",
            bench_throughput("copy_to_device", N, || {
                dev.copy_to_device(&host, dst).unwrap()
            }),
        );

        // End-to-end: a full (scaled-down) VGG-13 inference through the
        // benchmark harness — dominated by functional GEMM/conv work.
        let cfg = DeviceConfig::new(PimTarget::Fulcrum, 2);
        let params = Params {
            scale: 0.01,
            seed: 42,
            ..Params::default()
        };
        let m = bench("vgg13-e2e", || run_one("VGG-13", &cfg, &params));
        out.push(ParallelRun {
            name: "vgg13-e2e".into(),
            threads,
            elems: 0,
            mean_ns: m.mean.as_nanos(),
            min_ns: m.min.as_nanos(),
        });
    });
}

/// Raw bit-serial VM throughput on compiled kernels: binds one matrix
/// per program (regions sized from the kernel signature) and times
/// `Vm::run`, which dispatches to the word-packed compiled path. One
/// element per column, so throughput is columns per run.
fn vm_kernel_runs(threads: usize, out: &mut Vec<ParallelRun>) {
    use pim_dram::BitMatrix;
    use pim_microcode::cache::{self, ProgKey};
    use pim_microcode::gen::BinaryOp;
    use pim_microcode::vm::{Region, Vm};

    const COLS: usize = 1 << 20;
    exec::with_thread_count(threads, || {
        group(&format!(
            "compiled VM kernels, {COLS} × int32 columns, {threads} thread(s)"
        ));
        for (name, key) in [
            ("vm_add32", ProgKey::Binary(BinaryOp::Add, 32)),
            ("vm_mul32", ProgKey::Binary(BinaryOp::Mul, 32)),
            ("vm_red_sum32", ProgKey::RedSum(32, true)),
        ] {
            let prog = cache::program(key);
            let sig = prog.kernel().signature().clone();
            let slots = prog.operand_slots() as usize;
            let slot_rows = |s: usize| -> u32 { sig.slot_rows.get(s).copied().unwrap_or(0).max(1) };
            let temp_rows = prog.temp_rows().max(sig.temp_rows).max(1);
            let total: u32 = (0..slots).map(slot_rows).sum::<u32>() + temp_rows;
            let mut mat = BitMatrix::new(total as usize, COLS);
            for (i, w) in mat.words_mut().iter_mut().enumerate() {
                *w = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
            let mut vm = Vm::new(&mut mat, slots);
            let mut base = 0usize;
            for s in 0..slots {
                vm.bind(s, Region::new(base, slot_rows(s)));
                base += slot_rows(s) as usize;
            }
            vm.bind_temp(Region::new(base, temp_rows));
            let m = bench_throughput(name, COLS as u64, || vm.run(&prog).unwrap());
            assert!(
                vm.last_run_compiled(),
                "{name} fell back to the interpreter"
            );
            out.push(ParallelRun {
                name: name.into(),
                threads,
                elems: COLS as u64,
                mean_ns: m.mean.as_nanos(),
                min_ns: m.min.as_nanos(),
            });
        }
    });
}

/// Times the fusible pipelines eagerly and streamed. Wall-clock comes
/// from the microbench loop; modeled cost from one instrumented pass of
/// each variant (`reset_stats` between them so the kernel-time delta is
/// exactly the pipeline's).
fn stream_vs_eager_runs(threads: usize, out: &mut Vec<StreamVsEager>) {
    exec::with_thread_count(threads, || {
        let mut dev = Device::new(DeviceConfig::new(PimTarget::Fulcrum, 2)).unwrap();
        let host: Vec<i32> = (0..N as i32)
            .map(|i| i.wrapping_mul(2654435761u32 as i32))
            .collect();
        let a = dev.alloc(N, DataType::Int32).unwrap();
        let b = dev.alloc_associated(a, DataType::Int32).unwrap();
        let t = dev.alloc_associated(a, DataType::Int32).unwrap();
        let dst = dev.alloc_associated(a, DataType::Int32).unwrap();
        dev.copy_to_device(&host, a).unwrap();
        dev.copy_to_device(&host, b).unwrap();

        group(&format!(
            "stream vs eager, {N} × int32, {threads} thread(s)"
        ));
        let mut record = |name: &str,
                          dev: &mut Device,
                          eager: &mut dyn FnMut(&mut Device),
                          stream: &mut dyn FnMut(&mut Device)| {
            let me = bench_throughput(&format!("{name} (eager)"), N, || eager(&mut *dev));
            let ms = bench_throughput(&format!("{name} (stream)"), N, || stream(&mut *dev));
            dev.reset_stats();
            eager(dev);
            let eager_modeled_ms = dev.stats().kernel_time_ms();
            dev.reset_stats();
            stream(dev);
            let stream_modeled_ms = dev.stats().kernel_time_ms();
            out.push(StreamVsEager {
                name: name.into(),
                threads,
                elems: N,
                eager_mean_ns: me.mean.as_nanos(),
                eager_min_ns: me.min.as_nanos(),
                stream_mean_ns: ms.mean.as_nanos(),
                stream_min_ns: ms.min.as_nanos(),
                eager_modeled_ms,
                stream_modeled_ms,
            });
        };

        // mul_scalar + add → one scaled_add command after the flush.
        record(
            "axpy-pair",
            &mut dev,
            &mut |d| {
                d.mul_scalar(a, 7, t).unwrap();
                d.add(t, b, dst).unwrap();
            },
            &mut |d| {
                let mut s = d.stream();
                s.mul_scalar(a, 7, t).add(t, b, dst);
                s.flush().unwrap();
            },
        );
        // lt + select → one fused compare-select (the mask dies unread).
        record(
            "lt-select",
            &mut dev,
            &mut |d| {
                d.lt(a, b, t).unwrap();
                d.select(t, a, b, dst).unwrap();
            },
            &mut |d| {
                let mut s = d.stream();
                s.lt(a, b, t).select(t, a, b, dst);
                s.flush().unwrap();
            },
        );
    });
}

/// Sweeps the same op mix over rank-sharded devices: `ranks` DRAM
/// ranks, one execution shard per rank. Each op is timed on the host
/// and then run once instrumented so the export records the modeled
/// kernel time alongside the (separately ledgered) cross-rank
/// interconnect traffic.
fn rank_scaling_runs(ranks_list: &[usize], out: &mut Vec<RankScalingRun>) {
    let host: Vec<i32> = (0..N as i32)
        .map(|i| i.wrapping_mul(2654435761u32 as i32))
        .collect();
    for &ranks in ranks_list {
        let cfg = DeviceConfig::new(PimTarget::Fulcrum, ranks.max(1)).sharded_per_rank();
        let mut dev = Device::new(cfg).unwrap();
        let a = dev.alloc(N, DataType::Int32).unwrap();
        let b = dev.alloc_associated(a, DataType::Int32).unwrap();
        let dst = dev.alloc_associated(a, DataType::Int32).unwrap();
        dev.copy_to_device(&host, a).unwrap();
        dev.copy_to_device(&host, b).unwrap();

        group(&format!("rank scaling, {N} × int32, {ranks} rank-shard(s)"));
        let mut record = |name: &str, dev: &mut Device, op: &mut dyn FnMut(&mut Device)| {
            let m = bench_throughput(name, N, || op(&mut *dev));
            dev.reset_stats();
            op(dev);
            out.push(RankScalingRun {
                name: name.into(),
                ranks,
                elems: N,
                mean_ns: m.mean.as_nanos(),
                min_ns: m.min.as_nanos(),
                kernel_ms: dev.stats().kernel_time_ms(),
                interconnect_ms: dev.stats().interconnect.time_ms,
                interconnect_bytes: dev.stats().interconnect.total_bytes(),
            });
        };
        record("add", &mut dev, &mut |d| d.add(a, b, dst).unwrap());
        record("red_sum", &mut dev, &mut |d| {
            d.red_sum(a).unwrap();
        });
        record("copy_to_device", &mut dev, &mut |d| {
            d.copy_to_device(&host, dst).unwrap()
        });
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_parallel.json".into());
    let ranks_list: Vec<usize> = args
        .iter()
        .position(|a| a == "--ranks")
        .and_then(|i| args.get(i + 1))
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&r| r >= 1)
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 4]);

    let default_threads = exec::thread_count();
    println!(
        "parallel execution engine benchmark — default {default_threads} worker(s) on this host"
    );

    let mut runs = Vec::new();
    engine_runs(1, &mut runs);
    vm_kernel_runs(1, &mut runs);
    if default_threads > 1 {
        engine_runs(default_threads, &mut runs);
        vm_kernel_runs(default_threads, &mut runs);
    } else {
        println!("\n(single-core host: skipping the multi-thread pass — speedups need a multi-core runner)");
    }

    let mut stream_runs = Vec::new();
    stream_vs_eager_runs(default_threads, &mut stream_runs);

    let mut rank_runs = Vec::new();
    rank_scaling_runs(&ranks_list, &mut rank_runs);

    let json = parallel_runs_to_json(default_threads, &runs, &stream_runs, &rank_runs);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\nwrote {} measurement(s) to {out_path}", runs.len()),
        Err(e) => {
            eprintln!("error: cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }

    if default_threads > 1 {
        group("speedup (min-time ratio, 1 thread / default)");
        for base in runs.iter().filter(|r| r.threads == 1) {
            if let Some(par) = runs
                .iter()
                .find(|r| r.threads == default_threads && r.name == base.name)
            {
                println!(
                    "{:<44} {:>8.2}x",
                    base.name,
                    base.min_ns as f64 / par.min_ns as f64
                );
            }
        }
    }

    group("stream vs eager (fused pipelines)");
    println!(
        "{:<20} {:>14} {:>16} {:>18} {:>12}",
        "pipeline", "wall speedup", "modeled eager ms", "modeled stream ms", "cost ratio"
    );
    for s in &stream_runs {
        println!(
            "{:<20} {:>13.2}x {:>16.6} {:>18.6} {:>12.4}",
            s.name,
            s.wall_speedup(),
            s.eager_modeled_ms,
            s.stream_modeled_ms,
            s.modeled_cost_ratio()
        );
    }

    group("rank scaling (sharded per rank)");
    println!(
        "{:<18} {:>6} {:>12} {:>14} {:>18} {:>18}",
        "op", "ranks", "Melem/s", "kernel ms", "interconnect ms", "interconnect B"
    );
    for r in &rank_runs {
        println!(
            "{:<18} {:>6} {:>12.1} {:>14.6} {:>18.6} {:>18}",
            r.name,
            r.ranks,
            r.melem_per_s(),
            r.kernel_ms,
            r.interconnect_ms,
            r.interconnect_bytes
        );
    }
}
