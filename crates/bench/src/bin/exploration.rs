//! Problem-size exploration — the paper's §IX: "A comprehensive
//! exploration of problem size is an essential direction for future
//! work. ... many use cases call for smaller problem sizes, requiring
//! batching to utilize the full PIM computation bandwidth."
//!
//! Sweeps the element count across six decades (model-only, no
//! decimation: the real device with the real problem) and prints
//! kernel-only speedup over the CPU roofline for the four Fig. 6
//! primitives, exposing the utilization cliff at small sizes and each
//! architecture's fill point.

use pim_baseline::{ComputeModel, WorkloadProfile};
use pim_bench_harness::fmt_ratio;
use pimeval::pim_microcode::gen::BinaryOp;
use pimeval::{model, DataType, DeviceConfig, ObjectLayout, OpKind, PimTarget};

fn main() {
    let cpu = ComputeModel::epyc_9124();
    let sizes: Vec<u64> = (14..=30).step_by(2).map(|p| 1u64 << p).collect();
    let ops: [(&str, OpKind, f64); 2] = [
        // (name, kind, CPU ops per element)
        ("add", OpKind::Binary(BinaryOp::Add), 1.0),
        ("mul", OpKind::Binary(BinaryOp::Mul), 1.0),
    ];
    println!("Problem-size exploration: kernel-only speedup over CPU, 32 ranks (model-only)\n");
    for (name, kind, ops_per_elem) in ops {
        println!("[{name}]");
        print!("{:<12}", "N");
        for target in PimTarget::ALL {
            print!(" {:>12}", target.to_string());
        }
        println!(" {:>12}", "util(BS)");
        for &n in &sizes {
            print!("{:<12}", n);
            let mut bs_util = 0.0;
            for target in PimTarget::ALL {
                let cfg = DeviceConfig::new(target, 32).model_only();
                let layout = ObjectLayout::compute(&cfg, n, DataType::Int32, None).expect("fits");
                if target == PimTarget::BitSerial {
                    bs_util = layout.core_utilization(&cfg);
                }
                let pim_ms = model::op_cost(&cfg, kind, DataType::Int32, &layout).time_ms;
                let cpu_ms = cpu.runtime_ms(&WorkloadProfile::new(
                    ops_per_elem * n as f64,
                    12.0 * n as f64,
                ));
                print!(" {:>12}", fmt_ratio(cpu_ms / pim_ms));
            }
            println!(" {:>11.1}%", 100.0 * bs_util);
        }
        println!();
    }
    println!("The utilization column shows why the paper's evaluation needs billion-element");
    println!("inputs: bit-serial only fills all subarrays when N exceeds cores x columns.");
}
