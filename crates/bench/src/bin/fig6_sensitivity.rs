//! Regenerates Fig. 6: latency sensitivity of the four primitive PIM
//! operations (Add, Mul, Reduction, PopCount) on 256M 32-bit integers,
//! varying (a) the number of columns and (b) the number of banks.
//!
//! Runs in model-only mode at the paper's full input size — no data is
//! materialized.

use pim_bench_harness::fmt_ratio;
use pim_dram::DramGeometry;
use pimeval::pim_microcode::gen::BinaryOp;
use pimeval::{DataType, DeviceConfig, ObjectLayout, OpKind, PimTarget};

const N: u64 = 1 << 28; // 256M, as in the paper

fn latency_ms(cfg: &DeviceConfig, kind: OpKind) -> f64 {
    let layout = ObjectLayout::compute(cfg, N, DataType::Int32, None).expect("fits");
    pimeval::model::op_cost(cfg, kind, DataType::Int32, &layout).time_ms
}

fn sweep(label: &str, configs: &[(String, DeviceConfig)]) {
    let ops: [(&str, OpKind); 4] = [
        ("Add", OpKind::Binary(BinaryOp::Add)),
        ("Mul", OpKind::Binary(BinaryOp::Mul)),
        ("Reduction", OpKind::RedSum),
        ("PopCount", OpKind::Popcount),
    ];
    println!("\nFig. 6{label}: latency (ms) for 256M 32-bit INT");
    print!("{:<12} {:<10}", "Target", "Op");
    for (name, _) in configs {
        print!(" {name:>10}");
    }
    println!();
    for target in PimTarget::ALL {
        for (op_name, kind) in ops {
            print!("{:<12} {:<10}", target.to_string(), op_name);
            for (_, cfg) in configs {
                let mut cfg = cfg.clone();
                cfg.target = target;
                print!(" {:>10}", fmt_ratio(latency_ms(&cfg, kind)));
            }
            println!();
        }
    }
}

fn main() {
    let which = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "both".into());
    if which == "cols" || which == "both" {
        let configs: Vec<(String, DeviceConfig)> = [1024usize, 2048, 4096, 8192]
            .iter()
            .map(|&c| {
                let geom = DramGeometry::paper_default(32).with_cols(c);
                (
                    format!("#Col={c}"),
                    DeviceConfig::new(PimTarget::BitSerial, 32)
                        .with_geometry(geom)
                        .model_only(),
                )
            })
            .collect();
        sweep("a (varying #columns)", &configs);
    }
    if which == "banks" || which == "both" {
        let configs: Vec<(String, DeviceConfig)> = [16usize, 32, 64, 128]
            .iter()
            .map(|&b| {
                let geom = DramGeometry::paper_default(32).with_banks_per_rank(b);
                (
                    format!("#Bank={b}"),
                    DeviceConfig::new(PimTarget::BitSerial, 32)
                        .with_geometry(geom)
                        .model_only(),
                )
            })
            .collect();
        sweep("b (varying #banks per rank)", &configs);
    }
}
