//! Regenerates Table II: configuration of the evaluated architectures.

use pim_baseline::ComputeModel;
use pimeval::{DeviceConfig, PimTarget};

fn main() {
    println!("Table II: Configuration of the Evaluated Architectures\n");
    let cpu = ComputeModel::epyc_9124();
    println!(
        "CPU        {} — 16-core @ 3.71 GHz, {} W TDP, peak memory BW {:.1} GB/s (modeled roofline)",
        cpu.name,
        cpu.tdp_w,
        cpu.mem_bw_bytes_per_sec / 1e9
    );
    let gpu = ComputeModel::a100();
    println!(
        "GPU        {} — {} W TDP, peak memory BW {:.0} GB/s, peak 32-bit compute {:.1} TOP/s\n",
        gpu.name,
        gpu.tdp_w,
        gpu.mem_bw_bytes_per_sec / 1e9,
        gpu.peak_ops_per_sec / 1e12
    );
    for target in PimTarget::ALL {
        let cfg = DeviceConfig::new(target, 32);
        let g = &cfg.geometry;
        println!("{}:", target);
        println!(
            "  DDR4, {} ranks, {} banks/rank, {} subarrays/bank, {}-bit local row buffers",
            g.ranks, g.banks_per_rank, g.subarrays_per_bank, g.cols_per_row
        );
        println!(
            "  {} PIM cores, {} rows/core, rank BW {:.1} GB/s",
            cfg.core_count(),
            cfg.rows_per_core(),
            cfg.timing.rank_bandwidth_gbs
        );
        match target {
            PimTarget::BitSerial => println!(
                "  Bit-serial PE per sense amplifier, 4 bit registers, move/set/and/xnor/mux"
            ),
            PimTarget::Fulcrum => println!(
                "  32-bit {} MHz integer ALU + three {}-bit walkers per two subarrays",
                cfg.pe.alu_freq_mhz, g.cols_per_row
            ),
            PimTarget::BankLevel => println!(
                "  {}-bit GDL, {}-bit Fulcrum-style ALPU + three walkers per bank",
                cfg.timing.gdl_width_bits, cfg.pe.bank_alu_width_bits
            ),
            PimTarget::AnalogBitSerial | PimTarget::UpmemLike => {
                println!("  Extension target (not part of the paper's Table II evaluation)")
            }
        }
        println!();
    }
}
