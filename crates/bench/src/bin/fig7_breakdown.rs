//! Regenerates Fig. 7: execution-time breakdown (% data movement, %
//! host, % PIM kernel) for every benchmark on all three targets with 32
//! ranks.

use pim_bench_harness::{cli_params, export, run_all_targets};

fn main() {
    let params = cli_params(0.25);
    println!(
        "Fig. 7: performance breakdown (percent of total) — 32 ranks, scale {}",
        params.scale
    );
    println!(
        "{:<12} {:<22} {:>14} {:>8} {:>8}",
        "Target", "Benchmark", "DataMovement%", "Host%", "Kernel%"
    );
    let records = run_all_targets(32, &params);
    for r in &records {
        let (dm, host, kernel) = r.stats.breakdown();
        println!(
            "{:<12} {:<22} {:>14.1} {:>8.1} {:>8.1}",
            r.target.to_string(),
            r.name,
            100.0 * dm,
            100.0 * host,
            100.0 * kernel
        );
    }
    export::maybe_export(&records);
}
