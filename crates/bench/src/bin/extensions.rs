//! Runs the extension kernels (prefix sum, string match, transitive
//! closure — the additions §II/§IX of the paper announce) on all four
//! modeled targets, including the analog bit-serial extension, and
//! prints CPU-relative speedups in the Fig. 9 style.

use pim_baseline::ComputeModel;
use pim_bench_harness::{cli_params, fmt_ratio};
use pimbench::extension_benchmarks;
use pimeval::{Device, DeviceConfig, PimTarget};

fn main() {
    let params = cli_params(0.25);
    let cpu = ComputeModel::epyc_9124();
    println!(
        "Extension kernels — speedup over baseline CPU (32 ranks, scale {})\n",
        params.scale
    );
    println!(
        "{:<20} {:>14} {:>10} {:>12} {:>18}",
        "Kernel", "Bit-serial", "Fulcrum", "Bank-level", "Analog-bit-serial"
    );
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for bench in extension_benchmarks() {
        let mut speedups = Vec::new();
        for target in PimTarget::EXTENDED {
            let factor = bench.paper_factor(&params).max(1.0);
            let serial = bench.serial_factor(&params).clamp(1.0, factor);
            let parallel = (factor / serial).max(1.0);
            let cfg = DeviceConfig::new(target, 32).with_decimation(parallel.round() as u64);
            let mut dev = Device::new(cfg).expect("device");
            let outcome = bench.run(&mut dev, &params).expect("extension kernel runs");
            assert!(outcome.verified, "{} on {target}", bench.spec().name);
            let mut stats = outcome.stats;
            stats.scale_kernel_and_copies(serial);
            stats.host_time_ms *= factor;
            let cpu_ms = cpu.runtime_ms(&bench.cpu_profile(&params)) * factor;
            speedups.push(cpu_ms / stats.total_time_ms());
        }
        rows.push((bench.spec().name.to_string(), speedups));
    }
    for (name, speedups) in rows {
        print!("{name:<20}");
        for s in speedups {
            print!(" {:>14}", fmt_ratio(s));
        }
        println!();
    }
}
