//! Regenerates Table I: the PIMbench suite listing.

use pimbench::all_benchmarks;

fn main() {
    println!("Table I: PIMbench Suite");
    println!(
        "{:<22} {:<22} {:<11} {:<7} {:<11} Input (paper)",
        "Domain", "Application", "Sequential", "Random", "Execution"
    );
    println!("{}", "-".repeat(110));
    for b in all_benchmarks() {
        let s = b.spec();
        println!(
            "{:<22} {:<22} {:<11} {:<7} {:<11} {}",
            s.domain.label(),
            s.name,
            if s.sequential { "yes" } else { "" },
            if s.random { "yes" } else { "" },
            s.exec.to_string(),
            s.paper_input
        );
    }
}
