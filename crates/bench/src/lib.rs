//! Shared harness code for regenerating every table and figure of the
//! IISWC 2024 PIMeval/PIMbench paper. Each `src/bin/*.rs` binary prints
//! one table/figure; see DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured comparisons.
//!
//! All binaries accept `--scale <f64>` (problem-size multiplier,
//! default varies per figure) and `--seed <u64>`.

#![warn(missing_docs)]

pub mod export;
pub mod microbench;

use pim_baseline::{geometric_mean, ComputeModel};
use pimbench::{all_benchmarks, Params};
use pimeval::{Device, DeviceConfig, PimTarget, SimStats};

/// One benchmark run on one target.
#[derive(Debug, Clone)]
pub struct SuiteRecord {
    /// Benchmark display name.
    pub name: String,
    /// Target it ran on.
    pub target: PimTarget,
    /// Statistics snapshot.
    pub stats: SimStats,
    /// Device configuration used (for energy accounting).
    pub config: DeviceConfig,
    /// Modeled CPU baseline runtime (ms) for the same problem size.
    pub cpu_ms: f64,
    /// Modeled GPU baseline runtime (ms).
    pub gpu_ms: f64,
    /// Modeled CPU baseline energy (mJ).
    pub cpu_energy_mj: f64,
    /// Modeled GPU baseline energy (mJ).
    pub gpu_energy_mj: f64,
}

impl SuiteRecord {
    /// End-to-end PIM time: kernel + host + data movement (ms).
    pub fn pim_total_ms(&self) -> f64 {
        self.stats.total_time_ms()
    }

    /// PIM time excluding host↔device copies (the "Kernel" series of
    /// Fig. 9 and the Fig. 10a comparison basis): kernel + host phases.
    pub fn pim_kernel_ms(&self) -> f64 {
        self.stats.kernel_time_ms() + self.stats.host_time_ms
    }

    /// Speedup over the CPU including data movement (Fig. 9, solid).
    pub fn speedup_cpu_total(&self) -> f64 {
        self.cpu_ms / self.pim_total_ms()
    }

    /// Speedup over the CPU, kernel only (Fig. 9, hollow).
    pub fn speedup_cpu_kernel(&self) -> f64 {
        self.cpu_ms / self.pim_kernel_ms()
    }

    /// Speedup over the GPU (Fig. 10a): copies factored out on both
    /// sides (PIM and GPU share the PCIe/CXL link, §VI).
    pub fn speedup_gpu(&self) -> f64 {
        self.gpu_ms / self.pim_kernel_ms()
    }

    /// Total PIM-side energy versus the CPU (Fig. 11): kernel + copies +
    /// background + host execution (at CPU TDP) + CPU idle while PIM
    /// runs.
    pub fn pim_energy_vs_cpu_mj(&self) -> f64 {
        let host_exec = self.stats.host_time_ms * ComputeModel::epyc_9124().tdp_w;
        self.stats.total_energy_mj(&self.config)
            + host_exec
            + self.stats.host_idle_energy_mj(&self.config)
    }

    /// PIM energy versus the GPU (Fig. 10b): copies and CPU idle energy
    /// factored out (§VI), host phases still charged.
    pub fn pim_energy_vs_gpu_mj(&self) -> f64 {
        let host_exec = self.stats.host_time_ms * ComputeModel::epyc_9124().tdp_w;
        self.stats.kernel_energy_mj() + self.stats.background_energy_mj(&self.config) + host_exec
    }

    /// Energy reduction vs CPU (Fig. 11).
    pub fn energy_reduction_cpu(&self) -> f64 {
        self.cpu_energy_mj / self.pim_energy_vs_cpu_mj()
    }

    /// Energy reduction vs GPU (Fig. 10b).
    pub fn energy_reduction_gpu(&self) -> f64 {
        self.gpu_energy_mj / self.pim_energy_vs_gpu_mj()
    }
}

/// Runs one benchmark at paper-equivalent scale.
///
/// The device's core count is decimated by the benchmark's
/// [`Benchmark::paper_factor`] so that per-core work — and therefore the
/// measured kernel latency — matches the paper-scale experiment, then
/// the host phases and CPU/GPU baselines are scaled up by the same
/// factor. See DESIGN.md substitution #3.
///
/// # Panics
///
/// Panics if the benchmark fails to run or verify.
fn run_paper_scale(
    bench: &dyn pimbench::Benchmark,
    config: &DeviceConfig,
    params: &Params,
) -> SuiteRecord {
    let cpu = ComputeModel::epyc_9124();
    let gpu = ComputeModel::a100();
    let factor = bench.paper_factor(params).max(1.0);
    let serial = bench.serial_factor(params).clamp(1.0, factor);
    let parallel = (factor / serial).max(1.0);
    let cfg = config.clone().with_decimation(parallel.round() as u64);
    let mut dev = Device::new(cfg.clone()).expect("valid device config");
    let outcome = bench
        .run(&mut dev, params)
        .unwrap_or_else(|e| panic!("{} failed: {e}", bench.spec().name));
    assert!(outcome.verified, "{} did not verify", bench.spec().name);
    let mut stats = outcome.stats;
    stats.scale_kernel_and_copies(serial); // restore serial op count
    stats.host_time_ms *= factor; // host work scales linearly with size
    let (cp, gp) = (bench.cpu_profile(params), bench.gpu_profile(params));
    SuiteRecord {
        name: bench.spec().name.to_string(),
        target: config.target,
        stats,
        config: cfg,
        cpu_ms: cpu.runtime_ms(&cp) * factor,
        gpu_ms: gpu.runtime_ms(&gp) * factor,
        cpu_energy_mj: cpu.energy_mj(&cp) * factor,
        gpu_energy_mj: gpu.energy_mj(&gp) * factor,
    }
}

/// Runs the full suite on `config` at paper-equivalent scale, returning
/// one record per benchmark.
///
/// # Panics
///
/// Panics if a benchmark fails to run or verify — a failed verification
/// would invalidate the figure being generated.
pub fn run_suite(config: &DeviceConfig, params: &Params) -> Vec<SuiteRecord> {
    all_benchmarks()
        .iter()
        .map(|bench| run_paper_scale(bench.as_ref(), config, params))
        .collect()
}

/// Runs the suite on all three targets with the paper's 32-rank device.
pub fn run_all_targets(ranks: usize, params: &Params) -> Vec<SuiteRecord> {
    PimTarget::ALL
        .iter()
        .flat_map(|&t| run_suite(&DeviceConfig::new(t, ranks), params))
        .collect()
}

/// Parses `--scale` / `--seed` / `--stream` from argv, with a
/// figure-specific default scale.
pub fn cli_params(default_scale: f64) -> Params {
    let args: Vec<String> = std::env::args().collect();
    let mut params = Params {
        scale: default_scale,
        seed: 42,
        ..Params::default()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    params.scale = v;
                    i += 1;
                }
            }
            "--seed" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    params.seed = v;
                    i += 1;
                }
            }
            "--stream" => params.stream = true,
            _ => {}
        }
        i += 1;
    }
    params
}

/// Formats a ratio column, with the paper's log-scale plots in mind.
pub fn fmt_ratio(x: f64) -> String {
    if !x.is_finite() {
        return "inf".into();
    }
    if x >= 100.0 {
        format!("{x:9.1}")
    } else if x >= 1.0 {
        format!("{x:9.2}")
    } else {
        format!("{x:9.4}")
    }
}

/// Geometric mean helper that tolerates empty input.
pub fn gmean_or_nan(values: &[f64]) -> f64 {
    geometric_mean(values).unwrap_or(f64::NAN)
}

/// The non-scalar positive part of a slice (for Gmean over ratios).
pub fn positives(values: &[f64]) -> Vec<f64> {
    values
        .iter()
        .copied()
        .filter(|v| *v > 0.0 && v.is_finite())
        .collect()
}

/// Benchmark names in Table I / figure order.
pub fn suite_names() -> Vec<&'static str> {
    all_benchmarks()
        .iter()
        .map(|b| b.spec().name)
        .collect::<Vec<_>>()
}

/// Convenience: run one benchmark by name on one target.
///
/// # Panics
///
/// Panics on unknown benchmark name or failed verification.
pub fn run_one(name: &str, config: &DeviceConfig, params: &Params) -> SuiteRecord {
    let bench = pimbench::benchmark_by_name(name).expect("known benchmark");
    run_paper_scale(bench.as_ref(), config, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_one_produces_consistent_record() {
        let cfg = DeviceConfig::new(PimTarget::Fulcrum, 4);
        let r = run_one(
            "AXPY",
            &cfg,
            &Params {
                scale: 0.01,
                seed: 1,
                ..Params::default()
            },
        );
        assert!(r.pim_total_ms() > r.pim_kernel_ms());
        assert!(r.speedup_cpu_kernel() >= r.speedup_cpu_total());
        assert!(r.pim_energy_vs_cpu_mj() > r.pim_energy_vs_gpu_mj());
    }

    #[test]
    fn fmt_ratio_widths() {
        assert!(fmt_ratio(1234.5).contains("1234.5"));
        assert!(fmt_ratio(3.25159).contains("3.25"));
        assert!(fmt_ratio(0.01234).contains("0.0123"));
        assert_eq!(fmt_ratio(f64::INFINITY), "inf");
    }
}
