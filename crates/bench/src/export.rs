//! Machine-readable export of figure data: serializes [`SuiteRecord`]s
//! as JSON so the tables the `src/bin/*` binaries print can also feed
//! plotting scripts. Opt in with `--stats-json <file>` on any figure
//! binary that calls [`maybe_export`].

use std::path::PathBuf;

use pimeval::trace::json::{num, stats_to_json, string};

use crate::SuiteRecord;

/// Version of the `BENCH_parallel.json` document layout written by
/// [`parallel_runs_to_json`]. Bumped only on breaking changes; additive
/// fields keep the same version, and consumers (`bench_regress`, the
/// golden-results CI diff) must tolerate fields they do not know.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// Renders one run record as a JSON object, embedding the full
/// Listing-3 statistics plus the baseline comparisons the figures plot.
pub fn record_to_json(r: &SuiteRecord) -> String {
    format!(
        "{{\"benchmark\":{},\"target\":{},\
         \"pim_total_ms\":{},\"pim_kernel_ms\":{},\
         \"cpu_ms\":{},\"gpu_ms\":{},\
         \"cpu_energy_mj\":{},\"gpu_energy_mj\":{},\
         \"speedup_cpu_total\":{},\"speedup_cpu_kernel\":{},\"speedup_gpu\":{},\
         \"energy_reduction_cpu\":{},\"energy_reduction_gpu\":{},\
         \"stats\":{}}}",
        string(&r.name),
        string(&r.target.to_string()),
        num(r.pim_total_ms()),
        num(r.pim_kernel_ms()),
        num(r.cpu_ms),
        num(r.gpu_ms),
        num(r.cpu_energy_mj),
        num(r.gpu_energy_mj),
        num(r.speedup_cpu_total()),
        num(r.speedup_cpu_kernel()),
        num(r.speedup_gpu()),
        num(r.energy_reduction_cpu()),
        num(r.energy_reduction_gpu()),
        stats_to_json(&r.stats, &r.config),
    )
}

/// Renders a whole figure's records as `{"runs": [...]}`.
pub fn records_to_json(records: &[SuiteRecord]) -> String {
    let runs: Vec<String> = records.iter().map(record_to_json).collect();
    format!("{{\"runs\":[\n{}\n]}}\n", runs.join(",\n"))
}

/// The `--stats-json <file>` argument, if present on the command line.
pub fn stats_json_arg() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--stats-json")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

/// Writes `records` to the `--stats-json` path when the flag is present;
/// a no-op otherwise. Exits with an error message if the file cannot be
/// written (a figure run that silently loses its export is worse than a
/// failed one).
pub fn maybe_export(records: &[SuiteRecord]) {
    let Some(path) = stats_json_arg() else { return };
    match std::fs::write(&path, records_to_json(records)) {
        Ok(()) => eprintln!("wrote {} run(s) to {}", records.len(), path.display()),
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// One throughput measurement from the `bench_parallel` binary: an op
/// class timed at a fixed worker count on the host machine.
#[derive(Debug, Clone)]
pub struct ParallelRun {
    /// Operation label (`add`, `mul`, `lt`, `red_sum`, `vgg13-e2e`, …).
    pub name: String,
    /// Worker threads the execution engine was pinned to.
    pub threads: usize,
    /// Elements processed per iteration (0 for end-to-end runs where
    /// throughput-per-element is not meaningful).
    pub elems: u64,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: u128,
    /// Best observed wall time per iteration, nanoseconds.
    pub min_ns: u128,
}

impl ParallelRun {
    /// Element throughput in Melem/s from the best iteration, or 0 for
    /// end-to-end runs.
    pub fn melem_per_s(&self) -> f64 {
        if self.elems == 0 || self.min_ns == 0 {
            return 0.0;
        }
        self.elems as f64 / (self.min_ns as f64 / 1e9) / 1e6
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"threads\":{},\"elems\":{},\
             \"mean_ns\":{},\"min_ns\":{},\"melem_per_s\":{}}}",
            string(&self.name),
            self.threads,
            self.elems,
            self.mean_ns,
            self.min_ns,
            num(self.melem_per_s()),
        )
    }
}

/// One command pipeline measured twice by `bench_parallel`: issued
/// eagerly (one [`pimeval::Device::issue`] per call) and recorded
/// through a [`pimeval::CommandStream`] whose flush runs the peephole
/// passes. Captures both host wall-clock and the modeled device cost so
/// the export shows what fusion buys on each axis.
#[derive(Debug, Clone)]
pub struct StreamVsEager {
    /// Pipeline label (`axpy-pair`, `lt-select`, …).
    pub name: String,
    /// Worker threads the execution engine was pinned to.
    pub threads: usize,
    /// Elements processed per iteration.
    pub elems: u64,
    /// Mean wall time per eager iteration, nanoseconds.
    pub eager_mean_ns: u128,
    /// Best wall time per eager iteration, nanoseconds.
    pub eager_min_ns: u128,
    /// Mean wall time per streamed iteration, nanoseconds.
    pub stream_mean_ns: u128,
    /// Best wall time per streamed iteration, nanoseconds.
    pub stream_min_ns: u128,
    /// Modeled device kernel time for one eager pass, milliseconds.
    pub eager_modeled_ms: f64,
    /// Modeled device kernel time for one streamed (fused) pass,
    /// milliseconds.
    pub stream_modeled_ms: f64,
}

impl StreamVsEager {
    /// Host wall-clock speedup of the streamed path (best-time ratio),
    /// or 0 when the streamed time was unmeasurably small.
    pub fn wall_speedup(&self) -> f64 {
        if self.stream_min_ns == 0 {
            return 0.0;
        }
        self.eager_min_ns as f64 / self.stream_min_ns as f64
    }

    /// Modeled-cost ratio streamed/eager — ≤ 1.0 whenever the fusion
    /// passes fire (the fused program never costs more than its pair).
    pub fn modeled_cost_ratio(&self) -> f64 {
        if self.eager_modeled_ms == 0.0 {
            return 0.0;
        }
        self.stream_modeled_ms / self.eager_modeled_ms
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"threads\":{},\"elems\":{},\
             \"eager_mean_ns\":{},\"eager_min_ns\":{},\
             \"stream_mean_ns\":{},\"stream_min_ns\":{},\
             \"wall_speedup\":{},\
             \"eager_modeled_ms\":{},\"stream_modeled_ms\":{},\
             \"modeled_cost_ratio\":{}}}",
            string(&self.name),
            self.threads,
            self.elems,
            self.eager_mean_ns,
            self.eager_min_ns,
            self.stream_mean_ns,
            self.stream_min_ns,
            num(self.wall_speedup()),
            num(self.eager_modeled_ms),
            num(self.stream_modeled_ms),
            num(self.modeled_cost_ratio()),
        )
    }
}

/// One point of the `--ranks` sweep from `bench_parallel`: an op class
/// run on a device sharded per rank, capturing both host wall time and
/// the modeled device-side split between compute and cross-rank
/// interconnect traffic.
#[derive(Debug, Clone)]
pub struct RankScalingRun {
    /// Operation label (`add`, `red_sum`, `copy_to_device`, …).
    pub name: String,
    /// DRAM ranks = execution shards the device was built with.
    pub ranks: usize,
    /// Elements processed per iteration.
    pub elems: u64,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: u128,
    /// Best observed wall time per iteration, nanoseconds.
    pub min_ns: u128,
    /// Modeled aggregate kernel time for one pass, milliseconds.
    pub kernel_ms: f64,
    /// Modeled cross-rank interconnect time for one pass, milliseconds
    /// (reported separately from kernel time, never folded into it).
    pub interconnect_ms: f64,
    /// Bytes moved across the rank interconnect in one pass.
    pub interconnect_bytes: u64,
}

impl RankScalingRun {
    /// Element throughput in Melem/s from the best iteration.
    pub fn melem_per_s(&self) -> f64 {
        if self.elems == 0 || self.min_ns == 0 {
            return 0.0;
        }
        self.elems as f64 / (self.min_ns as f64 / 1e9) / 1e6
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"ranks\":{},\"elems\":{},\
             \"mean_ns\":{},\"min_ns\":{},\"melem_per_s\":{},\
             \"kernel_ms\":{},\"interconnect_ms\":{},\"interconnect_bytes\":{}}}",
            string(&self.name),
            self.ranks,
            self.elems,
            self.mean_ns,
            self.min_ns,
            num(self.melem_per_s()),
            num(self.kernel_ms),
            num(self.interconnect_ms),
            self.interconnect_bytes,
        )
    }
}

/// One imbalance measurement from `bench_parallel`: a skewed-shard op
/// mix timed twice — even split (one chunk per lane, nothing to steal)
/// and the oversubscribed stealing default — at a pinned thread count.
#[derive(Debug, Clone)]
pub struct ImbalanceRun {
    /// Workload label (`rr-skew-mixed-width`, …).
    pub name: String,
    /// Worker threads the execution engine was pinned to.
    pub threads: usize,
    /// Execution shards of the skewed device.
    pub shards: usize,
    /// Total elements touched per iteration across all objects.
    pub elems: u64,
    /// Mean wall time per even-split iteration, nanoseconds.
    pub even_mean_ns: u128,
    /// Best wall time per even-split iteration, nanoseconds.
    pub even_min_ns: u128,
    /// Mean wall time per stealing iteration, nanoseconds.
    pub steal_mean_ns: u128,
    /// Best wall time per stealing iteration, nanoseconds.
    pub steal_min_ns: u128,
}

impl ImbalanceRun {
    /// Stealing win over the even split (best-time ratio; ~1.0 on a
    /// single-core host where nothing runs concurrently, > 1.0 on
    /// multi-core runners with a skewed map).
    pub fn steal_speedup(&self) -> f64 {
        if self.steal_min_ns == 0 {
            return 0.0;
        }
        self.even_min_ns as f64 / self.steal_min_ns as f64
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"threads\":{},\"shards\":{},\"elems\":{},\
             \"even_mean_ns\":{},\"even_min_ns\":{},\
             \"steal_mean_ns\":{},\"steal_min_ns\":{},\
             \"steal_speedup\":{}}}",
            string(&self.name),
            self.threads,
            self.shards,
            self.elems,
            self.even_mean_ns,
            self.even_min_ns,
            self.steal_mean_ns,
            self.steal_min_ns,
            num(self.steal_speedup()),
        )
    }
}

/// The dispatch-latency microbenchmark from `bench_parallel`: one tiny
/// `par_map_into` fanned out through the persistent pool vs. an inline
/// replica of the old scoped-spawn engine (fresh OS threads per call).
#[derive(Debug, Clone)]
pub struct FanoutOverhead {
    /// Worker threads both variants were pinned to.
    pub threads: usize,
    /// Elements per fan-out (tiny on purpose: dispatch-dominated).
    pub elems: u64,
    /// Mean wall time per pooled fan-out, nanoseconds.
    pub pool_mean_ns: u128,
    /// Best wall time per pooled fan-out, nanoseconds.
    pub pool_min_ns: u128,
    /// Mean wall time per scoped-spawn fan-out, nanoseconds.
    pub spawn_mean_ns: u128,
    /// Best wall time per scoped-spawn fan-out, nanoseconds.
    pub spawn_min_ns: u128,
}

impl FanoutOverhead {
    /// How much cheaper pooled dispatch is than spawning (best-time
    /// ratio spawn/pool).
    pub fn dispatch_speedup(&self) -> f64 {
        if self.pool_min_ns == 0 {
            return 0.0;
        }
        self.spawn_min_ns as f64 / self.pool_min_ns as f64
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"threads\":{},\"elems\":{},\
             \"pool_mean_ns\":{},\"pool_min_ns\":{},\
             \"spawn_mean_ns\":{},\"spawn_min_ns\":{},\
             \"dispatch_speedup\":{}}}",
            self.threads,
            self.elems,
            self.pool_mean_ns,
            self.pool_min_ns,
            self.spawn_mean_ns,
            self.spawn_min_ns,
            num(self.dispatch_speedup()),
        )
    }
}

/// One timing-fidelity measurement from `bench_parallel`: the same
/// modeled op priced by the closed-form `Analytical` backend and by the
/// stateful `BankFsm` backend under both row patterns, plus the FSM's
/// row-buffer accounting. At zero contention (streaming round-robin)
/// the two backends agree bit-for-bit, so `delta_pct` is the fidelity
/// *check* (≈ 0) and `thrash_slowdown` is the fidelity *signal*: how
/// much protocol-level serialization the closed form cannot see.
#[derive(Debug, Clone)]
pub struct FidelityRun {
    /// Operation label (`add`, `mul`, `red_sum`, `copy_to_device`, …).
    pub name: String,
    /// Simulation target the op was priced on.
    pub target: String,
    /// Elements processed per pass.
    pub elems: u64,
    /// Modeled kernel time under the analytical backend, milliseconds.
    pub analytical_ms: f64,
    /// Modeled kernel time under the bank-FSM backend with the
    /// streaming (round-robin) row pattern, milliseconds.
    pub fsm_ms: f64,
    /// Modeled kernel time under the bank-FSM backend with the
    /// single-bank thrashing row pattern, milliseconds.
    pub fsm_thrash_ms: f64,
    /// Row-buffer hits counted by the streaming FSM pass.
    pub row_hits: u64,
    /// Row-buffer misses counted by the streaming FSM pass.
    pub row_misses: u64,
}

impl FidelityRun {
    /// Streaming FSM deviation from the closed form, percent (≈ 0 by
    /// construction at zero contention).
    pub fn delta_pct(&self) -> f64 {
        if self.analytical_ms == 0.0 {
            return 0.0;
        }
        (self.fsm_ms - self.analytical_ms) / self.analytical_ms * 100.0
    }

    /// Thrashing-FSM slowdown over the closed form (> 1 whenever the op
    /// charges row cycles).
    pub fn thrash_slowdown(&self) -> f64 {
        if self.analytical_ms == 0.0 {
            return 0.0;
        }
        self.fsm_thrash_ms / self.analytical_ms
    }

    /// Row-buffer hit rate of the streaming FSM pass (0 when the op
    /// issued no column commands).
    pub fn hit_rate(&self) -> f64 {
        let cols = self.row_hits + self.row_misses;
        if cols == 0 {
            return 0.0;
        }
        self.row_hits as f64 / cols as f64
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"target\":{},\"elems\":{},\
             \"analytical_ms\":{},\"fsm_ms\":{},\"fsm_thrash_ms\":{},\
             \"delta_pct\":{},\"thrash_slowdown\":{},\
             \"row_hits\":{},\"row_misses\":{},\"row_hit_rate\":{}}}",
            string(&self.name),
            string(&self.target),
            self.elems,
            num(self.analytical_ms),
            num(self.fsm_ms),
            num(self.fsm_thrash_ms),
            num(self.delta_pct()),
            num(self.thrash_slowdown()),
            self.row_hits,
            self.row_misses,
            num(self.hit_rate()),
        )
    }
}

/// One optimizer comparison from `bench_parallel`: a command pipeline
/// flushed at level 0 (the legacy adjacent-pair peephole) and at level
/// 2 (dataflow graph fusion + CSE + placement), capturing both host
/// wall-clock and modeled device cost. Workloads are chosen so the
/// graph passes find rewrites — e.g. a recomputed K-means distance —
/// that the adjacent-pair peephole structurally cannot express.
#[derive(Debug, Clone)]
pub struct OptimizerRun {
    /// Pipeline label (`kmeans-dist-reuse`, …).
    pub name: String,
    /// Worker threads the execution engine was pinned to.
    pub threads: usize,
    /// Elements processed per iteration.
    pub elems: u64,
    /// Mean wall time per peephole (level 0) iteration, nanoseconds.
    pub peephole_mean_ns: u128,
    /// Best wall time per peephole iteration, nanoseconds.
    pub peephole_min_ns: u128,
    /// Mean wall time per dataflow (level 2) iteration, nanoseconds.
    pub dataflow_mean_ns: u128,
    /// Best wall time per dataflow iteration, nanoseconds.
    pub dataflow_min_ns: u128,
    /// Modeled device kernel time for one peephole pass, milliseconds.
    pub peephole_modeled_ms: f64,
    /// Modeled device kernel time for one dataflow pass, milliseconds.
    pub dataflow_modeled_ms: f64,
    /// CSE rewrites the dataflow pass performed per flush.
    pub cse_hits: u64,
    /// Graph fusions (scaled-add + cmp-select) per dataflow flush.
    pub graph_fusions: u64,
}

impl OptimizerRun {
    /// Modeled-cost ratio dataflow/peephole — ≤ 1.0 always (the graph
    /// passes are gated to never cost more than the peephole), < 1.0
    /// when a cross-command rewrite fired.
    pub fn modeled_cost_ratio(&self) -> f64 {
        if self.peephole_modeled_ms == 0.0 {
            return 0.0;
        }
        self.dataflow_modeled_ms / self.peephole_modeled_ms
    }

    /// Host wall-clock speedup of the dataflow path (best-time ratio),
    /// or 0 when the dataflow time was unmeasurably small.
    pub fn wall_speedup(&self) -> f64 {
        if self.dataflow_min_ns == 0 {
            return 0.0;
        }
        self.peephole_min_ns as f64 / self.dataflow_min_ns as f64
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"threads\":{},\"elems\":{},\
             \"peephole_mean_ns\":{},\"peephole_min_ns\":{},\
             \"dataflow_mean_ns\":{},\"dataflow_min_ns\":{},\
             \"peephole_modeled_ms\":{},\"dataflow_modeled_ms\":{},\
             \"modeled_cost_ratio\":{},\"wall_speedup\":{},\
             \"cse_hits\":{},\"graph_fusions\":{}}}",
            string(&self.name),
            self.threads,
            self.elems,
            self.peephole_mean_ns,
            self.peephole_min_ns,
            self.dataflow_mean_ns,
            self.dataflow_min_ns,
            num(self.peephole_modeled_ms),
            num(self.dataflow_modeled_ms),
            num(self.modeled_cost_ratio()),
            num(self.wall_speedup()),
            self.cse_hits,
            self.graph_fusions,
        )
    }
}

/// Renders the `bench_parallel` report: host parallelism, every
/// measurement, per-op speedups of the widest measured thread count
/// over the single-threaded run (best-time ratio, paired by op name),
/// the stream-vs-eager comparisons, the `--ranks` sharding sweep, the
/// skewed-shard imbalance section, and the fan-out dispatch-overhead
/// microbenchmark. All post-v1 sections are additive: consumers that
/// predate them must ignore unknown keys.
// One positional slice per document section: grouping them into a
// struct would churn every caller each time a section is added while
// conveying exactly the same information.
#[allow(clippy::too_many_arguments)]
pub fn parallel_runs_to_json(
    default_threads: usize,
    runs: &[ParallelRun],
    stream: &[StreamVsEager],
    rank_scaling: &[RankScalingRun],
    imbalance: &[ImbalanceRun],
    fanout_overhead: Option<&FanoutOverhead>,
    fidelity: &[FidelityRun],
    optimizer: &[OptimizerRun],
) -> String {
    let measured: Vec<String> = runs.iter().map(ParallelRun::to_json).collect();
    let mut speedups = Vec::new();
    // Pair each single-thread baseline with the widest measured count
    // for the same op; `--threads 1,2,4` sweeps therefore report the
    // 4-thread speedup even when the host default is 1.
    let top = runs.iter().map(|r| r.threads).filter(|&t| t > 1).max();
    if let Some(top) = top {
        for base in runs.iter().filter(|r| r.threads == 1) {
            if let Some(par) = runs
                .iter()
                .find(|r| r.threads == top && r.name == base.name)
            {
                if par.min_ns > 0 {
                    speedups.push(format!(
                        "{{\"name\":{},\"threads\":{},\"speedup\":{}}}",
                        string(&base.name),
                        top,
                        num(base.min_ns as f64 / par.min_ns as f64),
                    ));
                }
            }
        }
    }
    let compared: Vec<String> = stream.iter().map(StreamVsEager::to_json).collect();
    let scaled: Vec<String> = rank_scaling.iter().map(RankScalingRun::to_json).collect();
    let skewed: Vec<String> = imbalance.iter().map(ImbalanceRun::to_json).collect();
    let overhead = fanout_overhead.map_or_else(|| "null".into(), FanoutOverhead::to_json);
    let fidelity: Vec<String> = fidelity.iter().map(FidelityRun::to_json).collect();
    let optimizer: Vec<String> = optimizer.iter().map(OptimizerRun::to_json).collect();
    format!(
        "{{\"schema_version\":{BENCH_SCHEMA_VERSION},\
         \"threads_default\":{},\"runs\":[\n{}\n],\"speedups\":[{}],\
         \"stream_vs_eager\":[\n{}\n],\"rank_scaling\":[\n{}\n],\
         \"imbalance\":[{}],\"fanout_overhead\":{},\
         \"fidelity\":[\n{}\n],\"optimizer\":[\n{}\n]}}\n",
        default_threads,
        measured.join(",\n"),
        speedups.join(","),
        compared.join(",\n"),
        scaled.join(",\n"),
        skewed.join(",\n"),
        overhead,
        fidelity.join(",\n"),
        optimizer.join(",\n"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimbench::Params;
    use pimeval::{DeviceConfig, PimTarget};

    #[test]
    fn records_round_trip_through_the_parser() {
        let cfg = DeviceConfig::new(PimTarget::Fulcrum, 2);
        let r = crate::run_one(
            "AXPY",
            &cfg,
            &Params {
                scale: 0.01,
                seed: 1,
                ..Params::default()
            },
        );
        let json = records_to_json(std::slice::from_ref(&r));
        let doc = pimeval::trace::json::Json::parse(&json).unwrap();
        let runs = doc.get("runs").unwrap().as_array().unwrap();
        assert_eq!(runs.len(), 1);
        let run = &runs[0];
        assert_eq!(run.get("benchmark").unwrap().as_str(), Some("AXPY"));
        let total = run
            .get("stats")
            .unwrap()
            .get("totals")
            .unwrap()
            .get("kernel_time_ms")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((total - r.stats.kernel_time_ms()).abs() < 1e-9);
    }

    #[test]
    fn parallel_runs_export_pairs_speedups_by_name() {
        let runs = vec![
            ParallelRun {
                name: "add".into(),
                threads: 1,
                elems: 1000,
                mean_ns: 4000,
                min_ns: 4000,
            },
            ParallelRun {
                name: "add".into(),
                threads: 8,
                elems: 1000,
                mean_ns: 1100,
                min_ns: 1000,
            },
        ];
        let json = parallel_runs_to_json(8, &runs, &[], &[], &[], None, &[], &[]);
        let doc = pimeval::trace::json::Json::parse(&json).unwrap();
        assert_eq!(
            doc.get("schema_version").unwrap().as_f64().unwrap() as u32,
            BENCH_SCHEMA_VERSION
        );
        assert_eq!(
            doc.get("threads_default").unwrap().as_f64().unwrap() as usize,
            8
        );
        assert_eq!(doc.get("runs").unwrap().as_array().unwrap().len(), 2);
        let speedups = doc.get("speedups").unwrap().as_array().unwrap();
        assert_eq!(speedups.len(), 1);
        assert_eq!(speedups[0].get("threads").unwrap().as_f64(), Some(8.0));
        let s = speedups[0].get("speedup").unwrap().as_f64().unwrap();
        assert!((s - 4.0).abs() < 1e-9);
        assert!(doc
            .get("stream_vs_eager")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
        assert!(doc.get("imbalance").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn speedups_pair_against_the_widest_measured_thread_count() {
        // A `--threads 1,2,4` sweep on a 1-core host: default_threads is
        // 1, yet speedups must still populate from the 4-thread rows.
        let mk = |threads: usize, min_ns: u128| ParallelRun {
            name: "mul".into(),
            threads,
            elems: 1000,
            mean_ns: min_ns,
            min_ns,
        };
        let runs = vec![mk(1, 6000), mk(2, 3500), mk(4, 2000)];
        let json = parallel_runs_to_json(1, &runs, &[], &[], &[], None, &[], &[]);
        let doc = pimeval::trace::json::Json::parse(&json).unwrap();
        let speedups = doc.get("speedups").unwrap().as_array().unwrap();
        assert_eq!(speedups.len(), 1);
        assert_eq!(speedups[0].get("threads").unwrap().as_f64(), Some(4.0));
        let s = speedups[0].get("speedup").unwrap().as_f64().unwrap();
        assert!((s - 3.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_and_fanout_overhead_sections_export() {
        let imb = ImbalanceRun {
            name: "rr-skew-mixed-width".into(),
            threads: 4,
            shards: 7,
            elems: 3_000_000,
            even_mean_ns: 9000,
            even_min_ns: 8000,
            steal_mean_ns: 4400,
            steal_min_ns: 4000,
        };
        assert!((imb.steal_speedup() - 2.0).abs() < 1e-9);
        let fo = FanoutOverhead {
            threads: 4,
            elems: 16384,
            pool_mean_ns: 1200,
            pool_min_ns: 1000,
            spawn_mean_ns: 9000,
            spawn_min_ns: 8000,
        };
        assert!((fo.dispatch_speedup() - 8.0).abs() < 1e-9);
        let json = parallel_runs_to_json(
            4,
            &[],
            &[],
            &[],
            std::slice::from_ref(&imb),
            Some(&fo),
            &[],
            &[],
        );
        let doc = pimeval::trace::json::Json::parse(&json).unwrap();
        let entries = doc.get("imbalance").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.get("name").unwrap().as_str(), Some("rr-skew-mixed-width"));
        assert_eq!(e.get("shards").unwrap().as_f64(), Some(7.0));
        assert!((e.get("steal_speedup").unwrap().as_f64().unwrap() - 2.0).abs() < 1e-9);
        let o = doc.get("fanout_overhead").unwrap();
        assert_eq!(o.get("threads").unwrap().as_f64(), Some(4.0));
        assert!((o.get("dispatch_speedup").unwrap().as_f64().unwrap() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn rank_scaling_export_keeps_interconnect_separate_from_kernel() {
        let point = RankScalingRun {
            name: "add".into(),
            ranks: 4,
            elems: 1000,
            mean_ns: 2000,
            min_ns: 1000,
            kernel_ms: 2.5,
            interconnect_ms: 0.25,
            interconnect_bytes: 4096,
        };
        assert!((point.melem_per_s() - 1000.0).abs() < 1e-9);
        let json = parallel_runs_to_json(
            1,
            &[],
            &[],
            std::slice::from_ref(&point),
            &[],
            None,
            &[],
            &[],
        );
        let doc = pimeval::trace::json::Json::parse(&json).unwrap();
        let entries = doc.get("rank_scaling").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.get("name").unwrap().as_str(), Some("add"));
        assert_eq!(e.get("ranks").unwrap().as_f64(), Some(4.0));
        assert!((e.get("kernel_ms").unwrap().as_f64().unwrap() - 2.5).abs() < 1e-9);
        assert!((e.get("interconnect_ms").unwrap().as_f64().unwrap() - 0.25).abs() < 1e-9);
        assert_eq!(e.get("interconnect_bytes").unwrap().as_f64(), Some(4096.0));
    }

    #[test]
    fn fidelity_export_carries_deltas_and_hit_rates() {
        let f = FidelityRun {
            name: "add".into(),
            target: "Fulcrum".into(),
            elems: 1 << 20,
            analytical_ms: 2.0,
            fsm_ms: 2.0,
            fsm_thrash_ms: 5.0,
            row_hits: 300,
            row_misses: 100,
        };
        assert_eq!(f.delta_pct(), 0.0);
        assert!((f.thrash_slowdown() - 2.5).abs() < 1e-12);
        assert!((f.hit_rate() - 0.75).abs() < 1e-12);
        let json =
            parallel_runs_to_json(1, &[], &[], &[], &[], None, std::slice::from_ref(&f), &[]);
        let doc = pimeval::trace::json::Json::parse(&json).unwrap();
        let entries = doc.get("fidelity").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.get("name").unwrap().as_str(), Some("add"));
        assert_eq!(e.get("target").unwrap().as_str(), Some("Fulcrum"));
        assert_eq!(e.get("delta_pct").unwrap().as_f64(), Some(0.0));
        assert!((e.get("thrash_slowdown").unwrap().as_f64().unwrap() - 2.5).abs() < 1e-9);
        assert!((e.get("row_hit_rate").unwrap().as_f64().unwrap() - 0.75).abs() < 1e-9);
        // An empty fidelity section still parses (schema presence check).
        let empty = parallel_runs_to_json(1, &[], &[], &[], &[], None, &[], &[]);
        let doc = pimeval::trace::json::Json::parse(&empty).unwrap();
        assert!(doc.get("fidelity").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn stream_vs_eager_export_carries_both_cost_axes() {
        let cmp = StreamVsEager {
            name: "axpy-pair".into(),
            threads: 1,
            elems: 1000,
            eager_mean_ns: 2200,
            eager_min_ns: 2000,
            stream_mean_ns: 1200,
            stream_min_ns: 1000,
            eager_modeled_ms: 4.0,
            stream_modeled_ms: 3.0,
        };
        assert!((cmp.wall_speedup() - 2.0).abs() < 1e-9);
        assert!((cmp.modeled_cost_ratio() - 0.75).abs() < 1e-9);
        let json =
            parallel_runs_to_json(1, &[], std::slice::from_ref(&cmp), &[], &[], None, &[], &[]);
        let doc = pimeval::trace::json::Json::parse(&json).unwrap();
        let entries = doc.get("stream_vs_eager").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.get("name").unwrap().as_str(), Some("axpy-pair"));
        assert!((e.get("wall_speedup").unwrap().as_f64().unwrap() - 2.0).abs() < 1e-9);
        assert!((e.get("modeled_cost_ratio").unwrap().as_f64().unwrap() - 0.75).abs() < 1e-9);
        assert!((e.get("eager_modeled_ms").unwrap().as_f64().unwrap() - 4.0).abs() < 1e-9);
        assert!((e.get("stream_modeled_ms").unwrap().as_f64().unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn optimizer_export_carries_both_cost_axes_and_counters() {
        let run = OptimizerRun {
            name: "kmeans-dist-reuse".into(),
            threads: 1,
            elems: 1 << 16,
            peephole_mean_ns: 2200,
            peephole_min_ns: 2000,
            dataflow_mean_ns: 1100,
            dataflow_min_ns: 1000,
            peephole_modeled_ms: 8.0,
            dataflow_modeled_ms: 6.0,
            cse_hits: 4,
            graph_fusions: 2,
        };
        assert!((run.modeled_cost_ratio() - 0.75).abs() < 1e-9);
        assert!((run.wall_speedup() - 2.0).abs() < 1e-9);
        let json =
            parallel_runs_to_json(1, &[], &[], &[], &[], None, &[], std::slice::from_ref(&run));
        let doc = pimeval::trace::json::Json::parse(&json).unwrap();
        let entries = doc.get("optimizer").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.get("name").unwrap().as_str(), Some("kmeans-dist-reuse"));
        assert!((e.get("peephole_modeled_ms").unwrap().as_f64().unwrap() - 8.0).abs() < 1e-9);
        assert!((e.get("dataflow_modeled_ms").unwrap().as_f64().unwrap() - 6.0).abs() < 1e-9);
        assert!((e.get("modeled_cost_ratio").unwrap().as_f64().unwrap() - 0.75).abs() < 1e-9);
        assert_eq!(e.get("cse_hits").unwrap().as_f64(), Some(4.0));
        assert_eq!(e.get("graph_fusions").unwrap().as_f64(), Some(2.0));
        // An empty optimizer section still parses (schema presence check).
        let empty = parallel_runs_to_json(1, &[], &[], &[], &[], None, &[], &[]);
        let doc = pimeval::trace::json::Json::parse(&empty).unwrap();
        assert!(doc.get("optimizer").unwrap().as_array().unwrap().is_empty());
    }
}
