//! Machine-readable export of figure data: serializes [`SuiteRecord`]s
//! as JSON so the tables the `src/bin/*` binaries print can also feed
//! plotting scripts. Opt in with `--stats-json <file>` on any figure
//! binary that calls [`maybe_export`].

use std::path::PathBuf;

use pimeval::trace::json::{num, stats_to_json, string};

use crate::SuiteRecord;

/// Renders one run record as a JSON object, embedding the full
/// Listing-3 statistics plus the baseline comparisons the figures plot.
pub fn record_to_json(r: &SuiteRecord) -> String {
    format!(
        "{{\"benchmark\":{},\"target\":{},\
         \"pim_total_ms\":{},\"pim_kernel_ms\":{},\
         \"cpu_ms\":{},\"gpu_ms\":{},\
         \"cpu_energy_mj\":{},\"gpu_energy_mj\":{},\
         \"speedup_cpu_total\":{},\"speedup_cpu_kernel\":{},\"speedup_gpu\":{},\
         \"energy_reduction_cpu\":{},\"energy_reduction_gpu\":{},\
         \"stats\":{}}}",
        string(&r.name),
        string(&r.target.to_string()),
        num(r.pim_total_ms()),
        num(r.pim_kernel_ms()),
        num(r.cpu_ms),
        num(r.gpu_ms),
        num(r.cpu_energy_mj),
        num(r.gpu_energy_mj),
        num(r.speedup_cpu_total()),
        num(r.speedup_cpu_kernel()),
        num(r.speedup_gpu()),
        num(r.energy_reduction_cpu()),
        num(r.energy_reduction_gpu()),
        stats_to_json(&r.stats, &r.config),
    )
}

/// Renders a whole figure's records as `{"runs": [...]}`.
pub fn records_to_json(records: &[SuiteRecord]) -> String {
    let runs: Vec<String> = records.iter().map(record_to_json).collect();
    format!("{{\"runs\":[\n{}\n]}}\n", runs.join(",\n"))
}

/// The `--stats-json <file>` argument, if present on the command line.
pub fn stats_json_arg() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--stats-json")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

/// Writes `records` to the `--stats-json` path when the flag is present;
/// a no-op otherwise. Exits with an error message if the file cannot be
/// written (a figure run that silently loses its export is worse than a
/// failed one).
pub fn maybe_export(records: &[SuiteRecord]) {
    let Some(path) = stats_json_arg() else { return };
    match std::fs::write(&path, records_to_json(records)) {
        Ok(()) => eprintln!("wrote {} run(s) to {}", records.len(), path.display()),
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// One throughput measurement from the `bench_parallel` binary: an op
/// class timed at a fixed worker count on the host machine.
#[derive(Debug, Clone)]
pub struct ParallelRun {
    /// Operation label (`add`, `mul`, `lt`, `red_sum`, `vgg13-e2e`, …).
    pub name: String,
    /// Worker threads the execution engine was pinned to.
    pub threads: usize,
    /// Elements processed per iteration (0 for end-to-end runs where
    /// throughput-per-element is not meaningful).
    pub elems: u64,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: u128,
    /// Best observed wall time per iteration, nanoseconds.
    pub min_ns: u128,
}

impl ParallelRun {
    /// Element throughput in Melem/s from the best iteration, or 0 for
    /// end-to-end runs.
    pub fn melem_per_s(&self) -> f64 {
        if self.elems == 0 || self.min_ns == 0 {
            return 0.0;
        }
        self.elems as f64 / (self.min_ns as f64 / 1e9) / 1e6
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"threads\":{},\"elems\":{},\
             \"mean_ns\":{},\"min_ns\":{},\"melem_per_s\":{}}}",
            string(&self.name),
            self.threads,
            self.elems,
            self.mean_ns,
            self.min_ns,
            num(self.melem_per_s()),
        )
    }
}

/// Renders the `bench_parallel` report: host parallelism, every
/// measurement, and per-op speedups of the multi-threaded run over the
/// single-threaded one (best-time ratio, paired by op name).
pub fn parallel_runs_to_json(default_threads: usize, runs: &[ParallelRun]) -> String {
    let measured: Vec<String> = runs.iter().map(ParallelRun::to_json).collect();
    let mut speedups = Vec::new();
    if default_threads > 1 {
        for base in runs.iter().filter(|r| r.threads == 1) {
            if let Some(par) = runs
                .iter()
                .find(|r| r.threads == default_threads && r.name == base.name)
            {
                if par.min_ns > 0 {
                    speedups.push(format!(
                        "{{\"name\":{},\"speedup\":{}}}",
                        string(&base.name),
                        num(base.min_ns as f64 / par.min_ns as f64),
                    ));
                }
            }
        }
    }
    format!(
        "{{\"threads_default\":{},\"runs\":[\n{}\n],\"speedups\":[{}]}}\n",
        default_threads,
        measured.join(",\n"),
        speedups.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimbench::Params;
    use pimeval::{DeviceConfig, PimTarget};

    #[test]
    fn records_round_trip_through_the_parser() {
        let cfg = DeviceConfig::new(PimTarget::Fulcrum, 2);
        let r = crate::run_one(
            "AXPY",
            &cfg,
            &Params {
                scale: 0.01,
                seed: 1,
            },
        );
        let json = records_to_json(std::slice::from_ref(&r));
        let doc = pimeval::trace::json::Json::parse(&json).unwrap();
        let runs = doc.get("runs").unwrap().as_array().unwrap();
        assert_eq!(runs.len(), 1);
        let run = &runs[0];
        assert_eq!(run.get("benchmark").unwrap().as_str(), Some("AXPY"));
        let total = run
            .get("stats")
            .unwrap()
            .get("totals")
            .unwrap()
            .get("kernel_time_ms")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((total - r.stats.kernel_time_ms()).abs() < 1e-9);
    }

    #[test]
    fn parallel_runs_export_pairs_speedups_by_name() {
        let runs = vec![
            ParallelRun {
                name: "add".into(),
                threads: 1,
                elems: 1000,
                mean_ns: 4000,
                min_ns: 4000,
            },
            ParallelRun {
                name: "add".into(),
                threads: 8,
                elems: 1000,
                mean_ns: 1100,
                min_ns: 1000,
            },
        ];
        let json = parallel_runs_to_json(8, &runs);
        let doc = pimeval::trace::json::Json::parse(&json).unwrap();
        assert_eq!(
            doc.get("threads_default").unwrap().as_f64().unwrap() as usize,
            8
        );
        assert_eq!(doc.get("runs").unwrap().as_array().unwrap().len(), 2);
        let speedups = doc.get("speedups").unwrap().as_array().unwrap();
        assert_eq!(speedups.len(), 1);
        let s = speedups[0].get("speedup").unwrap().as_f64().unwrap();
        assert!((s - 4.0).abs() < 1e-9);
    }
}
