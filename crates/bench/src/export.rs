//! Machine-readable export of figure data: serializes [`SuiteRecord`]s
//! as JSON so the tables the `src/bin/*` binaries print can also feed
//! plotting scripts. Opt in with `--stats-json <file>` on any figure
//! binary that calls [`maybe_export`].

use std::path::PathBuf;

use pimeval::trace::json::{num, stats_to_json, string};

use crate::SuiteRecord;

/// Version of the `BENCH_parallel.json` document layout written by
/// [`parallel_runs_to_json`]. Bumped only on breaking changes; additive
/// fields keep the same version, and consumers (`bench_regress`, the
/// golden-results CI diff) must tolerate fields they do not know.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// Renders one run record as a JSON object, embedding the full
/// Listing-3 statistics plus the baseline comparisons the figures plot.
pub fn record_to_json(r: &SuiteRecord) -> String {
    format!(
        "{{\"benchmark\":{},\"target\":{},\
         \"pim_total_ms\":{},\"pim_kernel_ms\":{},\
         \"cpu_ms\":{},\"gpu_ms\":{},\
         \"cpu_energy_mj\":{},\"gpu_energy_mj\":{},\
         \"speedup_cpu_total\":{},\"speedup_cpu_kernel\":{},\"speedup_gpu\":{},\
         \"energy_reduction_cpu\":{},\"energy_reduction_gpu\":{},\
         \"stats\":{}}}",
        string(&r.name),
        string(&r.target.to_string()),
        num(r.pim_total_ms()),
        num(r.pim_kernel_ms()),
        num(r.cpu_ms),
        num(r.gpu_ms),
        num(r.cpu_energy_mj),
        num(r.gpu_energy_mj),
        num(r.speedup_cpu_total()),
        num(r.speedup_cpu_kernel()),
        num(r.speedup_gpu()),
        num(r.energy_reduction_cpu()),
        num(r.energy_reduction_gpu()),
        stats_to_json(&r.stats, &r.config),
    )
}

/// Renders a whole figure's records as `{"runs": [...]}`.
pub fn records_to_json(records: &[SuiteRecord]) -> String {
    let runs: Vec<String> = records.iter().map(record_to_json).collect();
    format!("{{\"runs\":[\n{}\n]}}\n", runs.join(",\n"))
}

/// The `--stats-json <file>` argument, if present on the command line.
pub fn stats_json_arg() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--stats-json")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

/// Writes `records` to the `--stats-json` path when the flag is present;
/// a no-op otherwise. Exits with an error message if the file cannot be
/// written (a figure run that silently loses its export is worse than a
/// failed one).
pub fn maybe_export(records: &[SuiteRecord]) {
    let Some(path) = stats_json_arg() else { return };
    match std::fs::write(&path, records_to_json(records)) {
        Ok(()) => eprintln!("wrote {} run(s) to {}", records.len(), path.display()),
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// One throughput measurement from the `bench_parallel` binary: an op
/// class timed at a fixed worker count on the host machine.
#[derive(Debug, Clone)]
pub struct ParallelRun {
    /// Operation label (`add`, `mul`, `lt`, `red_sum`, `vgg13-e2e`, …).
    pub name: String,
    /// Worker threads the execution engine was pinned to.
    pub threads: usize,
    /// Elements processed per iteration (0 for end-to-end runs where
    /// throughput-per-element is not meaningful).
    pub elems: u64,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: u128,
    /// Best observed wall time per iteration, nanoseconds.
    pub min_ns: u128,
}

impl ParallelRun {
    /// Element throughput in Melem/s from the best iteration, or 0 for
    /// end-to-end runs.
    pub fn melem_per_s(&self) -> f64 {
        if self.elems == 0 || self.min_ns == 0 {
            return 0.0;
        }
        self.elems as f64 / (self.min_ns as f64 / 1e9) / 1e6
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"threads\":{},\"elems\":{},\
             \"mean_ns\":{},\"min_ns\":{},\"melem_per_s\":{}}}",
            string(&self.name),
            self.threads,
            self.elems,
            self.mean_ns,
            self.min_ns,
            num(self.melem_per_s()),
        )
    }
}

/// One command pipeline measured twice by `bench_parallel`: issued
/// eagerly (one [`pimeval::Device::issue`] per call) and recorded
/// through a [`pimeval::CommandStream`] whose flush runs the peephole
/// passes. Captures both host wall-clock and the modeled device cost so
/// the export shows what fusion buys on each axis.
#[derive(Debug, Clone)]
pub struct StreamVsEager {
    /// Pipeline label (`axpy-pair`, `lt-select`, …).
    pub name: String,
    /// Worker threads the execution engine was pinned to.
    pub threads: usize,
    /// Elements processed per iteration.
    pub elems: u64,
    /// Mean wall time per eager iteration, nanoseconds.
    pub eager_mean_ns: u128,
    /// Best wall time per eager iteration, nanoseconds.
    pub eager_min_ns: u128,
    /// Mean wall time per streamed iteration, nanoseconds.
    pub stream_mean_ns: u128,
    /// Best wall time per streamed iteration, nanoseconds.
    pub stream_min_ns: u128,
    /// Modeled device kernel time for one eager pass, milliseconds.
    pub eager_modeled_ms: f64,
    /// Modeled device kernel time for one streamed (fused) pass,
    /// milliseconds.
    pub stream_modeled_ms: f64,
}

impl StreamVsEager {
    /// Host wall-clock speedup of the streamed path (best-time ratio),
    /// or 0 when the streamed time was unmeasurably small.
    pub fn wall_speedup(&self) -> f64 {
        if self.stream_min_ns == 0 {
            return 0.0;
        }
        self.eager_min_ns as f64 / self.stream_min_ns as f64
    }

    /// Modeled-cost ratio streamed/eager — ≤ 1.0 whenever the fusion
    /// passes fire (the fused program never costs more than its pair).
    pub fn modeled_cost_ratio(&self) -> f64 {
        if self.eager_modeled_ms == 0.0 {
            return 0.0;
        }
        self.stream_modeled_ms / self.eager_modeled_ms
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"threads\":{},\"elems\":{},\
             \"eager_mean_ns\":{},\"eager_min_ns\":{},\
             \"stream_mean_ns\":{},\"stream_min_ns\":{},\
             \"wall_speedup\":{},\
             \"eager_modeled_ms\":{},\"stream_modeled_ms\":{},\
             \"modeled_cost_ratio\":{}}}",
            string(&self.name),
            self.threads,
            self.elems,
            self.eager_mean_ns,
            self.eager_min_ns,
            self.stream_mean_ns,
            self.stream_min_ns,
            num(self.wall_speedup()),
            num(self.eager_modeled_ms),
            num(self.stream_modeled_ms),
            num(self.modeled_cost_ratio()),
        )
    }
}

/// One point of the `--ranks` sweep from `bench_parallel`: an op class
/// run on a device sharded per rank, capturing both host wall time and
/// the modeled device-side split between compute and cross-rank
/// interconnect traffic.
#[derive(Debug, Clone)]
pub struct RankScalingRun {
    /// Operation label (`add`, `red_sum`, `copy_to_device`, …).
    pub name: String,
    /// DRAM ranks = execution shards the device was built with.
    pub ranks: usize,
    /// Elements processed per iteration.
    pub elems: u64,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: u128,
    /// Best observed wall time per iteration, nanoseconds.
    pub min_ns: u128,
    /// Modeled aggregate kernel time for one pass, milliseconds.
    pub kernel_ms: f64,
    /// Modeled cross-rank interconnect time for one pass, milliseconds
    /// (reported separately from kernel time, never folded into it).
    pub interconnect_ms: f64,
    /// Bytes moved across the rank interconnect in one pass.
    pub interconnect_bytes: u64,
}

impl RankScalingRun {
    /// Element throughput in Melem/s from the best iteration.
    pub fn melem_per_s(&self) -> f64 {
        if self.elems == 0 || self.min_ns == 0 {
            return 0.0;
        }
        self.elems as f64 / (self.min_ns as f64 / 1e9) / 1e6
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"ranks\":{},\"elems\":{},\
             \"mean_ns\":{},\"min_ns\":{},\"melem_per_s\":{},\
             \"kernel_ms\":{},\"interconnect_ms\":{},\"interconnect_bytes\":{}}}",
            string(&self.name),
            self.ranks,
            self.elems,
            self.mean_ns,
            self.min_ns,
            num(self.melem_per_s()),
            num(self.kernel_ms),
            num(self.interconnect_ms),
            self.interconnect_bytes,
        )
    }
}

/// Renders the `bench_parallel` report: host parallelism, every
/// measurement, per-op speedups of the multi-threaded run over the
/// single-threaded one (best-time ratio, paired by op name), the
/// stream-vs-eager comparisons, and the `--ranks` sharding sweep.
pub fn parallel_runs_to_json(
    default_threads: usize,
    runs: &[ParallelRun],
    stream: &[StreamVsEager],
    rank_scaling: &[RankScalingRun],
) -> String {
    let measured: Vec<String> = runs.iter().map(ParallelRun::to_json).collect();
    let mut speedups = Vec::new();
    if default_threads > 1 {
        for base in runs.iter().filter(|r| r.threads == 1) {
            if let Some(par) = runs
                .iter()
                .find(|r| r.threads == default_threads && r.name == base.name)
            {
                if par.min_ns > 0 {
                    speedups.push(format!(
                        "{{\"name\":{},\"speedup\":{}}}",
                        string(&base.name),
                        num(base.min_ns as f64 / par.min_ns as f64),
                    ));
                }
            }
        }
    }
    let compared: Vec<String> = stream.iter().map(StreamVsEager::to_json).collect();
    let scaled: Vec<String> = rank_scaling.iter().map(RankScalingRun::to_json).collect();
    format!(
        "{{\"schema_version\":{BENCH_SCHEMA_VERSION},\
         \"threads_default\":{},\"runs\":[\n{}\n],\"speedups\":[{}],\
         \"stream_vs_eager\":[\n{}\n],\"rank_scaling\":[\n{}\n]}}\n",
        default_threads,
        measured.join(",\n"),
        speedups.join(","),
        compared.join(",\n"),
        scaled.join(",\n"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimbench::Params;
    use pimeval::{DeviceConfig, PimTarget};

    #[test]
    fn records_round_trip_through_the_parser() {
        let cfg = DeviceConfig::new(PimTarget::Fulcrum, 2);
        let r = crate::run_one(
            "AXPY",
            &cfg,
            &Params {
                scale: 0.01,
                seed: 1,
                ..Params::default()
            },
        );
        let json = records_to_json(std::slice::from_ref(&r));
        let doc = pimeval::trace::json::Json::parse(&json).unwrap();
        let runs = doc.get("runs").unwrap().as_array().unwrap();
        assert_eq!(runs.len(), 1);
        let run = &runs[0];
        assert_eq!(run.get("benchmark").unwrap().as_str(), Some("AXPY"));
        let total = run
            .get("stats")
            .unwrap()
            .get("totals")
            .unwrap()
            .get("kernel_time_ms")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((total - r.stats.kernel_time_ms()).abs() < 1e-9);
    }

    #[test]
    fn parallel_runs_export_pairs_speedups_by_name() {
        let runs = vec![
            ParallelRun {
                name: "add".into(),
                threads: 1,
                elems: 1000,
                mean_ns: 4000,
                min_ns: 4000,
            },
            ParallelRun {
                name: "add".into(),
                threads: 8,
                elems: 1000,
                mean_ns: 1100,
                min_ns: 1000,
            },
        ];
        let json = parallel_runs_to_json(8, &runs, &[], &[]);
        let doc = pimeval::trace::json::Json::parse(&json).unwrap();
        assert_eq!(
            doc.get("schema_version").unwrap().as_f64().unwrap() as u32,
            BENCH_SCHEMA_VERSION
        );
        assert_eq!(
            doc.get("threads_default").unwrap().as_f64().unwrap() as usize,
            8
        );
        assert_eq!(doc.get("runs").unwrap().as_array().unwrap().len(), 2);
        let speedups = doc.get("speedups").unwrap().as_array().unwrap();
        assert_eq!(speedups.len(), 1);
        let s = speedups[0].get("speedup").unwrap().as_f64().unwrap();
        assert!((s - 4.0).abs() < 1e-9);
        assert!(doc
            .get("stream_vs_eager")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn rank_scaling_export_keeps_interconnect_separate_from_kernel() {
        let point = RankScalingRun {
            name: "add".into(),
            ranks: 4,
            elems: 1000,
            mean_ns: 2000,
            min_ns: 1000,
            kernel_ms: 2.5,
            interconnect_ms: 0.25,
            interconnect_bytes: 4096,
        };
        assert!((point.melem_per_s() - 1000.0).abs() < 1e-9);
        let json = parallel_runs_to_json(1, &[], &[], std::slice::from_ref(&point));
        let doc = pimeval::trace::json::Json::parse(&json).unwrap();
        let entries = doc.get("rank_scaling").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.get("name").unwrap().as_str(), Some("add"));
        assert_eq!(e.get("ranks").unwrap().as_f64(), Some(4.0));
        assert!((e.get("kernel_ms").unwrap().as_f64().unwrap() - 2.5).abs() < 1e-9);
        assert!((e.get("interconnect_ms").unwrap().as_f64().unwrap() - 0.25).abs() < 1e-9);
        assert_eq!(e.get("interconnect_bytes").unwrap().as_f64(), Some(4096.0));
    }

    #[test]
    fn stream_vs_eager_export_carries_both_cost_axes() {
        let cmp = StreamVsEager {
            name: "axpy-pair".into(),
            threads: 1,
            elems: 1000,
            eager_mean_ns: 2200,
            eager_min_ns: 2000,
            stream_mean_ns: 1200,
            stream_min_ns: 1000,
            eager_modeled_ms: 4.0,
            stream_modeled_ms: 3.0,
        };
        assert!((cmp.wall_speedup() - 2.0).abs() < 1e-9);
        assert!((cmp.modeled_cost_ratio() - 0.75).abs() < 1e-9);
        let json = parallel_runs_to_json(1, &[], std::slice::from_ref(&cmp), &[]);
        let doc = pimeval::trace::json::Json::parse(&json).unwrap();
        let entries = doc.get("stream_vs_eager").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.get("name").unwrap().as_str(), Some("axpy-pair"));
        assert!((e.get("wall_speedup").unwrap().as_f64().unwrap() - 2.0).abs() < 1e-9);
        assert!((e.get("modeled_cost_ratio").unwrap().as_f64().unwrap() - 0.75).abs() < 1e-9);
        assert!((e.get("eager_modeled_ms").unwrap().as_f64().unwrap() - 4.0).abs() < 1e-9);
        assert!((e.get("stream_modeled_ms").unwrap().as_f64().unwrap() - 3.0).abs() < 1e-9);
    }
}
