//! Minimal std-only micro-benchmark harness for the `benches/` targets.
//!
//! `cargo bench` runs each bench binary with `harness = false`; this
//! module supplies the timing loop so no registry dependency is needed.
//! Each measurement warms up, picks a batch size targeting ~10 ms per
//! batch, then reports the mean and best per-iteration time over a
//! ~200 ms sampling window.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Sampling budget per measurement.
const SAMPLE_BUDGET: Duration = Duration::from_millis(200);
/// Target wall time per batch.
const BATCH_TARGET: Duration = Duration::from_millis(10);

/// One completed measurement.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Mean time per iteration.
    pub mean: Duration,
    /// Fastest observed per-iteration time (batch minimum).
    pub min: Duration,
    /// Total iterations executed during sampling.
    pub iters: u64,
}

/// Times `f`, prints one aligned result line, and returns the measurement.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> Measurement {
    let m = measure(&mut f);
    println!(
        "{:<44} mean {:>12}  min {:>12}  ({} iters)",
        name,
        fmt(m.mean),
        fmt(m.min),
        m.iters
    );
    m
}

/// Like [`bench()`], but also reports element throughput from the best time.
pub fn bench_throughput<R>(name: &str, elems: u64, mut f: impl FnMut() -> R) -> Measurement {
    let m = measure(&mut f);
    let rate = elems as f64 / m.min.as_secs_f64();
    println!(
        "{:<44} mean {:>12}  min {:>12}  {:>10.1} Melem/s",
        name,
        fmt(m.mean),
        fmt(m.min),
        rate / 1e6
    );
    m
}

/// Prints a section header for a group of related measurements.
pub fn group(title: &str) {
    println!("\n== {title} ==");
}

fn measure<R>(f: &mut impl FnMut() -> R) -> Measurement {
    // Warmup and cost estimate for batch sizing.
    let start = Instant::now();
    black_box(f());
    let rough = start.elapsed().max(Duration::from_nanos(1));
    let batch = (BATCH_TARGET.as_nanos() / rough.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    let mut best = Duration::MAX;
    while total < SAMPLE_BUDGET {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let elapsed = start.elapsed();
        best = best.min(elapsed / batch as u32);
        total += elapsed;
        iters += batch;
    }
    Measurement {
        mean: total / iters as u32,
        min: best,
        iters,
    }
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_iterations_and_orders_min_mean() {
        let mut x = 0u64;
        let m = measure(&mut || {
            x = x.wrapping_add(1);
            x
        });
        assert!(m.iters > 0);
        assert!(m.min <= m.mean);
    }
}
