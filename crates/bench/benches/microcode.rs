//! Criterion benchmarks of the bit-serial substrate: microprogram
//! generation and row-wide VM execution at full subarray width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pim_dram::BitMatrix;
use pim_microcode::encode::encode_vertical;
use pim_microcode::gen::{self, BinaryOp};
use pim_microcode::vm::{Region, Vm};

fn bench_codegen(c: &mut Criterion) {
    let mut group = c.benchmark_group("codegen");
    for bits in [8u32, 32, 64] {
        group.bench_function(BenchmarkId::new("add", bits), |b| {
            b.iter(|| gen::binary(BinaryOp::Add, bits))
        });
        group.bench_function(BenchmarkId::new("mul", bits), |b| {
            b.iter(|| gen::binary(BinaryOp::Mul, bits))
        });
    }
    group.finish();
}

fn bench_vm(c: &mut Criterion) {
    let cols = 8192; // one full subarray row
    let bits = 32u32;
    let mut group = c.benchmark_group("vm_row_wide");
    group.throughput(Throughput::Elements(cols as u64));
    let values: Vec<i64> = (0..cols as i64).collect();
    for (name, prog) in [
        ("add32", gen::binary(BinaryOp::Add, bits)),
        ("mul32", gen::binary(BinaryOp::Mul, bits)),
        ("redsum32", gen::red_sum(bits, true)),
    ] {
        let mut mat = BitMatrix::new(3 * bits as usize, cols);
        encode_vertical(&mut mat, 0, bits, &values);
        encode_vertical(&mut mat, bits as usize, bits, &values);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut vm = Vm::new(&mut mat, 3);
                vm.bind(0, Region::new(0, bits));
                vm.bind(1, Region::new(bits as usize, bits));
                vm.bind(2, Region::new(2 * bits as usize, bits));
                vm.run(&prog).unwrap();
                vm.accumulator()
            })
        });
    }
    group.finish();
}

fn bench_analog(c: &mut Criterion) {
    use pim_microcode::analog;
    let cols = 8192;
    let bits = 32u32;
    let mut group = c.benchmark_group("analog_vm");
    group.throughput(Throughput::Elements(cols as u64));
    let values: Vec<i64> = (0..cols as i64).collect();
    let prog = analog::binary(BinaryOp::Add, bits);
    let rows = 3 * bits as usize + prog.temp_rows() as usize;
    let mut mat = BitMatrix::new(rows, cols);
    encode_vertical(&mut mat, 0, bits, &values);
    encode_vertical(&mut mat, bits as usize, bits, &values);
    group.bench_function("tra_add32", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&mut mat, 3);
            vm.bind(0, Region::new(0, bits));
            vm.bind(1, Region::new(bits as usize, bits));
            vm.bind(2, Region::new(2 * bits as usize, bits));
            vm.bind_temp(Region::new(3 * bits as usize, prog.temp_rows()));
            vm.run(&prog).unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, bench_codegen, bench_vm, bench_analog);
criterion_main!(benches);
