//! Benchmarks of the bit-serial substrate: microprogram generation and
//! row-wide VM execution at full subarray width. Run with `cargo bench`.

use pim_bench_harness::microbench::{bench, bench_throughput, group};
use pim_dram::BitMatrix;
use pim_microcode::cache::{self, ProgKey};
use pim_microcode::encode::encode_vertical;
use pim_microcode::gen::{self, BinaryOp};
use pim_microcode::vm::{Region, Vm};

fn bench_codegen() {
    group("codegen");
    for bits in [8u32, 32, 64] {
        bench(&format!("add/{bits}"), || gen::binary(BinaryOp::Add, bits));
        bench(&format!("mul/{bits}"), || gen::binary(BinaryOp::Mul, bits));
        // The cached path the VM hot loops actually take.
        bench(&format!("add/{bits} (cached)"), || {
            cache::program(ProgKey::Binary(BinaryOp::Add, bits))
        });
    }
}

fn bench_vm() {
    let cols = 8192; // one full subarray row
    let bits = 32u32;
    group("vm_row_wide");
    let values: Vec<i64> = (0..cols as i64).collect();
    for (name, prog) in [
        (
            "add32",
            cache::program(ProgKey::Binary(BinaryOp::Add, bits)),
        ),
        (
            "mul32",
            cache::program(ProgKey::Binary(BinaryOp::Mul, bits)),
        ),
        ("redsum32", cache::program(ProgKey::RedSum(bits, true))),
    ] {
        let mut mat = BitMatrix::new(3 * bits as usize, cols);
        encode_vertical(&mut mat, 0, bits, &values);
        encode_vertical(&mut mat, bits as usize, bits, &values);
        // `run` dispatches to the word-packed compiled kernel; the
        // `(interp)` row forces the reference interpreter for contrast.
        bench_throughput(name, cols as u64, || {
            let mut vm = Vm::new(&mut mat, 3);
            vm.bind(0, Region::new(0, bits));
            vm.bind(1, Region::new(bits as usize, bits));
            vm.bind(2, Region::new(2 * bits as usize, bits));
            vm.run(&prog).unwrap();
            vm.accumulator()
        });
        bench_throughput(&format!("{name} (interp)"), cols as u64, || {
            let mut vm = Vm::new(&mut mat, 3);
            vm.bind(0, Region::new(0, bits));
            vm.bind(1, Region::new(bits as usize, bits));
            vm.bind(2, Region::new(2 * bits as usize, bits));
            vm.run_interpreted(&prog).unwrap();
            vm.accumulator()
        });
    }
}

fn bench_analog() {
    let cols = 8192;
    let bits = 32u32;
    group("analog_vm");
    let values: Vec<i64> = (0..cols as i64).collect();
    let prog = cache::program(ProgKey::AnalogBinary(BinaryOp::Add, bits));
    let rows = 3 * bits as usize + prog.temp_rows() as usize;
    let mut mat = BitMatrix::new(rows, cols);
    encode_vertical(&mut mat, 0, bits, &values);
    encode_vertical(&mut mat, bits as usize, bits, &values);
    bench_throughput("tra_add32", cols as u64, || {
        let mut vm = Vm::new(&mut mat, 3);
        vm.bind(0, Region::new(0, bits));
        vm.bind(1, Region::new(bits as usize, bits));
        vm.bind(2, Region::new(2 * bits as usize, bits));
        vm.bind_temp(Region::new(3 * bits as usize, prog.temp_rows()));
        vm.run(&prog).unwrap();
    });
}

fn main() {
    bench_codegen();
    bench_vm();
    bench_analog();
}
