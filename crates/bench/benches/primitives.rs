//! Benchmarks of the four Fig. 6 primitive operations on each PIM
//! target — measures the *simulator's* throughput (functional execution
//! plus modeling) for the operations the paper sweeps. Run with
//! `cargo bench`.

use pim_bench_harness::microbench::{bench_throughput, group};
use pimeval::{DataType, Device, DeviceConfig, PimTarget};

const N: usize = 1 << 16;

fn main() {
    group("primitives");
    let a: Vec<i32> = (0..N as i32)
        .map(|i| i.wrapping_mul(2_654_435_761u32 as i32))
        .collect();
    let b: Vec<i32> = (0..N as i32).map(|i| i.wrapping_mul(40_503)).collect();
    for target in PimTarget::ALL {
        let mut dev = Device::new(DeviceConfig::new(target, 4)).unwrap();
        let oa = dev.alloc_vec(&a).unwrap();
        let ob = dev.alloc_vec(&b).unwrap();
        let oc = dev.alloc_associated(oa, DataType::Int32).unwrap();
        bench_throughput(&format!("add/{}", target.name()), N as u64, || {
            dev.add(oa, ob, oc).unwrap()
        });
        bench_throughput(&format!("mul/{}", target.name()), N as u64, || {
            dev.mul(oa, ob, oc).unwrap()
        });
        bench_throughput(&format!("reduction/{}", target.name()), N as u64, || {
            dev.red_sum(oa).unwrap()
        });
        bench_throughput(&format!("popcount/{}", target.name()), N as u64, || {
            dev.popcount(oa, oc).unwrap()
        });
    }
}
