//! Criterion benchmarks of the four Fig. 6 primitive operations on each
//! PIM target — measures the *simulator's* throughput (functional
//! execution + modeling) for the operations the paper sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pimeval::{DataType, Device, DeviceConfig, PimTarget};

const N: usize = 1 << 16;

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");
    group.throughput(Throughput::Elements(N as u64));
    let a: Vec<i32> = (0..N as i32).map(|i| i.wrapping_mul(2_654_435_761u32 as i32)).collect();
    let b: Vec<i32> = (0..N as i32).map(|i| i.wrapping_mul(40_503)).collect();
    for target in PimTarget::ALL {
        let mut dev = Device::new(DeviceConfig::new(target, 4)).unwrap();
        let oa = dev.alloc_vec(&a).unwrap();
        let ob = dev.alloc_vec(&b).unwrap();
        let oc = dev.alloc_associated(oa, DataType::Int32).unwrap();
        group.bench_function(BenchmarkId::new("add", target.name()), |bench| {
            bench.iter(|| dev.add(oa, ob, oc).unwrap())
        });
        group.bench_function(BenchmarkId::new("mul", target.name()), |bench| {
            bench.iter(|| dev.mul(oa, ob, oc).unwrap())
        });
        group.bench_function(BenchmarkId::new("reduction", target.name()), |bench| {
            bench.iter(|| dev.red_sum(oa).unwrap())
        });
        group.bench_function(BenchmarkId::new("popcount", target.name()), |bench| {
            bench.iter(|| dev.popcount(oa, oc).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
