//! Criterion benchmarks of end-to-end simulator workflows: allocation
//! churn and full small benchmark runs per target.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pimbench::{benchmark_by_name, Params};
use pimeval::{DataType, Device, DeviceConfig, PimTarget};

fn bench_alloc_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc_churn");
    for target in PimTarget::ALL {
        group.bench_function(BenchmarkId::new("alloc_free_1k", target.name()), |b| {
            let mut dev = Device::new(DeviceConfig::new(target, 1)).unwrap();
            b.iter(|| {
                let ids: Vec<_> =
                    (0..64).map(|_| dev.alloc(1024, DataType::Int32).unwrap()).collect();
                for id in ids {
                    dev.free(id).unwrap();
                }
            })
        });
    }
    group.finish();
}

fn bench_full_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("benchmark_runs");
    group.sample_size(10);
    let params = Params { scale: 1.0 / 64.0, seed: 42 };
    for name in ["Vector Addition", "K-means", "Histogram"] {
        for target in PimTarget::ALL {
            let bench = benchmark_by_name(name).unwrap();
            group.bench_function(BenchmarkId::new(name, target.name()), |b| {
                b.iter(|| {
                    let mut dev = Device::new(DeviceConfig::new(target, 1)).unwrap();
                    bench.run(&mut dev, &params).unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_alloc_churn, bench_full_runs);
criterion_main!(benches);
