//! Benchmarks of end-to-end simulator workflows: allocation churn and
//! full small benchmark runs per target. Run with `cargo bench`.

use pim_bench_harness::microbench::{bench, group};
use pimbench::{benchmark_by_name, Params};
use pimeval::{DataType, Device, DeviceConfig, PimTarget};

fn bench_alloc_churn() {
    group("alloc_churn");
    for target in PimTarget::ALL {
        let mut dev = Device::new(DeviceConfig::new(target, 1)).unwrap();
        bench(&format!("alloc_free_1k/{}", target.name()), || {
            let ids: Vec<_> = (0..64)
                .map(|_| dev.alloc(1024, DataType::Int32).unwrap())
                .collect();
            for id in ids {
                dev.free(id).unwrap();
            }
        });
    }
}

fn bench_full_runs() {
    group("benchmark_runs");
    let params = Params {
        scale: 1.0 / 64.0,
        seed: 42,
        ..Params::default()
    };
    for name in ["Vector Addition", "K-means", "Histogram"] {
        for target in PimTarget::ALL {
            let bench_impl = benchmark_by_name(name).unwrap();
            bench(&format!("{name}/{}", target.name()), || {
                let mut dev = Device::new(DeviceConfig::new(target, 1)).unwrap();
                bench_impl.run(&mut dev, &params).unwrap()
            });
        }
    }
}

fn main() {
    bench_alloc_churn();
    bench_full_runs();
}
