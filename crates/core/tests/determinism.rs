//! Parallel-execution determinism suite: for every target and every op
//! class, `PIM_THREADS=1` and `PIM_THREADS=8` must produce bit-identical
//! output buffers, identical `SimStats`, and identical trace-event
//! streams. Buffers are sized past `exec::MIN_CHUNK` so the 8-thread
//! runs genuinely fan out.

use std::fmt::Debug;

use pimeval::exec;
use pimeval::trace::TraceEvent;
use pimeval::{Device, DeviceConfig, PimScalar, PimTarget, SimStats};

/// Large enough that 8-thread runs split into multiple chunks
/// (`exec::MIN_CHUNK` elements per worker minimum).
const N: usize = 4 * exec::MIN_CHUNK + 1234;

/// Deterministic pseudo-random host values (SplitMix64).
fn inputs<T: PimScalar>(seed: u64, n: usize) -> Vec<T> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            T::from_device((z ^ (z >> 31)) as i64)
        })
        .collect()
}

/// Exercises every op class: element-wise binary/unary, scalar variants,
/// comparisons, select, shifts, popcount, broadcast, reductions (full
/// and ranged), and all three copy directions. Returns everything the
/// run produced: output buffers, reduction values, stats, and trace.
#[allow(clippy::type_complexity)]
fn run_all_ops<T: PimScalar>(
    target: PimTarget,
) -> (Vec<Vec<T>>, Vec<i128>, SimStats, Vec<TraceEvent>) {
    let mut dev = Device::new(DeviceConfig::new(target, 2)).unwrap();
    dev.enable_tracing();
    let raw_a = inputs::<T>(7, N);
    let raw_b = inputs::<T>(13, N);

    let a = dev.alloc(N as u64, T::DTYPE).unwrap();
    let b = dev.alloc_associated(a, T::DTYPE).unwrap();
    let dst = dev.alloc_associated(a, T::DTYPE).unwrap();
    let cond = dev.alloc_associated(a, T::DTYPE).unwrap();
    // Upload `a` twice: the second upload exercises the buffer-reuse path.
    dev.copy_to_device(&raw_b, a).unwrap();
    dev.copy_to_device(&raw_a, a).unwrap();
    dev.copy_to_device(&raw_b, b).unwrap();
    dev.copy_to_device(&inputs::<T>(99, N), cond).unwrap();

    let mut outs: Vec<Vec<T>> = Vec::new();
    let mut reds: Vec<i128> = Vec::new();
    let mut grab = |dev: &mut Device, id| outs.push(dev.to_vec::<T>(id).unwrap());

    dev.add(a, b, dst).unwrap();
    grab(&mut dev, dst);
    dev.sub(a, b, dst).unwrap();
    grab(&mut dev, dst);
    dev.mul(a, b, dst).unwrap();
    grab(&mut dev, dst);
    dev.and(a, b, dst).unwrap();
    grab(&mut dev, dst);
    dev.or(a, b, dst).unwrap();
    grab(&mut dev, dst);
    dev.xor(a, b, dst).unwrap();
    grab(&mut dev, dst);
    dev.xnor(a, b, dst).unwrap();
    grab(&mut dev, dst);
    dev.not(a, dst).unwrap();
    grab(&mut dev, dst);
    dev.abs(a, dst).unwrap();
    grab(&mut dev, dst);
    dev.min(a, b, dst).unwrap();
    grab(&mut dev, dst);
    dev.max(a, b, dst).unwrap();
    grab(&mut dev, dst);
    dev.add_scalar(a, 37, dst).unwrap();
    grab(&mut dev, dst);
    dev.mul_scalar(a, -3, dst).unwrap();
    grab(&mut dev, dst);
    dev.min_scalar(a, 1000, dst).unwrap();
    grab(&mut dev, dst);
    dev.max_scalar(a, -1000, dst).unwrap();
    grab(&mut dev, dst);
    dev.lt(a, b, dst).unwrap();
    grab(&mut dev, dst);
    dev.gt(a, b, dst).unwrap();
    grab(&mut dev, dst);
    dev.eq(a, b, dst).unwrap();
    grab(&mut dev, dst);
    dev.lt_scalar(a, 5, dst).unwrap();
    grab(&mut dev, dst);
    dev.select(cond, a, b, dst).unwrap();
    grab(&mut dev, dst);
    dev.shift_left(a, 3, dst).unwrap();
    grab(&mut dev, dst);
    dev.shift_right(a, 2, dst).unwrap();
    grab(&mut dev, dst);
    dev.popcount(a, dst).unwrap();
    grab(&mut dev, dst);
    dev.broadcast(dst, 42).unwrap();
    grab(&mut dev, dst);
    dev.copy_object(a, dst).unwrap();
    grab(&mut dev, dst);
    dev.scaled_add(a, b, dst, 7).unwrap();
    grab(&mut dev, dst);

    reds.push(dev.red_sum(a).unwrap());
    reds.push(i128::from(dev.red_min(a).unwrap()));
    reds.push(i128::from(dev.red_max(a).unwrap()));
    reds.push(dev.red_sum_range(a, 100, N as u64 - 100).unwrap());

    let stats = dev.stats().clone();
    let trace = dev.take_trace();
    (outs, reds, stats, trace)
}

/// Runs the full op sweep at two thread counts and asserts every
/// observable output is identical.
fn assert_identical<T: PimScalar + PartialEq + Debug>(target: PimTarget, threads: usize) {
    let seq = exec::with_thread_count(1, || run_all_ops::<T>(target));
    let par = exec::with_thread_count(threads, || run_all_ops::<T>(target));
    let tag = format!("{target}/{}/threads={threads}", T::DTYPE);
    assert_eq!(seq.0, par.0, "{tag}: output buffers must be bit-identical");
    assert_eq!(seq.1, par.1, "{tag}: reduction values");
    assert_eq!(seq.2, par.2, "{tag}: SimStats");
    assert_eq!(seq.3.len(), par.3.len(), "{tag}: trace event count");
    assert_eq!(seq.3, par.3, "{tag}: trace event streams");
}

#[test]
fn one_and_eight_threads_are_bit_identical_across_targets_and_ops() {
    for target in PimTarget::EXTENDED {
        assert_identical::<i32>(target, 8);
        assert_identical::<u64>(target, 8);
        assert_identical::<i8>(target, 8);
    }
}

#[test]
fn intermediate_thread_counts_match_too() {
    // 3 does not divide the buffer evenly, 7 is the CI pool sweep's odd
    // count, and 17 exceeds what MIN_CHUNK granularity grants for part
    // of the range — all must still be exact on the pooled path.
    for threads in [2, 3, 4, 7, 17] {
        assert_identical::<i32>(PimTarget::Fulcrum, threads);
    }
}

#[test]
fn trace_totals_still_sum_to_stats_under_parallel_execution() {
    // The PR-1 invariant (trace events sum exactly to SimStats) must
    // survive the parallel engine on a fanned-out workload.
    for target in PimTarget::ALL {
        let (_, _, stats, events) = exec::with_thread_count(8, || run_all_ops::<i32>(target));
        let mut cmd_count = 0u64;
        let mut cmd_time = 0.0f64;
        let mut cmd_energy = 0.0f64;
        for e in &events {
            if let TraceEvent::Cmd {
                time_ms, energy_mj, ..
            } = e
            {
                cmd_count += 1;
                cmd_time += time_ms;
                cmd_energy += energy_mj;
            }
        }
        assert_eq!(cmd_count, stats.total_ops(), "{target}: one event per op");
        assert!(
            (cmd_time - stats.kernel_time_ms()).abs() < 1e-9,
            "{target}: kernel time"
        );
        assert!(
            (cmd_energy - stats.kernel_energy_mj()).abs() < 1e-9,
            "{target}: kernel energy"
        );
    }
}
