//! Golden tests for the machine-readable exporters: the Chrome trace
//! document must be well-formed trace-event JSON, and the stats JSON
//! must round-trip the Listing-3 totals through the bundled parser.

use pimeval::trace::chrome::{chrome_trace_json, ChromeTraceBuilder};
use pimeval::trace::json::{stats_to_json, Json};
use pimeval::{DataType, Device, DeviceConfig, PimTarget};

fn traced_run(target: PimTarget) -> (Device, Vec<pimeval::TraceEvent>) {
    let mut dev = Device::new(DeviceConfig::new(target, 2)).unwrap();
    dev.enable_tracing();
    let a = dev.alloc_vec(&[5i32, 3, 8, 1]).unwrap();
    let b = dev.alloc_associated(a, DataType::Int32).unwrap();
    dev.add(a, a, b).unwrap();
    dev.mul(a, b, b).unwrap();
    let _ = dev.red_sum(b).unwrap();
    let _ = dev.to_vec::<i32>(b).unwrap();
    dev.record_host_ms(0.5);
    let events = dev.take_trace();
    (dev, events)
}

#[test]
fn chrome_trace_is_wellformed_trace_event_json() {
    let (_, events) = traced_run(PimTarget::Fulcrum);
    let doc = Json::parse(&chrome_trace_json(&events)).expect("trace parses as JSON");
    let entries = doc.get("traceEvents").unwrap().as_array().unwrap();
    assert!(!entries.is_empty());
    let mut spans = 0;
    for e in entries {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .expect("every entry has ph");
        assert!(
            e.get("name").and_then(Json::as_str).is_some(),
            "every entry has a name"
        );
        assert!(e.get("pid").and_then(Json::as_f64).is_some());
        assert!(e.get("tid").and_then(Json::as_f64).is_some());
        match ph {
            "X" => {
                spans += 1;
                let ts = e.get("ts").and_then(Json::as_f64).expect("span has ts");
                let dur = e.get("dur").and_then(Json::as_f64).expect("span has dur");
                assert!(ts >= 0.0 && dur >= 0.0);
            }
            "i" => {
                assert!(e.get("ts").and_then(Json::as_f64).is_some());
            }
            "M" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    // 3 cmds + 2 copies (alloc_vec h2d + to_vec d2h) + 1 host phase.
    assert_eq!(spans, 6);
}

#[test]
fn chrome_trace_has_one_span_per_pim_command() {
    for target in [
        PimTarget::BitSerial,
        PimTarget::Fulcrum,
        PimTarget::BankLevel,
    ] {
        let (dev, events) = traced_run(target);
        let json = chrome_trace_json(&events);
        let doc = Json::parse(&json).unwrap();
        let entries = doc.get("traceEvents").unwrap().as_array().unwrap();
        for (name, stat) in &dev.stats().cmds {
            let spans = entries
                .iter()
                .filter(|e| {
                    e.get("ph").and_then(Json::as_str) == Some("X")
                        && e.get("name").and_then(Json::as_str) == Some(name)
                })
                .count() as u64;
            assert_eq!(spans, stat.count, "{target}: {name} span count");
        }
    }
}

#[test]
fn multi_run_builder_assigns_distinct_pids() {
    let (_, e1) = traced_run(PimTarget::Fulcrum);
    let (_, e2) = traced_run(PimTarget::BankLevel);
    let mut b = ChromeTraceBuilder::new();
    b.add_run("run one", &e1);
    b.add_run("run two", &e2);
    let doc = Json::parse(&b.finish()).unwrap();
    let pids: std::collections::BTreeSet<i64> = doc
        .get("traceEvents")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .filter_map(|e| e.get("pid").and_then(Json::as_f64))
        .map(|p| p as i64)
        .collect();
    assert_eq!(pids.into_iter().collect::<Vec<_>>(), vec![0, 1]);
}

#[test]
fn stats_json_round_trips_listing3_totals() {
    for target in [
        PimTarget::BitSerial,
        PimTarget::Fulcrum,
        PimTarget::BankLevel,
    ] {
        let (dev, _) = traced_run(target);
        let stats = dev.stats();
        let doc = Json::parse(&stats_to_json(stats, dev.config())).expect("stats JSON parses");

        let totals = doc.get("totals").unwrap();
        let f = |k: &str| totals.get(k).unwrap().as_f64().unwrap();
        assert_eq!(f("total_ops") as u64, stats.total_ops());
        assert!((f("kernel_time_ms") - stats.kernel_time_ms()).abs() < 1e-9);
        assert!((f("kernel_energy_mj") - stats.kernel_energy_mj()).abs() < 1e-9);
        assert!((f("total_time_ms") - stats.total_time_ms()).abs() < 1e-9);

        let copy = doc.get("copy").unwrap();
        let c = |k: &str| copy.get(k).unwrap().as_f64().unwrap() as u64;
        assert_eq!(c("host_to_device_bytes"), stats.copy.host_to_device_bytes);
        assert_eq!(c("device_to_host_bytes"), stats.copy.device_to_host_bytes);

        let cmds = doc.get("cmds").unwrap().as_object().unwrap();
        assert_eq!(cmds.len(), stats.cmds.len());
        for (name, stat) in &stats.cmds {
            let entry = cmds.get(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(
                entry.get("count").unwrap().as_f64().unwrap() as u64,
                stat.count
            );
        }

        assert_eq!(
            doc.get("target").unwrap().as_str().unwrap(),
            dev.config().target.to_string()
        );
        assert_eq!(
            doc.get("host_time_ms").unwrap().as_f64().unwrap(),
            stats.host_time_ms
        );
    }
}

#[test]
fn stats_json_matches_report_numbers() {
    // The JSON must agree with the human-readable Listing-3 report the
    // artifact prints: same byte counters, same op total.
    let (dev, _) = traced_run(PimTarget::Fulcrum);
    let report = dev.report();
    let doc = Json::parse(&stats_to_json(dev.stats(), dev.config())).unwrap();
    let copy = doc.get("copy").unwrap();
    let h2d = copy.get("host_to_device_bytes").unwrap().as_f64().unwrap() as u64;
    assert!(report.contains(&format!("Host to Device   : {h2d} bytes")));
    let ops = doc
        .get("totals")
        .unwrap()
        .get("total_ops")
        .unwrap()
        .as_f64()
        .unwrap() as u64;
    assert!(report.contains(&format!("{:<22}: {:>8}", "TOTAL -----", ops)));
}
