//! `PIM_OPT` environment override for the dataflow optimizer level.
//!
//! Kept in its own integration-test binary (and thus its own process):
//! [`pimeval::Device::new`] samples the variable at construction time,
//! so mutating it alongside other device-creating tests would race.

use pimeval::{Device, DeviceConfig, OptLevel, PimTarget};

fn opt_under(value: Option<&str>, config: DeviceConfig) -> OptLevel {
    match value {
        Some(v) => std::env::set_var("PIM_OPT", v),
        None => std::env::remove_var("PIM_OPT"),
    }
    let dev = Device::new(config).unwrap();
    let level = dev.config().opt;
    std::env::remove_var("PIM_OPT");
    level
}

#[test]
fn pim_opt_env_overrides_configured_level() {
    let base = || DeviceConfig::new(PimTarget::Fulcrum, 1);
    assert_eq!(opt_under(None, base()), OptLevel::O1, "default is level 1");
    assert_eq!(opt_under(Some("0"), base()), OptLevel::O0);
    assert_eq!(opt_under(Some("2"), base()), OptLevel::O2);
    assert_eq!(
        opt_under(Some("2"), base().with_opt_level(OptLevel::O0)),
        OptLevel::O2,
        "env wins over the configured level"
    );
    assert_eq!(
        opt_under(Some("turbo"), base().with_opt_level(OptLevel::O2)),
        OptLevel::O2,
        "unknown values are ignored"
    );
}
