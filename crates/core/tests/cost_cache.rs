//! Verifies the `program_cost` memoization layer: once a
//! `(OpKind, DataType)` pair has been costed, charging the same op again
//! must not invoke the microprogram generators at all.
//!
//! Generator invocations are counted at the single choke point every
//! digital and analog generator funnels through
//! (`MicroProgram::new`), so the delta below covers `gen::*` and
//! `analog::*` alike.

use pimeval::pim_microcode::MicroProgram;
use pimeval::{DataType, Device, DeviceConfig, PimTarget};

fn run_workload(dev: &mut Device) {
    let a = dev.alloc(4096, DataType::Int32).unwrap();
    let b = dev.alloc_associated(a, DataType::Int32).unwrap();
    let dst = dev.alloc_associated(a, DataType::Int32).unwrap();
    let data: Vec<i32> = (0..4096).map(|i| i * 3 - 1000).collect();
    dev.copy_to_device(&data, a).unwrap();
    dev.copy_to_device(&data, b).unwrap();
    dev.add(a, b, dst).unwrap();
    dev.mul(a, b, dst).unwrap();
    dev.lt(a, b, dst).unwrap();
    dev.min(a, b, dst).unwrap();
    dev.add_scalar(a, 5, dst).unwrap();
    dev.min_scalar(a, 7, dst).unwrap();
    dev.max_scalar(a, -7, dst).unwrap();
    dev.popcount(a, dst).unwrap();
    dev.shift_left(a, 2, dst).unwrap();
    dev.select(a, a, b, dst).unwrap();
    dev.red_sum(a).unwrap();
    dev.red_min(a).unwrap();
    for id in [a, b, dst] {
        dev.free(id).unwrap();
    }
}

/// Single test fn (not split) so no other in-process test perturbs the
/// global generator counter between our snapshots.
#[test]
fn repeat_ops_hit_the_cost_memo_instead_of_the_generators() {
    // Only the microprogram-derived models (digital + analog bit-serial)
    // call generators from program_cost; Fulcrum/bank-level are closed-form.
    for target in [PimTarget::BitSerial, PimTarget::AnalogBitSerial] {
        let mut dev = Device::new(DeviceConfig::new(target, 1)).unwrap();

        // Warm-up: allowed to generate (at most once per distinct
        // (OpKind, DataType) pair — process-global memo, so another test
        // binary run cannot interfere, but a prior loop iteration's
        // warm-up can already have filled shared entries; only assert
        // the steady state).
        run_workload(&mut dev);

        let warm = MicroProgram::generated_count();
        for _ in 0..3 {
            run_workload(&mut dev);
        }
        let after = MicroProgram::generated_count();
        assert_eq!(
            after - warm,
            0,
            "{target}: repeated identical ops must be served from the \
             cost memo without invoking any microprogram generator"
        );
    }
}
