//! Stream-vs-eager equivalence suite.
//!
//! The deferred [`pimeval::CommandStream`] may fuse, batch, and eliminate
//! commands, but it must never change what the program computes: for
//! every target and dtype, the streamed (fused) run must produce
//! bit-identical buffers to the eager run, and its modeled kernel time
//! must never exceed the eager pair's. Dead-write elimination gets its
//! own positive and negative cases, and the flush must leave fusion
//! counters in [`pimeval::SimStats`] and a `StreamFlush` trace event.

use pimeval::{DataType, Device, DeviceConfig, PimScalar, PimTarget, TraceEvent};

const TARGETS: [PimTarget; 5] = [
    PimTarget::BitSerial,
    PimTarget::Fulcrum,
    PimTarget::BankLevel,
    PimTarget::AnalogBitSerial,
    PimTarget::UpmemLike,
];

fn device(target: PimTarget) -> Device {
    Device::new(DeviceConfig::new(target, 1)).unwrap()
}

/// Deterministic SplitMix64 stream.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Two deterministic pseudo-random vectors cast to `T`.
fn data<T: PimScalar>(n: usize, seed: u64) -> (Vec<T>, Vec<T>) {
    let mut rng = Rng(seed);
    let mut gen = |_| T::from_device(rng.next_u64() as i64);
    let a: Vec<T> = (0..n).map(&mut gen).collect();
    let b: Vec<T> = (0..n).map(&mut gen).collect();
    (a, b)
}

/// Runs `y = a·x + y` then `out = (x < y) ? x : y` both eagerly and
/// through a stream on fresh devices; checks buffers match bit-for-bit
/// and the fused modeled cost does not exceed the eager one.
fn check_fused_equivalence<T: PimScalar + PartialEq + std::fmt::Debug>(
    target: PimTarget,
    seed: u64,
) {
    const K: i64 = 7;
    let n = 257; // odd, multi-word, exercises partial chunks
    let (xs, ys) = data::<T>(n, seed);

    // Eager reference: explicit temporary for the product and the mask.
    let mut eager = device(target);
    let x = eager.alloc_vec(&xs).unwrap();
    let y = eager.alloc_vec(&ys).unwrap();
    let t = eager.alloc_associated(x, T::DTYPE).unwrap();
    let mask = eager.alloc_associated(x, T::DTYPE).unwrap();
    let out = eager.alloc_associated(x, T::DTYPE).unwrap();
    eager.mul_scalar(x, K, t).unwrap();
    eager.add(t, y, y).unwrap();
    eager.lt(x, y, mask).unwrap();
    eager.select(mask, x, y, out).unwrap();
    let eager_y: Vec<T> = eager.to_vec(y).unwrap();
    let eager_out: Vec<T> = eager.to_vec(out).unwrap();
    let eager_ms = eager.stats().kernel_time_ms();

    // Streamed run: identical program, recorded then flushed.
    let mut dev = device(target);
    let x = dev.alloc_vec(&xs).unwrap();
    let y = dev.alloc_vec(&ys).unwrap();
    let t = dev.alloc_associated(x, T::DTYPE).unwrap();
    let mask = dev.alloc_associated(x, T::DTYPE).unwrap();
    let out = dev.alloc_associated(x, T::DTYPE).unwrap();
    let mut stream = dev.stream();
    stream.mul_scalar(x, K, t).add(t, y, y);
    stream.lt(x, y, mask).select(mask, x, y, out);
    let summary = stream.flush().unwrap();
    drop(stream);
    assert_eq!(summary.recorded, 4, "{target:?}");
    assert_eq!(summary.fused_scaled_add, 1, "{target:?}");
    assert_eq!(summary.fused_cmp_select, 1, "{target:?}");
    assert_eq!(summary.executed, 2, "{target:?}");

    let streamed_y: Vec<T> = dev.to_vec(y).unwrap();
    let streamed_out: Vec<T> = dev.to_vec(out).unwrap();
    assert_eq!(streamed_y, eager_y, "{target:?} {:?}", T::DTYPE);
    assert_eq!(streamed_out, eager_out, "{target:?} {:?}", T::DTYPE);

    let fused_ms = dev.stats().kernel_time_ms();
    assert!(
        fused_ms <= eager_ms * (1.0 + 1e-12),
        "{target:?} {:?}: fused {fused_ms} ms > eager {eager_ms} ms",
        T::DTYPE
    );
}

#[test]
fn fused_streams_match_eager_on_every_target_and_dtype() {
    for (i, target) in TARGETS.into_iter().enumerate() {
        let seed = 0xA11CE + i as u64;
        check_fused_equivalence::<i8>(target, seed);
        check_fused_equivalence::<i32>(target, seed);
        check_fused_equivalence::<i64>(target, seed);
        check_fused_equivalence::<u16>(target, seed);
    }
}

#[test]
fn dead_write_elimination_drops_only_overwritten_results() {
    let mut dev = device(PimTarget::Fulcrum);
    let x = dev.alloc_vec(&[1i32, 2, 3, 4]).unwrap();
    let y = dev.alloc_vec(&[10i32, 20, 30, 40]).unwrap();
    let t = dev.alloc_associated(x, DataType::Int32).unwrap();
    let out = dev.alloc_associated(x, DataType::Int32).unwrap();

    // The first add's result is overwritten without ever being read:
    // it must be eliminated and the final buffers must be unaffected.
    let mut stream = dev.stream();
    stream.add(x, y, t).sub(x, y, t).mul(t, x, out);
    let summary = stream.flush().unwrap();
    drop(stream);
    assert_eq!(summary.dead_writes_eliminated, 1);
    assert_eq!(summary.executed, 2);
    assert_eq!(dev.to_vec::<i32>(t).unwrap(), vec![-9, -18, -27, -36]);
    assert_eq!(dev.to_vec::<i32>(out).unwrap(), vec![-9, -36, -81, -144]);

    // Negative case: a read between the two writes keeps the first one.
    let mut stream = dev.stream();
    stream.add(x, y, t).mul(t, x, out).sub(x, y, t);
    let summary = stream.flush().unwrap();
    drop(stream);
    assert_eq!(summary.dead_writes_eliminated, 0);
    assert_eq!(summary.executed, 3);
    assert_eq!(dev.to_vec::<i32>(out).unwrap(), vec![11, 44, 99, 176]);
    assert_eq!(dev.to_vec::<i32>(t).unwrap(), vec![-9, -18, -27, -36]);
}

#[test]
fn fusion_counters_accumulate_in_sim_stats() {
    let mut dev = device(PimTarget::BitSerial);
    let x = dev.alloc_vec(&[1i32, 2, 3]).unwrap();
    let y = dev.alloc_vec(&[4i32, 5, 6]).unwrap();
    let t = dev.alloc_associated(x, DataType::Int32).unwrap();
    for _ in 0..2 {
        let mut stream = dev.stream();
        stream.mul_scalar(x, 3, t).add(t, y, y);
        stream.flush().unwrap();
    }
    let f = &dev.stats().fusion;
    assert_eq!(f.flushes, 2);
    assert_eq!(f.recorded_commands, 4);
    assert_eq!(f.executed_commands, 2);
    assert_eq!(f.fused_scaled_add, 2);
    // The Listing-3 report and the JSON export both carry the section.
    assert!(dev.report().contains("Command Stream Stats"));
    assert!(
        pimeval::trace::json::stats_to_json(dev.stats(), dev.config()).contains("fused_scaled_add")
    );
}

#[test]
fn flush_emits_stream_flush_trace_event() {
    let mut dev = device(PimTarget::Fulcrum);
    dev.enable_tracing();
    let x = dev.alloc_vec(&[1i32, 2, 3]).unwrap();
    let y = dev.alloc_vec(&[4i32, 5, 6]).unwrap();
    let t = dev.alloc_associated(x, DataType::Int32).unwrap();
    let mut stream = dev.stream();
    stream.mul_scalar(x, 3, t).add(t, y, y);
    stream.flush().unwrap();
    drop(stream);
    let events = dev.take_trace();
    let flush = events
        .iter()
        .find(|e| matches!(e, TraceEvent::StreamFlush { .. }))
        .expect("flush event recorded");
    match flush {
        TraceEvent::StreamFlush {
            recorded,
            executed,
            fused_scaled_add,
            ..
        } => {
            assert_eq!(*recorded, 2);
            assert_eq!(*executed, 1);
            assert_eq!(*fused_scaled_add, 1);
        }
        _ => unreachable!(),
    }
    let chrome = pimeval::trace::chrome::chrome_trace_json(&events);
    assert!(chrome.contains("stream flush"));
}

#[test]
fn batched_sweeps_match_eager_results() {
    // A run of same-shape elementwise commands with no fusion
    // opportunities batches into one parallel sweep; results must be
    // identical to eager execution, including chained intermediates.
    let (xs, ys) = data::<i32>(1000, 0xBA7C4);
    let mut eager = device(PimTarget::BankLevel);
    let x = eager.alloc_vec(&xs).unwrap();
    let y = eager.alloc_vec(&ys).unwrap();
    let t = eager.alloc_associated(x, DataType::Int32).unwrap();
    let u = eager.alloc_associated(x, DataType::Int32).unwrap();
    eager.add(x, y, t).unwrap();
    eager.xor(t, x, u).unwrap();
    eager.sub(u, y, t).unwrap();
    eager.max(t, x, u).unwrap();
    let eager_t: Vec<i32> = eager.to_vec(t).unwrap();
    let eager_u: Vec<i32> = eager.to_vec(u).unwrap();
    let eager_ms = eager.stats().kernel_time_ms();

    let mut dev = device(PimTarget::BankLevel);
    let x = dev.alloc_vec(&xs).unwrap();
    let y = dev.alloc_vec(&ys).unwrap();
    let t = dev.alloc_associated(x, DataType::Int32).unwrap();
    let u = dev.alloc_associated(x, DataType::Int32).unwrap();
    let mut stream = dev.stream();
    stream.add(x, y, t).xor(t, x, u).sub(u, y, t).max(t, x, u);
    let summary = stream.flush().unwrap();
    drop(stream);
    assert_eq!(summary.batched_sweeps, 1);
    assert_eq!(summary.batched_commands, 4);
    assert_eq!(dev.to_vec::<i32>(t).unwrap(), eager_t);
    assert_eq!(dev.to_vec::<i32>(u).unwrap(), eager_u);
    // Batching is an execution-engine optimization; the modeled cost is
    // charged per command and must equal the eager clock exactly.
    assert!((dev.stats().kernel_time_ms() - eager_ms).abs() < 1e-12);
}

#[test]
fn convenience_constructors_honor_thread_count_overrides() {
    // Regression: `Device::bit_serial` & friends must resolve the same
    // thread plumbing as `Device::new` — results identical at every
    // thread count, including the `PIM_THREADS`-style override path.
    let (xs, ys) = data::<i32>(4096, 0x7EAD);
    let run = |mk: fn(usize) -> pimeval::Result<Device>, threads: usize| {
        pimeval::exec::with_thread_count(threads, || {
            let mut dev = mk(1).unwrap();
            let x = dev.alloc_vec(&xs).unwrap();
            let y = dev.alloc_vec(&ys).unwrap();
            let out = dev.alloc_associated(x, DataType::Int32).unwrap();
            dev.mul(x, y, out).unwrap();
            dev.add(out, y, out).unwrap();
            let sum = dev.red_sum(out).unwrap();
            (dev.to_vec::<i32>(out).unwrap(), sum)
        })
    };
    for mk in [
        Device::bit_serial as fn(usize) -> pimeval::Result<Device>,
        Device::fulcrum,
        Device::bank_level,
        Device::analog_bit_serial,
    ] {
        let baseline = run(mk, 1);
        for threads in [2, 3, 8] {
            assert_eq!(run(mk, threads), baseline, "threads={threads}");
        }
    }
}
