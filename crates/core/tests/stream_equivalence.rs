//! Stream-vs-eager equivalence suite.
//!
//! The deferred [`pimeval::CommandStream`] may fuse, batch, and eliminate
//! commands, but it must never change what the program computes: for
//! every target and dtype, the streamed (fused) run must produce
//! bit-identical buffers to the eager run, and its modeled kernel time
//! must never exceed the eager pair's. Dead-write elimination gets its
//! own positive and negative cases, and the flush must leave fusion
//! counters in [`pimeval::SimStats`] and a `StreamFlush` trace event.

use pimeval::{
    DataType, Device, DeviceConfig, OpKind, OptLevel, PimCommand, PimScalar, PimTarget, TraceEvent,
};

const TARGETS: [PimTarget; 5] = [
    PimTarget::BitSerial,
    PimTarget::Fulcrum,
    PimTarget::BankLevel,
    PimTarget::AnalogBitSerial,
    PimTarget::UpmemLike,
];

fn device(target: PimTarget) -> Device {
    Device::new(DeviceConfig::new(target, 1)).unwrap()
}

/// Deterministic SplitMix64 stream.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Two deterministic pseudo-random vectors cast to `T`.
fn data<T: PimScalar>(n: usize, seed: u64) -> (Vec<T>, Vec<T>) {
    let mut rng = Rng(seed);
    let mut gen = |_| T::from_device(rng.next_u64() as i64);
    let a: Vec<T> = (0..n).map(&mut gen).collect();
    let b: Vec<T> = (0..n).map(&mut gen).collect();
    (a, b)
}

/// Runs `y = a·x + y` then `out = (x < y) ? x : y` both eagerly and
/// through a stream on fresh devices; checks buffers match bit-for-bit
/// and the fused modeled cost does not exceed the eager one.
fn check_fused_equivalence<T: PimScalar + PartialEq + std::fmt::Debug>(
    target: PimTarget,
    seed: u64,
) {
    const K: i64 = 7;
    let n = 257; // odd, multi-word, exercises partial chunks
    let (xs, ys) = data::<T>(n, seed);

    // Eager reference: explicit temporary for the product and the mask.
    let mut eager = device(target);
    let x = eager.alloc_vec(&xs).unwrap();
    let y = eager.alloc_vec(&ys).unwrap();
    let t = eager.alloc_associated(x, T::DTYPE).unwrap();
    let mask = eager.alloc_associated(x, T::DTYPE).unwrap();
    let out = eager.alloc_associated(x, T::DTYPE).unwrap();
    eager.mul_scalar(x, K, t).unwrap();
    eager.add(t, y, y).unwrap();
    eager.lt(x, y, mask).unwrap();
    eager.select(mask, x, y, out).unwrap();
    let eager_y: Vec<T> = eager.to_vec(y).unwrap();
    let eager_out: Vec<T> = eager.to_vec(out).unwrap();
    let eager_ms = eager.stats().kernel_time_ms();

    // Streamed run: identical program, recorded then flushed.
    let mut dev = device(target);
    let x = dev.alloc_vec(&xs).unwrap();
    let y = dev.alloc_vec(&ys).unwrap();
    let t = dev.alloc_associated(x, T::DTYPE).unwrap();
    let mask = dev.alloc_associated(x, T::DTYPE).unwrap();
    let out = dev.alloc_associated(x, T::DTYPE).unwrap();
    let mut stream = dev.stream();
    stream.mul_scalar(x, K, t).add(t, y, y);
    stream.lt(x, y, mask).select(mask, x, y, out);
    let summary = stream.flush().unwrap();
    drop(stream);
    assert_eq!(summary.recorded, 4, "{target:?}");
    assert_eq!(summary.fused_scaled_add, 1, "{target:?}");
    assert_eq!(summary.fused_cmp_select, 1, "{target:?}");
    assert_eq!(summary.executed, 2, "{target:?}");

    let streamed_y: Vec<T> = dev.to_vec(y).unwrap();
    let streamed_out: Vec<T> = dev.to_vec(out).unwrap();
    assert_eq!(streamed_y, eager_y, "{target:?} {:?}", T::DTYPE);
    assert_eq!(streamed_out, eager_out, "{target:?} {:?}", T::DTYPE);

    let fused_ms = dev.stats().kernel_time_ms();
    assert!(
        fused_ms <= eager_ms * (1.0 + 1e-12),
        "{target:?} {:?}: fused {fused_ms} ms > eager {eager_ms} ms",
        T::DTYPE
    );
}

#[test]
fn fused_streams_match_eager_on_every_target_and_dtype() {
    for (i, target) in TARGETS.into_iter().enumerate() {
        let seed = 0xA11CE + i as u64;
        check_fused_equivalence::<i8>(target, seed);
        check_fused_equivalence::<i32>(target, seed);
        check_fused_equivalence::<i64>(target, seed);
        check_fused_equivalence::<u16>(target, seed);
    }
}

#[test]
fn dead_write_elimination_drops_only_overwritten_results() {
    let mut dev = device(PimTarget::Fulcrum);
    let x = dev.alloc_vec(&[1i32, 2, 3, 4]).unwrap();
    let y = dev.alloc_vec(&[10i32, 20, 30, 40]).unwrap();
    let t = dev.alloc_associated(x, DataType::Int32).unwrap();
    let out = dev.alloc_associated(x, DataType::Int32).unwrap();

    // The first add's result is overwritten without ever being read:
    // it must be eliminated and the final buffers must be unaffected.
    let mut stream = dev.stream();
    stream.add(x, y, t).sub(x, y, t).mul(t, x, out);
    let summary = stream.flush().unwrap();
    drop(stream);
    assert_eq!(summary.dead_writes_eliminated, 1);
    assert_eq!(summary.executed, 2);
    assert_eq!(dev.to_vec::<i32>(t).unwrap(), vec![-9, -18, -27, -36]);
    assert_eq!(dev.to_vec::<i32>(out).unwrap(), vec![-9, -36, -81, -144]);

    // Negative case: a read between the two writes keeps the first one.
    let mut stream = dev.stream();
    stream.add(x, y, t).mul(t, x, out).sub(x, y, t);
    let summary = stream.flush().unwrap();
    drop(stream);
    assert_eq!(summary.dead_writes_eliminated, 0);
    assert_eq!(summary.executed, 3);
    assert_eq!(dev.to_vec::<i32>(out).unwrap(), vec![11, 44, 99, 176]);
    assert_eq!(dev.to_vec::<i32>(t).unwrap(), vec![-9, -18, -27, -36]);
}

#[test]
fn fusion_counters_accumulate_in_sim_stats() {
    let mut dev = device(PimTarget::BitSerial);
    let x = dev.alloc_vec(&[1i32, 2, 3]).unwrap();
    let y = dev.alloc_vec(&[4i32, 5, 6]).unwrap();
    let t = dev.alloc_associated(x, DataType::Int32).unwrap();
    for _ in 0..2 {
        let mut stream = dev.stream();
        stream.mul_scalar(x, 3, t).add(t, y, y);
        stream.flush().unwrap();
    }
    let f = &dev.stats().fusion;
    assert_eq!(f.flushes, 2);
    assert_eq!(f.recorded_commands, 4);
    assert_eq!(f.executed_commands, 2);
    assert_eq!(f.fused_scaled_add, 2);
    // The Listing-3 report and the JSON export both carry the section.
    assert!(dev.report().contains("Command Stream Stats"));
    assert!(
        pimeval::trace::json::stats_to_json(dev.stats(), dev.config()).contains("fused_scaled_add")
    );
}

#[test]
fn flush_emits_stream_flush_trace_event() {
    let mut dev = device(PimTarget::Fulcrum);
    dev.enable_tracing();
    let x = dev.alloc_vec(&[1i32, 2, 3]).unwrap();
    let y = dev.alloc_vec(&[4i32, 5, 6]).unwrap();
    let t = dev.alloc_associated(x, DataType::Int32).unwrap();
    let mut stream = dev.stream();
    stream.mul_scalar(x, 3, t).add(t, y, y);
    stream.flush().unwrap();
    drop(stream);
    let events = dev.take_trace();
    let flush = events
        .iter()
        .find(|e| matches!(e, TraceEvent::StreamFlush { .. }))
        .expect("flush event recorded");
    match flush {
        TraceEvent::StreamFlush {
            recorded,
            executed,
            fused_scaled_add,
            ..
        } => {
            assert_eq!(*recorded, 2);
            assert_eq!(*executed, 1);
            assert_eq!(*fused_scaled_add, 1);
        }
        _ => unreachable!(),
    }
    let chrome = pimeval::trace::chrome::chrome_trace_json(&events);
    assert!(chrome.contains("stream flush"));
}

#[test]
fn batched_sweeps_match_eager_results() {
    // A run of same-shape elementwise commands with no fusion
    // opportunities batches into one parallel sweep; results must be
    // identical to eager execution, including chained intermediates.
    let (xs, ys) = data::<i32>(1000, 0xBA7C4);
    let mut eager = device(PimTarget::BankLevel);
    let x = eager.alloc_vec(&xs).unwrap();
    let y = eager.alloc_vec(&ys).unwrap();
    let t = eager.alloc_associated(x, DataType::Int32).unwrap();
    let u = eager.alloc_associated(x, DataType::Int32).unwrap();
    eager.add(x, y, t).unwrap();
    eager.xor(t, x, u).unwrap();
    eager.sub(u, y, t).unwrap();
    eager.max(t, x, u).unwrap();
    let eager_t: Vec<i32> = eager.to_vec(t).unwrap();
    let eager_u: Vec<i32> = eager.to_vec(u).unwrap();
    let eager_ms = eager.stats().kernel_time_ms();

    let mut dev = device(PimTarget::BankLevel);
    let x = dev.alloc_vec(&xs).unwrap();
    let y = dev.alloc_vec(&ys).unwrap();
    let t = dev.alloc_associated(x, DataType::Int32).unwrap();
    let u = dev.alloc_associated(x, DataType::Int32).unwrap();
    let mut stream = dev.stream();
    stream.add(x, y, t).xor(t, x, u).sub(u, y, t).max(t, x, u);
    let summary = stream.flush().unwrap();
    drop(stream);
    assert_eq!(summary.batched_sweeps, 1);
    assert_eq!(summary.batched_commands, 4);
    assert_eq!(dev.to_vec::<i32>(t).unwrap(), eager_t);
    assert_eq!(dev.to_vec::<i32>(u).unwrap(), eager_u);
    // Batching is an execution-engine optimization; the modeled cost is
    // charged per command and must equal the eager clock exactly.
    assert!((dev.stats().kernel_time_ms() - eager_ms).abs() < 1e-12);
}

/// Runs the fused-equivalence program at one explicit optimization
/// level; checks bit-identity with the eager reference and that the
/// modeled cost never exceeds it.
fn check_level_equivalence<T: PimScalar + PartialEq + std::fmt::Debug>(
    target: PimTarget,
    level: OptLevel,
    seed: u64,
) {
    const K: i64 = 7;
    let n = 257;
    let (xs, ys) = data::<T>(n, seed);

    let mut eager = device(target);
    let x = eager.alloc_vec(&xs).unwrap();
    let y = eager.alloc_vec(&ys).unwrap();
    let t = eager.alloc_associated(x, T::DTYPE).unwrap();
    let mask = eager.alloc_associated(x, T::DTYPE).unwrap();
    let out = eager.alloc_associated(x, T::DTYPE).unwrap();
    eager.mul_scalar(x, K, t).unwrap();
    eager.add(t, y, y).unwrap();
    eager.lt(x, y, mask).unwrap();
    eager.select(mask, x, y, out).unwrap();
    let eager_y: Vec<T> = eager.to_vec(y).unwrap();
    let eager_out: Vec<T> = eager.to_vec(out).unwrap();
    let eager_ms = eager.stats().kernel_time_ms();

    let mut dev = device(target);
    let x = dev.alloc_vec(&xs).unwrap();
    let y = dev.alloc_vec(&ys).unwrap();
    let t = dev.alloc_associated(x, T::DTYPE).unwrap();
    let mask = dev.alloc_associated(x, T::DTYPE).unwrap();
    let out = dev.alloc_associated(x, T::DTYPE).unwrap();
    let mut stream = dev.stream();
    stream.set_opt(level);
    stream.mul_scalar(x, K, t).add(t, y, y);
    stream.lt(x, y, mask).select(mask, x, y, out);
    let summary = stream.flush().unwrap();
    drop(stream);
    // This program fuses identically at every level (the pairs are
    // adjacent), so the counters are level-invariant.
    assert_eq!(summary.fused_scaled_add, 1, "{target:?} opt {level}");
    assert_eq!(summary.fused_cmp_select, 1, "{target:?} opt {level}");
    assert_eq!(summary.executed, 2, "{target:?} opt {level}");
    if level == OptLevel::O2 {
        assert!(summary.subgraphs >= 1, "{target:?}: no placement subgraphs");
        let plan = dev.placement_plan().expect("level 2 retains a plan");
        assert_eq!(plan.subgraphs.len() as u64, summary.subgraphs);
    } else {
        assert_eq!(summary.subgraphs, 0, "{target:?} opt {level}");
        assert!(dev.placement_plan().is_none());
    }

    let streamed_y: Vec<T> = dev.to_vec(y).unwrap();
    let streamed_out: Vec<T> = dev.to_vec(out).unwrap();
    assert_eq!(streamed_y, eager_y, "{target:?} opt {level} {:?}", T::DTYPE);
    assert_eq!(
        streamed_out,
        eager_out,
        "{target:?} opt {level} {:?}",
        T::DTYPE
    );
    let opt_ms = dev.stats().kernel_time_ms();
    assert!(
        opt_ms <= eager_ms * (1.0 + 1e-12),
        "{target:?} opt {level} {:?}: {opt_ms} ms > eager {eager_ms} ms",
        T::DTYPE
    );
}

#[test]
fn every_opt_level_matches_eager_on_every_target_and_dtype() {
    for (i, target) in TARGETS.into_iter().enumerate() {
        for level in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
            let seed = 0x0127 + i as u64;
            check_level_equivalence::<i8>(target, level, seed);
            check_level_equivalence::<i32>(target, level, seed);
            check_level_equivalence::<i64>(target, level, seed);
            check_level_equivalence::<u16>(target, level, seed);
        }
    }
}

#[test]
fn cse_rewrites_repeated_subexpressions_to_copies() {
    // The same subexpression computed twice into different objects: the
    // dataflow optimizer must rewrite the recomputes into copies (the
    // adjacent-pair peephole cannot see this), with bit-identical
    // buffers and strictly less modeled kernel time than level 0.
    let (xs, ys) = data::<i32>(512, 0xC5E);
    let program = |dev: &mut Device, level: OptLevel| {
        let x = dev.alloc_vec(&xs).unwrap();
        let y = dev.alloc_vec(&ys).unwrap();
        let d1 = dev.alloc_associated(x, DataType::Int32).unwrap();
        let a1 = dev.alloc_associated(x, DataType::Int32).unwrap();
        let d2 = dev.alloc_associated(x, DataType::Int32).unwrap();
        let a2 = dev.alloc_associated(x, DataType::Int32).unwrap();
        let mut stream = dev.stream();
        stream.set_opt(level);
        stream.sub(x, y, d1).abs(d1, a1);
        stream.sub(x, y, d2).abs(d2, a2);
        let summary = stream.flush().unwrap();
        drop(stream);
        (summary, [d1, a1, d2, a2])
    };

    let mut base = device(PimTarget::Fulcrum);
    let (s0, objs0) = program(&mut base, OptLevel::O0);
    assert_eq!(s0.cse_hits, 0);
    assert_eq!(s0.executed, 4);
    let base_bufs: Vec<Vec<i32>> = objs0.iter().map(|&o| base.to_vec(o).unwrap()).collect();
    let base_ms = base.stats().kernel_time_ms();

    let mut dev = device(PimTarget::Fulcrum);
    let (s1, objs1) = program(&mut dev, OptLevel::O1);
    assert_eq!(s1.cse_hits, 2, "both recomputes become copies");
    assert_eq!(s1.executed, 4);
    let opt_bufs: Vec<Vec<i32>> = objs1.iter().map(|&o| dev.to_vec(o).unwrap()).collect();
    assert_eq!(opt_bufs, base_bufs);
    let opt_ms = dev.stats().kernel_time_ms();
    assert!(
        opt_ms < base_ms,
        "CSE must strictly beat the peephole: {opt_ms} ms vs {base_ms} ms"
    );
    // The optimizer section reaches the report and the stats JSON.
    assert!(dev.report().contains("Dataflow Optimizer Stats"));
    let json = pimeval::trace::json::stats_to_json(dev.stats(), dev.config());
    assert!(json.contains("\"optimizer\""));
    assert!(json.contains("\"cse_hits\": 2"));
    // ... and stays out of both when the optimizer never fired.
    assert!(!base.report().contains("Dataflow Optimizer Stats"));
    let base_json = pimeval::trace::json::stats_to_json(base.stats(), base.config());
    assert!(!base_json.contains("\"optimizer\""));
}

#[test]
fn host_visible_reads_are_cse_barriers() {
    // A recorded reduction makes the stream's effects host-visible:
    // value numbering must not reuse a computation from before the
    // barrier for one after it.
    let (xs, ys) = data::<i32>(256, 0xBA & 0xFFFF);
    let run = |barrier: bool| {
        let mut dev = device(PimTarget::Fulcrum);
        let x = dev.alloc_vec(&xs).unwrap();
        let y = dev.alloc_vec(&ys).unwrap();
        let d1 = dev.alloc_associated(x, DataType::Int32).unwrap();
        let d2 = dev.alloc_associated(x, DataType::Int32).unwrap();
        let mut stream = dev.stream();
        stream.set_opt(OptLevel::O1);
        stream.add(x, y, d1);
        if barrier {
            stream.record(PimCommand::reduce(OpKind::RedSum, d1));
        }
        stream.add(x, y, d2);
        let summary = stream.flush().unwrap();
        drop(stream);
        let b1: Vec<i32> = dev.to_vec(d1).unwrap();
        let b2: Vec<i32> = dev.to_vec(d2).unwrap();
        (summary, b1, b2)
    };
    let (with_barrier, b1, b2) = run(true);
    assert_eq!(with_barrier.cse_hits, 0, "barrier blocks CSE");
    assert_eq!(with_barrier.executed, 3);
    let (without, c1, c2) = run(false);
    assert_eq!(without.cse_hits, 1, "no barrier: recompute becomes a copy");
    assert_eq!((b1, b2), (c1, c2), "same values either way");
}

#[test]
fn ten_thousand_command_stream_flushes_linearly() {
    // Regression for the old O(n²) `never_read_later` tail rescan: a
    // 10k-command stream must flush in linear time at every level. The
    // program reuses one temporary across 5 000 mul+add pairs — the
    // object-granular peephole liveness refuses to fuse (the temp is
    // re-read every iteration), while the SSA graph proves each
    // product has exactly one consumer and fuses all of them.
    let n = 64usize;
    let (xs, ys) = data::<i32>(n, 0x10_000);
    let run = |level: OptLevel| {
        let mut dev = device(PimTarget::Fulcrum);
        let x = dev.alloc_vec(&xs).unwrap();
        let t = dev.alloc_associated(x, DataType::Int32).unwrap();
        let out = dev.alloc_vec(&ys).unwrap();
        let mut stream = dev.stream();
        stream.set_opt(level);
        for i in 0..5_000 {
            let k = (i % 7) + 1;
            stream.mul_scalar(x, k, t).add(t, out, out);
        }
        let summary = stream.flush().unwrap();
        drop(stream);
        (
            summary,
            dev.to_vec::<i32>(out).unwrap(),
            dev.stats().kernel_time_ms(),
        )
    };

    // Eager reference.
    let mut eager = device(PimTarget::Fulcrum);
    let x = eager.alloc_vec(&xs).unwrap();
    let t = eager.alloc_associated(x, DataType::Int32).unwrap();
    let out = eager.alloc_vec(&ys).unwrap();
    for i in 0..5_000 {
        let k = (i % 7) + 1;
        eager.mul_scalar(x, k, t).unwrap();
        eager.add(t, out, out).unwrap();
    }
    let eager_out: Vec<i32> = eager.to_vec(out).unwrap();
    let eager_ms = eager.stats().kernel_time_ms();

    let (s0, out0, ms0) = run(OptLevel::O0);
    assert_eq!(s0.recorded, 10_000);
    // The temp is re-read by every later iteration, so the peephole
    // only fuses the final pair (where the tail rescan finds no reads).
    assert_eq!(s0.fused_scaled_add, 1);
    assert_eq!(s0.executed, 9_999);
    assert_eq!(out0, eager_out);
    assert!(ms0 <= eager_ms * (1.0 + 1e-12));

    let (s1, out1, ms1) = run(OptLevel::O1);
    assert_eq!(s1.fused_scaled_add, 5_000, "SSA liveness fuses every pair");
    assert_eq!(s1.executed, 5_000);
    assert_eq!(out1, eager_out);
    assert!(ms1 < ms0, "graph fusion must strictly beat the peephole");
}

#[test]
fn placement_plan_reports_subgraphs_and_layouts() {
    // Two disjoint dataflow components flush as two placement
    // subgraphs; layouts are inferred per winning target and the plan
    // survives on the device for inspection.
    let (xs, ys) = data::<i32>(512, 0x9A7);
    let mut dev = device(PimTarget::BitSerial);
    let x = dev.alloc_vec(&xs).unwrap();
    let y = dev.alloc_vec(&ys).unwrap();
    let a = dev.alloc_associated(x, DataType::Int32).unwrap();
    let p = dev.alloc_vec(&ys).unwrap();
    let q = dev.alloc_vec(&xs).unwrap();
    let b = dev.alloc_associated(p, DataType::Int32).unwrap();
    let mut stream = dev.stream();
    stream.set_opt(OptLevel::O2);
    stream.add(x, y, a); // component 1
    stream.mul(p, q, b); // component 2 (no shared objects)
    let summary = stream.flush().unwrap();
    drop(stream);
    assert_eq!(summary.subgraphs, 2);
    let plan = dev.placement_plan().unwrap().clone();
    assert_eq!(plan.subgraphs.len(), 2);
    for sg in &plan.subgraphs {
        assert!(!sg.commands.is_empty());
        assert!(!sg.layouts.is_empty());
        assert!(sg.est_kernel_ms >= 0.0);
    }
    // Results are unaffected by the (advisory) plan.
    let mut expect = Vec::with_capacity(xs.len());
    for i in 0..xs.len() {
        expect.push(xs[i].wrapping_add(ys[i]));
    }
    assert_eq!(dev.to_vec::<i32>(a).unwrap(), expect);
}

#[test]
fn convenience_constructors_honor_thread_count_overrides() {
    // Regression: `Device::bit_serial` & friends must resolve the same
    // thread plumbing as `Device::new` — results identical at every
    // thread count, including the `PIM_THREADS`-style override path.
    let (xs, ys) = data::<i32>(4096, 0x7EAD);
    let run = |mk: fn(usize) -> pimeval::Result<Device>, threads: usize| {
        pimeval::exec::with_thread_count(threads, || {
            let mut dev = mk(1).unwrap();
            let x = dev.alloc_vec(&xs).unwrap();
            let y = dev.alloc_vec(&ys).unwrap();
            let out = dev.alloc_associated(x, DataType::Int32).unwrap();
            dev.mul(x, y, out).unwrap();
            dev.add(out, y, out).unwrap();
            let sum = dev.red_sum(out).unwrap();
            (dev.to_vec::<i32>(out).unwrap(), sum)
        })
    };
    for mk in [
        Device::bit_serial as fn(usize) -> pimeval::Result<Device>,
        Device::fulcrum,
        Device::bank_level,
        Device::analog_bit_serial,
    ] {
        let baseline = run(mk, 1);
        for threads in [2, 3, 8] {
            assert_eq!(run(mk, threads), baseline, "threads={threads}");
        }
    }
}
