//! Cross-backend timing agreement suite.
//!
//! The [`pimeval::TimingModel`] trait has two backends: the stateless
//! closed-form `Analytical` model (the default) and the stateful
//! `BankFsm` built on per-bank open-row state machines. Under the
//! simulator's execute-once-and-stall semantics with closed-page
//! (auto-precharge) row cycles, a streaming access pattern round-robins
//! across ≥2 banks and never waits on a bank interlock, so the FSM's
//! modeled time must agree with the closed form *bit for bit* on every
//! target and dtype. A thrashing pattern (all accesses to one bank)
//! serializes on tRAS/tRP recovery and must be strictly slower on the
//! row-oriented targets. UpmemLike is exempt from the strictness check:
//! its per-op time is a DMA/compute roofline (bandwidth-bound burst),
//! so the row pattern cannot change its totals by design.

use std::sync::{Mutex, MutexGuard};

use pimeval::{Device, DeviceConfig, PimScalar, PimTarget, RowPattern, TimingBackend};

/// Serializes the tests that read or write the `PIM_TIMING` process
/// environment against the ones asserting backend-specific defaults.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Holds [`ENV_LOCK`] with `PIM_TIMING` cleared, so tests that pin a
/// backend in [`DeviceConfig`] are not overridden by an externally set
/// variable (the CI matrix runs the whole suite under
/// `PIM_TIMING=fsm`). The prior value is restored on drop, even if the
/// test panics.
struct EnvGuard {
    _lock: MutexGuard<'static, ()>,
    saved: Option<String>,
}

fn pinned_env() -> EnvGuard {
    let lock = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let saved = std::env::var("PIM_TIMING").ok();
    std::env::remove_var("PIM_TIMING");
    EnvGuard { _lock: lock, saved }
}

impl Drop for EnvGuard {
    fn drop(&mut self) {
        match &self.saved {
            Some(v) => std::env::set_var("PIM_TIMING", v),
            None => std::env::remove_var("PIM_TIMING"),
        }
    }
}

const TARGETS: [PimTarget; 5] = [
    PimTarget::BitSerial,
    PimTarget::Fulcrum,
    PimTarget::BankLevel,
    PimTarget::AnalogBitSerial,
    PimTarget::UpmemLike,
];

/// Row-oriented targets whose kernel time flows through row cycles (and
/// therefore reacts to the row pattern under the FSM backend).
const ROW_TARGETS: [PimTarget; 4] = [
    PimTarget::BitSerial,
    PimTarget::Fulcrum,
    PimTarget::BankLevel,
    PimTarget::AnalogBitSerial,
];

/// Deterministic SplitMix64 stream.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

fn data<T: PimScalar>(n: usize, seed: u64) -> (Vec<T>, Vec<T>) {
    let mut rng = Rng(seed);
    let mut gen = |_| T::from_device(rng.next_u64() as i64);
    let a: Vec<T> = (0..n).map(&mut gen).collect();
    let b: Vec<T> = (0..n).map(&mut gen).collect();
    (a, b)
}

/// Runs a mixed program (host copies, elementwise, scalar, popcount,
/// reduction, device copy, ranged reduction) on a fresh device and
/// returns it for ledger inspection.
fn run_mixed<T: PimScalar>(config: DeviceConfig, seed: u64) -> Device {
    let n = 1031usize; // odd, multi-unit
    let (xs, ys) = data::<T>(n, seed);
    let mut dev = Device::new(config).unwrap();
    let x = dev.alloc_vec(&xs).unwrap();
    let y = dev.alloc_vec(&ys).unwrap();
    let out = dev.alloc_associated(x, T::DTYPE).unwrap();
    dev.add(x, y, out).unwrap();
    dev.mul(x, y, out).unwrap();
    dev.mul_scalar(x, 7, out).unwrap();
    dev.popcount(x, out).unwrap();
    dev.copy_object(x, y).unwrap();
    let _ = dev.red_sum(out).unwrap();
    let _ = dev.red_sum_range(out, 10, 900).unwrap();
    let mut sink = vec![T::from_device(0); n];
    dev.copy_to_host(out, &mut sink).unwrap();
    dev
}

fn config(target: PimTarget, backend: TimingBackend, pattern: RowPattern) -> DeviceConfig {
    DeviceConfig::new(target, 2)
        .with_timing_backend(backend)
        .with_row_pattern(pattern)
}

#[test]
fn backends_agree_bit_for_bit_at_zero_contention() {
    let _g = pinned_env();
    fn check<T: PimScalar>(target: PimTarget, seed: u64) {
        let analytical = run_mixed::<T>(
            config(target, TimingBackend::Analytical, RowPattern::Streaming),
            seed,
        );
        let fsm = run_mixed::<T>(
            config(target, TimingBackend::BankFsm, RowPattern::Streaming),
            seed,
        );
        let (a, f) = (
            analytical.stats().total_time_ms(),
            fsm.stats().total_time_ms(),
        );
        assert!(
            a == f,
            "{target:?} {:?}: analytical {a} ms != fsm {f} ms (rel err {:e})",
            T::DTYPE,
            ((a - f) / a.max(1e-300)).abs()
        );
        assert!(
            analytical.stats().kernel_time_ms() == fsm.stats().kernel_time_ms(),
            "{target:?} {:?}: kernel time diverged",
            T::DTYPE
        );
    }
    for (i, target) in TARGETS.into_iter().enumerate() {
        let seed = 0x71D1 + i as u64;
        check::<i8>(target, seed);
        check::<i32>(target, seed);
        check::<i64>(target, seed);
        check::<u16>(target, seed);
    }
}

#[test]
fn fsm_is_strictly_slower_under_row_thrashing() {
    let _g = pinned_env();
    for target in ROW_TARGETS {
        let streaming = run_mixed::<i32>(
            config(target, TimingBackend::BankFsm, RowPattern::Streaming),
            0x7157,
        );
        let thrash = run_mixed::<i32>(
            config(target, TimingBackend::BankFsm, RowPattern::Thrashing),
            0x7157,
        );
        let (s, t) = (
            streaming.stats().kernel_time_ms(),
            thrash.stats().kernel_time_ms(),
        );
        assert!(
            t > s,
            "{target:?}: thrashing {t} ms not slower than streaming {s} ms"
        );
    }
}

#[test]
fn fsm_populates_protocol_counters_report_and_json() {
    let _g = pinned_env();
    let dev = run_mixed::<i32>(
        config(
            PimTarget::Fulcrum,
            TimingBackend::BankFsm,
            RowPattern::Streaming,
        ),
        0xF1D0,
    );
    let dp = &dev.stats().dram_protocol;
    assert!(!dp.is_empty(), "FSM backend recorded no protocol traffic");
    assert!(dp.activations > 0 && dp.precharges > 0);
    assert!(dp.reads > 0 && dp.writes > 0);
    assert_eq!(dp.row_hits + dp.row_misses, dp.reads + dp.writes);
    let rate = dp.hit_rate();
    assert!((0.0..=1.0).contains(&rate), "hit rate {rate} out of range");
    assert!(
        dev.report().contains("DRAM Protocol"),
        "report missing the protocol section"
    );
    let json = pimeval::trace::json::stats_to_json(dev.stats(), dev.config());
    assert!(
        json.contains("\"dram_protocol\""),
        "stats JSON missing dram_protocol"
    );
    let parsed = pimeval::trace::json::Json::parse(&json).unwrap();
    let sect = parsed.get("dram_protocol").expect("section parses");
    assert_eq!(
        sect.get("activations").unwrap().as_f64().unwrap() as u64,
        dp.activations
    );
}

#[test]
fn analytical_backend_leaves_protocol_sections_empty() {
    let _g = pinned_env();
    let dev = run_mixed::<i32>(
        config(
            PimTarget::Fulcrum,
            TimingBackend::Analytical,
            RowPattern::Streaming,
        ),
        0xA11A,
    );
    assert!(dev.stats().dram_protocol.is_empty());
    assert!(!dev.report().contains("DRAM Protocol"));
    let json = pimeval::trace::json::stats_to_json(dev.stats(), dev.config());
    assert!(!json.contains("\"dram_protocol\""));
}

#[test]
fn pim_timing_env_overrides_the_configured_backend() {
    let _g = pinned_env();
    std::env::set_var("PIM_TIMING", "fsm");
    let dev = Device::fulcrum(1).unwrap();
    assert_eq!(dev.timing_backend(), TimingBackend::BankFsm);
    std::env::set_var("PIM_TIMING", "analytical");
    let dev = Device::new(
        DeviceConfig::new(PimTarget::Fulcrum, 1).with_timing_backend(TimingBackend::BankFsm),
    )
    .unwrap();
    assert_eq!(dev.timing_backend(), TimingBackend::Analytical);
    // Unknown values keep the configured backend.
    std::env::set_var("PIM_TIMING", "warp-drive");
    let dev = Device::new(
        DeviceConfig::new(PimTarget::Fulcrum, 1).with_timing_backend(TimingBackend::BankFsm),
    )
    .unwrap();
    assert_eq!(dev.timing_backend(), TimingBackend::BankFsm);
    std::env::remove_var("PIM_TIMING");
}

#[test]
fn drain_is_free_for_analytical_and_finite_for_fsm() {
    let _g = pinned_env();
    let mut dev = run_mixed::<i32>(
        config(
            PimTarget::BitSerial,
            TimingBackend::Analytical,
            RowPattern::Streaming,
        ),
        0xD12A,
    );
    assert_eq!(dev.drain_timing(), 0.0);
    let mut dev = run_mixed::<i32>(
        config(
            PimTarget::BitSerial,
            TimingBackend::BankFsm,
            RowPattern::Streaming,
        ),
        0xD12A,
    );
    let first = dev.drain_timing();
    assert!(first >= 0.0 && first.is_finite());
    // A drained rank is quiescent: draining again costs nothing.
    assert_eq!(dev.drain_timing(), 0.0);
}

#[test]
fn reset_stats_resets_the_fsm_state() {
    let _g = pinned_env();
    let mut dev = run_mixed::<i32>(
        config(
            PimTarget::Fulcrum,
            TimingBackend::BankFsm,
            RowPattern::Streaming,
        ),
        0x6E5E,
    );
    assert!(!dev.stats().dram_protocol.is_empty());
    dev.reset_stats();
    assert!(dev.stats().dram_protocol.is_empty());
    // And a fresh FSM drains for free.
    assert_eq!(dev.drain_timing(), 0.0);
}
