//! Format-stability tests for the Listing-3 statistics report: the
//! artifact's output structure is part of the reproduction surface, so
//! lock the section layout and key lines against refactors.

use pimeval::{DataType, Device};

fn sample_report() -> String {
    let mut dev = Device::fulcrum(4).unwrap();
    let a = dev.alloc_vec(&vec![1i32; 2048]).unwrap();
    let b = dev.alloc_associated(a, DataType::Int32).unwrap();
    dev.copy_to_device(&vec![2i32; 2048], b).unwrap();
    dev.add(a, b, b).unwrap();
    dev.to_vec::<i32>(b).unwrap();
    dev.report()
}

#[test]
fn report_sections_appear_in_listing3_order() {
    let report = sample_report();
    let idx = |needle: &str| {
        report
            .find(needle)
            .unwrap_or_else(|| panic!("report must contain {needle:?}:\n{report}"))
    };
    let params = idx("PIM Params:");
    let copy = idx("Data Copy Stats:");
    let cmds = idx("PIM Command Stats:");
    // The command-section total is the *last* TOTAL line (the copy
    // section has its own).
    let total = report.rfind("TOTAL -----").expect("command total line");
    assert!(
        params < copy && copy < cmds && cmds < total,
        "section order"
    );
}

#[test]
fn report_carries_the_artifact_fields() {
    let report = sample_report();
    for field in [
        "Simulation Target             : Fulcrum",
        "Rank, Bank, Subarray, Row, Col: 4, 128, 32, 1024, 8192",
        "Number of PIM Cores           : 8192",
        "Typical Rank BW               : 25.600000 GB/s",
        "Row Read (ns)                 : 28.500000",
        "Row Write (ns)                : 43.500000",
        "tCCD (ns)                     : 3.000000",
        "Host to Device   : 16384 bytes",
        "Device to Host   : 8192 bytes",
        "add.int32",
    ] {
        assert!(report.contains(field), "missing {field:?} in:\n{report}");
    }
}

#[test]
fn info_banner_matches_artifact_shape() {
    let dev = Device::fulcrum(4).unwrap();
    let banner = dev.info_banner();
    assert!(banner.contains("PIM-Info: Simulation Target = Fulcrum"));
    assert!(banner.contains("#ranks = 4, #bankPerRank = 128, #subarrayPerBank = 32"));
    assert!(banner.contains("Created PIM device with 8192 cores of 2048 rows and 8192 columns."));
}

#[test]
fn report_counts_are_numerically_consistent() {
    let report = sample_report();
    // The copy total line must equal H2D + D2H bytes.
    let total_line = report
        .lines()
        .find(|l| l.contains("TOTAL ----------"))
        .expect("copy total line");
    assert!(
        total_line.contains("24576 bytes"),
        "16384 + 8192 = 24576: {total_line}"
    );
}
