//! Property tests on layout computation and resource-manager invariants,
//! driven by a seeded SplitMix64 stream so they run deterministically
//! without any registry dependency.

use pimeval::{DataType, DeviceConfig, ObjectLayout, PimTarget};

const DTYPES: [DataType; 6] = [
    DataType::Bool,
    DataType::Int8,
    DataType::Int16,
    DataType::Int32,
    DataType::Int64,
    DataType::UInt32,
];

const TARGETS: [PimTarget; 4] = [
    PimTarget::BitSerial,
    PimTarget::Fulcrum,
    PimTarget::BankLevel,
    PimTarget::AnalogBitSerial,
];

/// Deterministic SplitMix64 stream.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[test]
fn layout_invariants() {
    let mut rng = Rng(0x1A70_0001);
    for target in TARGETS {
        for dtype in DTYPES {
            for ranks in 1..8usize {
                for _ in 0..8 {
                    let count = 1 + rng.below(100_000_000 - 1);
                    let cfg = DeviceConfig::new(target, ranks);
                    if let Ok(layout) = ObjectLayout::compute(&cfg, count, dtype, None) {
                        // Core usage bounded by the device.
                        assert!(layout.cores_used >= 1);
                        assert!(layout.cores_used <= cfg.core_count());
                        // The busiest core's rows fit a core.
                        assert!(layout.rows_per_core >= 1);
                        assert!(layout.rows_per_core <= cfg.rows_per_core());
                        // Capacity covers the element count.
                        let capacity = layout.elems_per_core as u128 * layout.cores_used as u128;
                        assert!(
                            capacity >= count as u128,
                            "capacity {capacity} < count {count} ({layout:?})"
                        );
                        // Vertical layouts use `bits` rows per stripe.
                        if !target.is_horizontal() {
                            assert_eq!(
                                layout.rows_per_core,
                                layout.units_per_core * dtype.bits() as u64
                            );
                        }
                        // Utilization is a valid fraction.
                        let u = layout.core_utilization(&cfg);
                        assert!((0.0..=1.0).contains(&u));
                    }
                }
            }
        }
    }
}

#[test]
fn associated_layouts_align() {
    let mut rng = Rng(0x1A70_0002);
    for target in TARGETS {
        for _ in 0..32 {
            let count = 1 + rng.below(10_000_000 - 1);
            let cfg = DeviceConfig::new(target, 2);
            let a = ObjectLayout::compute(&cfg, count, DataType::Int32, None).unwrap();
            let b =
                ObjectLayout::compute(&cfg, count, DataType::Int32, Some(a.cores_used)).unwrap();
            assert_eq!(a.cores_used, b.cores_used);
            assert_eq!(a.elems_per_core, b.elems_per_core);
        }
    }
}

#[test]
fn alloc_free_sequences_preserve_accounting() {
    let mut rng = Rng(0x1A70_0003);
    for target in TARGETS {
        for _ in 0..16 {
            let n_ops = 1 + rng.below(59) as usize;
            let cfg = DeviceConfig::new(target, 1);
            let mut dev = pimeval::Device::new(cfg).unwrap();
            let mut live = Vec::new();
            for _ in 0..n_ops {
                let count = 1 + rng.below(1_000_000 - 1);
                let free_one = rng.next_bool();
                if free_one && !live.is_empty() {
                    let id = live.swap_remove(0);
                    assert!(dev.free(id).is_ok());
                } else if let Ok(id) = dev.alloc(count, DataType::Int32) {
                    live.push(id);
                }
            }
            for id in live {
                assert!(dev.free(id).is_ok());
            }
            // After freeing everything, a large allocation must succeed again.
            assert!(dev.alloc(1_000_000, DataType::Int32).is_ok());
        }
    }
}

#[test]
fn model_costs_are_finite_and_positive() {
    use pimeval::pim_microcode::gen::BinaryOp;
    let mut rng = Rng(0x1A70_0004);
    for target in TARGETS {
        for dtype in DTYPES {
            for _ in 0..8 {
                let count = 1 + rng.below(50_000_000 - 1);
                let cfg = DeviceConfig::new(target, 4);
                if let Ok(layout) = ObjectLayout::compute(&cfg, count, dtype, None) {
                    for kind in [
                        pimeval::OpKind::Binary(BinaryOp::Add),
                        pimeval::OpKind::Binary(BinaryOp::Mul),
                        pimeval::OpKind::RedSum,
                        pimeval::OpKind::RedMin,
                        pimeval::OpKind::Popcount,
                        pimeval::OpKind::Select,
                        pimeval::OpKind::Copy,
                    ] {
                        let c = pimeval::model::op_cost(&cfg, kind, dtype, &layout);
                        assert!(c.time_ms.is_finite() && c.time_ms > 0.0, "{kind:?} {c:?}");
                        assert!(
                            c.energy_mj.is_finite() && c.energy_mj > 0.0,
                            "{kind:?} {c:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn red_min_max_functional() {
    let mut dev = pimeval::Device::fulcrum(1).unwrap();
    let a = dev.alloc_vec(&[5i32, -3, 100, 0, -77, 42]).unwrap();
    assert_eq!(dev.red_min(a).unwrap(), -77);
    assert_eq!(dev.red_max(a).unwrap(), 100);
    let u = dev.alloc_vec(&[1u32, u32::MAX, 7]).unwrap();
    assert_eq!(dev.red_min(u).unwrap(), 1);
    assert_eq!(dev.red_max(u).unwrap() as u32, u32::MAX);
    assert!(dev.stats().cmds.contains_key("redmin.int32"));
    assert!(dev.stats().cmds.contains_key("redmax.uint32"));
}
