//! Property tests on layout computation and resource-manager invariants.

use pimeval::{DataType, DeviceConfig, ObjectLayout, PimTarget};
use proptest::prelude::*;

fn dtypes() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::Bool),
        Just(DataType::Int8),
        Just(DataType::Int16),
        Just(DataType::Int32),
        Just(DataType::Int64),
        Just(DataType::UInt32),
    ]
}

fn targets() -> impl Strategy<Value = PimTarget> {
    prop_oneof![
        Just(PimTarget::BitSerial),
        Just(PimTarget::Fulcrum),
        Just(PimTarget::BankLevel),
        Just(PimTarget::AnalogBitSerial),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn layout_invariants(
        count in 1u64..100_000_000,
        dtype in dtypes(),
        target in targets(),
        ranks in 1usize..8,
    ) {
        let cfg = DeviceConfig::new(target, ranks);
        if let Ok(layout) = ObjectLayout::compute(&cfg, count, dtype, None) {
            // Core usage bounded by the device.
            prop_assert!(layout.cores_used >= 1);
            prop_assert!(layout.cores_used <= cfg.core_count());
            // The busiest core's rows fit a core.
            prop_assert!(layout.rows_per_core >= 1);
            prop_assert!(layout.rows_per_core <= cfg.rows_per_core());
            // Capacity covers the element count.
            let capacity = layout.elems_per_core as u128 * layout.cores_used as u128;
            prop_assert!(capacity >= count as u128,
                "capacity {capacity} < count {count} ({layout:?})");
            // Vertical layouts use `bits` rows per stripe.
            if !target.is_horizontal() {
                prop_assert_eq!(
                    layout.rows_per_core,
                    layout.units_per_core * dtype.bits() as u64
                );
            }
            // Utilization is a valid fraction.
            let u = layout.core_utilization(&cfg);
            prop_assert!((0.0..=1.0).contains(&u));
        }
    }

    #[test]
    fn associated_layouts_align(
        count in 1u64..10_000_000,
        target in targets(),
    ) {
        let cfg = DeviceConfig::new(target, 2);
        let a = ObjectLayout::compute(&cfg, count, DataType::Int32, None).unwrap();
        let b = ObjectLayout::compute(&cfg, count, DataType::Int32, Some(a.cores_used)).unwrap();
        prop_assert_eq!(a.cores_used, b.cores_used);
        prop_assert_eq!(a.elems_per_core, b.elems_per_core);
    }

    #[test]
    fn alloc_free_sequences_preserve_accounting(
        ops in proptest::collection::vec((1u64..1_000_000, any::<bool>()), 1..60),
        target in targets(),
    ) {
        let cfg = DeviceConfig::new(target, 1);
        let mut dev = pimeval::Device::new(cfg).unwrap();
        let mut live = Vec::new();
        for (count, free_one) in ops {
            if free_one && !live.is_empty() {
                let id = live.swap_remove(0);
                prop_assert!(dev.free(id).is_ok());
            } else if let Ok(id) = dev.alloc(count, DataType::Int32) {
                live.push(id);
            }
        }
        for id in live {
            prop_assert!(dev.free(id).is_ok());
        }
        // After freeing everything, a large allocation must succeed again.
        prop_assert!(dev.alloc(1_000_000, DataType::Int32).is_ok());
    }

    #[test]
    fn model_costs_are_finite_and_positive(
        count in 1u64..50_000_000,
        target in targets(),
        dtype in dtypes(),
    ) {
        use pimeval::pim_microcode::gen::BinaryOp;
        let cfg = DeviceConfig::new(target, 4);
        if let Ok(layout) = ObjectLayout::compute(&cfg, count, dtype, None) {
            for kind in [
                pimeval::OpKind::Binary(BinaryOp::Add),
                pimeval::OpKind::Binary(BinaryOp::Mul),
                pimeval::OpKind::RedSum,
                pimeval::OpKind::RedMin,
                pimeval::OpKind::Popcount,
                pimeval::OpKind::Select,
                pimeval::OpKind::Copy,
            ] {
                let c = pimeval::model::op_cost(&cfg, kind, dtype, &layout);
                prop_assert!(c.time_ms.is_finite() && c.time_ms > 0.0, "{kind:?} {c:?}");
                prop_assert!(c.energy_mj.is_finite() && c.energy_mj > 0.0, "{kind:?} {c:?}");
            }
        }
    }
}

#[test]
fn red_min_max_functional() {
    let mut dev = pimeval::Device::fulcrum(1).unwrap();
    let a = dev.alloc_vec(&[5i32, -3, 100, 0, -77, 42]).unwrap();
    assert_eq!(dev.red_min(a).unwrap(), -77);
    assert_eq!(dev.red_max(a).unwrap(), 100);
    let u = dev.alloc_vec(&[1u32, u32::MAX, 7]).unwrap();
    assert_eq!(dev.red_min(u).unwrap(), 1);
    assert_eq!(dev.red_max(u).unwrap() as u32, u32::MAX);
    assert!(dev.stats().cmds.contains_key("redmin.int32"));
    assert!(dev.stats().cmds.contains_key("redmax.uint32"));
}
