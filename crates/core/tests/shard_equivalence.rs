//! Sharded-vs-unsharded equivalence suite.
//!
//! [`pimeval::PimSystem`] splits every object across N per-rank shards
//! and re-aggregates results, but sharding is a *capacity/bandwidth*
//! model, never a semantics change: for every target and dtype the
//! sharded run must produce bit-identical buffers and reduction values
//! to the single-shard run, the aggregate modeled kernel time must be
//! identical, per-shard ledgers must sum back to the aggregate, and
//! all cross-shard traffic must be charged to the separate
//! [`pimeval::InterconnectStats`] ledger without ever entering
//! `total_time_ms`. The shard counts exercised default to `{2, 4}` and
//! can be overridden with the `PIM_TEST_RANKS` env var (comma list).

use pimeval::{DataType, Device, DeviceConfig, PimScalar, PimTarget, ShardPolicy, TimingBackend};

const TARGETS: [PimTarget; 5] = [
    PimTarget::BitSerial,
    PimTarget::Fulcrum,
    PimTarget::BankLevel,
    PimTarget::AnalogBitSerial,
    PimTarget::UpmemLike,
];

/// Shard counts under test: `PIM_TEST_RANKS=1,4` style override, else `{2,4}`.
fn shard_counts() -> Vec<usize> {
    match std::env::var("PIM_TEST_RANKS") {
        Ok(s) => s
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .filter(|&n| n >= 1)
            .collect(),
        Err(_) => vec![2, 4],
    }
}

/// Deterministic SplitMix64 stream.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Two deterministic pseudo-random vectors cast to `T`.
fn data<T: PimScalar>(n: usize, seed: u64) -> (Vec<T>, Vec<T>) {
    let mut rng = Rng(seed);
    let mut gen = |_| T::from_device(rng.next_u64() as i64);
    let a: Vec<T> = (0..n).map(&mut gen).collect();
    let b: Vec<T> = (0..n).map(&mut gen).collect();
    (a, b)
}

/// Everything one run of the reference program observes: final buffers,
/// reduction values, and the aggregate modeled clocks.
#[derive(Debug, PartialEq)]
struct RunResult<T> {
    out: Vec<T>,
    acc: Vec<T>,
    sum: i128,
    min: i64,
    max: i64,
    part: i128,
}

/// Runs the mixed-op reference program (elementwise, comparison/select,
/// broadcast, copy, and all three reductions plus a ranged sum) on a
/// fresh device built from `config`.
fn run_program<T: PimScalar>(config: DeviceConfig, xs: &[T], ys: &[T]) -> (RunResult<T>, Device) {
    let n = xs.len() as u64;
    let mut dev = Device::new(config).unwrap();
    let x = dev.alloc_vec(xs).unwrap();
    let y = dev.alloc_vec(ys).unwrap();
    let t = dev.alloc_associated(x, T::DTYPE).unwrap();
    let mask = dev.alloc_associated(x, T::DTYPE).unwrap();
    let out = dev.alloc_associated(x, T::DTYPE).unwrap();
    let acc = dev.alloc_associated(x, T::DTYPE).unwrap();

    dev.mul_scalar(x, 7, t).unwrap();
    dev.add(t, y, t).unwrap();
    dev.lt(x, t, mask).unwrap();
    dev.select(mask, x, t, out).unwrap();
    dev.broadcast(acc, 5).unwrap();
    dev.xor(out, acc, acc).unwrap();
    dev.copy_object(acc, t).unwrap();
    dev.sub(t, y, acc).unwrap();

    let sum = dev.red_sum(acc).unwrap();
    let min = dev.red_min(out).unwrap();
    let max = dev.red_max(out).unwrap();
    let part = dev.red_sum_range(acc, n / 3, 2 * n / 3).unwrap();

    let result = RunResult {
        out: dev.to_vec(out).unwrap(),
        acc: dev.to_vec(acc).unwrap(),
        sum,
        min,
        max,
        part,
    };
    (result, dev)
}

/// Relative floating-point agreement for summed ledgers.
fn close(a: f64, b: f64, rel: f64) -> bool {
    (a - b).abs() <= rel * a.abs().max(b.abs()).max(1e-12)
}

/// One target × dtype × shard-count check: bit-identical observations,
/// identical aggregate clocks, additive per-shard ledgers, separate
/// interconnect accounting.
fn check_shard_equivalence<T: PimScalar + PartialEq + std::fmt::Debug>(
    target: PimTarget,
    shards: usize,
    seed: u64,
) {
    let n = 257; // odd, multi-word, leaves a partial trailing unit
    let (xs, ys) = data::<T>(n, seed);
    let ctx = format!("{target:?} {:?} shards={shards}", T::DTYPE);

    let (base, base_dev) = run_program(DeviceConfig::new(target, 1), &xs, &ys);
    let (sharded, dev) = run_program(DeviceConfig::new(target, 1).with_shards(shards), &xs, &ys);

    // Bit-identical functional contract.
    assert_eq!(sharded, base, "{ctx}");

    // The aggregate modeled cost is shard-count invariant: compute is
    // charged once from the global layout, and interconnect lives in its
    // own ledger.
    let base_ms = base_dev.stats().kernel_time_ms();
    let ms = dev.stats().kernel_time_ms();
    assert!(
        close(ms, base_ms, 1e-12),
        "{ctx}: kernel {ms} ms != unsharded {base_ms} ms"
    );
    assert!(
        close(
            base_dev.stats().total_time_ms(),
            dev.stats().total_time_ms(),
            1e-12
        ),
        "{ctx}: total time drifted with shard count"
    );

    // Per-shard ledgers are a partition of the aggregate compute cost.
    // (Single-shard devices skip the per-shard ledger entirely — the
    // aggregate IS the ledger.)
    let parts = dev.system().shards();
    assert_eq!(parts.len(), shards, "{ctx}");
    if parts.len() > 1 {
        let shard_ms: f64 = parts.iter().map(|s| s.stats().kernel_time_ms()).sum();
        let shard_mj: f64 = parts.iter().map(|s| s.stats().kernel_energy_mj()).sum();
        assert!(
            close(shard_ms, ms, 1e-9),
            "{ctx}: per-shard time sum {shard_ms} != aggregate {ms}"
        );
        assert!(
            close(shard_mj, dev.stats().kernel_energy_mj(), 1e-9),
            "{ctx}: per-shard energy sum {shard_mj} != aggregate"
        );
    }

    // Cross-shard traffic: single-shard devices never touch the
    // interconnect; multi-shard devices charge the host scatter/gather
    // plus the reduction combine there — and only there.
    assert!(base_dev.stats().interconnect.is_empty(), "{ctx}");
    let ic = &dev.stats().interconnect;
    if parts.len() > 1 {
        assert!(
            ic.transfers > 0,
            "{ctx}: no interconnect transfers recorded"
        );
        assert!(ic.scatter_bytes > 0 && ic.gather_bytes > 0, "{ctx}");
        assert!(ic.combine_bytes > 0, "{ctx}: reduction combine not charged");
        assert!(ic.time_ms > 0.0 && ic.energy_mj > 0.0, "{ctx}");
    }
}

#[test]
fn sharded_runs_match_unsharded_on_every_target_and_dtype() {
    for shards in shard_counts() {
        for (i, target) in TARGETS.into_iter().enumerate() {
            let seed = 0x5AAD + i as u64;
            check_shard_equivalence::<i8>(target, shards, seed);
            check_shard_equivalence::<i32>(target, shards, seed);
            check_shard_equivalence::<i64>(target, shards, seed);
            check_shard_equivalence::<u16>(target, shards, seed);
        }
    }
}

#[test]
fn shard_equivalence_holds_under_both_timing_backends() {
    // Per-shard FSM instances see the same charge sequence regardless of
    // shard count (every holder charges the full per-core demand and the
    // aggregate takes the slowest holder), so the sharded clocks must
    // stay bit-compatible with the single-shard run under both backends.
    for backend in [TimingBackend::Analytical, TimingBackend::BankFsm] {
        for shards in [1usize, 4] {
            for target in [PimTarget::Fulcrum, PimTarget::BitSerial] {
                let n = 257;
                let (xs, ys) = data::<i32>(n, 0xBAC0);
                let ctx = format!("{target:?} {backend} shards={shards}");
                let base_cfg = DeviceConfig::new(target, 1).with_timing_backend(backend);
                let (base, base_dev) = run_program(base_cfg.clone(), &xs, &ys);
                let (sharded, dev) = run_program(base_cfg.with_shards(shards), &xs, &ys);
                assert_eq!(sharded, base, "{ctx}");
                let (base_ms, ms) = (
                    base_dev.stats().kernel_time_ms(),
                    dev.stats().kernel_time_ms(),
                );
                assert!(
                    close(ms, base_ms, 1e-12),
                    "{ctx}: kernel {ms} ms != unsharded {base_ms} ms"
                );
                if backend == TimingBackend::BankFsm {
                    assert!(
                        !dev.stats().dram_protocol.is_empty(),
                        "{ctx}: FSM recorded no protocol traffic"
                    );
                }
            }
        }
    }
}

#[test]
fn shard_equivalence_holds_at_every_pool_thread_count() {
    // The per-shard outer loop rides the work-stealing pool; which
    // worker executes a shard must never leak into results. One
    // representative target/dtype per thread count keeps this fast.
    for threads in [1usize, 2, 4, 7] {
        pimeval::exec::with_thread_count(threads, || {
            check_shard_equivalence::<i32>(PimTarget::Fulcrum, 4, 0x7EAD + threads as u64);
        });
    }
}

#[test]
fn round_robin_policy_is_bit_identical_to_contiguous() {
    for target in [PimTarget::Fulcrum, PimTarget::BitSerial] {
        let (xs, ys) = data::<i32>(513, 0x0B0B1);
        let (base, _) = run_program(DeviceConfig::new(target, 1), &xs, &ys);
        for policy in [ShardPolicy::Contiguous, ShardPolicy::RoundRobin] {
            let cfg = DeviceConfig::new(target, 1)
                .with_shards(4)
                .with_shard_policy(policy);
            let (sharded, _) = run_program(cfg, &xs, &ys);
            assert_eq!(sharded, base, "{target:?} {policy:?}");
        }
    }
}

#[test]
fn stream_fusion_composes_with_sharding() {
    // Peephole passes run before the shard split, so a fused stream on a
    // sharded device must match the eager unsharded run bit-for-bit and
    // report the same fusion counters as the single-shard stream.
    let (xs, ys) = data::<i32>(300, 0xF05E);
    let mut eager = Device::new(DeviceConfig::new(PimTarget::Fulcrum, 1)).unwrap();
    let x = eager.alloc_vec(&xs).unwrap();
    let y = eager.alloc_vec(&ys).unwrap();
    let t = eager.alloc_associated(x, DataType::Int32).unwrap();
    eager.mul_scalar(x, 3, t).unwrap();
    eager.add(t, y, y).unwrap();
    let want: Vec<i32> = eager.to_vec(y).unwrap();

    let cfg = DeviceConfig::new(PimTarget::Fulcrum, 1).with_shards(4);
    let mut dev = Device::new(cfg).unwrap();
    let x = dev.alloc_vec(&xs).unwrap();
    let y = dev.alloc_vec(&ys).unwrap();
    let t = dev.alloc_associated(x, DataType::Int32).unwrap();
    let mut stream = dev.stream();
    stream.mul_scalar(x, 3, t).add(t, y, y);
    let summary = stream.flush().unwrap();
    drop(stream);
    assert_eq!(summary.fused_scaled_add, 1);
    assert_eq!(dev.to_vec::<i32>(y).unwrap(), want);
}

#[test]
fn batched_sweeps_survive_the_shard_split() {
    // Same-shape command runs batch into one sweep; the sharded batch
    // path must agree with the eager unsharded chain.
    let (xs, ys) = data::<i32>(1000, 0xBA7C4);
    let mut eager = Device::new(DeviceConfig::new(PimTarget::BankLevel, 1)).unwrap();
    let x = eager.alloc_vec(&xs).unwrap();
    let y = eager.alloc_vec(&ys).unwrap();
    let t = eager.alloc_associated(x, DataType::Int32).unwrap();
    let u = eager.alloc_associated(x, DataType::Int32).unwrap();
    eager.add(x, y, t).unwrap();
    eager.xor(t, x, u).unwrap();
    eager.sub(u, y, t).unwrap();
    eager.max(t, x, u).unwrap();
    let want_t: Vec<i32> = eager.to_vec(t).unwrap();
    let want_u: Vec<i32> = eager.to_vec(u).unwrap();

    let cfg = DeviceConfig::new(PimTarget::BankLevel, 1).with_shards(3);
    let mut dev = Device::new(cfg).unwrap();
    let x = dev.alloc_vec(&xs).unwrap();
    let y = dev.alloc_vec(&ys).unwrap();
    let t = dev.alloc_associated(x, DataType::Int32).unwrap();
    let u = dev.alloc_associated(x, DataType::Int32).unwrap();
    let mut stream = dev.stream();
    stream.add(x, y, t).xor(t, x, u).sub(u, y, t).max(t, x, u);
    let summary = stream.flush().unwrap();
    drop(stream);
    assert_eq!(summary.batched_commands, 4);
    assert_eq!(dev.to_vec::<i32>(t).unwrap(), want_t);
    assert_eq!(dev.to_vec::<i32>(u).unwrap(), want_u);
}

#[test]
fn misaligned_select_condition_is_realigned_across_shards() {
    // A select whose condition has a different dtype gets a different
    // elems-per-unit on horizontal targets, so its shard map need not
    // match the operands': the realign path must gather/re-deal it and
    // charge the traffic to the interconnect ledger.
    let n = 300usize;
    let (xs, ys) = data::<i32>(n, 0x5E1EC7);
    let cond: Vec<i8> = (0..n).map(|i| (i % 3 == 0) as i8).collect();
    let want: Vec<i32> = cond
        .iter()
        .zip(xs.iter().zip(ys.iter()))
        .map(|(&c, (&a, &b))| if c != 0 { a } else { b })
        .collect();

    for shards in [1usize, 4] {
        let cfg = DeviceConfig::new(PimTarget::Fulcrum, 1).with_shards(shards);
        let mut dev = Device::new(cfg).unwrap();
        let x = dev.alloc_vec(&xs).unwrap();
        let y = dev.alloc_vec(&ys).unwrap();
        let c = dev.alloc_vec(&cond).unwrap();
        let out = dev.alloc_associated(x, DataType::Int32).unwrap();
        dev.select(c, x, y, out).unwrap();
        assert_eq!(dev.to_vec::<i32>(out).unwrap(), want, "shards={shards}");
        if shards > 1 && dev.system().shard_count() > 1 {
            let maps_differ = dev.system().shard_map(c) != dev.system().shard_map(x);
            if maps_differ {
                assert!(
                    dev.stats().interconnect.realign_bytes > 0,
                    "misaligned cond produced no realign traffic"
                );
            }
        }
    }
}

#[test]
fn model_only_mode_runs_sharded_with_identical_cost() {
    // ModelOnly devices carry no functional state; the sharded cost
    // model must still agree with the unsharded one.
    let run = |shards: usize| {
        let cfg = DeviceConfig::new(PimTarget::BitSerial, 1)
            .model_only()
            .with_shards(shards);
        let mut dev = Device::new(cfg).unwrap();
        let x = dev.alloc(4096, DataType::Int32).unwrap();
        let y = dev.alloc_associated(x, DataType::Int32).unwrap();
        dev.add(x, y, y).unwrap();
        dev.mul(x, y, y).unwrap();
        let _ = dev.red_sum(y).unwrap();
        (dev.stats().kernel_time_ms(), dev.stats().total_ops())
    };
    let (base_ms, base_ops) = run(1);
    let (ms, ops) = run(4);
    assert_eq!(ops, base_ops);
    assert!(close(ms, base_ms, 1e-12), "model-only {ms} != {base_ms}");
}

#[test]
fn per_rank_sharding_tracks_rank_count_in_resource_stats() {
    let cfg = DeviceConfig::new(PimTarget::Fulcrum, 4).sharded_per_rank();
    let mut dev = Device::new(cfg).unwrap();
    let shards = dev.system().shard_count() as u64;
    assert!((1..=4).contains(&shards));
    let x = dev.alloc_vec(&[1i64, 2, 3, 4, 5, 6, 7, 8]).unwrap();
    let r = &dev.stats().resources;
    assert_eq!(r.shards, shards);
    if shards > 1 {
        assert_eq!(r.per_shard.len(), shards as usize);
        let in_use: u64 = r.per_shard.iter().map(|s| s.rows_in_use).sum();
        assert_eq!(in_use, r.rows_in_use);
        assert!(r.per_shard.iter().any(|s| s.rows_in_use > 0));
    }
    assert_eq!(dev.to_vec::<i64>(x).unwrap(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    // The Listing-3 report carries the interconnect + shard section.
    assert!(dev.report().contains("Resource"));
}
