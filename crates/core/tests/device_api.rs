//! Integration tests for the Device API: functional correctness on all
//! three targets, aliasing, error paths, statistics, and the report.

use pimeval::{DataType, Device, PimError, PimTarget, SimMode};

fn devices() -> Vec<Device> {
    PimTarget::ALL
        .iter()
        .map(|&t| Device::new(pimeval::DeviceConfig::new(t, 2)).unwrap())
        .collect()
}

#[test]
fn full_binary_op_matrix_on_all_targets() {
    let a: Vec<i32> = (0..257).map(|i| i * 1_000_003 - 7).collect();
    let b: Vec<i32> = (0..257).map(|i| -i * 77 + 13).collect();
    for mut dev in devices() {
        let oa = dev.alloc_vec(&a).unwrap();
        let ob = dev.alloc_vec(&b).unwrap();
        let od = dev.alloc_associated(oa, DataType::Int32).unwrap();
        type OpFn =
            fn(&mut Device, pimeval::ObjId, pimeval::ObjId, pimeval::ObjId) -> pimeval::Result<()>;
        type Case = (OpFn, fn(i32, i32) -> i32);
        let cases: Vec<Case> = vec![
            (Device::add, |x, y| x.wrapping_add(y)),
            (Device::sub, |x, y| x.wrapping_sub(y)),
            (Device::mul, |x, y| x.wrapping_mul(y)),
            (Device::and, |x, y| x & y),
            (Device::or, |x, y| x | y),
            (Device::xor, |x, y| x ^ y),
            (Device::xnor, |x, y| !(x ^ y)),
            (Device::min, |x, y| x.min(y)),
            (Device::max, |x, y| x.max(y)),
            (Device::lt, |x, y| i32::from(x < y)),
            (Device::gt, |x, y| i32::from(x > y)),
            (Device::eq, |x, y| i32::from(x == y)),
        ];
        for (op, reference) in cases {
            op(&mut dev, oa, ob, od).unwrap();
            let got = dev.to_vec::<i32>(od).unwrap();
            for i in 0..a.len() {
                assert_eq!(
                    got[i],
                    reference(a[i], b[i]),
                    "target {}",
                    dev.config().target
                );
            }
        }
    }
}

#[test]
fn unary_and_scalar_ops_on_all_targets() {
    let a: Vec<i32> = (-64..64).map(|i| i * 3_000_017).collect();
    for mut dev in devices() {
        let oa = dev.alloc_vec(&a).unwrap();
        let od = dev.alloc_associated(oa, DataType::Int32).unwrap();

        dev.abs(oa, od).unwrap();
        assert!(dev
            .to_vec::<i32>(od)
            .unwrap()
            .iter()
            .zip(&a)
            .all(|(g, x)| *g == x.wrapping_abs()));

        dev.not(oa, od).unwrap();
        assert!(dev
            .to_vec::<i32>(od)
            .unwrap()
            .iter()
            .zip(&a)
            .all(|(g, x)| *g == !x));

        dev.popcount(oa, od).unwrap();
        assert!(dev
            .to_vec::<i32>(od)
            .unwrap()
            .iter()
            .zip(&a)
            .all(|(g, x)| *g == x.count_ones() as i32));

        dev.add_scalar(oa, 41, od).unwrap();
        assert!(dev
            .to_vec::<i32>(od)
            .unwrap()
            .iter()
            .zip(&a)
            .all(|(g, x)| *g == x.wrapping_add(41)));

        dev.mul_scalar(oa, -3, od).unwrap();
        assert!(dev
            .to_vec::<i32>(od)
            .unwrap()
            .iter()
            .zip(&a)
            .all(|(g, x)| *g == x.wrapping_mul(-3)));

        dev.min_scalar(oa, 0, od).unwrap();
        assert!(dev
            .to_vec::<i32>(od)
            .unwrap()
            .iter()
            .zip(&a)
            .all(|(g, x)| *g == (*x).min(0)));

        dev.shift_left(oa, 4, od).unwrap();
        assert!(dev
            .to_vec::<i32>(od)
            .unwrap()
            .iter()
            .zip(&a)
            .all(|(g, x)| *g == x.wrapping_shl(4)));

        dev.shift_right(oa, 3, od).unwrap();
        assert!(dev
            .to_vec::<i32>(od)
            .unwrap()
            .iter()
            .zip(&a)
            .all(|(g, x)| *g == x >> 3));

        dev.lt_scalar(oa, 100, od).unwrap();
        assert!(dev
            .to_vec::<i32>(od)
            .unwrap()
            .iter()
            .zip(&a)
            .all(|(g, x)| *g == i32::from(*x < 100)));

        dev.broadcast(od, 7).unwrap();
        assert!(dev.to_vec::<i32>(od).unwrap().iter().all(|g| *g == 7));
    }
}

#[test]
fn unsigned_semantics() {
    let a: Vec<u32> = vec![0, 1, u32::MAX, 0x8000_0000, 12345];
    let b: Vec<u32> = vec![u32::MAX, 2, 1, 0x7FFF_FFFF, 54321];
    for mut dev in devices() {
        let oa = dev.alloc_vec(&a).unwrap();
        let ob = dev.alloc_vec(&b).unwrap();
        let od = dev.alloc_associated(oa, DataType::UInt32).unwrap();
        dev.lt(oa, ob, od).unwrap();
        let got = dev.to_vec::<u32>(od).unwrap();
        for i in 0..a.len() {
            assert_eq!(got[i] == 1, a[i] < b[i], "unsigned lt at {i}");
        }
        dev.min(oa, ob, od).unwrap();
        let got = dev.to_vec::<u32>(od).unwrap();
        for i in 0..a.len() {
            assert_eq!(got[i], a[i].min(b[i]));
        }
        dev.shift_right(oa, 8, od).unwrap();
        let got = dev.to_vec::<u32>(od).unwrap();
        for i in 0..a.len() {
            assert_eq!(got[i], a[i] >> 8, "logical shift for unsigned");
        }
        let sum = dev.red_sum(oa).unwrap();
        assert_eq!(sum, a.iter().map(|&v| v as i128).sum::<i128>());
    }
}

#[test]
fn aliasing_dst_with_source_works() {
    // Listing 1 does pimScaledAdd(objX, objY, objY, A).
    let x: Vec<i32> = (0..100).collect();
    let y: Vec<i32> = (0..100).map(|i| 1000 - i).collect();
    for mut dev in devices() {
        let ox = dev.alloc_vec(&x).unwrap();
        let oy = dev.alloc_vec(&y).unwrap();
        dev.scaled_add(ox, oy, oy, 5).unwrap();
        let got = dev.to_vec::<i32>(oy).unwrap();
        for i in 0..x.len() {
            assert_eq!(got[i], x[i] * 5 + y[i]);
        }
        dev.add(ox, ox, ox).unwrap();
        let got = dev.to_vec::<i32>(ox).unwrap();
        for i in 0..x.len() {
            assert_eq!(got[i], x[i] * 2);
        }
    }
}

#[test]
fn select_and_red_sum_range() {
    let a: Vec<i32> = (0..50).collect();
    let b: Vec<i32> = (0..50).map(|i| -i).collect();
    let c: Vec<i32> = (0..50).map(|i| i % 2).collect();
    let mut dev = Device::bit_serial(1).unwrap();
    let (oa, ob, oc) = (
        dev.alloc_vec(&a).unwrap(),
        dev.alloc_vec(&b).unwrap(),
        dev.alloc_vec(&c).unwrap(),
    );
    let od = dev.alloc_associated(oa, DataType::Int32).unwrap();
    dev.select(oc, oa, ob, od).unwrap();
    let got = dev.to_vec::<i32>(od).unwrap();
    for i in 0..a.len() {
        assert_eq!(got[i], if c[i] != 0 { a[i] } else { b[i] });
    }
    let partial = dev.red_sum_range(oa, 10, 20).unwrap();
    assert_eq!(partial, (10..20).sum::<i128>());
    assert!(matches!(
        dev.red_sum_range(oa, 20, 10),
        Err(PimError::InvalidArg(_))
    ));
    assert!(matches!(
        dev.red_sum_range(oa, 0, 51),
        Err(PimError::InvalidArg(_))
    ));
}

#[test]
fn error_paths() {
    let mut dev = Device::fulcrum(1).unwrap();
    let a = dev.alloc_vec(&[1i32, 2, 3]).unwrap();
    let b = dev.alloc_vec(&[1i32, 2]).unwrap();
    let c = dev.alloc_vec(&[1i64, 2, 3]).unwrap();
    let d = dev.alloc_associated(a, DataType::Int32).unwrap();
    assert!(matches!(
        dev.add(a, b, d),
        Err(PimError::CountMismatch { .. })
    ));
    assert!(matches!(
        dev.add(a, c, d),
        Err(PimError::DTypeMismatch { .. })
    ));
    assert!(matches!(
        dev.copy_to_device(&[1i32, 2], a),
        Err(PimError::CountMismatch { .. })
    ));
    assert!(matches!(
        dev.copy_to_device(&[1i64, 2, 3], a),
        Err(PimError::DTypeMismatch { .. })
    ));
    dev.free(b).unwrap();
    assert!(matches!(dev.add(a, b, d), Err(PimError::UnknownObject(_))));
    assert!(matches!(
        dev.alloc(0, DataType::Int32),
        Err(PimError::InvalidArg(_))
    ));
}

#[test]
fn stats_track_commands_and_copies() {
    let mut dev = Device::fulcrum(4).unwrap();
    let a = dev.alloc_vec(&vec![1i32; 2048]).unwrap();
    let b = dev.alloc_associated(a, DataType::Int32).unwrap();
    dev.copy_to_device(&vec![2i32; 2048], b).unwrap();
    dev.add(a, b, b).unwrap();
    dev.add(a, b, b).unwrap();
    let _ = dev.red_sum(b).unwrap();
    let s = dev.stats();
    assert_eq!(s.cmds["add.int32"].count, 2);
    assert_eq!(s.cmds["redsum.int32"].count, 1);
    assert_eq!(s.copy.host_to_device_bytes, 2 * 2048 * 4);
    assert!(s.kernel_time_ms() > 0.0);
    assert!(s.kernel_energy_mj() > 0.0);
    let report = dev.report();
    assert!(report.contains("add.int32"));
    assert!(report.contains("Simulation Target"));
    dev.reset_stats();
    assert_eq!(dev.stats().total_ops(), 0);
}

#[test]
fn model_only_mode_charges_without_data() {
    let cfg = pimeval::DeviceConfig::new(PimTarget::BitSerial, 32).model_only();
    let mut dev = Device::new(cfg).unwrap();
    // Paper-scale allocation: 2 billion elements, no memory materialized.
    let a = dev.alloc(2_035_544_320, DataType::Int32).unwrap();
    let b = dev.alloc_associated(a, DataType::Int32).unwrap();
    dev.add(a, b, b).unwrap();
    assert_eq!(dev.config().mode, SimMode::ModelOnly);
    assert!(dev.stats().kernel_time_ms() > 0.0);
    assert!(matches!(
        dev.to_vec::<i32>(b),
        Err(PimError::NotSupported(_))
    ));
}

#[test]
fn copy_object_moves_data_and_counts_d2d() {
    let mut dev = Device::bank_level(1).unwrap();
    let a = dev.alloc_vec(&[9i32, 8, 7]).unwrap();
    let b = dev.alloc_associated(a, DataType::Int32).unwrap();
    dev.copy_object(a, b).unwrap();
    assert_eq!(dev.to_vec::<i32>(b).unwrap(), vec![9, 8, 7]);
    assert_eq!(dev.stats().copy.device_to_device_bytes, 12);
}

#[test]
fn device_matches_scalar_reference() {
    // Deterministic SplitMix64 stream: 8 random vector pairs per target.
    let mut state = 0xDEA1_0001u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    for &target in PimTarget::ALL.iter().take(3) {
        for _ in 0..8 {
            let n = 1 + (next() % 199) as usize;
            let a: Vec<i32> = (0..n).map(|_| next() as i32).collect();
            let b: Vec<i32> = (0..n).map(|_| next() as i32).collect();
            let mut dev = Device::new(pimeval::DeviceConfig::new(target, 1)).unwrap();
            let oa = dev.alloc_vec(&a).unwrap();
            let ob = dev.alloc_vec(&b).unwrap();
            let od = dev.alloc_associated(oa, DataType::Int32).unwrap();
            dev.mul(oa, ob, od).unwrap();
            let got = dev.to_vec::<i32>(od).unwrap();
            for i in 0..n {
                assert_eq!(got[i], a[i].wrapping_mul(b[i]));
            }
            let sum = dev.red_sum(oa).unwrap();
            assert_eq!(sum, a.iter().map(|&v| v as i128).sum::<i128>());
        }
    }
}
