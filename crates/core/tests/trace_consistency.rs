//! Cross-layer consistency between the trace timeline and the
//! statistics engine: the per-event view must sum to exactly what
//! `SimStats` aggregates, and tracing must never perturb a run.

use pimeval::trace::TraceEvent;
use pimeval::{DataType, Device, DeviceConfig, PimTarget, SimStats};

/// A small mixed workload touching commands, copies (all three
/// directions), a ranged reduction, and a host phase.
fn run_workload(dev: &mut Device) -> (SimStats, Vec<i32>) {
    let a = dev.alloc_vec(&[3i32, -1, 4, 1, 5, 9, 2, 6]).unwrap();
    let b = dev.alloc_vec(&[2i32, 7, 1, 8, 2, 8, 1, 8]).unwrap();
    let c = dev.alloc_associated(a, DataType::Int32).unwrap();
    dev.add(a, b, c).unwrap();
    dev.mul(a, c, c).unwrap();
    dev.popcount(c, c).unwrap();
    let _ = dev.red_sum(c).unwrap();
    let _ = dev.red_sum_range(c, 2, 6).unwrap();
    dev.copy_object(a, b).unwrap();
    dev.record_host_ms(0.125);
    let out = dev.to_vec::<i32>(c).unwrap();
    dev.free(a).unwrap();
    dev.free(b).unwrap();
    dev.free(c).unwrap();
    (dev.stats().clone(), out)
}

fn targets() -> [PimTarget; 4] {
    [
        PimTarget::BitSerial,
        PimTarget::Fulcrum,
        PimTarget::BankLevel,
        PimTarget::AnalogBitSerial,
    ]
}

#[test]
fn cmd_events_sum_to_stats_totals() {
    for target in targets() {
        let mut dev = Device::new(DeviceConfig::new(target, 2)).unwrap();
        dev.enable_tracing();
        let (stats, _) = run_workload(&mut dev);
        let events = dev.take_trace();

        let mut cmd_count = 0u64;
        let mut cmd_time = 0.0f64;
        let mut cmd_energy = 0.0f64;
        let mut copy_time = 0.0f64;
        let mut h2d = 0u64;
        let mut d2h = 0u64;
        let mut d2d = 0u64;
        let mut host_time = 0.0f64;
        for e in &events {
            match e {
                TraceEvent::Cmd {
                    time_ms, energy_mj, ..
                } => {
                    cmd_count += 1;
                    cmd_time += time_ms;
                    cmd_energy += energy_mj;
                }
                TraceEvent::Copy {
                    direction,
                    bytes,
                    time_ms,
                    ..
                } => {
                    use pimeval::CopyDirection::*;
                    match direction {
                        HostToDevice => h2d += bytes,
                        DeviceToHost => d2h += bytes,
                        DeviceToDevice => d2d += bytes,
                    }
                    copy_time += time_ms;
                }
                TraceEvent::HostPhase { time_ms, .. } => host_time += time_ms,
                _ => {}
            }
        }
        assert_eq!(
            cmd_count,
            stats.total_ops(),
            "{target}: one Cmd event per op"
        );
        assert!(
            (cmd_time - stats.kernel_time_ms()).abs() < 1e-9,
            "{target}: kernel time"
        );
        assert!(
            (cmd_energy - stats.kernel_energy_mj()).abs() < 1e-9,
            "{target}: kernel energy"
        );
        assert!(
            (copy_time - stats.copy.time_ms).abs() < 1e-9,
            "{target}: copy time"
        );
        assert_eq!(h2d, stats.copy.host_to_device_bytes, "{target}: h2d bytes");
        assert_eq!(d2h, stats.copy.device_to_host_bytes, "{target}: d2h bytes");
        assert_eq!(
            d2d, stats.copy.device_to_device_bytes,
            "{target}: d2d bytes"
        );
        assert!(
            (host_time - stats.host_time_ms).abs() < 1e-12,
            "{target}: host time"
        );
    }
}

#[test]
fn tracing_does_not_perturb_stats_or_results() {
    for target in targets() {
        let cfg = DeviceConfig::new(target, 2);
        let mut plain = Device::new(cfg.clone()).unwrap();
        let (stats_plain, out_plain) = run_workload(&mut plain);
        assert!(
            plain.take_trace().is_empty(),
            "untraced device records nothing"
        );

        let mut traced = Device::new(cfg).unwrap();
        traced.enable_tracing();
        let (stats_traced, out_traced) = run_workload(&mut traced);
        assert!(!traced.trace_events().is_empty());

        assert_eq!(
            out_plain, out_traced,
            "{target}: functional results identical"
        );
        assert_eq!(stats_plain, stats_traced, "{target}: statistics identical");
    }
}

#[test]
fn trace_timeline_is_monotonic() {
    let mut dev = Device::fulcrum(2).unwrap();
    dev.enable_tracing();
    let _ = run_workload(&mut dev);
    let events = dev.take_trace();
    assert!(events.len() > 5);
    let mut last = 0.0f64;
    for e in &events {
        let ts = e.timestamp_ms();
        assert!(
            ts >= last - 1e-12,
            "timestamps never go backwards: {ts} < {last}"
        );
        assert!(e.duration_ms() >= 0.0);
        last = ts;
    }
}

#[test]
fn bit_serial_cmds_carry_micro_counters() {
    for (target, expect_analog) in [
        (PimTarget::BitSerial, false),
        (PimTarget::AnalogBitSerial, true),
    ] {
        let mut dev = Device::new(DeviceConfig::new(target, 2)).unwrap();
        dev.enable_tracing();
        let a = dev.alloc_vec(&[1i32, 2, 3, 4]).unwrap();
        let b = dev.alloc_associated(a, DataType::Int32).unwrap();
        dev.add(a, a, b).unwrap();
        let events = dev.take_trace();
        let micro = events
            .iter()
            .find_map(|e| match e {
                TraceEvent::Cmd { name, micro, .. } if name == "add.int32" => micro.as_ref(),
                _ => None,
            })
            .expect("bit-serial add carries microcode counters");
        assert!(micro.row_reads + micro.aap_ops + micro.tra_ops > 0);
        if expect_analog {
            assert!(
                micro.tra_ops > 0,
                "analog target uses triple-row activations"
            );
        } else {
            assert!(micro.logic_ops > 0, "digital target uses sense-amp logic");
        }
    }
}

#[test]
fn word_parallel_cmds_have_no_micro_counters_but_copies_have_protocol() {
    let mut dev = Device::fulcrum(2).unwrap();
    dev.enable_tracing();
    let a = dev.alloc_vec(&[1i32; 4096]).unwrap();
    let b = dev.alloc_associated(a, DataType::Int32).unwrap();
    dev.add(a, a, b).unwrap();
    for e in dev.take_trace() {
        match e {
            TraceEvent::Cmd { micro, .. } => assert!(micro.is_none()),
            TraceEvent::Copy {
                protocol,
                direction,
                ..
            } => {
                let p = protocol.expect("host↔device copies carry protocol counters");
                assert_eq!(direction, pimeval::CopyDirection::HostToDevice);
                assert!(p.activations > 0 && p.reads > 0 && p.precharges > 0);
                assert!(p.achieved_gbs > 0.0);
            }
            _ => {}
        }
    }
}

#[test]
fn disable_tracing_stops_recording() {
    let mut dev = Device::fulcrum(2).unwrap();
    dev.enable_tracing();
    let a = dev.alloc_vec(&[1i32, 2]).unwrap();
    dev.disable_tracing();
    assert!(!dev.tracing_enabled());
    let b = dev.alloc_associated(a, DataType::Int32).unwrap();
    dev.add(a, a, b).unwrap();
    assert!(
        dev.take_trace().is_empty(),
        "recorder was replaced by the no-op sink"
    );
}
