//! Tracing and metrics under sharded execution.
//!
//! Sharding splits every object across per-rank shards, but the
//! observability layer must stay coherent: the trace timeline stays
//! monotone on the simulated clock, interconnect markers appear only on
//! multi-shard devices, per-shard metrics cover every shard that did
//! work, and — because every metric derives from *modeled* quantities —
//! snapshots are bit-identical at any worker-thread count, while the
//! kernel-side aggregates are invariant across shard counts. Shard
//! counts exercised default to `{1, 4}` and can be overridden with the
//! `PIM_TEST_RANKS` env var (comma list).

use pimeval::exec;
use pimeval::{Device, DeviceConfig, MetricsSnapshot, PimTarget, TraceEvent};

/// Shard counts under test: `PIM_TEST_RANKS=1,4` style override, else `{1, 4}`.
fn shard_counts() -> Vec<usize> {
    match std::env::var("PIM_TEST_RANKS") {
        Ok(s) => s
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .filter(|&n| n >= 1)
            .collect(),
        Err(_) => vec![1, 4],
    }
}

/// Runs a mixed-op program (elementwise, select, copies, reduction) on a
/// fresh traced + metered device and returns it for inspection.
fn run_traced(shards: usize, profile: bool) -> Device {
    let cfg = DeviceConfig::new(PimTarget::Fulcrum, 1).with_shards(shards);
    let mut dev = Device::new(cfg).unwrap();
    dev.enable_tracing();
    dev.enable_metrics(profile);
    let xs: Vec<i32> = (0..600).map(|i| i * 3 - 900).collect();
    let ys: Vec<i32> = (0..600).map(|i| 7 - i).collect();
    let x = dev.alloc_vec(&xs).unwrap();
    let y = dev.alloc_vec(&ys).unwrap();
    let t = dev.alloc_associated(x, pimeval::DataType::Int32).unwrap();
    let m = dev.alloc_associated(x, pimeval::DataType::Int32).unwrap();
    dev.mul_scalar(x, 5, t).unwrap();
    dev.add(t, y, t).unwrap();
    dev.lt(x, t, m).unwrap();
    dev.select(m, x, t, t).unwrap();
    dev.copy_object(t, m).unwrap();
    let _ = dev.red_sum(m).unwrap();
    let _ = dev.to_vec::<i32>(t).unwrap();
    dev
}

fn snapshot(dev: &mut Device) -> MetricsSnapshot {
    dev.metrics_snapshot().expect("metrics were enabled")
}

#[test]
fn trace_clock_is_monotone_under_sharding() {
    for shards in shard_counts() {
        let mut dev = run_traced(shards, false);
        let events = dev.take_trace();
        assert!(!events.is_empty(), "shards={shards}: empty trace");
        let stamps: Vec<f64> = events.iter().map(TraceEvent::timestamp_ms).collect();
        for w in stamps.windows(2) {
            assert!(
                w[0] <= w[1],
                "shards={shards}: simulated clock went backwards ({} > {})",
                w[0],
                w[1]
            );
        }
        assert!(
            events.iter().any(|e| matches!(e, TraceEvent::Cmd { .. })),
            "shards={shards}: no command spans"
        );
    }
}

#[test]
fn interconnect_events_only_on_multi_shard_devices() {
    for shards in shard_counts() {
        let mut dev = run_traced(shards, false);
        let events = dev.take_trace();
        let interconnect: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Interconnect {
                    shards: s, bytes, ..
                } => Some((*s, *bytes)),
                _ => None,
            })
            .collect();
        if shards == 1 {
            assert!(
                interconnect.is_empty(),
                "single-shard device emitted interconnect events"
            );
        } else {
            assert!(
                !interconnect.is_empty(),
                "shards={shards}: no interconnect events"
            );
            for (s, bytes) in interconnect {
                assert_eq!(s, shards, "marker carries the device shard count");
                assert!(bytes > 0, "empty interconnect transfer traced");
            }
        }
    }
}

#[test]
fn per_shard_metrics_cover_every_shard_that_worked() {
    let mut dev = run_traced(4, true);
    let snap = snapshot(&mut dev);
    assert_eq!(snap.per_shard.len(), 4);
    let active = snap
        .per_shard
        .iter()
        .filter(|s| s.counters.get("shard_cmds").copied().unwrap_or(0) > 0)
        .count();
    assert!(
        active >= 2,
        "a 600-element object split over 4 shards must occupy several \
         shards, got {active} active"
    );
    // Each command is counted once per shard it ran on, so the shard
    // occurrences are at least the device-level command count (every
    // command reached at least one shard) and their merged total lands
    // in the aggregate under the distinct `shard_cmds` key.
    let shard_cmds: u64 = snap
        .per_shard
        .iter()
        .map(|s| s.counters.get("shard_cmds").copied().unwrap_or(0))
        .sum();
    assert_eq!(snap.aggregate.counters["shard_cmds"], shard_cmds);
    assert!(
        shard_cmds >= snap.aggregate.counters["cmds"],
        "commands lost in shard accounting"
    );
    // The profile series covers all shards over the full window.
    let profile = snap.profile.expect("profiling was enabled");
    assert_eq!(profile.shard_busy.len(), 4);
    assert!(profile.bins > 0);
    assert!(
        profile
            .shard_busy
            .iter()
            .any(|series| series.iter().any(|&b| b > 0.0)),
        "profiler recorded no busy time"
    );
}

#[test]
fn metrics_snapshots_are_bit_identical_across_thread_counts() {
    let run = |threads: usize| {
        exec::with_thread_count(threads, || {
            let mut dev = run_traced(4, true);
            let snap = snapshot(&mut dev);
            (snap.clone(), snap.to_json())
        })
    };
    let (snap1, json1) = run(1);
    let (snap4, json4) = run(4);
    assert_eq!(snap1, snap4, "snapshot drifted with worker threads");
    assert_eq!(json1, json4, "rendered JSON drifted with worker threads");
}

#[test]
fn kernel_aggregates_are_invariant_across_shard_counts() {
    // Compute is charged once from the global layout, so the kernel-side
    // aggregates (command counts, op-latency histograms, copy traffic)
    // must not move with the shard count. Interconnect counters and the
    // per-shard breakdown legitimately differ and are excluded.
    let mut base: Option<MetricsSnapshot> = None;
    for shards in shard_counts() {
        let mut dev = run_traced(shards, false);
        let snap = snapshot(&mut dev);
        let Some(b) = &base else {
            base = Some(snap);
            continue;
        };
        assert_eq!(
            b.aggregate.counters.get("cmds"),
            snap.aggregate.counters.get("cmds"),
            "shards={shards}: command count moved"
        );
        assert_eq!(
            b.aggregate.histograms.get("op_latency_ms"),
            snap.aggregate.histograms.get("op_latency_ms"),
            "shards={shards}: op latency histogram moved"
        );
        assert_eq!(
            b.aggregate.counters.get("copy_bytes"),
            snap.aggregate.counters.get("copy_bytes"),
            "shards={shards}: copy traffic moved"
        );
        assert!(
            (b.clock_ms - snap.clock_ms).abs() <= 1e-12 * b.clock_ms.abs().max(1.0),
            "shards={shards}: metrics clock moved"
        );
    }
}
