//! Simulation statistics and report rendering (the artifact's Listing 3
//! output format).

use std::collections::BTreeMap;

use pim_dram::TimingCounters;

use crate::config::DeviceConfig;
use crate::model::OpCost;
use crate::ops::OpCategory;

/// Aggregate statistics for one PIM command name.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CmdStat {
    /// Number of invocations.
    pub count: u64,
    /// Total estimated runtime (ms).
    pub time_ms: f64,
    /// Total estimated energy (mJ).
    pub energy_mj: f64,
}

/// Host↔device and device↔device copy statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CopyStats {
    /// Bytes copied host → device.
    pub host_to_device_bytes: u64,
    /// Bytes copied device → host.
    pub device_to_host_bytes: u64,
    /// Bytes copied device → device.
    pub device_to_device_bytes: u64,
    /// Total copy time (ms).
    pub time_ms: f64,
    /// Total copy energy (mJ).
    pub energy_mj: f64,
}

impl CopyStats {
    /// Total bytes moved in any direction.
    pub fn total_bytes(&self) -> u64 {
        self.host_to_device_bytes + self.device_to_host_bytes + self.device_to_device_bytes
    }
}

/// Counters for the [`crate::stream::CommandStream`] peephole passes,
/// accumulated across every flush on the device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Flushes executed.
    pub flushes: u64,
    /// Commands recorded into streams.
    pub recorded_commands: u64,
    /// Commands actually executed after the passes ran.
    pub executed_commands: u64,
    /// mul_scalar + add pairs rewritten to `scaled_add`.
    pub fused_scaled_add: u64,
    /// cmp + select pairs rewritten to a fused compare-select.
    pub fused_cmp_select: u64,
    /// Commands dropped because their destination was overwritten before
    /// being read.
    pub dead_writes_eliminated: u64,
    /// Batched functional sweeps (runs of ≥ 2 same-shape element-wise
    /// commands executed in one pass over memory).
    pub batched_sweeps: u64,
    /// Commands executed inside those batched sweeps.
    pub batched_commands: u64,
}

impl FusionStats {
    /// Commands removed by the peephole passes (each fusion replaces two
    /// commands with one; each dead write removes one).
    pub fn commands_eliminated(&self) -> u64 {
        self.fused_scaled_add + self.fused_cmp_select + self.dead_writes_eliminated
    }

    /// True when no stream was ever flushed on this device.
    pub fn is_empty(&self) -> bool {
        *self == FusionStats::default()
    }
}

/// Counters for the dataflow optimizer (stream optimization levels
/// 1+), accumulated across every flush on the device. All zero for
/// eager-only runs and for level-0 (legacy peephole) streams, so the
/// stats report and JSON omit the section in those cases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizerStats {
    /// Value-numbering CSE hits: recomputes deleted outright or
    /// rewritten to copies of an object already holding the value.
    pub cse_hits: u64,
    /// Commands removed by whole-stream dead-object elimination.
    pub dead_objects_removed: u64,
    /// Placement subgraphs priced (level 2 only).
    pub subgraphs: u64,
    /// Adjacent placement subgraphs assigned different targets.
    pub target_switches: u64,
    /// Objects whose placement-inferred layout differs from their
    /// current layout.
    pub inferred_layouts: u64,
}

impl OptimizerStats {
    /// True when the dataflow optimizer never ran (eager-only or
    /// level-0 devices).
    pub fn is_empty(&self) -> bool {
        *self == OptimizerStats::default()
    }
}

/// Cross-shard data-movement accounting, charged by the
/// [`crate::InterconnectModel`] only when the device runs with more
/// than one shard. Interconnect time is reported separately from
/// kernel and copy time (it never enters [`SimStats::total_time_ms`]),
/// so sharded and unsharded runs stay cost-comparable.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InterconnectStats {
    /// Host→shard scatter traffic (bytes, all shards).
    pub scatter_bytes: u64,
    /// Shard→host gather traffic (bytes, all shards).
    pub gather_bytes: u64,
    /// Inter-shard realignment traffic for misaligned operands (bytes).
    pub realign_bytes: u64,
    /// Reduction partial-combine traffic (bytes).
    pub combine_bytes: u64,
    /// Number of modeled interconnect transfers.
    pub transfers: u64,
    /// Modeled interconnect time (ms), critical-path per transfer.
    pub time_ms: f64,
    /// Modeled interconnect energy (mJ).
    pub energy_mj: f64,
}

impl InterconnectStats {
    /// Total bytes moved across the interconnect.
    pub fn total_bytes(&self) -> u64 {
        self.scatter_bytes + self.gather_bytes + self.realign_bytes + self.combine_bytes
    }

    /// True when no interconnect traffic was ever charged (always the
    /// case for single-shard devices).
    pub fn is_empty(&self) -> bool {
        *self == InterconnectStats::default()
    }
}

/// DRAM protocol commands issued by the timing backend while pricing
/// this ledger's commands and copies. Populated only by stateful
/// backends (the `BankFsm` sourced counters can never disagree with the
/// charged time — both come from the same command stream); empty under
/// the default `Analytical` backend, whose per-copy trace replays are
/// advisory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramProtocolStats {
    /// ACT commands issued.
    pub activations: u64,
    /// PRE commands issued.
    pub precharges: u64,
    /// Column reads issued.
    pub reads: u64,
    /// Column writes issued.
    pub writes: u64,
    /// Column commands that hit an already-open row.
    pub row_hits: u64,
    /// Column commands that paid a fresh activation.
    pub row_misses: u64,
}

impl DramProtocolStats {
    /// True when no protocol commands were recorded (always the case
    /// under the stateless backend).
    pub fn is_empty(&self) -> bool {
        *self == DramProtocolStats::default()
    }

    /// Row-buffer hit rate over all column commands, in `[0, 1]`
    /// (0 when no column command was issued).
    pub fn hit_rate(&self) -> f64 {
        let cols = self.row_hits + self.row_misses;
        if cols == 0 {
            0.0
        } else {
            self.row_hits as f64 / cols as f64
        }
    }

    /// Accumulates one backend counter delta.
    pub fn add(&mut self, d: &TimingCounters) {
        self.activations += d.activations;
        self.precharges += d.precharges;
        self.reads += d.reads;
        self.writes += d.writes;
        self.row_hits += d.row_hits;
        self.row_misses += d.row_misses;
    }
}

/// Row-capacity usage of one shard's resource manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardResourceStats {
    /// Row-core units currently in use on this shard.
    pub rows_in_use: u64,
    /// High-water mark of row-core usage on this shard.
    pub peak_rows: u64,
    /// Row-core units this shard can hold.
    pub rows_capacity: u64,
    /// Live objects resident on this shard.
    pub live_objects: u64,
}

/// Aggregate + per-shard resource-manager usage, re-snapshotted after
/// every allocation and free.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResourceStats {
    /// Row-core units currently in use (aggregate).
    pub rows_in_use: u64,
    /// High-water mark of row-core usage (aggregate).
    pub peak_rows: u64,
    /// Total row-core units the device can hold.
    pub rows_capacity: u64,
    /// Live objects.
    pub live_objects: u64,
    /// Number of shards the device runs with.
    pub shards: u64,
    /// Per-shard breakdown; empty for single-shard devices.
    pub per_shard: Vec<ShardResourceStats>,
}

/// Full statistics for a simulation run.
///
/// Three time components mirror the paper's Fig. 7 breakdown: data
/// movement ([`CopyStats::time_ms`]), host execution ([`SimStats::host_time_ms`])
/// and PIM kernel time ([`SimStats::kernel_time_ms`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Copy statistics.
    pub copy: CopyStats,
    /// Per-command statistics, keyed by names like `add.int32`.
    pub cmds: BTreeMap<String, CmdStat>,
    /// Operation counts per Fig. 8 category.
    pub categories: BTreeMap<OpCategory, u64>,
    /// Modeled host-side execution time (ms).
    pub host_time_ms: f64,
    /// Most cores kept busy by any single command (for background energy).
    pub max_cores_used: usize,
    /// Command-stream peephole counters (all zero for eager-only runs).
    pub fusion: FusionStats,
    /// Dataflow-optimizer counters (all zero for eager-only and
    /// level-0 runs).
    pub optimizer: OptimizerStats,
    /// Cross-shard interconnect accounting (empty for single-shard runs).
    pub interconnect: InterconnectStats,
    /// Resource-manager usage snapshot (aggregate + per-shard).
    pub resources: ResourceStats,
    /// DRAM protocol counters from the timing backend (empty under the
    /// default stateless `Analytical` backend).
    pub dram_protocol: DramProtocolStats,
}

impl SimStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        SimStats::default()
    }

    /// Records one PIM command invocation.
    pub fn record_cmd(
        &mut self,
        name: String,
        category: OpCategory,
        cost: OpCost,
        cores_used: usize,
    ) {
        let e = self.cmds.entry(name).or_default();
        e.count += 1;
        e.time_ms += cost.time_ms;
        e.energy_mj += cost.energy_mj;
        *self.categories.entry(category).or_default() += 1;
        self.max_cores_used = self.max_cores_used.max(cores_used);
    }

    /// Records a data copy. Directions: 0 = host→device, 1 = device→host,
    /// 2 = device→device.
    pub fn record_copy(&mut self, bytes: u64, direction: u8, time_ms: f64, energy_mj: f64) {
        match direction {
            0 => self.copy.host_to_device_bytes += bytes,
            1 => self.copy.device_to_host_bytes += bytes,
            _ => self.copy.device_to_device_bytes += bytes,
        }
        self.copy.time_ms += time_ms;
        self.copy.energy_mj += energy_mj;
    }

    /// Adds modeled host execution time.
    pub fn record_host_ms(&mut self, ms: f64) {
        self.host_time_ms += ms;
    }

    /// Accumulates DRAM protocol counters issued by the timing backend.
    pub fn record_protocol(&mut self, delta: &TimingCounters) {
        self.dram_protocol.add(delta);
    }

    /// Scales every kernel command's time/energy and the copy
    /// time/energy by `factor`. Used by the paper-scale harness for
    /// benchmarks whose *serial* operation count (not just data-parallel
    /// width) was scaled down — e.g. GEMV runs fewer column sweeps, so
    /// its kernel time is multiplied back up by the column ratio.
    /// Byte counters and host time are left untouched.
    pub fn scale_kernel_and_copies(&mut self, factor: f64) {
        for c in self.cmds.values_mut() {
            c.time_ms *= factor;
            c.energy_mj *= factor;
        }
        self.copy.time_ms *= factor;
        self.copy.energy_mj *= factor;
    }

    /// Total PIM kernel time across all commands (ms).
    pub fn kernel_time_ms(&self) -> f64 {
        self.cmds.values().map(|c| c.time_ms).sum()
    }

    /// Total PIM kernel energy across all commands (mJ), excluding
    /// background energy.
    pub fn kernel_energy_mj(&self) -> f64 {
        self.cmds.values().map(|c| c.energy_mj).sum()
    }

    /// This ledger's kernel-busy share of a `window_ms`-long window,
    /// clamped to `[0, 1]` (0 for an empty window). Used by the metrics
    /// subsystem to summarize each shard sub-ledger's utilization
    /// against the whole run.
    pub fn busy_fraction(&self, window_ms: f64) -> f64 {
        if window_ms <= 0.0 {
            0.0
        } else {
            (self.kernel_time_ms() / window_ms).clamp(0.0, 1.0)
        }
    }

    /// Total op invocations.
    pub fn total_ops(&self) -> u64 {
        self.cmds.values().map(|c| c.count).sum()
    }

    /// Background energy (§V-D iii): per-subarray standby delta × active
    /// subarrays × kernel time.
    pub fn background_energy_mj(&self, config: &DeviceConfig) -> f64 {
        let subarrays = config.active_subarrays(self.max_cores_used);
        config
            .power
            .background_energy_mj(subarrays, self.kernel_time_ms())
    }

    /// CPU idle energy while waiting on PIM (10 W default): W × ms = mJ.
    pub fn host_idle_energy_mj(&self, config: &DeviceConfig) -> f64 {
        config.pe.host_idle_w * self.kernel_time_ms()
    }

    /// End-to-end time: copies + host + kernel (ms). This is the
    /// "Kernel + Data Movement" series of Fig. 9.
    pub fn total_time_ms(&self) -> f64 {
        self.copy.time_ms + self.host_time_ms + self.kernel_time_ms()
    }

    /// Total PIM-side energy: kernel + copies + background (mJ).
    pub fn total_energy_mj(&self, config: &DeviceConfig) -> f64 {
        self.kernel_energy_mj() + self.copy.energy_mj + self.background_energy_mj(config)
    }

    /// Fractional time breakdown `(data movement, host, kernel)`, the
    /// rows of Fig. 7. Returns zeros for an empty run.
    pub fn breakdown(&self) -> (f64, f64, f64) {
        let total = self.total_time_ms();
        if total <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.copy.time_ms / total,
            self.host_time_ms / total,
            self.kernel_time_ms() / total,
        )
    }

    /// Renders the artifact-style statistics report (Listing 3).
    pub fn report(&self, config: &DeviceConfig) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let g = &config.geometry;
        let _ = writeln!(out, "----------------------------------------");
        let _ = writeln!(out, "PIM Params:");
        let _ = writeln!(out, "  Simulation Target             : {}", config.target);
        let _ = writeln!(
            out,
            "  Rank, Bank, Subarray, Row, Col: {}, {}, {}, {}, {}",
            g.ranks, g.banks_per_rank, g.subarrays_per_bank, g.rows_per_subarray, g.cols_per_row
        );
        let _ = writeln!(
            out,
            "  Number of PIM Cores           : {}",
            config.core_count()
        );
        let _ = writeln!(
            out,
            "  Number of Rows per Core       : {}",
            config.rows_per_core()
        );
        let _ = writeln!(
            out,
            "  Number of Cols per Core       : {}",
            config.cols_per_core()
        );
        let _ = writeln!(
            out,
            "  Typical Rank BW               : {:.6} GB/s",
            config.timing.rank_bandwidth_gbs
        );
        let _ = writeln!(
            out,
            "  Row Read (ns)                 : {:.6}",
            config.timing.row_read_ns
        );
        let _ = writeln!(
            out,
            "  Row Write (ns)                : {:.6}",
            config.timing.row_write_ns
        );
        let _ = writeln!(
            out,
            "  tCCD (ns)                     : {:.6}",
            config.timing.t_ccd_ns
        );
        let _ = writeln!(out, "Data Copy Stats:");
        let _ = writeln!(
            out,
            "  Host to Device   : {} bytes",
            self.copy.host_to_device_bytes
        );
        let _ = writeln!(
            out,
            "  Device to Host   : {} bytes",
            self.copy.device_to_host_bytes
        );
        let _ = writeln!(
            out,
            "  Device to Device : {} bytes",
            self.copy.device_to_device_bytes
        );
        let _ = writeln!(
            out,
            "  TOTAL ---------- : {} bytes {:.6}ms Runtime {:.6}mJ Energy",
            self.copy.total_bytes(),
            self.copy.time_ms,
            self.copy.energy_mj
        );
        let _ = writeln!(out, "PIM Command Stats:");
        let _ = writeln!(
            out,
            "  {:<22}: {:>8} {:>22} {:>30}",
            "PIM-CMD", "CNT", "EstimatedRuntime(ms)", "EstimatedEnergyConsumption(mJ)"
        );
        for (name, c) in &self.cmds {
            let _ = writeln!(
                out,
                "  {:<22}: {:>8} {:>22.6} {:>30.6}",
                name, c.count, c.time_ms, c.energy_mj
            );
        }
        let _ = writeln!(
            out,
            "  {:<22}: {:>8} {:>22.6} {:>30.6}",
            "TOTAL -----",
            self.total_ops(),
            self.kernel_time_ms(),
            self.kernel_energy_mj()
        );
        if self.host_time_ms > 0.0 {
            let _ = writeln!(out, "Host elapsed (modeled): {:.6} ms", self.host_time_ms);
        }
        if !self.fusion.is_empty() {
            let f = &self.fusion;
            let _ = writeln!(out, "Command Stream Stats:");
            let _ = writeln!(
                out,
                "  Flushes          : {} ({} recorded -> {} executed)",
                f.flushes, f.recorded_commands, f.executed_commands
            );
            let _ = writeln!(
                out,
                "  Fused            : {} scaled_add, {} cmp_select",
                f.fused_scaled_add, f.fused_cmp_select
            );
            let _ = writeln!(out, "  Dead writes      : {}", f.dead_writes_eliminated);
            let _ = writeln!(
                out,
                "  Batched sweeps   : {} covering {} command(s)",
                f.batched_sweeps, f.batched_commands
            );
        }
        if !self.optimizer.is_empty() {
            let o = &self.optimizer;
            let _ = writeln!(out, "Dataflow Optimizer Stats:");
            let _ = writeln!(
                out,
                "  CSE hits         : {} ({} dead object write(s) removed)",
                o.cse_hits, o.dead_objects_removed
            );
            if o.subgraphs > 0 {
                let _ = writeln!(
                    out,
                    "  Placement        : {} subgraph(s), {} target switch(es), {} layout inference(s)",
                    o.subgraphs, o.target_switches, o.inferred_layouts
                );
            }
        }
        let r = &self.resources;
        let _ = writeln!(out, "Resource Stats:");
        let _ = writeln!(
            out,
            "  Rows in use      : {} / {} row-core units (peak {})",
            r.rows_in_use, r.rows_capacity, r.peak_rows
        );
        let _ = writeln!(out, "  Live objects     : {}", r.live_objects);
        if r.shards > 1 {
            let _ = writeln!(out, "  Shards           : {}", r.shards);
            for (i, s) in r.per_shard.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  Shard {:<10} : {} / {} rows (peak {}), {} object(s)",
                    i, s.rows_in_use, s.rows_capacity, s.peak_rows, s.live_objects
                );
            }
        }
        if !self.interconnect.is_empty() {
            let ic = &self.interconnect;
            let _ = writeln!(out, "Interconnect Stats:");
            let _ = writeln!(
                out,
                "  Scatter / Gather : {} / {} bytes",
                ic.scatter_bytes, ic.gather_bytes
            );
            let _ = writeln!(
                out,
                "  Realign / Combine: {} / {} bytes",
                ic.realign_bytes, ic.combine_bytes
            );
            let _ = writeln!(
                out,
                "  Modeled          : {} transfer(s), {:.6} ms, {:.6} mJ (reported separately)",
                ic.transfers, ic.time_ms, ic.energy_mj
            );
        }
        if !self.dram_protocol.is_empty() {
            let p = &self.dram_protocol;
            let _ = writeln!(out, "DRAM Protocol Stats:");
            let _ = writeln!(
                out,
                "  ACT / PRE        : {} / {}",
                p.activations, p.precharges
            );
            let _ = writeln!(out, "  RD / WR          : {} / {}", p.reads, p.writes);
            let _ = writeln!(
                out,
                "  Row hits / misses: {} / {} ({:.2}% hit rate)",
                p.row_hits,
                p.row_misses,
                p.hit_rate() * 100.0
            );
        }
        let _ = writeln!(out, "----------------------------------------");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DeviceConfig, PimTarget};

    #[test]
    fn breakdown_sums_to_one() {
        let mut s = SimStats::new();
        s.record_copy(1024, 0, 0.5, 0.1);
        s.record_host_ms(0.25);
        s.record_cmd(
            "add.int32".into(),
            OpCategory::Add,
            OpCost {
                time_ms: 0.25,
                energy_mj: 0.2,
            },
            7,
        );
        let (dm, host, kernel) = s.breakdown();
        assert!((dm + host + kernel - 1.0).abs() < 1e-12);
        assert!((dm - 0.5).abs() < 1e-12);
        assert_eq!(s.max_cores_used, 7);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        assert_eq!(SimStats::new().breakdown(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn cmd_aggregation_accumulates() {
        let mut s = SimStats::new();
        for _ in 0..3 {
            s.record_cmd(
                "mul.int32".into(),
                OpCategory::Mul,
                OpCost {
                    time_ms: 1.0,
                    energy_mj: 2.0,
                },
                1,
            );
        }
        let c = s.cmds["mul.int32"];
        assert_eq!(c.count, 3);
        assert!((c.time_ms - 3.0).abs() < 1e-12);
        assert_eq!(s.categories[&OpCategory::Mul], 3);
        assert_eq!(s.total_ops(), 3);
    }

    #[test]
    fn report_contains_key_sections() {
        let cfg = DeviceConfig::new(PimTarget::Fulcrum, 4);
        let mut s = SimStats::new();
        s.record_cmd(
            "add.int32".into(),
            OpCategory::Add,
            OpCost {
                time_ms: 0.00166,
                energy_mj: 0.0042,
            },
            8192,
        );
        let r = s.report(&cfg);
        assert!(r.contains("PIM Params:"));
        assert!(r.contains("Data Copy Stats:"));
        assert!(r.contains("add.int32"));
        assert!(r.contains("TOTAL"));
    }

    #[test]
    fn fusion_section_renders_only_when_streams_ran() {
        let cfg = DeviceConfig::new(PimTarget::Fulcrum, 4);
        let mut s = SimStats::new();
        assert!(!s.report(&cfg).contains("Command Stream Stats:"));
        s.fusion.flushes = 1;
        s.fusion.recorded_commands = 4;
        s.fusion.executed_commands = 3;
        s.fusion.fused_scaled_add = 1;
        let r = s.report(&cfg);
        assert!(r.contains("Command Stream Stats:"));
        assert!(r.contains("1 scaled_add"));
        assert_eq!(s.fusion.commands_eliminated(), 1);
    }

    #[test]
    fn idle_energy_is_watts_times_ms() {
        let cfg = DeviceConfig::new(PimTarget::BitSerial, 1);
        let mut s = SimStats::new();
        s.record_cmd(
            "add.int32".into(),
            OpCategory::Add,
            OpCost {
                time_ms: 100.0,
                energy_mj: 1.0,
            },
            1,
        );
        assert!((s.host_idle_energy_mj(&cfg) - 1000.0).abs() < 1e-9);
    }
}
