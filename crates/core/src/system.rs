//! Sharded PIM system: per-rank execution shards behind one device API.
//!
//! A [`PimSystem`] owns `N` [`Shard`]s — one per rank by default (see
//! [`crate::DeviceConfig::sharded_per_rank`]) — each with its own
//! [`ResourceManager`], functional state, and [`SimStats`] sub-ledger.
//! Every object carries a [`ShardMap`] describing which contiguous
//! element ranges live on which shard; every command entering
//! [`crate::Device::issue`] is split by that map, executed per shard
//! (shards are the *outer* parallelism unit; the `exec` worker pool is
//! divided among them), and re-aggregated. Cross-shard data movement —
//! host⇄rank scatter/gather and inter-shard realignment for misaligned
//! operands — is charged through an [`InterconnectModel`] with per-rank
//! DDR channel bandwidth from [`pim_dram::DramTiming`].
//!
//! # Correctness contract
//!
//! Results are bit-identical between `shards = 1` and `shards = N` for
//! every target and dtype:
//!
//! * element-wise ops are positionwise, so splitting by element range
//!   cannot change any output element;
//! * the widening `i128` reduction sum is associative and commutative;
//! * min/max reductions fold per-range partials in ascending global
//!   element order with the same keep-first tie-breaking as a
//!   sequential scan (all buffer values are canonical via
//!   `DataType::truncate`, so ties are bit-equal anyway);
//! * `shards = 1` runs the exact same code path as the unsharded
//!   device did — the single shard's layout reproduces the global
//!   [`ObjectLayout`] bit for bit.
//!
//! Compute cost stays additive across shards (the per-shard ledgers sum
//! to the aggregate) while interconnect time/energy is accounted
//! *separately* and never folded into kernel time.

use std::collections::BTreeMap;

use pim_dram::exec;
use pim_dram::{make_timing_model, CopyReplay, TimingBackend, TimingCounters, TimingModel};

use crate::config::{DeviceConfig, ShardPolicy, SimMode};
use crate::dtype::{DataType, PimScalar};
use crate::error::{PimError, Result};
use crate::model::OpCost;
use crate::object::{ObjId, ObjectLayout};
use crate::ops::OpCategory;
use crate::resource::ResourceManager;
use crate::stats::{ResourceStats, ShardResourceStats, SimStats};

/// One contiguous run of global element indices resident on one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// First global element index covered (inclusive).
    pub start: u64,
    /// One past the last global element index covered.
    pub end: u64,
    /// Index of the shard holding this range.
    pub shard: usize,
    /// Offset of `start` inside the shard-local buffer.
    pub local_start: u64,
}

/// How one object's elements are divided across shards.
///
/// Ranges are stored in ascending global-element order and partition
/// `[0, count)` exactly; each shard's local buffer is the concatenation
/// of its ranges in that same order. Splits happen only on *unit*
/// boundaries (rows for horizontal layouts, stripes for vertical ones)
/// so no DRAM row ever straddles two shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    ranges: Vec<ShardRange>,
    counts: Vec<u64>,
}

impl ShardMap {
    /// Computes the element → shard assignment for `count` elements
    /// packed `elems_per_unit` to a row/stripe, split across
    /// `weights.len()` shards proportionally to `weights` (the modeled
    /// core count of each shard).
    ///
    /// [`ShardPolicy::Contiguous`] hands shard *s* the unit range
    /// `[⌊U·W_{<s}/W⌋, ⌊U·W_{≤s}/W⌋)`; [`ShardPolicy::RoundRobin`]
    /// deals units out cyclically (adjacent same-shard units coalesce,
    /// so with one shard both policies produce the identical map).
    pub fn compute(
        count: u64,
        elems_per_unit: u64,
        weights: &[u64],
        policy: ShardPolicy,
    ) -> ShardMap {
        let n = weights.len().max(1);
        let epu = elems_per_unit.max(1);
        let units_total = count.div_ceil(epu);
        let mut counts = vec![0u64; n];
        let mut ranges = Vec::new();
        match policy {
            ShardPolicy::Contiguous => {
                let w_total: u128 = weights.iter().map(|&w| w as u128).sum::<u128>().max(1);
                let mut cum: u128 = 0;
                let mut prev_b = 0u64;
                for (s, &w) in weights.iter().enumerate() {
                    cum += w as u128;
                    let b = ((units_total as u128 * cum) / w_total) as u64;
                    let start = prev_b.saturating_mul(epu).min(count);
                    let end = b.saturating_mul(epu).min(count);
                    prev_b = b;
                    if start >= end {
                        continue;
                    }
                    counts[s] = end - start;
                    ranges.push(ShardRange {
                        start,
                        end,
                        shard: s,
                        local_start: 0,
                    });
                }
            }
            ShardPolicy::RoundRobin => {
                for j in 0..units_total {
                    let s = (j % n as u64) as usize;
                    let start = j * epu;
                    let end = ((j + 1) * epu).min(count);
                    if start >= end {
                        continue;
                    }
                    let len = end - start;
                    if let Some(last) = ranges.last_mut() {
                        let last: &mut ShardRange = last;
                        if last.shard == s && last.end == start {
                            last.end = end;
                            counts[s] += len;
                            continue;
                        }
                    }
                    ranges.push(ShardRange {
                        start,
                        end,
                        shard: s,
                        local_start: counts[s],
                    });
                    counts[s] += len;
                }
            }
        }
        ShardMap { ranges, counts }
    }

    /// The ranges, in ascending global-element order.
    pub fn ranges(&self) -> &[ShardRange] {
        &self.ranges
    }

    /// Per-shard element counts (index = shard).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Elements resident on shard `s`.
    pub fn count_on(&self, s: usize) -> u64 {
        self.counts.get(s).copied().unwrap_or(0)
    }

    /// Number of shards this map was computed for (including empty ones).
    pub fn shard_count(&self) -> usize {
        self.counts.len()
    }
}

/// Cost model for cross-shard data movement over the per-rank DDR
/// channels.
///
/// Time is charged on the *critical path* — the busiest channel's bytes
/// at [`pim_dram::DramTiming::channel_bandwidth_gbs`] — because ranks
/// transfer concurrently; energy is charged on *total* bytes moved.
/// Interconnect cost is reported separately from kernel time (see
/// [`crate::stats::InterconnectStats`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectModel {
    channel_gbs: f64,
    pj_per_bit: f64,
}

impl InterconnectModel {
    /// Builds the model from a device configuration: per-rank channel
    /// bandwidth from the DRAM timing, per-bit wire energy from the
    /// GDL parameter of the PE model.
    pub fn from_config(config: &DeviceConfig) -> InterconnectModel {
        InterconnectModel {
            channel_gbs: config.timing.channel_bandwidth_gbs(),
            pj_per_bit: config.pe.gdl_pj_per_bit,
        }
    }

    /// Sustained bandwidth of one rank's channel (GB/s).
    pub fn channel_gbs(&self) -> f64 {
        self.channel_gbs
    }

    /// Critical-path transfer time for `critical_bytes` on the busiest
    /// channel, in ms.
    pub fn transfer_ms(&self, critical_bytes: u64) -> f64 {
        critical_bytes as f64 / self.channel_gbs / 1e6
    }

    /// Wire energy for `total_bytes` moved across all channels, in mJ.
    pub fn energy_mj(&self, total_bytes: u64) -> f64 {
        total_bytes as f64 * 8.0 * self.pj_per_bit * 1e-9
    }
}

/// One execution shard: a rank's worth of cores with its own resource
/// manager, functional state, statistics sub-ledger, and timing backend.
#[derive(Debug)]
pub struct Shard {
    rm: ResourceManager,
    stats: SimStats,
    /// Modeled cores assigned to this shard (decimation-adjusted).
    cores: usize,
    /// This shard's timing backend. Each shard owns its rank's banks, so
    /// FSM state never crosses shards and re-aggregation (ascending
    /// shard order) stays deterministic at every shard count.
    timing: Box<dyn TimingModel>,
}

impl Shard {
    /// This shard's statistics sub-ledger. Per-shard compute cost sums
    /// to the aggregate [`crate::Device::stats`] kernel cost.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// This shard's timing backend (per-bank state and counters).
    pub fn timing(&self) -> &dyn TimingModel {
        self.timing.as_ref()
    }

    /// Modeled cores assigned to this shard.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Row-core units currently allocated on this shard.
    pub fn rows_in_use(&self) -> u64 {
        self.rm.rows_in_use()
    }

    /// High-water mark of this shard's row-core usage.
    pub fn peak_rows(&self) -> u64 {
        self.rm.peak_rows()
    }

    /// Total row-core units this shard can hold.
    pub fn rows_capacity(&self) -> u64 {
        self.rm.rows_capacity()
    }

    /// Live objects with at least one element on this shard.
    pub fn live_objects(&self) -> usize {
        self.rm.live_objects()
    }
}

/// `total` split as evenly as possible into `n` parts; part `i` gets the
/// remainder first so Σ parts = total.
fn split_even(total: usize, n: usize, i: usize) -> usize {
    total / n + usize::from(i < total % n)
}

/// Chunked parallel widening sum; per-chunk partials fold in chunk
/// order (`i128` addition is associative, so this is bit-identical to
/// the sequential sum at every thread count and every shard split).
pub(crate) fn par_sum(data: &[i64], dtype: DataType) -> i128 {
    let signed = dtype.is_signed();
    let mask = pim_microcode::encode::mask(dtype.bits());
    exec::par_fold(
        data.len(),
        |r| {
            data[r]
                .iter()
                .map(|&v| {
                    if signed {
                        v as i128
                    } else {
                        ((v as u64) & mask) as i128
                    }
                })
                .sum::<i128>()
        },
        |x, y| x + y,
    )
    .unwrap_or(0)
}

/// The sharded execution substrate behind [`crate::Device`].
///
/// Owns a metadata catalog (the authoritative global [`ObjectLayout`]s
/// the cost model charges against), the per-shard state, the per-object
/// [`ShardMap`]s, and the [`InterconnectModel`]. With `shards = 1` the
/// system is an exact pass-through to the legacy single-manager device.
#[derive(Debug)]
pub struct PimSystem {
    meta: ResourceManager,
    shards: Vec<Shard>,
    maps: BTreeMap<u64, ShardMap>,
    policy: ShardPolicy,
    interconnect: InterconnectModel,
    functional: bool,
}

impl PimSystem {
    /// Builds the shard set for `config`: `config.shards` shards
    /// (clamped to the modeled core count), each receiving an even
    /// split of the modeled and physical cores.
    ///
    /// # Errors
    ///
    /// [`PimError::InvalidArg`] if any shard's row capacity overflows
    /// `u64`.
    pub(crate) fn new(config: &DeviceConfig) -> Result<PimSystem> {
        let modeled = config.core_count().max(1);
        let physical = config.physical_core_count().max(1);
        let n = config.shards.max(1).min(modeled);
        let meta = ResourceManager::new(config.rows_per_core(), physical as u64)?;
        let row_bytes = (config.geometry.cols_per_row as u64 / 8).max(64);
        let mut shards = Vec::with_capacity(n);
        for i in 0..n {
            shards.push(Shard {
                rm: ResourceManager::new(
                    config.rows_per_core(),
                    split_even(physical, n, i) as u64,
                )?,
                stats: SimStats::new(),
                cores: split_even(modeled, n, i),
                // One rank's worth of banks per shard: shards are the
                // per-rank execution unit, and the FSM's bank state must
                // not change shape with the shard count.
                timing: make_timing_model(
                    config.timing_backend,
                    &config.timing,
                    config.geometry.banks_per_rank,
                    row_bytes,
                ),
            });
        }
        Ok(PimSystem {
            meta,
            shards,
            maps: BTreeMap::new(),
            policy: config.shard_policy,
            interconnect: InterconnectModel::from_config(config),
            functional: matches!(config.mode, SimMode::Functional),
        })
    }

    /// The metadata catalog holding every object's global layout.
    pub fn meta(&self) -> &ResourceManager {
        &self.meta
    }

    /// The execution shards.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Number of execution shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The cross-shard interconnect cost model.
    pub fn interconnect(&self) -> &InterconnectModel {
        &self.interconnect
    }

    /// The shard map of a live object, if any.
    pub fn shard_map(&self, id: ObjId) -> Option<&ShardMap> {
        self.maps.get(&id.0)
    }

    /// True when both `reference` and every id in `ids` are live and
    /// share the exact same shard map (so shard-local buffers align
    /// positionwise and no realignment traffic is needed).
    pub(crate) fn maps_equal(&self, ids: &[ObjId], reference: ObjId) -> bool {
        let Some(rmap) = self.maps.get(&reference.0) else {
            return false;
        };
        ids.iter().all(|id| self.maps.get(&id.0) == Some(rmap))
    }

    // ------------------------------------------------------------------
    // Sharded allocation
    // ------------------------------------------------------------------

    /// Two-phase sharded allocation: computes the global layout, runs
    /// every capacity check (catalog first, then each shard) in the
    /// legacy error order, and only then commits the object everywhere
    /// under one global id. The catalog entry never materializes data;
    /// functional buffers live in the per-shard objects.
    ///
    /// # Errors
    ///
    /// [`PimError::InvalidArg`] for zero-element or overflowing
    /// requests, [`PimError::OutOfMemory`] when the catalog or any
    /// shard runs out of rows. Failure commits nothing.
    pub(crate) fn alloc(
        &mut self,
        config: &DeviceConfig,
        count: u64,
        dtype: DataType,
        cores_cap: Option<usize>,
    ) -> Result<ObjId> {
        let layout = ObjectLayout::compute(config, count, dtype, cores_cap)?;
        if layout.rows_per_core > self.meta.rows_per_core() {
            return Err(PimError::OutOfMemory {
                rows_needed: layout.rows_per_core,
                rows_available: self.meta.rows_per_core(),
            });
        }
        let units = layout.rows_per_core * layout.cores_used as u64;
        if self.meta.rows_in_use() + units > self.meta.rows_capacity() {
            return Err(PimError::OutOfMemory {
                rows_needed: self.meta.rows_in_use() + units,
                rows_available: self.meta.rows_capacity(),
            });
        }
        let n = self.shards.len();
        // Map weights are ALWAYS the shards' modeled-core split — never
        // cores_cap — so every object of the same count and dtype gets
        // the identical map and element-wise operands stay aligned.
        let weights: Vec<u64> = self.shards.iter().map(|s| s.cores as u64).collect();
        let map = ShardMap::compute(count, layout.elems_per_unit, &weights, self.policy);
        // rows_per_core = units_per_core × rows_per_unit, exactly.
        let rows_per_unit = layout.rows_per_core / layout.units_per_core.max(1);
        let budget_total = cores_cap.unwrap_or_else(|| config.core_count()).max(1);
        let mut locals: Vec<Option<ObjectLayout>> = vec![None; n];
        for (s, local) in locals.iter_mut().enumerate() {
            let c = map.count_on(s);
            if c == 0 {
                continue;
            }
            let local_units = c.div_ceil(layout.elems_per_unit.max(1));
            let budget = split_even(budget_total, n, s).max(1) as u64;
            let lcores = local_units.min(budget).max(1) as usize;
            let lupc = local_units.div_ceil(lcores as u64);
            let lrows = lupc.checked_mul(rows_per_unit).ok_or_else(|| {
                PimError::InvalidArg("object layout overflows u64 row arithmetic".into())
            })?;
            let shard_rm = &self.shards[s].rm;
            if lrows > shard_rm.rows_per_core() {
                return Err(PimError::OutOfMemory {
                    rows_needed: lrows,
                    rows_available: shard_rm.rows_per_core(),
                });
            }
            let lunits = lrows * lcores as u64;
            if shard_rm.rows_in_use() + lunits > shard_rm.rows_capacity() {
                return Err(PimError::OutOfMemory {
                    rows_needed: shard_rm.rows_in_use() + lunits,
                    rows_available: shard_rm.rows_capacity(),
                });
            }
            let lelems = lupc
                .checked_mul(layout.elems_per_unit)
                .map_or(c, |padded| padded.min(c));
            *local = Some(ObjectLayout {
                layout: layout.layout,
                cores_used: lcores,
                elems_per_core: lelems,
                rows_per_core: lrows,
                elems_per_unit: layout.elems_per_unit,
                units_per_core: lupc,
            });
        }
        let id = ObjId(self.meta.peek_next_id());
        self.meta.install(id, dtype, count, layout, false);
        for (s, local) in locals.into_iter().enumerate() {
            if let Some(l) = local {
                self.shards[s]
                    .rm
                    .install(id, dtype, map.count_on(s), l, self.functional);
            }
        }
        self.maps.insert(id.0, map);
        Ok(id)
    }

    /// Frees an object from the catalog and every shard holding a range.
    ///
    /// # Errors
    ///
    /// [`PimError::UnknownObject`] if the id is not live.
    pub(crate) fn free(&mut self, id: ObjId) -> Result<()> {
        self.meta.free(id)?;
        for shard in &mut self.shards {
            // Shards with no range of this object never installed it.
            let _ = shard.rm.free(id);
        }
        self.maps.remove(&id.0);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Per-shard execution
    // ------------------------------------------------------------------

    /// Runs `f` once per shard. With one shard this is a plain inline
    /// call; with more, the shards go through the persistent
    /// work-stealing pool at item granularity ([`exec::par_each_mut`]):
    /// every shard is its own stealable unit, so a skewed `ShardMap`
    /// keeps no worker idle, and element-level fan-outs *inside* a
    /// shard are ordinary nested pool jobs that idle workers can help
    /// with. The first shard error (in shard order) is returned.
    fn on_shards<F>(shards: &mut [Shard], f: F) -> Result<()>
    where
        F: Fn(usize, &mut Shard) -> Result<()> + Sync,
    {
        if shards.len() <= 1 {
            if let Some(shard) = shards.first_mut() {
                return f(0, shard);
            }
            return Ok(());
        }
        exec::par_each_mut(shards, |i, shard| f(i, shard))
            .into_iter()
            .collect::<Result<Vec<()>>>()
            .map(|_| ())
    }

    /// Reassembles an object's full canonical buffer in global element
    /// order from its per-shard pieces.
    ///
    /// # Errors
    ///
    /// [`PimError::UnknownObject`]; [`PimError::NotSupported`] in
    /// model-only mode.
    pub(crate) fn gather_full(&self, id: ObjId) -> Result<Vec<i64>> {
        let count = self.meta.get(id)?.count as usize;
        let map = self.maps.get(&id.0).ok_or(PimError::UnknownObject(id))?;
        let mut out = vec![0i64; count];
        for r in &map.ranges {
            let obj = self.shards[r.shard].rm.get(id)?;
            let data = obj
                .data
                .as_deref()
                .ok_or_else(|| PimError::NotSupported("copy_to_host in model-only mode".into()))?;
            let ls = r.local_start as usize;
            let len = (r.end - r.start) as usize;
            out[r.start as usize..r.end as usize].copy_from_slice(&data[ls..ls + len]);
        }
        Ok(out)
    }

    /// Converts an object's sharded contents into a host buffer
    /// (`pimCopyDeviceToHost` under sharding).
    ///
    /// # Errors
    ///
    /// As [`PimSystem::gather_full`].
    pub(crate) fn gather_to_host<T: PimScalar>(&self, id: ObjId, out: &mut [T]) -> Result<()> {
        let map = self.maps.get(&id.0).ok_or(PimError::UnknownObject(id))?;
        for r in &map.ranges {
            let obj = self.shards[r.shard].rm.get(id)?;
            let data = obj
                .data
                .as_deref()
                .ok_or_else(|| PimError::NotSupported("copy_to_host in model-only mode".into()))?;
            let ls = r.local_start as usize;
            let len = (r.end - r.start) as usize;
            exec::par_map_into(
                &data[ls..ls + len],
                &mut out[r.start as usize..r.end as usize],
                |&v| T::from_device(v),
            );
        }
        Ok(())
    }

    /// Packs a host buffer into per-shard canonical buffers
    /// (`pimCopyHostToDevice` under sharding). No-op in model-only mode.
    ///
    /// # Errors
    ///
    /// [`PimError::UnknownObject`].
    pub(crate) fn scatter_to_device<T: PimScalar>(
        &mut self,
        data: &[T],
        id: ObjId,
        dtype: DataType,
    ) -> Result<()> {
        if !self.functional {
            return Ok(());
        }
        let map = self
            .maps
            .get(&id.0)
            .ok_or(PimError::UnknownObject(id))?
            .clone();
        for (s, shard) in self.shards.iter_mut().enumerate() {
            let c = map.count_on(s) as usize;
            if c == 0 {
                continue;
            }
            // Reuse the shard's existing buffer when present (repeated
            // uploads into the same object allocate nothing).
            let mut buf = shard.rm.get_mut(id)?.data.take().unwrap_or_default();
            buf.resize(c, 0);
            for r in map.ranges.iter().filter(|r| r.shard == s) {
                let ls = r.local_start as usize;
                let len = (r.end - r.start) as usize;
                exec::par_map_into(
                    &data[r.start as usize..r.end as usize],
                    &mut buf[ls..ls + len],
                    |v| dtype.truncate(v.to_device()),
                );
            }
            shard.rm.get_mut(id)?.data = Some(buf);
        }
        Ok(())
    }

    /// Element-wise execution across shards. Operands whose shard map
    /// differs from the destination's (e.g. a `select` condition of a
    /// narrower dtype on a horizontal target) are realigned first:
    /// their bytes are counted as interconnect realignment traffic and,
    /// in functional mode, their values are re-dealt by the
    /// destination's map. Returns the realigned byte total.
    ///
    /// # Errors
    ///
    /// [`PimError::UnknownObject`] for dead operands.
    pub(crate) fn exec_elementwise(
        &mut self,
        kind: crate::ops::OpKind,
        dtype: DataType,
        inputs: &[ObjId],
        dst: ObjId,
    ) -> Result<u64> {
        let dst_map = self
            .maps
            .get(&dst.0)
            .ok_or(PimError::UnknownObject(dst))?
            .clone();
        let mut realign_bytes = 0u64;
        let mut rebuilt: Vec<Option<Vec<Vec<i64>>>> = vec![None; inputs.len()];
        for (j, &id) in inputs.iter().enumerate() {
            let map = self.maps.get(&id.0).ok_or(PimError::UnknownObject(id))?;
            if *map == dst_map {
                continue;
            }
            realign_bytes += self.meta.get(id)?.bytes();
            if self.functional {
                let full = self.gather_full(id)?;
                let mut per_shard: Vec<Vec<i64>> = vec![Vec::new(); self.shards.len()];
                for r in &dst_map.ranges {
                    per_shard[r.shard].extend_from_slice(&full[r.start as usize..r.end as usize]);
                }
                rebuilt[j] = Some(per_shard);
            }
        }
        if !self.functional {
            return Ok(realign_bytes);
        }
        let rebuilt = &rebuilt;
        let dst_map = &dst_map;
        // Steady-state ops write into the destination's existing buffer
        // through the `par_*_into` primitives instead of allocating a
        // fresh output per op — the dominant wall-clock cost at large
        // element counts. When an input aliases the destination the
        // buffer cannot be taken out from under the reads, so that
        // (rare) shape keeps the allocate-then-swap path.
        let aliased = inputs.contains(&dst);
        Self::on_shards(&mut self.shards, |s, shard| {
            let n = dst_map.count_on(s) as usize;
            if n == 0 {
                return Ok(());
            }
            let reuse = if aliased {
                None
            } else {
                Some(shard.rm.get_mut(dst)?.data.take().unwrap_or_default())
            };
            let out = {
                let mut ins: Vec<&[i64]> = Vec::with_capacity(inputs.len());
                for (j, &id) in inputs.iter().enumerate() {
                    ins.push(match &rebuilt[j] {
                        Some(per) => &per[s],
                        None => shard
                            .rm
                            .get(id)?
                            .data
                            .as_deref()
                            .expect("functional object has data"),
                    });
                }
                match reuse {
                    Some(mut buf) => {
                        buf.resize(n, 0);
                        match *ins.as_slice() {
                            [a] => exec::par_map_into(a, &mut buf, |&x| {
                                crate::cmd::eval(kind, dtype, &[x])
                            }),
                            [a, b] => exec::par_zip_map_into(a, b, &mut buf, |&x, &y| {
                                crate::cmd::eval(kind, dtype, &[x, y])
                            }),
                            [a, b, c] => {
                                exec::par_zip3_map_into(a, b, c, &mut buf, |&x, &y, &z| {
                                    crate::cmd::eval(kind, dtype, &[x, y, z])
                                })
                            }
                            [a, b, c, d] => {
                                exec::par_zip4_map_into(a, b, c, d, &mut buf, |&x, &y, &z, &u| {
                                    crate::cmd::eval(kind, dtype, &[x, y, z, u])
                                })
                            }
                            _ => unreachable!("element-wise arity is 1..=4"),
                        }
                        buf
                    }
                    None => match *ins.as_slice() {
                        [a] => exec::par_map(a, |&x| crate::cmd::eval(kind, dtype, &[x])),
                        [a, b] => {
                            exec::par_zip_map(a, b, |&x, &y| crate::cmd::eval(kind, dtype, &[x, y]))
                        }
                        [a, b, c] => exec::par_zip3_map(a, b, c, |&x, &y, &z| {
                            crate::cmd::eval(kind, dtype, &[x, y, z])
                        }),
                        [a, b, c, d] => {
                            let chunks = exec::par_chunks(a.len(), |r| {
                                r.map(|i| crate::cmd::eval(kind, dtype, &[a[i], b[i], c[i], d[i]]))
                                    .collect::<Vec<i64>>()
                            });
                            chunks.concat()
                        }
                        _ => unreachable!("element-wise arity is 1..=4"),
                    },
                }
            };
            shard.rm.get_mut(dst)?.data = Some(out);
            Ok(())
        })?;
        Ok(realign_bytes)
    }

    /// Device-to-device copy. Aligned maps clone shard-locally; a
    /// misaligned pair (possible only through dtype-chained
    /// associations) gathers and re-deals, returning the object's bytes
    /// as interconnect realignment traffic.
    ///
    /// # Errors
    ///
    /// [`PimError::UnknownObject`] for dead operands.
    pub(crate) fn copy_data(&mut self, src: ObjId, dst: ObjId) -> Result<u64> {
        let src_map = self.maps.get(&src.0).ok_or(PimError::UnknownObject(src))?;
        let dst_map = self.maps.get(&dst.0).ok_or(PimError::UnknownObject(dst))?;
        if src_map == dst_map {
            if self.functional && src != dst {
                Self::on_shards(&mut self.shards, |_s, shard| {
                    // Reuse the destination's existing buffer: repeated
                    // copies into the same object allocate nothing.
                    let Ok(dst_obj) = shard.rm.get_mut(dst) else {
                        return Ok(());
                    };
                    let mut buf = dst_obj.data.take().unwrap_or_default();
                    let copied = match shard.rm.get(src) {
                        Ok(obj) => match obj.data.as_deref() {
                            Some(d) => {
                                buf.resize(d.len(), 0);
                                buf.copy_from_slice(d);
                                true
                            }
                            None => false,
                        },
                        Err(_) => {
                            // Source absent on this shard: restore the
                            // destination untouched (pre-reuse semantics).
                            shard.rm.get_mut(dst)?.data = Some(buf);
                            return Ok(());
                        }
                    };
                    shard.rm.get_mut(dst)?.data = copied.then_some(buf);
                    Ok(())
                })?;
            }
            return Ok(0);
        }
        let bytes = self.meta.get(src)?.bytes();
        if self.functional {
            let full = self.gather_full(src)?;
            let dst_map = dst_map.clone();
            for (s, shard) in self.shards.iter_mut().enumerate() {
                let c = dst_map.count_on(s) as usize;
                if c == 0 {
                    continue;
                }
                let mut buf = vec![0i64; c];
                for r in dst_map.ranges.iter().filter(|r| r.shard == s) {
                    let ls = r.local_start as usize;
                    let len = (r.end - r.start) as usize;
                    buf[ls..ls + len].copy_from_slice(&full[r.start as usize..r.end as usize]);
                }
                if let Ok(obj) = shard.rm.get_mut(dst) {
                    obj.data = Some(buf);
                }
            }
        }
        Ok(bytes)
    }

    /// Fills every shard-local piece of `dst` with `value` truncated to
    /// `dtype`. No-op in model-only mode.
    ///
    /// # Errors
    ///
    /// Never fails today (missing shard pieces are skipped); kept
    /// fallible for symmetry with the other execution paths.
    pub(crate) fn broadcast_value(
        &mut self,
        dst: ObjId,
        value: i64,
        dtype: DataType,
    ) -> Result<()> {
        if !self.functional {
            return Ok(());
        }
        Self::on_shards(&mut self.shards, |_s, shard| {
            if let Ok(obj) = shard.rm.get_mut(dst) {
                let count = obj.count as usize;
                // Fill in place when a buffer already exists.
                let mut buf = obj.data.take().unwrap_or_default();
                buf.resize(count, 0);
                buf.fill(dtype.truncate(value));
                obj.data = Some(buf);
            }
            Ok(())
        })
    }

    /// Widening reduction sum across all shards (0 in model-only mode).
    /// Per-range partials accumulate in ascending global order; `i128`
    /// addition is associative so the result is bit-identical to the
    /// unsharded sum.
    ///
    /// # Errors
    ///
    /// [`PimError::UnknownObject`].
    pub(crate) fn red_sum(&self, a: ObjId, dtype: DataType) -> Result<i128> {
        let map = self.maps.get(&a.0).ok_or(PimError::UnknownObject(a))?;
        let mut total = 0i128;
        for r in &map.ranges {
            let obj = self.shards[r.shard].rm.get(a)?;
            let Some(data) = obj.data.as_deref() else {
                return Ok(0);
            };
            let ls = r.local_start as usize;
            let len = (r.end - r.start) as usize;
            total += par_sum(&data[ls..ls + len], dtype);
        }
        Ok(total)
    }

    /// Reduction extreme (`min` when `want_min`, else `max`) across all
    /// shards, 0 in model-only mode. Per-range partials fold in
    /// ascending global order with keep-first tie-breaking — exactly a
    /// sequential scan's semantics, so sharding cannot change the
    /// result.
    ///
    /// # Errors
    ///
    /// [`PimError::UnknownObject`].
    pub(crate) fn red_extreme(&self, a: ObjId, dtype: DataType, want_min: bool) -> Result<i64> {
        let map = self.maps.get(&a.0).ok_or(PimError::UnknownObject(a))?;
        let keep_first = |x: i64, y: i64| {
            let ord = dtype.compare(x, y);
            if if want_min { ord.is_le() } else { ord.is_ge() } {
                x
            } else {
                y
            }
        };
        let mut best: Option<i64> = None;
        for r in &map.ranges {
            let obj = self.shards[r.shard].rm.get(a)?;
            let Some(data) = obj.data.as_deref() else {
                return Ok(0);
            };
            let ls = r.local_start as usize;
            let len = (r.end - r.start) as usize;
            let seg = &data[ls..ls + len];
            let part = exec::par_fold(
                seg.len(),
                |rr| {
                    seg[rr]
                        .iter()
                        .copied()
                        .reduce(keep_first)
                        .expect("chunks are non-empty")
                },
                keep_first,
            );
            best = match (best, part) {
                (Some(x), Some(y)) => Some(keep_first(x, y)),
                (None, p) => p,
                (b, None) => b,
            };
        }
        Ok(best.unwrap_or(0))
    }

    /// Ranged reduction sum over global elements `[start, end)`
    /// (bounds already validated), intersected with each shard range.
    ///
    /// # Errors
    ///
    /// [`PimError::UnknownObject`].
    pub(crate) fn red_sum_range(
        &self,
        a: ObjId,
        dtype: DataType,
        start: u64,
        end: u64,
    ) -> Result<i128> {
        let map = self.maps.get(&a.0).ok_or(PimError::UnknownObject(a))?;
        let mut total = 0i128;
        for r in &map.ranges {
            let s = start.max(r.start);
            let e = end.min(r.end);
            if s >= e {
                continue;
            }
            let obj = self.shards[r.shard].rm.get(a)?;
            let Some(data) = obj.data.as_deref() else {
                return Ok(0);
            };
            let ls = (r.local_start + (s - r.start)) as usize;
            total += par_sum(&data[ls..ls + (e - s) as usize], dtype);
        }
        Ok(total)
    }

    /// Runs a batched sweep shard-locally. Requires every slot to share
    /// the destination's shard map (the device falls back to
    /// per-command execution otherwise); each shard then runs the exact
    /// chunk-local program of the unsharded batch over its own element
    /// range, which is bit-identical because every step is positionwise.
    ///
    /// # Errors
    ///
    /// [`PimError::UnknownObject`] if a written slot died mid-batch
    /// (impossible for validated streams).
    pub(crate) fn exec_batch(
        &mut self,
        slots: &[ObjId],
        steps: &[crate::cmd::BatchStep],
        dst0: ObjId,
    ) -> Result<()> {
        if !self.functional {
            return Ok(());
        }
        Self::on_shards(&mut self.shards, |_s, shard| {
            let n = match shard.rm.get(dst0) {
                Ok(obj) => obj.count as usize,
                Err(_) => return Ok(()),
            };
            let finals: Vec<(ObjId, Vec<i64>)> = {
                let initial: Vec<Option<&[i64]>> = slots
                    .iter()
                    .map(|&id| shard.rm.get(id).expect("validated").data.as_deref())
                    .collect();
                let chunk_results = exec::par_chunks(n, |r| {
                    let (start, len) = (r.start, r.len());
                    let mut local: Vec<Option<Vec<i64>>> = vec![None; slots.len()];
                    for i in r {
                        for step in steps {
                            let mut args = [0i64; 4];
                            for (j, &(slot, from_local)) in step.ins.iter().enumerate() {
                                args[j] = if from_local {
                                    local[slot].as_ref().expect("written by an earlier step")
                                        [i - start]
                                } else {
                                    initial[slot].expect("functional object has data")[i]
                                };
                            }
                            let v =
                                crate::cmd::eval(step.kind, step.dtype, &args[..step.ins.len()]);
                            local[step.dst].get_or_insert_with(|| vec![0; len])[i - start] = v;
                        }
                    }
                    local
                });
                let written: Vec<usize> = {
                    let mut seen = std::collections::BTreeSet::new();
                    steps
                        .iter()
                        .map(|s| s.dst)
                        .filter(|&d| seen.insert(d))
                        .collect()
                };
                let mut finals = Vec::with_capacity(written.len());
                for s in written {
                    let mut buf = Vec::with_capacity(n);
                    for chunk in &chunk_results {
                        buf.extend_from_slice(
                            chunk[s].as_ref().expect("every chunk runs every step"),
                        );
                    }
                    finals.push((slots[s], buf));
                }
                finals
            };
            for (id, buf) in finals {
                shard.rm.get_mut(id)?.data = Some(buf);
            }
            Ok(())
        })
    }

    // ------------------------------------------------------------------
    // Timing backends
    // ------------------------------------------------------------------

    /// The timing backend every shard of this system charges through.
    pub fn timing_backend(&self) -> TimingBackend {
        self.shards
            .first()
            .map(|s| s.timing.backend())
            .unwrap_or_default()
    }

    /// Shards holding at least one element of `costed`, ascending; shard
    /// 0 when unmapped or single-shard (whole-device attribution).
    fn holders_of(&self, costed: ObjId) -> Vec<usize> {
        if self.shards.len() > 1 {
            if let Some(map) = self.maps.get(&costed.0) {
                let holders: Vec<usize> = map
                    .counts
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(s, _)| s)
                    .collect();
                if !holders.is_empty() {
                    return holders;
                }
            }
        }
        vec![0]
    }

    /// Prices one command through the timing backends of every shard
    /// holding `costed`, in ascending shard order (deterministic at any
    /// thread count). Shards execute the broadcast in lockstep, so each
    /// holder charges the full per-core demand and the aggregate is the
    /// slowest holder — which keeps the aggregate shard-count-invariant.
    /// Protocol counters each backend issues are recorded into that
    /// shard's ledger; the merged delta is returned for the aggregate
    /// ledger.
    pub(crate) fn price_with_backends<F>(
        &mut self,
        costed: ObjId,
        mut price: F,
    ) -> (OpCost, TimingCounters)
    where
        F: FnMut(&mut dyn TimingModel) -> OpCost,
    {
        let mut agg: Option<OpCost> = None;
        let mut delta = TimingCounters::default();
        for s in self.holders_of(costed) {
            let shard = &mut self.shards[s];
            let before = shard.timing.counters();
            let cost = price(shard.timing.as_mut());
            let d = shard.timing.counters().delta_since(&before);
            if !d.is_empty() {
                shard.stats.record_protocol(&d);
            }
            delta.merge(&d);
            agg = Some(match agg {
                None => cost,
                Some(prev) if cost.time_ms > prev.time_ms => cost,
                Some(prev) => prev,
            });
        }
        (agg.unwrap_or_default(), delta)
    }

    /// Charges one host↔device copy of `represented_bytes` through the
    /// holders' timing backends (bandwidth-bound in both backends; the
    /// critical path is the same on every holder) and replays the
    /// protocol stream for counters. Returns the copy time in ms, the
    /// replay for the trace (stateful backends always replay so counters
    /// and state agree; the stateless backend replays only when
    /// `want_replay`, preserving its historical trace-only counters),
    /// and the merged counter delta for the aggregate ledger.
    pub(crate) fn charge_copy_with_backends(
        &mut self,
        obj: ObjId,
        represented_bytes: u64,
        functional_bytes: u64,
        ranks: usize,
        want_replay: bool,
    ) -> (f64, Option<CopyReplay>, TimingCounters) {
        let mut time_ms: Option<f64> = None;
        let mut replay: Option<CopyReplay> = None;
        let mut delta = TimingCounters::default();
        for s in self.holders_of(obj) {
            let shard = &mut self.shards[s];
            let t = shard.timing.charge_host_copy(represented_bytes, ranks);
            time_ms = Some(match time_ms {
                None => t,
                Some(prev) => prev.max(t),
            });
            let stateful = shard.timing.backend() != TimingBackend::Analytical;
            if stateful || (want_replay && replay.is_none()) {
                let before = shard.timing.counters();
                let r = shard.timing.copy_replay(functional_bytes);
                let d = shard.timing.counters().delta_since(&before);
                if !d.is_empty() {
                    shard.stats.record_protocol(&d);
                }
                delta.merge(&d);
                replay.get_or_insert(r);
            }
        }
        (time_ms.unwrap_or(0.0), replay, delta)
    }

    /// Drains every shard's timing backend (closes all open rows) and
    /// returns the longest per-shard drain time in ms.
    pub(crate) fn drain_backends(&mut self) -> f64 {
        let mut worst_ns = 0.0f64;
        for shard in &mut self.shards {
            worst_ns = worst_ns.max(shard.timing.drain());
        }
        worst_ns * 1e-6
    }

    // ------------------------------------------------------------------
    // Per-shard cost distribution
    // ------------------------------------------------------------------

    /// Splits one command's aggregate cost across the shard ledgers
    /// proportionally to each shard's element share of `costed`; the
    /// last non-empty shard absorbs the rounding remainder so the
    /// per-shard sum equals the aggregate exactly up to float
    /// re-association.
    pub(crate) fn distribute_cmd(
        &mut self,
        costed: ObjId,
        name: &str,
        category: OpCategory,
        cost: OpCost,
    ) {
        if self.shards.len() <= 1 {
            return;
        }
        let Some(map) = self.maps.get(&costed.0) else {
            return;
        };
        let counts = map.counts.clone();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return;
        }
        let Some(last) = counts.iter().rposition(|&c| c > 0) else {
            return;
        };
        let (mut acc_t, mut acc_e) = (0.0f64, 0.0f64);
        for (s, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (t, e) = if s == last {
                (
                    (cost.time_ms - acc_t).max(0.0),
                    (cost.energy_mj - acc_e).max(0.0),
                )
            } else {
                let frac = c as f64 / total as f64;
                (cost.time_ms * frac, cost.energy_mj * frac)
            };
            acc_t += t;
            acc_e += e;
            let cores = self.shards[s]
                .rm
                .get(costed)
                .map(|o| o.layout.cores_used)
                .unwrap_or(0);
            self.shards[s].stats.record_cmd(
                name.to_string(),
                category,
                OpCost {
                    time_ms: t,
                    energy_mj: e,
                },
                cores,
            );
        }
    }

    /// Splits one copy's bytes/time/energy across the shard ledgers
    /// proportionally to each shard's element share of `obj` (remainder
    /// to the last non-empty shard, as in
    /// [`PimSystem::distribute_cmd`]).
    pub(crate) fn distribute_copy(
        &mut self,
        obj: ObjId,
        direction: u8,
        bytes: u64,
        time_ms: f64,
        energy_mj: f64,
    ) {
        if self.shards.len() <= 1 {
            return;
        }
        let Some(map) = self.maps.get(&obj.0) else {
            return;
        };
        let counts = map.counts.clone();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return;
        }
        let Some(last) = counts.iter().rposition(|&c| c > 0) else {
            return;
        };
        let (mut acc_b, mut acc_t, mut acc_e) = (0u64, 0.0f64, 0.0f64);
        for (s, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (b, t, e) = if s == last {
                (
                    bytes - acc_b,
                    (time_ms - acc_t).max(0.0),
                    (energy_mj - acc_e).max(0.0),
                )
            } else {
                let frac = c as f64 / total as f64;
                (
                    (bytes as u128 * c as u128 / total as u128) as u64,
                    time_ms * frac,
                    energy_mj * frac,
                )
            };
            acc_b += b;
            acc_t += t;
            acc_e += e;
            self.shards[s].stats.record_copy(b, direction, t, e);
        }
    }

    /// Each shard's proportional share of a `time_ms`-long command on
    /// `costed`, as `(shard, share_ms)` pairs in ascending shard order —
    /// the same split [`PimSystem::distribute_cmd`] ledgers (last
    /// non-empty shard absorbs the rounding remainder). Empty on
    /// single-shard devices or unmapped objects, so callers fall back
    /// to whole-device attribution.
    pub(crate) fn shard_time_shares(&self, costed: ObjId, time_ms: f64) -> Vec<(usize, f64)> {
        if self.shards.len() <= 1 {
            return Vec::new();
        }
        let Some(map) = self.maps.get(&costed.0) else {
            return Vec::new();
        };
        let total: u64 = map.counts.iter().sum();
        if total == 0 {
            return Vec::new();
        }
        let Some(last) = map.counts.iter().rposition(|&c| c > 0) else {
            return Vec::new();
        };
        let mut shares = Vec::new();
        let mut acc = 0.0f64;
        for (s, &c) in map.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let t = if s == last {
                (time_ms - acc).max(0.0)
            } else {
                time_ms * (c as f64 / total as f64)
            };
            acc += t;
            shares.push((s, t));
        }
        shares
    }

    /// Critical-path and total byte loads of scattering/gathering `id`:
    /// `(busiest shard's bytes, all bytes)`.
    pub(crate) fn shard_byte_split(&self, id: ObjId) -> (u64, u64) {
        let Ok(obj) = self.meta.get(id) else {
            return (0, 0);
        };
        let bpe = (obj.dtype.bits() as u64 / 8).max(1);
        match self.maps.get(&id.0) {
            Some(map) => {
                let max_c = map.counts.iter().copied().max().unwrap_or(0);
                (max_c * bpe, obj.count * bpe)
            }
            None => (obj.count * bpe, obj.count * bpe),
        }
    }

    /// Snapshot of catalog-level and per-shard resource usage
    /// (per-shard rows are populated only when more than one shard
    /// exists).
    pub(crate) fn resource_stats(&self) -> ResourceStats {
        let per_shard = if self.shards.len() > 1 {
            self.shards
                .iter()
                .map(|s| ShardResourceStats {
                    rows_in_use: s.rm.rows_in_use(),
                    peak_rows: s.rm.peak_rows(),
                    rows_capacity: s.rm.rows_capacity(),
                    live_objects: s.rm.live_objects() as u64,
                })
                .collect()
        } else {
            Vec::new()
        };
        ResourceStats {
            rows_in_use: self.meta.rows_in_use(),
            peak_rows: self.meta.peak_rows(),
            rows_capacity: self.meta.rows_capacity(),
            live_objects: self.meta.live_objects() as u64,
            shards: self.shards.len() as u64,
            per_shard,
        }
    }

    /// Clears every shard's statistics sub-ledger and resets its timing
    /// backend to a fresh (all-banks-closed) state.
    pub(crate) fn reset_shard_stats(&mut self) {
        for shard in &mut self.shards {
            shard.stats = SimStats::new();
            shard.timing.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_partition(map: &ShardMap, count: u64) {
        let mut next = 0u64;
        let mut local_next = vec![0u64; map.shard_count()];
        for r in map.ranges() {
            assert_eq!(r.start, next, "ranges must tile [0, count) in order");
            assert!(r.end > r.start);
            assert_eq!(r.local_start, local_next[r.shard]);
            local_next[r.shard] += r.end - r.start;
            next = r.end;
        }
        assert_eq!(next, count);
        for (s, &c) in map.counts().iter().enumerate() {
            assert_eq!(c, local_next[s], "counts must match range coverage");
        }
        assert_eq!(map.counts().iter().sum::<u64>(), count);
    }

    #[test]
    fn contiguous_map_partitions_on_unit_boundaries() {
        let map = ShardMap::compute(1000, 32, &[4, 4, 4, 4], ShardPolicy::Contiguous);
        assert_partition(&map, 1000);
        for r in &map.ranges()[..map.ranges().len() - 1] {
            assert_eq!(r.start % 32, 0, "splits must land on unit boundaries");
            assert_eq!(r.end % 32, 0, "splits must land on unit boundaries");
        }
    }

    #[test]
    fn contiguous_map_respects_weights() {
        let map = ShardMap::compute(64, 1, &[3, 1], ShardPolicy::Contiguous);
        assert_partition(&map, 64);
        assert_eq!(map.count_on(0), 48);
        assert_eq!(map.count_on(1), 16);
    }

    #[test]
    fn round_robin_deals_units_cyclically() {
        let map = ShardMap::compute(100, 10, &[1, 1, 1], ShardPolicy::RoundRobin);
        assert_partition(&map, 100);
        // 10 units of 10 elements: shards get 4, 3, 3 units.
        assert_eq!(map.count_on(0), 40);
        assert_eq!(map.count_on(1), 30);
        assert_eq!(map.count_on(2), 30);
    }

    #[test]
    fn both_policies_coincide_for_one_shard() {
        let contiguous = ShardMap::compute(12345, 64, &[8], ShardPolicy::Contiguous);
        let rr = ShardMap::compute(12345, 64, &[8], ShardPolicy::RoundRobin);
        assert_eq!(contiguous, rr);
        assert_eq!(contiguous.ranges().len(), 1);
        assert_eq!(contiguous.count_on(0), 12345);
    }

    #[test]
    fn tiny_objects_leave_trailing_shards_empty() {
        let map = ShardMap::compute(5, 32, &[2, 2, 2, 2], ShardPolicy::Contiguous);
        assert_partition(&map, 5);
        assert_eq!(map.ranges().len(), 1, "one unit cannot split");
        let nonempty = map.counts().iter().filter(|&&c| c > 0).count();
        assert_eq!(nonempty, 1);
    }

    #[test]
    fn partial_final_unit_is_clamped_to_count() {
        let map = ShardMap::compute(65, 32, &[1, 1], ShardPolicy::Contiguous);
        assert_partition(&map, 65);
        // 3 units; shard 0 gets ⌊3·1/2⌋ = 1 unit, shard 1 the rest.
        assert_eq!(map.count_on(0), 32);
        assert_eq!(map.count_on(1), 33);
    }

    #[test]
    fn interconnect_model_charges_critical_path_time_and_total_energy() {
        let config = DeviceConfig::new(crate::config::PimTarget::Fulcrum, 2);
        let ic = InterconnectModel::from_config(&config);
        let ms = ic.transfer_ms(25_600_000);
        assert!((ms - 1.0).abs() < 1e-9, "25.6 MB at 25.6 GB/s is 1 ms");
        let mj = ic.energy_mj(1_000_000);
        assert!((mj - 1_000_000.0 * 8.0 * 0.015 * 1e-9).abs() < 1e-15);
    }

    #[test]
    fn split_even_sums_to_total() {
        for total in [0usize, 1, 7, 8, 8192] {
            for n in 1..=5 {
                let sum: usize = (0..n).map(|i| split_even(total, n, i)).sum();
                assert_eq!(sum, total);
            }
        }
    }
}
