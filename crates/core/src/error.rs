//! Error type for the PIM simulator API.

use std::error::Error;
use std::fmt;

use crate::dtype::DataType;
use crate::object::ObjId;

/// Errors returned by [`crate::Device`] API calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PimError {
    /// An object ID did not name a live allocation.
    UnknownObject(ObjId),
    /// Operand element counts differ.
    CountMismatch {
        /// Expected element count (first operand).
        expected: u64,
        /// Actual element count of the mismatching operand.
        actual: u64,
    },
    /// Operand data types differ where they must match.
    DTypeMismatch {
        /// Expected data type.
        expected: DataType,
        /// Actual data type.
        actual: DataType,
    },
    /// The allocation does not fit in the device.
    OutOfMemory {
        /// Rows requested per core.
        rows_needed: u64,
        /// Rows available in the fullest required core.
        rows_available: u64,
    },
    /// An argument was invalid (zero-length allocation, oversized host
    /// buffer, destination aliasing an input where forbidden, ...).
    InvalidArg(String),
    /// The operation is not supported on the configured target.
    NotSupported(String),
}

impl fmt::Display for PimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PimError::UnknownObject(id) => write!(f, "unknown or freed PIM object {id}"),
            PimError::CountMismatch { expected, actual } => {
                write!(
                    f,
                    "element count mismatch: expected {expected}, got {actual}"
                )
            }
            PimError::DTypeMismatch { expected, actual } => {
                write!(f, "data type mismatch: expected {expected}, got {actual}")
            }
            PimError::OutOfMemory {
                rows_needed,
                rows_available,
            } => {
                write!(
                    f,
                    "allocation needs {rows_needed} rows/core but only {rows_available} are free"
                )
            }
            PimError::InvalidArg(msg) => write!(f, "invalid argument: {msg}"),
            PimError::NotSupported(msg) => write!(f, "not supported: {msg}"),
        }
    }
}

impl Error for PimError {}

/// Convenience result alias for PIM API calls.
pub type Result<T> = std::result::Result<T, PimError>;
