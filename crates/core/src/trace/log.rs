//! Leveled diagnostic logging gated by the `PIM_LOG` environment
//! variable.
//!
//! `PIM_LOG` is read once per process and accepts `off`, `error`,
//! `warn`, `info`, `debug`, or `trace` (case-insensitive; unset or
//! unrecognized values mean `off`). Messages go to stderr so they never
//! interleave with report/JSON output on stdout.
//!
//! Use the [`pim_log!`](crate::pim_log) macro (or the level shorthands
//! [`pim_info!`](crate::pim_info) etc.) so the format arguments are only
//! evaluated when the level is enabled:
//!
//! ```
//! pimeval::pim_info!("device ready with {} cores", 8192);
//! ```

use std::sync::OnceLock;

/// Log verbosity, ordered from silent to most verbose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// No logging (the default).
    Off,
    /// Unrecoverable problems.
    Error,
    /// Suspicious conditions.
    Warn,
    /// Lifecycle events: device creation, run boundaries, file exports.
    Info,
    /// Per-object events: allocations, frees, copies.
    Debug,
    /// Per-command events (hot path; very verbose).
    Trace,
}

impl Level {
    fn parse(s: &str) -> Level {
        match s.to_ascii_lowercase().as_str() {
            "error" | "1" => Level::Error,
            "warn" | "warning" | "2" => Level::Warn,
            "info" | "3" => Level::Info,
            "debug" | "4" => Level::Debug,
            "trace" | "5" => Level::Trace,
            _ => Level::Off,
        }
    }

    /// Lowercase label used as the log-line prefix.
    pub fn label(&self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

static MAX_LEVEL: OnceLock<Level> = OnceLock::new();

/// The process-wide maximum level, parsed from `PIM_LOG` on first use.
pub fn max_level() -> Level {
    *MAX_LEVEL.get_or_init(|| {
        std::env::var("PIM_LOG")
            .map(|v| Level::parse(&v))
            .unwrap_or(Level::Off)
    })
}

/// True if a message at `level` would be printed.
pub fn enabled(level: Level) -> bool {
    level <= max_level() && max_level() != Level::Off && level != Level::Off
}

/// Prints one log line to stderr. Prefer the macros, which skip argument
/// formatting when the level is disabled.
pub fn log(level: Level, args: std::fmt::Arguments<'_>) {
    eprintln!("[pim {}] {}", level.label(), args);
}

/// Logs at an explicit [`Level`](crate::trace::log::Level); formatting is
/// skipped entirely when the level is disabled.
#[macro_export]
macro_rules! pim_log {
    ($lvl:expr, $($arg:tt)*) => {
        if $crate::trace::log::enabled($lvl) {
            $crate::trace::log::log($lvl, format_args!($($arg)*));
        }
    };
}

/// Logs at `Level::Error`.
#[macro_export]
macro_rules! pim_error {
    ($($arg:tt)*) => { $crate::pim_log!($crate::trace::log::Level::Error, $($arg)*) };
}

/// Logs at `Level::Warn`.
#[macro_export]
macro_rules! pim_warn {
    ($($arg:tt)*) => { $crate::pim_log!($crate::trace::log::Level::Warn, $($arg)*) };
}

/// Logs at `Level::Info`.
#[macro_export]
macro_rules! pim_info {
    ($($arg:tt)*) => { $crate::pim_log!($crate::trace::log::Level::Info, $($arg)*) };
}

/// Logs at `Level::Debug`.
#[macro_export]
macro_rules! pim_debug {
    ($($arg:tt)*) => { $crate::pim_log!($crate::trace::log::Level::Debug, $($arg)*) };
}

/// Logs at `Level::Trace`.
#[macro_export]
macro_rules! pim_trace {
    ($($arg:tt)*) => { $crate::pim_log!($crate::trace::log::Level::Trace, $($arg)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Error < Level::Trace);
        assert!(Level::Off < Level::Error);
    }

    #[test]
    fn parse_accepts_names_and_numbers() {
        assert_eq!(Level::parse("DEBUG"), Level::Debug);
        assert_eq!(Level::parse("3"), Level::Info);
        assert_eq!(Level::parse("nonsense"), Level::Off);
        assert_eq!(Level::parse(""), Level::Off);
    }

    #[test]
    fn off_is_never_enabled() {
        // Whatever PIM_LOG is set to, Level::Off messages never print.
        assert!(!enabled(Level::Off));
    }
}
