//! Leveled diagnostic logging gated by the `PIM_LOG` environment
//! variable.
//!
//! `PIM_LOG` is read once per process and accepts `off`, `error`,
//! `warn`, `info`, `debug`, or `trace` (case-insensitive and
//! whitespace-tolerant; unset or unrecognized values mean `off`, with a
//! one-time warning for unrecognized non-empty values). Messages go to
//! stderr so they never interleave with report/JSON output on stdout.
//!
//! Use the [`pim_log!`](crate::pim_log) macro (or the level shorthands
//! [`pim_info!`](crate::pim_info) etc.) so the format arguments are only
//! evaluated when the level is enabled:
//!
//! ```
//! pimeval::pim_info!("device ready with {} cores", 8192);
//! ```

use std::sync::OnceLock;

/// Log verbosity, ordered from silent to most verbose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// No logging (the default).
    Off,
    /// Unrecoverable problems.
    Error,
    /// Suspicious conditions.
    Warn,
    /// Lifecycle events: device creation, run boundaries, file exports.
    Info,
    /// Per-object events: allocations, frees, copies.
    Debug,
    /// Per-command events (hot path; very verbose).
    Trace,
}

impl Level {
    fn parse(s: &str) -> Level {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "" => Level::Off,
            "error" | "1" => Level::Error,
            "warn" | "warning" | "2" => Level::Warn,
            "info" | "3" => Level::Info,
            "debug" | "4" => Level::Debug,
            "trace" | "5" => Level::Trace,
            other => {
                warn_unrecognized(other);
                Level::Off
            }
        }
    }

    /// Lowercase label used as the log-line prefix.
    pub fn label(&self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// Warns once (per process) that `PIM_LOG` held an unrecognized level,
/// instead of silently disabling logging.
fn warn_unrecognized(value: &str) {
    static WARNED: std::sync::Once = std::sync::Once::new();
    WARNED.call_once(|| {
        eprintln!(
            "[pim warn] unrecognized PIM_LOG level '{value}' \
             (expected off|error|warn|info|debug|trace or 0-5); logging disabled"
        );
    });
}

static MAX_LEVEL: OnceLock<Level> = OnceLock::new();

/// The process-wide maximum level, parsed from `PIM_LOG` on first use.
pub fn max_level() -> Level {
    *MAX_LEVEL.get_or_init(|| {
        std::env::var("PIM_LOG")
            .map(|v| Level::parse(&v))
            .unwrap_or(Level::Off)
    })
}

/// True if a message at `level` would be printed.
pub fn enabled(level: Level) -> bool {
    level <= max_level() && max_level() != Level::Off && level != Level::Off
}

/// Prints one log line to stderr. Prefer the macros, which skip argument
/// formatting when the level is disabled.
pub fn log(level: Level, args: std::fmt::Arguments<'_>) {
    eprintln!("[pim {}] {}", level.label(), args);
}

/// Logs at an explicit [`Level`](crate::trace::log::Level); formatting is
/// skipped entirely when the level is disabled.
#[macro_export]
macro_rules! pim_log {
    ($lvl:expr, $($arg:tt)*) => {
        if $crate::trace::log::enabled($lvl) {
            $crate::trace::log::log($lvl, format_args!($($arg)*));
        }
    };
}

/// Logs at `Level::Error`.
#[macro_export]
macro_rules! pim_error {
    ($($arg:tt)*) => { $crate::pim_log!($crate::trace::log::Level::Error, $($arg)*) };
}

/// Logs at `Level::Warn`.
#[macro_export]
macro_rules! pim_warn {
    ($($arg:tt)*) => { $crate::pim_log!($crate::trace::log::Level::Warn, $($arg)*) };
}

/// Logs at `Level::Info`.
#[macro_export]
macro_rules! pim_info {
    ($($arg:tt)*) => { $crate::pim_log!($crate::trace::log::Level::Info, $($arg)*) };
}

/// Logs at `Level::Debug`.
#[macro_export]
macro_rules! pim_debug {
    ($($arg:tt)*) => { $crate::pim_log!($crate::trace::log::Level::Debug, $($arg)*) };
}

/// Logs at `Level::Trace`.
#[macro_export]
macro_rules! pim_trace {
    ($($arg:tt)*) => { $crate::pim_log!($crate::trace::log::Level::Trace, $($arg)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Error < Level::Trace);
        assert!(Level::Off < Level::Error);
    }

    #[test]
    fn parse_accepts_names_and_numbers() {
        assert_eq!(Level::parse("DEBUG"), Level::Debug);
        assert_eq!(Level::parse("3"), Level::Info);
        assert_eq!(Level::parse("nonsense"), Level::Off);
        assert_eq!(Level::parse(""), Level::Off);
    }

    #[test]
    fn parse_tolerates_case_and_whitespace() {
        assert_eq!(Level::parse("  Trace\n"), Level::Trace);
        assert_eq!(Level::parse("WARNING"), Level::Warn);
        assert_eq!(Level::parse(" OFF "), Level::Off);
        assert_eq!(Level::parse("\t2 "), Level::Warn);
    }

    #[test]
    fn off_is_never_enabled() {
        // Whatever PIM_LOG is set to, Level::Off messages never print.
        assert!(!enabled(Level::Off));
    }
}
