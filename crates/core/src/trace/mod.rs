//! Simulation observability: typed trace events, pluggable sinks, and
//! machine-readable exporters.
//!
//! The simulator reports aggregates through [`SimStats`](crate::SimStats);
//! this module adds the *timeline* view — one event per device-lifecycle
//! step, PIM command, host↔device copy, and host phase, each stamped on
//! the simulated clock. Tracing is strictly opt-in: a device starts with
//! the no-op sink and skips all event construction, so untraced runs are
//! bit-identical to pre-trace behavior.
//!
//! # Example
//!
//! ```
//! use pimeval::{Device, DataType};
//!
//! # fn main() -> Result<(), pimeval::PimError> {
//! let mut dev = Device::fulcrum(2)?;
//! dev.enable_tracing();
//! let a = dev.alloc_vec(&[1i32, 2, 3])?;
//! let b = dev.alloc_associated(a, DataType::Int32)?;
//! dev.add(a, a, b)?;
//! let events = dev.take_trace();
//! let chrome_json = pimeval::trace::chrome::chrome_trace_json(&events);
//! assert!(chrome_json.contains("add.int32"));
//! # Ok(())
//! # }
//! ```
//!
//! Submodules: [`chrome`] (Chrome-trace-event/Perfetto exporter),
//! [`json`] (stats JSON renderer + minimal parser), [`log`] (the
//! `PIM_LOG` leveled logger).

pub mod chrome;
pub mod json;
pub mod log;

/// Microcode counters behind one PIM command, summed over every stripe
/// the busiest core executes (bit-serial targets only). Mirrors
/// [`pim_microcode::Cost`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MicroCounters {
    /// DRAM row activations for reads.
    pub row_reads: u64,
    /// DRAM row write-backs.
    pub row_writes: u64,
    /// Sense-amp logic operations.
    pub logic_ops: u64,
    /// Row-wide popcount reads.
    pub popcount_reads: u64,
    /// Analog AAP (double-activation) operations.
    pub aap_ops: u64,
    /// Analog triple-row activations.
    pub tra_ops: u64,
}

impl From<pim_microcode::Cost> for MicroCounters {
    fn from(c: pim_microcode::Cost) -> Self {
        MicroCounters {
            row_reads: c.row_reads,
            row_writes: c.row_writes,
            logic_ops: c.logic_ops,
            popcount_reads: c.popcount_reads,
            aap_ops: c.aap_ops,
            tra_ops: c.tra_ops,
        }
    }
}

/// DRAM protocol counters from a bounded bank-FSM replay of one
/// host↔device transfer (the active [`pim_dram::TimingModel`] backend
/// streams up to [`PROTOCOL_REPLAY_MAX_ROWS`] rows through one rank's
/// bank state machines).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProtocolCounters {
    /// ACT commands issued.
    pub activations: u64,
    /// Column reads.
    pub reads: u64,
    /// Column writes.
    pub writes: u64,
    /// PRE commands issued.
    pub precharges: u64,
    /// Column commands that hit an open row.
    pub row_hits: u64,
    /// Column commands that missed (forced an ACT, possibly after PRE).
    pub row_misses: u64,
    /// Achieved streaming bandwidth over the replayed window (GB/s).
    pub achieved_gbs: f64,
}

impl From<pim_dram::CopyReplay> for ProtocolCounters {
    fn from(r: pim_dram::CopyReplay) -> Self {
        ProtocolCounters {
            activations: r.counters.activations,
            reads: r.counters.reads,
            writes: r.counters.writes,
            precharges: r.counters.precharges,
            row_hits: r.counters.row_hits,
            row_misses: r.counters.row_misses,
            achieved_gbs: r.achieved_gbs,
        }
    }
}

/// Row cap for the per-copy protocol replay (keeps tracing overhead
/// bounded for multi-gigabyte copies) — shared with the timing-model
/// backends in `pim_dram`.
pub const PROTOCOL_REPLAY_MAX_ROWS: usize = pim_dram::timing_model::COPY_REPLAY_MAX_ROWS;

/// Direction of a data movement event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyDirection {
    /// Host → device.
    HostToDevice,
    /// Device → host.
    DeviceToHost,
    /// Device → device.
    DeviceToDevice,
}

impl CopyDirection {
    /// Stable label used in exports.
    pub fn label(&self) -> &'static str {
        match self {
            CopyDirection::HostToDevice => "host_to_device",
            CopyDirection::DeviceToHost => "device_to_host",
            CopyDirection::DeviceToDevice => "device_to_device",
        }
    }

    /// The direction code used by [`SimStats::record_copy`](crate::SimStats::record_copy).
    pub fn code(&self) -> u8 {
        match self {
            CopyDirection::HostToDevice => 0,
            CopyDirection::DeviceToHost => 1,
            CopyDirection::DeviceToDevice => 2,
        }
    }
}

/// One timeline event. Timestamps (`at_ms`, `start_ms`) are simulated
/// milliseconds since device creation; durations are the modeled cost of
/// the step.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A device came up.
    DeviceCreated {
        /// Simulated timestamp (always 0 for a fresh device).
        at_ms: f64,
        /// Target name (e.g. `Fulcrum`).
        target: String,
        /// PIM core count.
        cores: usize,
        /// DRAM rank count.
        ranks: usize,
    },
    /// An object was allocated.
    Alloc {
        /// Simulated timestamp.
        at_ms: f64,
        /// Object id.
        id: u64,
        /// Element count.
        count: u64,
        /// Element type short name (e.g. `int32`).
        dtype: String,
        /// Cores the layout spans.
        cores_used: usize,
        /// Rows occupied on the busiest core.
        rows_per_core: u64,
    },
    /// An object was freed.
    Free {
        /// Simulated timestamp.
        at_ms: f64,
        /// Object id.
        id: u64,
    },
    /// One PIM command span.
    Cmd {
        /// Statistics key, e.g. `add.int32`.
        name: String,
        /// Fig. 8 category label.
        category: &'static str,
        /// Span start on the simulated clock (ms).
        start_ms: f64,
        /// Modeled kernel time (ms).
        time_ms: f64,
        /// Modeled kernel energy (mJ).
        energy_mj: f64,
        /// Cores the command occupied.
        cores_used: usize,
        /// Microcode counters (bit-serial targets).
        micro: Option<MicroCounters>,
    },
    /// One data movement span.
    Copy {
        /// Transfer direction.
        direction: CopyDirection,
        /// Bytes moved.
        bytes: u64,
        /// Span start on the simulated clock (ms).
        start_ms: f64,
        /// Modeled transfer time (ms).
        time_ms: f64,
        /// Modeled transfer energy (mJ).
        energy_mj: f64,
        /// DRAM protocol replay counters (host↔device transfers).
        protocol: Option<ProtocolCounters>,
    },
    /// A modeled host-execution span.
    HostPhase {
        /// Span start on the simulated clock (ms).
        start_ms: f64,
        /// Modeled host time (ms).
        time_ms: f64,
    },
    /// A [`crate::stream::CommandStream`] flush: instantaneous marker with
    /// the peephole-pass counters for this flush (the executed commands
    /// emit their own [`TraceEvent::Cmd`] spans).
    StreamFlush {
        /// Simulated timestamp.
        at_ms: f64,
        /// Commands recorded since the previous flush.
        recorded: u64,
        /// Commands executed after the passes ran.
        executed: u64,
        /// mul_scalar + add pairs fused to `scaled_add`.
        fused_scaled_add: u64,
        /// cmp + select pairs fused.
        fused_cmp_select: u64,
        /// Dead writes eliminated.
        dead_writes_eliminated: u64,
        /// Batched functional sweeps executed.
        batched_sweeps: u64,
    },
    /// A modeled cross-shard interconnect transfer (scatter, gather,
    /// realign, or reduction combine). Instantaneous marker: the
    /// interconnect ledger is reported separately from kernel and copy
    /// time, so it never advances the simulated clock. Only emitted by
    /// devices with more than one shard.
    Interconnect {
        /// Transfer kind: `scatter`, `gather`, `realign`, or `combine`.
        kind: &'static str,
        /// Total bytes moved across all shards.
        bytes: u64,
        /// Shard count of the device.
        shards: usize,
        /// Simulated timestamp.
        at_ms: f64,
        /// Modeled transfer time (ms), critical-path (busiest channel).
        time_ms: f64,
        /// Modeled transfer energy (mJ).
        energy_mj: f64,
    },
    /// Synthesized marker: the ring-buffer [`Recorder`] overwrote old
    /// events after filling up. Prepended once per drain when the drop
    /// count grew, at the timestamp of the oldest *retained* event, so
    /// exports make the truncation visible instead of silently starting
    /// mid-run.
    Dropped {
        /// Timestamp of the oldest event still held (ms).
        at_ms: f64,
        /// Events overwritten since recording started.
        dropped: u64,
        /// The recorder's ring capacity.
        capacity: usize,
    },
}

impl TraceEvent {
    /// The span duration, or 0 for instantaneous events.
    pub fn duration_ms(&self) -> f64 {
        match self {
            TraceEvent::Cmd { time_ms, .. }
            | TraceEvent::Copy { time_ms, .. }
            | TraceEvent::HostPhase { time_ms, .. } => *time_ms,
            _ => 0.0,
        }
    }

    /// The event's position on the simulated clock (ms).
    pub fn timestamp_ms(&self) -> f64 {
        match self {
            TraceEvent::DeviceCreated { at_ms, .. }
            | TraceEvent::Alloc { at_ms, .. }
            | TraceEvent::Free { at_ms, .. }
            | TraceEvent::StreamFlush { at_ms, .. }
            | TraceEvent::Interconnect { at_ms, .. }
            | TraceEvent::Dropped { at_ms, .. } => *at_ms,
            TraceEvent::Cmd { start_ms, .. }
            | TraceEvent::Copy { start_ms, .. }
            | TraceEvent::HostPhase { start_ms, .. } => *start_ms,
        }
    }
}

/// Receives every event a traced device emits. Implementations must be
/// cheap: the sink runs inline with the simulation.
pub trait TraceSink: std::fmt::Debug + Send {
    /// Called once per event, in simulation order.
    fn record(&mut self, event: &TraceEvent);
}

/// A bounded in-memory recorder: keeps the most recent `capacity`
/// events (ring-buffer overwrite) and counts what it dropped.
#[derive(Debug)]
pub struct Recorder {
    events: Vec<TraceEvent>,
    capacity: usize,
    head: usize,
    dropped: u64,
    dropped_reported: u64,
}

/// Default event capacity for [`Recorder::new`].
pub const DEFAULT_RECORDER_CAPACITY: usize = 1 << 20;

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A recorder holding up to [`DEFAULT_RECORDER_CAPACITY`] events.
    pub fn new() -> Self {
        Recorder::with_capacity(DEFAULT_RECORDER_CAPACITY)
    }

    /// A recorder holding up to `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Recorder {
            events: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            dropped: 0,
            dropped_reported: 0,
        }
    }

    /// The synthesized [`TraceEvent::Dropped`] marker for the current
    /// drop count, if any drops happened since the last drain.
    fn drop_marker(&self, oldest: Option<&TraceEvent>) -> Option<TraceEvent> {
        (self.dropped > self.dropped_reported).then(|| TraceEvent::Dropped {
            at_ms: oldest.map(TraceEvent::timestamp_ms).unwrap_or(0.0),
            dropped: self.dropped,
            capacity: self.capacity,
        })
    }

    /// Events dropped after the ring filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drains the recorder, returning events oldest-first. If the ring
    /// overwrote events since the last drain, a synthesized
    /// [`TraceEvent::Dropped`] marker leads the result.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        let mut out = self.events.split_off(self.head);
        out.append(&mut self.events);
        self.head = 0;
        if let Some(marker) = self.drop_marker(out.first()) {
            self.dropped_reported = self.dropped;
            out.insert(0, marker);
        }
        out
    }

    /// The events oldest-first without draining, led by the same
    /// [`TraceEvent::Dropped`] marker [`Recorder::take`] would emit.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out: Vec<TraceEvent> = self.events[self.head..].to_vec();
        out.extend_from_slice(&self.events[..self.head]);
        if let Some(marker) = self.drop_marker(out.first()) {
            out.insert(0, marker);
        }
        out
    }
}

impl TraceSink for Recorder {
    fn record(&mut self, event: &TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event.clone());
        } else {
            self.events[self.head] = event.clone();
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

/// The device's tracing state: an optional sink plus the simulated
/// clock. With no sink installed every instrumentation site reduces to
/// one branch, so untraced runs pay nothing.
#[derive(Debug, Default)]
pub struct Tracer {
    slot: SinkSlot,
    clock_ms: f64,
}

#[derive(Debug, Default)]
enum SinkSlot {
    /// Tracing disabled (the default).
    #[default]
    Noop,
    /// The built-in ring-buffer recorder.
    Recorder(Recorder),
    /// A user-supplied sink.
    Custom(Box<dyn TraceSink>),
}

impl Tracer {
    /// True if a sink is installed.
    pub fn enabled(&self) -> bool {
        !matches!(self.slot, SinkSlot::Noop)
    }

    /// The simulated clock position (ms since device creation).
    pub fn clock_ms(&self) -> f64 {
        self.clock_ms
    }

    /// Installs the built-in recorder (replacing any sink).
    pub fn install_recorder(&mut self, capacity: usize) {
        self.slot = SinkSlot::Recorder(Recorder::with_capacity(capacity));
    }

    /// Installs a custom sink (replacing any sink).
    pub fn install_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.slot = SinkSlot::Custom(sink);
    }

    /// Removes the sink; subsequent events are discarded. The clock
    /// keeps running so re-enabled traces stay monotonic.
    pub fn disable(&mut self) {
        self.slot = SinkSlot::Noop;
    }

    /// Drains the built-in recorder (empty for no-op/custom sinks).
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        match &mut self.slot {
            SinkSlot::Recorder(r) => r.take(),
            _ => Vec::new(),
        }
    }

    /// A copy of the recorder's events (empty for no-op/custom sinks).
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.slot {
            SinkSlot::Recorder(r) => r.snapshot(),
            _ => Vec::new(),
        }
    }

    /// Events the built-in recorder has overwritten (0 for no-op or
    /// custom sinks).
    pub fn dropped(&self) -> u64 {
        match &self.slot {
            SinkSlot::Recorder(r) => r.dropped(),
            _ => 0,
        }
    }

    /// Emits an instantaneous event at the current clock.
    pub fn emit(&mut self, event: TraceEvent) {
        match &mut self.slot {
            SinkSlot::Noop => {}
            SinkSlot::Recorder(r) => r.record(&event),
            SinkSlot::Custom(s) => s.record(&event),
        }
    }

    /// Advances the simulated clock by `ms` and returns the span start.
    pub fn advance(&mut self, ms: f64) -> f64 {
        let start = self.clock_ms;
        self.clock_ms += ms.max(0.0);
        start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(i: u64) -> TraceEvent {
        TraceEvent::Free {
            at_ms: i as f64,
            id: i,
        }
    }

    #[test]
    fn recorder_keeps_most_recent_events() {
        let mut r = Recorder::with_capacity(4);
        for i in 0..10 {
            r.record(&cmd(i));
        }
        assert_eq!(r.dropped(), 6);
        let events = r.take();
        match &events[0] {
            TraceEvent::Dropped {
                at_ms,
                dropped,
                capacity,
            } => {
                assert_eq!(*dropped, 6);
                assert_eq!(*capacity, 4);
                assert_eq!(*at_ms, 6.0);
            }
            other => panic!("expected drop marker first, got {other:?}"),
        }
        let ids: Vec<u64> = events[1..]
            .iter()
            .map(|e| match e {
                TraceEvent::Free { id, .. } => *id,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![6, 7, 8, 9]);
    }

    #[test]
    fn drop_marker_emitted_once_per_drain() {
        let mut r = Recorder::with_capacity(2);
        for i in 0..5 {
            r.record(&cmd(i));
        }
        assert!(matches!(r.snapshot()[0], TraceEvent::Dropped { .. }));
        assert!(matches!(
            r.take()[0],
            TraceEvent::Dropped { dropped: 3, .. }
        ));
        // No new drops: the next drain has no marker.
        r.record(&cmd(9));
        assert!(matches!(r.take()[0], TraceEvent::Free { .. }));
    }

    #[test]
    fn recorder_without_drops_has_no_marker() {
        let mut r = Recorder::with_capacity(8);
        r.record(&cmd(1));
        assert_eq!(r.take().len(), 1);
    }

    #[test]
    fn tracer_noop_discards_and_clock_advances() {
        let mut t = Tracer::default();
        assert!(!t.enabled());
        t.emit(cmd(1));
        assert!(t.take_events().is_empty());
        assert_eq!(t.advance(2.5), 0.0);
        assert_eq!(t.advance(1.0), 2.5);
        assert!((t.clock_ms() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn tracer_recorder_roundtrip() {
        let mut t = Tracer::default();
        t.install_recorder(16);
        assert!(t.enabled());
        t.emit(cmd(7));
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.take_events().len(), 1);
        assert!(t.take_events().is_empty());
    }
}
