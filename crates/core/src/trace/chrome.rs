//! Chrome-trace-event exporter: renders [`TraceEvent`]s as the JSON
//! object format understood by Perfetto (<https://ui.perfetto.dev>) and
//! `chrome://tracing`.
//!
//! Layout: each traced run becomes one *process* (pid); inside it,
//! commands, data movement, and host phases render on three named
//! *threads* so the lanes stay visually separate. Command and copy spans
//! are complete events (`ph: "X"`) with microsecond `ts`/`dur` on the
//! simulated clock; lifecycle events are instants (`ph: "i"`).

use std::io::Write as _;
use std::path::Path;

use super::json::{num, string};
use super::{TraceEvent, Tracer};
use crate::metrics::MetricsSnapshot;

/// Thread id used for PIM command spans.
const TID_CMDS: u32 = 1;
/// Thread id used for copy spans.
const TID_COPY: u32 = 2;
/// Thread id used for host phases.
const TID_HOST: u32 = 3;

/// Accumulates events from one or more runs into a single trace file.
#[derive(Debug, Default)]
pub struct ChromeTraceBuilder {
    entries: Vec<String>,
    next_pid: u32,
}

impl ChromeTraceBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        ChromeTraceBuilder::default()
    }

    /// Adds one run's events as a new process named `label`.
    pub fn add_run(&mut self, label: &str, events: &[TraceEvent]) {
        let pid = self.next_pid;
        self.next_pid += 1;
        self.entries.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":{}}}}}",
            string(label)
        ));
        for (tid, name) in [
            (TID_CMDS, "pim commands"),
            (TID_COPY, "data movement"),
            (TID_HOST, "host"),
        ] {
            self.entries.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":{}}}}}",
                string(name)
            ));
        }
        for event in events {
            self.entries.push(render(pid, event));
        }
    }

    /// Adds a metrics snapshot's profiler series as Perfetto *counter
    /// tracks* (`ph: "C"`) in a new process named `label`: one
    /// "shard busy" counter with one series per shard (busy fraction
    /// per time bin) and one "interconnect bytes" counter. A no-op when
    /// the snapshot carries no profile (profiling disabled or an empty
    /// run).
    pub fn add_counter_tracks(&mut self, label: &str, snapshot: &MetricsSnapshot) {
        let Some(profile) = &snapshot.profile else {
            return;
        };
        if profile.bins == 0 {
            return;
        }
        let pid = self.next_pid;
        self.next_pid += 1;
        self.entries.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":{}}}}}",
            string(label)
        ));
        for bin in 0..profile.bins {
            let ts = us(bin as f64 * profile.bin_ms);
            let series: Vec<String> = profile
                .shard_busy
                .iter()
                .enumerate()
                .map(|(shard, bins)| format!("\"shard{shard}\":{}", num(bins[bin])))
                .collect();
            self.entries.push(format!(
                "{{\"name\":\"shard busy\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{pid},\"tid\":0,\
                 \"args\":{{{}}}}}",
                series.join(",")
            ));
            self.entries.push(format!(
                "{{\"name\":\"interconnect bytes\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{pid},\
                 \"tid\":0,\"args\":{{\"bytes\":{}}}}}",
                profile.interconnect_bytes[bin]
            ));
        }
    }

    /// Number of trace entries accumulated so far (incl. metadata).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no runs were added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the complete trace document.
    pub fn finish(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        out.push_str(&self.entries.join(",\n"));
        out.push_str("\n]}\n");
        out
    }

    /// Writes the trace document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.finish().as_bytes())
    }
}

/// Renders a single run as a complete Chrome trace document.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut b = ChromeTraceBuilder::new();
    b.add_run("pim simulation", events);
    b.finish()
}

/// Convenience: drains a device tracer and writes a single-run trace.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_trace(path: &Path, tracer: &mut Tracer) -> std::io::Result<()> {
    let mut b = ChromeTraceBuilder::new();
    b.add_run("pim simulation", &tracer.take_events());
    b.write_to(path)
}

/// Simulated-clock milliseconds → trace microseconds.
fn us(ms: f64) -> String {
    num(ms * 1000.0)
}

fn render(pid: u32, event: &TraceEvent) -> String {
    match event {
        TraceEvent::DeviceCreated {
            at_ms,
            target,
            cores,
            ranks,
        } => format!(
            "{{\"name\":\"device created\",\"cat\":\"lifecycle\",\"ph\":\"i\",\"s\":\"p\",\
             \"ts\":{},\"pid\":{pid},\"tid\":{TID_CMDS},\
             \"args\":{{\"target\":{},\"cores\":{cores},\"ranks\":{ranks}}}}}",
            us(*at_ms),
            string(target)
        ),
        TraceEvent::Alloc {
            at_ms,
            id,
            count,
            dtype,
            cores_used,
            rows_per_core,
        } => format!(
            "{{\"name\":\"alloc #{id}\",\"cat\":\"lifecycle\",\"ph\":\"i\",\"s\":\"t\",\
             \"ts\":{},\"pid\":{pid},\"tid\":{TID_CMDS},\
             \"args\":{{\"count\":{count},\"dtype\":{},\"cores_used\":{cores_used},\
             \"rows_per_core\":{rows_per_core}}}}}",
            us(*at_ms),
            string(dtype)
        ),
        TraceEvent::Free { at_ms, id } => format!(
            "{{\"name\":\"free #{id}\",\"cat\":\"lifecycle\",\"ph\":\"i\",\"s\":\"t\",\
             \"ts\":{},\"pid\":{pid},\"tid\":{TID_CMDS},\"args\":{{}}}}",
            us(*at_ms)
        ),
        TraceEvent::Cmd {
            name,
            category,
            start_ms,
            time_ms,
            energy_mj,
            cores_used,
            micro,
        } => {
            let mut args = format!(
                "\"energy_mj\":{},\"cores_used\":{cores_used}",
                num(*energy_mj)
            );
            if let Some(m) = micro {
                args.push_str(&format!(
                    ",\"row_reads\":{},\"row_writes\":{},\"logic_ops\":{},\
                     \"popcount_reads\":{},\"aap_ops\":{},\"tra_ops\":{}",
                    m.row_reads, m.row_writes, m.logic_ops, m.popcount_reads, m.aap_ops, m.tra_ops
                ));
            }
            format!(
                "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{pid},\"tid\":{TID_CMDS},\"args\":{{{args}}}}}",
                string(name),
                string(category),
                us(*start_ms),
                us(*time_ms)
            )
        }
        TraceEvent::Copy {
            direction,
            bytes,
            start_ms,
            time_ms,
            energy_mj,
            protocol,
        } => {
            let mut args = format!("\"bytes\":{bytes},\"energy_mj\":{}", num(*energy_mj));
            if let Some(p) = protocol {
                args.push_str(&format!(
                    ",\"activations\":{},\"reads\":{},\"writes\":{},\"precharges\":{},\
                     \"row_hits\":{},\"row_misses\":{},\"achieved_gbs\":{}",
                    p.activations,
                    p.reads,
                    p.writes,
                    p.precharges,
                    p.row_hits,
                    p.row_misses,
                    num(p.achieved_gbs)
                ));
            }
            format!(
                "{{\"name\":{},\"cat\":\"copy\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{pid},\"tid\":{TID_COPY},\"args\":{{{args}}}}}",
                string(direction.label()),
                us(*start_ms),
                us(*time_ms)
            )
        }
        TraceEvent::HostPhase { start_ms, time_ms } => format!(
            "{{\"name\":\"host phase\",\"cat\":\"host\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{pid},\"tid\":{TID_HOST},\"args\":{{}}}}",
            us(*start_ms),
            us(*time_ms)
        ),
        TraceEvent::StreamFlush {
            at_ms,
            recorded,
            executed,
            fused_scaled_add,
            fused_cmp_select,
            dead_writes_eliminated,
            batched_sweeps,
        } => format!(
            "{{\"name\":\"stream flush\",\"cat\":\"stream\",\"ph\":\"i\",\"s\":\"t\",\
             \"ts\":{},\"pid\":{pid},\"tid\":{TID_CMDS},\
             \"args\":{{\"recorded\":{recorded},\"executed\":{executed},\
             \"fused_scaled_add\":{fused_scaled_add},\"fused_cmp_select\":{fused_cmp_select},\
             \"dead_writes_eliminated\":{dead_writes_eliminated},\
             \"batched_sweeps\":{batched_sweeps}}}}}",
            us(*at_ms)
        ),
        TraceEvent::Interconnect {
            kind,
            bytes,
            shards,
            at_ms,
            time_ms,
            energy_mj,
        } => format!(
            "{{\"name\":\"interconnect {kind}\",\"cat\":\"interconnect\",\"ph\":\"i\",\"s\":\"t\",\
             \"ts\":{},\"pid\":{pid},\"tid\":{TID_COPY},\
             \"args\":{{\"bytes\":{bytes},\"shards\":{shards},\"time_ms\":{},\"energy_mj\":{}}}}}",
            us(*at_ms),
            num(*time_ms),
            num(*energy_mj)
        ),
        TraceEvent::Dropped {
            at_ms,
            dropped,
            capacity,
        } => format!(
            "{{\"name\":\"trace events dropped\",\"cat\":\"lifecycle\",\"ph\":\"i\",\"s\":\"p\",\
             \"ts\":{},\"pid\":{pid},\"tid\":{TID_CMDS},\
             \"args\":{{\"dropped\":{dropped},\"capacity\":{capacity}}}}}",
            us(*at_ms)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::super::json::Json;
    use super::super::CopyDirection;
    use super::*;

    #[test]
    fn trace_document_parses_and_has_required_fields() {
        let events = vec![
            TraceEvent::DeviceCreated {
                at_ms: 0.0,
                target: "Fulcrum".into(),
                cores: 8,
                ranks: 2,
            },
            TraceEvent::Cmd {
                name: "add.int32".into(),
                category: "add",
                start_ms: 0.5,
                time_ms: 1.25,
                energy_mj: 0.125,
                cores_used: 8,
                micro: None,
            },
            TraceEvent::Copy {
                direction: CopyDirection::HostToDevice,
                bytes: 4096,
                start_ms: 1.75,
                time_ms: 0.5,
                energy_mj: 0.01,
                protocol: None,
            },
        ];
        let doc = Json::parse(&chrome_trace_json(&events)).unwrap();
        let entries = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 1 process_name + 3 thread_name + 3 events.
        assert_eq!(entries.len(), 7);
        let cmd = entries
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("add.int32"))
            .unwrap();
        assert_eq!(cmd.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(cmd.get("ts").unwrap().as_f64(), Some(500.0));
        assert_eq!(cmd.get("dur").unwrap().as_f64(), Some(1250.0));
    }

    #[test]
    fn counter_tracks_render_per_bin_series() {
        use crate::metrics::{MetricsRegistry, DEFAULT_PROFILE_BINS};
        let mut r = MetricsRegistry::new(2, true);
        r.record_cmd("add.int32", "add", 4.0, 0.1, &[(0, 3.0), (1, 1.0)]);
        r.record_interconnect("scatter", 256, 0.05, 0.001);
        let snap = r.snapshot();
        let mut b = ChromeTraceBuilder::new();
        b.add_counter_tracks("metrics", &snap);
        let doc = Json::parse(&b.finish()).unwrap();
        let entries = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 1 process_name + 2 counters per bin.
        assert_eq!(entries.len(), 1 + 2 * DEFAULT_PROFILE_BINS);
        let busy = entries
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("shard busy"))
            .unwrap();
        assert_eq!(busy.get("ph").unwrap().as_str(), Some("C"));
        assert!(busy.get("args").unwrap().get("shard0").is_some());
        assert!(busy.get("args").unwrap().get("shard1").is_some());
    }
}
