//! Hand-rolled JSON support: a writer for machine-readable stats export
//! and a small recursive-descent parser used by the golden tests (and by
//! anyone post-processing exported files without external crates).
//!
//! The writer emits numbers via Rust's shortest-round-trip `Display`
//! for `f64`, which is always valid JSON (no exponent form, exact
//! parse-back); non-finite values degrade to `null`.

use std::collections::BTreeMap;

use crate::config::DeviceConfig;
use crate::metrics::MetricsSnapshot;
use crate::stats::SimStats;

/// Version stamp of the stats-JSON layout. Bumped on any
/// field-removing or field-renaming change; purely additive fields do
/// not bump it (consumers must tolerate unknown keys).
pub const STATS_SCHEMA_VERSION: u32 = 2;

// ---------------------------------------------------------------------
// Writer helpers
// ---------------------------------------------------------------------

/// Escapes `s` as the *contents* of a JSON string (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a quoted JSON string.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Renders an `f64` as a JSON number (`null` for NaN/infinity).
/// Negative zero collapses to `0`: `-0` is valid JSON but diff-based
/// consumers treat it as a spurious change from `0`.
pub fn num(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

// ---------------------------------------------------------------------
// Stats rendering
// ---------------------------------------------------------------------

/// Renders a [`SimStats`] as a JSON object mirroring the Listing-3 text
/// report: device parameters, copy statistics, the per-command table,
/// category counts, and the derived totals.
pub fn stats_to_json(stats: &SimStats, config: &DeviceConfig) -> String {
    stats_to_json_full(stats, config, None, 0)
}

/// [`stats_to_json`] plus the observability extensions: a `"metrics"`
/// section (when a [`MetricsSnapshot`] is supplied) and a `"trace"`
/// section carrying the ring-buffer recorder's dropped-event count
/// (when non-zero). Both sections are additive — consumers of the base
/// schema keep parsing unchanged.
pub fn stats_to_json_full(
    stats: &SimStats,
    config: &DeviceConfig,
    metrics: Option<&MetricsSnapshot>,
    trace_dropped: u64,
) -> String {
    use std::fmt::Write as _;
    let g = &config.geometry;
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": {STATS_SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"target\": {},", string(&config.target.to_string()));
    let _ = writeln!(
        out,
        "  \"geometry\": {{\"ranks\": {}, \"banks_per_rank\": {}, \"subarrays_per_bank\": {}, \
         \"rows_per_subarray\": {}, \"cols_per_row\": {}}},",
        g.ranks, g.banks_per_rank, g.subarrays_per_bank, g.rows_per_subarray, g.cols_per_row
    );
    let _ = writeln!(
        out,
        "  \"cores\": {{\"count\": {}, \"rows_per_core\": {}, \"cols_per_core\": {}}},",
        config.core_count(),
        config.rows_per_core(),
        config.cols_per_core()
    );
    let _ = writeln!(
        out,
        "  \"copy\": {{\"host_to_device_bytes\": {}, \"device_to_host_bytes\": {}, \
         \"device_to_device_bytes\": {}, \"time_ms\": {}, \"energy_mj\": {}}},",
        stats.copy.host_to_device_bytes,
        stats.copy.device_to_host_bytes,
        stats.copy.device_to_device_bytes,
        num(stats.copy.time_ms),
        num(stats.copy.energy_mj)
    );
    out.push_str("  \"cmds\": {");
    for (i, (name, c)) in stats.cmds.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {}: {{\"count\": {}, \"time_ms\": {}, \"energy_mj\": {}}}",
            string(name),
            c.count,
            num(c.time_ms),
            num(c.energy_mj)
        );
    }
    out.push_str(if stats.cmds.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });
    out.push_str("  \"categories\": {");
    for (i, (cat, n)) in stats.categories.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {}", string(cat.label()), n);
    }
    out.push_str("},\n");
    let _ = writeln!(out, "  \"host_time_ms\": {},", num(stats.host_time_ms));
    let _ = writeln!(out, "  \"max_cores_used\": {},", stats.max_cores_used);
    let f = &stats.fusion;
    let _ = writeln!(
        out,
        "  \"fusion\": {{\"flushes\": {}, \"recorded_commands\": {}, \
         \"executed_commands\": {}, \"fused_scaled_add\": {}, \"fused_cmp_select\": {}, \
         \"dead_writes_eliminated\": {}, \"batched_sweeps\": {}, \"batched_commands\": {}}},",
        f.flushes,
        f.recorded_commands,
        f.executed_commands,
        f.fused_scaled_add,
        f.fused_cmp_select,
        f.dead_writes_eliminated,
        f.batched_sweeps,
        f.batched_commands
    );
    // The dataflow optimizer populates these only at stream levels 1+;
    // the section is omitted when all counters are zero so eager-only
    // goldens stay byte-identical.
    let opt = &stats.optimizer;
    if !opt.is_empty() {
        let _ = writeln!(
            out,
            "  \"optimizer\": {{\"cse_hits\": {}, \"dead_objects_removed\": {}, \
             \"subgraphs\": {}, \"target_switches\": {}, \"inferred_layouts\": {}}},",
            opt.cse_hits,
            opt.dead_objects_removed,
            opt.subgraphs,
            opt.target_switches,
            opt.inferred_layouts
        );
    }
    let r = &stats.resources;
    out.push_str("  \"resources\": {");
    let _ = write!(
        out,
        "\"rows_in_use\": {}, \"peak_rows\": {}, \"rows_capacity\": {}, \
         \"live_objects\": {}, \"shards\": {}, \"per_shard\": [",
        r.rows_in_use, r.peak_rows, r.rows_capacity, r.live_objects, r.shards
    );
    for (i, s) in r.per_shard.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"rows_in_use\": {}, \"peak_rows\": {}, \"rows_capacity\": {}, \
             \"live_objects\": {}}}",
            s.rows_in_use, s.peak_rows, s.rows_capacity, s.live_objects
        );
    }
    out.push_str("]},\n");
    let ic = &stats.interconnect;
    let _ = writeln!(
        out,
        "  \"interconnect\": {{\"scatter_bytes\": {}, \"gather_bytes\": {}, \
         \"realign_bytes\": {}, \"combine_bytes\": {}, \"transfers\": {}, \
         \"time_ms\": {}, \"energy_mj\": {}}},",
        ic.scatter_bytes,
        ic.gather_bytes,
        ic.realign_bytes,
        ic.combine_bytes,
        ic.transfers,
        num(ic.time_ms),
        num(ic.energy_mj)
    );
    // DRAM protocol counters are populated only by the stateful bank-FSM
    // timing backend; the section is omitted entirely under the default
    // analytical backend so existing goldens stay byte-identical.
    let dp = &stats.dram_protocol;
    if !dp.is_empty() {
        let _ = writeln!(
            out,
            "  \"dram_protocol\": {{\"activations\": {}, \"precharges\": {}, \
             \"reads\": {}, \"writes\": {}, \"row_hits\": {}, \"row_misses\": {}, \
             \"row_hit_rate\": {}}},",
            dp.activations,
            dp.precharges,
            dp.reads,
            dp.writes,
            dp.row_hits,
            dp.row_misses,
            num(dp.hit_rate())
        );
    }
    if trace_dropped > 0 {
        let _ = writeln!(out, "  \"trace\": {{\"dropped_events\": {trace_dropped}}},");
    }
    if let Some(m) = metrics {
        let _ = writeln!(out, "  \"metrics\": {},", m.to_json());
    }
    let _ = writeln!(
        out,
        "  \"totals\": {{\"total_ops\": {}, \"kernel_time_ms\": {}, \"kernel_energy_mj\": {}, \
         \"total_time_ms\": {}, \"total_energy_mj\": {}}}",
        stats.total_ops(),
        num(stats.kernel_time_ms()),
        num(stats.kernel_energy_mj()),
        num(stats.total_time_ms()),
        num(stats.total_energy_mj(config))
    );
    out.push('}');
    out
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (kept as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order not preserved).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document (rejects trailing garbage).
    ///
    /// # Errors
    ///
    /// A human-readable message with the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            out.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed for our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_collapses_negative_zero_and_nonfinite() {
        assert_eq!(num(0.0), "0");
        assert_eq!(num(-0.0), "0");
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(-2.0), "-2");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            Json::parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Json::Str("a\n\"bA".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": "x"}, null], "c": {}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x")
        );
        assert!(v.get("c").unwrap().as_object().unwrap().is_empty());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn writer_escapes_and_numbers() {
        assert_eq!(string("a\"b\n"), "\"a\\\"b\\n\"");
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(f64::NAN), "null");
        // Shortest-round-trip display parses back exactly.
        let x = 0.1 + 0.2;
        assert_eq!(Json::parse(&num(x)).unwrap().as_f64(), Some(x));
    }
}
