//! Performance and energy models for the PIM targets (§V-C, §V-D).
//!
//! Each target implements the [`TargetModel`] trait exactly once;
//! [`target_model`] is the single place a [`PimTarget`] maps to model
//! code (model construction), and [`op_cost`] / [`micro_cost`] are thin
//! delegates kept for callers that price a command without holding a
//! model reference. The bit-serial family derives its counts from the
//! same microprograms the functional VM executes; the bit-parallel
//! models use closed-form row-traffic + ALU formulas with walker
//! pipelining.

mod analog;
mod bitserial;
mod parallel;
mod upmem;

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use pim_dram::{Analytical, TimingModel};
use pim_microcode::Cost;

use crate::config::{DeviceConfig, PimTarget};
use crate::dtype::DataType;
use crate::error::{PimError, Result};
use crate::object::{DataLayout, ObjectLayout};
use crate::ops::{OpCategory, OpKind};

/// Process-wide memo for per-stripe microprogram costs.
///
/// `program_cost` used to regenerate the full microprogram on *every*
/// charged command; with the memo each distinct `(OpKind, DataType)`
/// pair invokes the generators at most once per process (verified by
/// `tests/cost_cache.rs` against `MicroProgram::generated_count`). The
/// map is bounded: scalar immediates are part of `OpKind`'s identity, so
/// a workload sweeping many distinct constants would otherwise grow it
/// without limit — past [`CostMemo::CAP`] entries it is cleared
/// wholesale, which only costs a regeneration.
pub(crate) struct CostMemo {
    map: OnceLock<Mutex<HashMap<(OpKind, DataType), Cost>>>,
}

impl CostMemo {
    const CAP: usize = 4096;

    pub(crate) const fn new() -> Self {
        CostMemo {
            map: OnceLock::new(),
        }
    }

    /// Returns the memoized cost for `key`, computing it with `generate`
    /// (outside the lock) on first use.
    pub(crate) fn get_or_generate(
        &self,
        key: (OpKind, DataType),
        generate: impl FnOnce() -> Cost,
    ) -> Cost {
        let map = self.map.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(c) = map.lock().unwrap().get(&key) {
            return *c;
        }
        let cost = generate();
        let mut guard = map.lock().unwrap();
        if guard.len() >= Self::CAP {
            guard.clear();
        }
        guard.insert(key, cost);
        cost
    }
}

/// Modeled cost of one PIM API call.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpCost {
    /// Kernel time in milliseconds.
    pub time_ms: f64,
    /// Kernel energy in millijoules (excludes background energy, which is
    /// accounted per-run from total kernel time).
    pub energy_mj: f64,
}

impl OpCost {
    /// Sums two costs (sequential composition).
    #[must_use]
    pub fn plus(self, other: OpCost) -> OpCost {
        OpCost {
            time_ms: self.time_ms + other.time_ms,
            energy_mj: self.energy_mj + other.energy_mj,
        }
    }
}

/// One per-target performance/energy model.
///
/// Every [`PimTarget`] has exactly one implementation, obtained through
/// [`target_model`]. [`crate::Device::issue`] consults the model for
/// every command: `validate` gates it, `cost`/`energy` price it,
/// `category`/`micro_cost` annotate its statistics and trace events.
/// Functional semantics (`execute`) are shared by all targets — the
/// simulator's core invariant is that every target computes the same
/// values at different cost.
pub trait TargetModel: Send + Sync {
    /// The target this model prices.
    fn target(&self) -> PimTarget;

    /// Checks target-specific requirements for one command — today the
    /// data-layout orientation the target's row walkers expect.
    ///
    /// # Errors
    ///
    /// [`PimError::NotSupported`] when the object layout does not match
    /// the target's orientation.
    fn validate(&self, kind: OpKind, dtype: DataType, layout: &ObjectLayout) -> Result<()> {
        let expected = if self.target().is_horizontal() {
            DataLayout::Horizontal
        } else {
            DataLayout::Vertical
        };
        if layout.layout != expected {
            return Err(PimError::NotSupported(format!(
                "{} on {} requires a {expected:?} layout, got {:?}",
                kind.stat_name(dtype),
                self.target(),
                layout.layout
            )));
        }
        Ok(())
    }

    /// Latency and energy of `kind` applied to an object with `layout`
    /// holding elements of `dtype`, charging all DRAM time through the
    /// timing backend `tm` (execute-once-and-stall: stateful backends
    /// advance their bank FSMs as a side effect of pricing).
    fn cost_with(
        &self,
        config: &DeviceConfig,
        tm: &mut dyn TimingModel,
        kind: OpKind,
        dtype: DataType,
        layout: &ObjectLayout,
    ) -> OpCost;

    /// Latency and energy of `kind` under the stateless closed-form
    /// timing math — the paper's model, independent of any device's bank
    /// state. Sweep and exploration code prices through this.
    fn cost(
        &self,
        config: &DeviceConfig,
        kind: OpKind,
        dtype: DataType,
        layout: &ObjectLayout,
    ) -> OpCost {
        let mut tm = analytical_model(config);
        self.cost_with(config, &mut tm, kind, dtype, layout)
    }

    /// Kernel energy alone, in millijoules.
    fn energy(
        &self,
        config: &DeviceConfig,
        kind: OpKind,
        dtype: DataType,
        layout: &ObjectLayout,
    ) -> f64 {
        self.cost(config, kind, dtype, layout).energy_mj
    }

    /// Functional per-element semantics of an element-wise `kind`.
    /// Identical across targets by construction; see [`crate::cmd::eval`].
    fn execute(&self, kind: OpKind, dtype: DataType, inputs: &[i64]) -> i64 {
        crate::cmd::eval(kind, dtype, inputs)
    }

    /// Fig. 8 category the command is counted under.
    fn category(&self, kind: OpKind) -> OpCategory {
        kind.category()
    }

    /// Row-level microprogram counters for `kind` on one core: the
    /// per-stripe program cost scaled by the stripes the core processes.
    /// `None` for word-parallel targets, which run no microprograms.
    fn micro_cost(&self, kind: OpKind, dtype: DataType, layout: &ObjectLayout) -> Option<Cost> {
        let _ = (kind, dtype, layout);
        None
    }
}

/// Bit-serial (DRAM-AP) model: costs from the digital microprograms.
struct BitSerialModel;

impl TargetModel for BitSerialModel {
    fn target(&self) -> PimTarget {
        PimTarget::BitSerial
    }

    fn cost_with(
        &self,
        config: &DeviceConfig,
        tm: &mut dyn TimingModel,
        kind: OpKind,
        dtype: DataType,
        layout: &ObjectLayout,
    ) -> OpCost {
        bitserial::cost(config, tm, kind, dtype, layout)
    }

    fn micro_cost(&self, kind: OpKind, dtype: DataType, layout: &ObjectLayout) -> Option<Cost> {
        Some(bitserial::program_cost(kind, dtype).scaled(layout.units_per_core.max(1)))
    }
}

/// Fulcrum model: subarray-level walkers + 32-bit scalar ALU.
struct FulcrumModel;

impl TargetModel for FulcrumModel {
    fn target(&self) -> PimTarget {
        PimTarget::Fulcrum
    }

    fn cost_with(
        &self,
        config: &DeviceConfig,
        tm: &mut dyn TimingModel,
        kind: OpKind,
        dtype: DataType,
        layout: &ObjectLayout,
    ) -> OpCost {
        parallel::cost_fulcrum(config, tm, kind, dtype, layout)
    }
}

/// Bank-level model: 64-bit ALPU behind the narrow GDL.
struct BankLevelModel;

impl TargetModel for BankLevelModel {
    fn target(&self) -> PimTarget {
        PimTarget::BankLevel
    }

    fn cost_with(
        &self,
        config: &DeviceConfig,
        tm: &mut dyn TimingModel,
        kind: OpKind,
        dtype: DataType,
        layout: &ObjectLayout,
    ) -> OpCost {
        parallel::cost_bank(config, tm, kind, dtype, layout)
    }
}

/// Analog bit-serial (Ambit/SIMDRAM-style TRA) model.
struct AnalogBitSerialModel;

impl TargetModel for AnalogBitSerialModel {
    fn target(&self) -> PimTarget {
        PimTarget::AnalogBitSerial
    }

    fn cost_with(
        &self,
        config: &DeviceConfig,
        tm: &mut dyn TimingModel,
        kind: OpKind,
        dtype: DataType,
        layout: &ObjectLayout,
    ) -> OpCost {
        analog::cost(config, tm, kind, dtype, layout)
    }

    fn micro_cost(&self, kind: OpKind, dtype: DataType, layout: &ObjectLayout) -> Option<Cost> {
        Some(analog::program_cost(kind, dtype).scaled(layout.units_per_core.max(1)))
    }
}

/// UPMEM-like toy model: one scalar DPU per bank.
struct UpmemLikeModel;

impl TargetModel for UpmemLikeModel {
    fn target(&self) -> PimTarget {
        PimTarget::UpmemLike
    }

    fn cost_with(
        &self,
        config: &DeviceConfig,
        tm: &mut dyn TimingModel,
        kind: OpKind,
        dtype: DataType,
        layout: &ObjectLayout,
    ) -> OpCost {
        upmem::cost(config, tm, kind, dtype, layout)
    }
}

/// The singleton model for `target` — model construction, and the only
/// place a [`PimTarget`] is mapped to model code.
pub fn target_model(target: PimTarget) -> &'static dyn TargetModel {
    match target {
        PimTarget::BitSerial => &BitSerialModel,
        PimTarget::Fulcrum => &FulcrumModel,
        PimTarget::BankLevel => &BankLevelModel,
        PimTarget::AnalogBitSerial => &AnalogBitSerialModel,
        PimTarget::UpmemLike => &UpmemLikeModel,
    }
}

/// The stateless closed-form timing backend for `config` — one rank's
/// worth of banks (shards charge per-rank) and the geometry's row width,
/// matching the historical per-copy replay parameters.
pub(crate) fn analytical_model(config: &DeviceConfig) -> Analytical {
    let row_bytes = (config.geometry.cols_per_row as u64 / 8).max(64);
    Analytical::new(&config.timing, config.geometry.banks_per_rank, row_bytes)
}

/// Models the latency and energy of `kind` applied to an object with
/// `layout` holding elements of `dtype` under the stateless closed-form
/// timing math. Thin delegate to the configured target's
/// [`TargetModel`]; device charge paths go through [`op_cost_with`]
/// instead so stateful backends see every access.
pub fn op_cost(
    config: &DeviceConfig,
    kind: OpKind,
    dtype: DataType,
    layout: &ObjectLayout,
) -> OpCost {
    target_model(config.target).cost(config, kind, dtype, layout)
}

/// Models the latency and energy of `kind`, charging all DRAM time
/// through the timing backend `tm` (see [`TargetModel::cost_with`]).
pub fn op_cost_with(
    config: &DeviceConfig,
    tm: &mut dyn TimingModel,
    kind: OpKind,
    dtype: DataType,
    layout: &ObjectLayout,
) -> OpCost {
    target_model(config.target).cost_with(config, tm, kind, dtype, layout)
}

/// Low-level microcode counters for `kind` on one core, when the target
/// executes ops as row-level microprograms. Thin delegate to
/// [`TargetModel::micro_cost`]; `None` for the word-parallel targets.
pub fn micro_cost(
    config: &DeviceConfig,
    kind: OpKind,
    dtype: DataType,
    layout: &ObjectLayout,
) -> Option<pim_microcode::Cost> {
    target_model(config.target).micro_cost(kind, dtype, layout)
}

/// Cross-core merge cost for reductions: every used core ships an 8-byte
/// partial sum to the controller over the rank interface.
pub(crate) fn reduction_merge(
    config: &DeviceConfig,
    tm: &mut dyn TimingModel,
    cores_used: usize,
) -> OpCost {
    // Physical cores each ship one partial sum (decimation-aware,
    // clamped to the machine's real core count).
    let bytes = config.physical_cores_represented(cores_used) as u64 * 8;
    let time_ms = tm.charge_host_copy(bytes, config.geometry.ranks);
    let energy_mj = config.power.transfer_energy_mj(time_ms, true);
    OpCost { time_ms, energy_mj }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_microcode::gen::BinaryOp;

    fn layout_for(config: &DeviceConfig, n: u64) -> ObjectLayout {
        ObjectLayout::compute(config, n, DataType::Int32, None).unwrap()
    }

    #[test]
    fn bitserial_wins_add_fulcrum_wins_mul() {
        // The paper's headline sensitivity result (§VII, Fig. 6).
        let n = 1u64 << 28; // 256M, the Fig. 6 input size
        let mut add = Vec::new();
        let mut mul = Vec::new();
        for target in PimTarget::ALL {
            let cfg = DeviceConfig::new(target, 32);
            let layout = layout_for(&cfg, n);
            add.push(
                op_cost(
                    &cfg,
                    OpKind::Binary(BinaryOp::Add),
                    DataType::Int32,
                    &layout,
                )
                .time_ms,
            );
            mul.push(
                op_cost(
                    &cfg,
                    OpKind::Binary(BinaryOp::Mul),
                    DataType::Int32,
                    &layout,
                )
                .time_ms,
            );
        }
        // add: bit-serial fastest.
        assert!(add[0] < add[1] && add[0] < add[2], "add latencies {add:?}");
        // mul: Fulcrum fastest; bit-serial still beats bank-level.
        assert!(mul[1] < mul[0] && mul[1] < mul[2], "mul latencies {mul:?}");
        assert!(
            mul[0] < mul[2],
            "bit-serial should beat bank-level on mul: {mul:?}"
        );
    }

    #[test]
    fn popcount_bank_and_bitserial_beat_fulcrum() {
        let n = 1u64 << 28; // 256M, the Fig. 6 input size
        let mut pop = Vec::new();
        for target in PimTarget::ALL {
            let cfg = DeviceConfig::new(target, 32);
            let layout = layout_for(&cfg, n);
            pop.push(op_cost(&cfg, OpKind::Popcount, DataType::Int32, &layout).time_ms);
        }
        assert!(
            pop[2] < pop[1],
            "bank-level popcount beats Fulcrum: {pop:?}"
        );
        assert!(
            pop[0] < pop[1],
            "bit-serial popcount beats Fulcrum: {pop:?}"
        );
    }

    #[test]
    fn reduction_bitserial_fastest() {
        let n = 1u64 << 28; // 256M, the Fig. 6 input size
        let mut red = Vec::new();
        for target in PimTarget::ALL {
            let cfg = DeviceConfig::new(target, 32);
            let layout = layout_for(&cfg, n);
            red.push(op_cost(&cfg, OpKind::RedSum, DataType::Int32, &layout).time_ms);
        }
        assert!(
            red[0] < red[1] && red[0] < red[2],
            "reduction latencies {red:?}"
        );
    }

    #[test]
    fn more_ranks_never_slower() {
        let n = 1 << 26;
        for target in PimTarget::ALL {
            let mut prev = f64::INFINITY;
            for ranks in [1, 2, 4, 8, 16, 32] {
                let cfg = DeviceConfig::new(target, ranks);
                let layout = layout_for(&cfg, n);
                let t = op_cost(
                    &cfg,
                    OpKind::Binary(BinaryOp::Add),
                    DataType::Int32,
                    &layout,
                )
                .time_ms;
                assert!(
                    t <= prev * 1.0001,
                    "{target}: ranks={ranks} t={t} prev={prev}"
                );
                prev = t;
            }
        }
    }

    #[test]
    fn bitserial_mul_quadratic_in_width() {
        let cfg = DeviceConfig::new(PimTarget::BitSerial, 4);
        let n = 1 << 20;
        let l8 = ObjectLayout::compute(&cfg, n, DataType::Int8, None).unwrap();
        let l32 = ObjectLayout::compute(&cfg, n, DataType::Int32, None).unwrap();
        let t8 = op_cost(&cfg, OpKind::Binary(BinaryOp::Mul), DataType::Int8, &l8).time_ms;
        let t32 = op_cost(&cfg, OpKind::Binary(BinaryOp::Mul), DataType::Int32, &l32).time_ms;
        assert!(t32 / t8 > 8.0, "quadratic width scaling, got {}", t32 / t8);
    }

    #[test]
    fn fulcrum_mul_width_independent_within_word() {
        let cfg = DeviceConfig::new(PimTarget::Fulcrum, 4);
        let n = 1 << 20;
        let l32 = ObjectLayout::compute(&cfg, n, DataType::Int32, None).unwrap();
        let t_add = op_cost(&cfg, OpKind::Binary(BinaryOp::Add), DataType::Int32, &l32).time_ms;
        let t_mul = op_cost(&cfg, OpKind::Binary(BinaryOp::Mul), DataType::Int32, &l32).time_ms;
        assert!(
            (t_mul / t_add - 1.0).abs() < 1e-9,
            "1 cycle each on the scalar ALU"
        );
    }

    #[test]
    fn energy_is_positive_and_additive() {
        let cfg = DeviceConfig::new(PimTarget::Fulcrum, 4);
        let layout = layout_for(&cfg, 1 << 20);
        let a = op_cost(
            &cfg,
            OpKind::Binary(BinaryOp::Add),
            DataType::Int32,
            &layout,
        );
        assert!(a.energy_mj > 0.0 && a.time_ms > 0.0);
        let sum = a.plus(a);
        assert!((sum.energy_mj - 2.0 * a.energy_mj).abs() < 1e-12);
    }
}
