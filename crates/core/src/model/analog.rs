//! Analog bit-serial (Ambit/SIMDRAM-style TRA) performance and energy
//! model — the §IX extension target.
//!
//! Costs derive from the analog microprograms in
//! [`pim_microcode::analog`]: every AAP is a double row activation
//! (tRAS + tRP twice over the command sequence, modeled as one full
//! activate–precharge pair per activation), every TRA one (wider)
//! activate–precharge. Compare with the digital model in
//! `bitserial.rs`, whose per-gate cost is a ~1 ns sense-amp logic step:
//! this difference is the paper's §IV argument for digital PIM, made
//! quantitative by the `ablation_analog` harness binary.

use pim_dram::{RowPattern, TimingModel};
use pim_microcode::cache::{self, ProgKey};
use pim_microcode::{gen, Cost};

use crate::config::DeviceConfig;
use crate::dtype::DataType;
use crate::object::ObjectLayout;
use crate::ops::OpKind;

use super::{reduction_merge, CostMemo, OpCost};

/// Per-stripe cost of `kind` on the analog target, memoized per
/// `(OpKind, DataType)` pair like the digital model. Scalar variants are
/// lowered as a broadcast of the constant into scratch rows followed by
/// the vector program; shift-right and abs reuse the structurally
/// identical left-shift / sub+select row counts.
pub(crate) fn program_cost(kind: OpKind, dtype: DataType) -> Cost {
    static MEMO: CostMemo = CostMemo::new();
    MEMO.get_or_generate((kind, dtype), || program_cost_uncached(kind, dtype))
}

/// Fetches `key` through the process-wide [`cache::program`] store
/// (pre-compiling its kernel) and returns its cost — same routing as
/// the digital model, so model and functional paths share programs.
fn cached_cost(key: ProgKey) -> Cost {
    cache::program(key).cost()
}

fn program_cost_uncached(kind: OpKind, dtype: DataType) -> Cost {
    let bits = dtype.bits();
    let signed = dtype.is_signed();
    let scalar_setup = |c: Cost| cached_cost(ProgKey::Broadcast(bits, 0)) + c;
    match kind {
        OpKind::Binary(b) => cached_cost(ProgKey::AnalogBinary(b, bits)),
        OpKind::BinaryScalar(b, _) => scalar_setup(cached_cost(ProgKey::AnalogBinary(b, bits))),
        OpKind::Cmp(c) => {
            let mut cost = cached_cost(ProgKey::AnalogCmp(c, bits, signed));
            cost.aap_ops += (bits - 1) as u64; // zero-fill upper result rows
            cost
        }
        OpKind::CmpScalar(c, _) => {
            let mut cost = scalar_setup(cached_cost(ProgKey::AnalogCmp(c, bits, signed)));
            cost.aap_ops += (bits - 1) as u64;
            cost
        }
        OpKind::Min => cached_cost(ProgKey::AnalogMinMax(false, bits, signed)),
        OpKind::Max => cached_cost(ProgKey::AnalogMinMax(true, bits, signed)),
        OpKind::MinScalar(_) => {
            scalar_setup(cached_cost(ProgKey::AnalogMinMax(false, bits, signed)))
        }
        OpKind::MaxScalar(_) => {
            scalar_setup(cached_cost(ProgKey::AnalogMinMax(true, bits, signed)))
        }
        // Fused multiply-scalar + add: the eager pair AAP-copies the
        // product into a temporary row group and back; fused, the adder
        // consumes the product rows in place, eliding one AAP per bit.
        OpKind::ScaledAdd(_) => {
            let fused = scalar_setup(cached_cost(ProgKey::AnalogBinary(gen::BinaryOp::Mul, bits)))
                + cached_cost(ProgKey::AnalogBinary(gen::BinaryOp::Add, bits));
            Cost {
                aap_ops: fused.aap_ops.saturating_sub(bits as u64),
                ..fused
            }
        }
        // Fused compare + select: no zero-fill of the mask's upper rows
        // (the eager Cmp surcharge) and the mask's final AAP write-back
        // is consumed directly by the select.
        OpKind::FusedCmpSelect(c) => {
            let fused = cached_cost(ProgKey::AnalogCmp(c, bits, signed))
                + cached_cost(ProgKey::AnalogSelect(bits));
            Cost {
                aap_ops: fused.aap_ops.saturating_sub(1),
                ..fused
            }
        }
        OpKind::Not => cached_cost(ProgKey::AnalogNot(bits)),
        // abs = conditional negate: subtract-from-zero + masked select.
        OpKind::Abs => {
            cached_cost(ProgKey::AnalogBinary(gen::BinaryOp::Sub, bits))
                + cached_cost(ProgKey::AnalogSelect(bits))
        }
        OpKind::Popcount => cached_cost(ProgKey::AnalogPopcount(bits)),
        OpKind::ShiftL(k) => cached_cost(ProgKey::AnalogShiftLeft(bits, k)),
        // Right shift is the same AAP row remapping in the other
        // direction (plus one DCC pass for the arithmetic fill).
        OpKind::ShiftR(k) => cached_cost(ProgKey::AnalogShiftLeft(bits, k)),
        OpKind::Select => cached_cost(ProgKey::AnalogSelect(bits)),
        OpKind::Broadcast(v) => cached_cost(ProgKey::AnalogBroadcast(bits, v as u64)),
        OpKind::RedSum => cached_cost(ProgKey::AnalogRedSum(bits, signed)),
        // Associative min/max: the candidate-mask narrowing needs an AND
        // per bit plus the popcount survival test.
        OpKind::RedMin | OpKind::RedMax => {
            cached_cost(ProgKey::AnalogBinary(gen::BinaryOp::And, bits))
                + Cost {
                    popcount_reads: bits as u64,
                    ..Cost::default()
                }
        }
        OpKind::Copy => cached_cost(ProgKey::AnalogCopy(bits)),
    }
}

fn stripe_time_ns(
    config: &DeviceConfig,
    tm: &mut dyn TimingModel,
    cost: &Cost,
    pattern: RowPattern,
) -> f64 {
    let pe = &config.pe;
    // AAP = two activate–precharge pairs, TRA = one; both are pure
    // ACT/PRE cycles on the backend (no column access).
    tm.charge_rows(cost.row_reads, cost.row_writes, pattern)
        + cost.logic_ops as f64 * pe.bitserial_logic_ns
        + tm.charge_rows_extra(cost.popcount_reads, pe.bitserial_popcount_extra_ns, pattern)
        + tm.charge_activate_precharge(2 * cost.aap_ops)
        + tm.charge_activate_precharge(cost.tra_ops)
}

fn stripe_energy_mj(config: &DeviceConfig, cost: &Cost) -> f64 {
    let ap_nj = config.power.activate_precharge_energy_nj(&config.timing);
    // AAP = two activations; TRA = one triple activation drawing roughly
    // double current (three wordlines, shared charge).
    let row_equiv = (cost.row_reads + cost.row_writes + cost.popcount_reads) as f64
        + cost.aap_ops as f64 * 2.0
        + cost.tra_ops as f64 * 2.0;
    let gate_mj =
        cost.logic_ops as f64 * config.pe.bitserial_gate_pj * config.cols_per_core() as f64 * 1e-9;
    let pop_mj = cost.popcount_reads as f64
        * config.pe.bitserial_popcount_pj_per_bit
        * config.cols_per_core() as f64
        * 1e-9;
    row_equiv * ap_nj * 1e-6 + gate_mj + pop_mj
}

/// Latency and energy of `kind` on the analog bit-serial target.
pub(crate) fn cost(
    config: &DeviceConfig,
    tm: &mut dyn TimingModel,
    kind: OpKind,
    dtype: DataType,
    layout: &ObjectLayout,
) -> OpCost {
    let per_stripe = program_cost(kind, dtype);
    let stripes = layout.units_per_core.max(1) as f64;
    let overflow = (layout.cores_used as f64 * config.decimation.max(1) as f64
        / config.physical_core_count() as f64)
        .max(1.0);
    let time_ms =
        stripe_time_ns(config, tm, &per_stripe, config.row_pattern) * stripes * overflow * 1e-6;
    let energy_mj = stripe_energy_mj(config, &per_stripe)
        * stripes
        * overflow
        * config.physical_cores_represented(layout.cores_used) as f64;
    let mut out = OpCost { time_ms, energy_mj };
    if matches!(kind, OpKind::RedSum | OpKind::RedMin | OpKind::RedMax) {
        out = out.plus(reduction_merge(config, tm, layout.cores_used));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PimTarget;
    use pim_microcode::gen::BinaryOp;

    fn layouts(n: u64) -> (DeviceConfig, DeviceConfig, ObjectLayout) {
        let digital = DeviceConfig::new(PimTarget::BitSerial, 4);
        let analog = DeviceConfig::new(PimTarget::AnalogBitSerial, 4);
        let layout = ObjectLayout::compute(&analog, n, DataType::Int32, None).unwrap();
        (digital, analog, layout)
    }

    #[test]
    fn analog_slower_than_digital_for_every_core_op() {
        let (digital, analog_cfg, layout) = layouts(1 << 20);
        for (kind, min_ratio) in [
            (OpKind::Binary(BinaryOp::Add), 2.0),
            (OpKind::Binary(BinaryOp::Mul), 2.0),
            (OpKind::Binary(BinaryOp::Xor), 2.0),
            (OpKind::Not, 1.0), // one DCC pass per bit is nearly as cheap
            (OpKind::Select, 2.0),
            (OpKind::Popcount, 2.0),
        ] {
            let td = crate::model::op_cost(&digital, kind, DataType::Int32, &layout).time_ms;
            let ta = crate::model::op_cost(&analog_cfg, kind, DataType::Int32, &layout).time_ms;
            assert!(ta > min_ratio * td, "{kind:?}: analog {ta} vs digital {td}");
        }
    }

    #[test]
    fn analog_energy_exceeds_digital() {
        let (digital, analog_cfg, layout) = layouts(1 << 20);
        let kind = OpKind::Binary(BinaryOp::Add);
        let ed = crate::model::op_cost(&digital, kind, DataType::Int32, &layout).energy_mj;
        let ea = crate::model::op_cost(&analog_cfg, kind, DataType::Int32, &layout).energy_mj;
        assert!(ea > ed, "analog {ea} vs digital {ed}");
    }

    #[test]
    fn analog_layout_is_vertical_like_digital() {
        let cfg = DeviceConfig::new(PimTarget::AnalogBitSerial, 1);
        let layout = ObjectLayout::compute(&cfg, 10_000, DataType::Int32, None).unwrap();
        assert_eq!(layout.layout, crate::object::DataLayout::Vertical);
        assert_eq!(cfg.core_count(), cfg.geometry.total_subarrays());
    }
}
