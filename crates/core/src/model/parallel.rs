//! Bit-parallel performance and energy models: Fulcrum (subarray-level)
//! and bank-level PIM.
//!
//! Both architectures stream rows through walkers and process elements on
//! a scalar ALU/ALPU. The three walkers let operand fetch overlap with
//! compute (the paper notes AXPY's second operand fetch "can be pipelined
//! with the scaling"), so per-core time is
//! `max(row traffic, compute) + one startup row read`. Bank-level PIM
//! additionally pays the narrow-GDL crossing for every row moved between
//! a subarray row buffer and the bank-level walkers, which is exactly why
//! it loses to Fulcrum in the paper despite an identical ALPU.

use pim_dram::TimingModel;

use crate::config::DeviceConfig;
use crate::dtype::DataType;
use crate::object::ObjectLayout;
use crate::ops::OpKind;

use super::{reduction_merge, OpCost};

struct Traffic {
    rows_in: f64,
    rows_out: f64,
    /// ALU cycles on the busiest core.
    cycles: f64,
    elems: f64,
}

fn traffic(
    kind: OpKind,
    dtype: DataType,
    layout: &ObjectLayout,
    alu_width: u32,
    popcount_cycles: u32,
) -> Traffic {
    let units = layout.units_per_core.max(1) as f64;
    let elems = layout.elems_per_core.max(1) as f64;
    let rows_in = kind.input_operands() as f64 * units;
    let rows_out = if kind.writes_output() { units } else { 0.0 };
    // SIMD lanes for narrow types; extra cycles for types wider than the
    // datapath (a 32-bit ALU takes two cycles per 64-bit element).
    let bits = dtype.bits() as f64;
    let width = alu_width as f64;
    // Types wider than the datapath take ceil(bits/width) cycles per op;
    // narrower types pack width/bits SIMD lanes into one cycle.
    let width_factor = if bits >= width {
        (bits / width).ceil()
    } else {
        bits / width
    };
    let per_elem = kind.alu_cycles(popcount_cycles) as f64 * width_factor;
    // Broadcast/copy move rows without per-element ALU work; charge one
    // register cycle per row for the walker fill.
    let cycles = match kind {
        OpKind::Copy | OpKind::Broadcast(_) => units,
        _ => elems * per_elem,
    };
    Traffic {
        rows_in,
        rows_out,
        cycles,
        elems,
    }
}

fn combine(
    config: &DeviceConfig,
    tm: &mut dyn TimingModel,
    t: &Traffic,
    layout: &ObjectLayout,
    gdl: bool,
    kind: OpKind,
) -> OpCost {
    let timing = &config.timing;
    let pe = &config.pe;
    let cols = config.cols_per_core() as f64;
    let gdl_ns = if gdl {
        timing.gdl_row_transfer_ns(config.cols_per_core())
    } else {
        0.0
    };

    // When the decimation factor exceeds the physical core count, the
    // paper-scale machine holds `overflow`× more rows/elements per core
    // than the scaled functional run; restore that serialization.
    let overflow = (layout.cores_used as f64 * config.decimation.max(1) as f64
        / config.physical_core_count() as f64)
        .max(1.0);
    // Walker row traffic goes through the timing backend: each row pays
    // its GDL crossing on top of the row cycle, and stateful backends
    // add any bank interlock stalls.
    let row_ns = tm.charge_walker_rows(t.rows_in, t.rows_out, gdl_ns, config.row_pattern);
    let compute_ns = t.cycles * config.alu_period_ns();
    let startup_ns = tm.charge_walker_rows(1.0, 0.0, gdl_ns, config.row_pattern);
    // With the three walkers, fetch overlaps compute (max); without
    // pipelining they serialize (sum) — the ablation knob.
    let busy_ns = if pe.walker_pipelining {
        row_ns.max(compute_ns)
    } else {
        row_ns + compute_ns
    };
    let time_ms = (busy_ns * overflow + startup_ns) * 1e-6;

    // Energy: activations for every row touched, walker latching, GDL
    // crossings (bank-level only), and ALU ops. The ALPU is assumed to
    // draw Fulcrum-ALU-like power (§V-D), scaled by datapath width.
    let ap_nj = config.power.activate_precharge_energy_nj(timing);
    let rows = t.rows_in + t.rows_out;
    let ap_mj = rows * ap_nj * 1e-6;
    let walker_mj = rows * cols * pe.walker_pj_per_bit * 1e-9;
    let gdl_mj = if gdl {
        rows * cols * pe.gdl_pj_per_bit * 1e-9
    } else {
        0.0
    };
    let width_scale = if gdl {
        config.pe.bank_alu_width_bits as f64 / 32.0
    } else {
        1.0
    };
    let alu_mj = match kind {
        OpKind::Copy | OpKind::Broadcast(_) => 0.0,
        _ => t.cycles * pe.alu_op_pj * width_scale * 1e-9,
    };
    let _ = t.elems;
    // Energy counts physical cores (×decimation, clamped to the device)
    // and the same per-core serialization overflow.
    let energy_mj = (ap_mj + walker_mj + gdl_mj + alu_mj)
        * overflow
        * config.physical_cores_represented(layout.cores_used) as f64;
    OpCost { time_ms, energy_mj }
}

/// Fulcrum: 32-bit scalar ALU, no GDL crossing (walkers sit at the local
/// row buffer), 12-cycle SWAR popcount.
pub(crate) fn cost_fulcrum(
    config: &DeviceConfig,
    tm: &mut dyn TimingModel,
    kind: OpKind,
    dtype: DataType,
    layout: &ObjectLayout,
) -> OpCost {
    let t = traffic(kind, dtype, layout, 32, config.pe.fulcrum_popcount_cycles);
    let mut out = combine(config, tm, &t, layout, false, kind);
    if matches!(kind, OpKind::RedSum | OpKind::RedMin | OpKind::RedMax) {
        out = out.plus(reduction_merge(config, tm, layout.cores_used));
    }
    out
}

/// Bank-level PIM: 64-bit ALPU behind a 128-bit GDL, single-cycle
/// popcount.
pub(crate) fn cost_bank(
    config: &DeviceConfig,
    tm: &mut dyn TimingModel,
    kind: OpKind,
    dtype: DataType,
    layout: &ObjectLayout,
) -> OpCost {
    let t = traffic(kind, dtype, layout, config.pe.bank_alu_width_bits, 1);
    let mut out = combine(config, tm, &t, layout, true, kind);
    if matches!(kind, OpKind::RedSum | OpKind::RedMin | OpKind::RedMax) {
        out = out.plus(reduction_merge(config, tm, layout.cores_used));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PimTarget;
    use crate::object::ObjectLayout;
    use pim_microcode::gen::BinaryOp;

    fn cost_fulcrum(
        config: &DeviceConfig,
        kind: OpKind,
        dtype: DataType,
        layout: &ObjectLayout,
    ) -> OpCost {
        let mut tm = super::super::analytical_model(config);
        super::cost_fulcrum(config, &mut tm, kind, dtype, layout)
    }

    fn cost_bank(
        config: &DeviceConfig,
        kind: OpKind,
        dtype: DataType,
        layout: &ObjectLayout,
    ) -> OpCost {
        let mut tm = super::super::analytical_model(config);
        super::cost_bank(config, &mut tm, kind, dtype, layout)
    }

    #[test]
    fn bank_pays_gdl_fulcrum_does_not() {
        let f = DeviceConfig::new(PimTarget::Fulcrum, 4);
        let b = DeviceConfig::new(PimTarget::BankLevel, 4);
        // Same element count per core to isolate the GDL penalty.
        let n = 1u64 << 20;
        let lf = ObjectLayout::compute(&f, n, DataType::Int32, None).unwrap();
        let lb = ObjectLayout::compute(&b, n, DataType::Int32, None).unwrap();
        let tf = cost_fulcrum(&f, OpKind::Binary(BinaryOp::Add), DataType::Int32, &lf).time_ms;
        let tb = cost_bank(&b, OpKind::Binary(BinaryOp::Add), DataType::Int32, &lb).time_ms;
        assert!(tb > tf, "bank-level ({tb} ms) must trail Fulcrum ({tf} ms)");
    }

    #[test]
    fn popcount_cheaper_on_bank_alu() {
        let b = DeviceConfig::new(PimTarget::BankLevel, 4);
        let lb = ObjectLayout::compute(&b, 1u64 << 26, DataType::Int32, None).unwrap();
        let pop = cost_bank(&b, OpKind::Popcount, DataType::Int32, &lb).time_ms;
        let f = DeviceConfig::new(PimTarget::Fulcrum, 4);
        let lf = ObjectLayout::compute(&f, 1u64 << 26, DataType::Int32, None).unwrap();
        let popf = cost_fulcrum(&f, OpKind::Popcount, DataType::Int32, &lf).time_ms;
        let addf = cost_fulcrum(&f, OpKind::Binary(BinaryOp::Add), DataType::Int32, &lf).time_ms;
        // Fulcrum's 12-cycle SWAR popcount must cost more than its add.
        assert!(popf > addf);
        let _ = pop;
    }

    #[test]
    fn simd_lanes_speed_up_narrow_types() {
        let f = DeviceConfig::new(PimTarget::Fulcrum, 1);
        let n = 1u64 << 26; // large enough to be compute-bound
        let l8 = ObjectLayout::compute(&f, n, DataType::Int8, None).unwrap();
        let l32 = ObjectLayout::compute(&f, n, DataType::Int32, None).unwrap();
        let t8 = cost_fulcrum(&f, OpKind::Binary(BinaryOp::Add), DataType::Int8, &l8).time_ms;
        let t32 = cost_fulcrum(&f, OpKind::Binary(BinaryOp::Add), DataType::Int32, &l32).time_ms;
        assert!(t8 < t32, "4 SIMD lanes for int8: {t8} vs {t32}");
    }

    #[test]
    fn wide_types_cost_extra_cycles() {
        let f = DeviceConfig::new(PimTarget::Fulcrum, 1);
        let n = 1u64 << 26;
        let l64 = ObjectLayout::compute(&f, n, DataType::Int64, None).unwrap();
        let l32 = ObjectLayout::compute(&f, n, DataType::Int32, None).unwrap();
        let t64 = cost_fulcrum(&f, OpKind::Binary(BinaryOp::Add), DataType::Int64, &l64).time_ms;
        let t32 = cost_fulcrum(&f, OpKind::Binary(BinaryOp::Add), DataType::Int32, &l32).time_ms;
        assert!(t64 > t32);
    }

    #[test]
    fn copy_has_no_alu_energy() {
        let f = DeviceConfig::new(PimTarget::Fulcrum, 1);
        let l = ObjectLayout::compute(&f, 1u64 << 20, DataType::Int32, None).unwrap();
        let copy = cost_fulcrum(&f, OpKind::Copy, DataType::Int32, &l);
        let add = cost_fulcrum(&f, OpKind::Binary(BinaryOp::Add), DataType::Int32, &l);
        assert!(copy.energy_mj < add.energy_mj);
    }
}
