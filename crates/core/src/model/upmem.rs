//! UPMEM-like toy model (§V-E): one scalar in-order DPU per bank.
//!
//! The paper validates PIMeval against real UPMEM hardware with a "toy
//! UPMEM model" and reports it 23–35 % *slower* than the hardware,
//! attributed to not modeling tasklets. This reproduction's version
//! makes the same simplification explicit with a `dpu_ipc < 1`
//! effective-issue factor ([`crate::PeParams::dpu_ipc`]): DPUs only
//! reach ~1 IPC with 11 resident tasklets, and a naïve port runs
//! under-threaded.
//!
//! Per-op time per DPU is a DMA/compute roofline:
//! `max(bytes_touched / mram_bw, insns / (freq × ipc))`.

use pim_dram::TimingModel;

use crate::config::DeviceConfig;
use crate::dtype::DataType;
use crate::object::ObjectLayout;
use crate::ops::OpKind;

use super::{reduction_merge, OpCost};

/// Scalar instructions per element for `kind` on a DPU without native
/// SIMD, multiply, or popcount shortcuts.
fn insns_per_elem(kind: OpKind, base: f64) -> f64 {
    match kind {
        // 32×32 multiply is a multi-instruction sequence on the DPU ISA.
        OpKind::Binary(pim_microcode::gen::BinaryOp::Mul)
        | OpKind::BinaryScalar(pim_microcode::gen::BinaryOp::Mul, _) => base + 24.0,
        // SWAR popcount, as on Fulcrum.
        OpKind::Popcount => base + 12.0,
        // Reductions keep the accumulator in a register: no store.
        OpKind::RedSum | OpKind::RedMin | OpKind::RedMax => base - 1.0,
        // Fused pairs: the intermediate stays in a register, so the
        // second op costs one extra ALU instruction instead of a full
        // load/compute/store round per element.
        OpKind::ScaledAdd(_) => base + 25.0,
        OpKind::FusedCmpSelect(_) => base + 1.0,
        // Pure data movement.
        OpKind::Copy | OpKind::Broadcast(_) => 0.0,
        _ => base,
    }
}

/// Latency and energy of `kind` on the UPMEM-like target.
pub(crate) fn cost(
    config: &DeviceConfig,
    tm: &mut dyn TimingModel,
    kind: OpKind,
    dtype: DataType,
    layout: &ObjectLayout,
) -> OpCost {
    let pe = &config.pe;
    let elems = layout.elems_per_core.max(1) as f64;
    let bytes_per_elem = (dtype.bits() as f64 / 8.0).max(1.0);
    let streams = kind.input_operands() as f64 + f64::from(kind.writes_output());
    let overflow = (layout.cores_used as f64 * config.decimation.max(1) as f64
        / config.physical_core_count() as f64)
        .max(1.0);

    // MRAM DMA is bandwidth-bound in both backends (B / (GB/s) = ns);
    // the FSM backend replays a bounded window for row-buffer counters.
    let dma_ns = tm.charge_burst(elems * bytes_per_elem * streams, pe.dpu_mram_gbs);
    let insns = elems * insns_per_elem(kind, pe.dpu_insns_per_elem);
    let compute_ns = insns / (pe.dpu_freq_mhz * pe.dpu_ipc) * 1e3;
    let time_ms = dma_ns.max(compute_ns) * overflow * 1e-6;

    // Energy: MRAM row activations for the streamed data plus DPU core
    // energy (~twice a Fulcrum ALU op per instruction: fetch + execute).
    let ap_nj = config.power.activate_precharge_energy_nj(&config.timing);
    let rows = elems * bytes_per_elem * streams * 8.0 / config.cols_per_core() as f64;
    let energy_mj = (rows * ap_nj * 1e-6 + insns * 2.0 * pe.alu_op_pj * 1e-9)
        * overflow
        * config.physical_cores_represented(layout.cores_used) as f64;

    let mut out = OpCost { time_ms, energy_mj };
    if matches!(kind, OpKind::RedSum | OpKind::RedMin | OpKind::RedMax) {
        out = out.plus(reduction_merge(config, tm, layout.cores_used));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PimTarget;
    use pim_microcode::gen::BinaryOp;

    #[test]
    fn upmem_trails_bank_level_on_streaming_add() {
        // A 350 MHz scalar DPU behind a 0.7 GB/s DMA cannot keep up with
        // the 64-bit ALPU fed by walkers.
        let n = 1u64 << 26;
        let up = DeviceConfig::new(PimTarget::UpmemLike, 4);
        let bank = DeviceConfig::new(PimTarget::BankLevel, 4);
        let lu = ObjectLayout::compute(&up, n, DataType::Int32, None).unwrap();
        let lb = ObjectLayout::compute(&bank, n, DataType::Int32, None).unwrap();
        let tu = crate::model::op_cost(&up, OpKind::Binary(BinaryOp::Add), DataType::Int32, &lu);
        let tb = crate::model::op_cost(&bank, OpKind::Binary(BinaryOp::Add), DataType::Int32, &lb);
        assert!(tu.time_ms > tb.time_ms, "upmem {tu:?} vs bank {tb:?}");
    }

    #[test]
    fn per_dpu_throughput_bounded_by_dma() {
        let cfg = DeviceConfig::new(PimTarget::UpmemLike, 1);
        let n = 1u64 << 24;
        let layout = ObjectLayout::compute(&cfg, n, DataType::Int32, None).unwrap();
        let t = crate::model::op_cost(
            &cfg,
            OpKind::Binary(BinaryOp::Add),
            DataType::Int32,
            &layout,
        );
        // Per-DPU bytes (3 streams) over the modeled time must not
        // exceed the MRAM DMA bandwidth.
        let bytes_per_dpu = layout.elems_per_core as f64 * 4.0 * 3.0;
        let gbs = bytes_per_dpu / (t.time_ms * 1e6);
        assert!(gbs <= cfg.pe.dpu_mram_gbs * 1.001, "per-DPU {gbs} GB/s");
    }

    #[test]
    fn mul_costs_more_than_add() {
        let cfg = DeviceConfig::new(PimTarget::UpmemLike, 1);
        let layout = ObjectLayout::compute(&cfg, 1 << 24, DataType::Int32, None).unwrap();
        let add = crate::model::op_cost(
            &cfg,
            OpKind::Binary(BinaryOp::Add),
            DataType::Int32,
            &layout,
        );
        let mul = crate::model::op_cost(
            &cfg,
            OpKind::Binary(BinaryOp::Mul),
            DataType::Int32,
            &layout,
        );
        assert!(mul.time_ms > add.time_ms);
    }
}
