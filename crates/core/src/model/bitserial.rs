//! Bit-serial (DRAM-AP) performance and energy model.
//!
//! Costs are derived from the *actual* microprograms in `pim-microcode`:
//! the model generates the program a real DRAM-AP controller would
//! broadcast and charges its exact row-read/row-write/logic/popcount
//! counts. Every subarray executes the broadcast in lockstep, so
//! wall-clock time is the per-core time × the number of element stripes
//! the busiest core holds.

use pim_dram::{RowPattern, TimingModel};
use pim_microcode::cache::{self, ProgKey};
use pim_microcode::gen;
use pim_microcode::Cost;

use crate::config::DeviceConfig;
use crate::dtype::DataType;
use crate::object::ObjectLayout;
use crate::ops::OpKind;

use super::{reduction_merge, CostMemo, OpCost};

/// Generates the microprogram for `kind` and returns its per-stripe cost.
///
/// Memoized per `(OpKind, DataType)` pair: the generators run at most
/// once per pair per process, not on every charged command.
///
/// Comparison results logically occupy a full element (0/1), so the
/// `bits − 1` upper result rows are zero-filled — that write traffic is
/// charged here even though the generator emits only the live row.
pub(crate) fn program_cost(kind: OpKind, dtype: DataType) -> Cost {
    static MEMO: CostMemo = CostMemo::new();
    MEMO.get_or_generate((kind, dtype), || program_cost_uncached(kind, dtype))
}

/// Fetches `key` through the process-wide [`cache::program`] store and
/// returns its cost. Routing the model through the same cache the
/// functional VM uses means the first charged command also leaves the
/// program *and its compiled kernel* warm for any later execution.
fn cached_cost(key: ProgKey) -> Cost {
    cache::program(key).cost()
}

fn program_cost_uncached(kind: OpKind, dtype: DataType) -> Cost {
    let bits = dtype.bits();
    let signed = dtype.is_signed();
    match kind {
        OpKind::Binary(b) => cached_cost(ProgKey::Binary(b, bits)),
        OpKind::BinaryScalar(b, k) => cached_cost(ProgKey::BinaryScalar(b, bits, k as u64)),
        OpKind::Cmp(c) => {
            let mut cost = cached_cost(ProgKey::Cmp(c, bits, signed));
            cost.row_writes += (bits - 1) as u64;
            cost
        }
        OpKind::CmpScalar(c, k) => {
            let mut cost = cached_cost(ProgKey::CmpScalar(c, bits, signed, k as u64));
            cost.row_writes += (bits - 1) as u64;
            cost
        }
        OpKind::Min => cached_cost(ProgKey::MinMax(false, bits, signed)),
        OpKind::Max => cached_cost(ProgKey::MinMax(true, bits, signed)),
        // Scalar min/max: compare against a broadcast constant, then
        // conditionally select; the constant side needs no row reads, so
        // charge the comparison-with-scalar plus the select sweep.
        OpKind::MinScalar(k) | OpKind::MaxScalar(k) => {
            let cmp = cached_cost(ProgKey::CmpScalar(gen::CmpOp::Lt, bits, signed, k as u64));
            // Select sweep: one read of A plus one write per bit (the
            // scalar alternative is Set, not a row read).
            let sweep = Cost {
                row_reads: bits as u64,
                row_writes: bits as u64,
                logic_ops: 2 * bits as u64,
                ..Cost::default()
            };
            // cmp keeps its result in R0, so its write-back is dropped.
            Cost {
                row_writes: 0,
                ..cmp
            } + sweep
        }
        // Fused multiply-scalar + add: one broadcast seeds the
        // destination from the addend and accumulates the partial
        // products on top — the eager pair's temporary write sweep and
        // read-back sweep never happen.
        OpKind::ScaledAdd(k) => cached_cost(ProgKey::ScaledAdd(bits, k as u64)),
        // Fused compare + select: the 0/1 verdict stays in R0 between
        // the two phases, so the comparison's write-back, the eager
        // `bits − 1` zero-fill, and the select's condition read all
        // vanish.
        OpKind::FusedCmpSelect(c) => cached_cost(ProgKey::CmpSelect(c, bits, signed)),
        OpKind::Not => cached_cost(ProgKey::Not(bits)),
        OpKind::Abs => cached_cost(ProgKey::Abs(bits)),
        OpKind::Popcount => cached_cost(ProgKey::Popcount(bits)),
        OpKind::ShiftL(k) => cached_cost(ProgKey::ShiftLeft(bits, k)),
        OpKind::ShiftR(k) => cached_cost(ProgKey::ShiftRight(bits, k, signed)),
        OpKind::Select => cached_cost(ProgKey::Select(bits)),
        OpKind::Broadcast(v) => cached_cost(ProgKey::Broadcast(bits, v as u64)),
        OpKind::RedSum => cached_cost(ProgKey::RedSum(bits, signed)),
        // Associative min/max search: one MSB-to-LSB sweep narrowing the
        // candidate mask — per bit, one row read, a mask update, and a
        // row-wide popcount telling the controller whether any candidate
        // survives (the conditional match-update pattern of DRAM-AP).
        OpKind::RedMin | OpKind::RedMax => Cost {
            row_reads: bits as u64,
            logic_ops: 3 * bits as u64,
            popcount_reads: bits as u64,
            ..Cost::default()
        },
        OpKind::Copy => cached_cost(ProgKey::Copy(bits)),
    }
}

/// Per-stripe execution time in nanoseconds, charged through the timing
/// backend (one representative lockstep sweep; the caller scales by
/// stripes × overflow).
fn stripe_time_ns(
    config: &DeviceConfig,
    tm: &mut dyn TimingModel,
    cost: &Cost,
    pattern: RowPattern,
) -> f64 {
    let pe = &config.pe;
    tm.charge_rows(cost.row_reads, cost.row_writes, pattern)
        + cost.logic_ops as f64 * pe.bitserial_logic_ns
        + tm.charge_rows_extra(cost.popcount_reads, pe.bitserial_popcount_extra_ns, pattern)
}

/// Per-stripe, per-core energy in millijoules.
fn stripe_energy_mj(config: &DeviceConfig, cost: &Cost) -> f64 {
    let pe = &config.pe;
    let cols = config.cols_per_core() as f64;
    let ap_nj = config.power.activate_precharge_energy_nj(&config.timing);
    let row_ops = (cost.row_reads + cost.row_writes + cost.popcount_reads) as f64;
    let ap_mj = row_ops * ap_nj * 1e-6;
    let gate_mj = cost.logic_ops as f64 * pe.bitserial_gate_pj * cols * 1e-9;
    let pop_mj = cost.popcount_reads as f64 * pe.bitserial_popcount_pj_per_bit * cols * 1e-9;
    ap_mj + gate_mj + pop_mj
}

/// Latency and energy of `kind` on the bit-serial target.
pub(crate) fn cost(
    config: &DeviceConfig,
    tm: &mut dyn TimingModel,
    kind: OpKind,
    dtype: DataType,
    layout: &ObjectLayout,
) -> OpCost {
    if matches!(kind, OpKind::RedSum) && !config.pe.bitserial_row_popcount {
        // Ablation: without row-wide popcount hardware, the reduction
        // ships the whole object to the host over the rank interface.
        let elems =
            layout.elems_per_core * config.physical_cores_represented(layout.cores_used) as u64;
        let bytes = elems * dtype.bits() as u64 / 8;
        let time_ms = tm.charge_host_copy(bytes.max(1), config.geometry.ranks);
        let energy_mj = config.power.transfer_energy_mj(time_ms, true);
        return OpCost { time_ms, energy_mj };
    }
    let per_stripe = program_cost(kind, dtype);
    let stripes = layout.units_per_core.max(1) as f64;
    // When the decimation factor exceeds the physical core count, the
    // paper-scale machine would hold `overflow`× more stripes per core
    // than the scaled functional run does; restore that serialization.
    let overflow = (layout.cores_used as f64 * config.decimation.max(1) as f64
        / config.physical_core_count() as f64)
        .max(1.0);
    // One representative lockstep sweep through the backend; every core
    // broadcasts the same program, so stripes × overflow repetitions of
    // the same sweep scale it (the backend has already priced the
    // steady-state access pattern, stalls included).
    let time_ms =
        stripe_time_ns(config, tm, &per_stripe, config.row_pattern) * stripes * overflow * 1e-6;
    // Energy counts physical cores (×decimation, clamped to the device)
    // and the same per-core serialization overflow.
    let energy_mj = stripe_energy_mj(config, &per_stripe)
        * stripes
        * overflow
        * config.physical_cores_represented(layout.cores_used) as f64;
    let mut out = OpCost { time_ms, energy_mj };
    if matches!(kind, OpKind::RedSum | OpKind::RedMin | OpKind::RedMax) {
        out = out.plus(reduction_merge(config, tm, layout.cores_used));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PimTarget;
    use pim_microcode::gen::BinaryOp;

    fn cfg() -> DeviceConfig {
        DeviceConfig::new(PimTarget::BitSerial, 4)
    }

    fn cost(config: &DeviceConfig, kind: OpKind, dtype: DataType, layout: &ObjectLayout) -> OpCost {
        let mut tm = super::super::analytical_model(config);
        super::cost(config, &mut tm, kind, dtype, layout)
    }

    fn reduction_merge(config: &DeviceConfig, cores_used: usize) -> OpCost {
        let mut tm = super::super::analytical_model(config);
        super::reduction_merge(config, &mut tm, cores_used)
    }

    #[test]
    fn add_time_matches_hand_formula() {
        let config = cfg();
        let layout = ObjectLayout::compute(&config, 8192, DataType::Int32, None).unwrap();
        assert_eq!(layout.units_per_core, 1);
        let c = program_cost(OpKind::Binary(BinaryOp::Add), DataType::Int32);
        let expected_ns =
            c.row_reads as f64 * 28.5 + c.row_writes as f64 * 43.5 + c.logic_ops as f64;
        let got = cost(
            &config,
            OpKind::Binary(BinaryOp::Add),
            DataType::Int32,
            &layout,
        );
        assert!((got.time_ms - expected_ns * 1e-6).abs() < 1e-12);
    }

    #[test]
    fn stripes_scale_latency_linearly() {
        let config = cfg();
        let cores = config.core_count() as u64;
        let cols = config.cols_per_core() as u64;
        let one = ObjectLayout::compute(&config, cores * cols, DataType::Int32, None).unwrap();
        let four = ObjectLayout::compute(&config, 4 * cores * cols, DataType::Int32, None).unwrap();
        assert_eq!(one.units_per_core, 1);
        assert_eq!(four.units_per_core, 4);
        let t1 = cost(
            &config,
            OpKind::Binary(BinaryOp::Add),
            DataType::Int32,
            &one,
        )
        .time_ms;
        let t4 = cost(
            &config,
            OpKind::Binary(BinaryOp::Add),
            DataType::Int32,
            &four,
        )
        .time_ms;
        assert!((t4 / t1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn cmp_zero_fill_is_charged() {
        let raw = pim_microcode::gen::cmp(pim_microcode::gen::CmpOp::Lt, 32, true).cost();
        let modeled = program_cost(OpKind::Cmp(pim_microcode::gen::CmpOp::Lt), DataType::Int32);
        assert_eq!(modeled.row_writes, raw.row_writes + 31);
    }

    #[test]
    fn fused_costs_undercut_their_eager_pairs() {
        use pim_microcode::gen::CmpOp;
        let config = cfg();
        let layout = ObjectLayout::compute(&config, 8192, DataType::Int32, None).unwrap();
        let t = |kind| cost(&config, kind, DataType::Int32, &layout).time_ms;
        let eager_sa = t(OpKind::BinaryScalar(BinaryOp::Mul, 7)) + t(OpKind::Binary(BinaryOp::Add));
        assert!(t(OpKind::ScaledAdd(7)) < eager_sa);
        let eager_cs = t(OpKind::Cmp(CmpOp::Lt)) + t(OpKind::Select);
        assert!(t(OpKind::FusedCmpSelect(CmpOp::Lt)) < eager_cs);
    }

    #[test]
    fn redsum_includes_merge() {
        let config = cfg();
        let layout = ObjectLayout::compute(&config, 1 << 24, DataType::Int32, None).unwrap();
        let red = cost(&config, OpKind::RedSum, DataType::Int32, &layout);
        let merge = reduction_merge(&config, layout.cores_used);
        assert!(red.time_ms > merge.time_ms);
        assert!(merge.time_ms > 0.0);
    }
}
