//! The PIM device: the simulator's public API surface (§V-B).
//!
//! A [`Device`] owns the resource manager, the statistics engine, and the
//! functional state of every allocated object. Every API call validates
//! its operands, executes functionally (unless the device is in
//! model-only mode), charges the target's performance/energy model, and
//! updates the per-command statistics.

use pim_dram::exec;
use pim_microcode::gen::{BinaryOp, CmpOp};

use crate::config::{DeviceConfig, PimTarget, SimMode};
use crate::dtype::{DataType, PimScalar};
use crate::error::{PimError, Result};
use crate::model::{self, OpCost};
use crate::object::{ObjId, PimObject};
use crate::ops::OpKind;
use crate::resource::ResourceManager;
use crate::stats::SimStats;
use crate::trace::{
    CopyDirection, ProtocolCounters, TraceEvent, TraceSink, Tracer, DEFAULT_RECORDER_CAPACITY,
    PROTOCOL_REPLAY_MAX_ROWS,
};
use crate::{pim_debug, pim_info, pim_trace};

/// A simulated PIM device.
///
/// # Example
///
/// ```
/// use pimeval::{Device, PimTarget};
///
/// # fn main() -> Result<(), pimeval::PimError> {
/// let mut dev = Device::fulcrum(4)?;
/// let x = dev.alloc_vec(&[1i32, 2, 3, 4])?;
/// let y = dev.alloc_vec(&[10i32, 20, 30, 40])?;
/// let out = dev.alloc_associated(x, pimeval::DataType::Int32)?;
/// dev.add(x, y, out)?;
/// assert_eq!(dev.to_vec::<i32>(out)?, vec![11, 22, 33, 44]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Device {
    config: DeviceConfig,
    rm: ResourceManager,
    stats: SimStats,
    tracer: Tracer,
}

impl Device {
    /// Creates a device from a full configuration.
    ///
    /// # Errors
    ///
    /// [`PimError::InvalidArg`] if the DRAM geometry is degenerate.
    pub fn new(config: DeviceConfig) -> Result<Device> {
        config
            .geometry
            .validate()
            .map_err(|e| PimError::InvalidArg(e.to_string()))?;
        let rm = ResourceManager::new(config.rows_per_core(), config.physical_core_count() as u64);
        pim_info!(
            "device created: target={} cores={} ranks={}",
            config.target,
            config.core_count(),
            config.geometry.ranks
        );
        Ok(Device {
            config,
            rm,
            stats: SimStats::new(),
            tracer: Tracer::default(),
        })
    }

    /// Bit-serial (DRAM-AP) device with the paper's geometry.
    ///
    /// # Errors
    ///
    /// See [`Device::new`].
    pub fn bit_serial(ranks: usize) -> Result<Device> {
        Device::new(DeviceConfig::new(PimTarget::BitSerial, ranks))
    }

    /// Fulcrum device with the paper's geometry.
    ///
    /// # Errors
    ///
    /// See [`Device::new`].
    pub fn fulcrum(ranks: usize) -> Result<Device> {
        Device::new(DeviceConfig::new(PimTarget::Fulcrum, ranks))
    }

    /// Bank-level device with the paper's geometry.
    ///
    /// # Errors
    ///
    /// See [`Device::new`].
    pub fn bank_level(ranks: usize) -> Result<Device> {
        Device::new(DeviceConfig::new(PimTarget::BankLevel, ranks))
    }

    /// Analog bit-serial (Ambit/SIMDRAM-style TRA) device — the §IX
    /// extension target used by the digital-vs-analog ablation.
    ///
    /// # Errors
    ///
    /// See [`Device::new`].
    pub fn analog_bit_serial(ranks: usize) -> Result<Device> {
        Device::new(DeviceConfig::new(PimTarget::AnalogBitSerial, ranks))
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Clears all statistics (objects stay allocated).
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::new();
    }

    /// Renders the artifact-style statistics report.
    pub fn report(&self) -> String {
        self.stats.report(&self.config)
    }

    /// The "PIM-Info" banner the artifact prints at device creation
    /// (Listing 3 of the paper).
    pub fn info_banner(&self) -> String {
        let g = &self.config.geometry;
        format!(
            "PIM-Info: Simulation Target = {}
             PIM-Info: Config: #ranks = {}, #bankPerRank = {}, #subarrayPerBank = {},              #rowsPerSubarray = {}, #colsPerRow = {}
             PIM-Info: Created PIM device with {} cores of {} rows and {} columns.",
            self.config.target,
            g.ranks,
            g.banks_per_rank,
            g.subarrays_per_bank,
            g.rows_per_subarray,
            g.cols_per_row,
            self.config.core_count(),
            self.config.rows_per_core(),
            self.config.cols_per_core(),
        )
    }

    /// Adds modeled host-side execution time (PIM + Host benchmarks).
    pub fn record_host_ms(&mut self, ms: f64) {
        self.stats.record_host_ms(ms);
        if self.tracer.enabled() {
            let start_ms = self.tracer.advance(ms);
            self.tracer.emit(TraceEvent::HostPhase {
                start_ms,
                time_ms: ms,
            });
        }
    }

    // ------------------------------------------------------------------
    // Tracing
    // ------------------------------------------------------------------

    /// Enables timeline tracing into the built-in ring-buffer recorder
    /// (capacity [`DEFAULT_RECORDER_CAPACITY`] events). Collect the
    /// events with [`Device::take_trace`]. Tracing only *adds* events —
    /// statistics and functional results are unchanged.
    pub fn enable_tracing(&mut self) {
        self.enable_tracing_with_capacity(DEFAULT_RECORDER_CAPACITY);
    }

    /// Enables tracing with an explicit recorder capacity; once the ring
    /// fills, the oldest events are overwritten.
    pub fn enable_tracing_with_capacity(&mut self, capacity: usize) {
        self.tracer.install_recorder(capacity);
        self.emit_device_created();
    }

    /// Routes trace events into a custom [`TraceSink`] instead of the
    /// built-in recorder ([`Device::take_trace`] then returns nothing).
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.tracer.install_sink(sink);
        self.emit_device_created();
    }

    /// Disables tracing; subsequent events are discarded. The simulated
    /// clock keeps running so a re-enabled trace stays monotonic.
    pub fn disable_tracing(&mut self) {
        self.tracer.disable();
    }

    /// True if a trace sink is installed.
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// Drains the recorded trace, oldest event first. Empty when tracing
    /// is disabled or routed to a custom sink.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.tracer.take_events()
    }

    /// A copy of the recorded trace without draining it.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.tracer.events()
    }

    fn emit_device_created(&mut self) {
        let at_ms = self.tracer.clock_ms();
        self.tracer.emit(TraceEvent::DeviceCreated {
            at_ms,
            target: self.config.target.to_string(),
            cores: self.config.core_count(),
            ranks: self.config.geometry.ranks,
        });
    }

    /// Bounded DRAM protocol replay of one host↔device transfer: streams
    /// up to [`PROTOCOL_REPLAY_MAX_ROWS`] row-sized chunks of the copy
    /// through one rank's bank state machines.
    fn protocol_replay(&self, bytes: u64) -> ProtocolCounters {
        use pim_dram::protocol::{ProtocolTiming, RankSim};
        let g = &self.config.geometry;
        let row_bytes = (g.cols_per_row as u64 / 8).max(64);
        let bursts = (row_bytes / 64).max(1) as usize;
        let rows = bytes
            .div_ceil(row_bytes)
            .clamp(1, PROTOCOL_REPLAY_MAX_ROWS as u64) as usize;
        let mut sim = RankSim::new(
            ProtocolTiming::from_coarse(&self.config.timing),
            g.banks_per_rank,
        );
        let achieved_gbs = sim.stream_read_bandwidth(rows, bursts, 64).unwrap_or(0.0);
        let s = sim.stats();
        ProtocolCounters {
            activations: s.activations,
            reads: s.reads,
            writes: s.writes,
            precharges: s.precharges,
            row_hits: s.row_hits,
            achieved_gbs,
        }
    }

    // ------------------------------------------------------------------
    // Resource management
    // ------------------------------------------------------------------

    /// Allocates `count` elements of `dtype` (`pimAlloc` with
    /// `PIM_ALLOC_AUTO`).
    ///
    /// # Errors
    ///
    /// [`PimError::OutOfMemory`] or [`PimError::InvalidArg`].
    pub fn alloc(&mut self, count: u64, dtype: DataType) -> Result<ObjId> {
        let id = self.rm.alloc(&self.config, count, dtype, None)?;
        self.emit_alloc(id);
        Ok(id)
    }

    /// Allocates an object associated with `reference`
    /// (`pimAllocAssociated`): same element count, same core placement.
    ///
    /// # Errors
    ///
    /// [`PimError::UnknownObject`], [`PimError::OutOfMemory`].
    pub fn alloc_associated(&mut self, reference: ObjId, dtype: DataType) -> Result<ObjId> {
        let id = self.rm.alloc_associated(&self.config, reference, dtype)?;
        self.emit_alloc(id);
        Ok(id)
    }

    fn emit_alloc(&mut self, id: ObjId) {
        if let Ok(obj) = self.rm.get(id) {
            pim_debug!(
                "alloc {id}: {} x {} on {} cores",
                obj.count,
                obj.dtype,
                obj.layout.cores_used
            );
            if self.tracer.enabled() {
                let event = TraceEvent::Alloc {
                    at_ms: self.tracer.clock_ms(),
                    id: id.0,
                    count: obj.count,
                    dtype: obj.dtype.short_name().to_string(),
                    cores_used: obj.layout.cores_used,
                    rows_per_core: obj.layout.rows_per_core,
                };
                self.tracer.emit(event);
            }
        }
    }

    /// Allocates and initializes from a host slice in one call.
    ///
    /// # Errors
    ///
    /// As [`Device::alloc`] plus copy errors.
    pub fn alloc_vec<T: PimScalar>(&mut self, data: &[T]) -> Result<ObjId> {
        let id = self.alloc(data.len() as u64, T::DTYPE)?;
        self.copy_to_device(data, id)?;
        Ok(id)
    }

    /// Frees an object (`pimFree`).
    ///
    /// # Errors
    ///
    /// [`PimError::UnknownObject`].
    pub fn free(&mut self, id: ObjId) -> Result<()> {
        self.rm.free(id)?;
        pim_debug!("free {id}");
        if self.tracer.enabled() {
            let at_ms = self.tracer.clock_ms();
            self.tracer.emit(TraceEvent::Free { at_ms, id: id.0 });
        }
        Ok(())
    }

    /// Introspects a live object (layout, dtype, count).
    ///
    /// # Errors
    ///
    /// [`PimError::UnknownObject`].
    pub fn object(&self, id: ObjId) -> Result<&PimObject> {
        self.rm.get(id)
    }

    // ------------------------------------------------------------------
    // Data movement
    // ------------------------------------------------------------------

    fn charge_copy(&mut self, bytes: u64, direction: CopyDirection) {
        // Under decimation the functional buffer stands for `decimation`
        // times as much paper-scale data; charge transfer time/energy for
        // the represented bytes (recorded byte counts stay functional).
        let represented = bytes * self.config.decimation.max(1);
        let time_ms = self
            .config
            .timing
            .host_copy_ms(represented, self.config.geometry.ranks);
        let is_read = matches!(direction, CopyDirection::DeviceToHost);
        let energy_mj = self.config.power.transfer_energy_mj(time_ms, is_read);
        self.stats
            .record_copy(bytes, direction.code(), time_ms, energy_mj);
        pim_debug!(
            "copy {}: {bytes} bytes in {time_ms:.6} ms",
            direction.label()
        );
        if self.tracer.enabled() {
            let protocol = Some(self.protocol_replay(bytes));
            let start_ms = self.tracer.advance(time_ms);
            self.tracer.emit(TraceEvent::Copy {
                direction,
                bytes,
                start_ms,
                time_ms,
                energy_mj,
                protocol,
            });
        }
    }

    /// Copies host data into an object (`pimCopyHostToDevice`).
    ///
    /// # Errors
    ///
    /// [`PimError::CountMismatch`] if the slice length differs from the
    /// object's element count; [`PimError::DTypeMismatch`] if `T` does not
    /// match the object's dtype.
    pub fn copy_to_device<T: PimScalar>(&mut self, data: &[T], id: ObjId) -> Result<()> {
        let obj = self.rm.get(id)?;
        if data.len() as u64 != obj.count {
            return Err(PimError::CountMismatch {
                expected: obj.count,
                actual: data.len() as u64,
            });
        }
        if obj.dtype != T::DTYPE {
            return Err(PimError::DTypeMismatch {
                expected: obj.dtype,
                actual: T::DTYPE,
            });
        }
        let bytes = obj.bytes();
        let dtype = obj.dtype;
        if matches!(self.config.mode, SimMode::Functional) {
            // Single-pass packing: reuse the object's existing device
            // buffer when one is present (repeated uploads into the same
            // object — the aes/vgg setup pattern — allocate nothing) and
            // convert host elements in parallel.
            let mut buf = self.rm.get_mut(id)?.data.take().unwrap_or_default();
            buf.resize(data.len(), 0);
            exec::par_map_into(data, &mut buf, |v| dtype.truncate(v.to_device()));
            self.rm.get_mut(id)?.data = Some(buf);
        }
        self.charge_copy(bytes, CopyDirection::HostToDevice);
        Ok(())
    }

    /// Copies an object back to a host buffer (`pimCopyDeviceToHost`).
    ///
    /// # Errors
    ///
    /// As [`Device::copy_to_device`]; additionally
    /// [`PimError::NotSupported`] in model-only mode.
    pub fn copy_to_host<T: PimScalar>(&mut self, id: ObjId, out: &mut [T]) -> Result<()> {
        let obj = self.rm.get(id)?;
        if out.len() as u64 != obj.count {
            return Err(PimError::CountMismatch {
                expected: obj.count,
                actual: out.len() as u64,
            });
        }
        if obj.dtype != T::DTYPE {
            return Err(PimError::DTypeMismatch {
                expected: obj.dtype,
                actual: T::DTYPE,
            });
        }
        let bytes = obj.bytes();
        match &obj.data {
            Some(data) => exec::par_map_into(data, out, |&v| T::from_device(v)),
            None => {
                return Err(PimError::NotSupported(
                    "copy_to_host in model-only mode".into(),
                ))
            }
        }
        self.charge_copy(bytes, CopyDirection::DeviceToHost);
        Ok(())
    }

    /// Convenience: copies an object out into a fresh `Vec`.
    ///
    /// # Errors
    ///
    /// See [`Device::copy_to_host`].
    pub fn to_vec<T: PimScalar>(&mut self, id: ObjId) -> Result<Vec<T>> {
        let count = self.rm.get(id)?.count as usize;
        let mut out = vec![T::from_device(0); count];
        self.copy_to_host(id, &mut out)?;
        Ok(out)
    }

    /// Device-to-device copy (`pimCopyDeviceToDevice`).
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches as usual.
    pub fn copy_object(&mut self, src: ObjId, dst: ObjId) -> Result<()> {
        self.check_pair(src, dst)?;
        let bytes = self.rm.get(src)?.bytes();
        if matches!(self.config.mode, SimMode::Functional) {
            let data = self.rm.get(src)?.data.clone();
            self.rm.get_mut(dst)?.data = data;
        }
        self.charge_op(OpKind::Copy, dst)?;
        self.stats.record_copy(bytes, 2, 0.0, 0.0);
        if self.tracer.enabled() {
            let start_ms = self.tracer.clock_ms();
            self.tracer.emit(TraceEvent::Copy {
                direction: CopyDirection::DeviceToDevice,
                bytes,
                start_ms,
                time_ms: 0.0,
                energy_mj: 0.0,
                protocol: None,
            });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Internal plumbing
    // ------------------------------------------------------------------

    fn check_pair(&self, a: ObjId, b: ObjId) -> Result<()> {
        let (oa, ob) = (self.rm.get(a)?, self.rm.get(b)?);
        if oa.count != ob.count {
            return Err(PimError::CountMismatch {
                expected: oa.count,
                actual: ob.count,
            });
        }
        if oa.dtype != ob.dtype {
            return Err(PimError::DTypeMismatch {
                expected: oa.dtype,
                actual: ob.dtype,
            });
        }
        Ok(())
    }

    fn data(&self, id: ObjId) -> Result<Option<&[i64]>> {
        Ok(self.rm.get(id)?.data.as_deref())
    }

    fn charge_op(&mut self, kind: OpKind, costed_on: ObjId) -> Result<()> {
        let (dtype, layout) = {
            let obj = self.rm.get(costed_on)?;
            (obj.dtype, obj.layout)
        };
        let cost = model::op_cost(&self.config, kind, dtype, &layout);
        let name = kind.stat_name(dtype);
        pim_trace!(
            "cmd {name}: {:.6} ms on {} cores",
            cost.time_ms,
            layout.cores_used
        );
        if self.tracer.enabled() {
            let micro = model::micro_cost(&self.config, kind, dtype, &layout).map(Into::into);
            let start_ms = self.tracer.advance(cost.time_ms);
            self.tracer.emit(TraceEvent::Cmd {
                name: name.clone(),
                category: kind.category().label(),
                start_ms,
                time_ms: cost.time_ms,
                energy_mj: cost.energy_mj,
                cores_used: layout.cores_used,
                micro,
            });
        }
        self.stats
            .record_cmd(name, kind.category(), cost, layout.cores_used);
        Ok(())
    }

    fn apply2(
        &mut self,
        kind: OpKind,
        a: ObjId,
        b: ObjId,
        dst: ObjId,
        f: impl Fn(DataType, i64, i64) -> i64 + Sync,
    ) -> Result<()> {
        self.check_pair(a, b)?;
        self.check_pair(a, dst)?;
        if matches!(self.config.mode, SimMode::Functional) {
            let dtype = self.rm.get(a)?.dtype;
            let out = {
                let da = self.data(a)?.expect("functional object has data");
                let db = self.data(b)?.expect("functional object has data");
                exec::par_zip_map(da, db, |&x, &y| dtype.truncate(f(dtype, x, y)))
            };
            self.rm.get_mut(dst)?.data = Some(out);
        }
        self.charge_op(kind, dst)
    }

    fn apply1(
        &mut self,
        kind: OpKind,
        a: ObjId,
        dst: ObjId,
        f: impl Fn(DataType, i64) -> i64 + Sync,
    ) -> Result<()> {
        self.check_pair(a, dst)?;
        if matches!(self.config.mode, SimMode::Functional) {
            let dtype = self.rm.get(a)?.dtype;
            let out = {
                let da = self.data(a)?.expect("functional object has data");
                exec::par_map(da, |&x| dtype.truncate(f(dtype, x)))
            };
            self.rm.get_mut(dst)?.data = Some(out);
        }
        self.charge_op(kind, dst)
    }

    // ------------------------------------------------------------------
    // Element-wise arithmetic and logic
    // ------------------------------------------------------------------

    /// `dst = a + b` (wrapping).
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn add(&mut self, a: ObjId, b: ObjId, dst: ObjId) -> Result<()> {
        self.apply2(OpKind::Binary(BinaryOp::Add), a, b, dst, |_, x, y| {
            x.wrapping_add(y)
        })
    }

    /// `dst = a - b` (wrapping).
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn sub(&mut self, a: ObjId, b: ObjId, dst: ObjId) -> Result<()> {
        self.apply2(OpKind::Binary(BinaryOp::Sub), a, b, dst, |_, x, y| {
            x.wrapping_sub(y)
        })
    }

    /// `dst = a * b` (wrapping, low half).
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn mul(&mut self, a: ObjId, b: ObjId, dst: ObjId) -> Result<()> {
        self.apply2(OpKind::Binary(BinaryOp::Mul), a, b, dst, |_, x, y| {
            x.wrapping_mul(y)
        })
    }

    /// `dst = a & b`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn and(&mut self, a: ObjId, b: ObjId, dst: ObjId) -> Result<()> {
        self.apply2(OpKind::Binary(BinaryOp::And), a, b, dst, |_, x, y| x & y)
    }

    /// `dst = a | b`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn or(&mut self, a: ObjId, b: ObjId, dst: ObjId) -> Result<()> {
        self.apply2(OpKind::Binary(BinaryOp::Or), a, b, dst, |_, x, y| x | y)
    }

    /// `dst = a ^ b`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn xor(&mut self, a: ObjId, b: ObjId, dst: ObjId) -> Result<()> {
        self.apply2(OpKind::Binary(BinaryOp::Xor), a, b, dst, |_, x, y| x ^ y)
    }

    /// `dst = !(a ^ b)`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn xnor(&mut self, a: ObjId, b: ObjId, dst: ObjId) -> Result<()> {
        self.apply2(OpKind::Binary(BinaryOp::Xnor), a, b, dst, |_, x, y| {
            !(x ^ y)
        })
    }

    /// `dst = !a`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn not(&mut self, a: ObjId, dst: ObjId) -> Result<()> {
        self.apply1(OpKind::Not, a, dst, |_, x| !x)
    }

    /// `dst = |a|` (signed; wraps on the minimum value).
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn abs(&mut self, a: ObjId, dst: ObjId) -> Result<()> {
        self.apply1(OpKind::Abs, a, dst, |d, x| {
            if d.is_signed() {
                x.wrapping_abs()
            } else {
                x
            }
        })
    }

    /// `dst = min(a, b)` respecting signedness.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn min(&mut self, a: ObjId, b: ObjId, dst: ObjId) -> Result<()> {
        self.apply2(OpKind::Min, a, b, dst, |d, x, y| {
            if d.compare(x, y).is_lt() {
                x
            } else {
                y
            }
        })
    }

    /// `dst = max(a, b)` respecting signedness.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn max(&mut self, a: ObjId, b: ObjId, dst: ObjId) -> Result<()> {
        self.apply2(OpKind::Max, a, b, dst, |d, x, y| {
            if d.compare(x, y).is_gt() {
                x
            } else {
                y
            }
        })
    }

    // ------------------------------------------------------------------
    // Scalar variants
    // ------------------------------------------------------------------

    /// `dst = a + k`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn add_scalar(&mut self, a: ObjId, k: i64, dst: ObjId) -> Result<()> {
        self.apply1(
            OpKind::BinaryScalar(BinaryOp::Add, k),
            a,
            dst,
            move |_, x| x.wrapping_add(k),
        )
    }

    /// `dst = a - k`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn sub_scalar(&mut self, a: ObjId, k: i64, dst: ObjId) -> Result<()> {
        self.apply1(
            OpKind::BinaryScalar(BinaryOp::Sub, k),
            a,
            dst,
            move |_, x| x.wrapping_sub(k),
        )
    }

    /// `dst = a * k`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn mul_scalar(&mut self, a: ObjId, k: i64, dst: ObjId) -> Result<()> {
        self.apply1(
            OpKind::BinaryScalar(BinaryOp::Mul, k),
            a,
            dst,
            move |_, x| x.wrapping_mul(k),
        )
    }

    /// `dst = a & k`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn and_scalar(&mut self, a: ObjId, k: i64, dst: ObjId) -> Result<()> {
        self.apply1(
            OpKind::BinaryScalar(BinaryOp::And, k),
            a,
            dst,
            move |_, x| x & k,
        )
    }

    /// `dst = a | k`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn or_scalar(&mut self, a: ObjId, k: i64, dst: ObjId) -> Result<()> {
        self.apply1(
            OpKind::BinaryScalar(BinaryOp::Or, k),
            a,
            dst,
            move |_, x| x | k,
        )
    }

    /// `dst = a ^ k`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn xor_scalar(&mut self, a: ObjId, k: i64, dst: ObjId) -> Result<()> {
        self.apply1(
            OpKind::BinaryScalar(BinaryOp::Xor, k),
            a,
            dst,
            move |_, x| x ^ k,
        )
    }

    /// `dst = min(a, k)`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn min_scalar(&mut self, a: ObjId, k: i64, dst: ObjId) -> Result<()> {
        self.apply1(OpKind::MinScalar(k), a, dst, move |d, x| {
            let k = d.truncate(k);
            if d.compare(x, k).is_lt() {
                x
            } else {
                k
            }
        })
    }

    /// `dst = max(a, k)`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn max_scalar(&mut self, a: ObjId, k: i64, dst: ObjId) -> Result<()> {
        self.apply1(OpKind::MaxScalar(k), a, dst, move |d, x| {
            let k = d.truncate(k);
            if d.compare(x, k).is_gt() {
                x
            } else {
                k
            }
        })
    }

    /// `dst = a * k + b` (`pimScaledAdd`): lowered to a scalar multiply
    /// into an internal temporary followed by an addition, exactly as a
    /// runtime without a fused op would execute it.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects; out-of-memory for the
    /// temporary.
    pub fn scaled_add(&mut self, a: ObjId, b: ObjId, dst: ObjId, k: i64) -> Result<()> {
        let dtype = self.rm.get(a)?.dtype;
        let tmp = self.alloc_associated(a, dtype)?;
        let result = self
            .mul_scalar(a, k, tmp)
            .and_then(|()| self.add(tmp, b, dst));
        self.free(tmp)?;
        result
    }

    // ------------------------------------------------------------------
    // Comparisons and selection
    // ------------------------------------------------------------------

    /// `dst = (a < b) ? 1 : 0`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn lt(&mut self, a: ObjId, b: ObjId, dst: ObjId) -> Result<()> {
        self.apply2(OpKind::Cmp(CmpOp::Lt), a, b, dst, |d, x, y| {
            i64::from(d.compare(x, y).is_lt())
        })
    }

    /// `dst = (a > b) ? 1 : 0`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn gt(&mut self, a: ObjId, b: ObjId, dst: ObjId) -> Result<()> {
        self.apply2(OpKind::Cmp(CmpOp::Gt), a, b, dst, |d, x, y| {
            i64::from(d.compare(x, y).is_gt())
        })
    }

    /// `dst = (a == b) ? 1 : 0`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn eq(&mut self, a: ObjId, b: ObjId, dst: ObjId) -> Result<()> {
        self.apply2(OpKind::Cmp(CmpOp::Eq), a, b, dst, |_, x, y| {
            i64::from(x == y)
        })
    }

    /// `dst = (a < k) ? 1 : 0`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn lt_scalar(&mut self, a: ObjId, k: i64, dst: ObjId) -> Result<()> {
        self.apply1(OpKind::CmpScalar(CmpOp::Lt, k), a, dst, move |d, x| {
            i64::from(d.compare(x, d.truncate(k)).is_lt())
        })
    }

    /// `dst = (a > k) ? 1 : 0`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn gt_scalar(&mut self, a: ObjId, k: i64, dst: ObjId) -> Result<()> {
        self.apply1(OpKind::CmpScalar(CmpOp::Gt, k), a, dst, move |d, x| {
            i64::from(d.compare(x, d.truncate(k)).is_gt())
        })
    }

    /// `dst = (a == k) ? 1 : 0`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn eq_scalar(&mut self, a: ObjId, k: i64, dst: ObjId) -> Result<()> {
        self.apply1(OpKind::CmpScalar(CmpOp::Eq, k), a, dst, move |d, x| {
            i64::from(x == d.truncate(k))
        })
    }

    /// `dst = cond ? a : b` element-wise (non-zero condition selects `a`).
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches between `a`, `b`, `dst`; count mismatch for
    /// `cond`; unknown objects.
    pub fn select(&mut self, cond: ObjId, a: ObjId, b: ObjId, dst: ObjId) -> Result<()> {
        self.check_pair(a, b)?;
        self.check_pair(a, dst)?;
        let c_count = self.rm.get(cond)?.count;
        let a_count = self.rm.get(a)?.count;
        if c_count != a_count {
            return Err(PimError::CountMismatch {
                expected: a_count,
                actual: c_count,
            });
        }
        if matches!(self.config.mode, SimMode::Functional) {
            let dtype = self.rm.get(a)?.dtype;
            let out = {
                let dc = self.data(cond)?.expect("functional object has data");
                let da = self.data(a)?.expect("functional object has data");
                let db = self.data(b)?.expect("functional object has data");
                exec::par_zip3_map(dc, da, db, |&c, &x, &y| {
                    dtype.truncate(if c != 0 { x } else { y })
                })
            };
            self.rm.get_mut(dst)?.data = Some(out);
        }
        self.charge_op(OpKind::Select, dst)
    }

    // ------------------------------------------------------------------
    // Shifts, popcount, broadcast, reductions
    // ------------------------------------------------------------------

    /// `dst = a << k` (logical).
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn shift_left(&mut self, a: ObjId, k: u32, dst: ObjId) -> Result<()> {
        self.apply1(OpKind::ShiftL(k), a, dst, move |d, x| {
            let bits = d.bits();
            if k >= bits.min(64) {
                0
            } else {
                ((x as u64) << k) as i64
            }
        })
    }

    /// `dst = a >> k` — arithmetic for signed dtypes, logical otherwise.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn shift_right(&mut self, a: ObjId, k: u32, dst: ObjId) -> Result<()> {
        self.apply1(OpKind::ShiftR(k), a, dst, move |d, x| {
            let bits = d.bits();
            if d.is_signed() {
                // Canonical signed values are sign-extended i64s.
                x >> k.min(63)
            } else {
                let u = (x as u64) & pim_microcode::encode::mask(bits);
                if k >= 64 {
                    0
                } else {
                    (u >> k) as i64
                }
            }
        })
    }

    /// Per-element population count of the low `bits` of each element.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn popcount(&mut self, a: ObjId, dst: ObjId) -> Result<()> {
        self.apply1(OpKind::Popcount, a, dst, |d, x| {
            let u = (x as u64) & pim_microcode::encode::mask(d.bits());
            u.count_ones() as i64
        })
    }

    /// Fills every element of `dst` with `value` (`pimBroadcast`).
    ///
    /// # Errors
    ///
    /// Unknown object.
    pub fn broadcast(&mut self, dst: ObjId, value: i64) -> Result<()> {
        let (count, dtype) = {
            let obj = self.rm.get(dst)?;
            (obj.count, obj.dtype)
        };
        if matches!(self.config.mode, SimMode::Functional) {
            self.rm.get_mut(dst)?.data = Some(vec![dtype.truncate(value); count as usize]);
        }
        self.charge_op(OpKind::Broadcast(value), dst)
    }

    /// Reduction sum of all elements (`pimRedSum`). Unsigned dtypes sum
    /// their unsigned values. Returns 0 in model-only mode (documented
    /// limitation; the cost is still charged).
    ///
    /// # Errors
    ///
    /// Unknown object.
    pub fn red_sum(&mut self, a: ObjId) -> Result<i128> {
        let sum = match self.data(a)? {
            Some(data) => {
                let dtype = self.rm.get(a)?.dtype;
                Self::par_sum(data, dtype)
            }
            None => 0,
        };
        self.charge_op(OpKind::RedSum, a)?;
        Ok(sum)
    }

    /// Chunked parallel widening sum; per-chunk partials fold in chunk
    /// order (i128 addition is associative, so this is bit-identical to
    /// the sequential sum at every thread count).
    fn par_sum(data: &[i64], dtype: DataType) -> i128 {
        let signed = dtype.is_signed();
        let mask = pim_microcode::encode::mask(dtype.bits());
        exec::par_fold(
            data.len(),
            |r| {
                data[r]
                    .iter()
                    .map(|&v| {
                        if signed {
                            v as i128
                        } else {
                            ((v as u64) & mask) as i128
                        }
                    })
                    .sum::<i128>()
            },
            |x, y| x + y,
        )
        .unwrap_or(0)
    }

    /// Reduction minimum across all elements (`pimRedMin`), respecting
    /// signedness. Returns 0 in model-only mode.
    ///
    /// # Errors
    ///
    /// Unknown object.
    pub fn red_min(&mut self, a: ObjId) -> Result<i64> {
        let out = match self.data(a)? {
            Some(data) => {
                let dtype = self.rm.get(a)?.dtype;
                exec::par_fold(
                    data.len(),
                    |r| {
                        data[r]
                            .iter()
                            .copied()
                            .reduce(|x, y| if dtype.compare(x, y).is_le() { x } else { y })
                            .expect("chunks are non-empty")
                    },
                    |x, y| if dtype.compare(x, y).is_le() { x } else { y },
                )
            }
            None => None,
        };
        self.charge_op(OpKind::RedMin, a)?;
        Ok(out.unwrap_or(0))
    }

    /// Reduction maximum across all elements (`pimRedMax`), respecting
    /// signedness. Returns 0 in model-only mode.
    ///
    /// # Errors
    ///
    /// Unknown object.
    pub fn red_max(&mut self, a: ObjId) -> Result<i64> {
        let out = match self.data(a)? {
            Some(data) => {
                let dtype = self.rm.get(a)?.dtype;
                exec::par_fold(
                    data.len(),
                    |r| {
                        data[r]
                            .iter()
                            .copied()
                            .reduce(|x, y| if dtype.compare(x, y).is_ge() { x } else { y })
                            .expect("chunks are non-empty")
                    },
                    |x, y| if dtype.compare(x, y).is_ge() { x } else { y },
                )
            }
            None => None,
        };
        self.charge_op(OpKind::RedMax, a)?;
        Ok(out.unwrap_or(0))
    }

    /// Reduction sum over the element range `[start, end)`
    /// (`pimRedSumRanged`). Cost is the full reduction scaled by the
    /// fraction of elements covered (the sub-range still spans
    /// proportionally fewer stripes/rows).
    ///
    /// # Errors
    ///
    /// [`PimError::InvalidArg`] for an out-of-bounds or empty range.
    pub fn red_sum_range(&mut self, a: ObjId, start: u64, end: u64) -> Result<i128> {
        let (count, dtype, layout) = {
            let obj = self.rm.get(a)?;
            (obj.count, obj.dtype, obj.layout)
        };
        if start >= end || end > count {
            return Err(PimError::InvalidArg(format!(
                "red_sum_range [{start}, {end}) out of bounds for {count} elements"
            )));
        }
        let sum = match self.data(a)? {
            Some(data) => Self::par_sum(&data[start as usize..end as usize], dtype),
            None => 0,
        };
        let full = model::op_cost(&self.config, OpKind::RedSum, dtype, &layout);
        let frac = (end - start) as f64 / count as f64;
        let cost = OpCost {
            time_ms: full.time_ms * frac,
            energy_mj: full.energy_mj * frac,
        };
        let name = OpKind::RedSum.stat_name(dtype);
        if self.tracer.enabled() {
            let start_ms = self.tracer.advance(cost.time_ms);
            self.tracer.emit(TraceEvent::Cmd {
                name: name.clone(),
                category: OpKind::RedSum.category().label(),
                start_ms,
                time_ms: cost.time_ms,
                energy_mj: cost.energy_mj,
                cores_used: layout.cores_used,
                micro: None,
            });
        }
        self.stats
            .record_cmd(name, OpKind::RedSum.category(), cost, layout.cores_used);
        Ok(sum)
    }
}
