//! The PIM device: the simulator's public API surface (§V-B).
//!
//! A [`Device`] owns the statistics engine and a [`PimSystem`] — the
//! sharded execution substrate holding the resource catalog and the
//! functional state of every allocated object. Every API call validates
//! its operands, executes functionally (unless the device is in
//! model-only mode), charges the target's performance/energy model, and
//! updates the per-command statistics. With more than one shard
//! configured (see [`DeviceConfig::sharded_per_rank`]) each command is
//! split by the destination's shard map, run per shard, and
//! re-aggregated; cross-shard traffic is charged to the interconnect
//! ledger separately from kernel time.

use pim_microcode::gen::{BinaryOp, CmpOp};

use crate::cmd::{self, CmdValue, PimCommand};
use crate::config::{DeviceConfig, PimTarget, SimMode};
use crate::dtype::{DataType, PimScalar};
use crate::error::{PimError, Result};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::model::{self, OpCost};
use crate::object::{ObjId, PimObject};
use crate::ops::OpKind;
use crate::resource::ResourceManager;
use crate::stats::SimStats;
use crate::stream::{CommandStream, FlushSummary, PlacementPlan};
use crate::system::PimSystem;
use crate::trace::{
    CopyDirection, ProtocolCounters, TraceEvent, TraceSink, Tracer, DEFAULT_RECORDER_CAPACITY,
};
use crate::{pim_debug, pim_info, pim_trace};

/// A simulated PIM device.
///
/// # Example
///
/// ```
/// use pimeval::{Device, PimTarget};
///
/// # fn main() -> Result<(), pimeval::PimError> {
/// let mut dev = Device::fulcrum(4)?;
/// let x = dev.alloc_vec(&[1i32, 2, 3, 4])?;
/// let y = dev.alloc_vec(&[10i32, 20, 30, 40])?;
/// let out = dev.alloc_associated(x, pimeval::DataType::Int32)?;
/// dev.add(x, y, out)?;
/// assert_eq!(dev.to_vec::<i32>(out)?, vec![11, 22, 33, 44]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Device {
    config: DeviceConfig,
    system: PimSystem,
    stats: SimStats,
    tracer: Tracer,
    metrics: Option<Box<MetricsRegistry>>,
    last_plan: Option<PlacementPlan>,
}

impl Device {
    /// Creates a device from a full configuration.
    ///
    /// # Errors
    ///
    /// [`PimError::InvalidArg`] if the DRAM geometry is degenerate or
    /// its row capacity overflows `u64`.
    pub fn new(mut config: DeviceConfig) -> Result<Device> {
        config
            .geometry
            .validate()
            .map_err(|e| PimError::InvalidArg(e.to_string()))?;
        // `PIM_TIMING=analytical|fsm` overrides the configured timing
        // backend at device creation (unknown values are ignored).
        config.timing_backend = config.timing_backend.env_override();
        // `PIM_OPT=0|1|2` overrides the stream optimization level the
        // same way.
        config.opt = config.opt.env_override();
        let system = PimSystem::new(&config)?;
        pim_info!(
            "device created: target={} cores={} ranks={} shards={}",
            config.target,
            config.core_count(),
            config.geometry.ranks,
            system.shard_count()
        );
        let metrics = config
            .metrics
            .then(|| Box::new(MetricsRegistry::new(system.shard_count(), config.profile)));
        let mut dev = Device {
            config,
            system,
            stats: SimStats::new(),
            tracer: Tracer::default(),
            metrics,
            last_plan: None,
        };
        dev.sync_resources();
        Ok(dev)
    }

    /// Bit-serial (DRAM-AP) device with the paper's geometry.
    ///
    /// # Errors
    ///
    /// See [`Device::new`].
    pub fn bit_serial(ranks: usize) -> Result<Device> {
        Device::new(DeviceConfig::new(PimTarget::BitSerial, ranks))
    }

    /// Fulcrum device with the paper's geometry.
    ///
    /// # Errors
    ///
    /// See [`Device::new`].
    pub fn fulcrum(ranks: usize) -> Result<Device> {
        Device::new(DeviceConfig::new(PimTarget::Fulcrum, ranks))
    }

    /// Bank-level device with the paper's geometry.
    ///
    /// # Errors
    ///
    /// See [`Device::new`].
    pub fn bank_level(ranks: usize) -> Result<Device> {
        Device::new(DeviceConfig::new(PimTarget::BankLevel, ranks))
    }

    /// Analog bit-serial (Ambit/SIMDRAM-style TRA) device — the §IX
    /// extension target used by the digital-vs-analog ablation.
    ///
    /// # Errors
    ///
    /// See [`Device::new`].
    pub fn analog_bit_serial(ranks: usize) -> Result<Device> {
        Device::new(DeviceConfig::new(PimTarget::AnalogBitSerial, ranks))
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The sharded execution substrate: shard set, per-object shard
    /// maps, per-shard statistics sub-ledgers, and the interconnect
    /// model.
    pub fn system(&self) -> &PimSystem {
        &self.system
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Clears all statistics, including every shard sub-ledger (objects
    /// stay allocated; the resource snapshot is refreshed).
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::new();
        self.system.reset_shard_stats();
        self.sync_resources();
    }

    /// The timing backend actually in effect (after any `PIM_TIMING`
    /// environment override applied at construction).
    pub fn timing_backend(&self) -> pim_dram::TimingBackend {
        self.system.timing_backend()
    }

    /// Drains every shard's timing backend — closes all open rows and
    /// waits out every bank's recovery — and returns the longest
    /// per-shard drain time in milliseconds. A no-op (0.0) under the
    /// stateless analytical backend. Call at an epoch boundary when a
    /// kernel sequence should not carry open-row state into the next
    /// measurement window; the returned time is *not* charged to any
    /// ledger, so callers decide where it belongs.
    pub fn drain_timing(&mut self) -> f64 {
        self.system.drain_backends()
    }

    /// The metadata catalog (authoritative global layouts).
    fn rm(&self) -> &ResourceManager {
        self.system.meta()
    }

    /// Refreshes the resource snapshot in [`SimStats`] from the system.
    fn sync_resources(&mut self) {
        self.stats.resources = self.system.resource_stats();
    }

    /// Renders the artifact-style statistics report.
    pub fn report(&self) -> String {
        self.stats.report(&self.config)
    }

    /// The "PIM-Info" banner the artifact prints at device creation
    /// (Listing 3 of the paper).
    pub fn info_banner(&self) -> String {
        let g = &self.config.geometry;
        format!(
            "PIM-Info: Simulation Target = {}
             PIM-Info: Config: #ranks = {}, #bankPerRank = {}, #subarrayPerBank = {},              #rowsPerSubarray = {}, #colsPerRow = {}
             PIM-Info: Created PIM device with {} cores of {} rows and {} columns.",
            self.config.target,
            g.ranks,
            g.banks_per_rank,
            g.subarrays_per_bank,
            g.rows_per_subarray,
            g.cols_per_row,
            self.config.core_count(),
            self.config.rows_per_core(),
            self.config.cols_per_core(),
        )
    }

    /// Adds modeled host-side execution time (PIM + Host benchmarks).
    pub fn record_host_ms(&mut self, ms: f64) {
        self.stats.record_host_ms(ms);
        if let Some(m) = &mut self.metrics {
            m.record_host(ms);
        }
        if self.tracer.enabled() {
            let start_ms = self.tracer.advance(ms);
            self.tracer.emit(TraceEvent::HostPhase {
                start_ms,
                time_ms: ms,
            });
        }
    }

    // ------------------------------------------------------------------
    // Tracing
    // ------------------------------------------------------------------

    /// Enables timeline tracing into the built-in ring-buffer recorder
    /// (capacity [`DEFAULT_RECORDER_CAPACITY`] events). Collect the
    /// events with [`Device::take_trace`]. Tracing only *adds* events —
    /// statistics and functional results are unchanged.
    pub fn enable_tracing(&mut self) {
        self.enable_tracing_with_capacity(DEFAULT_RECORDER_CAPACITY);
    }

    /// Enables tracing with an explicit recorder capacity; once the ring
    /// fills, the oldest events are overwritten.
    pub fn enable_tracing_with_capacity(&mut self, capacity: usize) {
        self.tracer.install_recorder(capacity);
        self.emit_device_created();
    }

    /// Routes trace events into a custom [`TraceSink`] instead of the
    /// built-in recorder ([`Device::take_trace`] then returns nothing).
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.tracer.install_sink(sink);
        self.emit_device_created();
    }

    /// Disables tracing; subsequent events are discarded. The simulated
    /// clock keeps running so a re-enabled trace stays monotonic.
    pub fn disable_tracing(&mut self) {
        self.tracer.disable();
    }

    /// True if a trace sink is installed.
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// Drains the recorded trace, oldest event first. Empty when tracing
    /// is disabled or routed to a custom sink.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.tracer.take_events()
    }

    /// A copy of the recorded trace without draining it.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.tracer.events()
    }

    // ------------------------------------------------------------------
    // Metrics
    // ------------------------------------------------------------------

    /// Enables the metrics registry on an already-created device (see
    /// [`DeviceConfig::with_metrics`] for enabling at construction).
    /// With `profile` the registry additionally retains occupancy spans
    /// for the time-binned utilization series. Replaces any existing
    /// registry, so instruments restart from zero.
    pub fn enable_metrics(&mut self, profile: bool) {
        self.metrics = Some(Box::new(MetricsRegistry::new(
            self.system.shard_count(),
            profile,
        )));
    }

    /// True when a metrics registry is recording.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics.is_some()
    }

    /// Freezes the metrics registry into a [`MetricsSnapshot`] (see
    /// [`MetricsRegistry::snapshot`] for the deterministic-merge
    /// contract). `None` when metrics are disabled. The snapshot also
    /// carries the tracer's dropped-event count.
    pub fn metrics_snapshot(&mut self) -> Option<MetricsSnapshot> {
        let dropped = self.tracer.dropped();
        let shards = self.system.shards();
        let m = self.metrics.as_mut()?;
        if dropped > 0 {
            m.record_trace_dropped(dropped);
        }
        // Summarize each shard sub-ledger's kernel-busy share of the
        // run (modeled quantities, so this stays deterministic).
        if shards.len() > 1 {
            let window = m.clock_ms();
            for (i, shard) in shards.iter().enumerate() {
                let frac = shard.stats().busy_fraction(window);
                if let Some(set) = m.shard_instruments(i) {
                    set.gauge_set("kernel_busy_fraction", frac);
                }
            }
        }
        Some(m.snapshot())
    }

    /// Events the ring-buffer trace recorder has overwritten so far (0
    /// when tracing is off or routed to a custom sink).
    pub fn trace_dropped(&self) -> u64 {
        self.tracer.dropped()
    }

    fn emit_device_created(&mut self) {
        let at_ms = self.tracer.clock_ms();
        self.tracer.emit(TraceEvent::DeviceCreated {
            at_ms,
            target: self.config.target.to_string(),
            cores: self.config.core_count(),
            ranks: self.config.geometry.ranks,
        });
    }

    // ------------------------------------------------------------------
    // Resource management
    // ------------------------------------------------------------------

    /// Allocates `count` elements of `dtype` (`pimAlloc` with
    /// `PIM_ALLOC_AUTO`).
    ///
    /// # Errors
    ///
    /// [`PimError::OutOfMemory`] or [`PimError::InvalidArg`].
    pub fn alloc(&mut self, count: u64, dtype: DataType) -> Result<ObjId> {
        let id = self.system.alloc(&self.config, count, dtype, None)?;
        self.emit_alloc(id);
        self.sync_resources();
        Ok(id)
    }

    /// Allocates an object associated with `reference`
    /// (`pimAllocAssociated`): same element count, same core placement —
    /// and, under sharding, the same shard map.
    ///
    /// # Errors
    ///
    /// [`PimError::UnknownObject`], [`PimError::OutOfMemory`].
    pub fn alloc_associated(&mut self, reference: ObjId, dtype: DataType) -> Result<ObjId> {
        let (count, cores) = {
            let obj = self.rm().get(reference)?;
            (obj.count, obj.layout.cores_used)
        };
        let id = self.system.alloc(&self.config, count, dtype, Some(cores))?;
        self.emit_alloc(id);
        self.sync_resources();
        Ok(id)
    }

    fn emit_alloc(&mut self, id: ObjId) {
        if let Ok(obj) = self.rm().get(id) {
            pim_debug!(
                "alloc {id}: {} x {} on {} cores",
                obj.count,
                obj.dtype,
                obj.layout.cores_used
            );
            if self.tracer.enabled() {
                let event = TraceEvent::Alloc {
                    at_ms: self.tracer.clock_ms(),
                    id: id.0,
                    count: obj.count,
                    dtype: obj.dtype.short_name().to_string(),
                    cores_used: obj.layout.cores_used,
                    rows_per_core: obj.layout.rows_per_core,
                };
                self.tracer.emit(event);
            }
        }
    }

    /// Allocates and initializes from a host slice in one call.
    ///
    /// # Errors
    ///
    /// As [`Device::alloc`] plus copy errors.
    pub fn alloc_vec<T: PimScalar>(&mut self, data: &[T]) -> Result<ObjId> {
        let id = self.alloc(data.len() as u64, T::DTYPE)?;
        self.copy_to_device(data, id)?;
        Ok(id)
    }

    /// Frees an object (`pimFree`).
    ///
    /// # Errors
    ///
    /// [`PimError::UnknownObject`].
    pub fn free(&mut self, id: ObjId) -> Result<()> {
        self.system.free(id)?;
        self.sync_resources();
        pim_debug!("free {id}");
        if self.tracer.enabled() {
            let at_ms = self.tracer.clock_ms();
            self.tracer.emit(TraceEvent::Free { at_ms, id: id.0 });
        }
        Ok(())
    }

    /// Introspects a live object (layout, dtype, count).
    ///
    /// # Errors
    ///
    /// [`PimError::UnknownObject`].
    pub fn object(&self, id: ObjId) -> Result<&PimObject> {
        self.rm().get(id)
    }

    // ------------------------------------------------------------------
    // Data movement
    // ------------------------------------------------------------------

    fn charge_copy(&mut self, obj: ObjId, bytes: u64, direction: CopyDirection) {
        // Under decimation the functional buffer stands for `decimation`
        // times as much paper-scale data; charge transfer time/energy for
        // the represented bytes (recorded byte counts stay functional).
        let represented = bytes * self.config.decimation.max(1);
        let (time_ms, replay, delta) = self.system.charge_copy_with_backends(
            obj,
            represented,
            bytes,
            self.config.geometry.ranks,
            self.tracer.enabled(),
        );
        if !delta.is_empty() {
            self.stats.record_protocol(&delta);
        }
        let is_read = matches!(direction, CopyDirection::DeviceToHost);
        let energy_mj = self.config.power.transfer_energy_mj(time_ms, is_read);
        self.stats
            .record_copy(bytes, direction.code(), time_ms, energy_mj);
        self.system
            .distribute_copy(obj, direction.code(), bytes, time_ms, energy_mj);
        if let Some(m) = &mut self.metrics {
            m.record_copy(direction.label(), bytes, time_ms, energy_mj);
        }
        pim_debug!(
            "copy {}: {bytes} bytes in {time_ms:.6} ms",
            direction.label()
        );
        if self.tracer.enabled() {
            let protocol = replay.map(ProtocolCounters::from);
            let start_ms = self.tracer.advance(time_ms);
            self.tracer.emit(TraceEvent::Copy {
                direction,
                bytes,
                start_ms,
                time_ms,
                energy_mj,
                protocol,
            });
        }
    }

    /// Charges cross-shard interconnect traffic: time for the critical
    /// path (busiest channel), energy for the total bytes. A no-op with
    /// one shard or zero bytes, so single-shard runs are bit-identical
    /// to the pre-sharding device. Interconnect cost is tracked
    /// separately from kernel/copy time and never advances the
    /// simulated clock.
    fn charge_interconnect(&mut self, kind: &'static str, max_bytes: u64, total_bytes: u64) {
        if self.system.shard_count() <= 1 || total_bytes == 0 {
            return;
        }
        // As with copies, decimated runs charge the represented bytes.
        let decim = self.config.decimation.max(1);
        let (max_b, tot_b) = (max_bytes * decim, total_bytes * decim);
        let time_ms = self.system.interconnect().transfer_ms(max_b);
        let energy_mj = self.system.interconnect().energy_mj(tot_b);
        let ic = &mut self.stats.interconnect;
        match kind {
            "scatter" => ic.scatter_bytes += tot_b,
            "gather" => ic.gather_bytes += tot_b,
            "realign" => ic.realign_bytes += tot_b,
            _ => ic.combine_bytes += tot_b,
        }
        ic.transfers += 1;
        ic.time_ms += time_ms;
        ic.energy_mj += energy_mj;
        if let Some(m) = &mut self.metrics {
            m.record_interconnect(kind, tot_b, time_ms, energy_mj);
        }
        if self.tracer.enabled() {
            let at_ms = self.tracer.clock_ms();
            self.tracer.emit(TraceEvent::Interconnect {
                kind,
                bytes: tot_b,
                shards: self.system.shard_count(),
                at_ms,
                time_ms,
                energy_mj,
            });
        }
    }

    /// Copies host data into an object (`pimCopyHostToDevice`).
    ///
    /// # Errors
    ///
    /// [`PimError::CountMismatch`] if the slice length differs from the
    /// object's element count; [`PimError::DTypeMismatch`] if `T` does not
    /// match the object's dtype.
    pub fn copy_to_device<T: PimScalar>(&mut self, data: &[T], id: ObjId) -> Result<()> {
        let obj = self.rm().get(id)?;
        if data.len() as u64 != obj.count {
            return Err(PimError::CountMismatch {
                expected: obj.count,
                actual: data.len() as u64,
            });
        }
        if obj.dtype != T::DTYPE {
            return Err(PimError::DTypeMismatch {
                expected: obj.dtype,
                actual: T::DTYPE,
            });
        }
        let bytes = obj.bytes();
        let dtype = obj.dtype;
        self.system.scatter_to_device(data, id, dtype)?;
        self.charge_copy(id, bytes, CopyDirection::HostToDevice);
        let (max_b, tot_b) = self.system.shard_byte_split(id);
        self.charge_interconnect("scatter", max_b, tot_b);
        Ok(())
    }

    /// Copies an object back to a host buffer (`pimCopyDeviceToHost`).
    ///
    /// # Errors
    ///
    /// As [`Device::copy_to_device`]; additionally
    /// [`PimError::NotSupported`] in model-only mode.
    pub fn copy_to_host<T: PimScalar>(&mut self, id: ObjId, out: &mut [T]) -> Result<()> {
        let obj = self.rm().get(id)?;
        if out.len() as u64 != obj.count {
            return Err(PimError::CountMismatch {
                expected: obj.count,
                actual: out.len() as u64,
            });
        }
        if obj.dtype != T::DTYPE {
            return Err(PimError::DTypeMismatch {
                expected: obj.dtype,
                actual: T::DTYPE,
            });
        }
        let bytes = obj.bytes();
        self.system.gather_to_host(id, out)?;
        self.charge_copy(id, bytes, CopyDirection::DeviceToHost);
        let (max_b, tot_b) = self.system.shard_byte_split(id);
        self.charge_interconnect("gather", max_b, tot_b);
        Ok(())
    }

    /// Convenience: copies an object out into a fresh `Vec`.
    ///
    /// # Errors
    ///
    /// See [`Device::copy_to_host`].
    pub fn to_vec<T: PimScalar>(&mut self, id: ObjId) -> Result<Vec<T>> {
        let count = self.rm().get(id)?.count as usize;
        let mut out = vec![T::from_device(0); count];
        self.copy_to_host(id, &mut out)?;
        Ok(out)
    }

    /// Device-to-device copy (`pimCopyDeviceToDevice`).
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches as usual.
    pub fn copy_object(&mut self, src: ObjId, dst: ObjId) -> Result<()> {
        self.issue(PimCommand::copy(src, dst))?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Internal plumbing
    // ------------------------------------------------------------------

    fn check_pair(&self, a: ObjId, b: ObjId) -> Result<()> {
        let (oa, ob) = (self.rm().get(a)?, self.rm().get(b)?);
        if oa.count != ob.count {
            return Err(PimError::CountMismatch {
                expected: oa.count,
                actual: ob.count,
            });
        }
        if oa.dtype != ob.dtype {
            return Err(PimError::DTypeMismatch {
                expected: oa.dtype,
                actual: ob.dtype,
            });
        }
        Ok(())
    }

    fn charge_op(&mut self, kind: OpKind, costed_on: ObjId) -> Result<()> {
        let (dtype, layout) = {
            let obj = self.rm().get(costed_on)?;
            (obj.dtype, obj.layout)
        };
        let config = &self.config;
        let (cost, delta) = self.system.price_with_backends(costed_on, |tm| {
            model::op_cost_with(config, tm, kind, dtype, &layout)
        });
        if !delta.is_empty() {
            self.stats.record_protocol(&delta);
        }
        let name = kind.stat_name(dtype);
        pim_trace!(
            "cmd {name}: {:.6} ms on {} cores",
            cost.time_ms,
            layout.cores_used
        );
        if self.tracer.enabled() {
            let micro = model::micro_cost(&self.config, kind, dtype, &layout).map(Into::into);
            let start_ms = self.tracer.advance(cost.time_ms);
            self.tracer.emit(TraceEvent::Cmd {
                name: name.clone(),
                category: kind.category().label(),
                start_ms,
                time_ms: cost.time_ms,
                energy_mj: cost.energy_mj,
                cores_used: layout.cores_used,
                micro,
            });
        }
        if let Some(m) = &mut self.metrics {
            let shares = self.system.shard_time_shares(costed_on, cost.time_ms);
            m.record_cmd(
                &name,
                kind.category().label(),
                cost.time_ms,
                cost.energy_mj,
                &shares,
            );
        }
        self.system
            .distribute_cmd(costed_on, &name, kind.category(), cost);
        self.stats
            .record_cmd(name, kind.category(), cost, layout.cores_used);
        Ok(())
    }

    // ------------------------------------------------------------------
    // The command choke point
    // ------------------------------------------------------------------

    /// Validates, executes, and charges one [`PimCommand`] — the single
    /// path every device operation funnels through. The eager `add`/
    /// `mul`/… methods are thin wrappers over this.
    ///
    /// # Example
    ///
    /// ```
    /// use pimeval::{cmd::PimCommand, Device};
    /// use pimeval::pim_microcode::gen::BinaryOp;
    ///
    /// # fn main() -> Result<(), pimeval::PimError> {
    /// let mut dev = Device::fulcrum(1)?;
    /// let a = dev.alloc_vec(&[1i32, 2, 3])?;
    /// let b = dev.alloc_vec(&[4i32, 5, 6])?;
    /// let out = dev.alloc_associated(a, pimeval::DataType::Int32)?;
    /// dev.issue(PimCommand::elementwise2(
    ///     pimeval::OpKind::Binary(BinaryOp::Add),
    ///     a,
    ///     b,
    ///     out,
    /// ))?;
    /// assert_eq!(dev.to_vec::<i32>(out)?, vec![5, 7, 9]);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Validation errors (arity, unknown objects, count/dtype mismatches,
    /// layout requirements) before anything executes.
    pub fn issue(&mut self, command: PimCommand) -> Result<CmdValue> {
        self.validate_cmd(&command)?;
        let value = self.exec_cmd(&command)?;
        self.charge_cmd(&command)?;
        Ok(value)
    }

    /// Opens a deferred [`CommandStream`] on this device. Recorded
    /// commands run at [`CommandStream::flush`], after the configured
    /// [`crate::OptLevel`]'s optimization pipeline (fusion, dead-write
    /// elimination, CSE, batching).
    pub fn stream(&mut self) -> CommandStream<'_> {
        CommandStream::new(self)
    }

    /// The placement plan computed by the most recent level-2 stream
    /// flush, if any. Advisory: execution stayed on the configured
    /// target; the plan reports what a cost-driven cross-substrate
    /// mapper would have chosen.
    pub fn placement_plan(&self) -> Option<&PlacementPlan> {
        self.last_plan.as_ref()
    }

    pub(crate) fn set_placement_plan(&mut self, plan: PlacementPlan) {
        self.last_plan = Some(plan);
    }

    /// Checks a command's shape against its [`OpKind`] contract and its
    /// operands against each other, in the same order the eager methods
    /// historically reported errors; finally asks the target model to
    /// validate layout requirements on the costed object.
    pub(crate) fn validate_cmd(&self, command: &PimCommand) -> Result<()> {
        let kind = command.kind;
        if command.inputs.len() != kind.input_operands() as usize {
            return Err(PimError::InvalidArg(format!(
                "{kind:?} takes {} input(s), got {}",
                kind.input_operands(),
                command.inputs.len()
            )));
        }
        if command.dst.is_some() != kind.writes_output() {
            return Err(PimError::InvalidArg(format!(
                "{kind:?} {} a destination",
                if kind.writes_output() {
                    "requires"
                } else {
                    "does not take"
                }
            )));
        }
        match kind {
            OpKind::Select => {
                let (cond, a) = (command.inputs[0], command.inputs[1]);
                self.check_pair(a, command.inputs[2])?;
                self.check_pair(a, command.dst.expect("checked above"))?;
                let c_count = self.rm().get(cond)?.count;
                let a_count = self.rm().get(a)?.count;
                if c_count != a_count {
                    return Err(PimError::CountMismatch {
                        expected: a_count,
                        actual: c_count,
                    });
                }
            }
            OpKind::FusedCmpSelect(_) => {
                let (a, x) = (command.inputs[0], command.inputs[2]);
                self.check_pair(a, command.inputs[1])?;
                self.check_pair(x, command.inputs[3])?;
                self.check_pair(x, command.dst.expect("checked above"))?;
                self.check_pair(a, x)?;
            }
            OpKind::Broadcast(_) => {
                self.rm().get(command.dst.expect("checked above"))?;
            }
            OpKind::RedSum | OpKind::RedMin | OpKind::RedMax => {
                self.rm().get(command.inputs[0])?;
            }
            _ if command.inputs.len() == 2 => {
                self.check_pair(command.inputs[0], command.inputs[1])?;
                self.check_pair(command.inputs[0], command.dst.expect("checked above"))?;
            }
            _ => {
                self.check_pair(command.inputs[0], command.dst.expect("checked above"))?;
            }
        }
        let costed = command.dst.unwrap_or_else(|| command.inputs[0]);
        let obj = self.rm().get(costed)?;
        model::target_model(self.config.target).validate(kind, obj.dtype, &obj.layout)
    }

    /// Runs a validated command's functional semantics (a no-op for
    /// element-wise data in model-only mode), split across shards by
    /// the destination's shard map. Reductions combine per-shard
    /// partials in ascending global element order; operands whose map
    /// differs from the destination's are realigned through the
    /// interconnect first.
    pub(crate) fn exec_cmd(&mut self, command: &PimCommand) -> Result<CmdValue> {
        match command.kind {
            OpKind::RedSum => {
                let a = command.inputs[0];
                let dtype = self.rm().get(a)?.dtype;
                Ok(CmdValue::Wide(self.system.red_sum(a, dtype)?))
            }
            OpKind::RedMin | OpKind::RedMax => {
                let a = command.inputs[0];
                let dtype = self.rm().get(a)?.dtype;
                let want_min = command.kind == OpKind::RedMin;
                Ok(CmdValue::Int(self.system.red_extreme(a, dtype, want_min)?))
            }
            OpKind::Copy => {
                let src = command.inputs[0];
                let dst = command.dst.expect("copy writes");
                let realigned = self.system.copy_data(src, dst)?;
                self.charge_interconnect("realign", realigned, realigned);
                Ok(CmdValue::Unit)
            }
            OpKind::Broadcast(value) => {
                let dst = command.dst.expect("broadcast writes");
                let dtype = self.rm().get(dst)?.dtype;
                self.system.broadcast_value(dst, value, dtype)?;
                Ok(CmdValue::Unit)
            }
            kind => {
                let dst = command.dst.expect("element-wise commands write");
                let dtype = self.rm().get(dst)?.dtype;
                let realigned = self
                    .system
                    .exec_elementwise(kind, dtype, &command.inputs, dst)?;
                self.charge_interconnect("realign", realigned, realigned);
                Ok(CmdValue::Unit)
            }
        }
    }

    /// Charges a validated command to the cost model, the statistics
    /// engine, and the trace.
    pub(crate) fn charge_cmd(&mut self, command: &PimCommand) -> Result<()> {
        let costed = command.dst.unwrap_or_else(|| command.inputs[0]);
        self.charge_op(command.kind, costed)?;
        if command.kind == OpKind::Copy {
            let bytes = self.rm().get(command.inputs[0])?.bytes();
            self.stats.record_copy(bytes, 2, 0.0, 0.0);
            self.system
                .distribute_copy(command.inputs[0], 2, bytes, 0.0, 0.0);
            if let Some(m) = &mut self.metrics {
                m.record_copy(CopyDirection::DeviceToDevice.label(), bytes, 0.0, 0.0);
            }
            if self.tracer.enabled() {
                let start_ms = self.tracer.clock_ms();
                self.tracer.emit(TraceEvent::Copy {
                    direction: CopyDirection::DeviceToDevice,
                    bytes,
                    start_ms,
                    time_ms: 0.0,
                    energy_mj: 0.0,
                    protocol: None,
                });
            }
        }
        if matches!(
            command.kind,
            OpKind::RedSum | OpKind::RedMin | OpKind::RedMax
        ) && self.system.shard_count() > 1
        {
            // Each shard ships one reduction partial to the host for
            // the final combine.
            let dtype = self.rm().get(command.inputs[0])?.dtype;
            let per = (dtype.bits() as u64 / 8).max(1);
            let total = self.system.shard_count() as u64 * per;
            self.charge_interconnect("combine", per, total);
        }
        Ok(())
    }

    /// Functionally executes a run of same-length validated commands in
    /// one parallel sweep: each shard walks its element ranges once,
    /// applying every command's per-element semantics in program order
    /// against chunk-local intermediate buffers, then the chunk results
    /// are stitched back into the destination objects. Bit-identical to
    /// executing the commands one by one (same per-element order, same
    /// truncation), but the operands stream through the cache once.
    ///
    /// Requires every touched object to share the destination's shard
    /// map; mixed-map runs (the batcher groups by element count only)
    /// fall back to per-command execution.
    pub(crate) fn exec_batch(&mut self, commands: &[PimCommand]) -> Result<()> {
        if !matches!(self.config.mode, SimMode::Functional) {
            return Ok(());
        }
        let (slots, steps) = cmd::batch_plan(commands, |id| {
            self.rm()
                .get(id)
                .expect("batched commands are validated")
                .dtype
        });
        let dst0 = commands[0].dst.expect("batched commands write");
        if !self.system.maps_equal(&slots, dst0) {
            for command in commands {
                self.exec_cmd(command)?;
            }
            return Ok(());
        }
        self.system.exec_batch(&slots, &steps, dst0)
    }

    /// Accumulates one flush's counters into [`SimStats`] and emits the
    /// stream-flush trace instant.
    pub(crate) fn finish_flush(&mut self, summary: &FlushSummary) {
        let f = &mut self.stats.fusion;
        f.flushes += 1;
        f.recorded_commands += summary.recorded;
        f.executed_commands += summary.executed;
        f.fused_scaled_add += summary.fused_scaled_add;
        f.fused_cmp_select += summary.fused_cmp_select;
        f.dead_writes_eliminated += summary.dead_writes_eliminated;
        f.batched_sweeps += summary.batched_sweeps;
        f.batched_commands += summary.batched_commands;
        let o = &mut self.stats.optimizer;
        o.cse_hits += summary.cse_hits;
        o.dead_objects_removed += summary.dead_objects_removed;
        o.subgraphs += summary.subgraphs;
        o.target_switches += summary.target_switches;
        o.inferred_layouts += summary.inferred_layouts;
        if let Some(m) = &mut self.metrics {
            m.record_flush();
        }
        pim_debug!(
            "stream flush: {} recorded -> {} executed ({} fused, {} dead)",
            summary.recorded,
            summary.executed,
            summary.fused_scaled_add + summary.fused_cmp_select,
            summary.dead_writes_eliminated
        );
        if self.tracer.enabled() {
            let at_ms = self.tracer.clock_ms();
            self.tracer.emit(TraceEvent::StreamFlush {
                at_ms,
                recorded: summary.recorded,
                executed: summary.executed,
                fused_scaled_add: summary.fused_scaled_add,
                fused_cmp_select: summary.fused_cmp_select,
                dead_writes_eliminated: summary.dead_writes_eliminated,
                batched_sweeps: summary.batched_sweeps,
            });
        }
    }

    // ------------------------------------------------------------------
    // Element-wise arithmetic and logic (thin wrappers over `issue`)
    // ------------------------------------------------------------------

    /// `dst = a + b` (wrapping).
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn add(&mut self, a: ObjId, b: ObjId, dst: ObjId) -> Result<()> {
        self.issue2(OpKind::Binary(BinaryOp::Add), a, b, dst)
    }

    /// `dst = a - b` (wrapping).
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn sub(&mut self, a: ObjId, b: ObjId, dst: ObjId) -> Result<()> {
        self.issue2(OpKind::Binary(BinaryOp::Sub), a, b, dst)
    }

    /// `dst = a * b` (wrapping, low half).
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn mul(&mut self, a: ObjId, b: ObjId, dst: ObjId) -> Result<()> {
        self.issue2(OpKind::Binary(BinaryOp::Mul), a, b, dst)
    }

    /// `dst = a & b`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn and(&mut self, a: ObjId, b: ObjId, dst: ObjId) -> Result<()> {
        self.issue2(OpKind::Binary(BinaryOp::And), a, b, dst)
    }

    /// `dst = a | b`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn or(&mut self, a: ObjId, b: ObjId, dst: ObjId) -> Result<()> {
        self.issue2(OpKind::Binary(BinaryOp::Or), a, b, dst)
    }

    /// `dst = a ^ b`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn xor(&mut self, a: ObjId, b: ObjId, dst: ObjId) -> Result<()> {
        self.issue2(OpKind::Binary(BinaryOp::Xor), a, b, dst)
    }

    /// `dst = !(a ^ b)`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn xnor(&mut self, a: ObjId, b: ObjId, dst: ObjId) -> Result<()> {
        self.issue2(OpKind::Binary(BinaryOp::Xnor), a, b, dst)
    }

    /// `dst = !a`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn not(&mut self, a: ObjId, dst: ObjId) -> Result<()> {
        self.issue1(OpKind::Not, a, dst)
    }

    /// `dst = |a|` (signed; wraps on the minimum value).
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn abs(&mut self, a: ObjId, dst: ObjId) -> Result<()> {
        self.issue1(OpKind::Abs, a, dst)
    }

    /// `dst = min(a, b)` respecting signedness.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn min(&mut self, a: ObjId, b: ObjId, dst: ObjId) -> Result<()> {
        self.issue2(OpKind::Min, a, b, dst)
    }

    /// `dst = max(a, b)` respecting signedness.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn max(&mut self, a: ObjId, b: ObjId, dst: ObjId) -> Result<()> {
        self.issue2(OpKind::Max, a, b, dst)
    }

    fn issue1(&mut self, kind: OpKind, a: ObjId, dst: ObjId) -> Result<()> {
        self.issue(PimCommand::elementwise1(kind, a, dst))?;
        Ok(())
    }

    fn issue2(&mut self, kind: OpKind, a: ObjId, b: ObjId, dst: ObjId) -> Result<()> {
        self.issue(PimCommand::elementwise2(kind, a, b, dst))?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Scalar variants
    // ------------------------------------------------------------------

    /// `dst = a + k`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn add_scalar(&mut self, a: ObjId, k: i64, dst: ObjId) -> Result<()> {
        self.issue1(OpKind::BinaryScalar(BinaryOp::Add, k), a, dst)
    }

    /// `dst = a - k`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn sub_scalar(&mut self, a: ObjId, k: i64, dst: ObjId) -> Result<()> {
        self.issue1(OpKind::BinaryScalar(BinaryOp::Sub, k), a, dst)
    }

    /// `dst = a * k`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn mul_scalar(&mut self, a: ObjId, k: i64, dst: ObjId) -> Result<()> {
        self.issue1(OpKind::BinaryScalar(BinaryOp::Mul, k), a, dst)
    }

    /// `dst = a & k`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn and_scalar(&mut self, a: ObjId, k: i64, dst: ObjId) -> Result<()> {
        self.issue1(OpKind::BinaryScalar(BinaryOp::And, k), a, dst)
    }

    /// `dst = a | k`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn or_scalar(&mut self, a: ObjId, k: i64, dst: ObjId) -> Result<()> {
        self.issue1(OpKind::BinaryScalar(BinaryOp::Or, k), a, dst)
    }

    /// `dst = a ^ k`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn xor_scalar(&mut self, a: ObjId, k: i64, dst: ObjId) -> Result<()> {
        self.issue1(OpKind::BinaryScalar(BinaryOp::Xor, k), a, dst)
    }

    /// `dst = min(a, k)`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn min_scalar(&mut self, a: ObjId, k: i64, dst: ObjId) -> Result<()> {
        self.issue1(OpKind::MinScalar(k), a, dst)
    }

    /// `dst = max(a, k)`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn max_scalar(&mut self, a: ObjId, k: i64, dst: ObjId) -> Result<()> {
        self.issue1(OpKind::MaxScalar(k), a, dst)
    }

    /// `dst = a * k + b` (`pimScaledAdd`): lowered to a scalar multiply
    /// into an internal temporary followed by an addition, exactly as a
    /// runtime without a fused op would execute it.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects; out-of-memory for the
    /// temporary.
    pub fn scaled_add(&mut self, a: ObjId, b: ObjId, dst: ObjId, k: i64) -> Result<()> {
        let dtype = self.rm().get(a)?.dtype;
        let tmp = self.alloc_associated(a, dtype)?;
        let result = self
            .mul_scalar(a, k, tmp)
            .and_then(|()| self.add(tmp, b, dst));
        self.free(tmp)?;
        result
    }

    // ------------------------------------------------------------------
    // Comparisons and selection
    // ------------------------------------------------------------------

    /// `dst = (a < b) ? 1 : 0`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn lt(&mut self, a: ObjId, b: ObjId, dst: ObjId) -> Result<()> {
        self.issue2(OpKind::Cmp(CmpOp::Lt), a, b, dst)
    }

    /// `dst = (a > b) ? 1 : 0`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn gt(&mut self, a: ObjId, b: ObjId, dst: ObjId) -> Result<()> {
        self.issue2(OpKind::Cmp(CmpOp::Gt), a, b, dst)
    }

    /// `dst = (a == b) ? 1 : 0`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn eq(&mut self, a: ObjId, b: ObjId, dst: ObjId) -> Result<()> {
        self.issue2(OpKind::Cmp(CmpOp::Eq), a, b, dst)
    }

    /// `dst = (a < k) ? 1 : 0`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn lt_scalar(&mut self, a: ObjId, k: i64, dst: ObjId) -> Result<()> {
        self.issue1(OpKind::CmpScalar(CmpOp::Lt, k), a, dst)
    }

    /// `dst = (a > k) ? 1 : 0`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn gt_scalar(&mut self, a: ObjId, k: i64, dst: ObjId) -> Result<()> {
        self.issue1(OpKind::CmpScalar(CmpOp::Gt, k), a, dst)
    }

    /// `dst = (a == k) ? 1 : 0`.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn eq_scalar(&mut self, a: ObjId, k: i64, dst: ObjId) -> Result<()> {
        self.issue1(OpKind::CmpScalar(CmpOp::Eq, k), a, dst)
    }

    /// `dst = cond ? a : b` element-wise (non-zero condition selects `a`).
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches between `a`, `b`, `dst`; count mismatch for
    /// `cond`; unknown objects.
    pub fn select(&mut self, cond: ObjId, a: ObjId, b: ObjId, dst: ObjId) -> Result<()> {
        self.issue(PimCommand::select(cond, a, b, dst))?;
        Ok(())
    }

    /// `dst = (a OP b) ? x : y` in one fused pass — the explicit form of
    /// what the [`CommandStream`] cmp+select peephole produces.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches (including between the compared and the
    /// selected operands); unknown objects.
    pub fn cmp_select(
        &mut self,
        op: CmpOp,
        a: ObjId,
        b: ObjId,
        x: ObjId,
        y: ObjId,
        dst: ObjId,
    ) -> Result<()> {
        self.issue(PimCommand::fused_cmp_select(op, a, b, x, y, dst))?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Shifts, popcount, broadcast, reductions
    // ------------------------------------------------------------------

    /// `dst = a << k` (logical).
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn shift_left(&mut self, a: ObjId, k: u32, dst: ObjId) -> Result<()> {
        self.issue1(OpKind::ShiftL(k), a, dst)
    }

    /// `dst = a >> k` — arithmetic for signed dtypes, logical otherwise.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn shift_right(&mut self, a: ObjId, k: u32, dst: ObjId) -> Result<()> {
        self.issue1(OpKind::ShiftR(k), a, dst)
    }

    /// Per-element population count of the low `bits` of each element.
    ///
    /// # Errors
    ///
    /// Count/dtype mismatches; unknown objects.
    pub fn popcount(&mut self, a: ObjId, dst: ObjId) -> Result<()> {
        self.issue1(OpKind::Popcount, a, dst)
    }

    /// Fills every element of `dst` with `value` (`pimBroadcast`).
    ///
    /// # Errors
    ///
    /// Unknown object.
    pub fn broadcast(&mut self, dst: ObjId, value: i64) -> Result<()> {
        self.issue(PimCommand::broadcast(dst, value))?;
        Ok(())
    }

    /// Reduction sum of all elements (`pimRedSum`). Unsigned dtypes sum
    /// their unsigned values. Returns 0 in model-only mode (documented
    /// limitation; the cost is still charged).
    ///
    /// # Errors
    ///
    /// Unknown object.
    pub fn red_sum(&mut self, a: ObjId) -> Result<i128> {
        match self.issue(PimCommand::reduce(OpKind::RedSum, a))? {
            CmdValue::Wide(sum) => Ok(sum),
            _ => unreachable!("red_sum produces a widening sum"),
        }
    }

    /// Reduction minimum across all elements (`pimRedMin`), respecting
    /// signedness. Returns 0 in model-only mode.
    ///
    /// # Errors
    ///
    /// Unknown object.
    pub fn red_min(&mut self, a: ObjId) -> Result<i64> {
        match self.issue(PimCommand::reduce(OpKind::RedMin, a))? {
            CmdValue::Int(v) => Ok(v),
            _ => unreachable!("red_min produces one element"),
        }
    }

    /// Reduction maximum across all elements (`pimRedMax`), respecting
    /// signedness. Returns 0 in model-only mode.
    ///
    /// # Errors
    ///
    /// Unknown object.
    pub fn red_max(&mut self, a: ObjId) -> Result<i64> {
        match self.issue(PimCommand::reduce(OpKind::RedMax, a))? {
            CmdValue::Int(v) => Ok(v),
            _ => unreachable!("red_max produces one element"),
        }
    }

    /// Reduction sum over the element range `[start, end)`
    /// (`pimRedSumRanged`). Cost is the full reduction scaled by the
    /// fraction of elements covered (the sub-range still spans
    /// proportionally fewer stripes/rows).
    ///
    /// # Errors
    ///
    /// [`PimError::InvalidArg`] for an out-of-bounds or empty range.
    pub fn red_sum_range(&mut self, a: ObjId, start: u64, end: u64) -> Result<i128> {
        let (count, dtype, layout) = {
            let obj = self.rm().get(a)?;
            (obj.count, obj.dtype, obj.layout)
        };
        if start >= end || end > count {
            return Err(PimError::InvalidArg(format!(
                "red_sum_range [{start}, {end}) out of bounds for {count} elements"
            )));
        }
        let sum = self.system.red_sum_range(a, dtype, start, end)?;
        let config = &self.config;
        let (full, delta) = self.system.price_with_backends(a, |tm| {
            model::op_cost_with(config, tm, OpKind::RedSum, dtype, &layout)
        });
        if !delta.is_empty() {
            self.stats.record_protocol(&delta);
        }
        let frac = (end - start) as f64 / count as f64;
        let cost = OpCost {
            time_ms: full.time_ms * frac,
            energy_mj: full.energy_mj * frac,
        };
        let name = OpKind::RedSum.stat_name(dtype);
        if self.tracer.enabled() {
            let start_ms = self.tracer.advance(cost.time_ms);
            self.tracer.emit(TraceEvent::Cmd {
                name: name.clone(),
                category: OpKind::RedSum.category().label(),
                start_ms,
                time_ms: cost.time_ms,
                energy_mj: cost.energy_mj,
                cores_used: layout.cores_used,
                micro: None,
            });
        }
        if let Some(m) = &mut self.metrics {
            let shares = self.system.shard_time_shares(a, cost.time_ms);
            m.record_cmd(
                &name,
                OpKind::RedSum.category().label(),
                cost.time_ms,
                cost.energy_mj,
                &shares,
            );
        }
        self.system
            .distribute_cmd(a, &name, OpKind::RedSum.category(), cost);
        self.stats
            .record_cmd(name, OpKind::RedSum.category(), cost, layout.cores_used);
        Ok(sum)
    }
}
