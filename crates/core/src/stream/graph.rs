//! SSA-style dataflow graph over a recorded command list.
//!
//! Each recorded [`PimCommand`] becomes one [`Node`]; every input
//! operand resolves to a [`Def`] — either the node whose destination
//! write reaches that use, or the object's live-in value from before
//! the flush. Because objects are mutable storage while the graph is
//! SSA over *versions*, a `(node, operand)` edge pins down exactly one
//! write: if any later command overwrote the object in between, the use
//! would resolve to that writer instead. The passes in
//! [`crate::stream::passes`] lean on this to reason about non-adjacent
//! rewrites without rescanning the command list.
//!
//! Side effects partition the graph into **regions**: a command with no
//! destination (a recorded reduction — host-visible output) is a
//! barrier. Rewrites never move a value across a region boundary, so
//! anything the host observed stays exactly as the eager program would
//! have produced it.

use std::collections::HashMap;

use crate::cmd::PimCommand;
use crate::object::ObjId;

/// The write that reaches one input operand of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Def {
    /// The object's contents from before the flush (no recorded command
    /// wrote it yet at this point in the program).
    LiveIn,
    /// The destination write of the node at this index.
    Node(usize),
}

/// One recorded command plus its resolved dataflow edges.
#[derive(Debug)]
pub(crate) struct Node {
    /// The command itself.
    pub cmd: PimCommand,
    /// Reaching definition for each input operand, in operand order.
    pub input_defs: Vec<Def>,
    /// How many operand references downstream nodes make to this node's
    /// destination write (counted per reference, not per reader).
    pub uses: u32,
    /// Side-effect region; barriers close the current region.
    pub region: u32,
    /// False once a pass deletes the node.
    pub alive: bool,
}

/// The dataflow graph for one flush.
#[derive(Debug)]
pub(crate) struct Graph {
    /// Nodes in recorded program order.
    pub nodes: Vec<Node>,
    /// Every node index that writes each object, in program order.
    /// Conservative after deletions (a killed writer stays listed).
    pub writes: HashMap<ObjId, Vec<usize>>,
}

impl Graph {
    /// Builds the graph from a command list in one forward pass.
    pub fn build(cmds: &[PimCommand]) -> Graph {
        let mut cur_def: HashMap<ObjId, usize> = HashMap::new();
        let mut writes: HashMap<ObjId, Vec<usize>> = HashMap::new();
        let mut nodes: Vec<Node> = Vec::with_capacity(cmds.len());
        let mut region = 0u32;
        for (i, cmd) in cmds.iter().enumerate() {
            let input_defs: Vec<Def> = cmd
                .inputs
                .iter()
                .map(|id| match cur_def.get(id) {
                    Some(&n) => {
                        nodes[n].uses += 1;
                        Def::Node(n)
                    }
                    None => Def::LiveIn,
                })
                .collect();
            let barrier = cmd.dst.is_none();
            nodes.push(Node {
                cmd: cmd.clone(),
                input_defs,
                uses: 0,
                region,
                alive: true,
            });
            if let Some(d) = cmd.dst {
                cur_def.insert(d, i);
                writes.entry(d).or_default().push(i);
            }
            if barrier {
                region += 1;
            }
        }
        Graph { nodes, writes }
    }

    /// True when any node writes `obj` strictly between indices `lo`
    /// and `hi` (exclusive on both ends). Deleted writers still count —
    /// conservative, never unsound.
    pub fn write_in_open_interval(&self, obj: ObjId, lo: usize, hi: usize) -> bool {
        self.writes
            .get(&obj)
            .is_some_and(|w| w.iter().any(|&i| i > lo && i < hi))
    }

    /// Rebuilds the surviving command list, preserving program order.
    pub fn rebuild(&self) -> Vec<PimCommand> {
        self.nodes
            .iter()
            .filter(|n| n.alive)
            .map(|n| n.cmd.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OpKind;
    use pim_microcode::gen::BinaryOp;

    fn id(n: u64) -> ObjId {
        ObjId(n)
    }

    #[test]
    fn build_resolves_defs_and_counts_uses() {
        let (a, b, t, d) = (id(1), id(2), id(3), id(4));
        let cmds = vec![
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), a, b, t),
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Mul), t, t, d),
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), a, b, t),
        ];
        let g = Graph::build(&cmds);
        assert_eq!(g.nodes[0].input_defs, vec![Def::LiveIn, Def::LiveIn]);
        // Both mul operands read node 0's write of t.
        assert_eq!(g.nodes[1].input_defs, vec![Def::Node(0), Def::Node(0)]);
        assert_eq!(g.nodes[0].uses, 2);
        assert_eq!(g.nodes[2].uses, 0);
        assert_eq!(g.writes[&t], vec![0, 2]);
        assert!(g.write_in_open_interval(t, 1, 3));
        assert!(!g.write_in_open_interval(t, 0, 2));
    }

    #[test]
    fn barriers_advance_regions() {
        let (a, b, t) = (id(1), id(2), id(3));
        let cmds = vec![
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), a, b, t),
            PimCommand::reduce(OpKind::RedSum, t),
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), a, b, t),
        ];
        let g = Graph::build(&cmds);
        assert_eq!(g.nodes[0].region, 0);
        assert_eq!(g.nodes[1].region, 0); // the barrier closes its own region
        assert_eq!(g.nodes[2].region, 1);
        // The reduction's read counts as a use of node 0.
        assert_eq!(g.nodes[0].uses, 1);
    }

    #[test]
    fn rebuild_drops_dead_nodes_in_order() {
        let (a, b, t, d) = (id(1), id(2), id(3), id(4));
        let cmds = vec![
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), a, b, t),
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Mul), a, b, d),
        ];
        let mut g = Graph::build(&cmds);
        g.nodes[0].alive = false;
        let out = g.rebuild();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, OpKind::Binary(BinaryOp::Mul));
    }
}
