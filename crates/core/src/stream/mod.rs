//! The deferred command stream and its dataflow optimizer.
//!
//! [`CommandStream`] defers issue: commands are *recorded* and only run
//! at [`CommandStream::flush`], which first optimizes the recorded
//! program and then executes adjacent same-length element-wise commands
//! in one batched parallel sweep. The optimization pipeline depends on
//! the [`OptLevel`] (device config `opt`,
//! `PIM_OPT` env, or [`CommandStream::set_opt`]):
//!
//! * **Level 0** — the legacy peephole: dead-write elimination plus
//!   adjacent-pair mul+add → [`OpKind::ScaledAdd`](crate::OpKind) and
//!   cmp+select → [`OpKind::FusedCmpSelect`](crate::OpKind) fusion.
//! * **Level 1** (default) — builds the SSA-style dataflow graph
//!   (`graph`) and runs the rewrites in `passes`: fusion across
//!   non-adjacent commands, value-numbering CSE, and whole-stream
//!   dead-object elimination.
//! * **Level 2** — level 1 plus [`place`]: subgraph partitioning with
//!   cost-driven target, layout, and shard-policy inference (advisory;
//!   see [`crate::Device::placement_plan`]).
//!
//! Functional results are bit-identical to eager issue at every level
//! (fusion preserves per-element semantics including intermediate
//! truncation; CSE only replaces values that are provably already
//! materialized), and the charged cost is never higher than the legacy
//! peephole's, because rewrites only remove commands or substitute a
//! copy the cost model prices no higher.
//!
//! One documented deviation: a temporary that only carried a fused-away
//! intermediate (the product of a `mul_scalar` or a comparison bitmap)
//! is never written, so its buffer contents after a flush are
//! unspecified. The rewrites only fire when no recorded command reads
//! that temporary afterward.
//!
//! Sharding composes transparently with the stream: the optimizer runs
//! *before* the shard split, on whole commands over whole objects.
//! Only when a (possibly fused or batched) command reaches
//! [`crate::Device::issue`] does [`crate::PimSystem`] cut it along each
//! object's [`crate::ShardMap`] and fan the pieces out — so optimizer
//! decisions never depend on the shard count, and an optimized program
//! on a sharded device is bit-identical to the eager single-shard run
//! (enforced by the `shard_equivalence` suite).

pub(crate) mod graph;
pub(crate) mod passes;
pub mod place;

use pim_microcode::gen::{BinaryOp, CmpOp};

use crate::cmd::PimCommand;
use crate::config::OptLevel;
use crate::device::Device;
use crate::error::Result;
use crate::object::ObjId;
use crate::ops::OpKind;
use crate::pim_debug;

pub use place::{PlacementPlan, SubgraphPlan};

/// What one [`CommandStream::flush`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushSummary {
    /// Commands recorded since the previous flush.
    pub recorded: u64,
    /// Commands executed after the optimization passes.
    pub executed: u64,
    /// mul+add pairs rewritten to [`OpKind::ScaledAdd`].
    pub fused_scaled_add: u64,
    /// cmp+select pairs rewritten to [`OpKind::FusedCmpSelect`].
    pub fused_cmp_select: u64,
    /// Commands removed because their output was overwritten unread.
    pub dead_writes_eliminated: u64,
    /// Batched parallel sweeps over runs of same-length commands.
    pub batched_sweeps: u64,
    /// Commands executed inside those sweeps.
    pub batched_commands: u64,
    /// Value-numbering CSE hits (levels 1+): recomputes deleted or
    /// rewritten to copies.
    pub cse_hits: u64,
    /// Commands the graph pipeline removed as dead (levels 1+).
    pub dead_objects_removed: u64,
    /// Placement subgraphs priced (level 2).
    pub subgraphs: u64,
    /// Adjacent placement subgraphs assigned different targets (level 2).
    pub target_switches: u64,
    /// Objects whose placement-inferred layout differs from their
    /// current layout (level 2).
    pub inferred_layouts: u64,
}

/// A deferred command recorder bound to one device.
///
/// Obtained from [`Device::stream`]; record operations with the same
/// argument order as the eager `Device` methods, then call
/// [`CommandStream::flush`] to optimize and run them. Dropping a stream
/// with unflushed commands discards them (with a debug log) — flushing
/// is always explicit.
///
/// # Example
///
/// ```
/// use pimeval::{DataType, Device};
///
/// # fn main() -> Result<(), pimeval::PimError> {
/// let mut dev = Device::fulcrum(1)?;
/// let x = dev.alloc_vec(&[1i32, 2, 3, 4])?;
/// let y = dev.alloc_vec(&[10i32, 20, 30, 40])?;
/// let t = dev.alloc_associated(x, DataType::Int32)?;
/// let out = dev.alloc_associated(x, DataType::Int32)?;
///
/// let mut stream = dev.stream();
/// stream.mul_scalar(x, 7, t).add(t, y, out);
/// let summary = stream.flush()?;
/// drop(stream);
/// assert_eq!(summary.fused_scaled_add, 1);
/// assert_eq!(dev.to_vec::<i32>(out)?, vec![17, 34, 51, 68]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CommandStream<'d> {
    dev: &'d mut Device,
    pending: Vec<PimCommand>,
    opt: Option<OptLevel>,
}

macro_rules! record2 {
    ($($(#[$doc:meta])* $name:ident => $kind:expr;)*) => {
        $($(#[$doc])*
        pub fn $name(&mut self, a: ObjId, b: ObjId, dst: ObjId) -> &mut Self {
            self.record(PimCommand::elementwise2($kind, a, b, dst))
        })*
    };
}

macro_rules! record_scalar {
    ($($(#[$doc:meta])* $name:ident => $kind:expr;)*) => {
        $($(#[$doc])*
        pub fn $name(&mut self, a: ObjId, k: i64, dst: ObjId) -> &mut Self {
            self.record(PimCommand::elementwise1($kind(k), a, dst))
        })*
    };
}

impl<'d> CommandStream<'d> {
    pub(crate) fn new(dev: &'d mut Device) -> CommandStream<'d> {
        CommandStream {
            dev,
            pending: Vec::new(),
            opt: None,
        }
    }

    /// Overrides the device's configured optimization level for this
    /// stream's flushes.
    pub fn set_opt(&mut self, level: OptLevel) -> &mut Self {
        self.opt = Some(level);
        self
    }

    /// The optimization level the next flush will run at.
    pub fn opt_level(&self) -> OptLevel {
        self.opt.unwrap_or(self.dev.config().opt)
    }

    /// Appends an arbitrary command.
    pub fn record(&mut self, cmd: PimCommand) -> &mut Self {
        self.pending.push(cmd);
        self
    }

    /// The commands recorded so far (cleared by [`CommandStream::flush`]).
    pub fn pending(&self) -> &[PimCommand] {
        &self.pending
    }

    record2! {
        /// Records `dst = a + b`.
        add => OpKind::Binary(BinaryOp::Add);
        /// Records `dst = a - b`.
        sub => OpKind::Binary(BinaryOp::Sub);
        /// Records `dst = a * b`.
        mul => OpKind::Binary(BinaryOp::Mul);
        /// Records `dst = a & b`.
        and => OpKind::Binary(BinaryOp::And);
        /// Records `dst = a | b`.
        or => OpKind::Binary(BinaryOp::Or);
        /// Records `dst = a ^ b`.
        xor => OpKind::Binary(BinaryOp::Xor);
        /// Records `dst = min(a, b)`.
        min => OpKind::Min;
        /// Records `dst = max(a, b)`.
        max => OpKind::Max;
        /// Records `dst = (a < b) ? 1 : 0`.
        lt => OpKind::Cmp(CmpOp::Lt);
        /// Records `dst = (a > b) ? 1 : 0`.
        gt => OpKind::Cmp(CmpOp::Gt);
        /// Records `dst = (a == b) ? 1 : 0`.
        eq => OpKind::Cmp(CmpOp::Eq);
    }

    record_scalar! {
        /// Records `dst = a + k`.
        add_scalar => |k| OpKind::BinaryScalar(BinaryOp::Add, k);
        /// Records `dst = a - k`.
        sub_scalar => |k| OpKind::BinaryScalar(BinaryOp::Sub, k);
        /// Records `dst = a * k`.
        mul_scalar => |k| OpKind::BinaryScalar(BinaryOp::Mul, k);
        /// Records `dst = min(a, k)`.
        min_scalar => OpKind::MinScalar;
        /// Records `dst = max(a, k)`.
        max_scalar => OpKind::MaxScalar;
    }

    /// Records `dst = !a`.
    pub fn not(&mut self, a: ObjId, dst: ObjId) -> &mut Self {
        self.record(PimCommand::elementwise1(OpKind::Not, a, dst))
    }

    /// Records `dst = |a|`.
    pub fn abs(&mut self, a: ObjId, dst: ObjId) -> &mut Self {
        self.record(PimCommand::elementwise1(OpKind::Abs, a, dst))
    }

    /// Records a per-element popcount.
    pub fn popcount(&mut self, a: ObjId, dst: ObjId) -> &mut Self {
        self.record(PimCommand::elementwise1(OpKind::Popcount, a, dst))
    }

    /// Records `dst = a << k`.
    pub fn shift_left(&mut self, a: ObjId, k: u32, dst: ObjId) -> &mut Self {
        self.record(PimCommand::elementwise1(OpKind::ShiftL(k), a, dst))
    }

    /// Records `dst = a >> k`.
    pub fn shift_right(&mut self, a: ObjId, k: u32, dst: ObjId) -> &mut Self {
        self.record(PimCommand::elementwise1(OpKind::ShiftR(k), a, dst))
    }

    /// Records `dst = cond ? a : b`.
    pub fn select(&mut self, cond: ObjId, a: ObjId, b: ObjId, dst: ObjId) -> &mut Self {
        self.record(PimCommand::select(cond, a, b, dst))
    }

    /// Records `dst = a * k + b` as an already-fused command.
    pub fn scaled_add(&mut self, a: ObjId, b: ObjId, dst: ObjId, k: i64) -> &mut Self {
        self.record(PimCommand::scaled_add(a, b, dst, k))
    }

    /// Records a fill of `dst` with `value`.
    pub fn broadcast(&mut self, dst: ObjId, value: i64) -> &mut Self {
        self.record(PimCommand::broadcast(dst, value))
    }

    /// Records a device-to-device copy.
    pub fn copy_object(&mut self, src: ObjId, dst: ObjId) -> &mut Self {
        self.record(PimCommand::copy(src, dst))
    }

    /// Flushes pending commands, then runs an eager reduction sum.
    ///
    /// # Errors
    ///
    /// Flush or reduction errors.
    pub fn red_sum(&mut self, a: ObjId) -> Result<i128> {
        self.flush()?;
        self.dev.red_sum(a)
    }

    /// Flushes pending commands, then runs an eager reduction minimum.
    ///
    /// # Errors
    ///
    /// Flush or reduction errors.
    pub fn red_min(&mut self, a: ObjId) -> Result<i64> {
        self.flush()?;
        self.dev.red_min(a)
    }

    /// Flushes pending commands, then runs an eager reduction maximum.
    ///
    /// # Errors
    ///
    /// Flush or reduction errors.
    pub fn red_max(&mut self, a: ObjId) -> Result<i64> {
        self.flush()?;
        self.dev.red_max(a)
    }

    /// Optimizes and executes everything recorded since the last flush.
    ///
    /// Pass order: the level's optimization pipeline (see the module
    /// docs), then validation of every surviving command, then — at
    /// level 2 — the placement analysis, then execution: runs of two or
    /// more adjacent commands over objects with the same element count
    /// go through one batched parallel sweep; the rest execute singly.
    /// Each executed command is charged to the cost model exactly as an
    /// eager issue would be.
    ///
    /// # Errors
    ///
    /// Validation errors from any surviving command; nothing executes
    /// when validation fails.
    pub fn flush(&mut self) -> Result<FlushSummary> {
        let mut cmds = std::mem::take(&mut self.pending);
        let recorded = cmds.len() as u64;
        let level = self.opt_level();
        let outcome = match level {
            OptLevel::O0 => passes::run_peephole(self.dev, &mut cmds),
            OptLevel::O1 | OptLevel::O2 => passes::run_graph(self.dev, &mut cmds),
        };
        for cmd in &cmds {
            self.dev.validate_cmd(cmd)?;
        }
        let mut summary = FlushSummary {
            recorded,
            executed: cmds.len() as u64,
            fused_scaled_add: outcome.fused_scaled_add,
            fused_cmp_select: outcome.fused_cmp_select,
            dead_writes_eliminated: outcome.dead_writes_eliminated,
            cse_hits: outcome.cse_hits,
            dead_objects_removed: outcome.dead_objects_removed,
            ..FlushSummary::default()
        };
        if level == OptLevel::O2 {
            let plan = place::plan(self.dev, &cmds);
            summary.subgraphs = plan.subgraphs.len() as u64;
            summary.target_switches = plan.target_switches;
            summary.inferred_layouts = plan.inferred_layouts;
            self.dev.set_placement_plan(plan);
        }
        let counts: Vec<Option<u64>> = cmds
            .iter()
            .map(|c| c.dst.and_then(|d| self.dev.object(d).ok().map(|o| o.count)))
            .collect();
        let mut i = 0;
        while i < cmds.len() {
            let mut j = i + 1;
            while j < cmds.len() && counts[j].is_some() && counts[j] == counts[i] {
                j += 1;
            }
            if counts[i].is_some() && j - i >= 2 {
                self.dev.exec_batch(&cmds[i..j])?;
                for cmd in &cmds[i..j] {
                    self.dev.charge_cmd(cmd)?;
                }
                summary.batched_sweeps += 1;
                summary.batched_commands += (j - i) as u64;
            } else {
                for cmd in &cmds[i..j] {
                    self.dev.exec_cmd(cmd)?;
                    self.dev.charge_cmd(cmd)?;
                }
            }
            i = j;
        }
        self.dev.finish_flush(&summary);
        Ok(summary)
    }
}

impl Drop for CommandStream<'_> {
    fn drop(&mut self) {
        if !self.pending.is_empty() {
            pim_debug!(
                "command stream dropped with {} unflushed command(s)",
                self.pending.len()
            );
        }
    }
}
