//! Optimization passes over a recorded command list.
//!
//! Two pipelines share these passes, selected by
//! [`crate::OptLevel`](crate::config::OptLevel):
//!
//! * **Peephole** (level 0) — the legacy behavior: dead-write
//!   elimination followed by adjacent-pair fusion. Liveness now comes
//!   from a one-pass last-read index instead of rescanning the tail per
//!   command, so a flush is linear in the stream length.
//! * **Graph** (levels 1+) — dead-write elimination, then the
//!   [`Graph`]-based rewrites: fusion generalized to non-adjacent
//!   producer/consumer pairs, value-numbering CSE, and a final
//!   dead-write sweep that collects writes orphaned by CSE.
//!
//! Legality rules shared by every graph rewrite:
//!
//! * **Region confinement** — producer and consumer must sit in the
//!   same side-effect region (no host-visible read between them).
//! * **Exclusive use** — a fused-away intermediate must have exactly
//!   one use (the consumer); the SSA def resolution guarantees no
//!   intervening write to it, else the consumer's def would differ.
//! * **Operand stability** — an input whose read moves from index `i`
//!   to index `j` must not be written in the open interval `(i, j)`.
//! * **Live-outs** — every object's *last* write is observable after
//!   the flush, so CSE only deletes a node when its destination already
//!   holds the identical bits, and only rewrites a recompute to a
//!   [`OpKind::Copy`] when the copy's modeled cost is no higher.

use std::collections::HashMap;

use pim_microcode::gen::BinaryOp;

use crate::cmd::PimCommand;
use crate::device::Device;
use crate::dtype::DataType;
use crate::model;
use crate::object::ObjId;
use crate::ops::OpKind;

use super::graph::{Def, Graph};

/// What one optimization pipeline did to the command list.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PassOutcome {
    /// mul+add pairs rewritten to [`OpKind::ScaledAdd`].
    pub fused_scaled_add: u64,
    /// cmp+select pairs rewritten to [`OpKind::FusedCmpSelect`].
    pub fused_cmp_select: u64,
    /// Commands removed because their output was overwritten unread.
    pub dead_writes_eliminated: u64,
    /// Value-numbering hits: recomputes deleted outright or rewritten
    /// to copies of an object already holding the value.
    pub cse_hits: u64,
    /// Commands the graph pipeline removed as dead (0 at level 0).
    pub dead_objects_removed: u64,
}

// ---------------------------------------------------------------------
// Dead-write elimination (shared by both pipelines)
// ---------------------------------------------------------------------

/// Removes commands whose destination is overwritten by a later command
/// before any command reads it. Returns the number removed.
///
/// Backward scan maintaining the set of objects that a later command
/// will overwrite with no intervening read: a live command inserts its
/// destination and then removes its inputs (in that order, so an
/// in-place `add(a, b, a)` keeps `a` readable).
pub(crate) fn eliminate_dead_writes(cmds: &mut Vec<PimCommand>) -> u64 {
    use std::collections::HashSet;
    let mut overwritten: HashSet<ObjId> = HashSet::new();
    let mut live: Vec<PimCommand> = Vec::with_capacity(cmds.len());
    let mut removed = 0u64;
    for cmd in cmds.drain(..).rev() {
        if let Some(dst) = cmd.dst {
            if overwritten.contains(&dst) {
                removed += 1;
                continue;
            }
            overwritten.insert(dst);
        }
        for id in &cmd.inputs {
            overwritten.remove(id);
        }
        live.push(cmd);
    }
    live.reverse();
    *cmds = live;
    removed
}

// ---------------------------------------------------------------------
// Level-0 peephole (adjacent pairs, linear liveness)
// ---------------------------------------------------------------------

/// `mul_scalar(a, k) → t ; add(t, b) → d` becomes `scaled_add(a, b, k) → d`
/// when `t` carries nothing else. `unread_later(t)` answers "does no
/// later command read `t`?" for the tail after the pair.
fn try_fuse_scaled_add(
    first: &PimCommand,
    second: &PimCommand,
    unread_later: impl Fn(ObjId) -> bool,
) -> Option<PimCommand> {
    let OpKind::BinaryScalar(BinaryOp::Mul, k) = first.kind else {
        return None;
    };
    let OpKind::Binary(BinaryOp::Add) = second.kind else {
        return None;
    };
    let (a, t) = (first.inputs[0], first.dst?);
    let (p, q) = (second.inputs[0], second.inputs[1]);
    let d = second.dst?;
    // The product must feed exactly one side of the add.
    let b = match (p == t, q == t) {
        (true, false) => q,
        (false, true) => p,
        _ => return None,
    };
    // If the product object outlives the pair, the fusion would leave it
    // stale for the later reader.
    if t != d && !unread_later(t) {
        return None;
    }
    Some(PimCommand::scaled_add(a, b, d, k))
}

/// `cmp(a, b) → m ; select(m, x, y) → d` becomes
/// `fused_cmp_select(a, b, x, y) → d` when the mask carries nothing else.
///
/// Needs the device to gate on dtype: eager validation ties `a`/`b`/`m`
/// together and `x`/`y`/`d` together but never across, and the fused
/// command evaluates both halves under one dtype.
fn try_fuse_cmp_select(
    dev: &Device,
    first: &PimCommand,
    second: &PimCommand,
    unread_later: impl Fn(ObjId) -> bool,
) -> Option<PimCommand> {
    let OpKind::Cmp(op) = first.kind else {
        return None;
    };
    if second.kind != OpKind::Select {
        return None;
    }
    let (a, b, m) = (first.inputs[0], first.inputs[1], first.dst?);
    let (cond, x, y) = (second.inputs[0], second.inputs[1], second.inputs[2]);
    let d = second.dst?;
    if cond != m || m == x || m == y {
        return None;
    }
    if m != d && !unread_later(m) {
        return None;
    }
    let (da, dx) = (dev.object(a).ok()?.dtype, dev.object(x).ok()?.dtype);
    if da != dx {
        return None;
    }
    Some(PimCommand::fused_cmp_select(op, a, b, x, y, d))
}

/// Rewrites adjacent fusible pairs in place. Returns
/// `(scaled_add_fusions, cmp_select_fusions)`.
///
/// Liveness is a one-pass index of each object's greatest reading
/// command — `last_read[t] < i + 2` is exactly the old "no command in
/// `cmds[i + 2..]` reads `t`" rescan, minus the quadratic blowup.
pub(crate) fn fuse(dev: &Device, cmds: &mut Vec<PimCommand>) -> (u64, u64) {
    let mut last_read: HashMap<ObjId, usize> = HashMap::new();
    for (i, cmd) in cmds.iter().enumerate() {
        for id in &cmd.inputs {
            last_read.insert(*id, i);
        }
    }
    let mut out = Vec::with_capacity(cmds.len());
    let (mut scaled, mut cmp_select) = (0u64, 0u64);
    let mut i = 0;
    while i < cmds.len() {
        if i + 1 < cmds.len() {
            let unread_later = |id: ObjId| last_read.get(&id).is_none_or(|&p| p < i + 2);
            if let Some(f) = try_fuse_scaled_add(&cmds[i], &cmds[i + 1], unread_later) {
                out.push(f);
                scaled += 1;
                i += 2;
                continue;
            }
            if let Some(f) = try_fuse_cmp_select(dev, &cmds[i], &cmds[i + 1], unread_later) {
                out.push(f);
                cmp_select += 1;
                i += 2;
                continue;
            }
        }
        out.push(cmds[i].clone());
        i += 1;
    }
    *cmds = out;
    (scaled, cmp_select)
}

/// The level-0 pipeline: dead-write elimination, then adjacent fusion.
pub(crate) fn run_peephole(dev: &Device, cmds: &mut Vec<PimCommand>) -> PassOutcome {
    let dead_writes_eliminated = eliminate_dead_writes(cmds);
    let (fused_scaled_add, fused_cmp_select) = fuse(dev, cmds);
    PassOutcome {
        fused_scaled_add,
        fused_cmp_select,
        dead_writes_eliminated,
        cse_hits: 0,
        dead_objects_removed: 0,
    }
}

// ---------------------------------------------------------------------
// Graph fusion (levels 1+): producer/consumer pairs at any distance
// ---------------------------------------------------------------------

/// Resolves an operand's def to its producer node index, when the
/// producer is still alive.
fn live_producer(g: &Graph, j: usize, operand: usize) -> Option<usize> {
    match g.nodes[j].input_defs[operand] {
        Def::Node(i) if g.nodes[i].alive => Some(i),
        _ => None,
    }
}

/// Fuses mul+add and cmp+select producer/consumer pairs across any
/// distance within a region. The fused command takes the *consumer's*
/// position, the producer dies, and every moved operand read is checked
/// against intervening writes. Returns
/// `(scaled_add_fusions, cmp_select_fusions)`.
fn fuse_graph(dev: &Device, g: &mut Graph) -> (u64, u64) {
    let (mut scaled, mut cmp_select) = (0u64, 0u64);
    for j in 0..g.nodes.len() {
        if !g.nodes[j].alive {
            continue;
        }
        match g.nodes[j].cmd.kind {
            OpKind::Binary(BinaryOp::Add) => {
                let (p, q) = (g.nodes[j].cmd.inputs[0], g.nodes[j].cmd.inputs[1]);
                if p == q {
                    // t + t is not a scaled add.
                    continue;
                }
                for operand in 0..2 {
                    let Some(i) = live_producer(g, j, operand) else {
                        continue;
                    };
                    let OpKind::BinaryScalar(BinaryOp::Mul, k) = g.nodes[i].cmd.kind else {
                        continue;
                    };
                    // The product feeds only this consumer, in the same
                    // side-effect region.
                    if g.nodes[i].uses != 1 || g.nodes[i].region != g.nodes[j].region {
                        continue;
                    }
                    let a = g.nodes[i].cmd.inputs[0];
                    // `a`'s read moves from the producer's slot to the
                    // consumer's; nothing may redefine it in between.
                    if g.write_in_open_interval(a, i, j) {
                        continue;
                    }
                    let b = if operand == 0 { q } else { p };
                    let d = g.nodes[j].cmd.dst.expect("add writes");
                    g.nodes[j].cmd = PimCommand::scaled_add(a, b, d, k);
                    g.nodes[i].alive = false;
                    scaled += 1;
                    break;
                }
            }
            OpKind::Select => {
                let Some(i) = live_producer(g, j, 0) else {
                    continue;
                };
                let OpKind::Cmp(op) = g.nodes[i].cmd.kind else {
                    continue;
                };
                if g.nodes[i].uses != 1 || g.nodes[i].region != g.nodes[j].region {
                    continue;
                }
                let m = g.nodes[i].cmd.dst.expect("cmp writes");
                let (a, b) = (g.nodes[i].cmd.inputs[0], g.nodes[i].cmd.inputs[1]);
                let (x, y) = (g.nodes[j].cmd.inputs[1], g.nodes[j].cmd.inputs[2]);
                if m == x || m == y {
                    continue;
                }
                if g.write_in_open_interval(a, i, j) || g.write_in_open_interval(b, i, j) {
                    continue;
                }
                // Same cross-half dtype gate as the peephole.
                let Some(da) = dev.object(a).ok().map(|o| o.dtype) else {
                    continue;
                };
                let Some(dx) = dev.object(x).ok().map(|o| o.dtype) else {
                    continue;
                };
                if da != dx {
                    continue;
                }
                let d = g.nodes[j].cmd.dst.expect("select writes");
                g.nodes[j].cmd = PimCommand::fused_cmp_select(op, a, b, x, y, d);
                g.nodes[i].alive = false;
                cmp_select += 1;
            }
            _ => {}
        }
    }
    (scaled, cmp_select)
}

// ---------------------------------------------------------------------
// Value-numbering CSE (levels 1+)
// ---------------------------------------------------------------------

/// A value number key: what is computed, over which value numbers, into
/// how many elements of which type. The destination count matters —
/// e.g. two broadcasts of the same scalar into differently sized
/// objects are *different* value vectors.
type VnKey = (OpKind, DataType, u64, Vec<u64>);

/// Value-numbering common-subexpression elimination within each
/// side-effect region. Two kinds of hit, both counted:
///
/// * **removal** — the destination already holds the identical value
///   vector (same VN), so the node is deleted outright;
/// * **rewrite** — another live object holds the value, and copying it
///   is modeled no costlier than recomputing, so the node becomes an
///   [`OpKind::Copy`] from that holder.
fn cse_graph(dev: &Device, g: &mut Graph) -> u64 {
    let mut next_vn = 0u64;
    let mut livein_vn: HashMap<ObjId, u64> = HashMap::new();
    let mut cur_vn: HashMap<ObjId, u64> = HashMap::new();
    let mut key_vn: HashMap<(u32, VnKey), u64> = HashMap::new();
    let mut holder: HashMap<u64, ObjId> = HashMap::new();
    let mut hits = 0u64;
    for idx in 0..g.nodes.len() {
        if !g.nodes[idx].alive {
            continue;
        }
        let region = g.nodes[idx].region;
        let cmd = g.nodes[idx].cmd.clone();
        let Some(d) = cmd.dst else {
            // A barrier only reads; region keying already fences the
            // value tables.
            continue;
        };
        let in_vns: Vec<u64> = cmd
            .inputs
            .iter()
            .map(|id| match cur_vn.get(id) {
                Some(&vn) => vn,
                None => *livein_vn.entry(*id).or_insert_with(|| {
                    next_vn += 1;
                    next_vn
                }),
            })
            .collect();
        // Unknown objects (the stream validates *after* the passes)
        // opt out of CSE with a fresh, unshared value number.
        let Ok(obj_d) = dev.object(d) else {
            next_vn += 1;
            cur_vn.insert(d, next_vn);
            continue;
        };
        let (dtype, count) = (obj_d.dtype, obj_d.count);
        if cmd.kind == OpKind::Copy {
            // Copy propagates its source's value number — but only when
            // the shapes provably match; a malformed copy gets a fresh
            // number and fails validation later, untouched.
            let src_ok = dev
                .object(cmd.inputs[0])
                .map(|s| s.dtype == dtype && s.count == count)
                .unwrap_or(false);
            if src_ok && cur_vn.get(&d) == Some(&in_vns[0]) {
                // The destination already holds these bits.
                g.nodes[idx].alive = false;
                hits += 1;
                continue;
            }
            let vn = if src_ok {
                in_vns[0]
            } else {
                next_vn += 1;
                next_vn
            };
            cur_vn.insert(d, vn);
            holder.entry(vn).or_insert(d);
            continue;
        }
        let key = (region, (cmd.kind, dtype, count, in_vns));
        match key_vn.get(&key) {
            Some(&vn) => {
                if cur_vn.get(&d) == Some(&vn) {
                    // Recompute into an object that already holds the
                    // value: delete, bit-identical for free.
                    g.nodes[idx].alive = false;
                    hits += 1;
                    continue;
                }
                let valid_holder = holder
                    .get(&vn)
                    .copied()
                    .filter(|h| *h != d && cur_vn.get(h) == Some(&vn))
                    .filter(|h| {
                        dev.object(*h)
                            .map(|o| o.dtype == dtype && o.count == count)
                            .unwrap_or(false)
                    });
                if let Some(h) = valid_holder {
                    let copy = model::op_cost(dev.config(), OpKind::Copy, dtype, &obj_d.layout);
                    let full = model::op_cost(dev.config(), cmd.kind, dtype, &obj_d.layout);
                    if copy.time_ms <= full.time_ms && copy.energy_mj <= full.energy_mj {
                        g.nodes[idx].cmd = PimCommand::copy(h, d);
                        hits += 1;
                    }
                }
                cur_vn.insert(d, vn);
                if holder.get(&vn).is_none_or(|h| cur_vn.get(h) != Some(&vn)) {
                    holder.insert(vn, d);
                }
            }
            None => {
                next_vn += 1;
                key_vn.insert(key, next_vn);
                cur_vn.insert(d, next_vn);
                holder.insert(next_vn, d);
            }
        }
    }
    hits
}

/// The graph pipeline (levels 1+): dead-write elimination, graph
/// fusion, value-numbering CSE, and a final dead-write sweep over
/// whatever CSE orphaned.
pub(crate) fn run_graph(dev: &Device, cmds: &mut Vec<PimCommand>) -> PassOutcome {
    let mut dead = eliminate_dead_writes(cmds);
    let mut g = Graph::build(cmds);
    let (fused_scaled_add, fused_cmp_select) = fuse_graph(dev, &mut g);
    *cmds = g.rebuild();
    let mut g = Graph::build(cmds);
    let cse_hits = cse_graph(dev, &mut g);
    *cmds = g.rebuild();
    dead += eliminate_dead_writes(cmds);
    PassOutcome {
        fused_scaled_add,
        fused_cmp_select,
        dead_writes_eliminated: dead,
        cse_hits,
        dead_objects_removed: dead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ObjId {
        ObjId(n)
    }

    #[test]
    fn dead_write_elimination_respects_reads() {
        let (a, b, t, d) = (id(1), id(2), id(3), id(4));
        // t is written then overwritten unread: first write is dead.
        let mut cmds = vec![
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), a, b, t),
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Mul), a, b, t),
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), t, b, d),
        ];
        assert_eq!(eliminate_dead_writes(&mut cmds), 1);
        assert_eq!(cmds.len(), 2);
        assert_eq!(cmds[0].kind, OpKind::Binary(BinaryOp::Mul));

        // A read between the writes keeps both.
        let mut cmds = vec![
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), a, b, t),
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), t, b, d),
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Mul), a, b, t),
        ];
        assert_eq!(eliminate_dead_writes(&mut cmds), 0);
        assert_eq!(cmds.len(), 3);

        // In-place update reads its own destination: not dead.
        let mut cmds = vec![
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), a, b, t),
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), t, b, t),
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), t, b, d),
        ];
        assert_eq!(eliminate_dead_writes(&mut cmds), 0);
    }

    #[test]
    fn scaled_add_fusion_guards_temporary_lifetime() {
        let (a, b, t, d) = (id(1), id(2), id(3), id(4));
        let pair = |k| {
            vec![
                PimCommand::elementwise1(OpKind::BinaryScalar(BinaryOp::Mul, k), a, t),
                PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), t, b, d),
            ]
        };
        assert_eq!(
            try_fuse_scaled_add(&pair(7)[0], &pair(7)[1], |_| true),
            Some(PimCommand::scaled_add(a, b, d, 7))
        );
        // A later read of the temporary blocks fusion.
        assert_eq!(
            try_fuse_scaled_add(&pair(7)[0], &pair(7)[1], |_| false),
            None
        );
        // t + t is not a scaled add.
        let tt = PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), t, t, d);
        assert_eq!(try_fuse_scaled_add(&pair(7)[0], &tt, |_| true), None);
    }

    #[test]
    fn graph_fusion_reaches_across_unrelated_commands() {
        // mul_scalar → (unrelated op) → add: the peephole misses this
        // pair, the graph pipeline fuses it.
        let (a, b, u, v, t, d, w) = (id(1), id(2), id(3), id(4), id(5), id(6), id(7));
        let cmds = vec![
            PimCommand::elementwise1(OpKind::BinaryScalar(BinaryOp::Mul, 3), a, t),
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Sub), u, v, w),
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), t, b, d),
        ];
        let mut g = Graph::build(&cmds);
        // fuse_graph needs a device only for the cmp_select dtype gate;
        // a scaled_add-only stream never dereferences it, but the
        // signature keeps the call sites uniform — so exercise the
        // whole path through a real device in stream_equivalence
        // instead, and here check the def resolution prerequisites.
        assert_eq!(g.nodes[2].input_defs[0], Def::Node(0));
        assert_eq!(g.nodes[0].uses, 1);
        assert!(!g.write_in_open_interval(a, 0, 2));
        // Simulate the rewrite and confirm the rebuild shape.
        g.nodes[2].cmd = PimCommand::scaled_add(a, b, d, 3);
        g.nodes[0].alive = false;
        let out = g.rebuild();
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].kind, OpKind::ScaledAdd(3));
    }

    #[test]
    fn fuse_liveness_index_matches_tail_rescan() {
        // The closure form of the liveness oracle must agree with the
        // legacy "rescan the tail" definition on a stream whose
        // temporary is read again later.
        let (a, b, t, d, e) = (id(1), id(2), id(3), id(4), id(5));
        let cmds = [
            PimCommand::elementwise1(OpKind::BinaryScalar(BinaryOp::Mul, 7), a, t),
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), t, b, d),
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), t, b, e),
        ];
        let mut last_read: HashMap<ObjId, usize> = HashMap::new();
        for (i, cmd) in cmds.iter().enumerate() {
            for id in &cmd.inputs {
                last_read.insert(*id, i);
            }
        }
        // Pair at (0, 1): t is read at index 2 >= 2, so fusion is
        // blocked, exactly as the tail rescan would conclude.
        let unread = |id: ObjId| last_read.get(&id).is_none_or(|&p| p < 2);
        assert!(!unread(t));
        assert_eq!(try_fuse_scaled_add(&cmds[0], &cmds[1], unread), None);
    }
}
