//! Cost-driven target and layout placement (optimization level 2).
//!
//! After the rewrite passes, the surviving command list is partitioned
//! into **subgraphs** — connected components of commands linked by
//! shared objects, cut at side-effect barriers. Each subgraph is priced
//! against every paper target's [`crate::TargetModel`] under that
//! target's own auto-placement, plus the interconnect cost of shipping
//! the subgraph's working set across the channel when the winner is not
//! the device's own target. The cheapest legal assignment wins; per-
//! object layout (horizontal vs. vertical) and [`ShardPolicy`]
//! inferences fall out of the winning target's geometry.
//!
//! The plan is **advisory**: execution and cost charging stay on the
//! device's configured target, which is what keeps every optimization
//! level bit-identical to eager execution and never costlier than the
//! peephole. The plan is retained on the device
//! ([`crate::Device::placement_plan`]) and surfaced through the
//! optimizer statistics, so callers and benchmarks can see what a
//! cross-substrate mapper would have chosen.

use std::collections::HashMap;

use crate::cmd::PimCommand;
use crate::config::{DeviceConfig, PimTarget, ShardPolicy};
use crate::device::Device;
use crate::model;
use crate::object::{DataLayout, ObjId, ObjectLayout};
use crate::system::InterconnectModel;

/// One subgraph's chosen mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct SubgraphPlan {
    /// Indices into the flushed command list, in program order.
    pub commands: Vec<usize>,
    /// The cheapest legal target for this subgraph.
    pub target: PimTarget,
    /// Modeled kernel time on that target (ms, closed-form timing).
    pub est_kernel_ms: f64,
    /// Modeled interconnect time to move the working set when the
    /// chosen target differs from the device's (ms; 0 otherwise).
    pub est_transfer_ms: f64,
    /// Inferred per-object data layout under the chosen target.
    pub layouts: Vec<(ObjId, DataLayout)>,
    /// Inferred shard policy: round-robin when the subgraph mixes
    /// element widths (narrow objects fragment a contiguous split),
    /// contiguous otherwise.
    pub shard_policy: ShardPolicy,
}

/// The full placement decision for one flush.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlacementPlan {
    /// Per-subgraph assignments, in program order of first command.
    pub subgraphs: Vec<SubgraphPlan>,
    /// Adjacent subgraph pairs mapped to different targets.
    pub target_switches: u64,
    /// Objects whose inferred layout differs from their current one.
    pub inferred_layouts: u64,
}

/// A priced candidate: `(kernel_ms, transfer_ms, per-object layouts)`.
type PricedCandidate = (f64, f64, Vec<(ObjId, DataLayout)>);

/// Union-find over command indices.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Attach to the smaller index so roots are stable in
            // program order.
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            self.parent[hi] = lo;
        }
    }
}

/// Prices one candidate target for a subgraph. Returns
/// `(kernel_ms, transfer_ms, per-object layouts)`, or `None` when the
/// target cannot hold or run the subgraph.
fn price_candidate(
    dev: &Device,
    cmds: &[PimCommand],
    members: &[usize],
    objects: &[ObjId],
    candidate: PimTarget,
) -> Option<PricedCandidate> {
    let cfg = DeviceConfig::new(candidate, dev.config().geometry.ranks);
    let m = model::target_model(candidate);
    let mut layouts: HashMap<ObjId, ObjectLayout> = HashMap::new();
    let mut out_layouts = Vec::with_capacity(objects.len());
    let mut bytes = 0u64;
    for &obj in objects {
        let o = dev.object(obj).ok()?;
        let layout = ObjectLayout::compute(&cfg, o.count, o.dtype, None).ok()?;
        out_layouts.push((obj, layout.layout));
        layouts.insert(obj, layout);
        bytes = bytes.saturating_add(o.bytes());
    }
    let mut kernel_ms = 0.0;
    for &i in members {
        let cmd = &cmds[i];
        let costed = cmd.dst.unwrap_or_else(|| cmd.inputs[0]);
        let o = dev.object(costed).ok()?;
        let layout = layouts.get(&costed)?;
        m.validate(cmd.kind, o.dtype, layout).ok()?;
        kernel_ms += m.cost(&cfg, cmd.kind, o.dtype, layout).time_ms;
    }
    let transfer_ms = if candidate == dev.config().target {
        0.0
    } else {
        InterconnectModel::from_config(dev.config()).transfer_ms(bytes)
    };
    Some((kernel_ms, transfer_ms, out_layouts))
}

/// Partitions the flushed command list into object-connected subgraphs
/// and picks the cheapest legal target for each.
pub(crate) fn plan(dev: &Device, cmds: &[PimCommand]) -> PlacementPlan {
    let mut dsu = Dsu::new(cmds.len());
    let mut last_touch: HashMap<ObjId, usize> = HashMap::new();
    for (i, cmd) in cmds.iter().enumerate() {
        for &obj in cmd.inputs.iter().chain(cmd.dst.iter()) {
            if let Some(&prev) = last_touch.get(&obj) {
                dsu.union(prev, i);
            }
            last_touch.insert(obj, i);
        }
        if cmd.dst.is_none() {
            // Side-effect barrier: later commands may not join a
            // subgraph the host already observed.
            last_touch.clear();
        }
    }
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    let mut group_of: HashMap<usize, usize> = HashMap::new();
    for i in 0..cmds.len() {
        let root = dsu.find(i);
        let gi = *group_of.entry(root).or_insert_with(|| {
            groups.push((root, Vec::new()));
            groups.len() - 1
        });
        groups[gi].1.push(i);
    }
    groups.sort_by_key(|(root, _)| *root);

    let mut plan = PlacementPlan::default();
    for (_, members) in &groups {
        let mut objects: Vec<ObjId> = Vec::new();
        let mut widths: Vec<u32> = Vec::new();
        for &i in members {
            for &obj in cmds[i].inputs.iter().chain(cmds[i].dst.iter()) {
                if !objects.contains(&obj) {
                    objects.push(obj);
                    if let Ok(o) = dev.object(obj) {
                        if !widths.contains(&o.dtype.bits()) {
                            widths.push(o.dtype.bits());
                        }
                    }
                }
            }
        }
        // Candidates: the paper's three targets, plus the device's own
        // (which may be an extension target). Ties go to the device.
        let mut candidates = vec![dev.config().target];
        for t in PimTarget::ALL {
            if !candidates.contains(&t) {
                candidates.push(t);
            }
        }
        let mut best: Option<(PimTarget, PricedCandidate)> = None;
        for t in candidates {
            let Some((kernel, transfer, layouts)) =
                price_candidate(dev, cmds, members, &objects, t)
            else {
                continue;
            };
            let total = kernel + transfer;
            if best.as_ref().is_none_or(|(_, (bk, bt, _))| total < bk + bt) {
                best = Some((t, (kernel, transfer, layouts)));
            }
        }
        let Some((target, (est_kernel_ms, est_transfer_ms, layouts))) = best else {
            // No legal candidate (e.g. unknown objects); skip pricing.
            continue;
        };
        for (obj, inferred) in &layouts {
            if dev
                .object(*obj)
                .map(|o| o.layout.layout != *inferred)
                .unwrap_or(false)
            {
                plan.inferred_layouts += 1;
            }
        }
        plan.subgraphs.push(SubgraphPlan {
            commands: members.clone(),
            target,
            est_kernel_ms,
            est_transfer_ms,
            layouts,
            shard_policy: if widths.len() > 1 {
                ShardPolicy::RoundRobin
            } else {
                ShardPolicy::Contiguous
            },
        });
    }
    for pair in plan.subgraphs.windows(2) {
        if pair[0].target != pair[1].target {
            plan.target_switches += 1;
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsu_components_are_stable_by_first_index() {
        let mut dsu = Dsu::new(5);
        dsu.union(3, 1);
        dsu.union(4, 3);
        assert_eq!(dsu.find(4), 1);
        assert_eq!(dsu.find(0), 0);
        assert_eq!(dsu.find(2), 2);
    }
}
