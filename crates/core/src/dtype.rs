//! PIM element data types.

use std::fmt;

/// Element data types supported by the PIM API (§V-B).
///
/// All integer arithmetic wraps at the type's width (two's complement),
/// matching the bit-serial microprograms. Floating point is not supported,
/// as in the paper ("softmax ... executed on the host CPU because it
/// requires floating-point operations, which PIMeval does not support
/// yet").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 1-bit boolean (comparison bitmaps).
    Bool,
    /// Signed 8-bit integer.
    Int8,
    /// Signed 16-bit integer.
    Int16,
    /// Signed 32-bit integer (the suite's dominant type).
    Int32,
    /// Signed 64-bit integer.
    Int64,
    /// Unsigned 8-bit integer.
    UInt8,
    /// Unsigned 16-bit integer.
    UInt16,
    /// Unsigned 32-bit integer.
    UInt32,
    /// Unsigned 64-bit integer.
    UInt64,
}

impl DataType {
    /// Bits per element.
    pub fn bits(&self) -> u32 {
        match self {
            DataType::Bool => 1,
            DataType::Int8 | DataType::UInt8 => 8,
            DataType::Int16 | DataType::UInt16 => 16,
            DataType::Int32 | DataType::UInt32 => 32,
            DataType::Int64 | DataType::UInt64 => 64,
        }
    }

    /// True for signed two's-complement types.
    pub fn is_signed(&self) -> bool {
        matches!(
            self,
            DataType::Int8 | DataType::Int16 | DataType::Int32 | DataType::Int64
        )
    }

    /// Short name used in command statistics (e.g. `int32`).
    pub fn short_name(&self) -> &'static str {
        match self {
            DataType::Bool => "bool",
            DataType::Int8 => "int8",
            DataType::Int16 => "int16",
            DataType::Int32 => "int32",
            DataType::Int64 => "int64",
            DataType::UInt8 => "uint8",
            DataType::UInt16 => "uint16",
            DataType::UInt32 => "uint32",
            DataType::UInt64 => "uint64",
        }
    }

    /// Truncates a raw `i64` to this type's canonical stored value.
    pub fn truncate(&self, v: i64) -> i64 {
        pim_microcode::encode::truncate(v, self.bits(), self.is_signed())
    }

    /// Compares two canonical stored values respecting signedness.
    pub fn compare(&self, a: i64, b: i64) -> std::cmp::Ordering {
        if self.is_signed() {
            a.cmp(&b)
        } else {
            (a as u64).cmp(&(b as u64))
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Host scalar types that can be copied to/from PIM objects.
///
/// The canonical device representation is an `i64` holding the truncated
/// two's-complement value; this trait converts losslessly in both
/// directions for every supported width.
///
/// `Send + Sync` so host↔device conversion loops can fan out across the
/// [`pim_dram::exec`] worker threads; every implementor is a primitive.
pub trait PimScalar: Copy + Send + Sync {
    /// The natural [`DataType`] for this host type.
    const DTYPE: DataType;

    /// Converts to the canonical device representation.
    fn to_device(self) -> i64;

    /// Converts from the canonical device representation.
    fn from_device(v: i64) -> Self;
}

macro_rules! impl_pim_scalar {
    ($($t:ty => $d:expr),* $(,)?) => {
        $(impl PimScalar for $t {
            const DTYPE: DataType = $d;
            fn to_device(self) -> i64 { self as i64 }
            fn from_device(v: i64) -> Self { v as $t }
        })*
    };
}

impl_pim_scalar! {
    i8 => DataType::Int8,
    i16 => DataType::Int16,
    i32 => DataType::Int32,
    i64 => DataType::Int64,
    u8 => DataType::UInt8,
    u16 => DataType::UInt16,
    u32 => DataType::UInt32,
}

impl PimScalar for u64 {
    const DTYPE: DataType = DataType::UInt64;

    fn to_device(self) -> i64 {
        self as i64
    }

    fn from_device(v: i64) -> Self {
        v as u64
    }
}

impl PimScalar for bool {
    const DTYPE: DataType = DataType::Bool;

    fn to_device(self) -> i64 {
        i64::from(self)
    }

    fn from_device(v: i64) -> Self {
        v & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_and_signedness() {
        assert_eq!(DataType::Int32.bits(), 32);
        assert!(DataType::Int32.is_signed());
        assert!(!DataType::UInt32.is_signed());
        assert_eq!(DataType::Bool.bits(), 1);
    }

    #[test]
    fn truncate_wraps() {
        assert_eq!(DataType::Int8.truncate(130), -126);
        assert_eq!(DataType::UInt8.truncate(-1), 255);
        assert_eq!(DataType::Bool.truncate(3), 1);
    }

    #[test]
    fn unsigned_compare_uses_u64_order() {
        let d = DataType::UInt64;
        let big = d.truncate(u64::MAX as i64);
        assert_eq!(d.compare(0, big), std::cmp::Ordering::Less);
        assert_eq!(DataType::Int64.compare(0, -1), std::cmp::Ordering::Greater);
    }

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(i32::from_device((-5i32).to_device()), -5);
        assert_eq!(
            u32::from_device(4_000_000_000u32.to_device()),
            4_000_000_000
        );
        assert_eq!(u64::from_device(u64::MAX.to_device()), u64::MAX);
        assert!(bool::from_device(true.to_device()));
    }
}
