//! The typed command IR and the deferred [`CommandStream`].
//!
//! Every device operation is an instance of [`PimCommand`]: an
//! [`OpKind`], the input objects it reads, and the object it writes.
//! [`crate::Device::issue`] is the single choke point that validates,
//! executes, and charges one command; the eager `Device::add`/`mul`/…
//! methods are thin wrappers that build a command and issue it.
//!
//! [`CommandStream`] defers issue: commands are *recorded* and only run
//! at [`CommandStream::flush`], which first applies peephole passes —
//! dead-write elimination, mul+add → [`OpKind::ScaledAdd`] fusion,
//! cmp+select → [`OpKind::FusedCmpSelect`] fusion — and then executes
//! adjacent same-length element-wise commands in one batched parallel
//! sweep. Functional results are bit-identical to eager issue (fusion
//! preserves per-element semantics including intermediate truncation);
//! the charged cost is never higher, because fused commands stream fewer
//! operands through the arrays.
//!
//! One documented deviation: a temporary that only carried a fused-away
//! intermediate (the product of a `mul_scalar` or a comparison bitmap)
//! is never written, so its buffer contents after a flush are
//! unspecified. The fusion passes only fire when no later recorded
//! command reads that temporary.
//!
//! Sharding composes transparently with the stream: the peephole passes
//! run *before* the shard split, on whole commands over whole objects.
//! Only when a (possibly fused or batched) command reaches
//! [`crate::Device::issue`] does [`crate::PimSystem`] cut it along each
//! object's [`crate::ShardMap`] and fan the pieces out — so fusion
//! decisions never depend on the shard count, and a fused program on a
//! sharded device is bit-identical to the eager single-shard run
//! (enforced by the `shard_equivalence` suite).

use std::collections::HashMap;

use pim_microcode::gen::{BinaryOp, CmpOp};

use crate::device::Device;
use crate::dtype::DataType;
use crate::error::Result;
use crate::object::ObjId;
use crate::ops::OpKind;
use crate::pim_debug;

// ---------------------------------------------------------------------
// Command IR
// ---------------------------------------------------------------------

/// One device operation in IR form: what to do, what it reads, and what
/// it writes.
///
/// Invariants (checked by [`crate::Device::issue`], not the
/// constructors): `inputs.len()` matches [`OpKind::input_operands`] and
/// `dst` is `Some` exactly when [`OpKind::writes_output`] is true.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PimCommand {
    /// The operation.
    pub kind: OpKind,
    /// Objects read, in operand order.
    pub inputs: Vec<ObjId>,
    /// Object written, if the operation produces one.
    pub dst: Option<ObjId>,
}

impl PimCommand {
    /// A unary element-wise command `dst = kind(a)`.
    pub fn elementwise1(kind: OpKind, a: ObjId, dst: ObjId) -> PimCommand {
        PimCommand {
            kind,
            inputs: vec![a],
            dst: Some(dst),
        }
    }

    /// A binary element-wise command `dst = kind(a, b)`.
    pub fn elementwise2(kind: OpKind, a: ObjId, b: ObjId, dst: ObjId) -> PimCommand {
        PimCommand {
            kind,
            inputs: vec![a, b],
            dst: Some(dst),
        }
    }

    /// `dst = cond ? a : b`.
    pub fn select(cond: ObjId, a: ObjId, b: ObjId, dst: ObjId) -> PimCommand {
        PimCommand {
            kind: OpKind::Select,
            inputs: vec![cond, a, b],
            dst: Some(dst),
        }
    }

    /// `dst = (a OP b) ? x : y` in one pass.
    pub fn fused_cmp_select(
        op: CmpOp,
        a: ObjId,
        b: ObjId,
        x: ObjId,
        y: ObjId,
        dst: ObjId,
    ) -> PimCommand {
        PimCommand {
            kind: OpKind::FusedCmpSelect(op),
            inputs: vec![a, b, x, y],
            dst: Some(dst),
        }
    }

    /// `dst = a * k + b` in one pass.
    pub fn scaled_add(a: ObjId, b: ObjId, dst: ObjId, k: i64) -> PimCommand {
        PimCommand {
            kind: OpKind::ScaledAdd(k),
            inputs: vec![a, b],
            dst: Some(dst),
        }
    }

    /// Fills `dst` with `value`.
    pub fn broadcast(dst: ObjId, value: i64) -> PimCommand {
        PimCommand {
            kind: OpKind::Broadcast(value),
            inputs: vec![],
            dst: Some(dst),
        }
    }

    /// Device-to-device copy.
    pub fn copy(src: ObjId, dst: ObjId) -> PimCommand {
        PimCommand {
            kind: OpKind::Copy,
            inputs: vec![src],
            dst: Some(dst),
        }
    }

    /// A full-object reduction (no destination object).
    pub fn reduce(kind: OpKind, a: ObjId) -> PimCommand {
        PimCommand {
            kind,
            inputs: vec![a],
            dst: None,
        }
    }
}

/// The value produced by issuing one command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmdValue {
    /// Element-wise commands write their result into `dst`.
    Unit,
    /// `RedMin` / `RedMax` return one element.
    Int(i64),
    /// `RedSum` returns a widening sum.
    Wide(i128),
}

// ---------------------------------------------------------------------
// Functional semantics
// ---------------------------------------------------------------------

/// Per-element functional semantics of an element-wise `kind`, shared by
/// every target (the paper's targets differ in *cost*, never in result).
///
/// `inputs` holds the canonical stored values in operand order; the
/// returned value is truncated to `dtype`'s canonical form. Fused kinds
/// truncate their intermediate exactly as the eager pair would, so a
/// fused command is bit-identical to the sequence it replaced.
///
/// # Panics
///
/// On reduction kinds (`RedSum`/`RedMin`/`RedMax`), which fold across
/// elements and are handled by [`crate::Device::issue`] directly.
pub fn eval(kind: OpKind, dtype: DataType, inputs: &[i64]) -> i64 {
    let d = dtype;
    let v = match kind {
        OpKind::Binary(b) => binary(b, inputs[0], inputs[1]),
        OpKind::BinaryScalar(b, k) => binary(b, inputs[0], k),
        OpKind::Cmp(c) => cmp_mask(c, d, inputs[0], inputs[1]),
        OpKind::CmpScalar(c, k) => cmp_mask(c, d, inputs[0], d.truncate(k)),
        OpKind::Min => pick(
            d.compare(inputs[0], inputs[1]).is_lt(),
            inputs[0],
            inputs[1],
        ),
        OpKind::Max => pick(
            d.compare(inputs[0], inputs[1]).is_gt(),
            inputs[0],
            inputs[1],
        ),
        OpKind::MinScalar(k) => {
            let k = d.truncate(k);
            pick(d.compare(inputs[0], k).is_lt(), inputs[0], k)
        }
        OpKind::MaxScalar(k) => {
            let k = d.truncate(k);
            pick(d.compare(inputs[0], k).is_gt(), inputs[0], k)
        }
        OpKind::Not => !inputs[0],
        OpKind::Abs => {
            if d.is_signed() {
                inputs[0].wrapping_abs()
            } else {
                inputs[0]
            }
        }
        OpKind::Popcount => {
            let u = (inputs[0] as u64) & pim_microcode::encode::mask(d.bits());
            u.count_ones() as i64
        }
        OpKind::ShiftL(k) => {
            if k >= d.bits().min(64) {
                0
            } else {
                ((inputs[0] as u64) << k) as i64
            }
        }
        OpKind::ShiftR(k) => {
            if d.is_signed() {
                // Canonical signed values are sign-extended i64s.
                inputs[0] >> k.min(63)
            } else {
                let u = (inputs[0] as u64) & pim_microcode::encode::mask(d.bits());
                if k >= 64 {
                    0
                } else {
                    (u >> k) as i64
                }
            }
        }
        OpKind::Select => pick(inputs[0] != 0, inputs[1], inputs[2]),
        OpKind::ScaledAdd(k) => {
            // Truncate the product exactly as the eager mul_scalar would
            // have stored it before the add reads it back.
            let t = d.truncate(inputs[0].wrapping_mul(k));
            t.wrapping_add(inputs[1])
        }
        OpKind::FusedCmpSelect(c) => pick(
            cmp_mask(c, d, inputs[0], inputs[1]) != 0,
            inputs[2],
            inputs[3],
        ),
        OpKind::Broadcast(v) => v,
        OpKind::Copy => inputs[0],
        OpKind::RedSum | OpKind::RedMin | OpKind::RedMax => {
            unreachable!("reductions fold across elements; eval is per-element")
        }
    };
    d.truncate(v)
}

fn binary(b: BinaryOp, x: i64, y: i64) -> i64 {
    match b {
        BinaryOp::Add => x.wrapping_add(y),
        BinaryOp::Sub => x.wrapping_sub(y),
        BinaryOp::Mul => x.wrapping_mul(y),
        BinaryOp::And => x & y,
        BinaryOp::Or => x | y,
        BinaryOp::Xor => x ^ y,
        BinaryOp::Xnor => !(x ^ y),
    }
}

fn cmp_mask(c: CmpOp, d: DataType, x: i64, y: i64) -> i64 {
    i64::from(match c {
        CmpOp::Lt => d.compare(x, y).is_lt(),
        CmpOp::Gt => d.compare(x, y).is_gt(),
        CmpOp::Eq => x == y,
    })
}

fn pick(cond: bool, x: i64, y: i64) -> i64 {
    if cond {
        x
    } else {
        y
    }
}

// ---------------------------------------------------------------------
// Peephole passes
// ---------------------------------------------------------------------

/// Removes commands whose destination is overwritten by a later command
/// before any command reads it. Returns the number removed.
///
/// Backward scan maintaining the set of objects that a later command
/// will overwrite with no intervening read: a live command inserts its
/// destination and then removes its inputs (in that order, so an
/// in-place `add(a, b, a)` keeps `a` readable).
pub(crate) fn eliminate_dead_writes(cmds: &mut Vec<PimCommand>) -> u64 {
    use std::collections::HashSet;
    let mut overwritten: HashSet<ObjId> = HashSet::new();
    let mut live: Vec<PimCommand> = Vec::with_capacity(cmds.len());
    let mut removed = 0u64;
    for cmd in cmds.drain(..).rev() {
        if let Some(dst) = cmd.dst {
            if overwritten.contains(&dst) {
                removed += 1;
                continue;
            }
            overwritten.insert(dst);
        }
        for id in &cmd.inputs {
            overwritten.remove(id);
        }
        live.push(cmd);
    }
    live.reverse();
    *cmds = live;
    removed
}

/// True if no command in `rest` reads `id`.
fn never_read_later(id: ObjId, rest: &[PimCommand]) -> bool {
    rest.iter().all(|c| !c.inputs.contains(&id))
}

/// `mul_scalar(a, k) → t ; add(t, b) → d` becomes `scaled_add(a, b, k) → d`
/// when `t` carries nothing else.
fn try_fuse_scaled_add(
    first: &PimCommand,
    second: &PimCommand,
    rest: &[PimCommand],
) -> Option<PimCommand> {
    let OpKind::BinaryScalar(BinaryOp::Mul, k) = first.kind else {
        return None;
    };
    let OpKind::Binary(BinaryOp::Add) = second.kind else {
        return None;
    };
    let (a, t) = (first.inputs[0], first.dst?);
    let (p, q) = (second.inputs[0], second.inputs[1]);
    let d = second.dst?;
    // The product must feed exactly one side of the add.
    let b = match (p == t, q == t) {
        (true, false) => q,
        (false, true) => p,
        _ => return None,
    };
    // If the product object outlives the pair, the fusion would leave it
    // stale for the later reader.
    if t != d && !never_read_later(t, rest) {
        return None;
    }
    Some(PimCommand::scaled_add(a, b, d, k))
}

/// `cmp(a, b) → m ; select(m, x, y) → d` becomes
/// `fused_cmp_select(a, b, x, y) → d` when the mask carries nothing else.
///
/// Needs the device to gate on dtype: eager validation ties `a`/`b`/`m`
/// together and `x`/`y`/`d` together but never across, and the fused
/// command evaluates both halves under one dtype.
fn try_fuse_cmp_select(
    dev: &Device,
    first: &PimCommand,
    second: &PimCommand,
    rest: &[PimCommand],
) -> Option<PimCommand> {
    let OpKind::Cmp(op) = first.kind else {
        return None;
    };
    if second.kind != OpKind::Select {
        return None;
    }
    let (a, b, m) = (first.inputs[0], first.inputs[1], first.dst?);
    let (cond, x, y) = (second.inputs[0], second.inputs[1], second.inputs[2]);
    let d = second.dst?;
    if cond != m || m == x || m == y {
        return None;
    }
    if m != d && !never_read_later(m, rest) {
        return None;
    }
    let (da, dx) = (dev.object(a).ok()?.dtype, dev.object(x).ok()?.dtype);
    if da != dx {
        return None;
    }
    Some(PimCommand::fused_cmp_select(op, a, b, x, y, d))
}

/// Rewrites adjacent fusible pairs in place. Returns
/// `(scaled_add_fusions, cmp_select_fusions)`.
pub(crate) fn fuse(dev: &Device, cmds: &mut Vec<PimCommand>) -> (u64, u64) {
    let mut out = Vec::with_capacity(cmds.len());
    let (mut scaled, mut cmp_select) = (0u64, 0u64);
    let mut i = 0;
    while i < cmds.len() {
        if i + 1 < cmds.len() {
            let rest = &cmds[i + 2..];
            if let Some(f) = try_fuse_scaled_add(&cmds[i], &cmds[i + 1], rest) {
                out.push(f);
                scaled += 1;
                i += 2;
                continue;
            }
            if let Some(f) = try_fuse_cmp_select(dev, &cmds[i], &cmds[i + 1], rest) {
                out.push(f);
                cmp_select += 1;
                i += 2;
                continue;
            }
        }
        out.push(cmds[i].clone());
        i += 1;
    }
    *cmds = out;
    (scaled, cmp_select)
}

// ---------------------------------------------------------------------
// Deferred stream
// ---------------------------------------------------------------------

/// What one [`CommandStream::flush`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushSummary {
    /// Commands recorded since the previous flush.
    pub recorded: u64,
    /// Commands executed after the peephole passes.
    pub executed: u64,
    /// mul+add pairs rewritten to [`OpKind::ScaledAdd`].
    pub fused_scaled_add: u64,
    /// cmp+select pairs rewritten to [`OpKind::FusedCmpSelect`].
    pub fused_cmp_select: u64,
    /// Commands removed because their output was overwritten unread.
    pub dead_writes_eliminated: u64,
    /// Batched parallel sweeps over runs of same-length commands.
    pub batched_sweeps: u64,
    /// Commands executed inside those sweeps.
    pub batched_commands: u64,
}

/// A deferred command recorder bound to one device.
///
/// Obtained from [`Device::stream`]; record operations with the same
/// argument order as the eager `Device` methods, then call
/// [`CommandStream::flush`] to optimize and run them. Dropping a stream
/// with unflushed commands discards them (with a debug log) — flushing
/// is always explicit.
///
/// # Example
///
/// ```
/// use pimeval::{DataType, Device};
///
/// # fn main() -> Result<(), pimeval::PimError> {
/// let mut dev = Device::fulcrum(1)?;
/// let x = dev.alloc_vec(&[1i32, 2, 3, 4])?;
/// let y = dev.alloc_vec(&[10i32, 20, 30, 40])?;
/// let t = dev.alloc_associated(x, DataType::Int32)?;
/// let out = dev.alloc_associated(x, DataType::Int32)?;
///
/// let mut stream = dev.stream();
/// stream.mul_scalar(x, 7, t).add(t, y, out);
/// let summary = stream.flush()?;
/// drop(stream);
/// assert_eq!(summary.fused_scaled_add, 1);
/// assert_eq!(dev.to_vec::<i32>(out)?, vec![17, 34, 51, 68]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CommandStream<'d> {
    dev: &'d mut Device,
    pending: Vec<PimCommand>,
}

macro_rules! record2 {
    ($($(#[$doc:meta])* $name:ident => $kind:expr;)*) => {
        $($(#[$doc])*
        pub fn $name(&mut self, a: ObjId, b: ObjId, dst: ObjId) -> &mut Self {
            self.record(PimCommand::elementwise2($kind, a, b, dst))
        })*
    };
}

macro_rules! record_scalar {
    ($($(#[$doc:meta])* $name:ident => $kind:expr;)*) => {
        $($(#[$doc])*
        pub fn $name(&mut self, a: ObjId, k: i64, dst: ObjId) -> &mut Self {
            self.record(PimCommand::elementwise1($kind(k), a, dst))
        })*
    };
}

impl<'d> CommandStream<'d> {
    pub(crate) fn new(dev: &'d mut Device) -> CommandStream<'d> {
        CommandStream {
            dev,
            pending: Vec::new(),
        }
    }

    /// Appends an arbitrary command.
    pub fn record(&mut self, cmd: PimCommand) -> &mut Self {
        self.pending.push(cmd);
        self
    }

    /// The commands recorded so far (cleared by [`CommandStream::flush`]).
    pub fn pending(&self) -> &[PimCommand] {
        &self.pending
    }

    record2! {
        /// Records `dst = a + b`.
        add => OpKind::Binary(BinaryOp::Add);
        /// Records `dst = a - b`.
        sub => OpKind::Binary(BinaryOp::Sub);
        /// Records `dst = a * b`.
        mul => OpKind::Binary(BinaryOp::Mul);
        /// Records `dst = a & b`.
        and => OpKind::Binary(BinaryOp::And);
        /// Records `dst = a | b`.
        or => OpKind::Binary(BinaryOp::Or);
        /// Records `dst = a ^ b`.
        xor => OpKind::Binary(BinaryOp::Xor);
        /// Records `dst = min(a, b)`.
        min => OpKind::Min;
        /// Records `dst = max(a, b)`.
        max => OpKind::Max;
        /// Records `dst = (a < b) ? 1 : 0`.
        lt => OpKind::Cmp(CmpOp::Lt);
        /// Records `dst = (a > b) ? 1 : 0`.
        gt => OpKind::Cmp(CmpOp::Gt);
        /// Records `dst = (a == b) ? 1 : 0`.
        eq => OpKind::Cmp(CmpOp::Eq);
    }

    record_scalar! {
        /// Records `dst = a + k`.
        add_scalar => |k| OpKind::BinaryScalar(BinaryOp::Add, k);
        /// Records `dst = a - k`.
        sub_scalar => |k| OpKind::BinaryScalar(BinaryOp::Sub, k);
        /// Records `dst = a * k`.
        mul_scalar => |k| OpKind::BinaryScalar(BinaryOp::Mul, k);
        /// Records `dst = min(a, k)`.
        min_scalar => OpKind::MinScalar;
        /// Records `dst = max(a, k)`.
        max_scalar => OpKind::MaxScalar;
    }

    /// Records `dst = !a`.
    pub fn not(&mut self, a: ObjId, dst: ObjId) -> &mut Self {
        self.record(PimCommand::elementwise1(OpKind::Not, a, dst))
    }

    /// Records `dst = |a|`.
    pub fn abs(&mut self, a: ObjId, dst: ObjId) -> &mut Self {
        self.record(PimCommand::elementwise1(OpKind::Abs, a, dst))
    }

    /// Records a per-element popcount.
    pub fn popcount(&mut self, a: ObjId, dst: ObjId) -> &mut Self {
        self.record(PimCommand::elementwise1(OpKind::Popcount, a, dst))
    }

    /// Records `dst = a << k`.
    pub fn shift_left(&mut self, a: ObjId, k: u32, dst: ObjId) -> &mut Self {
        self.record(PimCommand::elementwise1(OpKind::ShiftL(k), a, dst))
    }

    /// Records `dst = a >> k`.
    pub fn shift_right(&mut self, a: ObjId, k: u32, dst: ObjId) -> &mut Self {
        self.record(PimCommand::elementwise1(OpKind::ShiftR(k), a, dst))
    }

    /// Records `dst = cond ? a : b`.
    pub fn select(&mut self, cond: ObjId, a: ObjId, b: ObjId, dst: ObjId) -> &mut Self {
        self.record(PimCommand::select(cond, a, b, dst))
    }

    /// Records `dst = a * k + b` as an already-fused command.
    pub fn scaled_add(&mut self, a: ObjId, b: ObjId, dst: ObjId, k: i64) -> &mut Self {
        self.record(PimCommand::scaled_add(a, b, dst, k))
    }

    /// Records a fill of `dst` with `value`.
    pub fn broadcast(&mut self, dst: ObjId, value: i64) -> &mut Self {
        self.record(PimCommand::broadcast(dst, value))
    }

    /// Records a device-to-device copy.
    pub fn copy_object(&mut self, src: ObjId, dst: ObjId) -> &mut Self {
        self.record(PimCommand::copy(src, dst))
    }

    /// Flushes pending commands, then runs an eager reduction sum.
    ///
    /// # Errors
    ///
    /// Flush or reduction errors.
    pub fn red_sum(&mut self, a: ObjId) -> Result<i128> {
        self.flush()?;
        self.dev.red_sum(a)
    }

    /// Flushes pending commands, then runs an eager reduction minimum.
    ///
    /// # Errors
    ///
    /// Flush or reduction errors.
    pub fn red_min(&mut self, a: ObjId) -> Result<i64> {
        self.flush()?;
        self.dev.red_min(a)
    }

    /// Flushes pending commands, then runs an eager reduction maximum.
    ///
    /// # Errors
    ///
    /// Flush or reduction errors.
    pub fn red_max(&mut self, a: ObjId) -> Result<i64> {
        self.flush()?;
        self.dev.red_max(a)
    }

    /// Optimizes and executes everything recorded since the last flush.
    ///
    /// Pass order: dead-write elimination, then pair fusion, then
    /// validation of every surviving command, then execution — runs of
    /// two or more adjacent commands over objects with the same element
    /// count go through one batched parallel sweep; the rest execute
    /// singly. Each executed command is charged to the cost model
    /// exactly as an eager issue would be.
    ///
    /// # Errors
    ///
    /// Validation errors from any surviving command; nothing executes
    /// when validation fails.
    pub fn flush(&mut self) -> Result<FlushSummary> {
        let mut cmds = std::mem::take(&mut self.pending);
        let recorded = cmds.len() as u64;
        let dead_writes_eliminated = eliminate_dead_writes(&mut cmds);
        let (fused_scaled_add, fused_cmp_select) = fuse(self.dev, &mut cmds);
        for cmd in &cmds {
            self.dev.validate_cmd(cmd)?;
        }
        let mut summary = FlushSummary {
            recorded,
            executed: cmds.len() as u64,
            fused_scaled_add,
            fused_cmp_select,
            dead_writes_eliminated,
            batched_sweeps: 0,
            batched_commands: 0,
        };
        let counts: Vec<Option<u64>> = cmds
            .iter()
            .map(|c| c.dst.and_then(|d| self.dev.object(d).ok().map(|o| o.count)))
            .collect();
        let mut i = 0;
        while i < cmds.len() {
            let mut j = i + 1;
            while j < cmds.len() && counts[j].is_some() && counts[j] == counts[i] {
                j += 1;
            }
            if counts[i].is_some() && j - i >= 2 {
                self.dev.exec_batch(&cmds[i..j])?;
                for cmd in &cmds[i..j] {
                    self.dev.charge_cmd(cmd)?;
                }
                summary.batched_sweeps += 1;
                summary.batched_commands += (j - i) as u64;
            } else {
                for cmd in &cmds[i..j] {
                    self.dev.exec_cmd(cmd)?;
                    self.dev.charge_cmd(cmd)?;
                }
            }
            i = j;
        }
        self.dev.finish_flush(&summary);
        Ok(summary)
    }
}

impl Drop for CommandStream<'_> {
    fn drop(&mut self) {
        if !self.pending.is_empty() {
            pim_debug!(
                "command stream dropped with {} unflushed command(s)",
                self.pending.len()
            );
        }
    }
}

// ---------------------------------------------------------------------
// Batched execution plan (used by Device::exec_batch)
// ---------------------------------------------------------------------

/// One command lowered onto the batch's slot table. Each input carries
/// a `from_local` flag: true when an earlier step in the batch writes
/// that slot, so per-element execution must read the chunk-local
/// intermediate instead of the object's pre-batch buffer. The step
/// sequence is identical for every element, so the flag is static.
pub(crate) struct BatchStep {
    pub kind: OpKind,
    pub dtype: DataType,
    pub ins: Vec<(usize, bool)>,
    pub dst: usize,
}

/// Assigns every object touched by `cmds` a dense slot index and lowers
/// each command to slot references. Returns the slot→object table and
/// the step list. Caller guarantees every command writes a destination.
pub(crate) fn batch_plan(
    cmds: &[PimCommand],
    dtype_of: impl Fn(ObjId) -> DataType,
) -> (Vec<ObjId>, Vec<BatchStep>) {
    let mut slot_of: HashMap<ObjId, usize> = HashMap::new();
    let mut slots: Vec<ObjId> = Vec::new();
    let slot = |id: ObjId, slots: &mut Vec<ObjId>, slot_of: &mut HashMap<ObjId, usize>| {
        *slot_of.entry(id).or_insert_with(|| {
            slots.push(id);
            slots.len() - 1
        })
    };
    let mut written: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let steps = cmds
        .iter()
        .map(|cmd| {
            let dst = cmd.dst.expect("batched commands write a destination");
            let step = BatchStep {
                kind: cmd.kind,
                dtype: dtype_of(dst),
                ins: cmd
                    .inputs
                    .iter()
                    .map(|&id| {
                        let s = slot(id, &mut slots, &mut slot_of);
                        (s, written.contains(&s))
                    })
                    .collect(),
                dst: slot(dst, &mut slots, &mut slot_of),
            };
            written.insert(step.dst);
            step
        })
        .collect();
    (slots, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ObjId {
        ObjId(n)
    }

    #[test]
    fn eval_matches_eager_scalar_semantics() {
        let d = DataType::Int8;
        // Product truncates before the add, exactly like the eager pair.
        let fused = eval(OpKind::ScaledAdd(3), d, &[50, 1]);
        let t = d.truncate(50i64.wrapping_mul(3));
        assert_eq!(fused, d.truncate(t.wrapping_add(1)));
        // Unsigned comparison respects u64 order.
        assert_eq!(eval(OpKind::Cmp(CmpOp::Lt), DataType::UInt8, &[255, 1]), 0);
        assert_eq!(
            eval(
                OpKind::FusedCmpSelect(CmpOp::Gt),
                DataType::Int32,
                &[5, 3, 7, 9]
            ),
            7
        );
        assert_eq!(eval(OpKind::MinScalar(300), DataType::UInt8, &[10]), 10);
    }

    #[test]
    fn dead_write_elimination_respects_reads() {
        let (a, b, t, d) = (id(1), id(2), id(3), id(4));
        // t is written then overwritten unread: first write is dead.
        let mut cmds = vec![
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), a, b, t),
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Mul), a, b, t),
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), t, b, d),
        ];
        assert_eq!(eliminate_dead_writes(&mut cmds), 1);
        assert_eq!(cmds.len(), 2);
        assert_eq!(cmds[0].kind, OpKind::Binary(BinaryOp::Mul));

        // A read between the writes keeps both.
        let mut cmds = vec![
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), a, b, t),
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), t, b, d),
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Mul), a, b, t),
        ];
        assert_eq!(eliminate_dead_writes(&mut cmds), 0);
        assert_eq!(cmds.len(), 3);

        // In-place update reads its own destination: not dead.
        let mut cmds = vec![
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), a, b, t),
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), t, b, t),
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), t, b, d),
        ];
        assert_eq!(eliminate_dead_writes(&mut cmds), 0);
    }

    #[test]
    fn scaled_add_fusion_guards_temporary_lifetime() {
        let (a, b, t, d, e) = (id(1), id(2), id(3), id(4), id(5));
        let pair = |k| {
            vec![
                PimCommand::elementwise1(OpKind::BinaryScalar(BinaryOp::Mul, k), a, t),
                PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), t, b, d),
            ]
        };
        assert_eq!(
            try_fuse_scaled_add(&pair(7)[0], &pair(7)[1], &[]),
            Some(PimCommand::scaled_add(a, b, d, 7))
        );
        // A later read of the temporary blocks fusion.
        let later = [PimCommand::elementwise2(
            OpKind::Binary(BinaryOp::Add),
            t,
            b,
            e,
        )];
        assert_eq!(try_fuse_scaled_add(&pair(7)[0], &pair(7)[1], &later), None);
        // t + t is not a scaled add.
        let tt = PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), t, t, d);
        assert_eq!(try_fuse_scaled_add(&pair(7)[0], &tt, &[]), None);
    }

    #[test]
    fn batch_plan_assigns_dense_slots() {
        let (a, b, t, d) = (id(1), id(2), id(3), id(4));
        let cmds = vec![
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), a, b, t),
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Mul), t, b, d),
        ];
        let (slots, steps) = batch_plan(&cmds, |_| DataType::Int32);
        assert_eq!(slots, vec![a, b, t, d]);
        assert_eq!(steps[0].ins, vec![(0, false), (1, false)]);
        assert_eq!(steps[0].dst, 2);
        // t was written by step 0, so step 1 reads the local value.
        assert_eq!(steps[1].ins, vec![(2, true), (1, false)]);
        assert_eq!(steps[1].dst, 3);
    }
}
