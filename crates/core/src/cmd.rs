//! The typed command IR: [`PimCommand`], its shared functional
//! semantics ([`eval`]), and the batched execution plan.
//!
//! Every device operation is an instance of [`PimCommand`]: an
//! [`OpKind`], the input objects it reads, and the object it writes.
//! [`crate::Device::issue`] is the single choke point that validates,
//! executes, and charges one command; the eager `Device::add`/`mul`/…
//! methods are thin wrappers that build a command and issue it.
//!
//! The deferred recorder and its optimizer live in [`crate::stream`];
//! [`CommandStream`] and [`FlushSummary`] are re-exported here so code
//! written against the pre-split module paths
//! (`pimeval::cmd::CommandStream`) keeps compiling. New code should
//! import them from [`crate::stream`] (or the crate root).

use std::collections::HashMap;

use pim_microcode::gen::{BinaryOp, CmpOp};

use crate::dtype::DataType;
use crate::object::ObjId;
use crate::ops::OpKind;

// Deprecated locations — the deferred stream moved to `crate::stream`;
// these aliases keep the old `pimeval::cmd::*` paths source-compatible.
pub use crate::stream::{CommandStream, FlushSummary};

// ---------------------------------------------------------------------
// Command IR
// ---------------------------------------------------------------------

/// One device operation in IR form: what to do, what it reads, and what
/// it writes.
///
/// Invariants (checked by [`crate::Device::issue`], not the
/// constructors): `inputs.len()` matches [`OpKind::input_operands`] and
/// `dst` is `Some` exactly when [`OpKind::writes_output`] is true.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PimCommand {
    /// The operation.
    pub kind: OpKind,
    /// Objects read, in operand order.
    pub inputs: Vec<ObjId>,
    /// Object written, if the operation produces one.
    pub dst: Option<ObjId>,
}

impl PimCommand {
    /// A unary element-wise command `dst = kind(a)`.
    pub fn elementwise1(kind: OpKind, a: ObjId, dst: ObjId) -> PimCommand {
        PimCommand {
            kind,
            inputs: vec![a],
            dst: Some(dst),
        }
    }

    /// A binary element-wise command `dst = kind(a, b)`.
    pub fn elementwise2(kind: OpKind, a: ObjId, b: ObjId, dst: ObjId) -> PimCommand {
        PimCommand {
            kind,
            inputs: vec![a, b],
            dst: Some(dst),
        }
    }

    /// `dst = cond ? a : b`.
    pub fn select(cond: ObjId, a: ObjId, b: ObjId, dst: ObjId) -> PimCommand {
        PimCommand {
            kind: OpKind::Select,
            inputs: vec![cond, a, b],
            dst: Some(dst),
        }
    }

    /// `dst = (a OP b) ? x : y` in one pass.
    pub fn fused_cmp_select(
        op: CmpOp,
        a: ObjId,
        b: ObjId,
        x: ObjId,
        y: ObjId,
        dst: ObjId,
    ) -> PimCommand {
        PimCommand {
            kind: OpKind::FusedCmpSelect(op),
            inputs: vec![a, b, x, y],
            dst: Some(dst),
        }
    }

    /// `dst = a * k + b` in one pass.
    pub fn scaled_add(a: ObjId, b: ObjId, dst: ObjId, k: i64) -> PimCommand {
        PimCommand {
            kind: OpKind::ScaledAdd(k),
            inputs: vec![a, b],
            dst: Some(dst),
        }
    }

    /// Fills `dst` with `value`.
    pub fn broadcast(dst: ObjId, value: i64) -> PimCommand {
        PimCommand {
            kind: OpKind::Broadcast(value),
            inputs: vec![],
            dst: Some(dst),
        }
    }

    /// Device-to-device copy.
    pub fn copy(src: ObjId, dst: ObjId) -> PimCommand {
        PimCommand {
            kind: OpKind::Copy,
            inputs: vec![src],
            dst: Some(dst),
        }
    }

    /// A full-object reduction (no destination object).
    pub fn reduce(kind: OpKind, a: ObjId) -> PimCommand {
        PimCommand {
            kind,
            inputs: vec![a],
            dst: None,
        }
    }
}

/// The value produced by issuing one command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmdValue {
    /// Element-wise commands write their result into `dst`.
    Unit,
    /// `RedMin` / `RedMax` return one element.
    Int(i64),
    /// `RedSum` returns a widening sum.
    Wide(i128),
}

// ---------------------------------------------------------------------
// Functional semantics
// ---------------------------------------------------------------------

/// Per-element functional semantics of an element-wise `kind`, shared by
/// every target (the paper's targets differ in *cost*, never in result).
///
/// `inputs` holds the canonical stored values in operand order; the
/// returned value is truncated to `dtype`'s canonical form. Fused kinds
/// truncate their intermediate exactly as the eager pair would, so a
/// fused command is bit-identical to the sequence it replaced.
///
/// # Panics
///
/// On reduction kinds (`RedSum`/`RedMin`/`RedMax`), which fold across
/// elements and are handled by [`crate::Device::issue`] directly.
pub fn eval(kind: OpKind, dtype: DataType, inputs: &[i64]) -> i64 {
    let d = dtype;
    let v = match kind {
        OpKind::Binary(b) => binary(b, inputs[0], inputs[1]),
        OpKind::BinaryScalar(b, k) => binary(b, inputs[0], k),
        OpKind::Cmp(c) => cmp_mask(c, d, inputs[0], inputs[1]),
        OpKind::CmpScalar(c, k) => cmp_mask(c, d, inputs[0], d.truncate(k)),
        OpKind::Min => pick(
            d.compare(inputs[0], inputs[1]).is_lt(),
            inputs[0],
            inputs[1],
        ),
        OpKind::Max => pick(
            d.compare(inputs[0], inputs[1]).is_gt(),
            inputs[0],
            inputs[1],
        ),
        OpKind::MinScalar(k) => {
            let k = d.truncate(k);
            pick(d.compare(inputs[0], k).is_lt(), inputs[0], k)
        }
        OpKind::MaxScalar(k) => {
            let k = d.truncate(k);
            pick(d.compare(inputs[0], k).is_gt(), inputs[0], k)
        }
        OpKind::Not => !inputs[0],
        OpKind::Abs => {
            if d.is_signed() {
                inputs[0].wrapping_abs()
            } else {
                inputs[0]
            }
        }
        OpKind::Popcount => {
            let u = (inputs[0] as u64) & pim_microcode::encode::mask(d.bits());
            u.count_ones() as i64
        }
        OpKind::ShiftL(k) => {
            if k >= d.bits().min(64) {
                0
            } else {
                ((inputs[0] as u64) << k) as i64
            }
        }
        OpKind::ShiftR(k) => {
            if d.is_signed() {
                // Canonical signed values are sign-extended i64s.
                inputs[0] >> k.min(63)
            } else {
                let u = (inputs[0] as u64) & pim_microcode::encode::mask(d.bits());
                if k >= 64 {
                    0
                } else {
                    (u >> k) as i64
                }
            }
        }
        OpKind::Select => pick(inputs[0] != 0, inputs[1], inputs[2]),
        OpKind::ScaledAdd(k) => {
            // Truncate the product exactly as the eager mul_scalar would
            // have stored it before the add reads it back.
            let t = d.truncate(inputs[0].wrapping_mul(k));
            t.wrapping_add(inputs[1])
        }
        OpKind::FusedCmpSelect(c) => pick(
            cmp_mask(c, d, inputs[0], inputs[1]) != 0,
            inputs[2],
            inputs[3],
        ),
        OpKind::Broadcast(v) => v,
        OpKind::Copy => inputs[0],
        OpKind::RedSum | OpKind::RedMin | OpKind::RedMax => {
            unreachable!("reductions fold across elements; eval is per-element")
        }
    };
    d.truncate(v)
}

fn binary(b: BinaryOp, x: i64, y: i64) -> i64 {
    match b {
        BinaryOp::Add => x.wrapping_add(y),
        BinaryOp::Sub => x.wrapping_sub(y),
        BinaryOp::Mul => x.wrapping_mul(y),
        BinaryOp::And => x & y,
        BinaryOp::Or => x | y,
        BinaryOp::Xor => x ^ y,
        BinaryOp::Xnor => !(x ^ y),
    }
}

fn cmp_mask(c: CmpOp, d: DataType, x: i64, y: i64) -> i64 {
    i64::from(match c {
        CmpOp::Lt => d.compare(x, y).is_lt(),
        CmpOp::Gt => d.compare(x, y).is_gt(),
        CmpOp::Eq => x == y,
    })
}

fn pick(cond: bool, x: i64, y: i64) -> i64 {
    if cond {
        x
    } else {
        y
    }
}

// ---------------------------------------------------------------------
// Batched execution plan (used by Device::exec_batch)
// ---------------------------------------------------------------------

/// One command lowered onto the batch's slot table. Each input carries
/// a `from_local` flag: true when an earlier step in the batch writes
/// that slot, so per-element execution must read the chunk-local
/// intermediate instead of the object's pre-batch buffer. The step
/// sequence is identical for every element, so the flag is static.
pub(crate) struct BatchStep {
    pub kind: OpKind,
    pub dtype: DataType,
    pub ins: Vec<(usize, bool)>,
    pub dst: usize,
}

/// Assigns every object touched by `cmds` a dense slot index and lowers
/// each command to slot references. Returns the slot→object table and
/// the step list. Caller guarantees every command writes a destination.
pub(crate) fn batch_plan(
    cmds: &[PimCommand],
    dtype_of: impl Fn(ObjId) -> DataType,
) -> (Vec<ObjId>, Vec<BatchStep>) {
    let mut slot_of: HashMap<ObjId, usize> = HashMap::new();
    let mut slots: Vec<ObjId> = Vec::new();
    let slot = |id: ObjId, slots: &mut Vec<ObjId>, slot_of: &mut HashMap<ObjId, usize>| {
        *slot_of.entry(id).or_insert_with(|| {
            slots.push(id);
            slots.len() - 1
        })
    };
    let mut written: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let steps = cmds
        .iter()
        .map(|cmd| {
            let dst = cmd.dst.expect("batched commands write a destination");
            let step = BatchStep {
                kind: cmd.kind,
                dtype: dtype_of(dst),
                ins: cmd
                    .inputs
                    .iter()
                    .map(|&id| {
                        let s = slot(id, &mut slots, &mut slot_of);
                        (s, written.contains(&s))
                    })
                    .collect(),
                dst: slot(dst, &mut slots, &mut slot_of),
            };
            written.insert(step.dst);
            step
        })
        .collect();
    (slots, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ObjId {
        ObjId(n)
    }

    #[test]
    fn eval_matches_eager_scalar_semantics() {
        let d = DataType::Int8;
        // Product truncates before the add, exactly like the eager pair.
        let fused = eval(OpKind::ScaledAdd(3), d, &[50, 1]);
        let t = d.truncate(50i64.wrapping_mul(3));
        assert_eq!(fused, d.truncate(t.wrapping_add(1)));
        // Unsigned comparison respects u64 order.
        assert_eq!(eval(OpKind::Cmp(CmpOp::Lt), DataType::UInt8, &[255, 1]), 0);
        assert_eq!(
            eval(
                OpKind::FusedCmpSelect(CmpOp::Gt),
                DataType::Int32,
                &[5, 3, 7, 9]
            ),
            7
        );
        assert_eq!(eval(OpKind::MinScalar(300), DataType::UInt8, &[10]), 10);
    }

    #[test]
    fn batch_plan_assigns_dense_slots() {
        let (a, b, t, d) = (id(1), id(2), id(3), id(4));
        let cmds = vec![
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Add), a, b, t),
            PimCommand::elementwise2(OpKind::Binary(BinaryOp::Mul), t, b, d),
        ];
        let (slots, steps) = batch_plan(&cmds, |_| DataType::Int32);
        assert_eq!(slots, vec![a, b, t, d]);
        assert_eq!(steps[0].ins, vec![(0, false), (1, false)]);
        assert_eq!(steps[0].dst, 2);
        // t was written by step 0, so step 1 reads the local value.
        assert_eq!(steps[1].ins, vec![(2, true), (1, false)]);
        assert_eq!(steps[1].dst, 3);
    }
}
